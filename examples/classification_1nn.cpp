/// \file classification_1nn.cpp
/// \brief 1-NN classification on uncertain series — the downstream task the
/// paper motivates: "similarity matching serves as the basis for developing
/// various more complex analysis and mining algorithms" (Section 1).
///
/// Uses the synthetic UCR-like registry end to end: generate a dataset,
/// split train/test, perturb everything with mixed-σ noise, and classify
/// each test series by its nearest neighbor under four measures (Euclidean,
/// DUST, UMA, UEMA). Accuracy under noise tracks the paper's similarity-
/// matching ranking: the uncertainty-aware filters win.
///
/// Run: ./examples/classification_1nn [dataset-name]

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "datagen/registry.hpp"
#include "distance/lp.hpp"
#include "measures/dust.hpp"
#include "ts/filters.hpp"
#include "uncertain/perturb.hpp"

using namespace uts;

namespace {

struct PreparedSeries {
  std::vector<double> raw;
  std::vector<double> uma;
  std::vector<double> uema;
  const uncertain::UncertainSeries* uncertain = nullptr;
  int label = ts::TimeSeries::kNoLabel;
};

PreparedSeries Prepare(const uncertain::UncertainSeries& series) {
  ts::FilterOptions uma_opts;
  uma_opts.half_window = 2;
  ts::FilterOptions uema_opts = uma_opts;
  uema_opts.lambda = 1.0;
  PreparedSeries out;
  out.raw = series.observations();
  out.uma = ts::UncertainMovingAverage(out.raw, series.Stddevs(), uma_opts)
                .ValueOrDie();
  out.uema = ts::UncertainExponentialMovingAverage(out.raw, series.Stddevs(),
                                                   uema_opts)
                 .ValueOrDie();
  out.uncertain = &series;
  out.label = series.label();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // SwedishLeaf-like is one of the paper's "hard" datasets (many visually
  // similar classes), so measure differences actually show up.
  const std::string name = argc > 1 ? argv[1] : "SwedishLeaf";
  auto spec_result = datagen::SpecByName(name);
  if (!spec_result.ok()) {
    std::fprintf(stderr, "%s\n", spec_result.status().ToString().c_str());
    std::fprintf(stderr, "known datasets:");
    for (const auto& n : datagen::UcrLikeNames()) {
      std::fprintf(stderr, " %s", n.c_str());
    }
    std::fprintf(stderr, "\n");
    return 2;
  }

  std::printf("== 1-NN classification under uncertainty: %s ==\n\n",
              name.c_str());

  // Generate and split, stratified by class: within each class, alternate
  // instances between train and test.
  const ts::Dataset all =
      datagen::GenerateScaled(spec_result.ValueOrDie(), /*seed=*/17, 120, 96)
          .ZNormalizedCopy();
  ts::Dataset train("train"), test("test");
  std::map<int, std::size_t> seen;
  for (std::size_t i = 0; i < all.size(); ++i) {
    (seen[all[i].label()]++ % 2 == 0 ? train : test).Add(all[i]);
  }

  // Perturb with the paper's stress regime: mixed-sigma normal error.
  const auto noise =
      uncertain::ErrorSpec::MixedSigma(prob::ErrorKind::kNormal, 0.2, 1.0, 0.4);
  const auto train_obs = uncertain::PerturbDataset(train, noise, 21);
  const auto test_obs = uncertain::PerturbDataset(test, noise, 22);

  std::vector<PreparedSeries> train_prep, test_prep;
  for (const auto& s : train_obs.series) train_prep.push_back(Prepare(s));
  for (const auto& s : test_obs.series) test_prep.push_back(Prepare(s));

  measures::Dust dust;

  // Classify each test series under each measure.
  enum Measure { kEuclid, kDust, kUma, kUema, kMeasures };
  const char* kNames[kMeasures] = {"Euclidean", "DUST", "UMA", "UEMA"};
  std::size_t correct[kMeasures] = {0, 0, 0, 0};

  for (const auto& query : test_prep) {
    double best[kMeasures] = {1e300, 1e300, 1e300, 1e300};
    int vote[kMeasures] = {-1, -1, -1, -1};
    for (const auto& candidate : train_prep) {
      const double d_raw = distance::Euclidean(query.raw, candidate.raw);
      const double d_dust =
          dust.Distance(*query.uncertain, *candidate.uncertain).ValueOrDie();
      const double d_uma = distance::Euclidean(query.uma, candidate.uma);
      const double d_uema = distance::Euclidean(query.uema, candidate.uema);
      const double d[kMeasures] = {d_raw, d_dust, d_uma, d_uema};
      for (int m = 0; m < kMeasures; ++m) {
        if (d[m] < best[m]) {
          best[m] = d[m];
          vote[m] = candidate.label;
        }
      }
    }
    for (int m = 0; m < kMeasures; ++m) {
      if (vote[m] == query.label) ++correct[m];
    }
  }

  // Reference: 1-NN on the exact (noise-free) data.
  std::size_t exact_correct = 0;
  for (std::size_t q = 0; q < test.size(); ++q) {
    double best = 1e300;
    int vote = -1;
    for (std::size_t c = 0; c < train.size(); ++c) {
      const double d = distance::Euclidean(test[q], train[c]);
      if (d < best) {
        best = d;
        vote = train[c].label();
      }
    }
    if (vote == test[q].label()) ++exact_correct;
  }

  std::printf("noise: %s\n", noise.Describe().c_str());
  std::printf("train %zu / test %zu series, %zu classes\n\n", train.size(),
              test.size(), all.ClassHistogram().size());
  std::printf("%-10s accuracy\n", "measure");
  std::printf("-------------------\n");
  std::printf("%-10s %.3f   (noise-free upper reference)\n", "exact",
              double(exact_correct) / double(test.size()));
  for (int m = 0; m < kMeasures; ++m) {
    std::printf("%-10s %.3f\n", kNames[m],
                double(correct[m]) / double(test_prep.size()));
  }
  std::printf("\nTakeaway: DUST is a drop-in distance for existing mining "
              "code, and the UMA/UEMA\nfilters recover most of the accuracy "
              "the noise destroyed — the same ordering the\npaper reports "
              "for similarity matching carries to classification.\n");
  return 0;
}
