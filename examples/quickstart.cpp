/// \file quickstart.cpp
/// \brief Five-minute tour of the uncertts public API.
///
/// Builds an exact series, perturbs it into both uncertainty models, and
/// compares every similarity technique the library implements — the
/// literature trio (MUNICH, PROUD, DUST), the Euclidean baseline, and the
/// paper's UMA/UEMA measures.
///
/// Run: ./examples/quickstart

#include <cstdio>
#include <vector>

#include "distance/lp.hpp"
#include "measures/dust.hpp"
#include "measures/munich.hpp"
#include "measures/proud.hpp"
#include "prob/rng.hpp"
#include "ts/filters.hpp"
#include "ts/normalize.hpp"
#include "ts/time_series.hpp"
#include "uncertain/error_spec.hpp"
#include "uncertain/perturb.hpp"

using namespace uts;

int main() {
  std::printf("== uncertts quickstart ==\n\n");

  // ---------------------------------------------------------------------
  // 1. Two exact (ground-truth) series: a sine wave and a slightly
  //    phase-shifted copy. In real use these come from io::ReadUcrFile or
  //    the datagen:: registry.
  // ---------------------------------------------------------------------
  const std::size_t n = 96;
  std::vector<double> a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = std::sin(0.15 * double(i));
    b[i] = std::sin(0.15 * double(i) + 0.35);
  }
  ts::TimeSeries exact_a(std::move(a), 0, "quickstart/a");
  ts::TimeSeries exact_b(std::move(b), 0, "quickstart/b");
  ts::ZNormalizeInPlace(exact_a);
  ts::ZNormalizeInPlace(exact_b);
  std::printf("exact Euclidean distance:        %.4f\n",
              distance::Euclidean(exact_a, exact_b));

  // ---------------------------------------------------------------------
  // 2. Make them uncertain: additive normal measurement error, sigma 0.5.
  //    The ErrorSpec also covers mixed-sigma, mixed-family and misreported
  //    regimes (see uncertain/error_spec.hpp).
  // ---------------------------------------------------------------------
  const auto spec =
      uncertain::ErrorSpec::Constant(prob::ErrorKind::kNormal, 0.5);
  const uncertain::UncertainSeries ua =
      uncertain::PerturbSeries(exact_a, spec, /*seed=*/1);
  const uncertain::UncertainSeries ub =
      uncertain::PerturbSeries(exact_b, spec, /*seed=*/2);
  std::printf("observed Euclidean distance:     %.4f   (noise inflates it)\n",
              distance::Euclidean(ua.observations(), ub.observations()));

  // ---------------------------------------------------------------------
  // 3. PROUD: probability that the true distance is within a threshold.
  // ---------------------------------------------------------------------
  measures::Proud proud({.tau = 0.9, .sigma = 0.5});
  const double eps = 8.0;
  std::printf("PROUD  Pr(dist <= %.1f):          %.4f  -> %s at tau=0.9\n",
              eps, proud.MatchProbability(ua.observations(),
                                          ub.observations(), eps),
              proud.Matches(ua.observations(), ub.observations(), eps)
                  ? "match"
                  : "no match");

  // ---------------------------------------------------------------------
  // 4. DUST: an uncertainty-aware distance (plugs into any certain-series
  //    algorithm, including DTW).
  // ---------------------------------------------------------------------
  measures::Dust dust;
  auto dust_distance = dust.Distance(ua, ub);
  auto dust_dtw = dust.DtwDistance(ua, ub);
  if (dust_distance.ok() && dust_dtw.ok()) {
    std::printf("DUST   distance:                 %.4f   (DTW: %.4f)\n",
                dust_distance.ValueOrDie(), dust_dtw.ValueOrDie());
  }

  // ---------------------------------------------------------------------
  // 5. MUNICH: repeated observations per timestamp; exact probability via
  //    meet-in-the-middle counting on short series.
  // ---------------------------------------------------------------------
  auto short_a = ts::TimeSeries(
      std::vector<double>(exact_a.values().begin(),
                          exact_a.values().begin() + 6));
  auto short_b = ts::TimeSeries(
      std::vector<double>(exact_b.values().begin(),
                          exact_b.values().begin() + 6));
  const auto ma = uncertain::PerturbMultiSample(short_a, spec, 5, 3);
  const auto mb = uncertain::PerturbMultiSample(short_b, spec, 5, 4);
  measures::Munich munich;
  auto p = munich.MatchProbability(ma, mb, 2.0);
  if (p.ok()) {
    std::printf("MUNICH Pr(dist <= 2.0):          %.4f   "
                "(|materializations| = %.3g)\n",
                p.ValueOrDie(), measures::Munich::MaterializationCount(ma, mb));
  }

  // ---------------------------------------------------------------------
  // 6. UMA / UEMA: the paper's winners. Filter, then plain Euclidean.
  // ---------------------------------------------------------------------
  ts::FilterOptions filter;
  filter.half_window = 2;   // the paper's W = 5 window
  filter.lambda = 1.0;      // the paper's UEMA decay
  auto uema_a = ts::UncertainExponentialMovingAverage(
      ua.observations(), ua.Stddevs(), filter);
  auto uema_b = ts::UncertainExponentialMovingAverage(
      ub.observations(), ub.Stddevs(), filter);
  if (uema_a.ok() && uema_b.ok()) {
    // With constant σ the UEMA filter scales values by 1/σ; multiply the
    // filtered distance back by σ to compare against the raw scale.
    const double uema_distance =
        0.5 * distance::Euclidean(uema_a.ValueOrDie(), uema_b.ValueOrDie());
    std::printf("UEMA   filtered distance (x σ):  %.4f   "
                "(raw observed %.4f, exact %.4f)\n",
                uema_distance,
                distance::Euclidean(ua.observations(), ub.observations()),
                distance::Euclidean(exact_a, exact_b));
  }

  std::printf("\nNext steps: examples/sensor_monitoring, examples/privacy_lbs,"
              " examples/classification_1nn,\nand the figure harnesses under "
              "bench/ (each regenerates one figure of the paper).\n");
  return 0;
}
