/// \file privacy_lbs.cpp
/// \brief Privacy-preserving location traces — the paper's second
/// motivating scenario: "privacy is a major concern, addressed by various
/// privacy-preserving transforms, which introduce data uncertainty. The
/// data can still be mined and queried, but it requires a re-design of the
/// existing methods" (Section 1).
///
/// Scenario: a location-based service publishes daily movement-intensity
/// profiles of opted-in users, perturbed with calibrated noise before
/// release (the noise scale is public — that is the "reported" error
/// model). An analyst wants to find users with commute patterns similar to
/// a target profile. We compare mining the published (noisy) profiles with
/// the raw Euclidean distance vs the uncertainty-aware UMA/UEMA measures,
/// and verify against the (never published) exact profiles.
///
/// Run: ./examples/privacy_lbs

#include <cstdio>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "distance/lp.hpp"
#include "prob/rng.hpp"
#include "query/search.hpp"
#include "ts/filters.hpp"
#include "ts/normalize.hpp"
#include "uncertain/perturb.hpp"

using namespace uts;

namespace {

/// A day profile (48 half-hour slots): morning/evening commute bumps whose
/// timing and weight depend on the user's archetype.
ts::TimeSeries MakeDayProfile(int archetype, std::uint64_t seed) {
  prob::Rng rng(seed);
  const std::size_t n = 48;
  std::vector<double> v(n, 0.0);
  const double jitter = rng.Gaussian() * 1.5;
  double morning = 16.0, evening = 36.0, night = 0.0;
  switch (archetype) {
    case 0: morning = 16.0 + jitter; evening = 36.0 + jitter; break;  // 9-5
    case 1: morning = 12.0 + jitter; evening = 40.0 + jitter; break;  // early
    case 2: morning = 22.0 + jitter; evening = 44.0 + jitter; night = 1.0;
            break;                                                     // late
    default: break;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i);
    auto bump = [&](double center, double width, double height) {
      const double z = (t - center) / width;
      return height * std::exp(-0.5 * z * z);
    };
    v[i] = bump(morning, 4.0, 1.0) + bump(evening, 5.0, 0.9) +
           night * bump(46.0, 3.0, 0.5) + 0.05 * rng.Gaussian();
  }
  ts::TimeSeries series(std::move(v), archetype, "user/" + std::to_string(seed));
  ts::ZNormalizeInPlace(series);
  return series;
}

}  // namespace

int main() {
  std::printf("== privacy-preserving similarity over location profiles ==\n\n");

  // 90 users across three commute archetypes. The exact profiles live only
  // inside the publisher; the analyst sees the perturbed release.
  ts::Dataset exact("daily-profiles");
  for (std::size_t u = 0; u < 90; ++u) {
    exact.Add(MakeDayProfile(static_cast<int>(u % 3), 500 + u));
  }

  // The privacy transform: additive uniform noise, sigma 1.2 — strong
  // enough to hide individual slots, with the scale disclosed as metadata.
  const auto privacy_noise =
      uncertain::ErrorSpec::Constant(prob::ErrorKind::kUniform, 1.2);
  const uncertain::UncertainDataset published =
      uncertain::PerturbDataset(exact, privacy_noise, /*seed=*/11);

  constexpr std::size_t kWanted = 10;
  constexpr std::size_t kTargets = 12;  // average over a panel of analysts

  // --- Mining the published data -----------------------------------------
  ts::FilterOptions uma_opts;   // paper defaults: W = 5 window, λ = 1
  uma_opts.half_window = 2;
  ts::FilterOptions uema_opts = uma_opts;
  uema_opts.lambda = 1.0;

  // Precompute filtered views of every published profile.
  std::vector<std::vector<double>> raw(published.size());
  std::vector<std::vector<double>> uma(published.size());
  std::vector<std::vector<double>> uema(published.size());
  for (std::size_t i = 0; i < published.size(); ++i) {
    raw[i] = published[i].observations();
    uma[i] = ts::UncertainMovingAverage(raw[i], published[i].Stddevs(),
                                        uma_opts)
                 .ValueOrDie();
    uema[i] = ts::UncertainExponentialMovingAverage(
                  raw[i], published[i].Stddevs(), uema_opts)
                  .ValueOrDie();
  }

  struct Row {
    const char* name;
    const std::vector<std::vector<double>>* view;
    double hits = 0.0;
    double same_archetype = 0.0;
  };
  Row rows[] = {{"Euclidean (raw noisy)", &raw},
                {"UMA (w=2)", &uma},
                {"UEMA (w=2, lambda=1)", &uema}};

  for (std::size_t t = 0; t < kTargets; ++t) {
    const std::size_t target = t * 7;  // spread across archetypes
    const auto truth = query::KNearestEuclidean(exact, target, kWanted);
    std::vector<std::size_t> relevant;
    for (const auto& nb : truth) relevant.push_back(nb.index);

    for (Row& row : rows) {
      const auto& view = *row.view;
      const auto found =
          query::KNearest(view.size(), target, kWanted, [&](std::size_t i) {
            return distance::Euclidean(view[target], view[i]);
          });
      std::vector<std::size_t> indices;
      for (const auto& nb : found) {
        indices.push_back(nb.index);
        if (exact[nb.index].label() == exact[target].label()) {
          row.same_archetype += 1.0;
        }
      }
      row.hits +=
          static_cast<double>(core::ComputeSetMetrics(indices, relevant).hits);
    }
  }

  std::printf("retrieving each target's %zu most similar users from the "
              "published data\n(averaged over %zu targets):\n\n",
              kWanted, kTargets);
  for (const Row& row : rows) {
    std::printf("%-22s true-top-%zu overlap: %4.1f/%zu   same archetype: "
                "%4.1f/%zu\n",
                row.name, kWanted, row.hits / kTargets, kWanted,
                row.same_archetype / kTargets, kWanted);
  }

  std::printf(
      "\nTakeaway: the privacy transform destroys raw nearest-neighbour "
      "structure, but the\npublished noise scale lets UMA/UEMA recover most "
      "of it — analytics stay useful\nwithout ever touching the exact "
      "trajectories.\n");
  return 0;
}
