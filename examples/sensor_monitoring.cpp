/// \file sensor_monitoring.cpp
/// \brief Industrial sensor monitoring under measurement noise — the
/// paper's motivating scenario from manufacturing plants: "unexpected
/// vibration patterns in production machines ... are used to predict
/// failures" while "sensor readings are inherently imprecise because of the
/// noise introduced by the equipment itself" (Section 1).
///
/// Scenario: a plant records vibration signatures of a machine. A library
/// of historical signatures is labeled (healthy / bearing-wear / imbalance).
/// Each sensor has a calibration sheet: some channels are noisier than
/// others (mixed per-point σ). Given today's noisy signature, retrieve the
/// most similar historical episodes with a probabilistic range query and an
/// UEMA-filtered search, and compare what each returns.
///
/// Run: ./examples/sensor_monitoring

#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/matchers.hpp"
#include "core/metrics.hpp"
#include "distance/lp.hpp"
#include "measures/proud.hpp"
#include "prob/rng.hpp"
#include "prob/special.hpp"
#include "query/search.hpp"
#include "ts/filters.hpp"
#include "ts/normalize.hpp"
#include "uncertain/perturb.hpp"

using namespace uts;

namespace {

/// Synthesize a vibration signature: base rotation harmonic + condition-
/// specific components + smooth drift.
ts::TimeSeries MakeSignature(int condition, std::uint64_t seed,
                             std::size_t n = 128) {
  prob::Rng rng(seed);
  std::vector<double> v(n);
  const double base_freq = 0.35 + 0.01 * rng.Gaussian();
  // Acquisition is triggered at a fixed rotor position, so the phase is
  // nearly aligned across episodes (small trigger jitter only).
  const double phase = 0.15 * rng.Gaussian();
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i);
    double s = std::sin(base_freq * t + phase);
    switch (condition) {
      case 1:  // bearing wear: high-frequency rattle bursts
        s += 0.8 * std::sin(2.9 * t + phase) *
             (std::sin(0.05 * t) > 0.3 ? 1.0 : 0.15);
        break;
      case 2:  // imbalance: strong second harmonic + amplitude growth
        s += 0.9 * std::sin(2.0 * base_freq * t + 0.5 * phase) *
             (1.0 + 0.004 * t);
        break;
      default:  // healthy
        break;
    }
    v[i] = s + 0.05 * rng.Gaussian();
  }
  ts::TimeSeries series(std::move(v), condition,
                        "episode/" + std::to_string(seed));
  ts::ZNormalizeInPlace(series);
  return series;
}

const char* ConditionName(int label) {
  switch (label) {
    case 1: return "bearing-wear";
    case 2: return "imbalance";
    default: return "healthy";
  }
}

}  // namespace

int main() {
  std::printf("== sensor monitoring under uncertainty ==\n\n");

  // Historical library: 60 labeled episodes, 20 per condition.
  ts::Dataset history("vibration-history");
  for (std::size_t i = 0; i < 60; ++i) {
    history.Add(MakeSignature(static_cast<int>(i % 3), 1000 + i));
  }

  // Sensor calibration: the paper's mixed-σ regime — 20% of the channels
  // read with σ = 1.0, the rest with σ = 0.4 (per-point error models are
  // attached to each series and visible to the techniques).
  const auto noise =
      uncertain::ErrorSpec::MixedSigma(prob::ErrorKind::kNormal, 0.2, 1.0, 0.4);
  const uncertain::UncertainDataset observed =
      uncertain::PerturbDataset(history, noise, /*seed=*/7);

  // Today's signature: a fresh bearing-wear episode, measured once.
  const ts::TimeSeries today_exact = MakeSignature(1, 9999);
  const uncertain::UncertainSeries today =
      uncertain::PerturbSeries(today_exact, noise, /*seed=*/8);

  // Ground truth for reference: who is ACTUALLY similar (exact values)?
  ts::Dataset with_query = history;
  with_query.Add(today_exact);
  const auto truth =
      query::KNearestEuclidean(with_query, with_query.size() - 1, 10);

  // ---------------------------------------------------------------- PROUD
  // Probabilistic range query: episodes within ε with probability >= τ.
  // τ has "a considerable impact on the accuracy ... it is not obvious how
  // to set τ" (paper, Section 6): a strict τ rejects everything because the
  // squared-distance statistic is shifted by n·2σ² noise mass, so we show
  // both a strict and a tuned threshold.
  const double eps =
      distance::Euclidean(today.observations(),
                          observed[truth[4].index].observations());
  std::printf("PRQ threshold eps = %.3f (distance to the 5th true NN)\n\n",
              eps);

  auto proud_query = [&](double tau) {
    measures::Proud proud({.tau = tau, .sigma = noise.RepresentativeSigma()});
    std::vector<std::size_t> hits;
    for (std::size_t i = 0; i < observed.size(); ++i) {
      if (proud.Matches(today.observations(), observed[i].observations(),
                        eps)) {
        hits.push_back(i);
      }
    }
    return hits;
  };
  const std::vector<std::size_t> proud_strict = proud_query(0.6);
  // "The only way to pick the correct value is by experimental evaluation"
  // (Section 6): sweep τ like the paper and keep the best-F1 setting.
  std::vector<std::size_t> truth5;
  for (std::size_t k = 0; k < 5; ++k) truth5.push_back(truth[k].index);
  std::vector<std::size_t> proud_hits;
  double proud_best_tau = 0.5, proud_best_f1 = -1.0;
  // Sweep in ε_limit = Φ⁻¹(τ) space: the length-128 series carry a noise
  // mass of n·2σ² inside PROUD's distance statistic, which pushes the
  // F1-optimal τ deep into the lower tail.
  for (double z = -8.0; z <= 1.0; z += 0.25) {
    const double tau = prob::NormalCdf(z);
    const auto hits = proud_query(tau);
    const double f1 = core::ComputeSetMetrics(hits, truth5).f1;
    if (f1 > proud_best_f1) {
      proud_best_f1 = f1;
      proud_best_tau = tau;
      proud_hits = hits;
    }
  }
  std::printf("PROUD at strict tau=0.6 retrieves %zu episodes (the paper's "
              "tau-sensitivity problem);\nafter the paper's optimal-tau "
              "sweep, tau=%.2g:\n\n", proud_strict.size(), proud_best_tau);

  // ----------------------------------------------------------------- UEMA
  // Filter both sides with UEMA, then a plain Euclidean range query.
  ts::FilterOptions filter;
  filter.half_window = 2;
  filter.lambda = 1.0;
  auto today_filtered = ts::UncertainExponentialMovingAverage(
      today.observations(), today.Stddevs(), filter);
  std::vector<std::vector<double>> history_filtered(observed.size());
  for (std::size_t i = 0; i < observed.size(); ++i) {
    history_filtered[i] = ts::UncertainExponentialMovingAverage(
                              observed[i].observations(),
                              observed[i].Stddevs(), filter)
                              .ValueOrDie();
  }
  // Calibrate the UEMA threshold in its own (filtered) space.
  const double eps_uema = distance::Euclidean(
      today_filtered.ValueOrDie(), history_filtered[truth[4].index]);
  std::vector<std::size_t> uema_hits;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    if (distance::Euclidean(today_filtered.ValueOrDie(),
                            history_filtered[i]) <= eps_uema) {
      uema_hits.push_back(i);
    }
  }

  // ----------------------------------------------------------- comparison
  std::vector<std::size_t> relevant;
  for (std::size_t k = 0; k < 5; ++k) relevant.push_back(truth[k].index);

  auto report = [&](const char* name, const std::vector<std::size_t>& hits) {
    const core::SetMetrics m = core::ComputeSetMetrics(hits, relevant);
    std::printf("%-6s retrieved %2zu episodes  precision=%.2f recall=%.2f "
                "F1=%.2f\n", name, hits.size(), m.precision, m.recall, m.f1);
    std::size_t diagnosis[3] = {0, 0, 0};
    for (std::size_t i : hits) ++diagnosis[history[i].label() % 3];
    std::printf("       diagnosis votes: healthy=%zu bearing-wear=%zu "
                "imbalance=%zu\n", diagnosis[0], diagnosis[1], diagnosis[2]);
  };
  report("PROUD", proud_hits);
  report("UEMA", uema_hits);

  std::printf("\ntrue condition of today's episode: %s\n",
              ConditionName(today_exact.label()));
  std::printf("\nTakeaway: both searches surface bearing-wear episodes; UEMA "
              "exploits the\ncalibration sheet (per-channel sigma) plus "
              "temporal correlation and typically\nretrieves a cleaner "
              "neighbourhood, matching the paper's Section 5 findings.\n");
  return 0;
}
