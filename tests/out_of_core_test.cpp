// Out-of-core parity suite for the buffer-pool storage tier (src/ts):
// every engine query over a store paged through a ts::BufferPool — with a
// budget far smaller than the dataset, so blocks really spill and fault —
// must return results bitwise identical (values AND tie order) to the
// fully-resident run, at 1, 2 and 8 threads. The suite also pins the
// pool's accounting contract (peak resident bytes stay within budget plus
// the pinned working set) and stresses concurrent pin/evict traffic from
// ParallelFor workers; CI runs it under TSan, UBSan and ASan+LSan.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <memory>
#include <numeric>
#include <vector>

#include "prob/rng.hpp"
#include "query/engine.hpp"
#include "query/engine_context.hpp"
#include "query/search.hpp"
#include "query/uncertain_engine.hpp"
#include "ts/buffer_pool.hpp"
#include "ts/dataset.hpp"
#include "ts/row_block.hpp"
#include "ts/soa_store.hpp"
#include "ts/store_view.hpp"
#include "uncertain/perturb.hpp"
#include "uncertain/uncertain_series.hpp"

namespace uts {
namespace {

constexpr std::size_t kThreadCounts[] = {1, 2, 8};

// Small enough for sanitizer runs, large enough for several blocks at the
// tiny block_rows below.
constexpr std::size_t kSeries = 48;
constexpr std::size_t kLength = 32;
constexpr std::size_t kBlockRows = 8;  // multiple of distance::kQueryBlock
constexpr std::size_t kBlockBytes = kBlockRows * kLength * sizeof(double);

std::shared_ptr<ts::BufferPool> MakePool(std::size_t budget_bytes) {
  ts::BufferPool::Options options;
  options.budget_bytes = budget_bytes;
  return ts::BufferPool::Create(options).ValueOrDie();
}

ts::Dataset GaussianDataset(std::size_t n, std::size_t len,
                            std::uint64_t seed) {
  prob::Rng rng(seed);
  ts::Dataset d("ooc");
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> values(len);
    for (double& v : values) v = rng.Gaussian();
    d.Add(ts::TimeSeries(std::move(values), int(i % 3)));
  }
  return d;
}

uncertain::UncertainDataset GaussianUncertain(std::size_t n, std::size_t len,
                                              std::uint64_t seed,
                                              prob::ErrorKind kind,
                                              double sigma) {
  auto err = prob::MakeError(kind, sigma);
  prob::Rng rng(seed);
  uncertain::UncertainDataset d;
  d.name = "ooc-uncertain";
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> values(len);
    for (double& v : values) v = rng.Gaussian();
    d.series.emplace_back(
        std::move(values),
        std::vector<prob::ErrorDistributionPtr>(len, err));
  }
  return d;
}

void ExpectSameNeighbors(const std::vector<query::Neighbor>& resident,
                         const std::vector<query::Neighbor>& paged) {
  ASSERT_EQ(resident.size(), paged.size());
  for (std::size_t i = 0; i < resident.size(); ++i) {
    EXPECT_EQ(resident[i].index, paged[i].index) << i;
    EXPECT_EQ(resident[i].distance, paged[i].distance) << i;  // bitwise
  }
}

// --- Store + view mechanics --------------------------------------------------

TEST(OutOfCoreStoreTest, ZeroBudgetRoundTripsEveryRow) {
  // Budget 0: every unpinned block is evicted, so each PinRow below faults
  // its block back from the spill log. The bytes must survive unchanged.
  const std::size_t rows = 37, stride = 16;  // ragged tail block
  prob::Rng rng(7);
  std::vector<double> values(rows * stride);
  for (double& v : values) v = rng.Gaussian();
  const std::vector<double> expected = values;

  auto pool = MakePool(0);
  const ts::SoaStore store =
      ts::SoaStore::FromPacked(std::move(values), stride, pool, 4)
          .ValueOrDie();
  EXPECT_TRUE(store.paged());
  EXPECT_EQ(store.block_rows(), 4u);
  EXPECT_EQ(store.num_blocks(), 10u);  // 9 full blocks + 5-row... (37 = 9*4+1)
  const ts::StoreView view(store);
  for (std::size_t pass = 0; pass < 2; ++pass) {
    for (std::size_t r = 0; r < rows; ++r) {
      const auto pin = ts::PinRowOrAbort(view, r);
      for (std::size_t t = 0; t < stride; ++t) {
        EXPECT_EQ(pin.row()[t], expected[r * stride + t]) << r << "," << t;
      }
    }
  }
  const auto stats = pool->stats();
  EXPECT_GT(stats.faults, 0u);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_EQ(stats.spilled_bytes, rows * stride * sizeof(double));
}

TEST(OutOfCoreStoreTest, PartitionRowsNeverStraddlesBlocks) {
  auto pool = MakePool(0);
  std::vector<double> values(37 * 8, 1.0);
  const ts::SoaStore store =
      ts::SoaStore::FromPacked(std::move(values), 8, pool, 8).ValueOrDie();
  const ts::StoreView view(store);
  for (std::size_t grain : {1u, 3u, 5u, 8u, 64u}) {
    const auto chunks = ts::PartitionRows(view, grain);
    std::size_t covered = 0;
    for (const ts::RowChunk& chunk : chunks) {
      EXPECT_EQ(chunk.begin, covered);  // contiguous, ascending
      EXPECT_LT(chunk.begin, chunk.end);
      // A chunk lives inside exactly one block.
      EXPECT_EQ(chunk.block, view.block_of(chunk.begin));
      EXPECT_EQ(chunk.block, view.block_of(chunk.end - 1));
      covered = chunk.end;
    }
    EXPECT_EQ(covered, store.rows()) << "grain " << grain;
  }
}

TEST(OutOfCoreStoreTest, ConstructionIsCheckedNotAsserted) {
  // Violations must surface as Status in Release builds too (no assert,
  // no silent truncation).
  EXPECT_FALSE(
      ts::SoaStore::FromPacked(std::vector<double>(7, 0.0), 3).ok());
  EXPECT_FALSE(
      ts::SoaStore::FromPacked(std::vector<double>(4, 0.0), 0).ok());
  auto empty = ts::SoaStore::FromPacked({}, 0);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.ValueOrDie().empty());
}

// --- Certain engine parity ---------------------------------------------------

query::EngineOptions PagedOptions(std::size_t threads, bool indexed,
                                  std::shared_ptr<ts::BufferPool> pool) {
  query::EngineOptions options;
  options.threads = threads;
  options.grain = 16;
  options.index.enabled = indexed;
  options.buffer_pool = std::move(pool);
  options.block_rows = kBlockRows;
  return options;
}

TEST(OutOfCoreCertainTest, PagedBitwiseEqualsResidentAtEveryThreadCount) {
  const ts::Dataset d = GaussianDataset(kSeries, kLength, 11);
  // The reference shares the paged engine's `indexed` flag: the unindexed
  // all-kNN symmetric matrix path uses the multi-query SIMD kernel, which
  // is tolerance-level (not bitwise) against the per-row kernel the index
  // cascade scores with. Indexed-vs-unindexed equality is index_parity_test's
  // contract; this suite pins paged-vs-resident only.
  for (bool indexed : {false, true}) {
    const query::DistanceMatrixEngine resident(
        d, PagedOptions(1, indexed, nullptr));
    ASSERT_TRUE(resident.batched());
    const auto knn = resident.KNearestEuclidean(3, 10);
    const auto all = resident.AllKNearestEuclidean(5);
    const double epsilon = knn[6].distance;  // nonempty, nontrivial range
    const auto range = resident.RangeSearchEuclidean(3, epsilon);
    const auto motifs = resident.TopKMotifsEuclidean(4);

    for (std::size_t threads : kThreadCounts) {
      SCOPED_TRACE(testing::Message()
                   << "threads=" << threads << " indexed=" << indexed);
      auto pool = MakePool(2 * kBlockBytes);  // << dataset: real paging
      const query::DistanceMatrixEngine paged(
          d, PagedOptions(threads, indexed, pool));
      ASSERT_TRUE(paged.batched());
      {
        SCOPED_TRACE("knn");
        ExpectSameNeighbors(knn, paged.KNearestEuclidean(3, 10));
      }
      const auto paged_all = paged.AllKNearestEuclidean(5);
      ASSERT_EQ(all.size(), paged_all.size());
      for (std::size_t q = 0; q < all.size(); ++q) {
        SCOPED_TRACE(testing::Message() << "all-knn q=" << q);
        ExpectSameNeighbors(all[q], paged_all[q]);
      }
      EXPECT_EQ(range, paged.RangeSearchEuclidean(3, epsilon));
      const auto paged_motifs = paged.TopKMotifsEuclidean(4);
      ASSERT_EQ(motifs.size(), paged_motifs.size());
      for (std::size_t i = 0; i < motifs.size(); ++i) {
        EXPECT_EQ(motifs[i].a, paged_motifs[i].a);
        EXPECT_EQ(motifs[i].b, paged_motifs[i].b);
        EXPECT_EQ(motifs[i].distance, paged_motifs[i].distance);
      }
      EXPECT_GT(pool->stats().faults, 0u)
          << "budget below dataset size must actually page";
    }
  }
}

TEST(OutOfCoreCertainTest, PeakResidentStaysWithinBudgetPlusPinnedBlock) {
  // The acceptance contract: a full sweep with the budget far below the
  // packed dataset completes with the pool's high-water mark within budget
  // plus the transiently pinned block (the page being admitted or faulted
  // is exempt from eviction while it is the pin target; the query row's
  // block and the scanned block are both pinned, but they count against
  // the budget the eviction loop enforces).
  const ts::Dataset d = GaussianDataset(kSeries, kLength, 12);
  const std::size_t budget = 2 * kBlockBytes;  // dataset is 6 blocks
  auto pool = MakePool(budget);
  const query::DistanceMatrixEngine paged(d, PagedOptions(1, false, pool));
  ASSERT_TRUE(paged.batched());
  for (std::size_t q = 0; q < d.size(); ++q) {
    (void)paged.KNearestEuclidean(q, 10);
  }
  const auto stats = pool->stats();
  EXPECT_GT(stats.faults, 0u);
  EXPECT_LE(stats.peak_resident_bytes, budget + kBlockBytes);
}

TEST(OutOfCoreCertainTest, ZeroBudgetConcurrentStress) {
  // Budget 0 maximizes evict/fault traffic; 8 workers hammer the pool's
  // single mutex from the chunked ParallelFor partitions. TSan/ASan runs
  // of this test are the storage tier's race/leak gate.
  const ts::Dataset d = GaussianDataset(kSeries, kLength, 13);
  const query::DistanceMatrixEngine resident(d,
                                             PagedOptions(1, false, nullptr));
  const auto expected = resident.AllKNearestEuclidean(5);
  auto pool = MakePool(0);
  const query::DistanceMatrixEngine paged(d, PagedOptions(8, false, pool));
  const auto got = paged.AllKNearestEuclidean(5);
  ASSERT_EQ(expected.size(), got.size());
  for (std::size_t q = 0; q < expected.size(); ++q) {
    ExpectSameNeighbors(expected[q], got[q]);
  }
  EXPECT_GT(pool->stats().faults, 0u);
}

// --- Uncertain engine parity -------------------------------------------------

query::UncertainEngineOptions PagedUncertainOptions(
    std::size_t threads, bool indexed, std::shared_ptr<ts::BufferPool> pool) {
  query::UncertainEngineOptions options;
  options.threads = threads;
  options.grain = 4;
  options.index.enabled = indexed;
  options.proud_sigma = 0.5;
  options.buffer_pool = std::move(pool);
  options.block_rows = kBlockRows;
  return options;
}

TEST(OutOfCoreUncertainTest, DustPagedBitwiseEqualsResident) {
  // Uniform error: numeric DUST tables, the lookup kernel path.
  const auto d = GaussianUncertain(kSeries, kLength, 21,
                                   prob::ErrorKind::kUniform, 0.5);
  auto resident = query::UncertainEngine::Create(
                      d, PagedUncertainOptions(1, false, nullptr))
                      .ValueOrDie();
  ASSERT_TRUE(resident->BuildDustTables().ok());
  const auto distances = resident->DustDistances(2).ValueOrDie();
  const auto knn = resident->KNearestDust(2, 7).ValueOrDie();
  const double epsilon = knn[4].distance;
  const auto range = resident->RangeSearchDust(2, epsilon).ValueOrDie();

  for (std::size_t threads : kThreadCounts) {
    for (bool indexed : {false, true}) {
      auto pool = MakePool(2 * kBlockBytes);
      auto paged = query::UncertainEngine::Create(
                       d, PagedUncertainOptions(threads, indexed, pool))
                       .ValueOrDie();
      ASSERT_TRUE(paged->BuildDustTables().ok());
      const auto paged_distances = paged->DustDistances(2).ValueOrDie();
      ASSERT_EQ(distances.size(), paged_distances.size());
      for (std::size_t i = 0; i < distances.size(); ++i) {
        EXPECT_EQ(distances[i], paged_distances[i]) << i;
      }
      ExpectSameNeighbors(knn, paged->KNearestDust(2, 7).ValueOrDie());
      EXPECT_EQ(range, paged->RangeSearchDust(2, epsilon).ValueOrDie());
      EXPECT_GT(pool->stats().faults, 0u);
    }
  }
}

TEST(OutOfCoreUncertainTest, ProudPagedBitwiseEqualsResident) {
  const auto d = GaussianUncertain(kSeries, kLength, 22,
                                   prob::ErrorKind::kNormal, 0.5);
  auto resident = query::UncertainEngine::Create(
                      d, PagedUncertainOptions(1, false, nullptr))
                      .ValueOrDie();
  const auto probs = resident->ProudMatchProbabilities(1, 6.0);
  const auto prq = resident->ProbabilisticRangeSearchProud(1, 6.0, 0.3);

  for (std::size_t threads : kThreadCounts) {
    auto pool = MakePool(2 * kBlockBytes);
    auto paged = query::UncertainEngine::Create(
                     d, PagedUncertainOptions(threads, false, pool))
                     .ValueOrDie();
    const auto paged_probs = paged->ProudMatchProbabilities(1, 6.0);
    ASSERT_EQ(probs.size(), paged_probs.size());
    for (std::size_t i = 0; i < probs.size(); ++i) {
      EXPECT_EQ(probs[i], paged_probs[i]) << i;
    }
    EXPECT_EQ(prq, paged->ProbabilisticRangeSearchProud(1, 6.0, 0.3));
    EXPECT_GT(pool->stats().faults, 0u);
  }
}

TEST(OutOfCoreUncertainTest, ProudGeneralMomentColumnsShareBlockGeometry) {
  // Exponential error: the general-moment path reads the lazily built
  // m2/m3/m4 SoA columns, which must be blocked exactly like the
  // observation store and page through the same pool.
  const auto d = GaussianUncertain(24, kLength, 23,
                                   prob::ErrorKind::kExponential, 0.5);
  auto resident = query::UncertainEngine::Create(
                      d, PagedUncertainOptions(1, false, nullptr))
                      .ValueOrDie();
  ASSERT_TRUE(resident->BuildProudMomentColumns().ok());
  const auto probs = resident->ProudGeneralMatchProbabilities(0, 6.0)
                         .ValueOrDie();

  for (std::size_t threads : kThreadCounts) {
    auto pool = MakePool(2 * kBlockBytes);
    auto paged = query::UncertainEngine::Create(
                     d, PagedUncertainOptions(threads, false, pool))
                     .ValueOrDie();
    ASSERT_TRUE(paged->BuildProudMomentColumns().ok());
    const auto paged_probs = paged->ProudGeneralMatchProbabilities(0, 6.0)
                                 .ValueOrDie();
    ASSERT_EQ(probs.size(), paged_probs.size());
    for (std::size_t i = 0; i < probs.size(); ++i) {
      EXPECT_EQ(probs[i], paged_probs[i]) << i;
    }
    EXPECT_GT(pool->stats().faults, 0u);
  }
}

TEST(OutOfCoreUncertainTest, MunichPagedBitwiseEqualsResident) {
  const ts::Dataset exact = GaussianDataset(16, kLength, 24);
  const auto spec =
      uncertain::ErrorSpec::Constant(prob::ErrorKind::kNormal, 0.5);
  const auto pdf = uncertain::PerturbDataset(exact, spec, 25);
  const auto samples =
      uncertain::PerturbDatasetMultiSample(exact, spec, 5, 26);

  auto resident = query::UncertainEngine::Create(
                      pdf, PagedUncertainOptions(1, false, nullptr))
                      .ValueOrDie();
  ASSERT_TRUE(resident->AttachSamples(samples).ok());
  const auto probs = resident->MunichMatchProbabilities(0, 4.0).ValueOrDie();

  for (std::size_t threads : kThreadCounts) {
    auto pool = MakePool(2 * kBlockBytes);
    auto paged = query::UncertainEngine::Create(
                     pdf, PagedUncertainOptions(threads, false, pool))
                     .ValueOrDie();
    ASSERT_TRUE(paged->AttachSamples(samples).ok());
    const auto paged_probs = paged->MunichMatchProbabilities(0, 4.0)
                                 .ValueOrDie();
    ASSERT_EQ(probs.size(), paged_probs.size());
    for (std::size_t i = 0; i < probs.size(); ++i) {
      EXPECT_EQ(probs[i], paged_probs[i]) << i;
    }
  }
}

// --- Context plumbing --------------------------------------------------------

TEST(OutOfCoreContextTest, MemoryBudgetCreatesOnePoolAndKeepsResultsExact) {
  const ts::Dataset d = GaussianDataset(kSeries, kLength, 31);
  const query::DistanceMatrixEngine reference(d, {});
  const auto expected = reference.KNearestEuclidean(0, 10);

  query::EngineContextOptions options;
  options.threads = 2;
  options.memory_budget_bytes = 2 * kBlockBytes;
  options.block_rows = kBlockRows;
  query::EngineContext context(options);
  auto pool = context.buffer_pool();
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(context.buffer_pool(), pool);  // cached, not re-created
  EXPECT_EQ(context.stats().buffer_pools_created, 1u);

  const query::DistanceMatrixEngine& certain = context.Certain(d);
  ExpectSameNeighbors(expected, certain.KNearestEuclidean(0, 10));
  EXPECT_GT(pool->stats().admits, 0u);
}

}  // namespace
}  // namespace uts
