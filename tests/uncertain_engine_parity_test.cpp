// Parity suite for the parallel uncertain-measure engine
// (src/query/uncertain_engine): DUST / PROUD / MUNICH sweep, PRQ and k-NN
// results must be bit-identical — indices AND distances/probabilities — to
// the scalar measure APIs at 1, 2 and 8 threads, including tie-heavy and
// degenerate-σ inputs. The references below call the scalar measures
// directly (the sequential reference path the engine is documented
// against), mirroring tests/engine_parity_test.cpp for the certain engine.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/experiment.hpp"
#include "core/matchers.hpp"
#include "measures/dust.hpp"
#include "measures/munich.hpp"
#include "measures/proud.hpp"
#include "prob/rng.hpp"
#include "query/uncertain_engine.hpp"
#include "uncertain/error_spec.hpp"
#include "uncertain/perturb.hpp"

namespace uts::query {
namespace {

using prob::ErrorKind;

constexpr std::size_t kThreadCounts[] = {1, 2, 8};

UncertainEngineOptions SmallChunkOptions(std::size_t threads) {
  UncertainEngineOptions options;
  options.threads = threads;
  options.grain = 4;  // force many chunks even on small datasets
  // This suite pins the engine bit-identical to the scalar measure APIs,
  // which is a property of the scalar kernel path; SIMD-vs-scalar agreement
  // (bitwise for DUST, tolerance for PROUD) is simd_parity_test's job.
  options.simd = distance::SimdMode::kForceScalar;
  return options;
}

/// Gaussian observations with a per-point error model from `error_of`.
template <typename ErrorOf>
uncertain::UncertainDataset GaussianUncertain(std::size_t n, std::size_t len,
                                              std::uint64_t seed,
                                              const ErrorOf& error_of) {
  prob::Rng rng(seed);
  uncertain::UncertainDataset d;
  d.name = "gauss-uncertain";
  for (std::size_t s = 0; s < n; ++s) {
    std::vector<double> obs(len);
    std::vector<prob::ErrorDistributionPtr> errors(len);
    for (std::size_t t = 0; t < len; ++t) {
      obs[t] = rng.Gaussian();
      errors[t] = error_of(s, t);
    }
    d.series.emplace_back(std::move(obs), std::move(errors));
  }
  return d;
}

/// Observations on a {0, 1} grid: distances and probabilities collide
/// constantly, so every tie-break path in selection is exercised.
template <typename ErrorOf>
uncertain::UncertainDataset TieHeavyUncertain(std::size_t n, std::size_t len,
                                              std::uint64_t seed,
                                              const ErrorOf& error_of) {
  prob::Rng rng(seed);
  uncertain::UncertainDataset d;
  d.name = "ties-uncertain";
  for (std::size_t s = 0; s < n; ++s) {
    std::vector<double> obs(len);
    std::vector<prob::ErrorDistributionPtr> errors(len);
    for (std::size_t t = 0; t < len; ++t) {
      obs[t] = static_cast<double>(rng.Next() % 2);
      errors[t] = error_of(s, t);
    }
    d.series.emplace_back(std::move(obs), std::move(errors));
  }
  return d;
}

// --- Scalar references -------------------------------------------------------

std::vector<double> ReferenceDustDistances(
    const uncertain::UncertainDataset& d, std::size_t query,
    const measures::DustOptions& options) {
  measures::Dust dust(options);
  std::vector<double> out(d.size(), 0.0);
  for (std::size_t i = 0; i < d.size(); ++i) {
    out[i] = dust.Distance(d[query], d[i]).ValueOrDie();
  }
  return out;
}

std::vector<Neighbor> ReferenceKNearestAscending(
    const std::vector<double>& values, std::size_t exclude, std::size_t k) {
  std::vector<Neighbor> all;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i == exclude) continue;
    all.push_back({i, values[i]});
  }
  const std::size_t take = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<long>(take),
                    all.end(), [](const Neighbor& a, const Neighbor& b) {
                      if (a.distance != b.distance) {
                        return a.distance < b.distance;
                      }
                      return a.index < b.index;
                    });
  all.resize(take);
  return all;
}

std::vector<Neighbor> ReferenceKNearestDescending(
    const std::vector<double>& values, std::size_t exclude, std::size_t k) {
  std::vector<Neighbor> all;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i == exclude) continue;
    all.push_back({i, values[i]});
  }
  const std::size_t take = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<long>(take),
                    all.end(), [](const Neighbor& a, const Neighbor& b) {
                      if (a.distance != b.distance) {
                        return a.distance > b.distance;
                      }
                      return a.index < b.index;
                    });
  all.resize(take);
  return all;
}

void ExpectNeighborsIdentical(const std::vector<Neighbor>& got,
                              const std::vector<Neighbor>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].index, want[i].index) << "rank " << i;
    EXPECT_EQ(got[i].distance, want[i].distance) << "rank " << i;  // bitwise
  }
}

// --- DUST --------------------------------------------------------------------

struct DustCase {
  const char* name;
  uncertain::UncertainDataset dataset;
};

std::vector<DustCase> DustCases() {
  // Normal errors: the closed-form fast path, one error class.
  auto normal = prob::MakeNormalError(0.5);
  // Mixed normal σ: two classes, the classed kernel with closed-form luts.
  auto hi = prob::MakeNormalError(1.0);
  auto lo = prob::MakeNormalError(0.4);
  // Uniform errors: the numeric table-lookup path (with saturation).
  auto uniform = prob::MakeUniformError(0.5);

  std::vector<DustCase> cases;
  cases.push_back({"normal-closed-form",
                   TieHeavyUncertain(40, 8, 11, [&](std::size_t, std::size_t) {
                     return normal;
                   })});
  cases.push_back(
      {"mixed-sigma-classed",
       GaussianUncertain(40, 12, 12, [&](std::size_t s, std::size_t t) {
         return (s + t) % 3 == 0 ? hi : lo;
       })});
  cases.push_back({"uniform-table",
                   GaussianUncertain(30, 10, 13,
                                     [&](std::size_t, std::size_t) {
                                       return uniform;
                                     })});
  return cases;
}

TEST(UncertainEngineParityTest, DustSweepMatchesScalarAtEveryThreadCount) {
  for (DustCase& c : DustCases()) {
    const auto reference = ReferenceDustDistances(c.dataset, 0,
                                                  measures::DustOptions{});
    for (std::size_t threads : kThreadCounts) {
      auto engine =
          UncertainEngine::Create(c.dataset, SmallChunkOptions(threads));
      ASSERT_TRUE(engine.ok()) << c.name << ": " << engine.status();
      ASSERT_TRUE(engine.ValueOrDie()->BuildDustTables().ok()) << c.name;
      auto distances = engine.ValueOrDie()->DustDistances(0);
      ASSERT_TRUE(distances.ok()) << c.name;
      ASSERT_EQ(distances.ValueOrDie().size(), reference.size());
      for (std::size_t i = 0; i < reference.size(); ++i) {
        EXPECT_EQ(distances.ValueOrDie()[i], reference[i])  // bitwise
            << c.name << " threads=" << threads << " candidate=" << i;
      }
    }
  }
}

TEST(UncertainEngineParityTest, DustKnnAndRangeMatchScalarWithTies) {
  for (DustCase& c : DustCases()) {
    const auto reference = ReferenceDustDistances(c.dataset, 5,
                                                  measures::DustOptions{});
    const auto want_knn = ReferenceKNearestAscending(reference, 5, 10);
    // ε equal to an exactly attained distance makes the <= boundary
    // decisive; on the tie-heavy grid several candidates sit on it.
    const double epsilon = reference[17];
    std::vector<std::size_t> want_rq;
    for (std::size_t i = 0; i < reference.size(); ++i) {
      if (i != 5 && reference[i] <= epsilon) want_rq.push_back(i);
    }
    for (std::size_t threads : kThreadCounts) {
      auto engine =
          UncertainEngine::Create(c.dataset, SmallChunkOptions(threads));
      ASSERT_TRUE(engine.ok());
      ASSERT_TRUE(engine.ValueOrDie()->BuildDustTables().ok());
      ExpectNeighborsIdentical(
          engine.ValueOrDie()->KNearestDust(5, 10).ValueOrDie(), want_knn);
      EXPECT_EQ(engine.ValueOrDie()->RangeSearchDust(5, epsilon).ValueOrDie(),
                want_rq)
          << c.name << " threads=" << threads;
    }
  }
}

TEST(UncertainEngineParityTest, DustQueriesRequireBuiltTables) {
  auto normal = prob::MakeNormalError(0.5);
  const auto d = GaussianUncertain(6, 4, 14, [&](std::size_t, std::size_t) {
    return normal;
  });
  auto engine = UncertainEngine::Create(d, SmallChunkOptions(1));
  ASSERT_TRUE(engine.ok());
  EXPECT_FALSE(engine.ValueOrDie()->dust_ready());
  EXPECT_FALSE(engine.ValueOrDie()->DustDistances(0).ok());
  ASSERT_TRUE(engine.ValueOrDie()->BuildDustTables().ok());
  EXPECT_TRUE(engine.ValueOrDie()->dust_ready());
  EXPECT_TRUE(engine.ValueOrDie()->DustDistances(0).ok());
}

TEST(UncertainEngineParityTest, DustTablesBorrowedFromSharedCacheMatch) {
  // The matcher path hands the engine a persistent measures::Dust cache so
  // rebuilds across datasets reuse tables. Borrowed tables must produce
  // bitwise the same sweeps as privately built ones, and a second engine
  // over the same cache must not rebuild anything.
  auto uniform = prob::MakeUniformError(0.5);
  const auto d = GaussianUncertain(20, 8, 15, [&](std::size_t, std::size_t) {
    return uniform;
  });
  measures::Dust cache;
  auto own = UncertainEngine::Create(d, SmallChunkOptions(2));
  ASSERT_TRUE(own.ok());
  ASSERT_TRUE(own.ValueOrDie()->BuildDustTables().ok());
  auto borrowed = UncertainEngine::Create(d, SmallChunkOptions(2));
  ASSERT_TRUE(borrowed.ok());
  ASSERT_TRUE(borrowed.ValueOrDie()->BuildDustTables(cache).ok());
  const std::size_t tables_after_first = cache.CacheSize();
  EXPECT_GT(tables_after_first, 0u);
  const auto want = own.ValueOrDie()->DustDistances(3).ValueOrDie();
  EXPECT_EQ(borrowed.ValueOrDie()->DustDistances(3).ValueOrDie(), want);
  // Re-binding over the same cache: nothing rebuilt, same results.
  auto again = UncertainEngine::Create(d, SmallChunkOptions(1));
  ASSERT_TRUE(again.ok());
  ASSERT_TRUE(again.ValueOrDie()->BuildDustTables(cache).ok());
  EXPECT_EQ(cache.CacheSize(), tables_after_first);
  EXPECT_EQ(again.ValueOrDie()->DustDistances(3).ValueOrDie(), want);
}

// --- PROUD -------------------------------------------------------------------

TEST(UncertainEngineParityTest, ProudPrqMatchesScalarAtEveryThreadCount) {
  auto err = prob::MakeNormalError(0.6);
  const auto ties = TieHeavyUncertain(50, 8, 21, [&](std::size_t,
                                                     std::size_t) {
    return err;
  });
  const double sigma = 0.6;
  for (double tau : {0.1, 0.5, 0.9}) {
    measures::Proud proud({.tau = tau, .sigma = sigma});
    for (std::size_t q : {std::size_t{0}, std::size_t{49}}) {
      // ε on an attained observation distance → exact decision boundaries.
      double eps_sq = 0.0;
      for (std::size_t t = 0; t < 8; ++t) {
        const double d = ties[q].observation(t) - ties[3].observation(t);
        eps_sq += d * d;
      }
      const double epsilon = std::sqrt(eps_sq);
      std::vector<std::size_t> want;
      for (std::size_t i = 0; i < ties.size(); ++i) {
        if (i == q) continue;
        if (proud.Matches(ties[q].observations(), ties[i].observations(),
                          epsilon)) {
          want.push_back(i);
        }
      }
      for (std::size_t threads : kThreadCounts) {
        UncertainEngineOptions options = SmallChunkOptions(threads);
        options.proud_sigma = sigma;
        auto engine = UncertainEngine::Create(ties, options);
        ASSERT_TRUE(engine.ok());
        EXPECT_EQ(engine.ValueOrDie()->ProbabilisticRangeSearchProud(
                      q, epsilon, tau),
                  want)
            << "tau=" << tau << " threads=" << threads << " q=" << q;
      }
    }
  }
}

TEST(UncertainEngineParityTest, ProudDegenerateSigmaSharpThreshold) {
  // σ = 0 collapses PROUD to a deterministic distance test with exact
  // integer tie boundaries on the {0,1} grid.
  auto err = prob::MakeNoError();
  const auto ties = TieHeavyUncertain(40, 6, 22, [&](std::size_t,
                                                     std::size_t) {
    return err;
  });
  measures::Proud proud({.tau = 0.5, .sigma = 0.0});
  const double epsilon = std::sqrt(2.0);  // attained exactly by many pairs
  std::vector<std::size_t> want;
  for (std::size_t i = 1; i < ties.size(); ++i) {
    if (proud.Matches(ties[0].observations(), ties[i].observations(),
                      epsilon)) {
      want.push_back(i);
    }
  }
  EXPECT_FALSE(want.empty());
  EXPECT_LT(want.size(), ties.size() - 1);  // the boundary is decisive
  for (std::size_t threads : kThreadCounts) {
    UncertainEngineOptions options = SmallChunkOptions(threads);
    options.proud_sigma = 0.0;
    auto engine = UncertainEngine::Create(ties, options);
    ASSERT_TRUE(engine.ok());
    EXPECT_EQ(
        engine.ValueOrDie()->ProbabilisticRangeSearchProud(0, epsilon, 0.5),
        want)
        << "threads=" << threads;
  }
}

TEST(UncertainEngineParityTest, ProudKnnByProbabilityMatchesScalar) {
  auto err = prob::MakeNormalError(0.8);
  const auto ties = TieHeavyUncertain(40, 8, 23, [&](std::size_t,
                                                     std::size_t) {
    return err;
  });
  const double sigma = 0.8;
  const double epsilon = 2.5;
  measures::Proud proud({.tau = 0.5, .sigma = sigma});
  std::vector<double> probs(ties.size(), 0.0);
  for (std::size_t i = 0; i < ties.size(); ++i) {
    probs[i] = proud.MatchProbability(ties[7].observations(),
                                      ties[i].observations(), epsilon);
  }
  const auto want = ReferenceKNearestDescending(probs, 7, 12);
  for (std::size_t threads : kThreadCounts) {
    UncertainEngineOptions options = SmallChunkOptions(threads);
    options.proud_sigma = sigma;
    auto engine = UncertainEngine::Create(ties, options);
    ASSERT_TRUE(engine.ok());
    ExpectNeighborsIdentical(
        engine.ValueOrDie()->KNearestProud(7, epsilon, 12), want);
    // The dense sweep is bitwise the scalar per-pair probability.
    const auto dense =
        engine.ValueOrDie()->ProudMatchProbabilities(7, epsilon);
    for (std::size_t i = 0; i < probs.size(); ++i) {
      EXPECT_EQ(dense[i], probs[i]) << "candidate " << i;
    }
  }
}

TEST(UncertainEngineParityTest, ProudGeneralMomentsMatchScalar) {
  // Mixed per-point error models: the moment-column sweep must reproduce
  // Proud::MatchProbabilityGeneral bit-exactly.
  auto hi = prob::MakeExponentialError(1.0);
  auto lo = prob::MakeNormalError(0.4);
  const auto d = GaussianUncertain(30, 10, 24, [&](std::size_t s,
                                                   std::size_t t) {
    return (s + 2 * t) % 4 == 0 ? hi : lo;
  });
  const double epsilon = 3.0;
  for (std::size_t threads : kThreadCounts) {
    auto engine = UncertainEngine::Create(d, SmallChunkOptions(threads));
    ASSERT_TRUE(engine.ok());
    // The moment columns are an explicit setup step (like the DUST tables).
    EXPECT_FALSE(
        engine.ValueOrDie()->ProudGeneralMatchProbabilities(2, epsilon).ok());
    ASSERT_TRUE(engine.ValueOrDie()->BuildProudMomentColumns().ok());
    const auto got =
        engine.ValueOrDie()->ProudGeneralMatchProbabilities(2, epsilon);
    ASSERT_TRUE(got.ok());
    for (std::size_t i = 0; i < d.size(); ++i) {
      EXPECT_EQ(got.ValueOrDie()[i],
                measures::Proud::MatchProbabilityGeneral(d[2], d[i], epsilon))
          << "candidate " << i << " threads=" << threads;
    }
  }
}

// --- MUNICH ------------------------------------------------------------------

struct MunichFixture {
  uncertain::UncertainDataset pdf;
  uncertain::MultiSampleDataset samples;
};

MunichFixture MakeMunichFixture(std::size_t n, std::size_t len,
                                std::size_t s, double sigma,
                                std::uint64_t seed) {
  prob::Rng rng(seed);
  ts::Dataset exact("exact");
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> values(len);
    for (double& v : values) v = rng.Gaussian();
    exact.Add(ts::TimeSeries(std::move(values)));
  }
  const auto spec =
      uncertain::ErrorSpec::Constant(ErrorKind::kNormal, sigma);
  MunichFixture f;
  f.pdf = uncertain::PerturbDataset(exact, spec, seed + 1);
  f.samples = uncertain::PerturbDatasetMultiSample(exact, spec, s, seed + 2);
  return f;
}

std::vector<double> ReferenceMunichProbabilities(
    const MunichFixture& f, const measures::MunichOptions& options,
    std::uint64_t engine_seed, std::size_t query, double epsilon) {
  const measures::Munich munich(options);
  std::vector<double> probs(f.samples.size(), 0.0);
  for (std::size_t i = 0; i < f.samples.size(); ++i) {
    if (i == query) continue;
    // The engine's counter-based pair seed: DeriveSeed(seed, q·n + c + 0x9a1).
    const std::uint64_t seed = prob::DeriveSeed(
        engine_seed, query * f.samples.size() + i + 0x9a1);
    probs[i] = munich
                   .MatchProbability(f.samples[query], f.samples[i], epsilon,
                                     seed)
                   .ValueOrDie();
  }
  return probs;
}

TEST(UncertainEngineParityTest, MunichSweepMatchesScalarCounterSeeds) {
  const MunichFixture f = MakeMunichFixture(20, 6, 3, 0.5, 31);
  measures::MunichOptions estimators[2];
  estimators[0].estimator = measures::MunichOptions::Estimator::kExact;
  estimators[1].estimator = measures::MunichOptions::Estimator::kMonteCarlo;
  estimators[1].mc_samples = 500;
  for (const auto& mopts : estimators) {
    const auto want =
        ReferenceMunichProbabilities(f, mopts, 0xfeed, 4, 2.5);
    for (std::size_t threads : kThreadCounts) {
      UncertainEngineOptions options = SmallChunkOptions(threads);
      options.munich = mopts;
      options.seed = 0xfeed;
      auto engine = UncertainEngine::Create(f.pdf, options);
      ASSERT_TRUE(engine.ok());
      ASSERT_TRUE(engine.ValueOrDie()->AttachSamples(f.samples).ok());
      auto got = engine.ValueOrDie()->MunichMatchProbabilities(4, 2.5);
      ASSERT_TRUE(got.ok());
      for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(got.ValueOrDie()[i], want[i])  // bitwise
            << "estimator=" << int(mopts.estimator) << " threads=" << threads
            << " candidate=" << i;
      }
    }
  }
}

TEST(UncertainEngineParityTest, MunichPrqAndKnnMatchReference) {
  const MunichFixture f = MakeMunichFixture(24, 6, 3, 0.4, 32);
  measures::MunichOptions mopts;  // kAuto: exact on this size
  const double epsilon = 2.0;
  const double tau = 0.5;
  const auto probs = ReferenceMunichProbabilities(f, mopts, 0x5eed, 0,
                                                  epsilon);
  std::vector<std::size_t> want_prq;
  for (std::size_t i = 1; i < probs.size(); ++i) {
    if (probs[i] >= tau) want_prq.push_back(i);
  }
  const auto want_knn = ReferenceKNearestDescending(probs, 0, 8);
  for (std::size_t threads : kThreadCounts) {
    UncertainEngineOptions options = SmallChunkOptions(threads);
    options.munich = mopts;
    auto engine = UncertainEngine::Create(f.pdf, options);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE(engine.ValueOrDie()->AttachSamples(f.samples).ok());
    EXPECT_EQ(engine.ValueOrDie()
                  ->ProbabilisticRangeSearchMunich(0, epsilon, tau)
                  .ValueOrDie(),
              want_prq)
        << "threads=" << threads;
    ExpectNeighborsIdentical(
        engine.ValueOrDie()->KNearestMunich(0, epsilon, 8).ValueOrDie(),
        want_knn);
  }
}

TEST(UncertainEngineParityTest, MunichDegenerateSamplesDecideByBounds) {
  // Degenerate σ: every sample equals the exact value, so the bounding
  // intervals are points and the bounds filter decides every candidate
  // with probability exactly 0 or 1.
  const MunichFixture f = MakeMunichFixture(16, 5, 3, 0.0, 33);
  for (std::size_t threads : kThreadCounts) {
    UncertainEngineOptions options = SmallChunkOptions(threads);
    auto engine = UncertainEngine::Create(f.pdf, options);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE(engine.ValueOrDie()->AttachSamples(f.samples).ok());
    auto probs = engine.ValueOrDie()->MunichMatchProbabilities(1, 1.5);
    ASSERT_TRUE(probs.ok());
    const auto want = ReferenceMunichProbabilities(
        f, measures::MunichOptions{}, 0x5eed, 1, 1.5);
    for (std::size_t i = 0; i < want.size(); ++i) {
      if (i == 1) continue;
      EXPECT_TRUE(probs.ValueOrDie()[i] == 0.0 ||
                  probs.ValueOrDie()[i] == 1.0);
      EXPECT_EQ(probs.ValueOrDie()[i], want[i]);
    }
  }
}

// --- End-to-end: the evaluation runner with all three matchers --------------

TEST(UncertainEngineParityTest, SimilarityMatchingThreadCountInvariant) {
  prob::Rng rng(61);
  ts::Dataset exact("e2e");
  for (std::size_t i = 0; i < 24; ++i) {
    std::vector<double> values(8);
    for (double& v : values) v = rng.Gaussian();
    exact.Add(ts::TimeSeries(std::move(values), int(i % 2)));
  }
  const ts::Dataset d = exact.ZNormalizedCopy();
  const auto spec =
      uncertain::ErrorSpec::Constant(ErrorKind::kNormal, 0.5);

  auto run_with = [&](std::size_t threads) {
    core::ProudMatcher proud(0.5);
    core::DustMatcher dust;
    measures::MunichOptions mopts;
    mopts.mc_samples = 400;
    core::MunichMatcher munich(mopts);
    core::Matcher* matchers[] = {&proud, &dust, &munich};
    core::RunOptions options;
    options.ground_truth_k = 4;
    options.max_queries = 8;
    options.seed = 99;
    options.threads = threads;
    options.munich_samples_per_point = 3;
    options.measure_time = false;
    auto run = core::RunSimilarityMatching(d, spec, matchers, options);
    EXPECT_TRUE(run.ok()) << run.status();
    return std::move(run).ValueOrDie();
  };

  const auto reference = run_with(1);
  for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    const auto got = run_with(threads);
    ASSERT_EQ(got.size(), reference.size());
    for (std::size_t m = 0; m < got.size(); ++m) {
      EXPECT_EQ(got[m].per_query_f1, reference[m].per_query_f1)
          << reference[m].name;
      EXPECT_EQ(got[m].per_query_precision, reference[m].per_query_precision)
          << reference[m].name;
      EXPECT_EQ(got[m].per_query_recall, reference[m].per_query_recall)
          << reference[m].name;
    }
  }
}

TEST(UncertainEngineParityTest, EngineRejectsUnusableDatasets) {
  uncertain::UncertainDataset empty;
  EXPECT_FALSE(UncertainEngine::Create(empty).ok());

  auto err = prob::MakeNormalError(0.5);
  uncertain::UncertainDataset ragged;
  ragged.series.emplace_back(
      std::vector<double>{1.0, 2.0},
      std::vector<prob::ErrorDistributionPtr>(2, err));
  ragged.series.emplace_back(
      std::vector<double>{1.0},
      std::vector<prob::ErrorDistributionPtr>(1, err));
  EXPECT_FALSE(UncertainEngine::Create(ragged).ok());
}

}  // namespace
}  // namespace uts::query
