// Unit tests for precision / recall / F1 (src/core/metrics).

#include <gtest/gtest.h>

#include <vector>

#include "core/metrics.hpp"

namespace uts::core {
namespace {

using Ids = std::vector<std::size_t>;

TEST(F1ScoreTest, HarmonicMean) {
  EXPECT_DOUBLE_EQ(F1Score(1.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(F1Score(0.5, 0.5), 0.5);
  EXPECT_NEAR(F1Score(0.2, 0.8), 2.0 * 0.16 / 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(F1Score(0.0, 0.9), 0.0);
  EXPECT_DOUBLE_EQ(F1Score(0.0, 0.0), 0.0);
}

TEST(SetMetricsTest, PerfectRetrieval) {
  const Ids retrieved{1, 2, 3};
  const Ids relevant{3, 1, 2};  // order must not matter
  const SetMetrics m = ComputeSetMetrics(retrieved, relevant);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
  EXPECT_EQ(m.hits, 3u);
}

TEST(SetMetricsTest, PartialOverlap) {
  const Ids retrieved{1, 2, 3, 4};   // 2 correct of 4
  const Ids relevant{3, 4, 5, 6, 7}; // 2 found of 5
  const SetMetrics m = ComputeSetMetrics(retrieved, relevant);
  EXPECT_DOUBLE_EQ(m.precision, 0.5);
  EXPECT_DOUBLE_EQ(m.recall, 0.4);
  EXPECT_NEAR(m.f1, 2.0 * 0.5 * 0.4 / 0.9, 1e-12);
}

TEST(SetMetricsTest, NoOverlap) {
  const SetMetrics m = ComputeSetMetrics(Ids{1, 2}, Ids{3, 4});
  EXPECT_DOUBLE_EQ(m.precision, 0.0);
  EXPECT_DOUBLE_EQ(m.recall, 0.0);
  EXPECT_DOUBLE_EQ(m.f1, 0.0);
}

TEST(SetMetricsTest, EmptyRetrievedWithRelevant) {
  const SetMetrics m = ComputeSetMetrics(Ids{}, Ids{1, 2});
  EXPECT_DOUBLE_EQ(m.precision, 0.0);
  EXPECT_DOUBLE_EQ(m.recall, 0.0);
  EXPECT_DOUBLE_EQ(m.f1, 0.0);
}

TEST(SetMetricsTest, EmptyBothIsPerfect) {
  const SetMetrics m = ComputeSetMetrics(Ids{}, Ids{});
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
}

TEST(SetMetricsTest, RetrievedEverythingRelevantEmpty) {
  const SetMetrics m = ComputeSetMetrics(Ids{1, 2}, Ids{});
  EXPECT_DOUBLE_EQ(m.precision, 0.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.f1, 0.0);
}

TEST(SetMetricsTest, SupersetRetrievalHasPerfectRecall) {
  const SetMetrics m = ComputeSetMetrics(Ids{1, 2, 3, 4, 5}, Ids{2, 4});
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.precision, 0.4);
}

TEST(SetMetricsTest, CountsAreReported) {
  const SetMetrics m = ComputeSetMetrics(Ids{9, 7, 5}, Ids{5, 6});
  EXPECT_EQ(m.retrieved, 3u);
  EXPECT_EQ(m.relevant, 2u);
  EXPECT_EQ(m.hits, 1u);
}

}  // namespace
}  // namespace uts::core
