// Unit tests for the uncertainty models and perturbation pipeline
// (src/uncertain).

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "prob/stats.hpp"
#include "ts/normalize.hpp"
#include "uncertain/error_spec.hpp"
#include "uncertain/perturb.hpp"
#include "uncertain/uncertain_series.hpp"

namespace uts::uncertain {
namespace {

using prob::ErrorKind;

ts::TimeSeries Ramp(std::size_t n) {
  std::vector<double> values(n);
  for (std::size_t i = 0; i < n; ++i) values[i] = static_cast<double>(i);
  return ts::TimeSeries(std::move(values), 3, "ramp/0");
}

// ----------------------------------------------------------------- models

TEST(UncertainSeriesTest, AccessorsAndStddevs) {
  std::vector<prob::ErrorDistributionPtr> errors{
      prob::MakeNormalError(0.5), prob::MakeUniformError(1.0)};
  UncertainSeries s({1.0, 2.0}, std::move(errors), 7, "u/0");
  EXPECT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.observation(1), 2.0);
  EXPECT_EQ(s.label(), 7);
  const auto sigmas = s.Stddevs();
  ASSERT_EQ(sigmas.size(), 2u);
  EXPECT_NEAR(sigmas[0], 0.5, 1e-12);
  EXPECT_NEAR(sigmas[1], 1.0, 1e-12);
}

TEST(UncertainSeriesTest, AsTimeSeriesCarriesMetadata) {
  std::vector<prob::ErrorDistributionPtr> errors{prob::MakeNormalError(1.0)};
  UncertainSeries s({5.0}, std::move(errors), 2, "u/1");
  const ts::TimeSeries t = s.AsTimeSeries();
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.label(), 2);
  EXPECT_EQ(t.id(), "u/1");
}

TEST(MultiSampleSeriesTest, SampleMeansAndBoundingInterval) {
  MultiSampleSeries s({{1.0, 3.0}, {10.0, 20.0, 30.0}}, 1, "m/0");
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.num_samples(1), 3u);
  const ts::TimeSeries means = s.SampleMeans();
  EXPECT_DOUBLE_EQ(means[0], 2.0);
  EXPECT_DOUBLE_EQ(means[1], 20.0);
  const auto [lo, hi] = s.BoundingInterval(1);
  EXPECT_DOUBLE_EQ(lo, 10.0);
  EXPECT_DOUBLE_EQ(hi, 30.0);
}

// -------------------------------------------------------------- error spec

TEST(ErrorSpecTest, ConstantAssignsOneDistributionEverywhere) {
  const ErrorSpec spec = ErrorSpec::Constant(ErrorKind::kNormal, 0.7);
  const ErrorAssignment a = spec.Assign(20, 42);
  ASSERT_EQ(a.size(), 20u);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(a.actual[i]->kind(), ErrorKind::kNormal);
    EXPECT_NEAR(a.actual[i]->stddev(), 0.7, 1e-12);
    EXPECT_EQ(a.actual[i].get(), a.reported[i].get());  // same object
  }
  EXPECT_NEAR(spec.RepresentativeSigma(), 0.7, 1e-12);
}

TEST(ErrorSpecTest, MixedSigmaHitsExactFraction) {
  // Paper's Figure 8 regime: 20% sigma=1.0, 80% sigma=0.4.
  const ErrorSpec spec = ErrorSpec::MixedSigma(ErrorKind::kNormal);
  const ErrorAssignment a = spec.Assign(100, 7);
  std::size_t hi = 0;
  for (const auto& d : a.actual) {
    if (std::fabs(d->stddev() - 1.0) < 1e-9) ++hi;
  }
  EXPECT_EQ(hi, 20u);
}

TEST(ErrorSpecTest, MixedSigmaPositionsVaryWithSeed) {
  const ErrorSpec spec = ErrorSpec::MixedSigma(ErrorKind::kNormal);
  auto hi_positions = [&](std::uint64_t seed) {
    std::set<std::size_t> set;
    const ErrorAssignment a = spec.Assign(50, seed);
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (std::fabs(a.actual[i]->stddev() - 1.0) < 1e-9) set.insert(i);
    }
    return set;
  };
  EXPECT_EQ(hi_positions(1), hi_positions(1));   // deterministic
  EXPECT_NE(hi_positions(1), hi_positions(2));   // seed-sensitive
}

TEST(ErrorSpecTest, MixedKindUsesAllThreeFamilies) {
  const ErrorSpec spec = ErrorSpec::MixedKind();
  const ErrorAssignment a = spec.Assign(300, 11);
  std::set<ErrorKind> kinds;
  for (const auto& d : a.actual) kinds.insert(d->kind());
  EXPECT_TRUE(kinds.count(ErrorKind::kNormal));
  EXPECT_TRUE(kinds.count(ErrorKind::kUniform));
  EXPECT_TRUE(kinds.count(ErrorKind::kExponential));
}

TEST(ErrorSpecTest, MisreportedSeparatesActualFromReported) {
  // Figure 10: actual mixed-sigma normal, reported constant normal 0.7.
  const ErrorSpec spec = ErrorSpec::MixedSigma(ErrorKind::kNormal)
                             .WithMisreported(ErrorKind::kNormal, 0.7);
  const ErrorAssignment a = spec.Assign(50, 3);
  bool actual_varies = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a.reported[i]->stddev(), 0.7, 1e-12);
    if (std::fabs(a.actual[i]->stddev() - 0.7) > 1e-9) actual_varies = true;
  }
  EXPECT_TRUE(actual_varies);
  EXPECT_NEAR(spec.RepresentativeSigma(), 0.7, 1e-12);
}

TEST(ErrorSpecTest, TailedUniformReportingOnlyRewritesUniform) {
  const ErrorSpec spec = ErrorSpec::MixedKind().WithTailedUniformReporting();
  const ErrorAssignment a = spec.Assign(300, 13);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.actual[i]->kind() == ErrorKind::kUniform) {
      EXPECT_EQ(a.reported[i]->kind(), ErrorKind::kTailedUniform);
      EXPECT_NEAR(a.reported[i]->stddev(), a.actual[i]->stddev(), 1e-9);
    } else {
      EXPECT_EQ(a.reported[i]->kind(), a.actual[i]->kind());
    }
  }
}

TEST(ErrorSpecTest, RepresentativeSigmaOfMixedSpecIsRms) {
  const ErrorSpec spec = ErrorSpec::MixedSigma(ErrorKind::kNormal, 0.2, 1.0, 0.4);
  const double expected = std::sqrt(0.2 * 1.0 + 0.8 * 0.16);
  EXPECT_NEAR(spec.RepresentativeSigma(), expected, 1e-12);
}

TEST(ErrorSpecTest, DescribeIsHumanReadable) {
  EXPECT_NE(ErrorSpec::Constant(ErrorKind::kUniform, 0.6).Describe().find(
                "uniform"),
            std::string::npos);
  EXPECT_NE(ErrorSpec::MixedSigma(ErrorKind::kNormal).Describe().find("20%"),
            std::string::npos);
  EXPECT_NE(ErrorSpec::MixedSigma(ErrorKind::kNormal)
                .WithMisreported(ErrorKind::kNormal, 0.7)
                .Describe()
                .find("reported"),
            std::string::npos);
}

// ------------------------------------------------------------ perturbation

TEST(PerturbTest, DeterministicUnderSeed) {
  const ts::TimeSeries exact = Ramp(32);
  const ErrorSpec spec = ErrorSpec::Constant(ErrorKind::kNormal, 0.5);
  const UncertainSeries a = PerturbSeries(exact, spec, 99);
  const UncertainSeries b = PerturbSeries(exact, spec, 99);
  const UncertainSeries c = PerturbSeries(exact, spec, 100);
  ASSERT_EQ(a.size(), b.size());
  bool differs_from_c = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.observation(i), b.observation(i));
    if (a.observation(i) != c.observation(i)) differs_from_c = true;
  }
  EXPECT_TRUE(differs_from_c);
}

TEST(PerturbTest, PreservesMetadataAndLength) {
  const ts::TimeSeries exact = Ramp(16);
  const ErrorSpec spec = ErrorSpec::Constant(ErrorKind::kUniform, 1.0);
  const UncertainSeries u = PerturbSeries(exact, spec, 5);
  EXPECT_EQ(u.size(), 16u);
  EXPECT_EQ(u.label(), 3);
  EXPECT_EQ(u.id(), "ramp/0");
}

TEST(PerturbTest, NoErrorSpecIsIdentity) {
  const ts::TimeSeries exact = Ramp(16);
  const ErrorSpec spec = ErrorSpec::Constant(ErrorKind::kNone, 0.0);
  const UncertainSeries u = PerturbSeries(exact, spec, 5);
  for (std::size_t i = 0; i < u.size(); ++i) {
    EXPECT_DOUBLE_EQ(u.observation(i), exact[i]);
  }
}

TEST(PerturbTest, PerturbationErrorHasExpectedMagnitude) {
  const std::size_t n = 20000;
  const ts::TimeSeries exact(std::vector<double>(n, 0.0));
  const ErrorSpec spec = ErrorSpec::Constant(ErrorKind::kExponential, 0.8);
  const UncertainSeries u = PerturbSeries(exact, spec, 21);
  prob::RunningStats stats;
  for (std::size_t i = 0; i < n; ++i) stats.Add(u.observation(i));
  EXPECT_NEAR(stats.Mean(), 0.0, 0.05);
  EXPECT_NEAR(stats.StdDevPopulation(), 0.8, 0.05);
}

TEST(PerturbTest, MultiSampleShapesAndVariation) {
  const ts::TimeSeries exact = Ramp(12);
  const ErrorSpec spec = ErrorSpec::Constant(ErrorKind::kNormal, 0.3);
  const MultiSampleSeries m = PerturbMultiSample(exact, spec, 5, 17);
  ASSERT_EQ(m.size(), 12u);
  for (std::size_t i = 0; i < m.size(); ++i) {
    ASSERT_EQ(m.num_samples(i), 5u);
    // Samples at a timestamp differ (continuous error).
    const auto& s = m.samples(i);
    EXPECT_NE(s[0], s[1]);
    // And scatter around the exact value.
    for (double v : s) EXPECT_NEAR(v, exact[i], 6.0 * 0.3);
  }
}

TEST(PerturbTest, DatasetPerturbationDerivesPerSeriesSeeds) {
  ts::Dataset dataset("d");
  dataset.Add(Ramp(8));
  dataset.Add(Ramp(8));
  const ErrorSpec spec = ErrorSpec::Constant(ErrorKind::kNormal, 1.0);
  const UncertainDataset u = PerturbDataset(dataset, spec, 1);
  ASSERT_EQ(u.size(), 2u);
  // Same exact input, different seeds => different observations.
  bool differ = false;
  for (std::size_t i = 0; i < 8; ++i) {
    if (u[0].observation(i) != u[1].observation(i)) differ = true;
  }
  EXPECT_TRUE(differ);
  EXPECT_EQ(u.name, "d");
}

TEST(PerturbTest, MultiSampleDatasetIsDeterministic) {
  ts::Dataset dataset("d");
  dataset.Add(Ramp(8));
  dataset.Add(Ramp(8));
  const ErrorSpec spec = ErrorSpec::Constant(ErrorKind::kUniform, 0.5);
  const MultiSampleDataset a = PerturbDatasetMultiSample(dataset, spec, 3, 9);
  const MultiSampleDataset b = PerturbDatasetMultiSample(dataset, spec, 3, 9);
  for (std::size_t s = 0; s < 2; ++s) {
    for (std::size_t i = 0; i < 8; ++i) {
      EXPECT_EQ(a[s].samples(i), b[s].samples(i));
    }
  }
}

}  // namespace
}  // namespace uts::uncertain
