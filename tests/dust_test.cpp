// Unit + property tests for DUST (src/measures/dust).
//
// Correctness oracles:
//  * Gaussian errors have the closed form dust(d) = d / sqrt(2(sx^2+sy^2)),
//    so the numeric-integration path can be validated against it;
//  * dust must be reflexive (dust(0) = 0), symmetric, and monotone in the
//    observed difference for unimodal errors;
//  * the pure-uniform pathology (phi = 0 => saturation) and its tailed
//    workaround are paper-documented behaviours (Section 4.2.1).

#include <gtest/gtest.h>

#include <cmath>

#include "distance/dtw.hpp"
#include "measures/dust.hpp"
#include "prob/rng.hpp"
#include "uncertain/perturb.hpp"

namespace uts::measures {
namespace {

using prob::ErrorKind;

uncertain::UncertainSeries MakeSeries(std::vector<double> obs,
                                      prob::ErrorDistributionPtr err) {
  std::vector<prob::ErrorDistributionPtr> errors(obs.size(), std::move(err));
  return uncertain::UncertainSeries(std::move(obs), std::move(errors));
}

TEST(DustTableTest, GaussianClosedForm) {
  DustOptions options;
  auto table = DustTable::Build(*prob::MakeNormalError(0.5),
                                *prob::MakeNormalError(0.5), options);
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_TRUE(table.ValueOrDie().closed_form());
  // dust(d) = d / (2 sigma) for equal sigmas.
  for (double d : {0.0, 0.3, 1.0, 2.7}) {
    EXPECT_NEAR(table.ValueOrDie().Dust(d), d / (2.0 * 0.5), 1e-12);
  }
}

TEST(DustTableTest, GaussianUnequalSigmas) {
  DustOptions options;
  auto table = DustTable::Build(*prob::MakeNormalError(0.3),
                                *prob::MakeNormalError(0.8), options);
  ASSERT_TRUE(table.ok());
  const double scale = 1.0 / std::sqrt(2.0 * (0.09 + 0.64));
  EXPECT_NEAR(table.ValueOrDie().Dust(1.3), 1.3 * scale, 1e-12);
}

TEST(DustTableTest, NumericMatchesGaussianClosedForm) {
  // Force the numeric-integration path on normal errors and compare.
  DustOptions numeric;
  numeric.use_closed_form_normal = false;
  DustOptions closed;
  auto num_table = DustTable::Build(*prob::MakeNormalError(0.7),
                                    *prob::MakeNormalError(0.7), numeric);
  auto cf_table = DustTable::Build(*prob::MakeNormalError(0.7),
                                   *prob::MakeNormalError(0.7), closed);
  ASSERT_TRUE(num_table.ok()) << num_table.status();
  ASSERT_TRUE(cf_table.ok());
  EXPECT_FALSE(num_table.ValueOrDie().closed_form());
  for (double d : {0.0, 0.2, 0.9, 2.0, 4.0, 7.5}) {
    EXPECT_NEAR(num_table.ValueOrDie().Dust(d), cf_table.ValueOrDie().Dust(d),
                2e-3)
        << "d=" << d;
  }
}

TEST(DustTableTest, NumericSimpsonTracksClosedFormWithinPinnedTolerance) {
  // Property pin for the engine's closed-form fast path: over the whole
  // lookup range the adaptive-Simpson table and the analytic
  // dust(Δ) = Δ / sqrt(2 (σx² + σy²)) must agree within a fixed tolerance.
  // A regression that loosens the integrator or the table resolution (or a
  // fast path that drifts from the numeric definition) trips this.
  DustOptions numeric;
  numeric.use_closed_form_normal = false;
  auto num_table = DustTable::Build(*prob::MakeNormalError(0.4),
                                    *prob::MakeNormalError(0.9), numeric);
  ASSERT_TRUE(num_table.ok()) << num_table.status();
  const double scale = 1.0 / std::sqrt(2.0 * (0.16 + 0.81));
  double max_abs_err = 0.0;
  for (double d = 0.0; d <= 10.0; d += 0.05) {
    max_abs_err = std::max(max_abs_err,
                           std::fabs(num_table.ValueOrDie().Dust(d) -
                                     d * scale));
  }
  EXPECT_LE(max_abs_err, 2.5e-3);  // pinned
}

TEST(DustTableTest, LutViewEvaluatesBitwiseLikeTheTable) {
  // The batch kernels evaluate through DustLut::Eval; the scalar Dust()
  // delegates to the same code. Pin the bitwise identity for both the
  // closed-form and the numeric-table paths so the two can never drift.
  DustOptions options;
  for (auto table_result :
       {DustTable::Build(*prob::MakeNormalError(0.5),
                         *prob::MakeNormalError(0.8), options),
        DustTable::Build(*prob::MakeUniformError(0.5),
                         *prob::MakeUniformError(0.5), options)}) {
    ASSERT_TRUE(table_result.ok());
    const DustTable& table = table_result.ValueOrDie();
    const distance::DustLut lut = table.Lut();
    for (double d = -20.0; d <= 20.0; d += 0.37) {
      EXPECT_EQ(table.Dust(d), lut.Eval(d)) << "delta=" << d;  // bitwise
    }
  }
}

TEST(DustTableTest, ReflexivityDustOfZeroIsZero) {
  DustOptions options;
  for (auto err :
       {prob::MakeNormalError(0.5), prob::MakeUniformError(0.5),
        prob::MakeExponentialError(0.5), prob::MakeTailedUniformError(0.5)}) {
    auto table = DustTable::Build(*err, *err, options);
    ASSERT_TRUE(table.ok()) << err->Key() << ": " << table.status();
    EXPECT_NEAR(table.ValueOrDie().Dust(0.0), 0.0, 1e-6) << err->Key();
  }
}

TEST(DustTableTest, MonotoneInObservedDifference) {
  DustOptions options;
  for (auto err : {prob::MakeNormalError(0.6), prob::MakeExponentialError(0.6),
                   prob::MakeTailedUniformError(0.6)}) {
    auto table = DustTable::Build(*err, *err, options);
    ASSERT_TRUE(table.ok());
    double prev = -1.0;
    for (double d = 0.0; d <= 10.0; d += 0.1) {
      const double v = table.ValueOrDie().Dust(d);
      EXPECT_GE(v, prev - 1e-9) << err->Key() << " d=" << d;
      prev = v;
    }
  }
}

TEST(DustTableTest, UniformErrorSaturatesBeyondOverlap) {
  // Pure uniform error: supports of the two posteriors stop overlapping at
  // delta = 2a (a = sigma*sqrt(3)); phi = 0 and dust saturates at the
  // phi_floor ceiling. This reproduces the Section 4.2.1 log(0) pathology.
  DustOptions options;
  const double sigma = 0.5;
  auto table = DustTable::Build(*prob::MakeUniformError(sigma),
                                *prob::MakeUniformError(sigma), options);
  ASSERT_TRUE(table.ok());
  const double overlap_edge = 2.0 * sigma * std::sqrt(3.0);
  const double inside = table.ValueOrDie().Dust(overlap_edge * 0.5);
  const double outside1 = table.ValueOrDie().Dust(overlap_edge + 0.5);
  const double outside2 = table.ValueOrDie().Dust(overlap_edge + 3.0);
  EXPECT_LT(inside, outside1);
  // Saturated: beyond the overlap every difference looks equally far.
  EXPECT_NEAR(outside1, outside2, 1e-6);
  EXPECT_DOUBLE_EQ(table.ValueOrDie().Phi(overlap_edge + 1.0), 0.0);
}

TEST(DustTableTest, PhiFloorSaturationValueIsPinnedAtOverlapBoundary) {
  // Regression for the uniform-error saturation (Section 4.2.1): past the
  // support-overlap boundary δ = 2a (a = σ√3) the overlap integral is
  // exactly zero, the phi_floor kicks in, and every saturated cell must
  // equal sqrt(log φ(0) − log phi_floor) — finite, and constant from the
  // boundary to the clamp edge. Before this pin the saturating value was
  // implied but untested; a phi_floor regression (e.g. flooring after the
  // log) would produce ±Inf/NaN here.
  DustOptions options;
  const double sigma = 0.5;
  auto table_result = DustTable::Build(*prob::MakeUniformError(sigma),
                                       *prob::MakeUniformError(sigma),
                                       options);
  ASSERT_TRUE(table_result.ok());
  const DustTable& table = table_result.ValueOrDie();
  const double overlap_edge = 2.0 * sigma * std::sqrt(3.0);
  const double saturated =
      std::sqrt(std::log(table.phi0()) - std::log(options.phi_floor));
  ASSERT_TRUE(std::isfinite(saturated));
  // Just inside the boundary: strictly below saturation and finite.
  const double inside = table.Dust(overlap_edge - 0.05);
  EXPECT_TRUE(std::isfinite(inside));
  EXPECT_LT(inside, saturated);
  // Outside (including the table clamp region): exactly the pinned value,
  // up to the table's linear interpolation at the boundary cell.
  for (double delta : {overlap_edge + 0.1, overlap_edge + 2.0, 100.0}) {
    const double v = table.Dust(delta);
    EXPECT_TRUE(std::isfinite(v)) << "delta=" << delta;
    EXPECT_NEAR(v, saturated, 1e-9) << "delta=" << delta;
  }
}

TEST(DustDistanceTest, UniformSaturationNeverLeaksNanOrInf) {
  // Sequence-level guard: far-apart series under pure uniform error hit the
  // saturated cells at every point; DUST(X, Y) must stay finite (the
  // documented "large, constant dissimilarity" behaviour) and reproducible.
  auto err = prob::MakeUniformError(0.5);
  std::vector<double> far_a(24, 0.0), far_b(24, 8.0);
  auto x = MakeSeries(far_a, err);
  auto y = MakeSeries(far_b, err);
  Dust dust;
  auto d = dust.Distance(x, y);
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(std::isfinite(d.ValueOrDie()));
  EXPECT_GT(d.ValueOrDie(), 0.0);
  // sqrt(n) · saturated-cell value, by Eq. 13.
  auto table = DustTable::Build(*err, *err, dust.options());
  ASSERT_TRUE(table.ok());
  EXPECT_NEAR(d.ValueOrDie(),
              std::sqrt(24.0) * table.ValueOrDie().Dust(8.0), 1e-9);
}

TEST(DustTableTest, TailedUniformAvoidsSaturation) {
  DustOptions options;
  const double sigma = 0.5;
  auto table = DustTable::Build(*prob::MakeTailedUniformError(sigma),
                                *prob::MakeTailedUniformError(sigma), options);
  ASSERT_TRUE(table.ok());
  const double far1 = table.ValueOrDie().Dust(4.0);
  const double far2 = table.ValueOrDie().Dust(6.0);
  EXPECT_GT(far2, far1 + 1e-3);  // still discriminating far differences
  EXPECT_GT(table.ValueOrDie().Phi(6.0), 0.0);
}

TEST(DustTableTest, ClampsBeyondTableRange) {
  DustOptions options;
  options.table_delta_max = 4.0;
  auto table = DustTable::Build(*prob::MakeExponentialError(1.0),
                                *prob::MakeExponentialError(1.0), options);
  ASSERT_TRUE(table.ok());
  EXPECT_DOUBLE_EQ(table.ValueOrDie().Dust(100.0),
                   table.ValueOrDie().Dust(4.0));
}

TEST(DustTableTest, InvalidOptionsRejected) {
  DustOptions bad;
  bad.table_size = 1;
  EXPECT_FALSE(DustTable::Build(*prob::MakeNormalError(1.0),
                                *prob::MakeUniformError(1.0), bad)
                   .ok());
  DustOptions bad2;
  bad2.table_delta_max = 0.0;
  EXPECT_FALSE(DustTable::Build(*prob::MakeUniformError(1.0),
                                *prob::MakeUniformError(1.0), bad2)
                   .ok());
}

TEST(DustTableTest, BothDegenerateErrorsRejected) {
  DustOptions options;
  EXPECT_FALSE(
      DustTable::Build(*prob::MakeNoError(), *prob::MakeNoError(), options)
          .ok());
}

TEST(DustTableTest, OneDegenerateErrorUsesPdfLookup) {
  DustOptions options;
  options.use_closed_form_normal = false;
  auto table = DustTable::Build(*prob::MakeNoError(),
                                *prob::MakeNormalError(1.0), options);
  ASSERT_TRUE(table.ok()) << table.status();
  // phi(delta) = N(delta; 0, 1) => dust(d) = d/sqrt(2).
  EXPECT_NEAR(table.ValueOrDie().Dust(1.0), 1.0 / std::sqrt(2.0), 1e-3);
}

// -------------------------------------------------------------- distances

TEST(DustDistanceTest, GaussianCaseProportionalToEuclidean) {
  // "DUST is equivalent to the Euclidean distance, in the case where the
  // error of the time series values follows the normal distribution."
  prob::Rng rng(1);
  std::vector<double> xo(40), yo(40);
  for (auto& v : xo) v = rng.Gaussian();
  for (auto& v : yo) v = rng.Gaussian();
  const double sigma = 0.6;
  auto x = MakeSeries(xo, prob::MakeNormalError(sigma));
  auto y = MakeSeries(yo, prob::MakeNormalError(sigma));

  Dust dust;
  auto d = dust.Distance(x, y);
  ASSERT_TRUE(d.ok());
  double euclid_sq = 0.0;
  for (std::size_t i = 0; i < 40; ++i) {
    euclid_sq += (xo[i] - yo[i]) * (xo[i] - yo[i]);
  }
  const double expected = std::sqrt(euclid_sq) / (2.0 * sigma);
  EXPECT_NEAR(d.ValueOrDie(), expected, 1e-9);
}

TEST(DustDistanceTest, ReflexiveAndSymmetric) {
  prob::Rng rng(2);
  std::vector<double> xo(20), yo(20);
  for (auto& v : xo) v = rng.Gaussian();
  for (auto& v : yo) v = rng.Gaussian();
  auto x = MakeSeries(xo, prob::MakeExponentialError(0.5));
  auto y = MakeSeries(yo, prob::MakeExponentialError(0.5));
  Dust dust;
  EXPECT_NEAR(dust.Distance(x, x).ValueOrDie(), 0.0, 1e-6);
  EXPECT_NEAR(dust.Distance(x, y).ValueOrDie(),
              dust.Distance(y, x).ValueOrDie(), 1e-9);
}

TEST(DustDistanceTest, AsymmetricErrorPairsShareCanonicalTable) {
  // dust(x,y) must equal dust(y,x) even when the two points carry
  // *different* asymmetric error models.
  auto x = MakeSeries({0.0, 1.0}, prob::MakeExponentialError(0.4));
  auto y = MakeSeries({0.5, 0.2}, prob::MakeNormalError(1.0));
  Dust dust;
  const double xy = dust.Distance(x, y).ValueOrDie();
  const double yx = dust.Distance(y, x).ValueOrDie();
  EXPECT_NEAR(xy, yx, 1e-12);
  // Only one table was built for the pair.
  EXPECT_EQ(dust.CacheSize(), 1u);
}

TEST(DustDistanceTest, LengthMismatchRejected) {
  auto x = MakeSeries({1.0, 2.0}, prob::MakeNormalError(1.0));
  auto y = MakeSeries({1.0}, prob::MakeNormalError(1.0));
  Dust dust;
  EXPECT_FALSE(dust.Distance(x, y).ok());
}

TEST(DustDistanceTest, MixedErrorSeriesBuildsOneTablePerPair) {
  std::vector<prob::ErrorDistributionPtr> ex, ey;
  for (int i = 0; i < 10; ++i) {
    ex.push_back(prob::MakeNormalError(i % 2 == 0 ? 1.0 : 0.4));
    ey.push_back(prob::MakeNormalError(i % 3 == 0 ? 1.0 : 0.4));
  }
  uncertain::UncertainSeries x(std::vector<double>(10, 0.0), ex);
  uncertain::UncertainSeries y(std::vector<double>(10, 1.0), ey);
  Dust dust;
  ASSERT_TRUE(dust.Distance(x, y).ok());
  // Pairs: (1,1), (1,.4), (.4,1)->canonical (.4,1), (.4,.4): 3 distinct.
  EXPECT_EQ(dust.CacheSize(), 3u);
}

TEST(DustDistanceTest, PrewarmPopulatesCache) {
  Dust dust;
  auto e1 = prob::MakeUniformError(0.5);
  auto e2 = prob::MakeNormalError(0.5);
  ASSERT_TRUE(dust.Prewarm(e1, e2).ok());
  EXPECT_EQ(dust.CacheSize(), 1u);
}

TEST(DustDistanceTest, PointDustMatchesTableLookup) {
  Dust dust;
  auto err = prob::MakeNormalError(0.5);
  auto d = dust.PointDust(1.2, *err, 0.2, *err);
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(d.ValueOrDie(), 1.0 / (2.0 * 0.5), 1e-12);
}

// ------------------------------------------------------------------- DTW

TEST(DustDtwTest, UpperBoundedByLockstepDust) {
  prob::Rng rng(3);
  std::vector<double> xo(24), yo(24);
  for (auto& v : xo) v = rng.Gaussian();
  for (auto& v : yo) v = rng.Gaussian();
  auto x = MakeSeries(xo, prob::MakeNormalError(0.5));
  auto y = MakeSeries(yo, prob::MakeNormalError(0.5));
  Dust dust;
  const double lockstep = dust.Distance(x, y).ValueOrDie();
  const double warped = dust.DtwDistance(x, y).ValueOrDie();
  EXPECT_LE(warped, lockstep + 1e-9);
}

TEST(DustDtwTest, RealignsShiftedPattern) {
  std::vector<double> a(40, 0.0), b(40, 0.0);
  for (int i = 10; i < 18; ++i) a[i] = 3.0;
  for (int i = 14; i < 22; ++i) b[i] = 3.0;
  auto x = MakeSeries(a, prob::MakeNormalError(0.3));
  auto y = MakeSeries(b, prob::MakeNormalError(0.3));
  Dust dust;
  const double lockstep = dust.Distance(x, y).ValueOrDie();
  const double warped = dust.DtwDistance(x, y).ValueOrDie();
  EXPECT_LT(warped, 0.3 * lockstep);
}

TEST(DustDtwTest, NormalErrorDtwProportionalToPlainDtw) {
  // Under constant normal error, dust(d) = d/(2σ), so dust² local costs are
  // plain squared diffs scaled by 1/(2σ)²: DUST-DTW == DTW / (2σ) exactly.
  prob::Rng rng(5);
  std::vector<double> xo(32), yo(32);
  for (auto& v : xo) v = rng.Gaussian();
  for (auto& v : yo) v = rng.Gaussian();
  const double sigma = 0.4;
  auto x = MakeSeries(xo, prob::MakeNormalError(sigma));
  auto y = MakeSeries(yo, prob::MakeNormalError(sigma));
  Dust dust;
  const double dust_dtw = dust.DtwDistance(x, y).ValueOrDie();
  const double plain_dtw = distance::Dtw(xo, yo);
  EXPECT_NEAR(dust_dtw, plain_dtw / (2.0 * sigma), 1e-9);
}

TEST(DustDtwTest, EmptySeriesRejected) {
  uncertain::UncertainSeries empty;
  auto x = MakeSeries({1.0}, prob::MakeNormalError(1.0));
  Dust dust;
  EXPECT_FALSE(dust.DtwDistance(empty, x).ok());
}

// --------------------------------------------------- ranking equivalence

TEST(DustRankingTest, NormalErrorPreservesEuclideanRanking) {
  // Proportionality => identical nearest-neighbor rankings.
  prob::Rng rng(4);
  const std::size_t n = 16, m = 12;
  auto query_obs = std::vector<double>(n);
  for (auto& v : query_obs) v = rng.Gaussian();
  auto query = MakeSeries(query_obs, prob::MakeNormalError(0.7));

  std::vector<uncertain::UncertainSeries> candidates;
  std::vector<double> euclid;
  for (std::size_t c = 0; c < m; ++c) {
    std::vector<double> obs(n);
    for (auto& v : obs) v = rng.Gaussian();
    double sq = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sq += (obs[i] - query_obs[i]) * (obs[i] - query_obs[i]);
    }
    euclid.push_back(std::sqrt(sq));
    candidates.push_back(MakeSeries(obs, prob::MakeNormalError(0.7)));
  }
  Dust dust;
  for (std::size_t a = 0; a < m; ++a) {
    for (std::size_t b = 0; b < m; ++b) {
      const double da = dust.Distance(query, candidates[a]).ValueOrDie();
      const double db = dust.Distance(query, candidates[b]).ValueOrDie();
      EXPECT_EQ(da < db, euclid[a] < euclid[b])
          << "ranking flip at pair (" << a << "," << b << ")";
    }
  }
}

}  // namespace
}  // namespace uts::measures
