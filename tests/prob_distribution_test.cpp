// Unit + property tests for the error distributions (src/prob/distribution).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <tuple>

#include "prob/distribution.hpp"
#include "prob/integrate.hpp"
#include "prob/rng.hpp"
#include "prob/stats.hpp"

namespace uts::prob {
namespace {

// ---------------------------------------------------------------- factories

TEST(ErrorFactoryTest, ZeroSigmaDegradesToNoError) {
  EXPECT_EQ(MakeNormalError(0.0)->kind(), ErrorKind::kNone);
  EXPECT_EQ(MakeUniformError(0.0)->kind(), ErrorKind::kNone);
  EXPECT_EQ(MakeExponentialError(0.0)->kind(), ErrorKind::kNone);
}

TEST(ErrorFactoryTest, MakeErrorDispatchesKinds) {
  EXPECT_EQ(MakeError(ErrorKind::kNormal, 1.0)->kind(), ErrorKind::kNormal);
  EXPECT_EQ(MakeError(ErrorKind::kUniform, 1.0)->kind(), ErrorKind::kUniform);
  EXPECT_EQ(MakeError(ErrorKind::kExponential, 1.0)->kind(),
            ErrorKind::kExponential);
  EXPECT_EQ(MakeError(ErrorKind::kTailedUniform, 1.0)->kind(),
            ErrorKind::kTailedUniform);
}

TEST(ErrorFactoryTest, KindNames) {
  EXPECT_EQ(ErrorKindName(ErrorKind::kNormal), "normal");
  EXPECT_EQ(ErrorKindName(ErrorKind::kUniform), "uniform");
  EXPECT_EQ(ErrorKindName(ErrorKind::kExponential), "exponential");
  EXPECT_EQ(ErrorKindName(ErrorKind::kTailedUniform), "tailed_uniform");
  EXPECT_EQ(ErrorKindName(ErrorKind::kMixture), "mixture");
  EXPECT_EQ(ErrorKindName(ErrorKind::kNone), "none");
}

TEST(ErrorFactoryTest, KeysDistinguishSigmaAndKind) {
  EXPECT_NE(MakeNormalError(1.0)->Key(), MakeNormalError(0.5)->Key());
  EXPECT_NE(MakeNormalError(1.0)->Key(), MakeUniformError(1.0)->Key());
  EXPECT_EQ(MakeNormalError(0.7)->Key(), MakeNormalError(0.7)->Key());
}

// --------------------------------------------- parametric property checks

/// (kind, sigma) grid shared by the property suites; covers the paper's
/// sweep range [0.2, 2.0].
class ErrorDistributionProperties
    : public ::testing::TestWithParam<std::tuple<ErrorKind, double>> {
 protected:
  ErrorDistributionPtr Make() const {
    const auto [kind, sigma] = GetParam();
    return MakeError(kind, sigma);
  }
};

TEST_P(ErrorDistributionProperties, ReportsRequestedSigma) {
  const auto [kind, sigma] = GetParam();
  (void)kind;
  EXPECT_NEAR(Make()->stddev(), sigma, 1e-9);
}

/// Support-aware integration bounds: wide enough for 4th-moment tails,
/// tight enough that composite Simpson resolves the density features.
std::pair<double, double> MomentBounds(const ErrorDistribution& dist) {
  const double reach = 40.0 * dist.stddev();
  return {std::max(dist.SupportLo(), -reach),
          std::min(dist.SupportHi(), reach)};
}

/// Piecewise composite Simpson split at the density's breakpoints, so that
/// jump discontinuities (uniform edges inside a mixture) cost no accuracy.
double IntegratePiecewise(const ErrorDistribution& dist,
                          const std::function<double(double)>& f, double lo,
                          double hi) {
  std::vector<double> cuts{lo};
  for (double b : dist.Breakpoints()) {
    if (b > lo && b < hi) cuts.push_back(b);
  }
  cuts.push_back(hi);
  std::sort(cuts.begin(), cuts.end());
  // Nudge interior cuts so segment endpoints sample the pdf on the correct
  // side of each jump (densities are inclusive at their support edges).
  const double nudge = 1e-11 * (hi - lo);
  double total = 0.0;
  for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
    const double a = i == 0 ? cuts[i] : cuts[i] + nudge;
    const double b = i + 2 == cuts.size() ? cuts[i + 1] : cuts[i + 1] - nudge;
    total += IntegrateSimpson(f, a, b, 8192);
  }
  return total;
}

TEST_P(ErrorDistributionProperties, PdfIntegratesToOne) {
  auto dist = Make();
  const auto [lo, hi] = MomentBounds(*dist);
  const double integral = IntegratePiecewise(
      *dist, [&](double x) { return dist->Pdf(x); }, lo, hi);
  EXPECT_NEAR(integral, 1.0, 1e-6);
}

TEST_P(ErrorDistributionProperties, MeanIsZero) {
  auto dist = Make();
  const auto [lo, hi] = MomentBounds(*dist);
  const double mean = IntegratePiecewise(
      *dist, [&](double x) { return x * dist->Pdf(x); }, lo, hi);
  EXPECT_NEAR(mean, 0.0, 1e-6);
}

TEST_P(ErrorDistributionProperties, SecondMomentMatchesVariance) {
  auto dist = Make();
  const double sigma = dist->stddev();
  EXPECT_NEAR(dist->CentralMoment(2), sigma * sigma, 1e-9);
}

TEST_P(ErrorDistributionProperties, MomentsMatchNumericIntegrals) {
  auto dist = Make();
  const auto [lo, hi] = MomentBounds(*dist);
  for (int k = 2; k <= 4; ++k) {
    const double moment = IntegratePiecewise(
        *dist, [&](double x) { return std::pow(x, k) * dist->Pdf(x); }, lo,
        hi);
    const double expected = dist->CentralMoment(k);
    EXPECT_NEAR(moment, expected,
                1e-4 * std::max(1.0, std::fabs(expected)))
        << "k=" << k;
  }
}

TEST_P(ErrorDistributionProperties, CdfMatchesIntegratedPdf) {
  auto dist = Make();
  const double sigma = dist->stddev();
  const auto [lo, hi] = MomentBounds(*dist);
  (void)hi;
  for (double x : {-1.5 * sigma, -0.3 * sigma, 0.0, 0.8 * sigma, 2.0 * sigma}) {
    if (x <= lo) continue;
    const double integral = IntegratePiecewise(
        *dist, [&](double t) { return dist->Pdf(t); }, lo, x);
    EXPECT_NEAR(integral, dist->Cdf(x), 1e-6) << "x=" << x;
  }
}

TEST_P(ErrorDistributionProperties, CdfIsMonotoneWithCorrectLimits) {
  auto dist = Make();
  const double sigma = dist->stddev();
  double prev = 0.0;
  for (double x = -5.0 * sigma; x <= 5.0 * sigma; x += 0.25 * sigma) {
    const double c = dist->Cdf(x);
    EXPECT_GE(c, prev - 1e-12);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
  EXPECT_NEAR(dist->Cdf(100.0 * sigma), 1.0, 1e-9);
  EXPECT_NEAR(dist->Cdf(-100.0 * sigma), 0.0, 1e-9);
}

TEST_P(ErrorDistributionProperties, SampleMomentsMatchTheory) {
  auto dist = Make();
  Rng rng(20260611);
  RunningStats stats;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) stats.Add(dist->Sample(rng));
  const double sigma = dist->stddev();
  // Standard error of the mean is sigma/sqrt(n); allow 5 standard errors.
  EXPECT_NEAR(stats.Mean(), 0.0, 5.0 * sigma / std::sqrt(double(kSamples)));
  EXPECT_NEAR(stats.StdDevPopulation(), sigma, 0.03 * sigma);
}

TEST_P(ErrorDistributionProperties, SamplesStayInSupport) {
  auto dist = Make();
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    const double x = dist->Sample(rng);
    EXPECT_GE(x, dist->SupportLo() - 1e-12);
    EXPECT_LE(x, dist->SupportHi() + 1e-12);
  }
}

TEST_P(ErrorDistributionProperties, SamplingIsDeterministicPerSeed) {
  auto dist = Make();
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(dist->Sample(a), dist->Sample(b));
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndSigmas, ErrorDistributionProperties,
    ::testing::Combine(::testing::Values(ErrorKind::kNormal,
                                         ErrorKind::kUniform,
                                         ErrorKind::kExponential,
                                         ErrorKind::kTailedUniform),
                       ::testing::Values(0.2, 0.6, 1.0, 2.0)));

// ------------------------------------------------------- kind-specific

TEST(NormalErrorTest, PdfMatchesClosedForm) {
  auto dist = MakeNormalError(1.5);
  EXPECT_NEAR(dist->Pdf(0.0), 1.0 / (1.5 * std::sqrt(2.0 * M_PI)), 1e-12);
}

TEST(UniformErrorTest, SupportIsSigmaSqrt3) {
  auto dist = MakeUniformError(1.0);
  const double a = std::sqrt(3.0);
  EXPECT_NEAR(dist->SupportLo(), -a, 1e-12);
  EXPECT_NEAR(dist->SupportHi(), a, 1e-12);
  EXPECT_NEAR(dist->Pdf(0.0), 1.0 / (2.0 * a), 1e-12);
  EXPECT_DOUBLE_EQ(dist->Pdf(2.0), 0.0);
}

TEST(ExponentialErrorTest, SkewAndSupport) {
  auto dist = MakeExponentialError(0.5);
  EXPECT_NEAR(dist->SupportLo(), -0.5, 1e-12);
  EXPECT_TRUE(std::isinf(dist->SupportHi()));
  // Positive skew: third central moment is 2 sigma^3.
  EXPECT_NEAR(dist->CentralMoment(3), 2.0 * 0.125, 1e-12);
  // Density at the left edge is 1/sigma.
  EXPECT_NEAR(dist->Pdf(-0.5), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(dist->Pdf(-0.6), 0.0);
}

TEST(TailedUniformErrorTest, PdfNeverZeroNearSupport) {
  // The whole point of the workaround: density stays positive well past the
  // pure-uniform support edge.
  auto pure = MakeUniformError(1.0);
  auto tailed = MakeTailedUniformError(1.0, 0.01);
  const double beyond = pure->SupportHi() + 1.0;
  EXPECT_DOUBLE_EQ(pure->Pdf(beyond), 0.0);
  EXPECT_GT(tailed->Pdf(beyond), 0.0);
}

TEST(TailedUniformErrorTest, VarianceIsPreserved) {
  for (double sigma : {0.2, 1.0, 2.0}) {
    auto tailed = MakeTailedUniformError(sigma, 0.01);
    EXPECT_NEAR(tailed->stddev(), sigma, 1e-9);
  }
}

TEST(MixtureErrorTest, MomentsCombineLinearly) {
  auto mix = MakeMixtureError(
      {MakeNormalError(1.0), MakeUniformError(2.0)}, {0.25, 0.75});
  const double expected_var = 0.25 * 1.0 + 0.75 * 4.0;
  EXPECT_NEAR(mix->CentralMoment(2), expected_var, 1e-12);
  EXPECT_NEAR(mix->stddev(), std::sqrt(expected_var), 1e-12);
}

TEST(MixtureErrorTest, WeightsAreNormalized) {
  auto mix = MakeMixtureError(
      {MakeNormalError(1.0), MakeNormalError(1.0)}, {2.0, 6.0});
  // Both components identical => behaves like a single normal.
  EXPECT_NEAR(mix->Pdf(0.4), MakeNormalError(1.0)->Pdf(0.4), 1e-12);
  EXPECT_NEAR(mix->Cdf(0.4), MakeNormalError(1.0)->Cdf(0.4), 1e-12);
}

TEST(MixtureErrorTest, SamplingHitsBothComponents) {
  auto mix = MakeMixtureError(
      {MakeUniformError(0.1), MakeNormalError(5.0)}, {0.5, 0.5});
  Rng rng(3);
  int wide = 0;
  constexpr int kSamples = 4000;
  for (int i = 0; i < kSamples; ++i) {
    if (std::fabs(mix->Sample(rng)) > 0.1 * std::sqrt(3.0)) ++wide;
  }
  // About half the draws should come from the wide normal.
  EXPECT_GT(wide, kSamples / 4);
  EXPECT_LT(wide, 3 * kSamples / 4);
}

TEST(NoErrorTest, DegenerateBehaviour) {
  auto none = MakeNoError();
  Rng rng(1);
  EXPECT_DOUBLE_EQ(none->Sample(rng), 0.0);
  EXPECT_DOUBLE_EQ(none->stddev(), 0.0);
  EXPECT_DOUBLE_EQ(none->Cdf(-0.001), 0.0);
  EXPECT_DOUBLE_EQ(none->Cdf(0.001), 1.0);
}

}  // namespace
}  // namespace uts::prob
