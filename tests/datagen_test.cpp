// Unit + property tests for the synthetic UCR-like generators
// (src/datagen).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "datagen/generators.hpp"
#include "datagen/registry.hpp"
#include "prob/stats.hpp"
#include "ts/normalize.hpp"

namespace uts::datagen {
namespace {

TEST(CbfTest, ShapesAndLabels) {
  const ts::Dataset d = GenerateCbf(30, 128, 1);
  EXPECT_EQ(d.size(), 30u);
  EXPECT_EQ(d.name(), "CBF");
  std::set<int> labels;
  for (const auto& s : d) {
    EXPECT_EQ(s.size(), 128u);
    labels.insert(s.label());
  }
  EXPECT_EQ(labels, (std::set<int>{0, 1, 2}));
}

TEST(CbfTest, CylinderHasElevatedPlateau) {
  // A cylinder instance averages ~6 inside [a, b] and ~0 outside; the
  // overall series mean must sit clearly above zero but below the plateau.
  const ts::Dataset d = GenerateCbf(90, 128, 2);
  prob::RunningStats plateau_fraction;
  for (const auto& s : d) {
    if (s.label() != 0) continue;
    std::size_t high = 0;
    for (double v : s) {
      if (v > 3.0) ++high;
    }
    plateau_fraction.Add(double(high) / double(s.size()));
  }
  // a in [n/8, n/4], width in [n/4, 3n/4]: plateau covers 25%-75%.
  EXPECT_GT(plateau_fraction.Mean(), 0.15);
  EXPECT_LT(plateau_fraction.Mean(), 0.85);
}

TEST(CbfTest, BellRampsUpFunnelRampsDown) {
  const ts::Dataset d = GenerateCbf(90, 128, 3);
  // For bells (label 1) the second half of the active region is higher than
  // the first half on average; funnels (label 2) the reverse.
  double bell_trend = 0.0, funnel_trend = 0.0;
  int bells = 0, funnels = 0;
  for (const auto& s : d) {
    if (s.label() == 0) continue;
    // Compare mean of first vs last third of the series.
    const std::size_t third = s.size() / 3;
    double first = 0.0, last = 0.0;
    for (std::size_t i = 0; i < third; ++i) first += s[i];
    for (std::size_t i = s.size() - third; i < s.size(); ++i) last += s[i];
    const double trend = (last - first) / double(third);
    if (s.label() == 1) {
      bell_trend += trend;
      ++bells;
    } else {
      funnel_trend += trend;
      ++funnels;
    }
  }
  ASSERT_GT(bells, 0);
  ASSERT_GT(funnels, 0);
  EXPECT_GT(bell_trend / bells, funnel_trend / funnels);
}

TEST(SyntheticControlTest, SixClassesWithTrends) {
  const ts::Dataset d = GenerateSyntheticControl(60, 60, 4);
  EXPECT_EQ(d.size(), 60u);
  std::set<int> labels;
  for (const auto& s : d) labels.insert(s.label());
  EXPECT_EQ(labels.size(), 6u);

  // Increasing-trend class (2) must end higher than it starts; decreasing
  // (3) lower; baseline (0) roughly flat around 30.
  for (const auto& s : d) {
    const double head = (s[0] + s[1] + s[2]) / 3.0;
    const double tail = (s[57] + s[58] + s[59]) / 3.0;
    switch (s.label()) {
      case 2: EXPECT_GT(tail, head + 5.0); break;
      case 3: EXPECT_LT(tail, head - 5.0); break;
      case 0:
        EXPECT_NEAR(head, 30.0, 8.0);
        EXPECT_NEAR(tail, 30.0, 8.0);
        break;
      default: break;
    }
  }
}

TEST(SyntheticControlTest, ShiftClassesJumpAtShiftTime) {
  const ts::Dataset d = GenerateSyntheticControl(120, 60, 5);
  for (const auto& s : d) {
    if (s.label() != 4 && s.label() != 5) continue;
    const double head = (s[0] + s[1] + s[2] + s[3] + s[4]) / 5.0;
    const double tail = (s[55] + s[56] + s[57] + s[58] + s[59]) / 5.0;
    if (s.label() == 4) {
      EXPECT_GT(tail, head + 3.0);
    }
    if (s.label() == 5) {
      EXPECT_LT(tail, head - 3.0);
    }
  }
}

// ----------------------------------------------------------- shape grammar

TEST(ShapeGrammarTest, DeterministicUnderSeed) {
  ShapeGrammarConfig config;
  config.num_classes = 3;
  config.length = 64;
  const ts::Dataset a = GenerateShapeGrammar(config, 12, 9, "x");
  const ts::Dataset b = GenerateShapeGrammar(config, 12, 9, "x");
  const ts::Dataset c = GenerateShapeGrammar(config, 12, 10, "x");
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_EQ(a[i], b[i]);
  }
  EXPECT_FALSE(a[0] == c[0]);
}

TEST(ShapeGrammarTest, PrefixStability) {
  // Scaling down the series count must keep the shared prefix identical —
  // GenerateScaled relies on this.
  ShapeGrammarConfig config;
  config.num_classes = 4;
  config.length = 48;
  const ts::Dataset big = GenerateShapeGrammar(config, 40, 11, "x");
  const ts::Dataset small = GenerateShapeGrammar(config, 10, 11, "x");
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(big[i], small[i]);
  }
}

TEST(ShapeGrammarTest, RoundRobinLabels) {
  ShapeGrammarConfig config;
  config.num_classes = 5;
  config.length = 32;
  const ts::Dataset d = GenerateShapeGrammar(config, 23, 12, "x");
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(d[i].label(), static_cast<int>(i % 5));
  }
}

TEST(ShapeGrammarTest, SameClassCloserThanCrossClass) {
  // Within-class distances must be smaller on average than cross-class —
  // otherwise nearest-neighbor ground truth is meaningless.
  ShapeGrammarConfig config;
  config.num_classes = 2;
  config.length = 96;
  config.class_separation = 1.5;
  const ts::Dataset raw = GenerateShapeGrammar(config, 40, 13, "x");
  const ts::Dataset d = raw.ZNormalizedCopy();
  prob::RunningStats within, across;
  for (std::size_t i = 0; i < d.size(); ++i) {
    for (std::size_t j = i + 1; j < d.size(); ++j) {
      double sq = 0.0;
      for (std::size_t t = 0; t < d[i].size(); ++t) {
        sq += (d[i][t] - d[j][t]) * (d[i][t] - d[j][t]);
      }
      (d[i].label() == d[j].label() ? within : across).Add(std::sqrt(sq));
    }
  }
  EXPECT_LT(within.Mean(), across.Mean());
}

TEST(ShapeGrammarTest, NeighboringPointsAreCorrelated) {
  // The paper's central observation hinges on temporal correlation; the
  // generated series must exhibit strong lag-1 autocorrelation.
  ShapeGrammarConfig config;
  config.num_classes = 2;
  config.length = 200;
  const ts::Dataset d = GenerateShapeGrammar(config, 10, 14, "x");
  for (const auto& s : d) {
    std::vector<double> values(s.begin(), s.end());
    const double rho = prob::Autocorrelation(values, 1).ValueOrDie();
    EXPECT_GT(rho, 0.8) << s.id();
  }
}

// ---------------------------------------------------------------- registry

TEST(RegistryTest, AllSeventeenDatasetsPresent) {
  const auto names = UcrLikeNames();
  ASSERT_EQ(names.size(), 17u);
  // Spot-check the paper's listing order.
  EXPECT_EQ(names.front(), "50words");
  EXPECT_EQ(names.back(), "syntheticControl");
  const std::set<std::string> set(names.begin(), names.end());
  for (const char* expected :
       {"Adiac", "Beef", "CBF", "Coffee", "ECG200", "FISH", "FaceAll",
        "FaceFour", "GunPoint", "Lighting2", "Lighting7", "OSULeaf",
        "OliveOil", "SwedishLeaf", "Trace"}) {
    EXPECT_TRUE(set.count(expected)) << expected;
  }
}

TEST(RegistryTest, SpecLookup) {
  auto spec = SpecByName("GunPoint");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec.ValueOrDie().num_series, 200u);
  EXPECT_EQ(spec.ValueOrDie().length, 150u);
  EXPECT_EQ(spec.ValueOrDie().shape.num_classes, 2u);
  EXPECT_FALSE(SpecByName("NoSuchDataset").ok());
}

TEST(RegistryTest, PaperScaleAverageSizes) {
  // "we obtained on average 502 time series of length 290 per dataset".
  double total_series = 0.0, total_length = 0.0;
  for (const auto& spec : UcrLikeSpecs()) {
    total_series += double(spec.num_series);
    total_length += double(spec.length);
  }
  EXPECT_NEAR(total_series / 17.0, 502.0, 80.0);
  EXPECT_NEAR(total_length / 17.0, 290.0, 60.0);
}

TEST(RegistryTest, GenerateScaledCapsSizes) {
  auto spec = SpecByName("FaceAll").ValueOrDie();
  const ts::Dataset d = GenerateScaled(spec, 7, 40, 64);
  EXPECT_EQ(d.size(), 40u);
  EXPECT_EQ(d[0].size(), 64u);
}

TEST(RegistryTest, GenerateByNameWorksForEveryDataset) {
  for (const auto& spec : UcrLikeSpecs()) {
    // Scaled down hard to keep the test fast.
    const ts::Dataset d = GenerateScaled(spec, 3, 24, 48);
    EXPECT_EQ(d.size(), 24u) << spec.name;
    EXPECT_TRUE(d.HasUniformLength()) << spec.name;
    EXPECT_GE(d.ClassHistogram().size(), 2u) << spec.name;
  }
}

TEST(RegistryTest, HardDatasetsHaveLowerPairwiseDistanceThanEasyOnes) {
  // The paper (Section 6): Adiac and SwedishLeaf have low average distance
  // between series (hard); FaceFour and OSULeaf high (easy). Our generators
  // are tuned to reproduce that ordering after z-normalization.
  auto avg_dist = [](const std::string& name) {
    auto spec = SpecByName(name).ValueOrDie();
    const ts::Dataset d = GenerateScaled(spec, 101, 48, 128).ZNormalizedCopy();
    return d.Summarize(48).avg_pairwise_distance;
  };
  const double adiac = avg_dist("Adiac");
  const double swedish = avg_dist("SwedishLeaf");
  const double face_four = avg_dist("FaceFour");
  const double osu_leaf = avg_dist("OSULeaf");
  EXPECT_LT(adiac, face_four);
  EXPECT_LT(adiac, osu_leaf);
  EXPECT_LT(swedish, face_four);
  EXPECT_LT(swedish, osu_leaf);
}

TEST(RegistryTest, ValuesRejectUniformityLikeRealData) {
  // Section 4.1.1: chi-square rejects the uniform hypothesis on all 17
  // datasets. Check a sample of generators.
  for (const char* name : {"GunPoint", "Trace", "CBF", "Adiac"}) {
    auto spec = SpecByName(name).ValueOrDie();
    const ts::Dataset d = GenerateScaled(spec, 15, 30, 128).ZNormalizedCopy();
    std::vector<double> pooled;
    for (const auto& s : d) pooled.insert(pooled.end(), s.begin(), s.end());
    auto test = prob::ChiSquareUniformityTest(pooled);
    ASSERT_TRUE(test.ok()) << name;
    EXPECT_TRUE(test.ValueOrDie().RejectAt(0.01)) << name;
  }
}

}  // namespace
}  // namespace uts::datagen
