// Parity suite for the prune-before-score index cascade (src/index): every
// index-eligible query path — Euclidean k-NN / all-k-NN / range, DUST k-NN
// / range — must return results bit-identical (ranks AND tie order AND
// distances) with the index on and off, at 1, 2 and 8 threads. The suite
// runs under the session's resolved dispatch: CI executes it once natively
// (AVX2 where available) and once under UNCERTTS_FORCE_SCALAR=1, so the
// admissibility slack is exercised against both kernel families.
// Probabilistic range queries (PROUD) are never index-routed; the suite
// still pins their identity across the option flip.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "distance/lp.hpp"
#include "prob/rng.hpp"
#include "query/engine.hpp"
#include "query/search.hpp"
#include "query/uncertain_engine.hpp"
#include "uncertain/uncertain_series.hpp"

namespace uts::query {
namespace {

constexpr std::size_t kThreadCounts[] = {1, 2, 8};

EngineOptions CertainOptions(std::size_t threads, bool indexed) {
  EngineOptions options;
  options.threads = threads;
  options.grain = 16;  // force many chunks even on small datasets
  options.index.enabled = indexed;
  return options;
}

UncertainEngineOptions UncertainOptions(std::size_t threads, bool indexed) {
  UncertainEngineOptions options;
  options.threads = threads;
  options.grain = 4;
  options.index.enabled = indexed;
  return options;
}

ts::Dataset GaussianDataset(std::size_t n, std::size_t len,
                            std::uint64_t seed) {
  prob::Rng rng(seed);
  ts::Dataset d("gauss");
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> values(len);
    for (double& v : values) v = rng.Gaussian();
    d.Add(ts::TimeSeries(std::move(values), int(i % 3)));
  }
  return d;
}

// Values on a {0, 1} grid: distances collide constantly, so the cascade's
// tie handling (lb == τ candidates still scored, d == τ displacing by
// index) is exercised against the full scan's partial_sort.
ts::Dataset TieHeavyDataset(std::size_t n, std::size_t len,
                            std::uint64_t seed) {
  prob::Rng rng(seed);
  ts::Dataset d("ties");
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> values(len);
    for (double& v : values) v = static_cast<double>(rng.Next() % 2);
    d.Add(ts::TimeSeries(std::move(values), int(i % 2)));
  }
  return d;
}

// Random walks concentrate their energy in the low-frequency Haar
// coefficients, so the synopsis prefix captures most of each pairwise
// distance — the regime where the cascade actually prunes.
ts::Dataset RandomWalkDataset(std::size_t n, std::size_t len,
                              std::uint64_t seed) {
  prob::Rng rng(seed);
  ts::Dataset d("walk");
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> values(len);
    double level = rng.Gaussian();
    for (double& v : values) {
      level += rng.Gaussian();
      v = level;
    }
    d.Add(ts::TimeSeries(std::move(values)));
  }
  return d;
}

void ExpectNeighborsIdentical(const std::vector<Neighbor>& got,
                              const std::vector<Neighbor>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].index, want[i].index) << "rank " << i;
    EXPECT_EQ(got[i].distance, want[i].distance) << "rank " << i;  // bitwise
  }
}

struct CertainCase {
  const char* name;
  ts::Dataset dataset;
};

std::vector<CertainCase> CertainCases() {
  std::vector<CertainCase> cases;
  cases.push_back({"gaussian", GaussianDataset(48, 24, 101)});
  cases.push_back({"tie-heavy", TieHeavyDataset(48, 12, 102)});
  cases.push_back({"random-walk", RandomWalkDataset(48, 32, 103)});
  return cases;
}

// --- Euclidean ---------------------------------------------------------------

TEST(IndexParityTest, KnnIndexOnVsOffBitwiseIdentical) {
  for (const CertainCase& c : CertainCases()) {
    for (std::size_t threads : kThreadCounts) {
      const DistanceMatrixEngine off(c.dataset,
                                     CertainOptions(threads, false));
      const DistanceMatrixEngine on(c.dataset, CertainOptions(threads, true));
      ASSERT_FALSE(off.index_enabled());
      ASSERT_TRUE(on.index_enabled()) << c.name;
      for (std::size_t q = 0; q < c.dataset.size(); ++q) {
        index::SearchCost cost;
        const auto got = on.KNearestEuclidean(q, 10, &cost);
        ExpectNeighborsIdentical(got, off.KNearestEuclidean(q, 10));
        EXPECT_EQ(cost.candidates_total, c.dataset.size() - 1)
            << c.name << " q=" << q;
        EXPECT_EQ(cost.candidates_touched + cost.pruned_lower_bound,
                  cost.candidates_total)
            << c.name << " q=" << q;
      }
    }
  }
}

TEST(IndexParityTest, AllKnnIndexOnMatchesPerQueryOff) {
  // The indexed all-k-NN runs the per-query cascade, so it must equal the
  // documented contract out[q] == KNearestEuclidean(q, k) of the unindexed
  // engine bit for bit — and its accumulated cost counters must be
  // identical at every thread count (deterministic accounting).
  for (const CertainCase& c : CertainCases()) {
    const DistanceMatrixEngine off(c.dataset, CertainOptions(1, false));
    std::vector<index::SearchCost> costs;
    for (std::size_t threads : kThreadCounts) {
      const DistanceMatrixEngine on(c.dataset, CertainOptions(threads, true));
      index::SearchCost cost;
      const auto all = on.AllKNearestEuclidean(7, 0, &cost);
      ASSERT_EQ(all.size(), c.dataset.size());
      for (std::size_t q = 0; q < all.size(); ++q) {
        ExpectNeighborsIdentical(all[q], off.KNearestEuclidean(q, 7));
      }
      costs.push_back(cost);
    }
    for (std::size_t i = 1; i < costs.size(); ++i) {
      EXPECT_EQ(costs[i].candidates_touched, costs[0].candidates_touched)
          << c.name;
      EXPECT_EQ(costs[i].pruned_lower_bound, costs[0].pruned_lower_bound)
          << c.name;
      EXPECT_EQ(costs[i].abandoned_early, costs[0].abandoned_early) << c.name;
    }
  }
}

TEST(IndexParityTest, RangeIndexOnVsOffBitwiseIdentical) {
  for (const CertainCase& c : CertainCases()) {
    // ε equal to an exactly attained distance makes the <= boundary
    // decisive; on the tie-heavy grid several candidates sit on it.
    const double epsilon = distance::Euclidean(c.dataset[0].values(),
                                               c.dataset[17].values());
    for (std::size_t threads : kThreadCounts) {
      const DistanceMatrixEngine off(c.dataset,
                                     CertainOptions(threads, false));
      const DistanceMatrixEngine on(c.dataset, CertainOptions(threads, true));
      for (std::size_t q = 0; q < c.dataset.size(); ++q) {
        index::SearchCost cost;
        EXPECT_EQ(on.RangeSearchEuclidean(q, epsilon, &cost),
                  off.RangeSearchEuclidean(q, epsilon))
            << c.name << " threads=" << threads << " q=" << q;
        EXPECT_EQ(cost.candidates_touched + cost.pruned_lower_bound,
                  cost.candidates_total);
      }
    }
  }
}

TEST(IndexParityTest, WalkDataActuallyPrunes) {
  // The parity tests above would pass vacuously if the bounds never pruned
  // anything; pin that on structured data the cascade touches a strict
  // subset of the candidates.
  const ts::Dataset walk = RandomWalkDataset(64, 64, 104);
  const DistanceMatrixEngine on(walk, CertainOptions(1, true));
  index::SearchCost cost;
  on.AllKNearestEuclidean(10, 0, &cost);
  EXPECT_GT(cost.pruned_lower_bound, 0u);
  EXPECT_LT(cost.candidates_touched, cost.candidates_total);
}

TEST(IndexParityTest, UnbatchedDatasetFallsBackToFullScan) {
  // Ragged lengths: no SoA store, no index — queries still answer, and the
  // cost accounting reports the full scan.
  ts::Dataset ragged("ragged");
  ragged.Add(ts::TimeSeries(std::vector<double>{1.0, 2.0, 3.0}));
  ragged.Add(ts::TimeSeries(std::vector<double>{1.5, 2.5}));
  ragged.Add(ts::TimeSeries(std::vector<double>{0.5, 2.0, 3.5}));
  const DistanceMatrixEngine on(ragged, CertainOptions(1, true));
  EXPECT_FALSE(on.index_enabled());
  index::SearchCost cost;
  EXPECT_EQ(on.KNearestEuclidean(0, 2, &cost).size(), 2u);
  EXPECT_EQ(cost.candidates_touched, 2u);
  EXPECT_EQ(cost.candidates_total, 2u);
}

// --- DUST --------------------------------------------------------------------

/// Gaussian observations with a per-point error model from `error_of`.
template <typename ErrorOf>
uncertain::UncertainDataset WalkUncertain(std::size_t n, std::size_t len,
                                          std::uint64_t seed,
                                          const ErrorOf& error_of) {
  prob::Rng rng(seed);
  uncertain::UncertainDataset d;
  d.name = "walk-uncertain";
  for (std::size_t s = 0; s < n; ++s) {
    std::vector<double> obs(len);
    std::vector<prob::ErrorDistributionPtr> errors(len);
    double level = rng.Gaussian();
    for (std::size_t t = 0; t < len; ++t) {
      level += rng.Gaussian();
      obs[t] = level;
      errors[t] = error_of(s, t);
    }
    d.series.emplace_back(std::move(obs), std::move(errors));
  }
  return d;
}

template <typename ErrorOf>
uncertain::UncertainDataset TieHeavyUncertain(std::size_t n, std::size_t len,
                                              std::uint64_t seed,
                                              const ErrorOf& error_of) {
  prob::Rng rng(seed);
  uncertain::UncertainDataset d;
  d.name = "ties-uncertain";
  for (std::size_t s = 0; s < n; ++s) {
    std::vector<double> obs(len);
    std::vector<prob::ErrorDistributionPtr> errors(len);
    for (std::size_t t = 0; t < len; ++t) {
      obs[t] = static_cast<double>(rng.Next() % 2);
      errors[t] = error_of(s, t);
    }
    d.series.emplace_back(std::move(obs), std::move(errors));
  }
  return d;
}

struct DustCase {
  const char* name;
  uncertain::UncertainDataset dataset;
};

std::vector<DustCase> DustCases() {
  // Normal errors: one class, the closed-form lut (unbounded minorant).
  auto normal = prob::MakeNormalError(0.5);
  // Mixed normal σ: two classes, the classed kernel.
  auto hi = prob::MakeNormalError(1.0);
  auto lo = prob::MakeNormalError(0.4);
  // Uniform errors: the numeric table path (capped minorant).
  auto uniform = prob::MakeUniformError(0.5);

  std::vector<DustCase> cases;
  cases.push_back(
      {"normal-closed-form",
       TieHeavyUncertain(40, 8, 111,
                         [&](std::size_t, std::size_t) { return normal; })});
  cases.push_back({"mixed-sigma-classed",
                   WalkUncertain(40, 16, 112, [&](std::size_t s,
                                                  std::size_t t) {
                     return (s + t) % 3 == 0 ? hi : lo;
                   })});
  cases.push_back(
      {"uniform-table",
       WalkUncertain(32, 16, 113,
                     [&](std::size_t, std::size_t) { return uniform; })});
  return cases;
}

TEST(IndexParityTest, DustKnnAndRangeIndexOnVsOffBitwiseIdentical) {
  for (DustCase& c : DustCases()) {
    for (std::size_t threads : kThreadCounts) {
      auto off = UncertainEngine::Create(c.dataset,
                                         UncertainOptions(threads, false));
      auto on = UncertainEngine::Create(c.dataset,
                                        UncertainOptions(threads, true));
      ASSERT_TRUE(off.ok() && on.ok()) << c.name;
      ASSERT_TRUE(off.ValueOrDie()->BuildDustTables().ok());
      ASSERT_TRUE(on.ValueOrDie()->BuildDustTables().ok());
      EXPECT_FALSE(off.ValueOrDie()->dust_index_enabled());
      ASSERT_TRUE(on.ValueOrDie()->dust_index_enabled()) << c.name;
      const double epsilon =
          off.ValueOrDie()->DustDistance(0, 17).ValueOrDie();
      for (std::size_t q : {std::size_t{0}, std::size_t{5},
                            std::size_t{31}}) {
        index::SearchCost cost;
        ExpectNeighborsIdentical(
            on.ValueOrDie()->KNearestDust(q, 10, &cost).ValueOrDie(),
            off.ValueOrDie()->KNearestDust(q, 10).ValueOrDie());
        EXPECT_EQ(cost.candidates_touched + cost.pruned_lower_bound,
                  cost.candidates_total)
            << c.name << " q=" << q;
        EXPECT_EQ(on.ValueOrDie()->RangeSearchDust(q, epsilon).ValueOrDie(),
                  off.ValueOrDie()->RangeSearchDust(q, epsilon).ValueOrDie())
            << c.name << " threads=" << threads << " q=" << q;
      }
    }
  }
}

TEST(IndexParityTest, DustWalkDataPrunes) {
  // DUST pruning end to end: structured observations + a positive table
  // minorant must skip scoring for part of the candidate set.
  auto normal = prob::MakeNormalError(0.3);
  auto d = WalkUncertain(48, 32, 114,
                         [&](std::size_t, std::size_t) { return normal; });
  auto on = UncertainEngine::Create(d, UncertainOptions(1, true));
  ASSERT_TRUE(on.ok());
  ASSERT_TRUE(on.ValueOrDie()->BuildDustTables().ok());
  ASSERT_TRUE(on.ValueOrDie()->dust_index_enabled());
  index::SearchCost cost;
  for (std::size_t q = 0; q < d.size(); ++q) {
    ASSERT_TRUE(on.ValueOrDie()->KNearestDust(q, 5, &cost).ok());
  }
  EXPECT_GT(cost.pruned_lower_bound, 0u);
  EXPECT_LT(cost.candidates_touched, cost.candidates_total);
}

// --- PRQ ---------------------------------------------------------------------

TEST(IndexParityTest, ProudPrqIdenticalAcrossIndexFlip) {
  // PROUD's probabilistic range query is not index-routed (its match
  // probability is not provably monotone in the observation distance);
  // flipping the option must not change its results in any way.
  auto err = prob::MakeNormalError(0.6);
  auto ties = TieHeavyUncertain(40, 8, 115,
                                [&](std::size_t, std::size_t) { return err; });
  for (std::size_t threads : kThreadCounts) {
    UncertainEngineOptions off_options = UncertainOptions(threads, false);
    UncertainEngineOptions on_options = UncertainOptions(threads, true);
    off_options.proud_sigma = on_options.proud_sigma = 0.6;
    auto off = UncertainEngine::Create(ties, off_options);
    auto on = UncertainEngine::Create(ties, on_options);
    ASSERT_TRUE(off.ok() && on.ok());
    for (double tau : {0.1, 0.5, 0.9}) {
      EXPECT_EQ(
          on.ValueOrDie()->ProbabilisticRangeSearchProud(3, 2.0, tau),
          off.ValueOrDie()->ProbabilisticRangeSearchProud(3, 2.0, tau))
          << "tau=" << tau << " threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace uts::query
