// Codec suite for the server wire layer (src/server/frame, src/server/wire):
//
//  * frame header encode/decode roundtrip, magic/version/size rejection,
//    and checksum-mismatch detection over a socketpair;
//  * payload primitive roundtrips, with doubles travelling as IEEE-754 bit
//    patterns (bit-exact including negative zero and subnormals);
//  * schema roundtrips for every request/response message, including a
//    dataset upload whose values survive bit-exactly;
//  * truncation safety — every decoder returns Corruption, never reads
//    past the payload.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "server/frame.hpp"
#include "server/wire.hpp"

namespace uts::server {
namespace {

TEST(FrameHeader, Roundtrip) {
  FrameHeader header;
  header.type = static_cast<std::uint8_t>(MessageType::kKnnResult);
  header.flags = 0x1234;
  header.sequence = 0x0102030405060708ULL;
  header.payload_size = 4096;
  header.payload_checksum = 0xdeadbeef;

  std::uint8_t buf[kFrameHeaderSize];
  EncodeFrameHeader(header, buf);
  Result<FrameHeader> decoded = DecodeFrameHeader(buf);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.ValueOrDie().type, header.type);
  EXPECT_EQ(decoded.ValueOrDie().flags, header.flags);
  EXPECT_EQ(decoded.ValueOrDie().sequence, header.sequence);
  EXPECT_EQ(decoded.ValueOrDie().payload_size, header.payload_size);
  EXPECT_EQ(decoded.ValueOrDie().payload_checksum, header.payload_checksum);
}

TEST(FrameHeader, RejectsBadMagicVersionAndSize) {
  FrameHeader header;
  header.payload_size = 16;
  std::uint8_t buf[kFrameHeaderSize];

  EncodeFrameHeader(header, buf);
  buf[0] ^= 0xff;  // Corrupt the magic.
  EXPECT_FALSE(DecodeFrameHeader(buf).ok());

  EncodeFrameHeader(header, buf);
  buf[4] = 99;  // Unknown protocol version.
  EXPECT_FALSE(DecodeFrameHeader(buf).ok());

  header.payload_size = FrameHeader::kMaxPayloadSize + 1;
  EncodeFrameHeader(header, buf);
  EXPECT_FALSE(DecodeFrameHeader(buf).ok());
}

TEST(Frame, SocketRoundtripAndChecksumMismatch) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

  std::vector<std::uint8_t> payload = {1, 2, 3, 250, 251, 252};
  Frame sent = MakeFrame(static_cast<std::uint8_t>(MessageType::kPong), 7,
                         payload)
                   .ValueOrDie();
  ASSERT_TRUE(WriteFrame(fds[0], sent).ok());
  Result<Frame> received = ReadFrame(fds[1]);
  ASSERT_TRUE(received.ok()) << received.status().ToString();
  EXPECT_EQ(received.ValueOrDie().header.sequence, 7u);
  EXPECT_EQ(received.ValueOrDie().payload, payload);

  // Flip one payload byte on the wire: the reader must detect it.
  Frame bad = MakeFrame(static_cast<std::uint8_t>(MessageType::kPong), 8,
                        payload)
                  .ValueOrDie();
  std::uint8_t header_buf[kFrameHeaderSize];
  EncodeFrameHeader(bad.header, header_buf);
  ASSERT_EQ(::send(fds[0], header_buf, sizeof(header_buf), 0),
            static_cast<ssize_t>(sizeof(header_buf)));
  bad.payload[2] ^= 0x40;
  ASSERT_EQ(::send(fds[0], bad.payload.data(), bad.payload.size(), 0),
            static_cast<ssize_t>(bad.payload.size()));
  Result<Frame> corrupt = ReadFrame(fds[1]);
  EXPECT_FALSE(corrupt.ok());

  // A closed peer reads as a clean error, not a hang.
  ::close(fds[0]);
  EXPECT_FALSE(ReadFrame(fds[1]).ok());
  ::close(fds[1]);
}

TEST(Frame, OversizePayloadIsRejectedBeforeTheWire) {
  // Regression: MakeFrame used to cast payload.size() to the u32 header
  // field unchecked — one byte past the cap truncated the size while the
  // checksum covered the full buffer, desynchronizing the stream.
  std::vector<std::uint8_t> oversize(FrameHeader::kMaxPayloadSize + 1, 0x5a);
  Result<Frame> too_big = MakeFrame(
      static_cast<std::uint8_t>(MessageType::kSweepResult), 1, oversize);
  ASSERT_FALSE(too_big.ok());
  EXPECT_EQ(too_big.status().code(), StatusCode::kInvalidArgument);

  // Exactly at the cap is legal.
  std::vector<std::uint8_t> at_cap(FrameHeader::kMaxPayloadSize, 0x5a);
  EXPECT_TRUE(MakeFrame(static_cast<std::uint8_t>(MessageType::kSweepResult),
                        1, std::move(at_cap))
                  .ok());

  // Defense in depth: a hand-built frame whose header lies about the
  // payload size must be refused before any byte reaches the socket.
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Frame lying = MakeFrame(static_cast<std::uint8_t>(MessageType::kPong), 2,
                          {1, 2, 3})
                    .ValueOrDie();
  lying.header.payload_size = 2;  // Disagrees with payload.size() == 3.
  Status refused = WriteFrame(fds[0], lying);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.code(), StatusCode::kInvalidArgument);
  // Nothing was sent: the peer sees a clean EOF after close, not a
  // truncated header.
  ::close(fds[0]);
  EXPECT_FALSE(ReadFrame(fds[1]).ok());
  ::close(fds[1]);
}

TEST(PayloadCodec, PrimitivesRoundtripBitExact) {
  PayloadWriter writer;
  writer.U8(0xab);
  writer.U32(0xfeedc0de);
  writer.U64(0x0123456789abcdefULL);
  writer.F64(-0.0);
  writer.F64(std::numeric_limits<double>::denorm_min());
  writer.F64(1.0 / 3.0);
  writer.Str("uncertain");
  writer.F64Vec({1.5, -2.25, 1e-300});
  const std::vector<std::uint8_t> payload = writer.Take();

  PayloadReader reader(payload);
  EXPECT_EQ(reader.U8().ValueOrDie(), 0xab);
  EXPECT_EQ(reader.U32().ValueOrDie(), 0xfeedc0deu);
  EXPECT_EQ(reader.U64().ValueOrDie(), 0x0123456789abcdefULL);
  const double neg_zero = reader.F64().ValueOrDie();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));
  EXPECT_EQ(reader.F64().ValueOrDie(),
            std::numeric_limits<double>::denorm_min());
  EXPECT_EQ(reader.F64().ValueOrDie(), 1.0 / 3.0);
  EXPECT_EQ(reader.Str().ValueOrDie(), "uncertain");
  EXPECT_EQ(reader.F64Vec().ValueOrDie(),
            (std::vector<double>{1.5, -2.25, 1e-300}));
  EXPECT_TRUE(reader.AtEnd());
}

TEST(PayloadCodec, TruncationIsCorruptionNotOverread) {
  PayloadWriter writer;
  writer.Str("hello");
  writer.F64Vec({1.0, 2.0});
  std::vector<std::uint8_t> payload = writer.Take();
  // Every proper prefix must decode to an error, never crash.
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    std::vector<std::uint8_t> prefix(payload.begin(), payload.begin() + cut);
    PayloadReader reader(prefix);
    Result<std::string> s = reader.Str();
    if (!s.ok()) continue;
    EXPECT_FALSE(reader.F64Vec().ok()) << "cut=" << cut;
  }
}

TEST(WireMessages, ControlRoundtrip) {
  HelloMessage hello;
  hello.client_token = 42;
  hello.last_seq_seen = 99;
  auto hello2 = HelloMessage::Decode(hello.Encode());
  ASSERT_TRUE(hello2.ok());
  EXPECT_EQ(hello2.ValueOrDie().client_token, 42u);
  EXPECT_EQ(hello2.ValueOrDie().last_seq_seen, 99u);

  HelloAckMessage ack;
  ack.resumed = 1;
  ack.replayed = 3;
  ack.server_seq = 17;
  auto ack2 = HelloAckMessage::Decode(ack.Encode());
  ASSERT_TRUE(ack2.ok());
  EXPECT_EQ(ack2.ValueOrDie().resumed, 1);
  EXPECT_EQ(ack2.ValueOrDie().replayed, 3u);
  EXPECT_EQ(ack2.ValueOrDie().server_seq, 17u);

  AckMessage a;
  a.acked_seq = 1234;
  auto a2 = AckMessage::Decode(a.Encode());
  ASSERT_TRUE(a2.ok());
  EXPECT_EQ(a2.ValueOrDie().acked_seq, 1234u);
}

TEST(WireMessages, BindDatasetRoundtripBitExact) {
  BindDatasetRequest request;
  request.name = "heartbeats";
  request.kind = WireErrorKind::kExponential;
  request.sigma = 0.75;
  request.mixed_sigma = 1;
  request.seed = 777;
  request.samples_per_point = 5;
  request.series = {{1.0, -0.0, 1e-300}, {0.25, 1.0 / 3.0, -5.5}};
  request.labels = {3, -1};

  auto decoded = BindDatasetRequest::Decode(request.Encode());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const BindDatasetRequest& d = decoded.ValueOrDie();
  EXPECT_EQ(d.name, request.name);
  EXPECT_EQ(d.kind, request.kind);
  EXPECT_EQ(d.sigma, request.sigma);
  EXPECT_EQ(d.mixed_sigma, request.mixed_sigma);
  EXPECT_EQ(d.seed, request.seed);
  EXPECT_EQ(d.samples_per_point, request.samples_per_point);
  ASSERT_EQ(d.series.size(), request.series.size());
  for (std::size_t i = 0; i < d.series.size(); ++i) {
    ASSERT_EQ(d.series[i].size(), request.series[i].size());
    for (std::size_t j = 0; j < d.series[i].size(); ++j) {
      // Bit-pattern equality, not numeric closeness.
      std::uint64_t a, b;
      std::memcpy(&a, &d.series[i][j], sizeof(a));
      std::memcpy(&b, &request.series[i][j], sizeof(b));
      EXPECT_EQ(a, b) << "series " << i << " value " << j;
    }
  }
  EXPECT_EQ(d.labels, request.labels);
}

TEST(WireMessages, QueryAndResponsesRoundtrip) {
  QueryRequest query;
  query.dataset = "d";
  query.measure = WireMeasure::kMunich;
  query.query = 9;
  query.k = 4;
  query.epsilon = 2.5;
  query.tau = 0.125;
  query.num_queries = 16;
  auto query2 = QueryRequest::Decode(query.Encode());
  ASSERT_TRUE(query2.ok());
  EXPECT_EQ(query2.ValueOrDie().dataset, "d");
  EXPECT_EQ(query2.ValueOrDie().measure, WireMeasure::kMunich);
  EXPECT_EQ(query2.ValueOrDie().query, 9u);
  EXPECT_EQ(query2.ValueOrDie().k, 4u);
  EXPECT_EQ(query2.ValueOrDie().epsilon, 2.5);
  EXPECT_EQ(query2.ValueOrDie().tau, 0.125);
  EXPECT_EQ(query2.ValueOrDie().num_queries, 16u);

  KnnResponse knn;
  knn.request_seq = 5;
  knn.query = 2;
  knn.neighbors = {{7, 0.5}, {3, 1.25}};
  knn.cost.candidates_total = 10;
  knn.cost.candidates_touched = 6;
  knn.cost.pruned_lower_bound = 4;
  knn.cost.abandoned_early = 1;
  auto knn2 = KnnResponse::Decode(knn.Encode());
  ASSERT_TRUE(knn2.ok());
  EXPECT_EQ(knn2.ValueOrDie().request_seq, 5u);
  EXPECT_EQ(knn2.ValueOrDie().query, 2u);
  ASSERT_EQ(knn2.ValueOrDie().neighbors.size(), 2u);
  EXPECT_EQ(knn2.ValueOrDie().neighbors[0].index, 7u);
  EXPECT_EQ(knn2.ValueOrDie().neighbors[0].distance, 0.5);
  EXPECT_EQ(knn2.ValueOrDie().neighbors[1].index, 3u);
  EXPECT_EQ(knn2.ValueOrDie().cost.candidates_total, 10u);
  EXPECT_EQ(knn2.ValueOrDie().cost.pruned_lower_bound, 4u);

  ErrorResponse error;
  error.request_seq = 8;
  error.code = WireError::kSaturated;
  error.retry_after_ms = 25;
  error.message = "admission queue full";
  auto error2 = ErrorResponse::Decode(error.Encode());
  ASSERT_TRUE(error2.ok());
  EXPECT_EQ(error2.ValueOrDie().request_seq, 8u);
  EXPECT_EQ(error2.ValueOrDie().code, WireError::kSaturated);
  EXPECT_EQ(error2.ValueOrDie().retry_after_ms, 25u);
  EXPECT_EQ(error2.ValueOrDie().message, "admission queue full");

  IndexListResponse indices;
  indices.request_seq = 11;
  indices.indices = {0, 5, 9};
  auto indices2 = IndexListResponse::Decode(indices.Encode());
  ASSERT_TRUE(indices2.ok());
  EXPECT_EQ(indices2.ValueOrDie().indices,
            (std::vector<std::uint64_t>{0, 5, 9}));

  SweepResponse sweep;
  sweep.request_seq = 12;
  sweep.values = {0.0, 0.5, 1.0};
  auto sweep2 = SweepResponse::Decode(sweep.Encode());
  ASSERT_TRUE(sweep2.ok());
  EXPECT_EQ(sweep2.ValueOrDie().values, (std::vector<double>{0.0, 0.5, 1.0}));

  KnnSweepDoneResponse done;
  done.request_seq = 13;
  done.num_items = 40;
  auto done2 = KnnSweepDoneResponse::Decode(done.Encode());
  ASSERT_TRUE(done2.ok());
  EXPECT_EQ(done2.ValueOrDie().num_items, 40u);
}

TEST(WireMessages, PingRoundtripCarriesShardTarget) {
  PingRequest ping;
  ping.delay_ms = 250;
  ping.echo = 0xabcdef;
  ping.dataset = "shard-a";
  auto ping2 = PingRequest::Decode(ping.Encode());
  ASSERT_TRUE(ping2.ok());
  EXPECT_EQ(ping2.ValueOrDie().delay_ms, 250u);
  EXPECT_EQ(ping2.ValueOrDie().echo, 0xabcdefu);
  EXPECT_EQ(ping2.ValueOrDie().dataset, "shard-a");
}

TEST(WireMessages, DecodersRejectTrailingGarbageEnums) {
  QueryRequest query;
  query.measure = WireMeasure::kDust;
  std::vector<std::uint8_t> payload = query.Encode();
  // Find the measure byte by decoding a mutated copy: an out-of-range
  // measure must be rejected rather than cast blindly.
  bool rejected_somewhere = false;
  for (std::size_t i = 0; i < payload.size(); ++i) {
    std::vector<std::uint8_t> mutated = payload;
    mutated[i] = 0x7f;
    if (!QueryRequest::Decode(mutated).ok()) rejected_somewhere = true;
  }
  EXPECT_TRUE(rejected_somewhere);
}

}  // namespace
}  // namespace uts::server
