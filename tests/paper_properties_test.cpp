// Cross-cutting property tests tying the paper's analytical claims to the
// implementation, swept over all 17 datasets and the σ grid.

#include <gtest/gtest.h>

#include <cmath>

#include "datagen/registry.hpp"
#include "distance/lp.hpp"
#include "measures/dust.hpp"
#include "measures/proud.hpp"
#include "prob/stats.hpp"
#include "query/search.hpp"
#include "uncertain/perturb.hpp"

namespace uts {
namespace {

// ------------------------------------------------ dataset-wide invariants

class EveryDataset : public ::testing::TestWithParam<std::string> {
 protected:
  ts::Dataset Load(std::size_t series = 24, std::size_t length = 48) const {
    auto spec = datagen::SpecByName(GetParam()).ValueOrDie();
    return datagen::GenerateScaled(spec, 99, series, length);
  }
};

TEST_P(EveryDataset, GenerationIsDeterministic) {
  const ts::Dataset a = Load();
  const ts::Dataset b = Load();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST_P(EveryDataset, ScalingPreservesThePrefix) {
  const ts::Dataset big = Load(24, 48);
  const ts::Dataset small = Load(12, 48);
  for (std::size_t i = 0; i < small.size(); ++i) EXPECT_EQ(big[i], small[i]);
}

TEST_P(EveryDataset, ClassesAreInterleavedAndBalanced) {
  const ts::Dataset d = Load(24, 48);
  const auto hist = d.ClassHistogram();
  ASSERT_GE(hist.size(), 2u);
  std::size_t min_count = d.size(), max_count = 0;
  for (const auto& [label, count] : hist) {
    (void)label;
    min_count = std::min(min_count, count);
    max_count = std::max(max_count, count);
  }
  // Round-robin assignment keeps class sizes within one of each other.
  EXPECT_LE(max_count - min_count, 1u);
}

TEST_P(EveryDataset, ValuesAreFiniteAndNonConstant) {
  const ts::Dataset d = Load();
  for (const auto& s : d) {
    prob::RunningStats stats;
    for (double v : s) {
      ASSERT_TRUE(std::isfinite(v));
      stats.Add(v);
    }
    EXPECT_GT(stats.StdDevPopulation(), 1e-9) << s.id();
  }
}

TEST_P(EveryDataset, GroundTruthNeighborsFavorSameClass) {
  // Nearest neighbors on exact z-normalized data should be enriched for
  // the query's class — otherwise the paper's evaluation task would be
  // meaningless on this dataset. Size the sample so every class has at
  // least 3 members (50words has 50 classes).
  const std::size_t classes =
      datagen::SpecByName(GetParam()).ValueOrDie().shape.num_classes;
  const ts::Dataset d =
      Load(std::max<std::size_t>(36, 3 * classes), 64).ZNormalizedCopy();
  const auto hist = d.ClassHistogram();
  double same = 0.0, total = 0.0;
  for (std::size_t qi = 0; qi < 12; ++qi) {
    const auto nn = query::KNearestEuclidean(d, qi, 3);
    for (const auto& nb : nn) {
      same += d[nb.index].label() == d[qi].label() ? 1.0 : 0.0;
      total += 1.0;
    }
  }
  const double chance =
      1.0 / static_cast<double>(hist.size());  // random-label baseline
  EXPECT_GT(same / total, chance) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(All17, EveryDataset,
                         ::testing::ValuesIn(datagen::UcrLikeNames()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

// ------------------------------------------------------ σ-grid invariants

class SigmaGridProperties : public ::testing::TestWithParam<double> {};

TEST_P(SigmaGridProperties, DustNormalRankingEqualsEuclideanRanking) {
  // Section 2.3: with normal errors DUST is equivalent to Euclidean; the
  // k-NN sets must coincide at every σ of the paper's sweep.
  const double sigma = GetParam();
  auto spec = datagen::SpecByName("Coffee").ValueOrDie();
  const ts::Dataset exact =
      datagen::GenerateScaled(spec, 7, 20, 40).ZNormalizedCopy();
  const auto pdf = uncertain::PerturbDataset(
      exact, uncertain::ErrorSpec::Constant(prob::ErrorKind::kNormal, sigma),
      5);
  measures::Dust dust;
  const auto dust_nn =
      query::KNearest(pdf.size(), 0, 5, [&](std::size_t i) {
        return dust.Distance(pdf[0], pdf[i]).ValueOrDie();
      });
  const auto euclid_nn =
      query::KNearest(pdf.size(), 0, 5, [&](std::size_t i) {
        return distance::Euclidean(pdf[0].observations(),
                                   pdf[i].observations());
      });
  for (std::size_t k = 0; k < 5; ++k) {
    EXPECT_EQ(dust_nn[k].index, euclid_nn[k].index) << "sigma=" << sigma;
  }
}

TEST_P(SigmaGridProperties, ProudProbabilityDecreasesWithReportedSigma) {
  // At fixed ε and observations, telling PROUD the noise is larger shifts
  // the squared-distance statistic up: the match probability must fall.
  const double sigma = GetParam();
  prob::Rng rng(13);
  std::vector<double> x(32), y(32);
  for (auto& v : x) v = rng.Gaussian();
  for (auto& v : y) v = rng.Gaussian();
  const double eps = 1.2 * distance::Euclidean(x, y);
  measures::Proud narrower({.tau = 0.5, .sigma = sigma});
  measures::Proud wider({.tau = 0.5, .sigma = sigma + 0.3});
  EXPECT_GE(narrower.MatchProbability(x, y, eps),
            wider.MatchProbability(x, y, eps) - 1e-12)
      << "sigma=" << sigma;
}

TEST_P(SigmaGridProperties, PerturbationVarianceMatchesSigma) {
  const double sigma = GetParam();
  const ts::TimeSeries zero(std::vector<double>(4000, 0.0));
  for (auto kind : {prob::ErrorKind::kNormal, prob::ErrorKind::kUniform,
                    prob::ErrorKind::kExponential}) {
    const auto u = uncertain::PerturbSeries(
        zero, uncertain::ErrorSpec::Constant(kind, sigma), 17);
    prob::RunningStats stats;
    for (std::size_t i = 0; i < u.size(); ++i) stats.Add(u.observation(i));
    EXPECT_NEAR(stats.StdDevPopulation(), sigma, 0.12 * sigma)
        << prob::ErrorKindName(kind) << " sigma=" << sigma;
  }
}

INSTANTIATE_TEST_SUITE_P(PaperSweep, SigmaGridProperties,
                         ::testing::Values(0.2, 0.6, 1.0, 1.4, 2.0));

}  // namespace
}  // namespace uts
