// End-to-end tests reproducing the paper's headline findings on scaled-down
// data. These are the "does the whole pipeline tell the paper's story"
// checks; the bench/ harnesses run the same flows at larger scale.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/experiment.hpp"
#include "core/matchers.hpp"
#include "datagen/registry.hpp"
#include "uncertain/error_spec.hpp"

namespace uts::core {
namespace {

using prob::ErrorKind;
using uncertain::ErrorSpec;

struct NamedRun {
  std::string dataset;
  std::vector<MatcherResult> results;
};

/// Run (Euclidean, DUST, UMA, UEMA) on a few scaled-down datasets under the
/// paper's Figure 15-17 mixed-error regime and pool the scores.
std::vector<MatcherResult> RunSectionFiveSetup(ErrorKind kind,
                                               std::uint64_t seed) {
  EuclideanMatcher euclid;
  DustMatcher dust;
  auto uma = MakeUmaMatcher();
  auto uema = MakeUemaMatcher();
  Matcher* matchers[] = {&euclid, &dust, uma.get(), uema.get()};

  const ErrorSpec spec = kind == ErrorKind::kUniform
                             ? ErrorSpec::MixedSigma(kind).
                               WithTailedUniformReporting()
                             : ErrorSpec::MixedSigma(kind);

  RunOptions options;
  options.ground_truth_k = 5;
  options.max_queries = 15;
  options.seed = seed;

  std::vector<std::vector<MatcherResult>> parts;
  for (const char* name : {"GunPoint", "Trace", "FaceFour"}) {
    auto dataset_spec = datagen::SpecByName(name).ValueOrDie();
    const ts::Dataset d =
        datagen::GenerateScaled(dataset_spec, seed, 40, 64).ZNormalizedCopy();
    auto run = RunSimilarityMatching(d, spec, matchers, options);
    EXPECT_TRUE(run.ok()) << name << ": " << run.status();
    if (run.ok()) parts.push_back(std::move(run).ValueOrDie());
  }

  std::vector<MatcherResult> pooled;
  for (std::size_t m = 0; m < 4; ++m) {
    std::vector<MatcherResult> per_matcher;
    for (const auto& p : parts) per_matcher.push_back(p[m]);
    pooled.push_back(CombineAcrossDatasets(per_matcher[0].name, per_matcher));
  }
  return pooled;
}

TEST(PaperFindingsTest, UemaOutperformsEuclideanOnMixedNormalError) {
  // Section 5.2 / Figure 16: "UMA and UEMA perform consistently better"
  // than Euclidean and DUST under mixed normal error.
  const auto pooled = RunSectionFiveSetup(ErrorKind::kNormal, 31);
  ASSERT_EQ(pooled.size(), 4u);
  const double euclid = pooled[0].f1.mean;
  const double uema = pooled[3].f1.mean;
  EXPECT_GT(uema, euclid)
      << "UEMA should beat raw Euclidean under mixed noise";
}

TEST(PaperFindingsTest, UmaOutperformsEuclideanOnMixedExponentialError) {
  const auto pooled = RunSectionFiveSetup(ErrorKind::kExponential, 33);
  const double euclid = pooled[0].f1.mean;
  const double uma = pooled[2].f1.mean;
  EXPECT_GT(uma, euclid);
}

TEST(PaperFindingsTest, DustAndEuclideanAreComparableUnderNormalError) {
  // Figure 5(a): "virtually no difference among the different techniques"
  // — under constant normal error DUST is *equivalent* to Euclidean
  // (proportional distance, identical ranking), so F1 must be very close.
  EuclideanMatcher euclid;
  DustMatcher dust;
  Matcher* matchers[] = {&euclid, &dust};
  auto spec = datagen::SpecByName("GunPoint").ValueOrDie();
  const ts::Dataset d =
      datagen::GenerateScaled(spec, 35, 40, 64).ZNormalizedCopy();
  RunOptions options;
  options.ground_truth_k = 5;
  options.max_queries = 20;
  options.seed = 35;
  auto results = RunSimilarityMatching(
      d, ErrorSpec::Constant(ErrorKind::kNormal, 0.8), matchers, options);
  ASSERT_TRUE(results.ok());
  EXPECT_NEAR(results.ValueOrDie()[0].f1.mean,
              results.ValueOrDie()[1].f1.mean, 0.05);
}

TEST(PaperFindingsTest, RecallStaysHigherThanPrecisionAsNoiseGrows) {
  // Figures 6-7: as sigma grows, precision collapses while recall stays
  // comparatively high. PROUD runs at its optimal tau, as in the paper
  // ("PROUD is using the optimal threshold, tau, for every value of the
  // standard deviation").
  ProudMatcher proud(0.5);
  Matcher* matchers[] = {&proud};
  auto spec = datagen::SpecByName("Trace").ValueOrDie();
  const ts::Dataset d =
      datagen::GenerateScaled(spec, 37, 40, 64).ZNormalizedCopy();
  RunOptions options;
  options.ground_truth_k = 5;
  options.max_queries = 15;
  options.seed = 37;
  options.proud_sigma = 2.0;
  const ErrorSpec spec_noise = ErrorSpec::Constant(ErrorKind::kNormal, 2.0);
  auto sweep = SweepTau(d, spec_noise, proud, options, DefaultTauGrid());
  ASSERT_TRUE(sweep.ok()) << sweep.status();
  auto results = RunSimilarityMatching(d, spec_noise, matchers, options);
  ASSERT_TRUE(results.ok());
  const auto& r = results.ValueOrDie()[0];
  EXPECT_GT(r.recall.mean, 0.0);
  EXPECT_GT(r.recall.mean, r.precision.mean);
}

TEST(PaperFindingsTest, MunichAccurateAtLowSigmaOnTruncatedData) {
  // Figure 4 regime: tiny series, 5 samples/timestamp, low sigma: MUNICH
  // achieves high accuracy.
  auto spec = datagen::SpecByName("GunPoint").ValueOrDie();
  const ts::Dataset full =
      datagen::GenerateScaled(spec, 39, 60, 48).ZNormalizedCopy();
  const ts::Dataset d = full.Truncated(24, 6).ValueOrDie();

  measures::MunichOptions mopts;
  mopts.estimator = measures::MunichOptions::Estimator::kExact;
  mopts.tau = 0.5;
  MunichMatcher munich(mopts);
  Matcher* matchers[] = {&munich};
  RunOptions options;
  options.ground_truth_k = 5;
  options.max_queries = 8;
  options.seed = 39;
  options.munich_samples_per_point = 5;

  auto low = RunSimilarityMatching(
      d, ErrorSpec::Constant(ErrorKind::kNormal, 0.2), matchers, options);
  auto high = RunSimilarityMatching(
      d, ErrorSpec::Constant(ErrorKind::kNormal, 2.0), matchers, options);
  ASSERT_TRUE(low.ok()) << low.status();
  ASSERT_TRUE(high.ok()) << high.status();
  // Low-noise accuracy is solid and collapses as sigma grows (the paper's
  // "accuracy falls sharply" observation).
  EXPECT_GT(low.ValueOrDie()[0].f1.mean, 0.5);
  EXPECT_GT(low.ValueOrDie()[0].f1.mean, high.ValueOrDie()[0].f1.mean);
}

TEST(PaperFindingsTest, WindowSweepPeaksAwayFromZero) {
  // Figure 13: w=0 (plain Euclidean) is worse than a small positive window.
  auto spec = datagen::SpecByName("ECG200").ValueOrDie();
  const ts::Dataset d =
      datagen::GenerateScaled(spec, 41, 40, 64).ZNormalizedCopy();
  const ErrorSpec noise = ErrorSpec::MixedSigma(ErrorKind::kNormal);
  RunOptions options;
  options.ground_truth_k = 5;
  options.max_queries = 15;
  options.seed = 41;

  auto f1_at = [&](std::size_t w) {
    auto uma = MakeUmaMatcher(w);
    Matcher* matchers[] = {uma.get()};
    auto run = RunSimilarityMatching(d, noise, matchers, options);
    EXPECT_TRUE(run.ok());
    return run.ok() ? run.ValueOrDie()[0].f1.mean : 0.0;
  };
  const double at_zero = f1_at(0);
  const double at_two = f1_at(2);
  EXPECT_GT(at_two, at_zero);
}

TEST(PaperFindingsTest, TimeGrowsWithSeriesLength) {
  // Figure 12: per-query time grows (roughly linearly) with length.
  EuclideanMatcher euclid;
  DustMatcher dust;
  Matcher* matchers[] = {&euclid, &dust};
  auto spec = datagen::SpecByName("Lighting2").ValueOrDie();
  RunOptions options;
  options.ground_truth_k = 3;
  options.max_queries = 8;
  options.seed = 43;

  auto time_at = [&](std::size_t length) {
    const ts::Dataset d =
        datagen::GenerateScaled(spec, 43, 24, length).ZNormalizedCopy();
    auto run = RunSimilarityMatching(
        d, ErrorSpec::Constant(ErrorKind::kNormal, 0.5), matchers, options);
    EXPECT_TRUE(run.ok());
    return run.ValueOrDie()[0].avg_query_millis +
           run.ValueOrDie()[1].avg_query_millis;
  };
  // 8x the length should take clearly more time; use a loose factor to
  // stay robust on noisy CI machines.
  const double short_series = time_at(64);
  const double long_series = time_at(512);
  EXPECT_GT(long_series, short_series);
}

}  // namespace
}  // namespace uts::core
