// Multi-tenant suite for the sharded dispatch tier (src/server/server):
//
//  * bitwise parity under sharding — two clients pinned to different
//    datasets query one server concurrently; every response is
//    bit-identical to directly driven per-dataset reference Services, at
//    worker widths 1, 2 and 8, under BOTH pool policies (per-shard pools
//    and one shared pool lent to all shards);
//  * pool-policy accounting — `shared` constructs exactly one ThreadPool
//    no matter how many datasets are resident; `per-shard` builds one per
//    queried shard;
//  * cross-shard progress — a deliberately stalled shard dispatcher (shard-
//    targeted ping with a delay) does not stop another shard's dispatcher
//    from completing queries, pinned via the per-shard dispatch counters;
//  * cross-shard admission — the global queue budget rejects with
//    kSaturated (carrying the retry hint) even when the target shard is
//    idle, and a later retry succeeds.

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "exec/thread_pool.hpp"
#include "prob/rng.hpp"
#include "server/client.hpp"
#include "server/server.hpp"
#include "ts/dataset.hpp"

namespace uts::server {
namespace {

ts::Dataset MakeExact(std::size_t n, std::size_t len, std::uint64_t seed) {
  prob::Rng rng(seed);
  ts::Dataset d("shard-exact");
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> values(len);
    for (double& v : values) v = rng.Gaussian();
    d.Add(ts::TimeSeries(std::move(values), static_cast<int>(i % 2)));
  }
  return d.ZNormalizedCopy();
}

BindDatasetRequest MakeBind(const std::string& name, const ts::Dataset& exact,
                            std::uint32_t samples_per_point) {
  BindDatasetRequest request;
  request.name = name;
  request.kind = WireErrorKind::kNormal;
  request.sigma = 0.4;
  request.seed = 1234;
  request.samples_per_point = samples_per_point;
  for (std::size_t i = 0; i < exact.size(); ++i) {
    const auto values = exact[i].values();
    request.series.emplace_back(values.begin(), values.end());
    request.labels.push_back(exact[i].label());
  }
  return request;
}

ServiceOptions MakeServiceOptions(std::size_t threads) {
  ServiceOptions options;
  options.threads = threads;
  options.munich.mc_samples = 200;
  return options;
}

std::string SocketPath(const std::string& tag) {
  return "/tmp/uts_" + tag + "_" + std::to_string(::getpid()) + ".sock";
}

void ExpectSameNeighbors(const std::vector<query::Neighbor>& a,
                         const std::vector<query::Neighbor>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].index, b[i].index) << "rank " << i;
    // EXPECT_EQ on doubles is exact equality: the parity claim is bitwise.
    EXPECT_EQ(a[i].distance, b[i].distance) << "rank " << i;
  }
}

/// Everything one tenant expects for its dataset, computed on a directly
/// driven single-width Service holding only that dataset (exactly what the
/// dataset's shard holds).
struct TenantExpected {
  KnnResponse euclid, dust, munich;
  IndexListResponse range_dust;
  SweepResponse sweep_proud;
};

QueryRequest TenantQuery(const std::string& dataset) {
  QueryRequest query;
  query.dataset = dataset;
  query.query = 1;
  query.k = 4;
  query.epsilon = 5.0;
  query.tau = 0.2;
  return query;
}

TenantExpected ComputeExpected(const BindDatasetRequest& bind) {
  Service reference(MakeServiceOptions(1));
  EXPECT_TRUE(reference.Bind(bind, 0).ok());
  QueryRequest query = TenantQuery(bind.name);
  TenantExpected expected;
  query.measure = WireMeasure::kEuclid;
  expected.euclid = reference.Knn(query, 0).ValueOrDie();
  query.measure = WireMeasure::kDust;
  expected.dust = reference.Knn(query, 0).ValueOrDie();
  expected.range_dust = reference.Range(query, 0).ValueOrDie();
  query.measure = WireMeasure::kProud;
  expected.sweep_proud = reference.MeasureSweep(query, 0).ValueOrDie();
  query.measure = WireMeasure::kMunich;
  expected.munich = reference.Knn(query, 0).ValueOrDie();
  return expected;
}

/// One tenant's whole wire conversation: query its dataset with every
/// measure and pin the responses bitwise against the reference.
void RunTenant(const std::string& socket, std::uint64_t token,
               const std::string& dataset, const TenantExpected& expected,
               std::string* failure) {
  Client::Options copts;
  copts.unix_socket_path = socket;
  copts.token = token;
  auto client_or = Client::Connect(copts);
  if (!client_or.ok()) {
    *failure = client_or.status().ToString();
    return;
  }
  auto client = std::move(client_or).ValueOrDie();
  QueryRequest query = TenantQuery(dataset);
  query.measure = WireMeasure::kEuclid;
  auto euclid = client->Knn(query);
  query.measure = WireMeasure::kDust;
  auto dust = client->Knn(query);
  auto range = client->Range(query);
  query.measure = WireMeasure::kProud;
  auto sweep = client->MeasureSweep(query);
  query.measure = WireMeasure::kMunich;
  auto munich = client->Knn(query);
  for (const Status& s : {euclid.status(), dust.status(), range.status(),
                          sweep.status(), munich.status()}) {
    if (!s.ok()) {
      *failure = s.ToString();
      return;
    }
  }
  ExpectSameNeighbors(euclid.ValueOrDie().neighbors,
                      expected.euclid.neighbors);
  ExpectSameNeighbors(dust.ValueOrDie().neighbors, expected.dust.neighbors);
  EXPECT_EQ(range.ValueOrDie().indices, expected.range_dust.indices);
  EXPECT_EQ(sweep.ValueOrDie().values, expected.sweep_proud.values);
  ExpectSameNeighbors(munich.ValueOrDie().neighbors,
                      expected.munich.neighbors);
  // The per-request work accounting travels per shard.
  EXPECT_EQ(euclid.ValueOrDie().cost.candidates_total,
            expected.euclid.cost.candidates_total);
}

TEST(ServerShard, TwoTenantsBitwiseParityAcrossWidthsAndPoolPolicies) {
  const ts::Dataset exact_a = MakeExact(12, 32, 99);
  const ts::Dataset exact_b = MakeExact(9, 24, 4242);
  const BindDatasetRequest bind_a = MakeBind("a", exact_a, 3);
  const BindDatasetRequest bind_b = MakeBind("b", exact_b, 3);
  const TenantExpected expected_a = ComputeExpected(bind_a);
  const TenantExpected expected_b = ComputeExpected(bind_b);

  for (PoolPolicy policy : {PoolPolicy::kPerShard, PoolPolicy::kShared}) {
    for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                                std::size_t{8}}) {
      ServerOptions options;
      options.unix_socket_path = SocketPath(
          "shardparity" + std::to_string(threads) +
          (policy == PoolPolicy::kShared ? "s" : "p"));
      options.pool_policy = policy;
      options.service = MakeServiceOptions(threads);
      auto server_or = Server::Start(options);
      ASSERT_TRUE(server_or.ok()) << server_or.status().ToString();
      auto server = std::move(server_or).ValueOrDie();

      {
        Client::Options copts;
        copts.unix_socket_path = options.unix_socket_path;
        copts.token = 1000;
        auto binder = Client::Connect(copts);
        ASSERT_TRUE(binder.ok()) << binder.status().ToString();
        ASSERT_TRUE(binder.ValueOrDie()->Bind(bind_a).ok());
        ASSERT_TRUE(binder.ValueOrDie()->Bind(bind_b).ok());
        auto list = binder.ValueOrDie()->ListDatasets();
        ASSERT_TRUE(list.ok());
        EXPECT_EQ(list.ValueOrDie().names,
                  (std::vector<std::string>{"a", "b"}));
      }
      EXPECT_EQ(server->shard_count(), 3u);  // control + "a" + "b".

      // Two tenants pinned to different datasets, concurrently.
      std::string failure_a, failure_b;
      std::thread tenant_a([&] {
        RunTenant(options.unix_socket_path, 1, "a", expected_a, &failure_a);
      });
      std::thread tenant_b([&] {
        RunTenant(options.unix_socket_path, 2, "b", expected_b, &failure_b);
      });
      tenant_a.join();
      tenant_b.join();
      EXPECT_TRUE(failure_a.empty())
          << "tenant a, " << threads << " threads: " << failure_a;
      EXPECT_TRUE(failure_b.empty())
          << "tenant b, " << threads << " threads: " << failure_b;

      // Each tenant's work was dispatched by its own shard.
      EXPECT_GE(server->shard_stats("a").completed, 5u);
      EXPECT_GE(server->shard_stats("b").completed, 5u);
      server->Stop();
    }
  }
}

TEST(ServerShard, SharedPoolPolicyConstructsExactlyOnePool) {
  const ts::Dataset exact = MakeExact(8, 16, 5);
  const BindDatasetRequest bind_a = MakeBind("a", exact, 0);
  const BindDatasetRequest bind_b = MakeBind("b", exact, 0);
  QueryRequest query = TenantQuery("a");
  query.measure = WireMeasure::kDust;

  for (PoolPolicy policy : {PoolPolicy::kShared, PoolPolicy::kPerShard}) {
    ServerOptions options;
    options.unix_socket_path = SocketPath(
        policy == PoolPolicy::kShared ? "onepool" : "npools");
    options.pool_policy = policy;
    options.service = MakeServiceOptions(4);
    const std::size_t pools_before = exec::ThreadPool::TotalCreated();
    auto server_or = Server::Start(options);
    ASSERT_TRUE(server_or.ok()) << server_or.status().ToString();
    auto server = std::move(server_or).ValueOrDie();

    Client::Options copts;
    copts.unix_socket_path = options.unix_socket_path;
    copts.token = 3;
    auto client_or = Client::Connect(copts);
    ASSERT_TRUE(client_or.ok());
    auto client = std::move(client_or).ValueOrDie();
    ASSERT_TRUE(client->Bind(bind_a).ok());
    ASSERT_TRUE(client->Bind(bind_b).ok());
    query.dataset = "a";
    ASSERT_TRUE(client->Knn(query).ok());
    query.dataset = "b";
    ASSERT_TRUE(client->Knn(query).ok());
    server->Stop();

    const std::size_t pools = exec::ThreadPool::TotalCreated() - pools_before;
    if (policy == PoolPolicy::kShared) {
      // One pool for the whole server; the shard contexts borrow it and
      // never construct their own.
      EXPECT_EQ(pools, 1u);
      EXPECT_EQ(server->shard_service("a")->context().stats().pools_created,
                0u);
      EXPECT_EQ(server->shard_service("b")->context().stats().pools_created,
                0u);
    } else {
      // One lazily built pool per shard that actually ran a parallel query.
      EXPECT_EQ(pools, 2u);
      EXPECT_EQ(server->shard_service("a")->context().stats().pools_created,
                1u);
      EXPECT_EQ(server->shard_service("b")->context().stats().pools_created,
                1u);
    }
  }
}

TEST(ServerShard, StalledShardDoesNotBlockAnotherShardsProgress) {
  const ts::Dataset exact = MakeExact(8, 16, 6);
  const BindDatasetRequest bind_a = MakeBind("a", exact, 0);
  const BindDatasetRequest bind_b = MakeBind("b", exact, 0);

  ServerOptions options;
  options.unix_socket_path = SocketPath("stall");
  options.service = MakeServiceOptions(1);
  auto server_or = Server::Start(options);
  ASSERT_TRUE(server_or.ok()) << server_or.status().ToString();
  auto server = std::move(server_or).ValueOrDie();

  Client::Options copts;
  copts.unix_socket_path = options.unix_socket_path;
  copts.token = 11;
  auto setup_or = Client::Connect(copts);
  ASSERT_TRUE(setup_or.ok());
  ASSERT_TRUE(setup_or.ValueOrDie()->Bind(bind_a).ok());
  ASSERT_TRUE(setup_or.ValueOrDie()->Bind(bind_b).ok());

  // Stall shard "a"'s dispatcher with a shard-targeted delayed ping (the
  // sync client blocks on the pong, so it runs on its own thread).
  const std::uint64_t dispatched_before = server->shard_stats("a").dispatched;
  std::thread staller([&] {
    Client::Options sopts;
    sopts.unix_socket_path = options.unix_socket_path;
    sopts.token = 12;
    auto client_or = Client::Connect(sopts);
    ASSERT_TRUE(client_or.ok());
    EXPECT_TRUE(client_or.ValueOrDie()->Ping(1500, 0, "a").ok());
  });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (server->shard_stats("a").dispatched == dispatched_before) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "stall ping never dispatched";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const Server::ShardStats stalled = server->shard_stats("a");
  EXPECT_EQ(stalled.completed, stalled.dispatched - 1);

  // Shard "b" makes progress while "a" sleeps.
  Client::Options bopts;
  bopts.unix_socket_path = options.unix_socket_path;
  bopts.token = 13;
  auto b_or = Client::Connect(bopts);
  ASSERT_TRUE(b_or.ok());
  QueryRequest query = TenantQuery("b");
  query.measure = WireMeasure::kEuclid;
  for (int i = 0; i < 3; ++i) {
    auto knn = b_or.ValueOrDie()->Knn(query);
    ASSERT_TRUE(knn.ok()) << knn.status().ToString();
  }
  EXPECT_GE(server->shard_stats("b").completed, 3u);
  // Shard "a" is still inside its stall: nothing new completed there.
  EXPECT_EQ(server->shard_stats("a").completed, stalled.completed);

  staller.join();
  server->Stop();
}

TEST(ServerShard, GlobalAdmissionBudgetRejectsAcrossShards) {
  const ts::Dataset exact = MakeExact(6, 12, 8);
  const BindDatasetRequest bind_a = MakeBind("a", exact, 0);
  const BindDatasetRequest bind_b = MakeBind("b", exact, 0);

  ServerOptions options;
  options.unix_socket_path = SocketPath("globaladm");
  options.global_queue_depth = 1;
  options.retry_after_ms = 7;
  options.service = MakeServiceOptions(1);
  auto server_or = Server::Start(options);
  ASSERT_TRUE(server_or.ok()) << server_or.status().ToString();
  auto server = std::move(server_or).ValueOrDie();

  Client::Options copts;
  copts.unix_socket_path = options.unix_socket_path;
  copts.token = 21;
  auto setup_or = Client::Connect(copts);
  ASSERT_TRUE(setup_or.ok());
  ASSERT_TRUE(setup_or.ValueOrDie()->Bind(bind_a).ok());
  ASSERT_TRUE(setup_or.ValueOrDie()->Bind(bind_b).ok());

  // The binds above already count toward shard "a"'s admitted/dispatched
  // totals, so every wait below is relative to these baselines.
  const std::uint64_t admitted_before = server->shard_stats("a").admitted;
  const std::uint64_t dispatched_before = server->shard_stats("a").dispatched;

  // Occupy shard "a": one ping executing (stalling the dispatcher), one
  // queued behind it holding the single global admission slot.
  std::thread stall_a([&] {
    Client::Options sopts;
    sopts.unix_socket_path = options.unix_socket_path;
    sopts.token = 22;
    auto client_or = Client::Connect(sopts);
    ASSERT_TRUE(client_or.ok());
    EXPECT_TRUE(client_or.ValueOrDie()->Ping(1500, 1, "a").ok());
  });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (server->shard_stats("a").dispatched < dispatched_before + 1) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "stall ping never dispatched";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::thread queue_a([&] {
    Client::Options sopts;
    sopts.unix_socket_path = options.unix_socket_path;
    sopts.token = 23;
    auto client_or = Client::Connect(sopts);
    ASSERT_TRUE(client_or.ok());
    EXPECT_TRUE(client_or.ValueOrDie()->Ping(0, 2, "a").ok());
  });
  while (server->shard_stats("a").admitted < admitted_before + 2) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "second ping never admitted";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Shard "b" is completely idle, yet the global budget (1, held by the
  // request queued on "a") rejects admission — with the retry hint.
  Client::Options bopts;
  bopts.unix_socket_path = options.unix_socket_path;
  bopts.token = 24;
  auto b_or = Client::Connect(bopts);
  ASSERT_TRUE(b_or.ok());
  auto rejected = b_or.ValueOrDie()->Ping(0, 3, "b");
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(b_or.ValueOrDie()->last_error().code, WireError::kSaturated);
  EXPECT_EQ(b_or.ValueOrDie()->last_error().retry_after_ms, 7u);
  EXPECT_GE(server->shard_stats("b").rejected, 1u);

  // Saturation is soft: once the stall drains, the same request succeeds.
  stall_a.join();
  queue_a.join();
  auto retry = b_or.ValueOrDie()->Ping(0, 4, "b");
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(retry.ValueOrDie().echo, 4u);

  server->Stop();
}

}  // namespace
}  // namespace uts::server
