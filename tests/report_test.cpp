// Unit tests for the fixed-width table renderer (src/core/report).

#include <gtest/gtest.h>

#include <sstream>

#include "core/report.hpp"

namespace uts::core {
namespace {

TEST(TextTableTest, NumFormatting) {
  EXPECT_EQ(TextTable::Num(1.23456, 3), "1.235");
  EXPECT_EQ(TextTable::Num(2.0, 1), "2.0");
  EXPECT_EQ(TextTable::Num(-0.5, 2), "-0.50");
  EXPECT_EQ(TextTable::Num(3.0, 0), "3");
}

TEST(TextTableTest, NumWithCiFormatting) {
  EXPECT_EQ(TextTable::NumWithCi(0.85, 0.021, 2), "0.85 +/-0.02");
}

TEST(TextTableTest, ColumnsAreAligned) {
  TextTable table({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"longer-name", "22"});
  const std::string out = table.ToString();
  // Each data line has the value starting at the same column.
  std::istringstream lines(out);
  std::string header, sep, row1, row2;
  std::getline(lines, header);
  std::getline(lines, sep);
  std::getline(lines, row1);
  std::getline(lines, row2);
  EXPECT_EQ(row1.find('1'), row2.find('2'));
  EXPECT_EQ(sep.find_first_not_of('-'), std::string::npos);
}

TEST(TextTableTest, HeaderOnlyTable) {
  TextTable table({"a", "b"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("a  b"), std::string::npos);
  // Exactly two lines: header + separator.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
}

TEST(TextTableTest, NoTrailingWhitespace) {
  TextTable table({"col", "x"});
  table.AddRow({"short", "1"});
  table.AddRow({"a", "2"});
  std::istringstream lines(table.ToString());
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    EXPECT_NE(line.back(), ' ') << "line: '" << line << "'";
  }
}

TEST(TextTableTest, PrintWritesToStream) {
  TextTable table({"h"});
  table.AddRow({"v"});
  std::ostringstream os;
  table.Print(os);
  EXPECT_EQ(os.str(), table.ToString());
}

}  // namespace
}  // namespace uts::core
