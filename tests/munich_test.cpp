// Unit + property tests for MUNICH (src/measures/munich).
//
// The exact meet-in-the-middle estimator is validated against brute-force
// enumeration of every materialization on tiny inputs; Monte Carlo is
// validated against the exact answer; the interval bounds are validated by
// exhaustive materialization.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "distance/lp.hpp"
#include "measures/munich.hpp"
#include "prob/rng.hpp"
#include "uncertain/perturb.hpp"

namespace uts::measures {
namespace {

using uncertain::MultiSampleSeries;

MultiSampleSeries RandomMultiSample(std::size_t n, std::size_t s,
                                    std::uint64_t seed) {
  prob::Rng rng(seed);
  std::vector<std::vector<double>> samples(n);
  for (auto& point : samples) {
    point.resize(s);
    for (double& v : point) v = rng.Gaussian();
  }
  return MultiSampleSeries(std::move(samples));
}

/// Brute force: enumerate every materialization pair and count.
double BruteForceProbability(const MultiSampleSeries& x,
                             const MultiSampleSeries& y, double eps) {
  const std::size_t n = x.size();
  std::vector<std::size_t> xi(n, 0), yi(n, 0);
  std::uint64_t total = 0, hits = 0;

  // Odometer over x choices and y choices simultaneously: each timestamp
  // contributes an (x-sample, y-sample) pair index.
  std::vector<std::size_t> pair_idx(n, 0);
  std::vector<std::size_t> pair_count(n);
  for (std::size_t i = 0; i < n; ++i) {
    pair_count[i] = x.num_samples(i) * y.num_samples(i);
  }
  while (true) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t a = pair_idx[i] / y.num_samples(i);
      const std::size_t b = pair_idx[i] % y.num_samples(i);
      const double d = x.samples(i)[a] - y.samples(i)[b];
      sum += d * d;
    }
    ++total;
    if (std::sqrt(sum) <= eps) ++hits;

    // Advance the odometer.
    std::size_t pos = 0;
    while (pos < n && ++pair_idx[pos] == pair_count[pos]) {
      pair_idx[pos] = 0;
      ++pos;
    }
    if (pos == n) break;
  }
  return double(hits) / double(total);
}

TEST(MunichExactTest, MatchesBruteForceOnTinyInputs) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto x = RandomMultiSample(4, 3, seed);
    const auto y = RandomMultiSample(4, 3, seed + 50);
    for (double eps : {1.0, 2.0, 3.0, 4.5}) {
      auto exact = Munich::ExactMatchProbability(x, y, eps);
      ASSERT_TRUE(exact.ok()) << exact.status();
      EXPECT_NEAR(exact.ValueOrDie(), BruteForceProbability(x, y, eps), 1e-12)
          << "seed=" << seed << " eps=" << eps;
    }
  }
}

TEST(MunichExactTest, PaperConfigurationIsFeasible) {
  // Figure 4's setting: length 6, 5 samples per timestamp. 25^3 = 15625
  // sums per half — exactly countable.
  const auto x = RandomMultiSample(6, 5, 7);
  const auto y = RandomMultiSample(6, 5, 8);
  auto p = Munich::ExactMatchProbability(x, y, 3.0);
  ASSERT_TRUE(p.ok());
  EXPECT_GE(p.ValueOrDie(), 0.0);
  EXPECT_LE(p.ValueOrDie(), 1.0);
}

TEST(MunichExactTest, RefusesOversizedEnumeration) {
  const auto x = RandomMultiSample(40, 5, 9);
  const auto y = RandomMultiSample(40, 5, 10);
  auto p = Munich::ExactMatchProbability(x, y, 3.0, /*half_limit=*/1 << 16);
  EXPECT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kNotSupported);
}

TEST(MunichExactTest, ExtremeEpsilons) {
  const auto x = RandomMultiSample(5, 4, 11);
  const auto y = RandomMultiSample(5, 4, 12);
  EXPECT_DOUBLE_EQ(Munich::ExactMatchProbability(x, y, 0.0).ValueOrDie(), 0.0);
  EXPECT_DOUBLE_EQ(Munich::ExactMatchProbability(x, y, 1e6).ValueOrDie(), 1.0);
}

TEST(MunichExactTest, MonotoneInEpsilon) {
  const auto x = RandomMultiSample(6, 4, 13);
  const auto y = RandomMultiSample(6, 4, 14);
  double prev = 0.0;
  for (double eps = 0.0; eps <= 8.0; eps += 0.25) {
    const double p = Munich::ExactMatchProbability(x, y, eps).ValueOrDie();
    EXPECT_GE(p, prev - 1e-15);
    prev = p;
  }
}

TEST(MunichExactTest, ValidationErrors) {
  const auto x = RandomMultiSample(4, 3, 15);
  const auto y = RandomMultiSample(5, 3, 16);
  EXPECT_FALSE(Munich::ExactMatchProbability(x, y, 1.0).ok());
  MultiSampleSeries empty;
  EXPECT_FALSE(Munich::ExactMatchProbability(empty, empty, 1.0).ok());
  MultiSampleSeries holed(std::vector<std::vector<double>>{{1.0}, {}});
  MultiSampleSeries other(std::vector<std::vector<double>>{{1.0}, {2.0}});
  EXPECT_FALSE(Munich::ExactMatchProbability(holed, other, 1.0).ok());
}

TEST(MunichMonteCarloTest, ConvergesToExact) {
  const auto x = RandomMultiSample(6, 5, 17);
  const auto y = RandomMultiSample(6, 5, 18);
  const double eps = 3.0;
  const double exact = Munich::ExactMatchProbability(x, y, eps).ValueOrDie();
  const double mc =
      Munich::MonteCarloMatchProbability(x, y, eps, 200000, 1234);
  // Binomial standard error at n=200k is <= 0.0012; allow 4 sigma.
  EXPECT_NEAR(mc, exact, 0.005);
}

TEST(MunichMonteCarloTest, ConvergenceBoundOnPaperConfiguration) {
  // Figure 4's configuration (length n = 6, s = 5 samples/timestamp) is
  // exactly countable, so the Monte Carlo estimator can be held to its
  // binomial error bound: |mc(N) − exact| ≤ 4·sqrt(p(1−p)/N) at every
  // sample count, and the mean absolute error must shrink as N grows.
  const auto x = RandomMultiSample(6, 5, 80);
  const auto y = RandomMultiSample(6, 5, 81);
  const double eps = 3.0;
  const double exact = Munich::ExactMatchProbability(x, y, eps).ValueOrDie();
  ASSERT_GT(exact, 0.0);
  ASSERT_LT(exact, 1.0);
  const double spread = std::sqrt(exact * (1.0 - exact));
  const std::uint64_t seeds[] = {7, 8, 9};
  std::vector<double> mean_errs;
  for (std::size_t samples : {std::size_t{2000}, std::size_t{20000},
                              std::size_t{200000}}) {
    const double bound = 4.0 * spread / std::sqrt(double(samples));
    double total_err = 0.0;
    for (std::uint64_t seed : seeds) {
      const double mc =
          Munich::MonteCarloMatchProbability(x, y, eps, samples, seed);
      EXPECT_LE(std::fabs(mc - exact), bound)
          << "samples=" << samples << " seed=" << seed;
      total_err += std::fabs(mc - exact);
    }
    mean_errs.push_back(total_err / 3.0);
  }
  // 100× more samples must visibly shrink the mean error (the per-N bound
  // above already pins the O(1/sqrt(N)) rate; adjacent steps with only 3
  // seeds may tie by luck, so compare the extremes).
  EXPECT_LT(mean_errs.back(), mean_errs.front());
}

TEST(MunichMonteCarloTest, DeterministicPerSeed) {
  const auto x = RandomMultiSample(5, 4, 19);
  const auto y = RandomMultiSample(5, 4, 20);
  const double a = Munich::MonteCarloMatchProbability(x, y, 2.0, 5000, 42);
  const double b = Munich::MonteCarloMatchProbability(x, y, 2.0, 5000, 42);
  const double c = Munich::MonteCarloMatchProbability(x, y, 2.0, 5000, 43);
  EXPECT_DOUBLE_EQ(a, b);
  // Different seed gives (almost surely) a slightly different estimate.
  EXPECT_NE(a, c);
}

// ------------------------------------------------------------------ bounds

TEST(MunichBoundsTest, EveryMaterializationWithinBounds) {
  for (std::uint64_t seed = 30; seed < 34; ++seed) {
    const auto x = RandomMultiSample(4, 3, seed);
    const auto y = RandomMultiSample(4, 3, seed + 5);
    const DistanceBounds bounds = Munich::EuclideanBounds(x, y);

    // Enumerate materializations and check.
    std::vector<std::size_t> pair_idx(4, 0);
    std::vector<std::size_t> pair_count(4);
    for (std::size_t i = 0; i < 4; ++i) {
      pair_count[i] = x.num_samples(i) * y.num_samples(i);
    }
    while (true) {
      double sum = 0.0;
      for (std::size_t i = 0; i < 4; ++i) {
        const std::size_t a = pair_idx[i] / y.num_samples(i);
        const std::size_t b = pair_idx[i] % y.num_samples(i);
        const double d = x.samples(i)[a] - y.samples(i)[b];
        sum += d * d;
      }
      const double dist = std::sqrt(sum);
      EXPECT_GE(dist, bounds.lower - 1e-9);
      EXPECT_LE(dist, bounds.upper + 1e-9);
      std::size_t pos = 0;
      while (pos < 4 && ++pair_idx[pos] == pair_count[pos]) {
        pair_idx[pos] = 0;
        ++pos;
      }
      if (pos == 4) break;
    }
  }
}

TEST(MunichBoundsTest, OverlappingIntervalsGiveZeroLower) {
  MultiSampleSeries x({{0.0, 2.0}});
  MultiSampleSeries y({{1.0, 3.0}});
  const DistanceBounds bounds = Munich::EuclideanBounds(x, y);
  EXPECT_DOUBLE_EQ(bounds.lower, 0.0);
  EXPECT_DOUBLE_EQ(bounds.upper, 3.0);
}

TEST(MunichBoundsTest, DisjointIntervalsGivePositiveLower) {
  MultiSampleSeries x({{0.0, 1.0}});
  MultiSampleSeries y({{5.0, 6.0}});
  const DistanceBounds bounds = Munich::EuclideanBounds(x, y);
  EXPECT_DOUBLE_EQ(bounds.lower, 4.0);  // gap between 1 and 5
  EXPECT_DOUBLE_EQ(bounds.upper, 6.0);  // |0 - 6|
}

TEST(MunichBoundsTest, DtwBoundsContainSampledDtw) {
  prob::Rng rng(55);
  const auto x = RandomMultiSample(8, 3, 35);
  const auto y = RandomMultiSample(8, 3, 36);
  const DistanceBounds bounds = Munich::DtwBounds(x, y);
  std::vector<double> xs(8), ys(8);
  for (int trial = 0; trial < 300; ++trial) {
    for (std::size_t i = 0; i < 8; ++i) {
      xs[i] = x.samples(i)[rng.UniformInt(3)];
      ys[i] = y.samples(i)[rng.UniformInt(3)];
    }
    const double d = distance::Dtw(xs, ys);
    EXPECT_GE(d, bounds.lower - 1e-9);
    EXPECT_LE(d, bounds.upper + 1e-9);
  }
}

// --------------------------------------------------------------- matching

TEST(MunichMatcherTest, BoundsFastPathAgreesWithExact) {
  MunichOptions with_bounds;
  with_bounds.estimator = MunichOptions::Estimator::kExact;
  MunichOptions no_bounds = with_bounds;
  no_bounds.use_bounds_filter = false;
  const Munich a(with_bounds), b(no_bounds);

  for (std::uint64_t seed = 60; seed < 66; ++seed) {
    const auto x = RandomMultiSample(5, 3, seed);
    const auto y = RandomMultiSample(5, 3, seed + 9);
    for (double eps : {0.5, 2.0, 4.0, 8.0}) {
      const double pa = a.MatchProbability(x, y, eps).ValueOrDie();
      const double pb = b.MatchProbability(x, y, eps).ValueOrDie();
      // The fast path may snap interior probabilities to {0,1} only when
      // they truly are 0 or 1; otherwise values agree exactly.
      EXPECT_DOUBLE_EQ(pa, pb);
    }
  }
}

TEST(MunichMatcherTest, TauDecision) {
  MunichOptions options;
  options.estimator = MunichOptions::Estimator::kExact;
  options.tau = 0.5;
  const Munich munich(options);
  const auto x = RandomMultiSample(5, 4, 70);
  const auto y = RandomMultiSample(5, 4, 71);
  for (double eps = 0.5; eps < 8.0; eps += 0.5) {
    const bool decision = munich.Matches(x, y, eps).ValueOrDie();
    const double p = munich.MatchProbability(x, y, eps).ValueOrDie();
    EXPECT_EQ(decision, p >= 0.5);
  }
}

TEST(MunichMatcherTest, AutoFallsBackToMonteCarlo) {
  MunichOptions options;
  options.estimator = MunichOptions::Estimator::kAuto;
  options.exact_half_limit = 1 << 10;  // force fallback
  options.mc_samples = 20000;
  options.use_bounds_filter = false;
  const Munich munich(options);
  const auto x = RandomMultiSample(20, 5, 72);
  const auto y = RandomMultiSample(20, 5, 73);
  auto p = munich.MatchProbability(x, y, 6.0, /*seed=*/5);
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_GE(p.ValueOrDie(), 0.0);
  EXPECT_LE(p.ValueOrDie(), 1.0);
}

TEST(MunichMatcherTest, MaterializationCountGrowsExponentially) {
  const auto x = RandomMultiSample(6, 5, 74);
  const auto y = RandomMultiSample(6, 5, 75);
  // 5^6 * 5^6 = 2.44e8.
  EXPECT_NEAR(Munich::MaterializationCount(x, y), std::pow(5.0, 12.0), 1.0);
}

TEST(MunichDtwTest, MonteCarloDtwProbabilityBounded) {
  const auto x = RandomMultiSample(10, 3, 76);
  const auto y = RandomMultiSample(10, 3, 77);
  const double p =
      Munich::MonteCarloDtwMatchProbability(x, y, 3.0, 2000, 99);
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
  // DTW <= Euclidean, so DTW match probability dominates Euclidean's.
  const double pe = Munich::MonteCarloMatchProbability(x, y, 3.0, 2000, 99);
  EXPECT_GE(p, pe - 0.05);
}

}  // namespace
}  // namespace uts::measures
