// Parity suite for the parallel query engine (src/query/engine):
// k-NN / RQ / PRQ / motif results must be bit-identical — indices AND
// distances — to the sequential reference at 1, 2 and 8 threads, including
// tie-heavy inputs. The references below are verbatim ports of the seed's
// sequential implementations, so the engine is also checked against the
// pre-refactor semantics, not just against itself.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/experiment.hpp"
#include "core/matchers.hpp"
#include "distance/dtw.hpp"
#include "distance/lp.hpp"
#include "prob/rng.hpp"
#include "query/engine.hpp"
#include "query/search.hpp"
#include "uncertain/error_spec.hpp"

namespace uts::query {
namespace {

ts::Dataset GaussianDataset(std::size_t n, std::size_t len,
                            std::uint64_t seed) {
  prob::Rng rng(seed);
  ts::Dataset d("gauss");
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> values(len);
    for (double& v : values) v = rng.Gaussian();
    d.Add(ts::TimeSeries(std::move(values), int(i % 3)));
  }
  return d;
}

// Values on a tiny integer grid: squared distances collide constantly, so
// every tie-break path in selection and merging is exercised.
ts::Dataset TieHeavyDataset(std::size_t n, std::size_t len,
                            std::uint64_t seed) {
  prob::Rng rng(seed);
  ts::Dataset d("ties");
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> values(len);
    for (double& v : values) v = static_cast<double>(rng.Next() % 2);
    d.Add(ts::TimeSeries(std::move(values), int(i % 2)));
  }
  return d;
}

// --- Verbatim sequential references (the seed's implementations) ------------

std::vector<Neighbor> ReferenceKNearest(const ts::Dataset& d,
                                        std::size_t query, std::size_t k) {
  std::vector<Neighbor> all;
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (i == query) continue;
    all.push_back(
        {i, distance::Euclidean(d[query].values(), d[i].values())});
  }
  const std::size_t take = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<long>(take),
                    all.end(), [](const Neighbor& a, const Neighbor& b) {
                      if (a.distance != b.distance) {
                        return a.distance < b.distance;
                      }
                      return a.index < b.index;
                    });
  all.resize(take);
  return all;
}

std::vector<std::size_t> ReferenceRangeSearch(const ts::Dataset& d,
                                              std::size_t query,
                                              double epsilon) {
  std::vector<std::size_t> matches;
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (i == query) continue;
    if (distance::Euclidean(d[query].values(), d[i].values()) <= epsilon) {
      matches.push_back(i);
    }
  }
  return matches;
}

std::vector<MotifPair> ReferenceTopKMotifs(const ts::Dataset& d,
                                           std::size_t k) {
  std::vector<MotifPair> pairs;
  for (std::size_t a = 0; a < d.size(); ++a) {
    for (std::size_t b = a + 1; b < d.size(); ++b) {
      pairs.push_back(
          {a, b, distance::Euclidean(d[a].values(), d[b].values())});
    }
  }
  const std::size_t take = std::min(k, pairs.size());
  std::partial_sort(pairs.begin(), pairs.begin() + static_cast<long>(take),
                    pairs.end(), [](const MotifPair& x, const MotifPair& y) {
                      if (x.distance != y.distance) {
                        return x.distance < y.distance;
                      }
                      if (x.a != y.a) return x.a < y.a;
                      return x.b < y.b;
                    });
  pairs.resize(take);
  return pairs;
}

void ExpectNeighborsIdentical(const std::vector<Neighbor>& got,
                              const std::vector<Neighbor>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].index, want[i].index) << "rank " << i;
    EXPECT_EQ(got[i].distance, want[i].distance) << "rank " << i;  // bitwise
  }
}

void ExpectMotifsIdentical(const std::vector<MotifPair>& got,
                           const std::vector<MotifPair>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].a, want[i].a) << "rank " << i;
    EXPECT_EQ(got[i].b, want[i].b) << "rank " << i;
    EXPECT_EQ(got[i].distance, want[i].distance) << "rank " << i;  // bitwise
  }
}

constexpr std::size_t kThreadCounts[] = {1, 2, 8};

EngineOptions SmallChunkOptions(std::size_t threads) {
  EngineOptions options;
  options.threads = threads;
  options.grain = 16;  // force multiple chunks even on small datasets
  // This suite pins the engine bit-identical to the sequential scalar
  // references, which is a property of the scalar kernel path; SIMD-vs-
  // scalar agreement (tolerance for Euclidean/PROUD, bitwise for DUST) is
  // simd_parity_test's job.
  options.simd = distance::SimdMode::kForceScalar;
  return options;
}

// --- k-NN --------------------------------------------------------------------

TEST(EngineParityTest, KNearestMatchesReferenceAtEveryThreadCount) {
  for (std::uint64_t seed : {11u, 12u}) {
    const ts::Dataset gauss = GaussianDataset(60, 32, seed);
    const ts::Dataset ties = TieHeavyDataset(60, 8, seed);
    for (const ts::Dataset* d : {&gauss, &ties}) {
      for (std::size_t threads : kThreadCounts) {
        DistanceMatrixEngine engine(*d, SmallChunkOptions(threads));
        ASSERT_TRUE(engine.batched());
        for (std::size_t q : {std::size_t{0}, std::size_t{7},
                              std::size_t{59}}) {
          ExpectNeighborsIdentical(engine.KNearestEuclidean(q, 10),
                                   ReferenceKNearest(*d, q, 10));
        }
      }
    }
  }
}

TEST(EngineParityTest, AllKNearestMatchesPerQueryResults) {
  const ts::Dataset d = TieHeavyDataset(50, 8, 3);
  for (std::size_t threads : kThreadCounts) {
    DistanceMatrixEngine engine(d, SmallChunkOptions(threads));
    const auto all = engine.AllKNearestEuclidean(5);
    ASSERT_EQ(all.size(), d.size());
    for (std::size_t q = 0; q < d.size(); ++q) {
      ExpectNeighborsIdentical(all[q], ReferenceKNearest(d, q, 5));
    }
  }
}

TEST(EngineParityTest, AllKNearestHonorsQueryPrefixCap) {
  const ts::Dataset d = GaussianDataset(40, 16, 4);
  DistanceMatrixEngine engine(d, SmallChunkOptions(8));
  const auto all = engine.AllKNearestEuclidean(3, 12);
  ASSERT_EQ(all.size(), 12u);
  for (std::size_t q = 0; q < all.size(); ++q) {
    ExpectNeighborsIdentical(all[q], ReferenceKNearest(d, q, 3));
  }
}

TEST(EngineParityTest, KNearestEdgeCases) {
  const ts::Dataset d = GaussianDataset(10, 8, 5);
  for (std::size_t threads : kThreadCounts) {
    DistanceMatrixEngine engine(d, SmallChunkOptions(threads));
    EXPECT_TRUE(engine.KNearestEuclidean(0, 0).empty());
    // k exceeding the candidate count clamps, like the reference.
    ExpectNeighborsIdentical(engine.KNearestEuclidean(3, 100),
                             ReferenceKNearest(d, 3, 100));
  }
}

// --- Range queries -----------------------------------------------------------

TEST(EngineParityTest, RangeSearchMatchesReferenceIncludingExactBoundary) {
  const ts::Dataset gauss = GaussianDataset(60, 32, 21);
  const ts::Dataset ties = TieHeavyDataset(60, 8, 22);
  for (const ts::Dataset* d : {&gauss, &ties}) {
    for (std::size_t threads : kThreadCounts) {
      DistanceMatrixEngine engine(*d, SmallChunkOptions(threads));
      for (std::size_t q : {std::size_t{0}, std::size_t{31}}) {
        // epsilon equal to an exact attained distance makes the <= boundary
        // decisive; on the tie-heavy grid many candidates sit exactly on it.
        const double epsilon =
            distance::Euclidean((*d)[q].values(), (*d)[(q + 5) % 60].values());
        const auto got = engine.RangeSearchEuclidean(q, epsilon);
        const auto want = ReferenceRangeSearch(*d, q, epsilon);
        EXPECT_EQ(got, want);
      }
    }
  }
}

// --- Probabilistic range queries --------------------------------------------

TEST(EngineParityTest, ProbabilisticRangeSearchMatchesSequentialShim) {
  // A pure, thread-safe match-probability stub with exact tau collisions.
  const auto probability_of = [](std::size_t i) {
    return static_cast<double>((i * 2654435761u) % 97u) / 96.0;
  };
  const std::size_t n = 200;
  const double tau = probability_of(7);  // attained exactly by several items
  const auto want = ProbabilisticRangeSearch(n, 3, tau, probability_of);
  const ts::Dataset d = GaussianDataset(8, 4, 9);  // engine host dataset
  for (std::size_t threads : kThreadCounts) {
    DistanceMatrixEngine engine(d, SmallChunkOptions(threads));
    EXPECT_EQ(engine.ProbabilisticRangeSearch(n, 3, tau, probability_of),
              want);
  }
}

// --- Motifs ------------------------------------------------------------------

TEST(EngineParityTest, TopKMotifsMatchesReferenceAtEveryThreadCount) {
  const ts::Dataset gauss = GaussianDataset(40, 16, 31);
  const ts::Dataset ties = TieHeavyDataset(40, 8, 32);
  for (const ts::Dataset* d : {&gauss, &ties}) {
    const auto want = ReferenceTopKMotifs(*d, 15);
    for (std::size_t threads : kThreadCounts) {
      DistanceMatrixEngine engine(*d, SmallChunkOptions(threads));
      ExpectMotifsIdentical(engine.TopKMotifsEuclidean(15), want);
    }
  }
}

TEST(EngineParityTest, TopKMotifsEdgeCases) {
  const ts::Dataset d = GaussianDataset(12, 8, 33);
  for (std::size_t threads : kThreadCounts) {
    DistanceMatrixEngine engine(d, SmallChunkOptions(threads));
    EXPECT_TRUE(engine.TopKMotifsEuclidean(0).empty());
    // k exceeding the pair count returns all pairs, sorted.
    ExpectMotifsIdentical(engine.TopKMotifsEuclidean(1000),
                          ReferenceTopKMotifs(d, 1000));
  }
  // Degenerate collections: no pairs to rank.
  EXPECT_TRUE(TopKMotifs(0, 5, [](std::size_t, std::size_t) { return 0.0; })
                  .empty());
  EXPECT_TRUE(TopKMotifs(1, 5, [](std::size_t, std::size_t) { return 0.0; })
                  .empty());
}

TEST(EngineParityTest, SequentialShimsMatchEngine) {
  // The free functions are documented as the sequential reference path.
  const ts::Dataset d = TieHeavyDataset(30, 8, 41);
  ExpectNeighborsIdentical(KNearestEuclidean(d, 4, 6),
                           ReferenceKNearest(d, 4, 6));
  ExpectMotifsIdentical(TopKMotifsEuclidean(d, 10),
                        ReferenceTopKMotifs(d, 10));
  const double epsilon =
      distance::Euclidean(d[2].values(), d[17].values());
  EXPECT_EQ(RangeSearchEuclidean(d, 2, epsilon),
            ReferenceRangeSearch(d, 2, epsilon));
}

// --- Generic callback path (exact-DTW ground truth) -------------------------

TEST(EngineParityTest, CallbackKNearestMatchesFreeFunctionUnderDtw) {
  const ts::Dataset d = GaussianDataset(24, 12, 51);
  distance::DtwOptions dtw_options;
  for (std::size_t q : {std::size_t{0}, std::size_t{13}}) {
    const auto distance_to = [&](std::size_t i) {
      return distance::Dtw(d[q].values(), d[i].values(), dtw_options);
    };
    const auto want = KNearest(d.size(), q, 5, distance_to);
    for (std::size_t threads : kThreadCounts) {
      DistanceMatrixEngine engine(d, SmallChunkOptions(threads));
      ExpectNeighborsIdentical(engine.KNearest(d.size(), q, 5, distance_to),
                               want);
    }
  }
}

// --- Fallback & degenerate datasets -----------------------------------------

TEST(EngineParityTest, NonUniformLengthFallsBackToCallbackPath) {
  ts::Dataset d("ragged");
  d.Add(ts::TimeSeries({1.0, 2.0, 3.0}));
  d.Add(ts::TimeSeries({1.0, 2.0}));
  d.Add(ts::TimeSeries({0.0, 0.0, 0.0, 0.0}));
  DistanceMatrixEngine engine(d, SmallChunkOptions(8));
  EXPECT_FALSE(engine.batched());
  // Length-aware callback queries still run (and in parallel).
  const auto distance_to = [&](std::size_t i) {
    return std::fabs(static_cast<double>(i) - 1.0);
  };
  const auto want = KNearest(d.size(), 1, 2, distance_to);
  ExpectNeighborsIdentical(engine.KNearest(d.size(), 1, 2, distance_to),
                           want);
}

TEST(EngineParityTest, EngineSnapshotSurvivesDatasetMutation) {
  // The engine co-owns the SoA snapshot taken at construction: mutating
  // (and thereby re-packing) the dataset afterwards must not invalidate a
  // live engine, which keeps answering from its snapshot.
  ts::Dataset d = GaussianDataset(20, 8, 91);
  const auto want = ReferenceKNearest(d, 2, 4);
  DistanceMatrixEngine engine(d, SmallChunkOptions(2));
  d[0].mutable_values()[0] += 100.0;  // drops the dataset's packed cache
  ExpectNeighborsIdentical(engine.KNearestEuclidean(2, 4), want);
}

TEST(EngineParityTest, EmptyDataset) {
  const ts::Dataset d("empty");
  DistanceMatrixEngine engine(d, SmallChunkOptions(8));
  EXPECT_FALSE(engine.batched());
  EXPECT_TRUE(engine.AllKNearestEuclidean(5).empty());
  EXPECT_TRUE(engine.TopKMotifsEuclidean(5).empty());
}

// --- End-to-end: the evaluation runner --------------------------------------

TEST(EngineParityTest, SimilarityMatchingIsThreadCountInvariant) {
  const ts::Dataset d = GaussianDataset(40, 24, 61).ZNormalizedCopy();
  const auto spec =
      uncertain::ErrorSpec::Constant(prob::ErrorKind::kNormal, 0.5);

  auto run_with = [&](std::size_t threads) {
    core::EuclideanMatcher euclid;
    core::Matcher* matchers[] = {&euclid};
    core::RunOptions options;
    options.ground_truth_k = 5;
    options.max_queries = 15;
    options.seed = 77;
    options.threads = threads;
    options.measure_time = false;
    auto run = core::RunSimilarityMatching(d, spec, matchers, options);
    EXPECT_TRUE(run.ok()) << run.status();
    return std::move(run).ValueOrDie();
  };

  const auto reference = run_with(1);
  for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    const auto got = run_with(threads);
    ASSERT_EQ(got.size(), reference.size());
    for (std::size_t m = 0; m < got.size(); ++m) {
      EXPECT_EQ(got[m].per_query_f1, reference[m].per_query_f1);
      EXPECT_EQ(got[m].per_query_precision,
                reference[m].per_query_precision);
      EXPECT_EQ(got[m].per_query_recall, reference[m].per_query_recall);
    }
  }
}

TEST(EngineParityTest, DtwGroundTruthIsThreadCountInvariant) {
  const ts::Dataset d = GaussianDataset(20, 12, 71).ZNormalizedCopy();
  const auto spec =
      uncertain::ErrorSpec::Constant(prob::ErrorKind::kNormal, 0.4);

  auto run_with = [&](std::size_t threads) {
    core::EuclideanMatcher euclid;
    core::Matcher* matchers[] = {&euclid};
    core::RunOptions options;
    options.ground_truth_k = 4;
    options.max_queries = 8;
    options.seed = 78;
    options.threads = threads;
    options.measure_time = false;
    options.dtw_ground_truth = true;
    options.dtw_ground_truth_band = 3;
    auto run = core::RunSimilarityMatching(d, spec, matchers, options);
    EXPECT_TRUE(run.ok()) << run.status();
    return std::move(run).ValueOrDie();
  };

  const auto reference = run_with(1);
  for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    const auto got = run_with(threads);
    ASSERT_EQ(got.size(), reference.size());
    EXPECT_EQ(got[0].per_query_f1, reference[0].per_query_f1);
  }
}

}  // namespace
}  // namespace uts::query
