// Lifecycle + cross-matcher reuse suite for the run-wide shared engine
// context (src/query/engine_context):
//
//  * resource discipline — a full multi-matcher evaluation packs the pdf
//    dataset into SoA exactly once, builds exactly one certain engine and
//    constructs exactly one thread pool (none at threads == 1), asserted
//    through EngineContext::Stats and the process-wide
//    exec::ThreadPool::TotalCreated() counter;
//  * cross-matcher reuse parity — PROUD, DUST and MUNICH served by one
//    shared engine produce bit-identical sweep / PRQ / k-NN outputs to
//    fresh per-matcher engines, and bit-identical evaluation scores to
//    solo per-matcher runs, at 1, 2 and 8 threads;
//  * lazy caches — τ-sweep style rebinds to bit-identical data keep the
//    packed engines; incompatible measure configurations are declined and
//    fall back to the sequential scalar path;
//  * the unbound-matcher regression — Retrieve / Matches /
//    CalibrationDistance on a never-bound matcher return a Status instead
//    of dereferencing null state.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstddef>
#include <optional>
#include <vector>

#include "core/experiment.hpp"
#include "core/matchers.hpp"
#include "exec/thread_pool.hpp"
#include "prob/rng.hpp"
#include "query/engine_context.hpp"
#include "query/uncertain_engine.hpp"
#include "server/frame.hpp"
#include "server/session.hpp"
#include "server/wire.hpp"
#include "uncertain/error_spec.hpp"
#include "uncertain/perturb.hpp"

namespace uts::query {
namespace {

using prob::ErrorKind;

constexpr std::size_t kThreadCounts[] = {1, 2, 8};

ts::Dataset MakeExact(std::size_t n, std::size_t len, std::uint64_t seed) {
  prob::Rng rng(seed);
  ts::Dataset d("ctx-exact");
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> values(len);
    for (double& v : values) v = rng.Gaussian();
    d.Add(ts::TimeSeries(std::move(values), static_cast<int>(i % 2)));
  }
  return d.ZNormalizedCopy();
}

core::RunOptions QuickRunOptions(std::size_t threads) {
  core::RunOptions options;
  options.ground_truth_k = 4;
  options.max_queries = 6;
  options.seed = 77;
  options.threads = threads;
  options.munich_samples_per_point = 3;
  options.measure_time = false;
  return options;
}

/// The paper's uncertain trio with a cheap MUNICH estimator.
struct Trio {
  core::ProudMatcher proud{0.5};
  core::DustMatcher dust;
  core::MunichMatcher munich;

  Trio() : munich(MakeMunichOptions()) {}

  static measures::MunichOptions MakeMunichOptions() {
    measures::MunichOptions options;
    options.mc_samples = 300;
    return options;
  }

  std::vector<core::Matcher*> All() { return {&proud, &dust, &munich}; }
};

// --- Resource discipline -----------------------------------------------------

TEST(EngineContextTest, OnePoolOnePackPerMultiMatcherEvaluation) {
  const ts::Dataset exact = MakeExact(24, 8, 5);
  const auto spec = uncertain::ErrorSpec::Constant(ErrorKind::kNormal, 0.5);

  EngineContextOptions context_options;
  context_options.threads = 8;
  EngineContext engines(context_options);

  Trio trio;
  auto matchers = trio.All();
  core::RunOptions options = QuickRunOptions(8);
  options.engine_context = &engines;

  const std::size_t pools_before = exec::ThreadPool::TotalCreated();
  auto run = core::RunSimilarityMatching(exact, spec, matchers, options);
  ASSERT_TRUE(run.ok()) << run.status();
  const std::size_t pools_after = exec::ThreadPool::TotalCreated();

  // One pool for the whole evaluation — ground truth, calibration and all
  // three matchers' sweeps — and one SoA pack per dataset.
  EXPECT_EQ(pools_after - pools_before, 1u);
  EXPECT_EQ(engines.stats().pools_created, 1u);
  EXPECT_EQ(engines.stats().pdf_packs, 1u);
  EXPECT_EQ(engines.stats().certain_packs, 1u);
  EXPECT_EQ(engines.stats().data_binds, 1u);
  EXPECT_EQ(engines.stats().sample_attaches, 1u);
  EXPECT_EQ(engines.stats().acquires_served, 3u);
  EXPECT_EQ(engines.stats().acquires_declined, 0u);
}

TEST(EngineContextTest, SequentialEvaluationCreatesNoPool) {
  const ts::Dataset exact = MakeExact(20, 6, 6);
  const auto spec = uncertain::ErrorSpec::Constant(ErrorKind::kNormal, 0.4);

  EngineContext engines;  // threads = 1
  Trio trio;
  auto matchers = trio.All();
  core::RunOptions options = QuickRunOptions(1);
  options.engine_context = &engines;

  const std::size_t pools_before = exec::ThreadPool::TotalCreated();
  auto run = core::RunSimilarityMatching(exact, spec, matchers, options);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(exec::ThreadPool::TotalCreated() - pools_before, 0u);
  EXPECT_EQ(engines.stats().pools_created, 0u);
  EXPECT_EQ(engines.stats().pdf_packs, 1u);
}

TEST(EngineContextTest, TauSweepRebindKeepsEnginesAndCaches) {
  const ts::Dataset exact = MakeExact(24, 8, 7);
  const auto spec = uncertain::ErrorSpec::Constant(ErrorKind::kUniform, 0.5);

  EngineContextOptions context_options;
  context_options.threads = 2;
  EngineContext engines(context_options);

  Trio trio;
  auto matchers = trio.All();
  core::RunOptions options = QuickRunOptions(2);
  options.engine_context = &engines;

  // A τ sweep re-runs the whole evaluation per grid point: same seed, same
  // spec — bit-identical perturbed data every time.
  for (double tau : {0.3, 0.5, 0.8}) {
    trio.proud.set_tau(tau);
    trio.munich.set_tau(tau);
    auto run = core::RunSimilarityMatching(exact, spec, matchers, options);
    ASSERT_TRUE(run.ok()) << run.status();
  }

  EXPECT_EQ(engines.stats().pdf_packs, 1u);
  EXPECT_EQ(engines.stats().certain_packs, 1u);
  EXPECT_EQ(engines.stats().pools_created, 1u);
  EXPECT_EQ(engines.stats().data_binds, 1u);
  EXPECT_EQ(engines.stats().data_rebind_hits, 2u);
  EXPECT_EQ(engines.stats().certain_reuses, 2u);
  EXPECT_EQ(engines.stats().sample_attaches, 1u);
  // The uniform-error DUST tables were numerically integrated exactly once.
  EXPECT_EQ(engines.stats().dust_table_builds, 1u);

  // Different data (new seed) repacks — but the DUST table cache persists
  // (tables depend on the error models, not the observations).
  options.seed = 1234;
  auto run = core::RunSimilarityMatching(exact, spec, matchers, options);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(engines.stats().data_binds, 2u);
  EXPECT_EQ(engines.stats().pdf_packs, 2u);
  EXPECT_EQ(engines.stats().dust_table_builds, 1u);
}

// --- Cross-matcher reuse parity ----------------------------------------------

TEST(EngineContextTest, SharedContextMatchesSoloRunsBitwiseAtEveryThreads) {
  const ts::Dataset exact = MakeExact(24, 8, 9);
  const auto spec = uncertain::ErrorSpec::Constant(ErrorKind::kNormal, 0.6);

  // Reference: each matcher evaluated alone, sequentially, with a private
  // per-run context (the fresh-engine-per-matcher baseline).
  auto solo = [&](core::Matcher& matcher) {
    core::Matcher* matchers[] = {&matcher};
    auto run = core::RunSimilarityMatching(exact, spec, matchers,
                                           QuickRunOptions(1));
    EXPECT_TRUE(run.ok()) << run.status();
    return std::move(run).ValueOrDie().front();
  };
  Trio reference_trio;
  const core::MatcherResult want_proud = solo(reference_trio.proud);
  const core::MatcherResult want_dust = solo(reference_trio.dust);
  const core::MatcherResult want_munich = solo(reference_trio.munich);
  const core::MatcherResult* want[] = {&want_proud, &want_dust, &want_munich};

  for (std::size_t threads : kThreadCounts) {
    EngineContextOptions context_options;
    context_options.threads = threads;
    EngineContext engines(context_options);

    Trio trio;
    auto matchers = trio.All();
    core::RunOptions options = QuickRunOptions(threads);
    options.engine_context = &engines;
    auto run = core::RunSimilarityMatching(exact, spec, matchers, options);
    ASSERT_TRUE(run.ok()) << run.status();
    const auto& got = run.ValueOrDie();
    ASSERT_EQ(got.size(), 3u);
    for (std::size_t m = 0; m < got.size(); ++m) {
      EXPECT_EQ(got[m].per_query_f1, want[m]->per_query_f1)
          << got[m].name << " threads=" << threads;
      EXPECT_EQ(got[m].per_query_precision, want[m]->per_query_precision)
          << got[m].name << " threads=" << threads;
      EXPECT_EQ(got[m].per_query_recall, want[m]->per_query_recall)
          << got[m].name << " threads=" << threads;
    }
    // All three matchers were served by the one shared engine.
    EXPECT_EQ(engines.stats().pdf_packs, 1u);
    EXPECT_EQ(engines.stats().acquires_served, 3u);
  }
}

TEST(EngineContextTest, SharedEngineQueriesMatchFreshEnginesBitwise) {
  // Engine-level acceptance: sweep, PRQ and k-NN outputs of the one shared
  // engine serving PROUD, then DUST, then MUNICH are bit-identical to
  // fresh per-measure engines, at 1, 2 and 8 threads. Mixed normal/uniform
  // errors exercise the table-lookup DUST path.
  const ts::Dataset exact = MakeExact(20, 6, 11);
  const auto spec = uncertain::ErrorSpec::Constant(ErrorKind::kUniform, 0.5);
  const std::uint64_t seed = 99;
  const double proud_sigma = 0.5;
  uncertain::UncertainDataset pdf =
      uncertain::PerturbDataset(exact, spec, seed);
  uncertain::MultiSampleDataset samples = uncertain::PerturbDatasetMultiSample(
      exact, spec, 3, prob::DeriveSeed(seed, 0xface));
  const double epsilon = 2.0;
  const double tau = 0.5;

  for (std::size_t threads : kThreadCounts) {
    // Fresh per-measure engines (the pre-context binding pattern).
    UncertainEngineOptions fresh_options;
    fresh_options.threads = threads;
    fresh_options.seed = seed;
    fresh_options.proud_sigma = proud_sigma;
    fresh_options.munich = Trio::MakeMunichOptions();
    auto fresh_dust = UncertainEngine::Create(pdf, fresh_options);
    ASSERT_TRUE(fresh_dust.ok());
    ASSERT_TRUE(fresh_dust.ValueOrDie()->BuildDustTables().ok());
    auto fresh_proud = UncertainEngine::Create(pdf, fresh_options);
    ASSERT_TRUE(fresh_proud.ok());
    auto fresh_munich = UncertainEngine::Create(pdf, fresh_options);
    ASSERT_TRUE(fresh_munich.ok());
    ASSERT_TRUE(fresh_munich.ValueOrDie()->AttachSamples(samples).ok());

    // The shared engine, acquired PROUD → DUST → MUNICH.
    EngineContextOptions context_options;
    context_options.threads = threads;
    EngineContext engines(context_options);
    ASSERT_TRUE(engines.BindData(pdf, samples, seed, proud_sigma).ok());
    UncertainEngine* shared = engines.AcquireProud(proud_sigma);
    ASSERT_NE(shared, nullptr);
    ASSERT_EQ(engines.AcquireDust(measures::DustOptions{}), shared);
    ASSERT_EQ(engines.AcquireMunich(Trio::MakeMunichOptions()), shared);
    EXPECT_EQ(engines.stats().pdf_packs, 1u);

    for (std::size_t q : {std::size_t{0}, std::size_t{7}}) {
      // DUST: dense sweep + RQ + k-NN.
      const auto want_dust_sweep =
          fresh_dust.ValueOrDie()->DustDistances(q).ValueOrDie();
      EXPECT_EQ(shared->DustDistances(q).ValueOrDie(), want_dust_sweep)
          << "threads=" << threads;
      EXPECT_EQ(shared->RangeSearchDust(q, epsilon).ValueOrDie(),
                fresh_dust.ValueOrDie()->RangeSearchDust(q, epsilon)
                    .ValueOrDie());
      const auto want_knn =
          fresh_dust.ValueOrDie()->KNearestDust(q, 5).ValueOrDie();
      const auto got_knn = shared->KNearestDust(q, 5).ValueOrDie();
      ASSERT_EQ(got_knn.size(), want_knn.size());
      for (std::size_t i = 0; i < got_knn.size(); ++i) {
        EXPECT_EQ(got_knn[i].index, want_knn[i].index);
        EXPECT_EQ(got_knn[i].distance, want_knn[i].distance);
      }

      // PROUD: dense sweep + PRQ.
      EXPECT_EQ(shared->ProudMatchProbabilities(q, epsilon),
                fresh_proud.ValueOrDie()->ProudMatchProbabilities(q, epsilon));
      EXPECT_EQ(
          shared->ProbabilisticRangeSearchProud(q, epsilon, tau),
          fresh_proud.ValueOrDie()->ProbabilisticRangeSearchProud(q, epsilon,
                                                                  tau));

      // MUNICH: dense sweep + PRQ (counter-based pair seeds make the
      // Monte Carlo streams identical).
      EXPECT_EQ(shared->MunichMatchProbabilities(q, epsilon).ValueOrDie(),
                fresh_munich.ValueOrDie()
                    ->MunichMatchProbabilities(q, epsilon)
                    .ValueOrDie());
      EXPECT_EQ(
          shared->ProbabilisticRangeSearchMunich(q, epsilon, tau)
              .ValueOrDie(),
          fresh_munich.ValueOrDie()
              ->ProbabilisticRangeSearchMunich(q, epsilon, tau)
              .ValueOrDie());
    }

    // The PROUD general-moment columns are the fourth lazy cache: built on
    // first EnsureProudMoments, reused on the second, bitwise the fresh
    // engine's sweep.
    ASSERT_TRUE(engines.EnsureProudMoments().ok());
    ASSERT_TRUE(engines.EnsureProudMoments().ok());
    EXPECT_EQ(engines.stats().proud_moment_builds, 1u);
    ASSERT_TRUE(fresh_proud.ValueOrDie()->BuildProudMomentColumns().ok());
    EXPECT_EQ(
        shared->ProudGeneralMatchProbabilities(0, epsilon).ValueOrDie(),
        fresh_proud.ValueOrDie()
            ->ProudGeneralMatchProbabilities(0, epsilon)
            .ValueOrDie());
  }
}

// --- Declines and fallbacks --------------------------------------------------

TEST(EngineContextTest, IncompatibleMeasureConfigsAreDeclined) {
  const ts::Dataset exact = MakeExact(12, 5, 13);
  const auto spec = uncertain::ErrorSpec::Constant(ErrorKind::kNormal, 0.5);
  uncertain::UncertainDataset pdf = uncertain::PerturbDataset(exact, spec, 3);
  uncertain::MultiSampleDataset samples = uncertain::PerturbDatasetMultiSample(
      exact, spec, 3, 4);

  EngineContext engines;
  ASSERT_TRUE(engines.BindData(pdf, samples, 3, 0.5).ok());

  // PROUD: a σ override differing from the bound run-level σ is declined.
  EXPECT_NE(engines.AcquireProud(0.5), nullptr);
  EXPECT_EQ(engines.AcquireProud(0.7), nullptr);

  // DUST: a second configuration conflicting with the context's persistent
  // table cache is declined.
  EXPECT_NE(engines.AcquireDust(measures::DustOptions{}), nullptr);
  measures::DustOptions coarse;
  coarse.table_size = 64;
  EXPECT_EQ(engines.AcquireDust(coarse), nullptr);

  // MUNICH: the first acquisition fixes the estimator config; τ may vary,
  // anything else may not.
  measures::MunichOptions first;
  first.mc_samples = 200;
  first.tau = 0.3;
  EXPECT_NE(engines.AcquireMunich(first), nullptr);
  measures::MunichOptions tau_only = first;
  tau_only.tau = 0.9;
  EXPECT_NE(engines.AcquireMunich(tau_only), nullptr);
  measures::MunichOptions conflicting = first;
  conflicting.mc_samples = 5000;
  EXPECT_EQ(engines.AcquireMunich(conflicting), nullptr);

  EXPECT_EQ(engines.stats().acquires_declined, 3u);
  EXPECT_EQ(engines.stats().pdf_packs, 1u);
}

TEST(EngineContextTest, NonEngineShapedDataDeclinesWithoutCrashing) {
  auto err = prob::MakeNormalError(0.5);
  uncertain::UncertainDataset ragged;
  ragged.series.emplace_back(
      std::vector<double>{1.0, 2.0},
      std::vector<prob::ErrorDistributionPtr>(2, err));
  ragged.series.emplace_back(
      std::vector<double>{1.0},
      std::vector<prob::ErrorDistributionPtr>(1, err));

  EngineContext engines;
  ASSERT_TRUE(engines.BindData(std::move(ragged), std::nullopt, 1, 1.0).ok());
  EXPECT_EQ(engines.AcquireProud(1.0), nullptr);
  EXPECT_EQ(engines.AcquireDust(measures::DustOptions{}), nullptr);
  EXPECT_EQ(engines.AcquireMunich(measures::MunichOptions{}), nullptr);
  EXPECT_EQ(engines.stats().pdf_packs, 0u);
}

// --- Unbound matcher regression ---------------------------------------------

TEST(EngineContextTest, UnboundMatcherQueriesReturnStatusNotUb) {
  // Regression: Retrieve (and the query methods it delegates to) on a
  // never-bound matcher used to dereference null engine/context state.
  core::ProudMatcher proud;
  core::DustMatcher dust;
  core::MunichMatcher munich;
  core::EuclideanMatcher euclid;
  core::Matcher* unbound[] = {&proud, &dust, &munich, &euclid};
  for (core::Matcher* matcher : unbound) {
    EXPECT_FALSE(matcher->Retrieve(0, 4, 1.0).ok()) << matcher->name();
    EXPECT_FALSE(matcher->Matches(0, 1, 1.0).ok()) << matcher->name();
    EXPECT_FALSE(matcher->CalibrationDistance(0, 1).ok()) << matcher->name();
  }
}

TEST(EngineContextTest, ResidencyTableActivatesAndQueriesMultipleDatasets) {
  const ts::Dataset exact_a = MakeExact(10, 8, 21);
  const ts::Dataset exact_b = MakeExact(6, 12, 22);
  const auto spec = uncertain::ErrorSpec::Constant(ErrorKind::kNormal, 0.4);

  EngineContext engines{EngineContextOptions{}};
  EXPECT_FALSE(engines.HasResident("a"));
  EXPECT_EQ(engines.active_resident(), nullptr);
  ASSERT_TRUE(engines
                  .AddResident("a", uncertain::PerturbDataset(exact_a, spec, 1),
                               std::nullopt, 1, 0.4)
                  .ok());
  ASSERT_TRUE(engines
                  .AddResident("b", uncertain::PerturbDataset(exact_b, spec, 2),
                               std::nullopt, 2, 0.4)
                  .ok());
  EXPECT_TRUE(engines.HasResident("a"));
  EXPECT_EQ(engines.ResidentNames(),
            (std::vector<std::string>{"a", "b"}));

  // Activation routes residents through BindData; each serves queries on
  // its own data (sweep lengths prove which dataset is live).
  ASSERT_TRUE(engines.ActivateResident("a").ok());
  ASSERT_NE(engines.active_resident(), nullptr);
  EXPECT_EQ(*engines.active_resident(), "a");
  UncertainEngine* dust_a = engines.AcquireDust(measures::DustOptions{});
  ASSERT_NE(dust_a, nullptr);
  EXPECT_EQ(dust_a->DustDistances(0).ValueOrDie().size(), 10u);

  ASSERT_TRUE(engines.ActivateResident("b").ok());
  UncertainEngine* dust_b = engines.AcquireDust(measures::DustOptions{});
  ASSERT_NE(dust_b, nullptr);
  EXPECT_EQ(dust_b->DustDistances(0).ValueOrDie().size(), 6u);

  // Re-activating the already-active resident is dedup'd by the content
  // fingerprint: no repack.
  const std::size_t packs_before = engines.stats().pdf_packs;
  ASSERT_TRUE(engines.ActivateResident("b").ok());
  EXPECT_EQ(engines.stats().pdf_packs, packs_before);
  EXPECT_EQ(engines.stats().resident_adds, 2u);
  EXPECT_GE(engines.stats().resident_activations, 3u);

  // Unknown names fail; dropping clears the active label.
  EXPECT_FALSE(engines.ActivateResident("zzz").ok());
  EXPECT_FALSE(engines.DropResident("zzz").ok());
  ASSERT_TRUE(engines.DropResident("b").ok());
  EXPECT_EQ(engines.active_resident(), nullptr);
  EXPECT_FALSE(engines.HasResident("b"));
  EXPECT_TRUE(engines.HasResident("a"));
}

TEST(EngineContextTest, ResidentActivationMatchesDirectBindBitwise) {
  // Queries served through the residency table are bit-identical to binding
  // the same pdf dataset directly — residency adds routing, never values.
  const ts::Dataset exact = MakeExact(12, 10, 5);
  const auto spec = uncertain::ErrorSpec::Constant(ErrorKind::kNormal, 0.5);
  uncertain::UncertainDataset pdf = uncertain::PerturbDataset(exact, spec, 9);

  EngineContext direct{EngineContextOptions{}};
  ASSERT_TRUE(direct.BindData(pdf, std::nullopt, 9, 0.5).ok());
  UncertainEngine* want = direct.AcquireDust(measures::DustOptions{});
  ASSERT_NE(want, nullptr);

  EngineContext resident{EngineContextOptions{}};
  ASSERT_TRUE(resident.AddResident("r", pdf, std::nullopt, 9, 0.5).ok());
  ASSERT_TRUE(resident.ActivateResident("r").ok());
  UncertainEngine* got = resident.AcquireDust(measures::DustOptions{});
  ASSERT_NE(got, nullptr);

  for (std::size_t q = 0; q < 3; ++q) {
    const auto a = want->DustDistances(q);
    const auto b = got->DustDistances(q);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.ValueOrDie(), b.ValueOrDie()) << "query " << q;
  }
}

TEST(EngineContextTest, DropActiveResidentClearsLabelButKeepsEnginesUsable) {
  // Dropping the resident that is currently bound removes the name from the
  // table and clears the active label — but the binding owns copies, so
  // engines acquired before the drop keep answering, bitwise unchanged.
  const ts::Dataset exact = MakeExact(10, 8, 31);
  const auto spec = uncertain::ErrorSpec::Constant(ErrorKind::kNormal, 0.4);

  EngineContext engines{EngineContextOptions{}};
  ASSERT_TRUE(engines
                  .AddResident("live", uncertain::PerturbDataset(exact, spec, 1),
                               std::nullopt, 1, 0.4)
                  .ok());
  ASSERT_TRUE(engines.ActivateResident("live").ok());
  UncertainEngine* dust = engines.AcquireDust(measures::DustOptions{});
  ASSERT_NE(dust, nullptr);
  const auto before = dust->DustDistances(0);
  ASSERT_TRUE(before.ok());

  ASSERT_TRUE(engines.DropResident("live").ok());
  EXPECT_EQ(engines.active_resident(), nullptr);
  EXPECT_FALSE(engines.HasResident("live"));

  // The bound engine outlives the table entry: same pointer, same answers.
  EXPECT_EQ(engines.AcquireDust(measures::DustOptions{}), dust);
  const auto after = dust->DustDistances(0);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.ValueOrDie(), before.ValueOrDie());
}

TEST(EngineContextTest, ReAddSameNameRebindsOnIdenticalDataRebuildsOnNew) {
  // Re-AddResident under an existing name replaces the stored entry.
  // Activation then goes through BindData's content fingerprint: identical
  // bytes keep the pack and engines (a rebind hit), different bytes repack.
  const ts::Dataset exact = MakeExact(12, 6, 33);
  const auto spec = uncertain::ErrorSpec::Constant(ErrorKind::kNormal, 0.5);

  EngineContext engines{EngineContextOptions{}};
  ASSERT_TRUE(engines
                  .AddResident("r", uncertain::PerturbDataset(exact, spec, 5),
                               std::nullopt, 5, 0.5)
                  .ok());
  ASSERT_TRUE(engines.ActivateResident("r").ok());
  ASSERT_NE(engines.AcquireDust(measures::DustOptions{}), nullptr);
  EXPECT_EQ(engines.stats().data_binds, 1u);
  EXPECT_EQ(engines.stats().pdf_packs, 1u);

  // Same name, bit-identical data (same exact dataset, spec and seed):
  // rebind, not rebuild.
  ASSERT_TRUE(engines
                  .AddResident("r", uncertain::PerturbDataset(exact, spec, 5),
                               std::nullopt, 5, 0.5)
                  .ok());
  ASSERT_TRUE(engines.ActivateResident("r").ok());
  EXPECT_EQ(engines.stats().data_binds, 1u);
  EXPECT_EQ(engines.stats().data_rebind_hits, 1u);
  EXPECT_EQ(engines.stats().pdf_packs, 1u);

  // Same name, different perturbation seed: the fingerprint differs, so the
  // activation replaces the binding and packs the new data.
  ASSERT_TRUE(engines
                  .AddResident("r", uncertain::PerturbDataset(exact, spec, 6),
                               std::nullopt, 6, 0.5)
                  .ok());
  ASSERT_TRUE(engines.ActivateResident("r").ok());
  ASSERT_NE(engines.AcquireDust(measures::DustOptions{}), nullptr);
  EXPECT_EQ(engines.stats().data_binds, 2u);
  EXPECT_EQ(engines.stats().data_rebind_hits, 1u);
  EXPECT_EQ(engines.stats().pdf_packs, 2u);
  EXPECT_EQ(engines.stats().resident_adds, 3u);
  EXPECT_EQ(engines.stats().resident_activations, 3u);
}

TEST(EngineContextTest, SessionAttachReplaysOnlyFramesPastPartialAck) {
  // The resumable-session half of the residency story: a client that acked
  // part of the stream, died, and reconnects claiming a later receipt gets
  // exactly the unseen tail — nothing recomputed, nothing duplicated.
  int sv[2] = {-1, -1};
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);

  server::Session session(7, 64);
  const auto first = session.Attach(sv[0], 0, false);
  EXPECT_EQ(first.replayed, 0u);
  EXPECT_FALSE(first.poisoned);

  const std::uint8_t kType =
      static_cast<std::uint8_t>(server::MessageType::kPong);
  EXPECT_EQ(session.Deliver(kType, {0x01}, 1), 1u);
  EXPECT_EQ(session.Deliver(kType, {0x02}, 2), 2u);
  EXPECT_EQ(session.Deliver(kType, {0x03}, 3), 3u);
  EXPECT_EQ(session.BacklogSize(), 3u);

  // Partial ack: frame 1 is released, 2 and 3 stay retained.
  session.HandleAck(1);
  EXPECT_EQ(session.BacklogSize(), 2u);

  session.Detach(sv[0]);
  close(sv[0]);
  close(sv[1]);

  // Reconnect claiming receipt through sequence 2 — the receipt doubles as
  // a cumulative ack, so only frame 3 is replayed.
  int fresh[2] = {-1, -1};
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fresh), 0);
  const auto resumed = session.Attach(fresh[0], 2, true);
  EXPECT_EQ(resumed.replayed, 1u);
  EXPECT_EQ(resumed.server_seq, 3u);
  EXPECT_FALSE(resumed.poisoned);
  EXPECT_EQ(session.BacklogSize(), 1u);

  // On the wire: the HelloAck control frame, then frame 3 verbatim.
  auto hello = server::ReadFrame(fresh[1]);
  ASSERT_TRUE(hello.ok()) << hello.status().ToString();
  EXPECT_EQ(hello.ValueOrDie().header.type,
            static_cast<std::uint8_t>(server::MessageType::kHelloAck));
  auto tail = server::ReadFrame(fresh[1]);
  ASSERT_TRUE(tail.ok()) << tail.status().ToString();
  EXPECT_EQ(tail.ValueOrDie().header.sequence, 3u);
  EXPECT_EQ(tail.ValueOrDie().payload, (std::vector<std::uint8_t>{0x03}));

  // A full ack drains the backlog.
  session.HandleAck(3);
  EXPECT_EQ(session.BacklogSize(), 0u);

  session.Detach(fresh[0]);
  close(fresh[0]);
  close(fresh[1]);
}

}  // namespace
}  // namespace uts::query
