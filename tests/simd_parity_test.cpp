// SIMD-vs-scalar parity for the runtime-dispatched kernels of
// distance/simd.hpp, per the documented numeric policy:
//
//  * DUST (closed-form, lookup-table, classed) — **bitwise** (EXPECT_EQ):
//    the AVX2 kernels evaluate dust(Δ)² lane-exactly and accumulate in the
//    scalar's ascending-timestamp order.
//  * Euclidean and PROUD — pinned relative tolerance kRelTol = 1e-12: the
//    AVX2 kernels reassociate the per-pair sum across lanes and contract
//    into FMAs.
//  * Early abandon — per-tile threshold checks must make the same abandon
//    decisions as the scalar per-element checks, probed with adversarial
//    thresholds placed exactly at kAbandonTile boundaries (exact integer
//    arithmetic, so both paths compute boundary partials exactly).
//
// Kernel shapes cover lengths {7, 8, 63, 64, 1024, 1027} — below one vector,
// exact multiples of the unroll widths, the benchmark length, and a
// non-multiple-of-8 tail — and engine-level kNN / PRQ results (ranks and
// tie order) must agree between SimdMode::kAuto and kForceScalar at 1, 2
// and 8 threads.
//
// On hardware without AVX2 (or with UNCERTTS_DISABLE_AVX2 builds) the two
// dispatch tables coincide; the SIMD-specific assertions are skipped.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <vector>

#include "distance/batch.hpp"
#include "distance/simd.hpp"
#include "prob/distribution.hpp"
#include "prob/rng.hpp"
#include "query/engine.hpp"
#include "query/uncertain_engine.hpp"
#include "ts/dataset.hpp"
#include "ts/soa_store.hpp"
#include "ts/store_view.hpp"
#include "uncertain/uncertain_series.hpp"

namespace uts::distance {
namespace {

constexpr double kRelTol = 1e-12;
constexpr std::size_t kLengths[] = {7, 8, 63, 64, 1024, 1027};
constexpr std::size_t kThreadCounts[] = {1, 2, 8};

/// True when kAuto resolves to a genuinely different (SIMD) table; the
/// parity tests compare against it, and skip when it is unavailable.
bool SimdAvailable() {
  return ResolveDispatch(SimdMode::kAuto).level != SimdLevel::kScalar;
}

#define UTS_REQUIRE_SIMD()                                              \
  if (!SimdAvailable()) {                                               \
    GTEST_SKIP() << "AVX2 not compiled in / not supported by this CPU"; \
  }

void ExpectRelNear(double got, double want, const char* what,
                   std::size_t index) {
  EXPECT_NEAR(got, want, kRelTol * std::max(1.0, std::fabs(want)))
      << what << " at index " << index;
}

ts::SoaStore RandomStore(std::size_t rows, std::size_t len,
                         std::uint64_t seed) {
  prob::Rng rng(seed);
  std::vector<double> values(rows * len);
  for (double& v : values) v = rng.Gaussian();
  return ts::SoaStore::FromPacked(std::move(values), len).ValueOrDie();
}

/// The single block of a resident test store, in the shape the kernels
/// accept. Resident pins are pointer copies into the store's own storage,
/// so the returned RowBlock outlives the pin guard.
ts::RowBlock Block(const ts::SoaStore& store) {
  const ts::StoreView view(store);
  return ts::PinOrAbort(view, 0).block();
}

std::vector<double> RandomQuery(std::size_t len, std::uint64_t seed) {
  prob::Rng rng(seed);
  std::vector<double> q(len);
  for (double& v : q) v = rng.Gaussian();
  return q;
}

// --- Euclidean (pinned tolerance) -------------------------------------------

TEST(SimdKernelParityTest, SquaredEuclideanRangeWithinTolerance) {
  UTS_REQUIRE_SIMD();
  const KernelDispatch& simd = ResolveDispatch(SimdMode::kAuto);
  for (std::size_t len : kLengths) {
    const ts::SoaStore store = RandomStore(37, len, 0xe1 + len);
    const ts::RowBlock block = Block(store);
    const std::vector<double> query = RandomQuery(len, 0x90 + len);
    std::vector<double> want(store.rows()), got(store.rows());
    SquaredEuclideanBatchRange(query, block, 0, store.rows(), want);
    simd.squared_euclidean_range(query, block, 0, store.rows(), got);
    for (std::size_t i = 0; i < got.size(); ++i) {
      ExpectRelNear(got[i], want[i], "sq-euclid", i);
    }
    // Sub-range calls must agree with the full sweep (chunk invariance).
    std::vector<double> part(5);
    simd.squared_euclidean_range(query, block, 7, 12, part);
    for (std::size_t i = 0; i < part.size(); ++i) {
      EXPECT_EQ(part[i], got[7 + i]) << "len=" << len;
    }
  }
}

TEST(SimdKernelParityTest, MultiQueryWithinToleranceIncludingRemainder) {
  UTS_REQUIRE_SIMD();
  const KernelDispatch& simd = ResolveDispatch(SimdMode::kAuto);
  for (std::size_t len : {std::size_t{7}, std::size_t{64}, std::size_t{129}}) {
    // 23 queries: 5 full blocks of kQueryBlock plus a 3-query remainder.
    const std::size_t rows = 23;
    const ts::SoaStore store = RandomStore(rows, len, 0x3c + len);
    const ts::RowBlock block = Block(store);
    std::vector<double> want(rows * rows), got(rows * rows);
    SquaredEuclideanMultiQueryBatch(block, 0, rows, block, 0, rows, want,
                                    rows);
    simd.squared_euclidean_multi_query(block, 0, rows, block, 0, rows, got,
                                       rows);
    for (std::size_t i = 0; i < got.size(); ++i) {
      ExpectRelNear(got[i], want[i], "multi-query", i);
    }
  }
}

// --- Early abandon (per-tile checks, adversarial thresholds) -----------------

TEST(SimdKernelParityTest, EarlyAbandonDecisionsAgreeAtTileBoundaries) {
  UTS_REQUIRE_SIMD();
  const KernelDispatch& simd = ResolveDispatch(SimdMode::kAuto);
  // Integer-valued differences: every square and partial sum is exact in
  // IEEE arithmetic regardless of association, so scalar and SIMD partials
  // are equal and thresholds can sit exactly on tile-boundary sums without
  // any rounding slack.
  const std::size_t len = 3 * kAbandonTile + 5;
  prob::Rng rng(0xab);
  std::vector<double> values;
  const std::size_t rows = 16;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t t = 0; t < len; ++t) {
      values.push_back(static_cast<double>(rng.Next() % 5));
    }
  }
  const ts::SoaStore store =
      ts::SoaStore::FromPacked(std::move(values), len).ValueOrDie();
  const ts::RowBlock block = Block(store);
  const std::vector<double> query(len, 0.0);

  std::vector<double> full(rows);
  SquaredEuclideanBatchRange(query, block, 0, rows, full);

  // Thresholds: exact partial sums of row 0 at the first and second tile
  // boundaries (the adversarial spots: the scalar path crosses mid-tile,
  // the SIMD path only checks at the boundary), one mid-tile value, plus
  // extremes that abandon nothing / everything.
  double boundary1 = 0.0, boundary2 = 0.0, mid = 0.0;
  {
    const std::span<const double> row = block.row(0);
    for (std::size_t t = 0; t < kAbandonTile; ++t) boundary1 += row[t] * row[t];
    boundary2 = boundary1;
    for (std::size_t t = kAbandonTile; t < 2 * kAbandonTile; ++t) {
      boundary2 += row[t] * row[t];
    }
    mid = boundary1;
    for (std::size_t t = kAbandonTile; t < kAbandonTile + 7; ++t) {
      mid += row[t] * row[t];
    }
  }
  const double thresholds[] = {boundary1, boundary1 - 1.0, boundary1 + 1.0,
                               boundary2, mid, 0.0, 1e18};

  for (double threshold_sq : thresholds) {
    std::vector<double> scalar_out(rows), simd_out(rows);
    SquaredEuclideanEarlyAbandonBatchRange(query, block, threshold_sq, 0,
                                           rows, scalar_out);
    simd.squared_euclidean_early_abandon_range(query, block, threshold_sq, 0,
                                               rows, simd_out);
    for (std::size_t i = 0; i < rows; ++i) {
      // The abandon decision must agree between the paths...
      EXPECT_EQ(scalar_out[i] <= threshold_sq, simd_out[i] <= threshold_sq)
          << "threshold " << threshold_sq << " row " << i;
      if (full[i] <= threshold_sq) {
        // ...surviving candidates report the exact squared distance (exact
        // here: integer arithmetic)...
        EXPECT_EQ(simd_out[i], full[i]) << "row " << i;
        EXPECT_EQ(scalar_out[i], full[i]) << "row " << i;
      } else {
        // ...and abandoned candidates report some partial sum exceeding the
        // threshold.
        EXPECT_GT(simd_out[i], threshold_sq) << "row " << i;
        EXPECT_GT(scalar_out[i], threshold_sq) << "row " << i;
        EXPECT_LE(simd_out[i], full[i]) << "row " << i;
      }
    }
  }
}

// --- DUST (bitwise) ----------------------------------------------------------

TEST(SimdKernelParityTest, DustClosedFormBitwise) {
  UTS_REQUIRE_SIMD();
  const KernelDispatch& simd = ResolveDispatch(SimdMode::kAuto);
  DustLut lut;
  lut.scale = 1.0 / std::sqrt(2.0 * (0.25 + 0.49));
  for (std::size_t len : kLengths) {
    const ts::SoaStore store = RandomStore(19, len, 0xd0 + len);
    const ts::RowBlock block = Block(store);
    const std::vector<double> query = RandomQuery(len, 0xd1 + len);
    std::vector<double> want(store.rows()), got(store.rows());
    DustBatchRange(query, block, lut, 0, store.rows(), want);
    simd.dust_range(query, block, lut, 0, store.rows(), got);
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], want[i]) << "len=" << len << " row " << i;
    }
  }
}

/// A synthetic non-linear table so interpolation errors cannot hide.
struct OwnedLut {
  std::vector<double> cells;
  DustLut view;
};

OwnedLut MakeTableLut(std::size_t size, double delta_max, double bias) {
  OwnedLut lut;
  lut.cells.resize(size);
  for (std::size_t i = 0; i < size; ++i) {
    const double x = static_cast<double>(i) / static_cast<double>(size - 1);
    lut.cells[i] = bias + std::sqrt(x) + 0.25 * std::sin(9.0 * x);
  }
  lut.view.values = lut.cells.data();
  lut.view.size = size;
  lut.view.delta_max = delta_max;
  lut.view.step = delta_max / static_cast<double>(size - 1);
  return lut;
}

TEST(SimdKernelParityTest, DustLookupTableBitwise) {
  UTS_REQUIRE_SIMD();
  const KernelDispatch& simd = ResolveDispatch(SimdMode::kAuto);
  const OwnedLut lut = MakeTableLut(257, 4.0, 0.1);
  for (std::size_t len : kLengths) {
    // Half Gaussian deltas (interpolated lookups), plus exact grid nodes
    // (frac == 0), values beyond delta_max (clamp) and values in the last
    // cell (the idx + 1 >= size guard).
    prob::Rng rng(0x17 + len);
    std::vector<double> values(11 * len);
    for (std::size_t i = 0; i < values.size(); ++i) {
      switch (i % 4) {
        case 0:
          values[i] = rng.Gaussian();
          break;
        case 1:  // exact grid node
          values[i] = lut.view.step * static_cast<double>(rng.Next() % 257);
          break;
        case 2:  // beyond the clamp
          values[i] = 4.0 + static_cast<double>(rng.Next() % 7);
          break;
        default:  // inside the last cell
          values[i] = 4.0 - 0.5 * lut.view.step;
      }
    }
    const ts::SoaStore store =
        ts::SoaStore::FromPacked(std::move(values), len).ValueOrDie();
    const ts::RowBlock block = Block(store);
    const std::vector<double> query(len, 0.0);
    std::vector<double> want(store.rows()), got(store.rows());
    DustBatchRange(query, block, lut.view, 0, store.rows(), want);
    simd.dust_range(query, block, lut.view, 0, store.rows(), got);
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], want[i]) << "len=" << len << " row " << i;
    }
  }
}

TEST(SimdKernelParityTest, DustClassedBitwiseAcrossRunShapes) {
  UTS_REQUIRE_SIMD();
  const KernelDispatch& simd = ResolveDispatch(SimdMode::kAuto);
  const OwnedLut t00 = MakeTableLut(129, 3.0, 0.05);
  const OwnedLut t01 = MakeTableLut(193, 5.0, 0.2);
  DustLut closed;  // mixed closed-form / table pairs in one row
  closed.scale = 0.9;
  const DustLut lut_row0[] = {t00.view, t01.view};
  const DustLut lut_row1[] = {closed, t00.view};

  for (std::size_t len : {std::size_t{8}, std::size_t{64}, std::size_t{75}}) {
    const std::size_t rows = 9;
    const ts::SoaStore store = RandomStore(rows, len, 0xc1a + len);
    const ts::RowBlock block = Block(store);
    const std::vector<double> query = RandomQuery(len, 0xc1b + len);

    // Query-side lut rows: constant for the first half of the timestamps,
    // switching in the second half (ends one maximal run and starts
    // another).
    std::vector<const DustLut*> qluts(len);
    for (std::size_t t = 0; t < len; ++t) {
      qluts[t] = t < len / 2 ? lut_row0 : lut_row1;
    }
    // Candidate class ids in every run shape: per-series-constant rows
    // (full vector runs), alternating ids (scalar fallback), and 16-blocks
    // (mixed run lengths crossing the switch of qluts).
    std::vector<std::uint16_t> ids(rows * len);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t t = 0; t < len; ++t) {
        std::uint16_t id = 0;
        if (r % 3 == 0) id = r % 2;
        if (r % 3 == 1) id = t % 2;
        if (r % 3 == 2) id = (t / 16) % 2;
        ids[r * len + t] = id;
      }
    }
    std::vector<double> want(rows), got(rows);
    DustClassedBatchRange(query, block, qluts, ids, 0, rows, want);
    simd.dust_classed_range(query, block, qluts, ids, 0, rows, got);
    for (std::size_t i = 0; i < rows; ++i) {
      EXPECT_EQ(got[i], want[i]) << "len=" << len << " row " << i;
    }
  }
}

// --- PROUD (pinned tolerance) ------------------------------------------------

TEST(SimdKernelParityTest, ProudMomentWithinTolerance) {
  UTS_REQUIRE_SIMD();
  const KernelDispatch& simd = ResolveDispatch(SimdMode::kAuto);
  const double v = 2.0 * 0.5 * 0.5;
  for (std::size_t len : kLengths) {
    const ts::SoaStore store = RandomStore(21, len, 0x9d + len);
    const ts::RowBlock block = Block(store);
    const std::vector<double> query = RandomQuery(len, 0x9e + len);
    std::vector<double> want_mean(store.rows()), want_var(store.rows());
    std::vector<double> got_mean(store.rows()), got_var(store.rows());
    ProudMomentBatchRange(query, block, v, 0, store.rows(), want_mean,
                          want_var);
    simd.proud_moment_range(query, block, v, 0, store.rows(), got_mean,
                            got_var);
    for (std::size_t i = 0; i < store.rows(); ++i) {
      ExpectRelNear(got_mean[i], want_mean[i], "proud-mean", i);
      ExpectRelNear(got_var[i], want_var[i], "proud-var", i);
    }
  }
}

TEST(SimdKernelParityTest, ProudGeneralMomentWithinTolerance) {
  UTS_REQUIRE_SIMD();
  const KernelDispatch& simd = ResolveDispatch(SimdMode::kAuto);
  for (std::size_t len : kLengths) {
    const std::size_t rows = 13;
    const ts::SoaStore obs = RandomStore(rows, len, 0x41 + len);
    // Central moments with realistic signs: m2, m4 > 0; m3 signed.
    prob::Rng rng(0x42 + len);
    std::vector<double> m2v(rows * len), m3v(rows * len), m4v(rows * len);
    for (std::size_t i = 0; i < rows * len; ++i) {
      const double s = 0.2 + 0.8 * std::fabs(rng.Gaussian());
      m2v[i] = s * s;
      m3v[i] = 0.3 * rng.Gaussian() * s * s * s;
      m4v[i] = 3.0 * s * s * s * s;
    }
    const ts::SoaStore m2 =
        ts::SoaStore::FromPacked(std::move(m2v), len).ValueOrDie();
    const ts::SoaStore m3 =
        ts::SoaStore::FromPacked(std::move(m3v), len).ValueOrDie();
    const ts::SoaStore m4 =
        ts::SoaStore::FromPacked(std::move(m4v), len).ValueOrDie();
    const ts::RowBlock obs_b = Block(obs), m2_b = Block(m2), m3_b = Block(m3),
                       m4_b = Block(m4);
    std::vector<double> want_mean(rows), want_var(rows), got_mean(rows),
        got_var(rows);
    ProudGeneralMomentBatchRange(obs_b.row(0), m2_b.row(0), m3_b.row(0),
                                 m4_b.row(0), obs_b, m2_b, m3_b, m4_b, 0,
                                 rows, want_mean, want_var);
    simd.proud_general_moment_range(obs_b.row(0), m2_b.row(0), m3_b.row(0),
                                    m4_b.row(0), obs_b, m2_b, m3_b, m4_b, 0,
                                    rows, got_mean, got_var);
    for (std::size_t i = 0; i < rows; ++i) {
      ExpectRelNear(got_mean[i], want_mean[i], "proud-gen-mean", i);
      ExpectRelNear(got_var[i], want_var[i], "proud-gen-var", i);
    }
  }
}

// --- Dispatch resolution -----------------------------------------------------

TEST(SimdDispatchTest, ForceScalarModePinsScalarTable) {
  EXPECT_EQ(ResolveDispatch(SimdMode::kForceScalar).level,
            SimdLevel::kScalar);
  EXPECT_EQ(ScalarDispatch().level, SimdLevel::kScalar);
  EXPECT_STREQ(SimdLevelName(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kAvx2), "avx2");
}

TEST(SimdDispatchTest, EnvironmentOverrideForcesScalar) {
  ASSERT_EQ(setenv("UNCERTTS_FORCE_SCALAR", "1", 1), 0);
  EXPECT_TRUE(ForceScalarEnv());
  EXPECT_EQ(ResolveDispatch(SimdMode::kAuto).level, SimdLevel::kScalar);
  ASSERT_EQ(setenv("UNCERTTS_FORCE_SCALAR", "0", 1), 0);
  EXPECT_FALSE(ForceScalarEnv());
  ASSERT_EQ(unsetenv("UNCERTTS_FORCE_SCALAR"), 0);
  EXPECT_FALSE(ForceScalarEnv());
}

TEST(SimdDispatchTest, AutoMatchesCompiledAndProbedCapability) {
  const bool expect_avx2 = Avx2CompiledIn() && CpuSupportsAvx2() &&
                           !ForceScalarEnv();
  EXPECT_EQ(ResolveDispatch(SimdMode::kAuto).level,
            expect_avx2 ? SimdLevel::kAvx2 : SimdLevel::kScalar);
}

// --- Engine-level result-set equality ---------------------------------------

ts::Dataset GaussianDataset(std::size_t n, std::size_t len,
                            std::uint64_t seed) {
  prob::Rng rng(seed);
  ts::Dataset d("simd-gauss");
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> values(len);
    for (double& v : values) v = rng.Gaussian();
    d.Add(ts::TimeSeries(std::move(values), static_cast<int>(i % 2)));
  }
  return d;
}

/// {0, 1}-valued series: many exactly-tied distances, and every distance is
/// a sum of small integers — exact in both kernel paths — so tie order must
/// match bitwise even under SIMD.
ts::Dataset TieHeavyDataset(std::size_t n, std::size_t len,
                            std::uint64_t seed) {
  prob::Rng rng(seed);
  ts::Dataset d("simd-ties");
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> values(len);
    for (double& v : values) v = static_cast<double>(rng.Next() % 2);
    d.Add(ts::TimeSeries(std::move(values), static_cast<int>(i % 2)));
  }
  return d;
}

query::EngineOptions EngineOpts(std::size_t threads, SimdMode simd) {
  query::EngineOptions options;
  options.threads = threads;
  options.grain = 16;
  options.simd = simd;
  return options;
}

TEST(SimdEngineParityTest, EuclideanQueriesMatchScalarEngine) {
  UTS_REQUIRE_SIMD();
  for (const ts::Dataset& d :
       {GaussianDataset(60, 33, 0x51), TieHeavyDataset(60, 16, 0x52)}) {
    for (std::size_t threads : kThreadCounts) {
      const query::DistanceMatrixEngine scalar(
          d, EngineOpts(threads, SimdMode::kForceScalar));
      const query::DistanceMatrixEngine simd(
          d, EngineOpts(threads, SimdMode::kAuto));
      ASSERT_EQ(simd.simd_level(), SimdLevel::kAvx2);
      ASSERT_EQ(scalar.simd_level(), SimdLevel::kScalar);

      for (std::size_t q : {std::size_t{0}, std::size_t{17}}) {
        const auto want = scalar.KNearestEuclidean(q, 10);
        const auto got = simd.KNearestEuclidean(q, 10);
        ASSERT_EQ(got.size(), want.size());
        for (std::size_t i = 0; i < got.size(); ++i) {
          // Ranks and tie order must match exactly.
          EXPECT_EQ(got[i].index, want[i].index)
              << d.name() << " q=" << q << " rank " << i;
          ExpectRelNear(got[i].distance, want[i].distance, "knn-dist", i);
        }
        const double epsilon = want.back().distance;
        EXPECT_EQ(simd.RangeSearchEuclidean(q, epsilon),
                  scalar.RangeSearchEuclidean(q, epsilon))
            << d.name() << " q=" << q;
      }

      const auto want_all = scalar.AllKNearestEuclidean(5);
      const auto got_all = simd.AllKNearestEuclidean(5);
      ASSERT_EQ(got_all.size(), want_all.size());
      for (std::size_t q = 0; q < got_all.size(); ++q) {
        ASSERT_EQ(got_all[q].size(), want_all[q].size());
        for (std::size_t i = 0; i < got_all[q].size(); ++i) {
          EXPECT_EQ(got_all[q][i].index, want_all[q][i].index)
              << d.name() << " q=" << q << " rank " << i;
        }
      }
    }
  }
}

uncertain::UncertainDataset MixedClassUncertain(std::size_t n,
                                                std::size_t len,
                                                std::uint64_t seed) {
  prob::Rng rng(seed);
  uncertain::UncertainDataset d;
  d.name = "simd-uncertain";
  for (std::size_t s = 0; s < n; ++s) {
    std::vector<double> obs(len);
    std::vector<prob::ErrorDistributionPtr> errors(len);
    // Per-series-constant σ from a 3-value grid: 3 error classes, so the
    // classed DUST kernel (maximal-run path) is what the engine executes.
    auto err = prob::MakeNormalError(0.3 + 0.2 * static_cast<double>(s % 3));
    for (std::size_t t = 0; t < len; ++t) {
      obs[t] = rng.Gaussian();
      errors[t] = err;
    }
    d.series.emplace_back(std::move(obs), std::move(errors));
  }
  return d;
}

query::UncertainEngineOptions UncertainOpts(std::size_t threads,
                                            SimdMode simd) {
  query::UncertainEngineOptions options;
  options.threads = threads;
  options.grain = 8;
  options.simd = simd;
  options.proud_sigma = 0.5;
  return options;
}

TEST(SimdEngineParityTest, DustAndProudQueriesMatchScalarEngine) {
  UTS_REQUIRE_SIMD();
  const uncertain::UncertainDataset d = MixedClassUncertain(40, 33, 0x61);
  for (std::size_t threads : kThreadCounts) {
    auto scalar_r =
        query::UncertainEngine::Create(d, UncertainOpts(threads,
                                                        SimdMode::kForceScalar));
    auto simd_r =
        query::UncertainEngine::Create(d, UncertainOpts(threads,
                                                        SimdMode::kAuto));
    ASSERT_TRUE(scalar_r.ok() && simd_r.ok());
    auto& scalar = *scalar_r.ValueOrDie();
    auto& simd = *simd_r.ValueOrDie();
    ASSERT_EQ(simd.simd_level(), SimdLevel::kAvx2);
    ASSERT_TRUE(scalar.BuildDustTables().ok());
    ASSERT_TRUE(simd.BuildDustTables().ok());

    for (std::size_t q : {std::size_t{0}, std::size_t{13}}) {
      // DUST is bitwise: distances, ranks and tie order all EXPECT_EQ.
      const auto want_d = scalar.DustDistances(q);
      const auto got_d = simd.DustDistances(q);
      ASSERT_TRUE(want_d.ok() && got_d.ok());
      EXPECT_EQ(got_d.ValueOrDie(), want_d.ValueOrDie()) << "q=" << q;
      const auto want_knn = scalar.KNearestDust(q, 7);
      const auto got_knn = simd.KNearestDust(q, 7);
      ASSERT_TRUE(want_knn.ok() && got_knn.ok());
      ASSERT_EQ(got_knn.ValueOrDie().size(), want_knn.ValueOrDie().size());
      for (std::size_t i = 0; i < got_knn.ValueOrDie().size(); ++i) {
        EXPECT_EQ(got_knn.ValueOrDie()[i].index,
                  want_knn.ValueOrDie()[i].index);
        EXPECT_EQ(got_knn.ValueOrDie()[i].distance,
                  want_knn.ValueOrDie()[i].distance);
      }

      // PROUD PRQ: the match set (ranks and membership) must agree; the
      // probabilities behind it are within the pinned tolerance.
      EXPECT_EQ(simd.ProbabilisticRangeSearchProud(q, 6.0, 0.6),
                scalar.ProbabilisticRangeSearchProud(q, 6.0, 0.6))
          << "q=" << q;
      const auto want_p = scalar.ProudMatchProbabilities(q, 6.0);
      const auto got_p = simd.ProudMatchProbabilities(q, 6.0);
      ASSERT_EQ(got_p.size(), want_p.size());
      for (std::size_t i = 0; i < got_p.size(); ++i) {
        ExpectRelNear(got_p[i], want_p[i], "proud-prob", i);
      }
    }
  }
}

}  // namespace
}  // namespace uts::distance
