// End-to-end suite for the uncertts query server (src/server):
//
//  * bitwise parity — N concurrent clients querying one server (every
//    measure: Euclid/DUST/PROUD/MUNICH; kNN, RQ, PRQ, sweeps) receive
//    responses bit-identical to a directly driven in-process Service/
//    EngineContext, at shared-pool widths 1, 2 and 8;
//  * kill-and-reconnect resume — a client killed mid-sweep reconnects with
//    its last seen sequence and receives the remaining responses from the
//    session backlog; the Service sweep-item counter pins that nothing is
//    recomputed;
//  * admission-control saturation — flooding a busy shard dispatcher with
//    a depth-2 queue yields explicit kSaturated rejections carrying the
//    configured retry hint, never a block or a crash, and a later retry
//    succeeds;
//  * multi-dataset residency through the wire (bind two, query both, list);
//  * stalled-peer hardening — a client that stops reading its socket stalls
//    a dispatcher for at most send_timeout_ms; responses buffer in the
//    session backlog and replay on reconnect.
//
// Cross-shard behavior (per-dataset dispatchers, pool policies, global
// admission) lives in server_shard_test.cpp.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "prob/rng.hpp"
#include "server/client.hpp"
#include "server/server.hpp"
#include "server/session.hpp"
#include "ts/dataset.hpp"

namespace uts::server {
namespace {

ts::Dataset MakeExact(std::size_t n, std::size_t len, std::uint64_t seed) {
  prob::Rng rng(seed);
  ts::Dataset d("server-exact");
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> values(len);
    for (double& v : values) v = rng.Gaussian();
    d.Add(ts::TimeSeries(std::move(values), static_cast<int>(i % 2)));
  }
  return d.ZNormalizedCopy();
}

BindDatasetRequest MakeBind(const std::string& name, const ts::Dataset& exact,
                            std::uint32_t samples_per_point) {
  BindDatasetRequest request;
  request.name = name;
  request.kind = WireErrorKind::kNormal;
  request.sigma = 0.4;
  request.seed = 1234;
  request.samples_per_point = samples_per_point;
  for (std::size_t i = 0; i < exact.size(); ++i) {
    const auto values = exact[i].values();
    request.series.emplace_back(values.begin(), values.end());
    request.labels.push_back(exact[i].label());
  }
  return request;
}

measures::MunichOptions CheapMunich() {
  measures::MunichOptions options;
  options.mc_samples = 200;
  return options;
}

ServiceOptions MakeServiceOptions(std::size_t threads) {
  ServiceOptions options;
  options.threads = threads;
  options.munich = CheapMunich();
  return options;
}

std::string SocketPath(const std::string& tag) {
  return "/tmp/uts_" + tag + "_" + std::to_string(::getpid()) + ".sock";
}

void ExpectSameNeighbors(const std::vector<query::Neighbor>& a,
                         const std::vector<query::Neighbor>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].index, b[i].index) << "rank " << i;
    // EXPECT_EQ on doubles is exact equality: the parity claim is bitwise.
    EXPECT_EQ(a[i].distance, b[i].distance) << "rank " << i;
  }
}

TEST(ServerIntegration, ConcurrentClientsBitwiseParityAcrossPoolWidths) {
  const ts::Dataset exact = MakeExact(12, 32, 99);
  const BindDatasetRequest bind = MakeBind("d", exact, 3);
  constexpr std::size_t kClients = 4;
  constexpr std::uint32_t kK = 4;
  constexpr double kEpsilon = 5.0;
  constexpr double kTau = 0.2;

  // The single-width reference: a directly driven Service (a thin layer over
  // one EngineContext). Every server width below must match it bit for bit.
  Service reference(MakeServiceOptions(1));
  ASSERT_TRUE(reference.Bind(bind, 0).ok());
  struct Expected {
    KnnResponse euclid, dust, proud, munich;
    IndexListResponse range_dust, prq_munich;
    SweepResponse sweep_proud;
  };
  std::vector<Expected> expected(kClients);
  for (std::size_t q = 0; q < kClients; ++q) {
    QueryRequest query;
    query.dataset = "d";
    query.query = static_cast<std::uint32_t>(q);
    query.k = kK;
    query.epsilon = kEpsilon;
    query.tau = kTau;
    query.measure = WireMeasure::kEuclid;
    expected[q].euclid = reference.Knn(query, 0).ValueOrDie();
    query.measure = WireMeasure::kDust;
    expected[q].dust = reference.Knn(query, 0).ValueOrDie();
    expected[q].range_dust = reference.Range(query, 0).ValueOrDie();
    query.measure = WireMeasure::kProud;
    expected[q].proud = reference.Knn(query, 0).ValueOrDie();
    expected[q].sweep_proud = reference.MeasureSweep(query, 0).ValueOrDie();
    query.measure = WireMeasure::kMunich;
    expected[q].munich = reference.Knn(query, 0).ValueOrDie();
    expected[q].prq_munich = reference.Prq(query, 0).ValueOrDie();
  }

  for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                              std::size_t{8}}) {
    ServerOptions options;
    options.unix_socket_path =
        SocketPath("parity" + std::to_string(threads));
    options.service = MakeServiceOptions(threads);
    auto server_or = Server::Start(options);
    ASSERT_TRUE(server_or.ok()) << server_or.status().ToString();
    auto server = std::move(server_or).ValueOrDie();

    {
      Client::Options copts;
      copts.unix_socket_path = options.unix_socket_path;
      copts.token = 1000;
      auto binder = Client::Connect(copts);
      ASSERT_TRUE(binder.ok()) << binder.status().ToString();
      auto bound = binder.ValueOrDie()->Bind(bind);
      ASSERT_TRUE(bound.ok()) << bound.status().ToString();
      EXPECT_EQ(bound.ValueOrDie().num_series, 12u);
    }

    std::vector<std::thread> workers;
    std::vector<std::string> failures(kClients);
    for (std::size_t c = 0; c < kClients; ++c) {
      workers.emplace_back([&, c] {
        Client::Options copts;
        copts.unix_socket_path = options.unix_socket_path;
        copts.token = c + 1;
        auto client_or = Client::Connect(copts);
        if (!client_or.ok()) {
          failures[c] = client_or.status().ToString();
          return;
        }
        auto client = std::move(client_or).ValueOrDie();
        QueryRequest query;
        query.dataset = "d";
        query.query = static_cast<std::uint32_t>(c);
        query.k = kK;
        query.epsilon = kEpsilon;
        query.tau = kTau;
        auto run = [&](WireMeasure m, auto&& call) {
          query.measure = m;
          return call();
        };
        auto euclid = run(WireMeasure::kEuclid,
                          [&] { return client->Knn(query); });
        auto dust = run(WireMeasure::kDust,
                        [&] { return client->Knn(query); });
        auto range = run(WireMeasure::kDust,
                         [&] { return client->Range(query); });
        auto proud = run(WireMeasure::kProud,
                         [&] { return client->Knn(query); });
        auto sweep = run(WireMeasure::kProud,
                         [&] { return client->MeasureSweep(query); });
        auto munich = run(WireMeasure::kMunich,
                          [&] { return client->Knn(query); });
        auto prq = run(WireMeasure::kMunich,
                       [&] { return client->Prq(query); });
        for (const Status& s :
             {euclid.status(), dust.status(), range.status(), proud.status(),
              sweep.status(), munich.status(), prq.status()}) {
          if (!s.ok()) {
            failures[c] = s.ToString();
            return;
          }
        }
        ExpectSameNeighbors(euclid.ValueOrDie().neighbors,
                            expected[c].euclid.neighbors);
        ExpectSameNeighbors(dust.ValueOrDie().neighbors,
                            expected[c].dust.neighbors);
        EXPECT_EQ(range.ValueOrDie().indices,
                  expected[c].range_dust.indices);
        ExpectSameNeighbors(proud.ValueOrDie().neighbors,
                            expected[c].proud.neighbors);
        EXPECT_EQ(sweep.ValueOrDie().values,
                  expected[c].sweep_proud.values);
        ExpectSameNeighbors(munich.ValueOrDie().neighbors,
                            expected[c].munich.neighbors);
        EXPECT_EQ(prq.ValueOrDie().indices,
                  expected[c].prq_munich.indices);
        // The per-request work accounting travels with every kNN answer.
        EXPECT_EQ(euclid.ValueOrDie().cost.candidates_total,
                  expected[c].euclid.cost.candidates_total);
      });
    }
    for (auto& w : workers) w.join();
    for (std::size_t c = 0; c < kClients; ++c) {
      EXPECT_TRUE(failures[c].empty())
          << "client " << c << " at " << threads
          << " threads: " << failures[c];
    }
    server->Stop();
  }
}

TEST(ServerIntegration, KillAndReconnectResumesSweepWithoutRecompute) {
  const ts::Dataset exact = MakeExact(10, 24, 7);
  const BindDatasetRequest bind = MakeBind("r", exact, 0);

  ServerOptions options;
  options.unix_socket_path = SocketPath("resume");
  options.service = MakeServiceOptions(1);
  auto server_or = Server::Start(options);
  ASSERT_TRUE(server_or.ok()) << server_or.status().ToString();
  auto server = std::move(server_or).ValueOrDie();

  Service reference(MakeServiceOptions(1));
  ASSERT_TRUE(reference.Bind(bind, 0).ok());

  Client::Options copts;
  copts.unix_socket_path = options.unix_socket_path;
  copts.token = 7;
  auto client_or = Client::Connect(copts);
  ASSERT_TRUE(client_or.ok()) << client_or.status().ToString();
  auto client = std::move(client_or).ValueOrDie();
  ASSERT_TRUE(client->Bind(bind).ok());

  QueryRequest sweep;
  sweep.dataset = "r";
  sweep.measure = WireMeasure::kEuclid;
  sweep.query = 0;
  sweep.k = 3;
  sweep.num_queries = 10;
  ASSERT_TRUE(client->StartKnnSweep(sweep).ok());

  std::map<std::uint32_t, KnnResponse> received;
  for (int i = 0; i < 3; ++i) {
    bool done = false;
    auto item = client->NextSweepItem(&done);
    ASSERT_TRUE(item.ok()) << item.status().ToString();
    ASSERT_FALSE(done);
    received[item.ValueOrDie().query] = item.ValueOrDie();
  }

  // Kill the connection mid-stream. The dispatcher keeps computing and the
  // session buffers what it cannot send.
  client->CloseAbruptly();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  Service* shard_service = server->shard_service("r");
  ASSERT_NE(shard_service, nullptr);
  while (shard_service->stats().sweep_items < 10) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "sweep did not finish server-side";
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const std::uint64_t computed_before = shard_service->stats().sweep_items;
  EXPECT_EQ(computed_before, 10u);

  // Resume: the server replays only the frames after our last seen
  // sequence — the remaining 7 items (and the terminator once delivered).
  ASSERT_TRUE(client->Reconnect().ok());
  EXPECT_EQ(client->hello().resumed, 1);
  EXPECT_GE(client->hello().replayed, 7u);
  while (true) {
    bool done = false;
    auto item = client->NextSweepItem(&done);
    ASSERT_TRUE(item.ok()) << item.status().ToString();
    if (done) break;
    const bool inserted =
        received.emplace(item.ValueOrDie().query, item.ValueOrDie()).second;
    EXPECT_TRUE(inserted) << "duplicate sweep item for query "
                          << item.ValueOrDie().query;
  }

  // Everything arrived exactly once, bit-identical to the direct engine —
  // and the server never recomputed a finished item.
  ASSERT_EQ(received.size(), 10u);
  for (std::uint32_t q = 0; q < 10; ++q) {
    QueryRequest one = sweep;
    one.query = q;
    one.num_queries = 0;
    const KnnResponse expected = reference.Knn(one, 0).ValueOrDie();
    ASSERT_TRUE(received.count(q));
    ExpectSameNeighbors(received[q].neighbors, expected.neighbors);
  }
  EXPECT_EQ(shard_service->stats().sweep_items, computed_before);
  server->Stop();
}

TEST(ServerIntegration, SaturationRejectsWithRetryHintInsteadOfBlocking) {
  ServerOptions options;
  options.unix_socket_path = SocketPath("saturate");
  options.queue_depth = 2;
  options.retry_after_ms = 5;
  options.service = MakeServiceOptions(1);
  auto server_or = Server::Start(options);
  ASSERT_TRUE(server_or.ok()) << server_or.status().ToString();
  auto server = std::move(server_or).ValueOrDie();

  // A raw-socket client gives full control over pipelining (the sync Client
  // would wait for each pong before sending the next ping).
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, options.unix_socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  HelloMessage hello;
  hello.client_token = 99;
  ASSERT_TRUE(WriteFrame(fd, MakeFrame(static_cast<std::uint8_t>(
                                           MessageType::kHello),
                                       0, hello.Encode())
                                 .ValueOrDie())
                  .ok());
  auto hello_ack = ReadFrame(fd);
  ASSERT_TRUE(hello_ack.ok());
  ASSERT_EQ(static_cast<MessageType>(hello_ack.ValueOrDie().header.type),
            MessageType::kHelloAck);

  // Stall the dispatcher, then flood: with the dispatcher busy and a
  // depth-2 queue, most of the burst must bounce with kSaturated.
  std::uint64_t seq = 1;
  PingRequest slow;
  slow.delay_ms = 300;
  ASSERT_TRUE(WriteFrame(fd, MakeFrame(static_cast<std::uint8_t>(
                                           MessageType::kPing),
                                       seq++, slow.Encode())
                                 .ValueOrDie())
                  .ok());
  constexpr int kBurst = 20;
  for (int i = 0; i < kBurst; ++i) {
    PingRequest fast;
    ASSERT_TRUE(WriteFrame(fd, MakeFrame(static_cast<std::uint8_t>(
                                             MessageType::kPing),
                                         seq++, fast.Encode())
                                   .ValueOrDie())
                    .ok());
  }

  // Drain until every burst request is answered one way or the other.
  int pongs = 0;
  int saturated = 0;
  while (pongs + saturated < kBurst + 1) {
    auto frame = ReadFrame(fd);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    const auto type =
        static_cast<MessageType>(frame.ValueOrDie().header.type);
    if (type == MessageType::kPong) {
      ++pongs;
    } else if (type == MessageType::kError) {
      auto error = ErrorResponse::Decode(frame.ValueOrDie().payload);
      ASSERT_TRUE(error.ok());
      EXPECT_EQ(error.ValueOrDie().code, WireError::kSaturated);
      EXPECT_EQ(error.ValueOrDie().retry_after_ms, 5u);
      ++saturated;
    } else {
      FAIL() << "unexpected frame type";
    }
  }
  EXPECT_GE(saturated, 1);
  EXPECT_GE(pongs, 1);  // Admitted requests still complete.
  EXPECT_GE(server->stats().rejected, 1u);

  // After the storm a retry succeeds: saturation was a soft, retryable
  // condition, not a wedge.
  PingRequest retry;
  retry.echo = 424242;
  ASSERT_TRUE(WriteFrame(fd, MakeFrame(static_cast<std::uint8_t>(
                                           MessageType::kPing),
                                       seq++, retry.Encode())
                                 .ValueOrDie())
                  .ok());
  auto pong = ReadFrame(fd);
  ASSERT_TRUE(pong.ok());
  ASSERT_EQ(static_cast<MessageType>(pong.ValueOrDie().header.type),
            MessageType::kPong);
  auto decoded = PongResponse::Decode(pong.ValueOrDie().payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.ValueOrDie().echo, 424242u);

  ::close(fd);
  server->Stop();
}

TEST(ServerIntegration, StalledPeerTimesOutDeliveryAndReplaysOnReconnect) {
  // A peer that stops reading its socket must stall delivery for at most
  // one send timeout — not block the delivering dispatcher forever. The
  // frames stay in the session backlog and replay on the next Attach.
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // Shrink the pair's buffers so a handful of frames fills them.
  const int small = 8 * 1024;
  ::setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &small, sizeof(small));
  ::setsockopt(fds[1], SOL_SOCKET, SO_RCVBUF, &small, sizeof(small));

  Session session(42, /*max_backlog_frames=*/1024, /*send_timeout_ms=*/50);
  session.Attach(fds[0], 0, false);

  // Deliver well past the socket buffering without ever reading fds[1].
  // Before the timeout hardening this loop blocked inside send() forever.
  const std::vector<std::uint8_t> payload(64 * 1024, 0xaa);
  constexpr std::uint64_t kFrames = 32;
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t last_seq = 0;
  for (std::uint64_t i = 0; i < kFrames; ++i) {
    last_seq = session.Deliver(
        static_cast<std::uint8_t>(MessageType::kSweepResult), payload, i + 1);
  }
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  // Every frame was numbered and retained; the stall cost at most roughly
  // one timeout (after it fires, the connection is dead and later Delivers
  // do not touch the socket at all).
  EXPECT_EQ(last_seq, kFrames);
  EXPECT_FALSE(session.poisoned());
  EXPECT_GT(session.BacklogSize(), 0u);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            5000);
  ::close(fds[0]);
  ::close(fds[1]);

  // Reconnect on a fresh socket: Attach replays the full retained tail.
  int fresh[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fresh), 0);
  std::uint64_t highest_seen = 0;
  std::thread drain([&] {
    std::uint64_t frames_seen = 0;
    while (frames_seen < kFrames + 1) {  // HelloAck + the replayed tail.
      Result<Frame> frame = ReadFrame(fresh[1]);
      if (!frame.ok()) break;
      ++frames_seen;
      highest_seen = std::max(highest_seen, frame.ValueOrDie().header.sequence);
    }
  });
  const Session::AttachResult attach = session.Attach(fresh[0], 0, true);
  drain.join();
  EXPECT_EQ(attach.replayed, kFrames);
  EXPECT_EQ(highest_seen, kFrames);
  ::close(fresh[0]);
  ::close(fresh[1]);
}

TEST(ServerIntegration, MultiDatasetResidencyOverTheWire) {
  const ts::Dataset exact_a = MakeExact(8, 16, 1);
  const ts::Dataset exact_b = MakeExact(6, 20, 2);

  ServerOptions options;
  options.unix_socket_path = SocketPath("multi");
  options.service = MakeServiceOptions(1);
  auto server_or = Server::Start(options);
  ASSERT_TRUE(server_or.ok()) << server_or.status().ToString();
  auto server = std::move(server_or).ValueOrDie();

  Client::Options copts;
  copts.unix_socket_path = options.unix_socket_path;
  copts.token = 5;
  auto client_or = Client::Connect(copts);
  ASSERT_TRUE(client_or.ok());
  auto client = std::move(client_or).ValueOrDie();

  ASSERT_TRUE(client->Bind(MakeBind("alpha", exact_a, 0)).ok());
  ASSERT_TRUE(client->Bind(MakeBind("beta", exact_b, 0)).ok());
  auto list = client->ListDatasets();
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list.ValueOrDie().names,
            (std::vector<std::string>{"alpha", "beta"}));

  // Alternate queries across the two residents; each answers on its own
  // data (different sizes prove the routing).
  QueryRequest query;
  query.measure = WireMeasure::kDust;
  query.query = 0;
  query.k = 3;
  query.dataset = "alpha";
  auto a = client->Knn(query);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  query.dataset = "beta";
  auto b = client->Knn(query);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(a.ValueOrDie().cost.candidates_total, 7u);
  EXPECT_EQ(b.ValueOrDie().cost.candidates_total, 5u);

  // Unknown names and bad query indices fail cleanly over the wire.
  query.dataset = "gamma";
  auto missing = client->Knn(query);
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(client->last_error().code, WireError::kNotFound);

  server->Stop();
}

}  // namespace
}  // namespace uts::server
