// Unit + property tests for Lp distances and DTW (src/distance).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "distance/batch.hpp"
#include "distance/dtw.hpp"
#include "distance/lp.hpp"
#include "prob/rng.hpp"
#include "ts/soa_store.hpp"
#include "ts/store_view.hpp"

namespace uts::distance {
namespace {

std::vector<double> RandomSeries(std::size_t n, std::uint64_t seed) {
  prob::Rng rng(seed);
  std::vector<double> xs(n);
  for (double& v : xs) v = rng.Gaussian();
  return xs;
}

TEST(LpTest, EuclideanKnownValue) {
  const std::vector<double> a{0.0, 0.0};
  const std::vector<double> b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(Euclidean(a, b), 5.0);
  EXPECT_DOUBLE_EQ(SquaredEuclidean(a, b), 25.0);
}

TEST(LpTest, ManhattanAndChebyshev) {
  const std::vector<double> a{1.0, -2.0, 3.0};
  const std::vector<double> b{2.0, 2.0, 0.0};
  EXPECT_DOUBLE_EQ(Manhattan(a, b), 1.0 + 4.0 + 3.0);
  EXPECT_DOUBLE_EQ(Chebyshev(a, b), 4.0);
}

TEST(LpTest, MinkowskiGeneralizes) {
  const std::vector<double> a = RandomSeries(30, 1);
  const std::vector<double> b = RandomSeries(30, 2);
  EXPECT_NEAR(Minkowski(a, b, 1.0), Manhattan(a, b), 1e-10);
  EXPECT_NEAR(Minkowski(a, b, 2.0), Euclidean(a, b), 1e-10);
  // p -> inf approaches Chebyshev from above.
  EXPECT_NEAR(Minkowski(a, b, 64.0), Chebyshev(a, b), 0.05);
}

TEST(LpTest, CheckedVariantsValidate) {
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{1.0};
  EXPECT_FALSE(EuclideanChecked(a, b).ok());
  EXPECT_FALSE(EuclideanChecked({}, {}).ok());
  EXPECT_FALSE(MinkowskiChecked(a, a, 0.5).ok());
  EXPECT_TRUE(EuclideanChecked(a, a).ok());
}

TEST(LpTest, EarlyAbandonMatchesFullWhenUnderThreshold) {
  const std::vector<double> a = RandomSeries(100, 3);
  const std::vector<double> b = RandomSeries(100, 4);
  const double full = SquaredEuclidean(a, b);
  EXPECT_DOUBLE_EQ(SquaredEuclideanEarlyAbandon(a, b, full + 1.0), full);
}

TEST(LpTest, EarlyAbandonExceedsThresholdWhenAbandoning) {
  const std::vector<double> a = RandomSeries(100, 5);
  const std::vector<double> b = RandomSeries(100, 6);
  const double full = SquaredEuclidean(a, b);
  const double result = SquaredEuclideanEarlyAbandon(a, b, full / 4.0);
  EXPECT_GT(result, full / 4.0);
}

// Metric-space properties on random inputs.
class LpMetricProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LpMetricProperties, SymmetryIdentityTriangle) {
  const std::uint64_t seed = GetParam();
  const auto a = RandomSeries(40, seed);
  const auto b = RandomSeries(40, seed + 1000);
  const auto c = RandomSeries(40, seed + 2000);
  EXPECT_DOUBLE_EQ(Euclidean(a, b), Euclidean(b, a));
  EXPECT_DOUBLE_EQ(Euclidean(a, a), 0.0);
  EXPECT_LE(Euclidean(a, c), Euclidean(a, b) + Euclidean(b, c) + 1e-12);
  EXPECT_LE(Manhattan(a, c), Manhattan(a, b) + Manhattan(b, c) + 1e-12);
  EXPECT_LE(Chebyshev(a, c), Chebyshev(a, b) + Chebyshev(b, c) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpMetricProperties,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// -------------------------------------------------------------------- DTW

TEST(DtwTest, IdenticalSeriesHaveZeroDistance) {
  const auto a = RandomSeries(50, 7);
  EXPECT_DOUBLE_EQ(Dtw(a, a), 0.0);
}

TEST(DtwTest, NeverExceedsEuclideanOnEqualLengths) {
  // The diagonal path is always available, so DTW <= L2.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto a = RandomSeries(64, seed);
    const auto b = RandomSeries(64, seed + 77);
    EXPECT_LE(Dtw(a, b), Euclidean(a, b) + 1e-9);
  }
}

TEST(DtwTest, HandlesShiftBetterThanEuclidean) {
  // A shifted pulse: DTW realigns, Euclidean cannot.
  std::vector<double> a(60, 0.0), b(60, 0.0);
  for (int i = 20; i < 30; ++i) a[i] = 5.0;
  for (int i = 25; i < 35; ++i) b[i] = 5.0;
  EXPECT_LT(Dtw(a, b), 0.25 * Euclidean(a, b));
}

TEST(DtwTest, BandZeroEqualsEuclidean) {
  // With radius 0 only the diagonal survives.
  const auto a = RandomSeries(32, 11);
  const auto b = RandomSeries(32, 12);
  DtwOptions options;
  options.band_radius = 0;
  EXPECT_NEAR(Dtw(a, b, options), Euclidean(a, b), 1e-9);
}

TEST(DtwTest, WiderBandNeverIncreasesDistance) {
  const auto a = RandomSeries(48, 13);
  const auto b = RandomSeries(48, 14);
  double prev = std::numeric_limits<double>::infinity();
  for (std::size_t r : {0u, 1u, 2u, 4u, 8u, 16u, 47u}) {
    DtwOptions options;
    options.band_radius = r;
    const double d = Dtw(a, b, options);
    EXPECT_LE(d, prev + 1e-9);
    prev = d;
  }
}

TEST(DtwTest, DifferentLengthsWork) {
  const auto a = RandomSeries(30, 15);
  const auto b = RandomSeries(50, 16);
  const double d = Dtw(a, b);
  EXPECT_GT(d, 0.0);
  EXPECT_TRUE(std::isfinite(d));
  // Band narrower than the length gap is widened automatically.
  DtwOptions options;
  options.band_radius = 1;
  EXPECT_TRUE(std::isfinite(Dtw(a, b, options)));
}

TEST(DtwTest, SymmetricInArguments) {
  const auto a = RandomSeries(40, 17);
  const auto b = RandomSeries(40, 18);
  EXPECT_NEAR(Dtw(a, b), Dtw(b, a), 1e-9);
}

TEST(DtwTest, EmptyVersusNonEmptyIsInfinite) {
  // Regression: this used to return 0.0 — a false perfect match that would
  // rank an empty series as everyone's nearest neighbor.
  const auto a = RandomSeries(16, 22);
  const std::vector<double> empty;
  EXPECT_TRUE(std::isinf(Dtw(empty, a)));
  EXPECT_TRUE(std::isinf(Dtw(a, empty)));
  EXPECT_GT(Dtw(empty, a), 0.0);  // +inf, not -inf
}

TEST(DtwTest, BothEmptyIsZero) {
  const std::vector<double> empty;
  EXPECT_DOUBLE_EQ(Dtw(empty, empty), 0.0);
}

TEST(DtwGenericTest, CustomLocalCost) {
  // With local cost == 1 everywhere, DTW counts the shortest path length:
  // max(n, m) cells.
  const double total = DtwGeneric(4, 7, [](std::size_t, std::size_t) {
    return 1.0;
  });
  EXPECT_DOUBLE_EQ(total, 7.0);
}

TEST(DtwGenericTest, SingleElementSequences) {
  const double total = DtwGeneric(1, 1, [](std::size_t, std::size_t) {
    return 2.5;
  });
  EXPECT_DOUBLE_EQ(total, 2.5);
}

// -------------------------------------------------------------- LB_Keogh

TEST(EnvelopeTest, ZeroRadiusIsIdentity) {
  const auto a = RandomSeries(20, 19);
  const Envelope env = BuildEnvelope(a, 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(env.lower[i], a[i]);
    EXPECT_DOUBLE_EQ(env.upper[i], a[i]);
  }
}

TEST(EnvelopeTest, EnvelopeContainsSeries) {
  const auto a = RandomSeries(64, 20);
  for (std::size_t r : {1u, 3u, 10u}) {
    const Envelope env = BuildEnvelope(a, r);
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_LE(env.lower[i], a[i]);
      EXPECT_GE(env.upper[i], a[i]);
    }
  }
}

class LbKeoghProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LbKeoghProperty, LowerBoundsBandedDtw) {
  const std::size_t radius = GetParam();
  for (std::uint64_t seed = 100; seed < 108; ++seed) {
    const auto q = RandomSeries(48, seed);
    const auto c = RandomSeries(48, seed + 500);
    const Envelope env = BuildEnvelope(q, radius);
    DtwOptions options;
    options.band_radius = radius;
    const auto lb = LbKeogh(env, c);
    ASSERT_TRUE(lb.ok()) << lb.status();
    EXPECT_LE(lb.ValueOrDie(), Dtw(q, c, options) + 1e-9)
        << "radius=" << radius << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Radii, LbKeoghProperty,
                         ::testing::Values(0u, 1u, 2u, 5u, 12u));

TEST(LbKeoghTest, ZeroWhenCandidateInsideEnvelope) {
  const auto q = RandomSeries(32, 21);
  const Envelope env = BuildEnvelope(q, 3);
  // The query itself is inside its own envelope.
  const auto lb = LbKeogh(env, q);
  ASSERT_TRUE(lb.ok()) << lb.status();
  EXPECT_DOUBLE_EQ(lb.ValueOrDie(), 0.0);
}

TEST(LbKeoghTest, LengthMismatchIsCheckedError) {
  // Regression: a mismatched candidate used to be a debug-only assert and
  // read out of bounds in release builds. Now it is a checked error in
  // every build type (this test runs in both Debug and Release CI configs).
  const auto q = RandomSeries(32, 23);
  const Envelope env = BuildEnvelope(q, 2);
  const auto shorter = RandomSeries(16, 24);
  const auto longer = RandomSeries(64, 25);
  EXPECT_FALSE(LbKeogh(env, shorter).ok());
  EXPECT_FALSE(LbKeogh(env, longer).ok());
  EXPECT_FALSE(LbKeogh(env, std::vector<double>{}).ok());
  // Matching lengths still succeed.
  EXPECT_TRUE(LbKeogh(env, RandomSeries(32, 26)).ok());
}

// ------------------------------------------------- batch kernels (SoA)

ts::SoaStore RandomStore(std::size_t rows, std::size_t stride,
                         std::uint64_t seed) {
  std::vector<double> values;
  for (std::size_t r = 0; r < rows; ++r) {
    const auto row = RandomSeries(stride, seed + r);
    values.insert(values.end(), row.begin(), row.end());
  }
  return ts::SoaStore::FromPacked(std::move(values), stride).ValueOrDie();
}

// Row values through the pinned view API (the only row access consumers
// have); copied out so the pin does not have to outlive the comparison.
std::vector<double> RowCopy(const ts::SoaStore& store, std::size_t i) {
  const ts::StoreView view(store);
  const auto pin = ts::PinRowOrAbort(view, i);
  return {pin.row().begin(), pin.row().end()};
}

// Resident stores expose exactly one block whose pin is a pointer copy into
// store-owned storage, so the returned RowBlock outlives the pin guard.
ts::RowBlock Block(const ts::SoaStore& store) {
  const ts::StoreView view(store);
  return ts::PinOrAbort(view, 0).block();
}

TEST(BatchKernelTest, BitIdenticalToScalarKernelsRowByRow) {
  const ts::SoaStore store = RandomStore(37, 29, 500);
  const auto query = RandomSeries(29, 999);
  const std::size_t n = store.rows();
  std::vector<double> out(n);

  SquaredEuclideanBatch(query, store, out);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(out[i], SquaredEuclidean(query, RowCopy(store, i))) << i;
  }
  EuclideanBatch(query, store, out);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(out[i], Euclidean(query, RowCopy(store, i))) << i;
  }
  LpBatch(query, store, 1.0, out);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(out[i], Manhattan(query, RowCopy(store, i))) << i;
  }
  LpBatch(query, store, 2.0, out);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(out[i], Euclidean(query, RowCopy(store, i))) << i;
  }
  LpBatch(query, store, 3.0, out);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(out[i], Minkowski(query, RowCopy(store, i), 3.0)) << i;
  }
}

TEST(BatchKernelTest, RangeVariantCoversArbitrarySubranges) {
  const ts::SoaStore store = RandomStore(40, 16, 600);
  const auto query = RandomSeries(16, 601);
  std::vector<double> full(store.rows());
  SquaredEuclideanBatch(query, store, full);
  for (auto [begin, end] : {std::pair<std::size_t, std::size_t>{0, 40},
                            {7, 40}, {0, 9}, {13, 14}, {20, 20}}) {
    std::vector<double> part(end - begin, -1.0);
    SquaredEuclideanBatchRange(query, Block(store), begin, end, part);
    for (std::size_t i = begin; i < end; ++i) {
      EXPECT_EQ(part[i - begin], full[i]) << begin << ":" << end;
    }
  }
}

TEST(BatchKernelTest, EarlyAbandonIsExactForSquaredThresholdDecisions) {
  const ts::SoaStore store = RandomStore(50, 24, 700);
  const auto query = RandomSeries(24, 701);
  std::vector<double> exact(store.rows());
  SquaredEuclideanBatch(query, store, exact);
  std::vector<double> sorted = exact;
  std::sort(sorted.begin(), sorted.end());
  const double threshold_sq = sorted[sorted.size() / 3];
  std::vector<double> abandoned(store.rows());
  SquaredEuclideanEarlyAbandonBatch(query, store, threshold_sq, abandoned);
  for (std::size_t i = 0; i < store.rows(); ++i) {
    EXPECT_EQ(abandoned[i] <= threshold_sq, exact[i] <= threshold_sq) << i;
    if (exact[i] <= threshold_sq) {
      EXPECT_EQ(abandoned[i], exact[i]) << i;
    }
  }
}

TEST(BatchKernelTest, MultiQueryBitIdenticalIncludingRemainderTail) {
  // 7 queries: one full 4-query block plus a 3-query scalar tail.
  const ts::SoaStore store = RandomStore(23, 19, 800);
  std::vector<double> out(7 * 23);
  const ts::RowBlock block = Block(store);
  SquaredEuclideanMultiQueryBatch(block, 2, 9, block, 0, 23, out, 23);
  for (std::size_t q = 2; q < 9; ++q) {
    for (std::size_t r = 0; r < 23; ++r) {
      EXPECT_EQ(out[(q - 2) * 23 + r],
                SquaredEuclidean(RowCopy(store, q), RowCopy(store, r)))
          << q << "," << r;
    }
  }
}

}  // namespace
}  // namespace uts::distance
