// Unit + property tests for PROUD (src/measures/proud).
//
// The key correctness oracle is simulation: PROUD's closed-form moments of
// Σ D_i² must match Monte Carlo estimates over actually-sampled errors, and
// its normal-approximation match probability must track the empirical
// probability.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "measures/proud.hpp"
#include "prob/rng.hpp"
#include "prob/stats.hpp"
#include "uncertain/perturb.hpp"

namespace uts::measures {
namespace {

std::vector<double> RandomObs(std::size_t n, std::uint64_t seed) {
  prob::Rng rng(seed);
  std::vector<double> xs(n);
  for (double& v : xs) v = rng.Gaussian();
  return xs;
}

TEST(ProudStatsTest, ZeroSigmaGivesDeterministicDistance) {
  Proud proud({.tau = 0.9, .sigma = 0.0});
  const std::vector<double> x{1.0, 2.0, 3.0};
  const std::vector<double> y{2.0, 2.0, 5.0};
  const ProudStats stats = proud.DistanceStats(x, y);
  EXPECT_DOUBLE_EQ(stats.mean_sq, 1.0 + 0.0 + 4.0);
  EXPECT_DOUBLE_EQ(stats.var_sq, 0.0);
  // Match probability becomes a sharp threshold on the true distance.
  EXPECT_DOUBLE_EQ(proud.MatchProbability(x, y, std::sqrt(5.0) + 0.01), 1.0);
  EXPECT_DOUBLE_EQ(proud.MatchProbability(x, y, std::sqrt(5.0) - 0.01), 0.0);
}

TEST(ProudStatsTest, MomentsMatchClosedForm) {
  // For one point with mu and v = 2 sigma^2:
  // E[D^2] = mu^2 + v, Var[D^2] = 2v^2 + 4 mu^2 v.
  Proud proud({.tau = 0.5, .sigma = 0.6});
  const double v = 2.0 * 0.36;
  const std::vector<double> x{1.5};
  const std::vector<double> y{0.5};  // mu = 1
  const ProudStats stats = proud.DistanceStats(x, y);
  EXPECT_NEAR(stats.mean_sq, 1.0 + v, 1e-12);
  EXPECT_NEAR(stats.var_sq, 2.0 * v * v + 4.0 * v, 1e-12);
}

TEST(ProudStatsTest, MomentsMatchMonteCarlo) {
  const double sigma = 0.5;
  Proud proud({.tau = 0.5, .sigma = sigma});
  const auto x = RandomObs(20, 1);
  const auto y = RandomObs(20, 2);
  const ProudStats stats = proud.DistanceStats(x, y);

  prob::Rng rng(3);
  prob::RunningStats mc;
  constexpr int kTrials = 60000;
  for (int trial = 0; trial < kTrials; ++trial) {
    double sum = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      // Both series carry independent N(0, sigma^2) error.
      const double d = (x[i] + rng.Gaussian(0.0, sigma)) -
                       (y[i] + rng.Gaussian(0.0, sigma));
      sum += d * d;
    }
    mc.Add(sum);
  }
  EXPECT_NEAR(mc.Mean(), stats.mean_sq, 0.02 * stats.mean_sq);
  EXPECT_NEAR(mc.VarianceSample(), stats.var_sq, 0.06 * stats.var_sq);
}

TEST(ProudProbabilityTest, MonotoneInEpsilon) {
  Proud proud({.tau = 0.9, .sigma = 0.8});
  const auto x = RandomObs(30, 4);
  const auto y = RandomObs(30, 5);
  double prev = 0.0;
  for (double eps = 0.0; eps <= 20.0; eps += 0.5) {
    const double p = proud.MatchProbability(x, y, eps);
    EXPECT_GE(p, prev - 1e-12);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    prev = p;
  }
  EXPECT_NEAR(proud.MatchProbability(x, y, 100.0), 1.0, 1e-9);
  // At ε = 0 the normal approximation leaves a small left-tail mass
  // (z ≈ -(Σ E[D²]) / sd, around -5 here), not an exact zero.
  EXPECT_LT(proud.MatchProbability(x, y, 0.0), 1e-3);
}

TEST(ProudProbabilityTest, TracksEmpiricalProbability) {
  const double sigma = 0.4;
  Proud proud({.tau = 0.5, .sigma = sigma});
  const auto x = RandomObs(64, 6);
  const auto y = RandomObs(64, 7);

  // Empirical Pr(dist <= eps) at a few epsilons.
  prob::Rng rng(8);
  constexpr int kTrials = 20000;
  for (double eps : {6.0, 8.0, 10.0, 12.0}) {
    int hits = 0;
    prob::Rng trial_rng(rng.Next());
    for (int t = 0; t < kTrials; ++t) {
      double sum = 0.0;
      for (std::size_t i = 0; i < x.size(); ++i) {
        const double d = (x[i] + trial_rng.Gaussian(0.0, sigma)) -
                         (y[i] + trial_rng.Gaussian(0.0, sigma));
        sum += d * d;
      }
      if (sum <= eps * eps) ++hits;
    }
    const double empirical = double(hits) / kTrials;
    const double model = proud.MatchProbability(x, y, eps);
    EXPECT_NEAR(model, empirical, 0.03) << "eps=" << eps;
  }
}

TEST(ProudProbabilityTest, EpsNormStrictlyMonotoneInEpsilon) {
  // ε_norm = (ε² − E[dist]) / sqrt(Var[dist]) (Eq. 8–11) must be strictly
  // increasing in ε for any fixed pair — the property the PRQ decision and
  // the τ-threshold calibration rest on.
  Proud proud({.tau = 0.5, .sigma = 0.7});
  const auto x = RandomObs(24, 23);
  const auto y = RandomObs(24, 24);
  const ProudStats stats = proud.DistanceStats(x, y);
  ASSERT_GT(stats.var_sq, 0.0);
  double prev = -std::numeric_limits<double>::infinity();
  for (double eps = 0.0; eps <= 25.0; eps += 0.25) {
    const double eps_norm =
        (eps * eps - stats.mean_sq) / std::sqrt(stats.var_sq);
    EXPECT_GT(eps_norm, prev) << "eps=" << eps;
    prev = eps_norm;
  }
}

TEST(ProudDecisionTest, DecisionMonotoneInTau) {
  // Raising τ can only shrink the accepted set: for every ε, a match at
  // τ_hi implies a match at every τ_lo ≤ τ_hi. Exercised through the
  // DecideFromStats helper the batched engine shares with the scalar path.
  const auto x = RandomObs(24, 25);
  const auto y = RandomObs(24, 26);
  Proud proud({.tau = 0.5, .sigma = 0.6});
  const ProudStats stats = proud.DistanceStats(x, y);
  const double taus[] = {0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99};
  for (double eps = 0.5; eps <= 15.0; eps += 0.5) {
    bool prev_matched = true;  // τ = 0⁺ accepts whenever any τ does
    for (double tau : taus) {
      const bool matched = Proud::DecideFromStats(stats, eps, tau);
      EXPECT_TRUE(prev_matched || !matched)
          << "non-monotone at eps=" << eps << " tau=" << tau;
      prev_matched = matched;
    }
  }
}

TEST(ProudDecisionTest, DecideFromStatsIsTheMatchesDecision) {
  const auto x = RandomObs(20, 27);
  const auto y = RandomObs(20, 28);
  for (double tau : {0.2, 0.5, 0.8}) {
    Proud proud({.tau = tau, .sigma = 0.5});
    for (double eps = 1.0; eps < 12.0; eps += 0.5) {
      EXPECT_EQ(proud.Matches(x, y, eps),
                Proud::DecideFromStats(proud.DistanceStats(x, y), eps, tau));
    }
  }
}

TEST(ProudDecisionTest, MatchesIffProbabilityAtLeastTau) {
  const auto x = RandomObs(30, 9);
  const auto y = RandomObs(30, 10);
  for (double tau : {0.1, 0.5, 0.9}) {
    Proud proud({.tau = tau, .sigma = 0.7});
    for (double eps = 1.0; eps < 15.0; eps += 0.7) {
      const bool decision = proud.Matches(x, y, eps);
      const double p = proud.MatchProbability(x, y, eps);
      EXPECT_EQ(decision, p >= tau - 1e-12)
          << "tau=" << tau << " eps=" << eps << " p=" << p;
    }
  }
}

TEST(ProudDecisionTest, EpsilonLimitIsNormalQuantile) {
  Proud proud({.tau = 0.975, .sigma = 1.0});
  EXPECT_NEAR(proud.EpsilonLimit(), 1.959963984540054, 1e-9);
}

TEST(ProudDecisionTest, HigherTauIsStricter) {
  const auto x = RandomObs(30, 11);
  const auto y = RandomObs(30, 12);
  Proud lenient({.tau = 0.2, .sigma = 0.7});
  Proud strict({.tau = 0.95, .sigma = 0.7});
  int lenient_matches = 0, strict_matches = 0;
  for (double eps = 1.0; eps < 15.0; eps += 0.25) {
    if (lenient.Matches(x, y, eps)) ++lenient_matches;
    if (strict.Matches(x, y, eps)) ++strict_matches;
  }
  EXPECT_GE(lenient_matches, strict_matches);
}

// ---------------------------------------------------- general moment path

TEST(ProudGeneralTest, AgreesWithConstantSigmaForNormalErrors) {
  const double sigma = 0.9;
  const auto x_obs = RandomObs(25, 13);
  const auto y_obs = RandomObs(25, 14);

  std::vector<prob::ErrorDistributionPtr> ex(25, prob::MakeNormalError(sigma));
  std::vector<prob::ErrorDistributionPtr> ey(25, prob::MakeNormalError(sigma));
  uncertain::UncertainSeries x(x_obs, ex);
  uncertain::UncertainSeries y(y_obs, ey);

  Proud proud({.tau = 0.5, .sigma = sigma});
  const ProudStats fast = proud.DistanceStats(x_obs, y_obs);
  const ProudStats general = Proud::DistanceStatsGeneral(x, y);
  EXPECT_NEAR(general.mean_sq, fast.mean_sq, 1e-9);
  EXPECT_NEAR(general.var_sq, fast.var_sq, 1e-9);
}

TEST(ProudGeneralTest, SkewedErrorsMatchMonteCarlo) {
  // Exponential errors: the general moment propagation must still match
  // simulation (this is what "full distribution knowledge" buys).
  const double sigma = 0.6;
  const auto x_obs = RandomObs(16, 15);
  const auto y_obs = RandomObs(16, 16);
  std::vector<prob::ErrorDistributionPtr> ex(16,
                                             prob::MakeExponentialError(sigma));
  std::vector<prob::ErrorDistributionPtr> ey(16,
                                             prob::MakeExponentialError(sigma));
  uncertain::UncertainSeries x(x_obs, ex);
  uncertain::UncertainSeries y(y_obs, ey);

  const ProudStats stats = Proud::DistanceStatsGeneral(x, y);
  prob::Rng rng(17);
  prob::RunningStats mc;
  auto err = prob::MakeExponentialError(sigma);
  for (int t = 0; t < 60000; ++t) {
    double sum = 0.0;
    for (std::size_t i = 0; i < x_obs.size(); ++i) {
      const double d =
          (x_obs[i] + err->Sample(rng)) - (y_obs[i] + err->Sample(rng));
      sum += d * d;
    }
    mc.Add(sum);
  }
  EXPECT_NEAR(mc.Mean(), stats.mean_sq, 0.02 * stats.mean_sq);
  EXPECT_NEAR(mc.VarianceSample(), stats.var_sq, 0.08 * stats.var_sq);
}

TEST(ProudGeneralTest, MixedSigmaSeriesMatchesMonteCarlo) {
  const auto x_obs = RandomObs(20, 18);
  const auto y_obs = RandomObs(20, 19);
  std::vector<prob::ErrorDistributionPtr> ex, ey;
  for (std::size_t i = 0; i < 20; ++i) {
    ex.push_back(prob::MakeNormalError(i % 5 == 0 ? 1.0 : 0.4));
    ey.push_back(prob::MakeNormalError(i % 5 == 0 ? 1.0 : 0.4));
  }
  uncertain::UncertainSeries x(x_obs, ex);
  uncertain::UncertainSeries y(y_obs, ey);

  const ProudStats stats = Proud::DistanceStatsGeneral(x, y);
  prob::Rng rng(20);
  prob::RunningStats mc;
  for (int t = 0; t < 60000; ++t) {
    double sum = 0.0;
    for (std::size_t i = 0; i < 20; ++i) {
      const double s = i % 5 == 0 ? 1.0 : 0.4;
      const double d = (x_obs[i] + rng.Gaussian(0.0, s)) -
                       (y_obs[i] + rng.Gaussian(0.0, s));
      sum += d * d;
    }
    mc.Add(sum);
  }
  EXPECT_NEAR(mc.Mean(), stats.mean_sq, 0.02 * stats.mean_sq);
  EXPECT_NEAR(mc.VarianceSample(), stats.var_sq, 0.08 * stats.var_sq);
}

TEST(ProudGeneralTest, ProbabilityGeneralMonotoneAndBounded) {
  const auto x_obs = RandomObs(20, 21);
  const auto y_obs = RandomObs(20, 22);
  std::vector<prob::ErrorDistributionPtr> ex(20, prob::MakeUniformError(0.5));
  std::vector<prob::ErrorDistributionPtr> ey(20, prob::MakeUniformError(0.5));
  uncertain::UncertainSeries x(x_obs, ex);
  uncertain::UncertainSeries y(y_obs, ey);
  double prev = 0.0;
  for (double eps = 0.0; eps < 15.0; eps += 0.5) {
    const double p = Proud::MatchProbabilityGeneral(x, y, eps);
    EXPECT_GE(p, prev - 1e-12);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    prev = p;
  }
}

}  // namespace
}  // namespace uts::measures
