// Unit tests for UCR-format and CSV I/O (src/io).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "datagen/registry.hpp"
#include "io/csv.hpp"
#include "io/ucr_io.hpp"

namespace uts::io {
namespace {

TEST(UcrReadTest, ParsesCommaSeparated) {
  std::istringstream in("1,0.5,1.5,2.5\n2,3.5,4.5,5.5\n");
  auto d = ReadUcrStream(in, "t");
  ASSERT_TRUE(d.ok()) << d.status();
  const ts::Dataset& dataset = d.ValueOrDie();
  ASSERT_EQ(dataset.size(), 2u);
  EXPECT_EQ(dataset[0].label(), 1);
  EXPECT_EQ(dataset[1].label(), 2);
  EXPECT_DOUBLE_EQ(dataset[0][0], 0.5);
  EXPECT_DOUBLE_EQ(dataset[1][2], 5.5);
}

TEST(UcrReadTest, ParsesWhitespaceSeparated) {
  std::istringstream in(" 1  0.5 1.5\n-1\t2.0\t3.0\n");
  auto d = ReadUcrStream(in, "t");
  ASSERT_TRUE(d.ok()) << d.status();
  EXPECT_EQ(d.ValueOrDie()[1].label(), -1);
  EXPECT_DOUBLE_EQ(d.ValueOrDie()[1][1], 3.0);
}

TEST(UcrReadTest, FloatLabelsAreRounded) {
  // UCR files sometimes write labels as "1.0000000e+00".
  std::istringstream in("1.0000000e+00,2.5,3.5\n");
  auto d = ReadUcrStream(in, "t");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.ValueOrDie()[0].label(), 1);
}

TEST(UcrReadTest, SkipsBlankLines) {
  std::istringstream in("1,1.0,2.0\n\n\n2,3.0,4.0\n");
  auto d = ReadUcrStream(in, "t");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.ValueOrDie().size(), 2u);
}

TEST(UcrReadTest, RejectsRaggedRows) {
  std::istringstream in("1,1.0,2.0\n2,3.0\n");
  auto d = ReadUcrStream(in, "t");
  EXPECT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kCorruption);
}

TEST(UcrReadTest, RejectsGarbageFields) {
  std::istringstream in("1,1.0,banana\n");
  EXPECT_EQ(ReadUcrStream(in, "t").status().code(), StatusCode::kCorruption);
}

TEST(UcrReadTest, RejectsLabelOnlyLines) {
  std::istringstream in("1\n");
  EXPECT_FALSE(ReadUcrStream(in, "t").ok());
}

TEST(UcrReadTest, RejectsEmptyInput) {
  std::istringstream in("");
  EXPECT_FALSE(ReadUcrStream(in, "t").ok());
}

TEST(UcrReadTest, MissingFileGivesIOError) {
  EXPECT_EQ(ReadUcrFile("/nonexistent/file.txt", "t").status().code(),
            StatusCode::kIOError);
}

TEST(UcrRoundTripTest, WriteThenReadPreservesData) {
  // Generate, write, re-read, compare (the real-data drop-in path).
  auto spec = datagen::SpecByName("GunPoint").ValueOrDie();
  const ts::Dataset original = datagen::GenerateScaled(spec, 1, 10, 32);

  std::stringstream buffer;
  ASSERT_TRUE(WriteUcrStream(original, buffer).ok());
  auto restored = ReadUcrStream(buffer, "GunPoint");
  ASSERT_TRUE(restored.ok()) << restored.status();
  const ts::Dataset& d = restored.ValueOrDie();
  ASSERT_EQ(d.size(), original.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(d[i].label(), original[i].label());
    ASSERT_EQ(d[i].size(), original[i].size());
    for (std::size_t t = 0; t < d[i].size(); ++t) {
      // Regression: the stream writer used to inherit the caller's default
      // ~6-digit precision, making direct stream round-trips lossy. It now
      // pins 17 significant digits itself: bit-exact.
      EXPECT_DOUBLE_EQ(d[i][t], original[i][t]);
    }
  }
}

TEST(UcrRoundTripTest, StreamWriterDoesNotDependOnCallerPrecision) {
  auto spec = datagen::SpecByName("GunPoint").ValueOrDie();
  const ts::Dataset original = datagen::GenerateScaled(spec, 1, 4, 16);

  std::stringstream buffer;
  buffer.precision(3);  // adversarial caller state
  ASSERT_TRUE(WriteUcrStream(original, buffer).ok());
  // The caller's precision is restored after the write.
  EXPECT_EQ(buffer.precision(), 3);
  auto restored = ReadUcrStream(buffer, "t");
  ASSERT_TRUE(restored.ok()) << restored.status();
  for (std::size_t i = 0; i < original.size(); ++i) {
    for (std::size_t t = 0; t < original[i].size(); ++t) {
      EXPECT_DOUBLE_EQ(restored.ValueOrDie()[i][t], original[i][t]);
    }
  }
}

TEST(UcrRoundTripTest, FileRoundTripIsLossless) {
  auto spec = datagen::SpecByName("Coffee").ValueOrDie();
  const ts::Dataset original = datagen::GenerateScaled(spec, 2, 6, 16);
  const std::string path = testing::TempDir() + "/uts_io_test.ucr";
  ASSERT_TRUE(WriteUcrFile(original, path).ok());
  auto restored = ReadUcrFile(path, "Coffee");
  ASSERT_TRUE(restored.ok());
  for (std::size_t i = 0; i < original.size(); ++i) {
    for (std::size_t t = 0; t < original[i].size(); ++t) {
      // WriteUcrFile uses 17 significant digits: bit-exact round trip.
      EXPECT_DOUBLE_EQ(restored.ValueOrDie()[i][t], original[i][t]);
    }
  }
  std::remove(path.c_str());
}

TEST(UcrPairTest, JoinsTrainAndTest) {
  const std::string train = testing::TempDir() + "/uts_train.ucr";
  const std::string test = testing::TempDir() + "/uts_test.ucr";
  {
    std::ofstream t(train);
    t << "1,1.0,2.0\n";
    std::ofstream e(test);
    e << "2,3.0,4.0\n2,5.0,6.0\n";
  }
  auto d = ReadUcrPair(train, test, "joined");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.ValueOrDie().size(), 3u);
  EXPECT_EQ(d.ValueOrDie().name(), "joined");
  std::remove(train.c_str());
  std::remove(test.c_str());
}

// ---------------------------------------------------------------------- CSV

TEST(CsvTest, HeaderAndRows) {
  CsvWriter csv({"sigma", "f1"});
  csv.AddNumericRow({0.2, 0.91});
  csv.AddNumericRow({0.4, 0.85});
  EXPECT_EQ(csv.ToString(), "sigma,f1\n0.2,0.91\n0.4,0.85\n");
  EXPECT_EQ(csv.size(), 2u);
}

TEST(CsvTest, KeyedRows) {
  CsvWriter csv({"dataset", "f1", "precision"});
  csv.AddKeyedRow("GunPoint", {0.8, 0.75});
  EXPECT_EQ(csv.ToString(), "dataset,f1,precision\nGunPoint,0.8,0.75\n");
}

TEST(CsvTest, EscapesSpecialCharacters) {
  CsvWriter csv({"name", "value"});
  csv.AddRow({"with,comma", "with\"quote"});
  EXPECT_EQ(csv.ToString(),
            "name,value\n\"with,comma\",\"with\"\"quote\"\n");
}

TEST(CsvTest, WritesFile) {
  const std::string path = testing::TempDir() + "/uts_csv_test.csv";
  CsvWriter csv({"a"});
  csv.AddNumericRow({1.0});
  ASSERT_TRUE(csv.WriteFile(path).ok());
  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), "a\n1\n");
  std::remove(path.c_str());
}

TEST(CsvTest, InvalidPathFails) {
  CsvWriter csv({"a"});
  EXPECT_EQ(csv.WriteFile("/nonexistent/dir/x.csv").code(),
            StatusCode::kIOError);
}

}  // namespace
}  // namespace uts::io
