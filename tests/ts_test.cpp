// Unit tests for the time-series substrate (src/ts: container, normalize,
// resample, dataset).

#include <gtest/gtest.h>

#include <cmath>

#include "prob/rng.hpp"
#include "ts/dataset.hpp"
#include "ts/normalize.hpp"
#include "ts/resample.hpp"
#include "ts/time_series.hpp"

namespace uts::ts {
namespace {

TEST(TimeSeriesTest, BasicAccessors) {
  TimeSeries s({1.0, 2.0, 3.0}, 7, "unit/0");
  EXPECT_EQ(s.size(), 3u);
  EXPECT_FALSE(s.empty());
  EXPECT_DOUBLE_EQ(s[1], 2.0);
  EXPECT_EQ(s.label(), 7);
  EXPECT_EQ(s.id(), "unit/0");
}

TEST(TimeSeriesTest, DefaultHasNoLabel) {
  TimeSeries s({1.0});
  EXPECT_EQ(s.label(), TimeSeries::kNoLabel);
}

TEST(TimeSeriesTest, MutationThroughIndexAndVector) {
  TimeSeries s({1.0, 2.0});
  s[0] = 5.0;
  s.mutable_values().push_back(9.0);
  EXPECT_DOUBLE_EQ(s[0], 5.0);
  EXPECT_EQ(s.size(), 3u);
}

TEST(TimeSeriesTest, EqualityIgnoresId) {
  TimeSeries a({1.0, 2.0}, 1, "a");
  TimeSeries b({1.0, 2.0}, 1, "b");
  TimeSeries c({1.0, 2.0}, 2, "a");
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(TimeSeriesTest, RangeIteration) {
  TimeSeries s({1.0, 2.0, 3.0});
  double sum = 0.0;
  for (double v : s) sum += v;
  EXPECT_DOUBLE_EQ(sum, 6.0);
}

// ----------------------------------------------------------- normalization

TEST(NormalizeTest, MomentsOfKnownSeries) {
  TimeSeries s({1.0, 3.0, 5.0, 7.0});
  const SeriesMoments m = ComputeMoments(s);
  EXPECT_DOUBLE_EQ(m.mean, 4.0);
  EXPECT_DOUBLE_EQ(m.stddev, std::sqrt(5.0));
}

TEST(NormalizeTest, ZNormalizedHasZeroMeanUnitVariance) {
  prob::Rng rng(3);
  std::vector<double> values;
  for (int i = 0; i < 200; ++i) values.push_back(rng.Gaussian(10.0, 4.0));
  TimeSeries s(std::move(values));
  ZNormalizeInPlace(s);
  const SeriesMoments m = ComputeMoments(s);
  EXPECT_NEAR(m.mean, 0.0, 1e-12);
  EXPECT_NEAR(m.stddev, 1.0, 1e-12);
}

TEST(NormalizeTest, ConstantSeriesIsCenteredOnly) {
  TimeSeries s({5.0, 5.0, 5.0});
  ZNormalizeInPlace(s);
  for (double v : s) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(NormalizeTest, CopyVariantLeavesOriginalUntouched) {
  TimeSeries s({1.0, 2.0, 3.0});
  const TimeSeries z = ZNormalized(s);
  EXPECT_DOUBLE_EQ(s[0], 1.0);
  EXPECT_NEAR(ComputeMoments(z).mean, 0.0, 1e-12);
  EXPECT_EQ(z.label(), s.label());
}

TEST(NormalizeTest, MinMaxMapsOntoRange) {
  TimeSeries s({2.0, 4.0, 6.0});
  MinMaxNormalizeInPlace(s, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(s[0], 0.0);
  EXPECT_DOUBLE_EQ(s[1], 0.5);
  EXPECT_DOUBLE_EQ(s[2], 1.0);
}

TEST(NormalizeTest, MinMaxConstantMapsToMidpoint) {
  TimeSeries s({3.0, 3.0});
  MinMaxNormalizeInPlace(s, -1.0, 1.0);
  EXPECT_DOUBLE_EQ(s[0], 0.0);
  EXPECT_DOUBLE_EQ(s[1], 0.0);
}

// -------------------------------------------------------------- resampling

TEST(ResampleTest, IdentityWhenLengthUnchanged) {
  TimeSeries s({1.0, 5.0, 2.0, 8.0});
  auto r = LinearResample(s, 4);
  ASSERT_TRUE(r.ok());
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(r.ValueOrDie()[i], s[i], 1e-12);
  }
}

TEST(ResampleTest, EndpointsArePreserved) {
  TimeSeries s({3.0, -1.0, 4.0, 1.0, 5.0});
  for (std::size_t len : {2u, 7u, 50u, 1000u}) {
    auto r = LinearResample(s, len);
    ASSERT_TRUE(r.ok());
    EXPECT_DOUBLE_EQ(r.ValueOrDie()[0], 3.0);
    EXPECT_DOUBLE_EQ(r.ValueOrDie()[len - 1], 5.0);
  }
}

TEST(ResampleTest, UpsampleOfLineIsExact) {
  // Linear interpolation reproduces a linear ramp exactly at any length.
  std::vector<double> ramp;
  for (int i = 0; i < 10; ++i) ramp.push_back(2.0 * i);
  auto r = LinearResample(TimeSeries(std::move(ramp)), 100);
  ASSERT_TRUE(r.ok());
  const auto& v = r.ValueOrDie();
  for (std::size_t i = 0; i < 100; ++i) {
    const double expected = 18.0 * static_cast<double>(i) / 99.0;
    EXPECT_NEAR(v[i], expected, 1e-12);
  }
}

TEST(ResampleTest, DownUpRoundTripApproximatesSmoothSeries) {
  std::vector<double> smooth;
  for (int i = 0; i < 256; ++i) smooth.push_back(std::sin(i * 0.05));
  TimeSeries s(std::move(smooth));
  auto down = LinearResample(s, 64);
  ASSERT_TRUE(down.ok());
  auto up = LinearResample(down.ValueOrDie(), 256);
  ASSERT_TRUE(up.ok());
  for (std::size_t i = 0; i < 256; ++i) {
    EXPECT_NEAR(up.ValueOrDie()[i], s[i], 0.01);
  }
}

TEST(ResampleTest, PreservesMetadata) {
  TimeSeries s({1.0, 2.0, 3.0}, 4, "x/1");
  auto r = LinearResample(s, 7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().label(), 4);
  EXPECT_EQ(r.ValueOrDie().id(), "x/1");
}

TEST(ResampleTest, InputValidation) {
  EXPECT_FALSE(LinearResample(TimeSeries({1.0}), 10).ok());
  EXPECT_FALSE(LinearResample(TimeSeries({1.0, 2.0}), 1).ok());
}

TEST(DecimateTest, KeepsEveryStrideTh) {
  TimeSeries s({0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0});
  auto d = Decimate(s, 3);
  ASSERT_TRUE(d.ok());
  const auto& v = d.ValueOrDie();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_DOUBLE_EQ(v[1], 3.0);
  EXPECT_DOUBLE_EQ(v[2], 6.0);
}

TEST(DecimateTest, InputValidation) {
  EXPECT_FALSE(Decimate(TimeSeries({1.0}), 0).ok());
  EXPECT_FALSE(Decimate(TimeSeries(), 1).ok());
}

// ----------------------------------------------------------------- dataset

Dataset MakeToyDataset() {
  Dataset d("toy");
  d.Add(TimeSeries({0.0, 0.0, 0.0, 0.0}, 0, "toy/0"));
  d.Add(TimeSeries({1.0, 1.0, 1.0, 1.0}, 1, "toy/1"));
  d.Add(TimeSeries({2.0, 2.0, 2.0, 2.0}, 0, "toy/2"));
  d.Add(TimeSeries({3.0, 3.0, 3.0, 3.0}, 1, "toy/3"));
  return d;
}

TEST(DatasetTest, SizeAndAccess) {
  const Dataset d = MakeToyDataset();
  EXPECT_EQ(d.name(), "toy");
  EXPECT_EQ(d.size(), 4u);
  EXPECT_DOUBLE_EQ(d[2][0], 2.0);
}

TEST(DatasetTest, UniformLengthDetection) {
  Dataset d = MakeToyDataset();
  EXPECT_TRUE(d.HasUniformLength());
  d.Add(TimeSeries({1.0, 2.0}));
  EXPECT_FALSE(d.HasUniformLength());
}

TEST(DatasetTest, ClassHistogram) {
  const auto hist = MakeToyDataset().ClassHistogram();
  EXPECT_EQ(hist.size(), 2u);
  EXPECT_EQ(hist.at(0), 2u);
  EXPECT_EQ(hist.at(1), 2u);
}

TEST(DatasetTest, SummarizeBasics) {
  const DatasetInfo info = MakeToyDataset().Summarize();
  EXPECT_EQ(info.num_series, 4u);
  EXPECT_EQ(info.min_length, 4u);
  EXPECT_EQ(info.max_length, 4u);
  EXPECT_DOUBLE_EQ(info.avg_length, 4.0);
  EXPECT_EQ(info.num_classes, 2u);
  EXPECT_GT(info.avg_pairwise_distance, 0.0);
}

TEST(DatasetTest, TruncatedTakesPrefix) {
  auto t = MakeToyDataset().Truncated(2, 3);
  ASSERT_TRUE(t.ok());
  const Dataset& d = t.ValueOrDie();
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d[0].size(), 3u);
  EXPECT_EQ(d[1].label(), 1);
}

TEST(DatasetTest, TruncatedValidation) {
  EXPECT_FALSE(MakeToyDataset().Truncated(10, 2).ok());
  EXPECT_FALSE(MakeToyDataset().Truncated(2, 9).ok());
  EXPECT_FALSE(MakeToyDataset().Truncated(2, 0).ok());
}

TEST(DatasetTest, PackedCacheLifecycle) {
  Dataset d("p");
  d.Add(TimeSeries({1.0, 2.0}));
  d.Add(TimeSeries({3.0, 4.0}));
  const auto p1 = d.Packed();
  ASSERT_NE(p1, nullptr);
  EXPECT_EQ(p1->rows(), 2u);
  EXPECT_EQ(p1->stride(), 2u);
  EXPECT_EQ(p1->resident_row(1)[0], 3.0);
  // Same snapshot until mutation.
  EXPECT_EQ(d.Packed(), p1);

  // Mutation drops the cache; earlier snapshots stay alive and unchanged.
  d.Add(TimeSeries({5.0, 6.0}));
  const auto p2 = d.Packed();
  ASSERT_NE(p2, nullptr);
  EXPECT_NE(p2, p1);
  EXPECT_EQ(p2->rows(), 3u);
  EXPECT_EQ(p1->rows(), 2u);

  // Non-uniform collections have no packed mirror.
  d.Add(TimeSeries({7.0}));
  EXPECT_EQ(d.Packed(), nullptr);
}

TEST(DatasetTest, MoveResetsSourcePackedCache) {
  Dataset d("m");
  d.Add(TimeSeries({1.0, 2.0}));
  d.Add(TimeSeries({3.0, 4.0}));
  ASSERT_NE(d.Packed(), nullptr);

  Dataset moved(std::move(d));
  // The moved-from dataset must not serve its stale pre-move mirror.
  EXPECT_EQ(d.Packed(), nullptr);  // NOLINT(bugprone-use-after-move)
  ASSERT_NE(moved.Packed(), nullptr);
  EXPECT_EQ(moved.Packed()->rows(), 2u);

  Dataset target("t");
  target = std::move(moved);
  EXPECT_EQ(moved.Packed(), nullptr);  // NOLINT(bugprone-use-after-move)
  ASSERT_NE(target.Packed(), nullptr);
}

TEST(DatasetTest, MergeConcatenates) {
  const Dataset a = MakeToyDataset();
  const Dataset b = MakeToyDataset();
  const Dataset merged = Dataset::Merge("both", a, b);
  EXPECT_EQ(merged.size(), 8u);
  EXPECT_EQ(merged.name(), "both");
  EXPECT_DOUBLE_EQ(merged[5][0], 1.0);
}

TEST(DatasetTest, ZNormalizedCopyNormalizesEverySeries) {
  Dataset d("n");
  d.Add(TimeSeries({1.0, 2.0, 3.0, 4.0}));
  d.Add(TimeSeries({10.0, 30.0, 20.0, 40.0}));
  const Dataset z = d.ZNormalizedCopy();
  for (const auto& s : z) {
    const SeriesMoments m = ComputeMoments(s);
    EXPECT_NEAR(m.mean, 0.0, 1e-12);
    EXPECT_NEAR(m.stddev, 1.0, 1e-12);
  }
  // Original untouched.
  EXPECT_DOUBLE_EQ(d[0][0], 1.0);
}

}  // namespace
}  // namespace uts::ts
