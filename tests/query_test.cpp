// Unit tests for k-NN / range search (src/query).

#include <gtest/gtest.h>

#include <cmath>

#include "distance/lp.hpp"
#include "prob/rng.hpp"
#include "query/search.hpp"

namespace uts::query {
namespace {

ts::Dataset RandomDataset(std::size_t n, std::size_t len, std::uint64_t seed) {
  prob::Rng rng(seed);
  ts::Dataset d("q");
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> values(len);
    for (double& v : values) v = rng.Gaussian();
    d.Add(ts::TimeSeries(std::move(values), int(i % 3)));
  }
  return d;
}

TEST(KNearestTest, FindsTrueNeighborsOnALine) {
  // Items at positions 0, 1, 2, ...: the neighbors of item 5 are 4 and 6.
  auto dist_to = [](std::size_t i) { return std::fabs(double(i) - 5.0); };
  const auto nn = KNearest(10, 5, 3, dist_to);
  ASSERT_EQ(nn.size(), 3u);
  EXPECT_EQ(nn[0].index, 4u);  // tie with 6 broken by index
  EXPECT_EQ(nn[1].index, 6u);
  EXPECT_EQ(nn[2].index, 3u);
  EXPECT_DOUBLE_EQ(nn[0].distance, 1.0);
}

TEST(KNearestTest, ExcludesQueryItself) {
  auto dist_to = [](std::size_t) { return 1.0; };
  const auto nn = KNearest(5, 2, 10, dist_to);
  EXPECT_EQ(nn.size(), 4u);
  for (const auto& n : nn) EXPECT_NE(n.index, 2u);
}

TEST(KNearestTest, NoExclusionWhenOutOfRange) {
  auto dist_to = [](std::size_t i) { return double(i); };
  const auto nn = KNearest(4, 99, 2, dist_to);
  ASSERT_EQ(nn.size(), 2u);
  EXPECT_EQ(nn[0].index, 0u);
}

TEST(KNearestTest, SortedAscendingDeterministicTies) {
  auto dist_to = [](std::size_t i) { return double(i % 2); };
  const auto nn = KNearest(8, 8, 8, dist_to);
  ASSERT_EQ(nn.size(), 8u);
  // Evens (distance 0) by index first, then odds.
  EXPECT_EQ(nn[0].index, 0u);
  EXPECT_EQ(nn[1].index, 2u);
  EXPECT_EQ(nn[2].index, 4u);
  EXPECT_EQ(nn[3].index, 6u);
  EXPECT_EQ(nn[4].index, 1u);
}

TEST(KNearestEuclideanTest, MatchesBruteForce) {
  const ts::Dataset d = RandomDataset(40, 16, 3);
  for (std::size_t qi : {0u, 7u, 39u}) {
    const auto nn = KNearestEuclidean(d, qi, 5);
    ASSERT_EQ(nn.size(), 5u);
    // Brute force verify: no non-returned item is closer than the 5th.
    const double worst = nn.back().distance;
    for (std::size_t i = 0; i < d.size(); ++i) {
      if (i == qi) continue;
      const double dist = distance::Euclidean(d[qi].values(), d[i].values());
      const bool in_result =
          std::any_of(nn.begin(), nn.end(),
                      [i](const Neighbor& n) { return n.index == i; });
      if (!in_result) {
        EXPECT_GE(dist, worst - 1e-12);
      }
    }
    // Distances sorted ascending.
    for (std::size_t k = 1; k < nn.size(); ++k) {
      EXPECT_GE(nn[k].distance, nn[k - 1].distance);
    }
  }
}

TEST(RangeSearchTest, MatchesPredicate) {
  auto dist_to = [](std::size_t i) { return double(i); };
  const auto matches = RangeSearch(10, 10, 3.5, dist_to);
  ASSERT_EQ(matches.size(), 4u);  // 0, 1, 2, 3
  EXPECT_EQ(matches[3], 3u);
}

TEST(RangeSearchTest, InclusiveThreshold) {
  auto dist_to = [](std::size_t i) { return double(i); };
  const auto matches = RangeSearch(10, 10, 3.0, dist_to);
  EXPECT_EQ(matches.size(), 4u);  // <= is inclusive (Eq. 1)
}

TEST(RangeSearchEuclideanTest, ConsistentWithKnn) {
  const ts::Dataset d = RandomDataset(30, 12, 5);
  const std::size_t qi = 4;
  const auto nn = KNearestEuclidean(d, qi, 10);
  const double eps = nn.back().distance;
  const auto range = RangeSearchEuclidean(d, qi, eps);
  // The range query at the 10th-NN distance returns at least 10 items
  // (ties can add more), and every k-NN member is inside.
  EXPECT_GE(range.size(), 10u);
  for (const auto& n : nn) {
    EXPECT_TRUE(std::find(range.begin(), range.end(), n.index) != range.end());
  }
}

TEST(RangeSearchEuclideanTest, ZeroEpsilonFindsOnlyDuplicates) {
  ts::Dataset d("dup");
  d.Add(ts::TimeSeries({1.0, 2.0}));
  d.Add(ts::TimeSeries({1.0, 2.0}));
  d.Add(ts::TimeSeries({9.0, 9.0}));
  const auto matches = RangeSearchEuclidean(d, 0, 0.0);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0], 1u);
}

// ------------------------------------------------------ probabilistic RQ

TEST(ProbabilisticRangeSearchTest, ThresholdIsInclusive) {
  // Pr(i) = i / 10; PRQ at tau = 0.5 keeps items 5..9 (Eq. 2 uses >=).
  auto prob = [](std::size_t i) { return double(i) / 10.0; };
  const auto matches = ProbabilisticRangeSearch(10, 10, 0.5, prob);
  ASSERT_EQ(matches.size(), 5u);
  EXPECT_EQ(matches.front(), 5u);
  EXPECT_EQ(matches.back(), 9u);
}

TEST(ProbabilisticRangeSearchTest, ExcludesQuery) {
  auto prob = [](std::size_t) { return 1.0; };
  const auto matches = ProbabilisticRangeSearch(5, 2, 0.1, prob);
  EXPECT_EQ(matches.size(), 4u);
  for (std::size_t i : matches) EXPECT_NE(i, 2u);
}

TEST(ProbabilisticRangeSearchTest, TauOneKeepsOnlyCertainMatches) {
  auto prob = [](std::size_t i) { return i == 3 ? 1.0 : 0.999; };
  const auto matches = ProbabilisticRangeSearch(6, 6, 1.0, prob);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0], 3u);
}

// ------------------------------------------------------------------ motifs

TEST(TopKMotifsTest, FindsClosestPairs) {
  // Items on a line at 0, 1, 3, 10: closest pair (0,1) d=1, then (1,2) d=2.
  const double pos[] = {0.0, 1.0, 3.0, 10.0};
  auto dist = [&](std::size_t a, std::size_t b) {
    return std::fabs(pos[a] - pos[b]);
  };
  const auto motifs = TopKMotifs(4, 2, dist);
  ASSERT_EQ(motifs.size(), 2u);
  EXPECT_EQ(motifs[0].a, 0u);
  EXPECT_EQ(motifs[0].b, 1u);
  EXPECT_DOUBLE_EQ(motifs[0].distance, 1.0);
  EXPECT_EQ(motifs[1].a, 1u);
  EXPECT_EQ(motifs[1].b, 2u);
}

TEST(TopKMotifsTest, KLargerThanPairCountReturnsAll) {
  auto dist = [](std::size_t a, std::size_t b) { return double(a + b); };
  const auto motifs = TopKMotifs(3, 100, dist);
  EXPECT_EQ(motifs.size(), 3u);  // C(3,2)
}

TEST(TopKMotifsTest, DeterministicTieBreaking) {
  auto dist = [](std::size_t, std::size_t) { return 1.0; };
  const auto motifs = TopKMotifs(4, 3, dist);
  ASSERT_EQ(motifs.size(), 3u);
  EXPECT_EQ(motifs[0].a, 0u);
  EXPECT_EQ(motifs[0].b, 1u);
  EXPECT_EQ(motifs[1].b, 2u);
  EXPECT_EQ(motifs[2].b, 3u);
}

TEST(TopKMotifsTest, EuclideanVariantFindsPlantedMotif) {
  ts::Dataset d = RandomDataset(20, 24, 77);
  // Plant a near-duplicate of series 4 at index 19.
  auto clone = d[4];
  clone.mutable_values()[0] += 0.01;
  d[19] = clone;
  const auto motifs = TopKMotifsEuclidean(d, 1);
  ASSERT_EQ(motifs.size(), 1u);
  EXPECT_EQ(motifs[0].a, 4u);
  EXPECT_EQ(motifs[0].b, 19u);
  EXPECT_NEAR(motifs[0].distance, 0.01, 1e-9);
}

}  // namespace
}  // namespace uts::query
