// Unit tests for descriptive statistics and the chi-square test
// (src/prob/stats).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "prob/rng.hpp"
#include "prob/stats.hpp"

namespace uts::prob {
namespace {

TEST(RunningStatsTest, EmptyIsNeutral) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.VarianceSample(), 0.0);
  EXPECT_DOUBLE_EQ(s.StandardError(), 0.0);
}

TEST(RunningStatsTest, KnownSmallSample) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.VariancePopulation(), 4.0);
  EXPECT_DOUBLE_EQ(s.StdDevPopulation(), 2.0);
  EXPECT_NEAR(s.VarianceSample(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.Min(), 2.0);
  EXPECT_DOUBLE_EQ(s.Max(), 9.0);
}

TEST(RunningStatsTest, MergeEqualsSequential) {
  Rng rng(11);
  RunningStats whole, a, b;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.Gaussian(3.0, 2.0);
    whole.Add(v);
    (i % 2 == 0 ? a : b).Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.Mean(), whole.Mean(), 1e-12);
  EXPECT_NEAR(a.VarianceSample(), whole.VarianceSample(), 1e-9);
  EXPECT_DOUBLE_EQ(a.Min(), whole.Min());
  EXPECT_DOUBLE_EQ(a.Max(), whole.Max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, empty;
  a.Add(1.0);
  a.Add(3.0);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.Mean(), 2.0);
  RunningStats b;
  b.Merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.Mean(), 2.0);
}

TEST(RunningStatsTest, NumericalStabilityWithLargeOffset) {
  RunningStats s;
  const double offset = 1e9;
  for (double v : {offset + 1.0, offset + 2.0, offset + 3.0}) s.Add(v);
  EXPECT_NEAR(s.Mean(), offset + 2.0, 1e-3);
  EXPECT_NEAR(s.VariancePopulation(), 2.0 / 3.0, 1e-6);
}

TEST(ConfidenceIntervalTest, WidthScalesWithSqrtN) {
  Rng rng(5);
  std::vector<double> small, large;
  for (int i = 0; i < 100; ++i) small.push_back(rng.Gaussian());
  for (int i = 0; i < 10000; ++i) large.push_back(rng.Gaussian());
  const auto ci_small = MeanConfidenceInterval(small);
  const auto ci_large = MeanConfidenceInterval(large);
  // ~10x more data => ~sqrt(100)=10x narrower interval.
  EXPECT_LT(ci_large.half_width, ci_small.half_width / 5.0);
}

TEST(ConfidenceIntervalTest, CoversTrueMeanMostOfTheTime) {
  // Frequentist sanity: over 200 repetitions, the 95% CI should cover the
  // true mean far more often than not.
  Rng rng(17);
  int covered = 0;
  constexpr int kReps = 200;
  for (int rep = 0; rep < kReps; ++rep) {
    std::vector<double> xs;
    for (int i = 0; i < 50; ++i) xs.push_back(rng.Gaussian(1.5, 1.0));
    const auto ci = MeanConfidenceInterval(xs);
    if (ci.lo() <= 1.5 && 1.5 <= ci.hi()) ++covered;
  }
  EXPECT_GE(covered, kReps * 85 / 100);
}

TEST(ConfidenceIntervalTest, LevelControlsWidth) {
  std::vector<double> xs;
  Rng rng(23);
  for (int i = 0; i < 400; ++i) xs.push_back(rng.Gaussian());
  const auto ci90 = MeanConfidenceInterval(xs, 0.90);
  const auto ci99 = MeanConfidenceInterval(xs, 0.99);
  EXPECT_LT(ci90.half_width, ci99.half_width);
  EXPECT_DOUBLE_EQ(ci90.mean, ci99.mean);
}

TEST(ConfidenceIntervalTest, SingletonHasZeroWidth) {
  std::vector<double> xs{3.0};
  const auto ci = MeanConfidenceInterval(xs);
  EXPECT_DOUBLE_EQ(ci.mean, 3.0);
  EXPECT_DOUBLE_EQ(ci.half_width, 0.0);
}

// ----------------------------------------------------------- chi-square

TEST(ChiSquareUniformityTest, AcceptsUniformData) {
  Rng rng(29);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) xs.push_back(rng.Uniform(-2.0, 5.0));
  auto result = ChiSquareUniformityTest(xs);
  ASSERT_TRUE(result.ok()) << result.status();
  // Uniform data should NOT be rejected at alpha = 0.01.
  EXPECT_FALSE(result.ValueOrDie().RejectAt(0.01));
}

TEST(ChiSquareUniformityTest, RejectsGaussianData) {
  Rng rng(31);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) xs.push_back(rng.Gaussian());
  auto result = ChiSquareUniformityTest(xs);
  ASSERT_TRUE(result.ok());
  // Strong rejection, reproducing the paper's Section 4.1.1 finding on
  // real (non-uniform) series values.
  EXPECT_TRUE(result.ValueOrDie().RejectAt(0.01));
  EXPECT_LT(result.ValueOrDie().p_value, 1e-10);
}

TEST(ChiSquareUniformityTest, RejectsBimodalData) {
  Rng rng(37);
  std::vector<double> xs;
  for (int i = 0; i < 4000; ++i) {
    xs.push_back(rng.Bernoulli(0.5) ? rng.Gaussian(-3.0, 0.3)
                                    : rng.Gaussian(3.0, 0.3));
  }
  auto result = ChiSquareUniformityTest(xs);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.ValueOrDie().RejectAt(0.01));
}

TEST(ChiSquareUniformityTest, InputValidation) {
  std::vector<double> too_few{1.0, 2.0, 3.0};
  EXPECT_FALSE(ChiSquareUniformityTest(too_few).ok());
  std::vector<double> constant(100, 5.0);
  EXPECT_FALSE(ChiSquareUniformityTest(constant).ok());
}

TEST(ChiSquareGofTest, PerfectFitHasPValueOne) {
  std::vector<std::size_t> observed{25, 25, 25, 25};
  std::vector<double> expected(4, 0.25);
  auto result = ChiSquareTest(observed, expected);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.ValueOrDie().statistic, 0.0);
  EXPECT_NEAR(result.ValueOrDie().p_value, 1.0, 1e-12);
}

TEST(ChiSquareGofTest, StatisticMatchesHandComputation) {
  // observed {30, 70}, expected p {0.5, 0.5}, n=100:
  // chi2 = (30-50)^2/50 + (70-50)^2/50 = 16.
  std::vector<std::size_t> observed{30, 70};
  std::vector<double> expected{0.5, 0.5};
  auto result = ChiSquareTest(observed, expected);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.ValueOrDie().statistic, 16.0, 1e-12);
  EXPECT_EQ(result.ValueOrDie().dof, 1.0);
}

TEST(ChiSquareGofTest, RejectsMismatchedInputs) {
  std::vector<std::size_t> observed{10, 20};
  std::vector<double> expected{0.5, 0.25, 0.25};
  EXPECT_FALSE(ChiSquareTest(observed, expected).ok());
  std::vector<double> not_normalized{0.9, 0.9};
  EXPECT_FALSE(ChiSquareTest(observed, not_normalized).ok());
}

// ---------------------------------------------------------- correlation

TEST(PearsonCorrelationTest, PerfectAndAntiCorrelation) {
  std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  std::vector<double> y{2.0, 4.0, 6.0, 8.0};
  std::vector<double> z{8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(PearsonCorrelation(x, y).ValueOrDie(), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation(x, z).ValueOrDie(), -1.0, 1e-12);
}

TEST(PearsonCorrelationTest, IndependentSeriesNearZero) {
  Rng rng(41);
  std::vector<double> x, y;
  for (int i = 0; i < 5000; ++i) {
    x.push_back(rng.Gaussian());
    y.push_back(rng.Gaussian());
  }
  EXPECT_NEAR(PearsonCorrelation(x, y).ValueOrDie(), 0.0, 0.05);
}

TEST(PearsonCorrelationTest, ZeroVarianceFails) {
  std::vector<double> x{1.0, 1.0, 1.0};
  std::vector<double> y{1.0, 2.0, 3.0};
  EXPECT_FALSE(PearsonCorrelation(x, y).ok());
}

TEST(AutocorrelationTest, Ar1ProcessHasRhoAtLagOne) {
  Rng rng(43);
  const double rho = 0.85;
  std::vector<double> xs;
  double v = 0.0;
  for (int i = 0; i < 20000; ++i) {
    v = rho * v + std::sqrt(1 - rho * rho) * rng.Gaussian();
    xs.push_back(v);
  }
  EXPECT_NEAR(Autocorrelation(xs, 1).ValueOrDie(), rho, 0.03);
  EXPECT_NEAR(Autocorrelation(xs, 2).ValueOrDie(), rho * rho, 0.05);
}

TEST(AutocorrelationTest, WhiteNoiseNearZero) {
  Rng rng(47);
  std::vector<double> xs;
  for (int i = 0; i < 10000; ++i) xs.push_back(rng.Gaussian());
  EXPECT_NEAR(Autocorrelation(xs, 1).ValueOrDie(), 0.0, 0.05);
}

TEST(AutocorrelationTest, InputValidation) {
  std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_FALSE(Autocorrelation(xs, 0).ok());
  EXPECT_FALSE(Autocorrelation(xs, 5).ok());
}

}  // namespace
}  // namespace uts::prob
