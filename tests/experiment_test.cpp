// Integration tests for the evaluation methodology (src/core/experiment,
// src/core/matchers): binding, calibration, tau sweeps, aggregation.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/experiment.hpp"
#include "core/matchers.hpp"
#include "datagen/registry.hpp"
#include "uncertain/error_spec.hpp"

namespace uts::core {
namespace {

using prob::ErrorKind;
using uncertain::ErrorSpec;

ts::Dataset SmallDataset(std::uint64_t seed = 7) {
  auto spec = datagen::SpecByName("GunPoint").ValueOrDie();
  return datagen::GenerateScaled(spec, seed, 30, 48).ZNormalizedCopy();
}

RunOptions QuickOptions() {
  RunOptions options;
  options.ground_truth_k = 5;
  options.max_queries = 10;
  options.seed = 101;
  options.measure_time = false;
  return options;
}

TEST(RunSimilarityMatchingTest, ZeroNoiseGivesPerfectEuclidean) {
  // With no perturbation the observations equal the exact values, the
  // calibrated epsilon is exactly the k-NN distance, and Euclidean must
  // retrieve exactly the ground-truth set.
  const ts::Dataset d = SmallDataset();
  EuclideanMatcher euclid;
  Matcher* matchers[] = {&euclid};
  auto results = RunSimilarityMatching(
      d, ErrorSpec::Constant(ErrorKind::kNone, 0.0), matchers, QuickOptions());
  ASSERT_TRUE(results.ok()) << results.status();
  EXPECT_NEAR(results.ValueOrDie()[0].f1.mean, 1.0, 1e-12);
}

TEST(RunSimilarityMatchingTest, ResultsAreDeterministic) {
  const ts::Dataset d = SmallDataset();
  EuclideanMatcher euclid;
  Matcher* matchers[] = {&euclid};
  const ErrorSpec spec = ErrorSpec::Constant(ErrorKind::kNormal, 0.6);
  auto a = RunSimilarityMatching(d, spec, matchers, QuickOptions());
  auto b = RunSimilarityMatching(d, spec, matchers, QuickOptions());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a.ValueOrDie()[0].f1.mean, b.ValueOrDie()[0].f1.mean);
}

TEST(RunSimilarityMatchingTest, MoreNoiseLowersAccuracy) {
  const ts::Dataset d = SmallDataset();
  EuclideanMatcher euclid;
  Matcher* matchers[] = {&euclid};
  auto low = RunSimilarityMatching(
      d, ErrorSpec::Constant(ErrorKind::kNormal, 0.2), matchers,
      QuickOptions());
  auto high = RunSimilarityMatching(
      d, ErrorSpec::Constant(ErrorKind::kNormal, 2.0), matchers,
      QuickOptions());
  ASSERT_TRUE(low.ok() && high.ok());
  EXPECT_GT(low.ValueOrDie()[0].f1.mean, high.ValueOrDie()[0].f1.mean);
}

TEST(RunSimilarityMatchingTest, AllPaperMatchersRunTogether) {
  const ts::Dataset d = SmallDataset();
  EuclideanMatcher euclid;
  ProudMatcher proud(0.6);
  DustMatcher dust;
  auto uma = MakeUmaMatcher();
  auto uema = MakeUemaMatcher();
  Matcher* matchers[] = {&euclid, &proud, &dust, uma.get(), uema.get()};

  const ErrorSpec spec = ErrorSpec::MixedSigma(ErrorKind::kNormal);
  auto results = RunSimilarityMatching(d, spec, matchers, QuickOptions());
  ASSERT_TRUE(results.ok()) << results.status();
  const auto& rs = results.ValueOrDie();
  ASSERT_EQ(rs.size(), 5u);
  EXPECT_EQ(rs[0].name, "Euclidean");
  EXPECT_EQ(rs[1].name, "PROUD");
  EXPECT_EQ(rs[2].name, "DUST");
  EXPECT_EQ(rs[3].name, "UMA(w=2)");
  EXPECT_EQ(rs[4].name, "UEMA(w=2,lambda=1)");
  for (const auto& r : rs) {
    EXPECT_EQ(r.queries, 10u);
    EXPECT_GE(r.f1.mean, 0.0);
    EXPECT_LE(r.f1.mean, 1.0);
    EXPECT_GE(r.precision.mean, 0.0);
    EXPECT_LE(r.precision.mean, 1.0);
    EXPECT_GE(r.recall.mean, 0.0);
    EXPECT_LE(r.recall.mean, 1.0);
    EXPECT_EQ(r.per_query_f1.size(), 10u);
  }
}

TEST(RunSimilarityMatchingTest, MunichRequiresSampleModel) {
  const ts::Dataset d = SmallDataset();
  measures::MunichOptions mopts;
  MunichMatcher munich(mopts);
  Matcher* matchers[] = {&munich};
  // Without munich_samples_per_point the context has no sample dataset.
  auto missing = RunSimilarityMatching(
      d, ErrorSpec::Constant(ErrorKind::kNormal, 0.4), matchers,
      QuickOptions());
  EXPECT_FALSE(missing.ok());

  auto truncated = d.Truncated(12, 6).ValueOrDie();
  RunOptions options = QuickOptions();
  options.ground_truth_k = 3;
  options.max_queries = 4;
  options.munich_samples_per_point = 5;
  auto ok = RunSimilarityMatching(
      truncated, ErrorSpec::Constant(ErrorKind::kNormal, 0.4), matchers,
      options);
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_GE(ok.ValueOrDie()[0].f1.mean, 0.0);
}

TEST(RunSimilarityMatchingTest, InputValidation) {
  EuclideanMatcher euclid;
  Matcher* matchers[] = {&euclid};
  ts::Dataset tiny("tiny");
  tiny.Add(ts::TimeSeries({1.0, 2.0}));
  EXPECT_FALSE(RunSimilarityMatching(tiny,
                                     ErrorSpec::Constant(ErrorKind::kNone, 0),
                                     matchers, QuickOptions())
                   .ok());

  const ts::Dataset d = SmallDataset();
  RunOptions bad_k = QuickOptions();
  bad_k.ground_truth_k = 1000;
  EXPECT_FALSE(RunSimilarityMatching(d,
                                     ErrorSpec::Constant(ErrorKind::kNone, 0),
                                     matchers, bad_k)
                   .ok());

  EXPECT_FALSE(RunSimilarityMatching(d,
                                     ErrorSpec::Constant(ErrorKind::kNone, 0),
                                     {}, QuickOptions())
                   .ok());
}

TEST(RunSimilarityMatchingTest, ProudSigmaOverride) {
  // Figure 8 setup: PROUD told sigma = 0.7 while the data has mixed sigma.
  const ts::Dataset d = SmallDataset();
  ProudMatcher proud(0.5);
  Matcher* matchers[] = {&proud};
  RunOptions options = QuickOptions();
  options.proud_sigma = 0.7;
  auto results = RunSimilarityMatching(
      d, ErrorSpec::MixedSigma(ErrorKind::kNormal), matchers, options);
  ASSERT_TRUE(results.ok());
}

// ------------------------------------------------------------------- sweep

TEST(SweepTauTest, FindsBestTauOnGrid) {
  const ts::Dataset d = SmallDataset();
  ProudMatcher proud(0.5);
  const ErrorSpec spec = ErrorSpec::Constant(ErrorKind::kNormal, 0.6);
  const auto grid = DefaultTauGrid();
  auto sweep = SweepTau(d, spec, proud, QuickOptions(), grid);
  ASSERT_TRUE(sweep.ok()) << sweep.status();
  const auto& s = sweep.ValueOrDie();
  ASSERT_EQ(s.taus.size(), grid.size());
  // best_f1 is the max of the grid.
  double max_f1 = 0.0;
  for (double f1 : s.f1s) max_f1 = std::max(max_f1, f1);
  EXPECT_DOUBLE_EQ(s.best_f1, max_f1);
  // The matcher is left configured at the best tau.
  EXPECT_DOUBLE_EQ(proud.tau(), s.best_tau);
}

TEST(SweepTauTest, RejectsNonProbabilisticMatcher) {
  const ts::Dataset d = SmallDataset();
  EuclideanMatcher euclid;
  auto sweep = SweepTau(d, ErrorSpec::Constant(ErrorKind::kNormal, 0.5),
                        euclid, QuickOptions(), DefaultTauGrid());
  EXPECT_FALSE(sweep.ok());
}

// --------------------------------------------------------------- combining

TEST(CombineAcrossDatasetsTest, PoolsPerQueryScores) {
  MatcherResult a;
  a.name = "X";
  a.per_query_f1 = {1.0, 0.0};
  a.per_query_precision = {1.0, 0.0};
  a.per_query_recall = {1.0, 0.0};
  a.queries = 2;
  a.avg_query_millis = 2.0;
  MatcherResult b = a;
  b.per_query_f1 = {0.5, 0.5};
  b.avg_query_millis = 4.0;

  const MatcherResult combined = CombineAcrossDatasets("X", {{a, b}});
  EXPECT_EQ(combined.queries, 4u);
  EXPECT_NEAR(combined.f1.mean, 0.5, 1e-12);
  EXPECT_NEAR(combined.avg_query_millis, 3.0, 1e-12);
  EXPECT_EQ(combined.per_query_f1.size(), 4u);
}

// ------------------------------------------------------- matcher specifics

TEST(MatcherTest, NamesEncodeParameters) {
  EXPECT_EQ(MakeUmaMatcher(3)->name(), "UMA(w=3)");
  EXPECT_EQ(MakeUemaMatcher(5, 0.1)->name(), "UEMA(w=5,lambda=0.1)");
  EXPECT_EQ(MakeMovingAverageMatcher(2)->name(), "MA(w=2)");
  EXPECT_EQ(MakeExponentialMovingAverageMatcher(2, 1.0)->name(),
            "EMA(w=2,lambda=1)");
}

TEST(MatcherTest, TauAccessors) {
  ProudMatcher proud(0.7);
  EXPECT_TRUE(proud.has_tau());
  EXPECT_DOUBLE_EQ(proud.tau(), 0.7);
  proud.set_tau(0.3);
  EXPECT_DOUBLE_EQ(proud.tau(), 0.3);

  MunichMatcher munich;
  EXPECT_TRUE(munich.has_tau());
  munich.set_tau(0.8);
  EXPECT_DOUBLE_EQ(munich.tau(), 0.8);

  EuclideanMatcher euclid;
  EXPECT_FALSE(euclid.has_tau());
}

TEST(MatcherTest, MatchersRequireBinding) {
  // Calling Bind with an incomplete context fails cleanly.
  EuclideanMatcher euclid;
  EvalContext empty;
  EXPECT_FALSE(euclid.Bind(empty).ok());
  MunichMatcher munich;
  EXPECT_FALSE(munich.Bind(empty).ok());
}

TEST(MatcherTest, ProudWaveletAgreesWithProud) {
  // Same tau/sigma => identical decisions (the synopsis is only a filter).
  const ts::Dataset d = SmallDataset();
  ProudMatcher proud(0.8);
  ProudSynopsisMatcherAdapter fast(0.8, 8);
  Matcher* matchers[] = {&proud, &fast};
  const ErrorSpec spec = ErrorSpec::Constant(ErrorKind::kNormal, 0.5);
  auto results = RunSimilarityMatching(d, spec, matchers, QuickOptions());
  ASSERT_TRUE(results.ok()) << results.status();
  const auto& rs = results.ValueOrDie();
  ASSERT_EQ(rs[0].per_query_f1.size(), rs[1].per_query_f1.size());
  for (std::size_t i = 0; i < rs[0].per_query_f1.size(); ++i) {
    EXPECT_DOUBLE_EQ(rs[0].per_query_f1[i], rs[1].per_query_f1[i]) << i;
  }
}

TEST(MatcherTest, MunichProbabilityCacheSurvivesTauChanges) {
  // The tau sweep re-binds MUNICH to identical data; cached probabilities
  // must produce exactly the decisions of a fresh matcher at each tau.
  const ts::Dataset d = SmallDataset().Truncated(12, 6).ValueOrDie();
  const ErrorSpec spec = ErrorSpec::Constant(ErrorKind::kNormal, 0.5);
  RunOptions options = QuickOptions();
  options.ground_truth_k = 3;
  options.max_queries = 4;
  options.munich_samples_per_point = 4;

  measures::MunichOptions mopts;
  MunichMatcher reused(mopts);
  for (double tau : {0.2, 0.5, 0.8}) {
    reused.set_tau(tau);
    MunichMatcher fresh(mopts);
    fresh.set_tau(tau);
    Matcher* reused_arr[] = {&reused};
    Matcher* fresh_arr[] = {&fresh};
    auto a = RunSimilarityMatching(d, spec, reused_arr, options);
    auto b = RunSimilarityMatching(d, spec, fresh_arr, options);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a.ValueOrDie()[0].per_query_f1.size(),
              b.ValueOrDie()[0].per_query_f1.size());
    for (std::size_t i = 0; i < a.ValueOrDie()[0].per_query_f1.size(); ++i) {
      EXPECT_DOUBLE_EQ(a.ValueOrDie()[0].per_query_f1[i],
                       b.ValueOrDie()[0].per_query_f1[i])
          << "tau=" << tau << " query=" << i;
    }
  }
}

TEST(MatcherTest, DustDtwMatcherRuns) {
  const ts::Dataset d = SmallDataset().Truncated(15, 24).ValueOrDie();
  DustDtwMatcher dust_dtw;
  Matcher* matchers[] = {&dust_dtw};
  RunOptions options = QuickOptions();
  options.ground_truth_k = 3;
  options.max_queries = 4;
  auto results = RunSimilarityMatching(
      d, ErrorSpec::Constant(ErrorKind::kNormal, 0.4), matchers, options);
  ASSERT_TRUE(results.ok()) << results.status();
  EXPECT_GE(results.ValueOrDie()[0].f1.mean, 0.0);
}

TEST(MatcherTest, MunichDtwMatcherRuns) {
  const ts::Dataset d = SmallDataset().Truncated(10, 8).ValueOrDie();
  measures::MunichOptions mopts;
  mopts.mc_samples = 500;
  MunichDtwMatcher munich_dtw(mopts);
  Matcher* matchers[] = {&munich_dtw};
  RunOptions options = QuickOptions();
  options.ground_truth_k = 3;
  options.max_queries = 3;
  options.munich_samples_per_point = 3;
  auto results = RunSimilarityMatching(
      d, ErrorSpec::Constant(ErrorKind::kUniform, 0.4), matchers, options);
  ASSERT_TRUE(results.ok()) << results.status();
}

}  // namespace
}  // namespace uts::core
