// Unit tests for special functions (src/prob/special).

#include <gtest/gtest.h>

#include <cmath>

#include "prob/special.hpp"

namespace uts::prob {
namespace {

TEST(NormalPdfTest, PeakValue) {
  // 1/sqrt(2*pi)
  EXPECT_NEAR(NormalPdf(0.0), 0.3989422804014327, 1e-14);
}

TEST(NormalPdfTest, Symmetry) {
  for (double x : {0.1, 0.7, 1.3, 2.9}) {
    EXPECT_DOUBLE_EQ(NormalPdf(x), NormalPdf(-x));
  }
}

TEST(NormalPdfTest, ScaledPdfIntegratesConsistently) {
  // N(x; mu, sigma) = N((x-mu)/sigma) / sigma.
  EXPECT_NEAR(NormalPdf(3.0, 1.0, 2.0), NormalPdf(1.0) / 2.0, 1e-15);
}

TEST(NormalCdfTest, KnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(NormalCdf(1.0), 0.8413447460685429, 1e-12);
  EXPECT_NEAR(NormalCdf(-1.0), 0.15865525393145707, 1e-12);
  EXPECT_NEAR(NormalCdf(1.959963984540054), 0.975, 1e-12);
  EXPECT_NEAR(NormalCdf(3.0), 0.9986501019683699, 1e-12);
}

TEST(NormalCdfTest, ComplementarySymmetry) {
  for (double x : {0.2, 0.9, 1.7, 2.5, 4.0}) {
    EXPECT_NEAR(NormalCdf(x) + NormalCdf(-x), 1.0, 1e-14);
  }
}

TEST(NormalCdfTest, ShiftedAndScaled) {
  EXPECT_NEAR(NormalCdf(5.0, 5.0, 3.0), 0.5, 1e-15);
  EXPECT_NEAR(NormalCdf(8.0, 5.0, 3.0), NormalCdf(1.0), 1e-15);
}

class NormalQuantileRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(NormalQuantileRoundTrip, CdfOfQuantileIsIdentity) {
  const double p = GetParam();
  EXPECT_NEAR(NormalCdf(NormalQuantile(p)), p, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Probabilities, NormalQuantileRoundTrip,
                         ::testing::Values(1e-10, 1e-6, 1e-3, 0.01, 0.05, 0.1,
                                           0.25, 0.5, 0.75, 0.9, 0.95, 0.99,
                                           0.999, 1.0 - 1e-6, 1.0 - 1e-10));

TEST(NormalQuantileTest, KnownValues) {
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-14);
  EXPECT_NEAR(NormalQuantile(0.975), 1.959963984540054, 1e-10);
  EXPECT_NEAR(NormalQuantile(0.8413447460685429), 1.0, 1e-10);
}

TEST(NormalQuantileTest, BoundaryValuesAreInfinite) {
  EXPECT_EQ(NormalQuantile(0.0), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(NormalQuantile(1.0), std::numeric_limits<double>::infinity());
}

TEST(LogGammaTest, IntegerFactorials) {
  // Gamma(n) = (n-1)!
  EXPECT_NEAR(LogGamma(1.0), 0.0, 1e-13);
  EXPECT_NEAR(LogGamma(2.0), 0.0, 1e-13);
  EXPECT_NEAR(LogGamma(5.0), std::log(24.0), 1e-12);
  EXPECT_NEAR(LogGamma(11.0), std::log(3628800.0), 1e-11);
}

TEST(LogGammaTest, HalfIntegerValues) {
  // Gamma(1/2) = sqrt(pi).
  EXPECT_NEAR(LogGamma(0.5), 0.5 * std::log(M_PI), 1e-12);
  // Gamma(3/2) = sqrt(pi)/2.
  EXPECT_NEAR(LogGamma(1.5), std::log(std::sqrt(M_PI) / 2.0), 1e-12);
}

TEST(LogGammaTest, RecurrenceRelation) {
  // Gamma(x+1) = x Gamma(x).
  for (double x : {0.3, 1.7, 4.2, 9.9}) {
    EXPECT_NEAR(LogGamma(x + 1.0), LogGamma(x) + std::log(x), 1e-11);
  }
}

TEST(RegularizedGammaTest, BoundaryBehaviour) {
  EXPECT_DOUBLE_EQ(RegularizedGammaP(2.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedGammaQ(2.0, 0.0), 1.0);
  EXPECT_NEAR(RegularizedGammaP(1.5, 200.0), 1.0, 1e-12);
}

TEST(RegularizedGammaTest, PPlusQIsOne) {
  for (double a : {0.5, 1.0, 3.3, 10.0}) {
    for (double x : {0.1, 1.0, 3.0, 15.0}) {
      EXPECT_NEAR(RegularizedGammaP(a, x) + RegularizedGammaQ(a, x), 1.0,
                  1e-12)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(RegularizedGammaTest, ExponentialSpecialCase) {
  // P(1, x) = 1 - exp(-x).
  for (double x : {0.2, 1.0, 2.5, 7.0}) {
    EXPECT_NEAR(RegularizedGammaP(1.0, x), 1.0 - std::exp(-x), 1e-12);
  }
}

TEST(ChiSquareTest, TwoDofClosedForm) {
  // Chi-square with 2 dof is Exp(1/2): cdf = 1 - exp(-x/2).
  for (double x : {0.5, 1.0, 3.0, 10.0}) {
    EXPECT_NEAR(ChiSquareCdf(x, 2.0), 1.0 - std::exp(-x / 2.0), 1e-12);
  }
}

TEST(ChiSquareTest, KnownCriticalValues) {
  // 95th percentile of chi-square with 1 dof is 3.841458820694124.
  EXPECT_NEAR(ChiSquareCdf(3.841458820694124, 1.0), 0.95, 1e-10);
  // 99th percentile with 10 dof is 23.209251158954356.
  EXPECT_NEAR(ChiSquareCdf(23.209251158954356, 10.0), 0.99, 1e-10);
}

TEST(ChiSquareTest, SurvivalComplementsCdf) {
  for (double k : {1.0, 4.0, 16.0}) {
    for (double x : {0.5, 2.0, 8.0, 30.0}) {
      EXPECT_NEAR(ChiSquareCdf(x, k) + ChiSquareSurvival(x, k), 1.0, 1e-12);
    }
  }
}

TEST(ChiSquareTest, NegativeInputClamps) {
  EXPECT_DOUBLE_EQ(ChiSquareCdf(-1.0, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(ChiSquareSurvival(-1.0, 3.0), 1.0);
}

TEST(ErfTest, MatchesNormalCdfIdentity) {
  // Phi(x) = (1 + erf(x/sqrt(2))) / 2.
  for (double x : {-2.0, -0.5, 0.0, 0.8, 2.3}) {
    EXPECT_NEAR(NormalCdf(x), 0.5 * (1.0 + Erf(x / std::sqrt(2.0))), 1e-14);
  }
}

TEST(ErfTest, ErfcComplement) {
  for (double x : {-1.0, 0.0, 0.5, 3.0}) {
    EXPECT_NEAR(Erf(x) + Erfc(x), 1.0, 1e-14);
  }
}

}  // namespace
}  // namespace uts::prob
