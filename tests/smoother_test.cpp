// Unit + property tests for the AR(1) Kalman/RTS smoother (src/ts/smoother)
// and its matcher adapter — the paper's "sequential correlations" direction.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/experiment.hpp"
#include "core/matchers.hpp"
#include "datagen/registry.hpp"
#include "prob/rng.hpp"
#include "prob/stats.hpp"
#include "ts/filters.hpp"
#include "ts/smoother.hpp"
#include "uncertain/error_spec.hpp"

namespace uts::ts {
namespace {

/// Generate an AR(1) latent path with stationary variance 1.
std::vector<double> Ar1Path(std::size_t n, double rho, std::uint64_t seed) {
  prob::Rng rng(seed);
  std::vector<double> x(n);
  double v = rng.Gaussian();
  const double innovation = std::sqrt(1.0 - rho * rho);
  for (std::size_t t = 0; t < n; ++t) {
    x[t] = v;
    v = rho * v + innovation * rng.Gaussian();
  }
  return x;
}

TEST(EstimateAr1RhoTest, RecoversTrueRho) {
  for (double rho : {0.3, 0.6, 0.9}) {
    const auto x = Ar1Path(20000, rho, 1);
    // Noisy observations with sigma 0.5.
    prob::Rng rng(2);
    std::vector<double> y(x.size());
    std::vector<double> s(x.size(), 0.5);
    for (std::size_t t = 0; t < x.size(); ++t) y[t] = x[t] + 0.5 * rng.Gaussian();
    auto estimated = EstimateAr1Rho(y, s);
    ASSERT_TRUE(estimated.ok());
    EXPECT_NEAR(estimated.ValueOrDie(), rho, 0.05) << "rho=" << rho;
  }
}

TEST(EstimateAr1RhoTest, PureNoiseGivesMinRho) {
  prob::Rng rng(3);
  std::vector<double> y(2000), s(2000, 1.0);
  for (double& v : y) v = rng.Gaussian();
  auto estimated = EstimateAr1Rho(y, s);
  ASSERT_TRUE(estimated.ok());
  // Var(y) ~ noise var: the signal-variance estimate collapses to ~0.
  EXPECT_LT(estimated.ValueOrDie(), 0.2);
}

TEST(EstimateAr1RhoTest, InputValidation) {
  std::vector<double> short_y{1.0, 2.0};
  std::vector<double> short_s{1.0, 1.0};
  EXPECT_FALSE(EstimateAr1Rho(short_y, short_s).ok());
  std::vector<double> y(20, 1.0), s(19, 1.0);
  EXPECT_FALSE(EstimateAr1Rho(y, s).ok());
}

TEST(Ar1KalmanSmoothTest, RhoZeroIsPosteriorShrinkage) {
  // Independent prior N(0, V): posterior mean = y * V / (V + s²).
  const std::vector<double> y{2.0, -1.0, 0.5};
  const std::vector<double> s{1.0, 0.5, 2.0};
  Ar1SmootherOptions options;
  options.rho = 1e-12;  // effectively independent, skips estimation
  auto smoothed = Ar1KalmanSmooth(y, s, options);
  ASSERT_TRUE(smoothed.ok());
  for (std::size_t t = 0; t < y.size(); ++t) {
    const double expected = y[t] * 1.0 / (1.0 + s[t] * s[t]);
    EXPECT_NEAR(smoothed.ValueOrDie()[t], expected, 1e-9) << t;
  }
}

TEST(Ar1KalmanSmoothTest, TinyNoiseReproducesObservations) {
  const auto x = Ar1Path(64, 0.8, 5);
  const std::vector<double> s(64, 1e-6);
  Ar1SmootherOptions options;
  options.rho = 0.8;
  auto smoothed = Ar1KalmanSmooth(x, s, options);
  ASSERT_TRUE(smoothed.ok());
  for (std::size_t t = 0; t < x.size(); ++t) {
    EXPECT_NEAR(smoothed.ValueOrDie()[t], x[t], 1e-6);
  }
}

TEST(Ar1KalmanSmoothTest, ReducesReconstructionError) {
  // The smoother's whole point: closer to the latent truth than both the
  // raw observations and a moving average.
  const double rho = 0.9;
  const double sigma = 0.8;
  prob::RunningStats raw_err, ma_err, kalman_err;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto x = Ar1Path(256, rho, 100 + seed);
    prob::Rng rng(200 + seed);
    std::vector<double> y(x.size());
    std::vector<double> s(x.size(), sigma);
    for (std::size_t t = 0; t < x.size(); ++t) {
      y[t] = x[t] + sigma * rng.Gaussian();
    }
    Ar1SmootherOptions options;
    options.rho = rho;
    const auto smoothed = Ar1KalmanSmooth(y, s, options).ValueOrDie();
    FilterOptions ma_options;
    ma_options.half_window = 2;
    const auto ma = MovingAverage(y, ma_options);
    for (std::size_t t = 0; t < x.size(); ++t) {
      raw_err.Add((y[t] - x[t]) * (y[t] - x[t]));
      ma_err.Add((ma[t] - x[t]) * (ma[t] - x[t]));
      kalman_err.Add((smoothed[t] - x[t]) * (smoothed[t] - x[t]));
    }
  }
  EXPECT_LT(kalman_err.Mean(), ma_err.Mean());
  EXPECT_LT(ma_err.Mean(), raw_err.Mean());
}

TEST(Ar1KalmanSmoothTest, EstimatedRhoPathWorksEndToEnd) {
  const auto x = Ar1Path(128, 0.85, 7);
  prob::Rng rng(8);
  std::vector<double> y(x.size());
  std::vector<double> s(x.size(), 0.6);
  for (std::size_t t = 0; t < x.size(); ++t) y[t] = x[t] + 0.6 * rng.Gaussian();
  auto smoothed = Ar1KalmanSmooth(y, s);  // rho = 0 -> estimate
  ASSERT_TRUE(smoothed.ok());
  double err_raw = 0.0, err_smooth = 0.0;
  for (std::size_t t = 0; t < x.size(); ++t) {
    err_raw += (y[t] - x[t]) * (y[t] - x[t]);
    err_smooth += (smoothed.ValueOrDie()[t] - x[t]) *
                  (smoothed.ValueOrDie()[t] - x[t]);
  }
  EXPECT_LT(err_smooth, err_raw);
}

TEST(Ar1KalmanSmoothTest, HeteroscedasticNoiseIsWeighted) {
  // A point with huge reported sigma should be pulled toward its neighbors'
  // consensus rather than trusted.
  std::vector<double> y(21, 1.0);
  std::vector<double> s(21, 0.1);
  y[10] = 50.0;
  s[10] = 100.0;
  Ar1SmootherOptions options;
  options.rho = 0.9;
  auto smoothed = Ar1KalmanSmooth(y, s, options);
  ASSERT_TRUE(smoothed.ok());
  EXPECT_LT(std::fabs(smoothed.ValueOrDie()[10]), 2.0);
}

TEST(Ar1KalmanSmoothTest, InputValidation) {
  const std::vector<double> y{1.0, 2.0};
  EXPECT_FALSE(Ar1KalmanSmooth({}, {}).ok());
  EXPECT_FALSE(Ar1KalmanSmooth(y, std::vector<double>{1.0}).ok());
  EXPECT_FALSE(Ar1KalmanSmooth(y, std::vector<double>{1.0, 0.0}).ok());
  Ar1SmootherOptions bad;
  bad.rho = 1.0;
  EXPECT_FALSE(
      Ar1KalmanSmooth(y, std::vector<double>{1.0, 1.0}, bad).ok());
  Ar1SmootherOptions bad_v;
  bad_v.state_variance = 0.0;
  EXPECT_FALSE(
      Ar1KalmanSmooth(y, std::vector<double>{1.0, 1.0}, bad_v).ok());
}

}  // namespace
}  // namespace uts::ts

namespace uts::core {
namespace {

TEST(Ar1SmootherMatcherTest, RunsInsideTheEvaluation) {
  auto spec = datagen::SpecByName("ECG200").ValueOrDie();
  const ts::Dataset d =
      datagen::GenerateScaled(spec, 51, 30, 64).ZNormalizedCopy();
  Ar1SmootherMatcher kalman;
  EuclideanMatcher euclid;
  Matcher* matchers[] = {&kalman, &euclid};
  RunOptions options;
  options.ground_truth_k = 5;
  options.max_queries = 10;
  options.seed = 51;
  auto results = RunSimilarityMatching(
      d, uncertain::ErrorSpec::MixedSigma(prob::ErrorKind::kNormal), matchers,
      options);
  ASSERT_TRUE(results.ok()) << results.status();
  const auto& rs = results.ValueOrDie();
  EXPECT_EQ(rs[0].name, "AR1-smoother");
  // Correlation-aware smoothing should not be worse than raw Euclidean on
  // strongly autocorrelated data.
  EXPECT_GE(rs[0].f1.mean, rs[1].f1.mean - 0.02);
}

TEST(DtwMatcherTest, NamesAndEvaluation) {
  distance::DtwOptions banded;
  banded.band_radius = 4;
  EXPECT_EQ(DtwMatcher().name(), "DTW");
  EXPECT_EQ(DtwMatcher(banded).name(), "DTW(r=4)");

  auto spec = datagen::SpecByName("GunPoint").ValueOrDie();
  const ts::Dataset d =
      datagen::GenerateScaled(spec, 53, 24, 48).ZNormalizedCopy();
  DtwMatcher dtw(banded);
  Matcher* matchers[] = {&dtw};
  RunOptions options;
  options.ground_truth_k = 5;
  options.max_queries = 6;
  options.seed = 53;
  auto results = RunSimilarityMatching(
      d, uncertain::ErrorSpec::Constant(prob::ErrorKind::kNormal, 0.4),
      matchers, options);
  ASSERT_TRUE(results.ok()) << results.status();
  EXPECT_GT(results.ValueOrDie()[0].f1.mean, 0.0);
}

}  // namespace
}  // namespace uts::core
