// Unit + property tests for the moving-average family (src/ts/filters),
// Equations 15-18 of the paper.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "prob/rng.hpp"
#include "prob/stats.hpp"
#include "ts/filters.hpp"

namespace uts::ts {
namespace {

std::vector<double> RandomWalk(std::size_t n, std::uint64_t seed) {
  prob::Rng rng(seed);
  std::vector<double> xs(n);
  double v = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    v += 0.3 * rng.Gaussian();
    xs[i] = v;
  }
  return xs;
}

TEST(MovingAverageTest, ZeroWindowIsIdentity) {
  // "when w = 0, UMA and UEMA degenerate to the simple Euclidean distance"
  // (Section 5.2) — the filter must be the identity.
  const std::vector<double> xs = RandomWalk(50, 1);
  FilterOptions options;
  options.half_window = 0;
  const auto filtered = MovingAverage(xs, options);
  ASSERT_EQ(filtered.size(), xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_DOUBLE_EQ(filtered[i], xs[i]);
  }
}

TEST(MovingAverageTest, InteriorValuesMatchHandComputation) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  FilterOptions options;
  options.half_window = 1;
  const auto f = MovingAverage(xs, options);
  EXPECT_DOUBLE_EQ(f[1], 2.0);   // (1+2+3)/3
  EXPECT_DOUBLE_EQ(f[2], 3.0);   // (2+3+4)/3
  EXPECT_DOUBLE_EQ(f[3], 4.0);
}

TEST(MovingAverageTest, TruncatedEdgesAreUnbiased) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  FilterOptions options;
  options.half_window = 1;
  const auto f = MovingAverage(xs, options);
  EXPECT_DOUBLE_EQ(f[0], 1.5);  // (1+2)/2 over the truncated window
  EXPECT_DOUBLE_EQ(f[4], 4.5);  // (4+5)/2
}

TEST(MovingAverageTest, StrictDenominatorAttenuatesEdges) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  FilterOptions options;
  options.half_window = 1;
  options.strict_paper_denominator = true;
  const auto f = MovingAverage(xs, options);
  EXPECT_DOUBLE_EQ(f[0], 1.0);  // (1+2)/3: literal Eq. 15 denominator
  EXPECT_DOUBLE_EQ(f[2], 3.0);  // interior unchanged
}

TEST(MovingAverageTest, ConstantSeriesIsFixedPoint) {
  const std::vector<double> xs(30, 4.2);
  for (std::size_t w : {1u, 2u, 5u, 10u}) {
    FilterOptions options;
    options.half_window = w;
    for (double v : MovingAverage(xs, options)) EXPECT_NEAR(v, 4.2, 1e-12);
  }
}

TEST(MovingAverageTest, ReducesNoiseVariance) {
  // The core reason UMA/UEMA help: averaging suppresses independent noise.
  prob::Rng rng(5);
  std::vector<double> noise(2000);
  for (double& v : noise) v = rng.Gaussian();
  FilterOptions options;
  options.half_window = 2;
  const auto filtered = MovingAverage(noise, options);
  prob::RunningStats raw, smooth;
  for (double v : noise) raw.Add(v);
  for (double v : filtered) smooth.Add(v);
  // A (2w+1)=5 point average divides white-noise variance by ~5.
  EXPECT_LT(smooth.VariancePopulation(), raw.VariancePopulation() / 3.0);
}

TEST(ExponentialMovingAverageTest, LambdaZeroEqualsMovingAverage) {
  const std::vector<double> xs = RandomWalk(64, 2);
  FilterOptions options;
  options.half_window = 3;
  options.lambda = 0.0;
  const auto ema = ExponentialMovingAverage(xs, options);
  const auto ma = MovingAverage(xs, options);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_NEAR(ema[i], ma[i], 1e-12);
  }
}

TEST(ExponentialMovingAverageTest, LargeLambdaApproachesIdentity) {
  const std::vector<double> xs = RandomWalk(64, 3);
  FilterOptions options;
  options.half_window = 5;
  options.lambda = 50.0;  // neighbors get weight e^-50: negligible.
  const auto ema = ExponentialMovingAverage(xs, options);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_NEAR(ema[i], xs[i], 1e-8);
  }
}

TEST(ExponentialMovingAverageTest, WeightsMatchHandComputation) {
  const std::vector<double> xs{0.0, 1.0, 0.0};
  FilterOptions options;
  options.half_window = 1;
  options.lambda = 1.0;
  const auto f = ExponentialMovingAverage(xs, options);
  // Center: (0*e^-1 + 1*1 + 0*e^-1) / (1 + 2 e^-1).
  const double e1 = std::exp(-1.0);
  EXPECT_NEAR(f[1], 1.0 / (1.0 + 2.0 * e1), 1e-12);
  // Left edge (truncated): (0*1 + 1*e^-1) / (1 + e^-1).
  EXPECT_NEAR(f[0], e1 / (1.0 + e1), 1e-12);
}

// ------------------------------------------------------------- UMA / UEMA

TEST(UmaTest, ConstantSigmaScalesMovingAverage) {
  // Eq. 17 with s_j = s for all j is MA(x)/s.
  const std::vector<double> xs = RandomWalk(40, 4);
  const std::vector<double> sigmas(xs.size(), 2.0);
  FilterOptions options;
  options.half_window = 2;
  auto uma = UncertainMovingAverage(xs, sigmas, options);
  ASSERT_TRUE(uma.ok());
  const auto ma = MovingAverage(xs, options);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_NEAR(uma.ValueOrDie()[i], ma[i] / 2.0, 1e-12);
  }
}

TEST(UmaTest, NoisyPointsAreDownWeighted) {
  // A spike with huge reported sigma should barely influence its neighbors.
  std::vector<double> xs(21, 1.0);
  xs[10] = 100.0;
  std::vector<double> sigmas(21, 1.0);
  sigmas[10] = 1000.0;
  FilterOptions options;
  options.half_window = 2;
  auto uma = UncertainMovingAverage(xs, sigmas, options);
  ASSERT_TRUE(uma.ok());
  // Neighbor at index 9 sees the spike with weight 1/1000.
  EXPECT_NEAR(uma.ValueOrDie()[9], (1.0 + 1.0 + 1.0 + 100.0 / 1000.0 + 1.0) / 5.0,
              1e-12);
}

TEST(UmaTest, RejectsInvalidSigmas) {
  const std::vector<double> xs{1.0, 2.0};
  FilterOptions options;
  EXPECT_FALSE(UncertainMovingAverage(xs, std::vector<double>{1.0}, options).ok());
  EXPECT_FALSE(
      UncertainMovingAverage(xs, std::vector<double>{1.0, 0.0}, options).ok());
  EXPECT_FALSE(
      UncertainMovingAverage(xs, std::vector<double>{1.0, -2.0}, options).ok());
}

TEST(UemaTest, LambdaZeroEqualsUma) {
  const std::vector<double> xs = RandomWalk(50, 6);
  prob::Rng rng(7);
  std::vector<double> sigmas(xs.size());
  for (double& s : sigmas) s = rng.Uniform(0.4, 1.0);
  FilterOptions options;
  options.half_window = 3;
  options.lambda = 0.0;
  auto uema = UncertainExponentialMovingAverage(xs, sigmas, options);
  auto uma = UncertainMovingAverage(xs, sigmas, options);
  ASSERT_TRUE(uema.ok());
  ASSERT_TRUE(uma.ok());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_NEAR(uema.ValueOrDie()[i], uma.ValueOrDie()[i], 1e-12);
  }
}

TEST(UemaTest, MatchesHandComputedWeights) {
  // Eq. 18 on a 3-point window: weights e^-λ|j-i| / s_j, normalized by
  // Σ e^-λ|j-i| (note: the denominator does NOT carry 1/s_j).
  const std::vector<double> xs{2.0, 4.0, 6.0};
  const std::vector<double> sigmas{1.0, 2.0, 4.0};
  FilterOptions options;
  options.half_window = 1;
  options.lambda = 0.5;
  auto uema = UncertainExponentialMovingAverage(xs, sigmas, options);
  ASSERT_TRUE(uema.ok());
  const double w = std::exp(-0.5);
  const double expected_center =
      (2.0 * w / 1.0 + 4.0 * 1.0 / 2.0 + 6.0 * w / 4.0) / (w + 1.0 + w);
  EXPECT_NEAR(uema.ValueOrDie()[1], expected_center, 1e-12);
}

TEST(UemaTest, TimeSeriesOverloadPreservesMetadata) {
  TimeSeries s({1.0, 2.0, 3.0}, 5, "f/2");
  const std::vector<double> sigmas{1.0, 1.0, 1.0};
  FilterOptions options;
  auto f = UncertainExponentialMovingAverage(s, sigmas, options);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f.ValueOrDie().label(), 5);
  EXPECT_EQ(f.ValueOrDie().id(), "f/2");
}

// Parameterized sanity sweep over (w, lambda): output finite, same length,
// and bounded by window extremes after sigma scaling.
class FilterSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(FilterSweep, OutputsAreFiniteAndSized) {
  const auto [w, lambda] = GetParam();
  const std::vector<double> xs = RandomWalk(37, 8);
  std::vector<double> sigmas(xs.size(), 0.7);
  FilterOptions options;
  options.half_window = w;
  options.lambda = lambda;
  for (const auto& out :
       {MovingAverage(xs, options), ExponentialMovingAverage(xs, options),
        UncertainMovingAverage(xs, sigmas, options).ValueOrDie(),
        UncertainExponentialMovingAverage(xs, sigmas, options).ValueOrDie()}) {
    ASSERT_EQ(out.size(), xs.size());
    for (double v : out) EXPECT_TRUE(std::isfinite(v));
  }
}

INSTANTIATE_TEST_SUITE_P(
    WindowsAndDecays, FilterSweep,
    ::testing::Combine(::testing::Values(std::size_t{0}, std::size_t{1},
                                         std::size_t{2}, std::size_t{5},
                                         std::size_t{20}),
                       ::testing::Values(0.0, 0.1, 1.0, 5.0)));

}  // namespace
}  // namespace uts::ts
