// Unit tests for the thread pool and deterministic ParallelFor (src/exec).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "exec/parallel_for.hpp"
#include "exec/thread_pool.hpp"

namespace uts::exec {
namespace {

TEST(ThreadPoolTest, ResolvesZeroToHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  constexpr int kTasks = 100;
  // Declared before the pool: the pool's destructor joins its workers, so
  // no task can outlive these and notify a destroyed condition variable.
  int done = 0;
  std::mutex mutex;
  std::condition_variable cv;

  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      std::lock_guard<std::mutex> lock(mutex);
      if (++done == kTasks) cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(mutex);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                          [&] { return done == kTasks; }));
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&] { done.fetch_add(1); });
    }
  }  // ~ThreadPool joins after the queue is drained
  EXPECT_EQ(done.load(), 50);
}

TEST(NumChunksTest, BlockedPartitionArithmetic) {
  EXPECT_EQ(NumChunks(0, 4), 0u);
  EXPECT_EQ(NumChunks(1, 4), 1u);
  EXPECT_EQ(NumChunks(4, 4), 1u);
  EXPECT_EQ(NumChunks(5, 4), 2u);
  EXPECT_EQ(NumChunks(8, 4), 2u);
  EXPECT_EQ(NumChunks(9, 4), 3u);
}

TEST(ParallelForTest, EmptyRangeNeverInvokesBody) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  ParallelFor(&pool, 0, 16, [&](std::size_t, std::size_t) { calls++; });
  ParallelFor(nullptr, 0, 16, [&](std::size_t, std::size_t) { calls++; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  for (std::size_t n : {1u, 7u, 64u, 1000u}) {
    for (std::size_t grain : {1u, 3u, 64u, 2000u}) {
      std::vector<std::atomic<int>> hits(n);
      for (auto& h : hits) h.store(0);
      ParallelFor(&pool, n, grain, [&](std::size_t begin, std::size_t end) {
        ASSERT_LT(begin, end);
        ASSERT_LE(end, n);
        for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
      });
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "index " << i << " n=" << n
                                     << " grain=" << grain;
      }
    }
  }
}

TEST(ParallelForTest, InlineWhenPoolIsNullOrSingleWorker) {
  // With no pool (or one worker) the body must run on the calling thread.
  const auto caller = std::this_thread::get_id();
  ParallelFor(nullptr, 100, 10, [&](std::size_t, std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
  ThreadPool single(1);
  ParallelFor(&single, 100, 10, [&](std::size_t, std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ParallelForTest, PropagatesBodyException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      ParallelFor(&pool, 100, 10,
                  [](std::size_t begin, std::size_t) {
                    if (begin == 50) throw std::runtime_error("chunk 5 died");
                  }),
      std::runtime_error);
}

TEST(ParallelForTest, RethrowsLowestChunkFailureDeterministically) {
  // Two chunks fail; the caller must always observe the lower-indexed one,
  // independent of which worker finished first.
  ThreadPool pool(8);
  for (int repeat = 0; repeat < 20; ++repeat) {
    try {
      ParallelFor(&pool, 100, 10, [](std::size_t begin, std::size_t) {
        if (begin == 30) throw std::runtime_error("chunk 3");
        if (begin == 70) throw std::runtime_error("chunk 7");
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "chunk 3");
    }
  }
}

TEST(ParallelForTest, ExceptionDoesNotAbortOtherChunks) {
  // All chunks run to completion even when one throws.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  for (auto& h : hits) h.store(0);
  EXPECT_THROW(ParallelFor(&pool, 100, 10,
                           [&](std::size_t begin, std::size_t end) {
                             for (std::size_t i = begin; i < end; ++i) {
                               hits[i].fetch_add(1);
                             }
                             if (begin == 0) throw std::runtime_error("x");
                           }),
               std::runtime_error);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

}  // namespace
}  // namespace uts::exec
