// Unit tests for Status / Result (src/common).

#include <gtest/gtest.h>

#include <sstream>

#include "common/result.hpp"
#include "common/status.hpp"

namespace uts {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, FactoryOk) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, InvalidArgumentCarriesMessage) {
  Status s = Status::InvalidArgument("bad window");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad window");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad window");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::NotSupported("x").code(), StatusCode::kNotSupported);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NumericError("x").code(), StatusCode::kNumericError);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kInvalidArgument), "InvalidArgument");
  EXPECT_EQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_EQ(StatusCodeName(StatusCode::kIOError), "IOError");
  EXPECT_EQ(StatusCodeName(StatusCode::kCorruption), "Corruption");
  EXPECT_EQ(StatusCodeName(StatusCode::kNotSupported), "NotSupported");
  EXPECT_EQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_EQ(StatusCodeName(StatusCode::kNumericError), "NumericError");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_NE(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_NE(Status::NotFound("a"), Status::IOError("a"));
}

TEST(StatusTest, StreamInsertion) {
  std::ostringstream os;
  os << Status::Corruption("ragged row");
  EXPECT_EQ(os.str(), "Corruption: ragged row");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status Chain(int x) {
  UTS_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_EQ(Chain(-1).code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, ValueOrFallback) {
  Result<int> good = 7;
  Result<int> bad = Status::IOError("x");
  EXPECT_EQ(good.ValueOr(-1), 7);
  EXPECT_EQ(bad.ValueOr(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string v = std::move(r).ValueOrDie();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, MutableAccess) {
  Result<std::vector<int>> r = std::vector<int>{1, 2};
  r.ValueOrDie().push_back(3);
  EXPECT_EQ(r.ValueOrDie().size(), 3u);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> DoubleIt(int x) {
  UTS_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto ok = DoubleIt(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.ValueOrDie(), 42);
  auto bad = DoubleIt(0);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace uts
