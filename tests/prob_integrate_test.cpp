// Unit tests for numerical integration (src/prob/integrate).

#include <gtest/gtest.h>

#include <cmath>

#include "prob/integrate.hpp"
#include "prob/special.hpp"

namespace uts::prob {
namespace {

TEST(AdaptiveSimpsonTest, PolynomialIsExact) {
  // Simpson is exact for cubics.
  auto cubic = [](double x) { return 3.0 * x * x * x - x + 2.0; };
  auto result = IntegrateAdaptiveSimpson(cubic, -1.0, 3.0);
  ASSERT_TRUE(result.ok());
  // Antiderivative: (3/4)x^4 - x^2/2 + 2x.
  const double expected = (0.75 * 81 - 4.5 + 6.0) - (0.75 - 0.5 - 2.0);
  EXPECT_NEAR(result.ValueOrDie(), expected, 1e-10);
}

TEST(AdaptiveSimpsonTest, GaussianIntegral) {
  auto result = IntegrateAdaptiveSimpson(
      [](double x) { return NormalPdf(x); }, -10.0, 10.0);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.ValueOrDie(), 1.0, 1e-9);
}

TEST(AdaptiveSimpsonTest, NarrowSpikeIsResolved) {
  // A spike of width 1e-3 inside a wide interval; adaptive refinement must
  // find and resolve it.
  auto spike = [](double x) { return NormalPdf(x, 0.25, 1e-3); };
  auto result = IntegrateAdaptiveSimpson(spike, 0.0, 1.0);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.ValueOrDie(), 1.0, 1e-6);
}

TEST(AdaptiveSimpsonTest, DiscontinuousIntegrand) {
  // Step function: converges because each subinterval eventually isolates
  // the jump.
  auto step = [](double x) { return x < 0.3 ? 1.0 : 2.0; };
  auto result = IntegrateAdaptiveSimpson(step, 0.0, 1.0);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.ValueOrDie(), 0.3 + 1.4, 1e-6);
}

TEST(AdaptiveSimpsonTest, EmptyIntervalIsZero) {
  auto result =
      IntegrateAdaptiveSimpson([](double x) { return x; }, 2.0, 2.0);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.ValueOrDie(), 0.0);
}

TEST(AdaptiveSimpsonTest, ReversedBoundsRejected) {
  auto result =
      IntegrateAdaptiveSimpson([](double x) { return x; }, 1.0, 0.0);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(CompositeSimpsonTest, QuadraticIsExact) {
  auto quadratic = [](double x) { return x * x; };
  EXPECT_NEAR(IntegrateSimpson(quadratic, 0.0, 3.0, 2), 9.0, 1e-12);
}

TEST(CompositeSimpsonTest, ConvergesWithRefinement) {
  auto f = [](double x) { return std::exp(-x) * std::sin(5.0 * x); };
  const double exact = 5.0 / 26.0 * (1.0 - std::exp(-M_PI) * std::cos(5 * M_PI) * 1.0)
      ; // computed below instead
  (void)exact;
  const double coarse = IntegrateSimpson(f, 0.0, M_PI, 16);
  const double fine = IntegrateSimpson(f, 0.0, M_PI, 1024);
  const double reference = IntegrateSimpson(f, 0.0, M_PI, 65536);
  EXPECT_LT(std::fabs(fine - reference), std::fabs(coarse - reference));
  EXPECT_NEAR(fine, reference, 1e-8);
}

class GaussLegendreOrder : public ::testing::TestWithParam<int> {};

TEST_P(GaussLegendreOrder, IntegratesPolynomialOfMatchingDegreeExactly) {
  // n-point Gauss-Legendre is exact for degree 2n-1.
  const int n = GetParam();
  const int degree = 2 * n - 1;
  auto poly = [degree](double x) { return std::pow(x, degree) + 1.0; };
  // On [-1, 1] the odd powers cancel: integral = 2.
  EXPECT_NEAR(IntegrateGaussLegendre(poly, -1.0, 1.0, n), 2.0, 1e-10);
}

TEST_P(GaussLegendreOrder, MatchesSimpsonOnSmoothFunction) {
  const int n = GetParam();
  auto f = [](double x) { return std::cos(x) * std::exp(0.3 * x); };
  const double reference = IntegrateSimpson(f, -1.0, 2.0, 65536);
  if (n >= 8) {
    EXPECT_NEAR(IntegrateGaussLegendre(f, -1.0, 2.0, n), reference, 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, GaussLegendreOrder,
                         ::testing::Values(2, 4, 8, 16, 32, 64));

TEST(GaussLegendreTest, IntervalScaling) {
  auto f = [](double x) { return x * x; };
  EXPECT_NEAR(IntegrateGaussLegendre(f, 0.0, 3.0, 8), 9.0, 1e-12);
  EXPECT_NEAR(IntegrateGaussLegendre(f, -3.0, 3.0, 8), 18.0, 1e-12);
}

}  // namespace
}  // namespace uts::prob
