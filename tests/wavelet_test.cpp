// Unit + property tests for the Haar transform and the PROUD wavelet
// synopsis (src/wavelet).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "distance/lp.hpp"
#include "measures/proud.hpp"
#include "prob/rng.hpp"
#include "wavelet/haar.hpp"
#include "wavelet/proud_synopsis.hpp"

namespace uts::wavelet {
namespace {

std::vector<double> RandomSeries(std::size_t n, std::uint64_t seed) {
  prob::Rng rng(seed);
  std::vector<double> xs(n);
  for (double& v : xs) v = rng.Gaussian();
  return xs;
}

TEST(HaarTest, NextPowerOfTwo) {
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(2), 2u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(64), 64u);
  EXPECT_EQ(NextPowerOfTwo(65), 128u);
}

TEST(HaarTest, RejectsNonPowerOfTwo) {
  EXPECT_FALSE(HaarTransform(std::vector<double>{1.0, 2.0, 3.0}).ok());
  EXPECT_FALSE(HaarInverse(std::vector<double>{1.0, 2.0, 3.0}).ok());
  EXPECT_FALSE(HaarTransform(std::vector<double>{}).ok());
}

TEST(HaarTest, KnownSmallTransform) {
  // [1, 1, 1, 1]: all energy in the average coefficient = 1 * sqrt(4) = 2.
  auto coeffs = HaarTransform(std::vector<double>{1.0, 1.0, 1.0, 1.0});
  ASSERT_TRUE(coeffs.ok());
  EXPECT_NEAR(coeffs.ValueOrDie()[0], 2.0, 1e-12);
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_NEAR(coeffs.ValueOrDie()[i], 0.0, 1e-12);
  }
}

TEST(HaarTest, RoundTripIsExact) {
  for (std::size_t n : {1u, 2u, 4u, 8u, 64u, 256u}) {
    const auto xs = RandomSeries(n, n);
    auto coeffs = HaarTransform(xs);
    ASSERT_TRUE(coeffs.ok());
    auto back = HaarInverse(coeffs.ValueOrDie());
    ASSERT_TRUE(back.ok());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(back.ValueOrDie()[i], xs[i], 1e-10);
    }
  }
}

TEST(HaarTest, ParsevalEnergyPreservation) {
  const auto xs = RandomSeries(128, 5);
  auto coeffs = HaarTransform(xs);
  ASSERT_TRUE(coeffs.ok());
  double ex = 0.0, ec = 0.0;
  for (double v : xs) ex += v * v;
  for (double v : coeffs.ValueOrDie()) ec += v * v;
  EXPECT_NEAR(ex, ec, 1e-9);
}

TEST(HaarTest, DistancePreservation) {
  // Orthonormality: ||T(x) - T(y)|| == ||x - y||.
  const auto a = RandomSeries(64, 6);
  const auto b = RandomSeries(64, 7);
  const auto ta = HaarTransform(a).ValueOrDie();
  const auto tb = HaarTransform(b).ValueOrDie();
  EXPECT_NEAR(distance::Euclidean(ta, tb), distance::Euclidean(a, b), 1e-9);
}

TEST(HaarTest, PaddedTransformHandlesArbitraryLengths) {
  const auto xs = RandomSeries(100, 8);
  const auto coeffs = HaarTransformPadded(xs);
  EXPECT_EQ(coeffs.size(), 128u);
}

// ----------------------------------------------------------------- synopsis

class SynopsisLowerBound : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SynopsisLowerBound, SynopsisDistanceLowerBoundsTrueDistance) {
  const std::size_t k = GetParam();
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto a = RandomSeries(100, 10 + seed);
    const auto b = RandomSeries(100, 200 + seed);
    const HaarSynopsis sa = BuildSynopsis(a, k);
    const HaarSynopsis sb = BuildSynopsis(b, k);
    auto lb = SynopsisDistance(sa, sb);
    ASSERT_TRUE(lb.ok());
    EXPECT_LE(lb.ValueOrDie(), distance::Euclidean(a, b) + 1e-9)
        << "k=" << k << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(CoefficientCounts, SynopsisLowerBound,
                         ::testing::Values(1u, 4u, 16u, 64u, 128u));

TEST(SynopsisTest, FullSynopsisIsExact) {
  const auto a = RandomSeries(64, 20);
  const auto b = RandomSeries(64, 21);
  const HaarSynopsis sa = BuildSynopsis(a, 64);
  const HaarSynopsis sb = BuildSynopsis(b, 64);
  EXPECT_NEAR(SynopsisDistance(sa, sb).ValueOrDie(),
              distance::Euclidean(a, b), 1e-9);
}

TEST(SynopsisTest, MoreCoefficientsTightenTheBound) {
  const auto a = RandomSeries(128, 22);
  const auto b = RandomSeries(128, 23);
  double prev = -1.0;
  for (std::size_t k : {2u, 8u, 32u, 128u}) {
    const double d = SynopsisDistance(BuildSynopsis(a, k), BuildSynopsis(b, k))
                         .ValueOrDie();
    EXPECT_GE(d, prev - 1e-9);
    prev = d;
  }
}

TEST(SynopsisTest, MismatchedTransformLengthsRejected) {
  const HaarSynopsis sa = BuildSynopsis(RandomSeries(64, 24), 8);
  const HaarSynopsis sb = BuildSynopsis(RandomSeries(100, 25), 8);
  EXPECT_FALSE(SynopsisDistance(sa, sb).ok());
}

TEST(SynopsisTest, MismatchedCoefficientCountsRejected) {
  // Regression: this used to silently compare min(k_a, k_b) coefficients,
  // weakening the bound without notice. Mixed synopsis sizes are rejected.
  const auto a = RandomSeries(64, 26);
  const auto b = RandomSeries(64, 27);
  const HaarSynopsis sa = BuildSynopsis(a, 8);
  const HaarSynopsis sb = BuildSynopsis(b, 16);
  EXPECT_FALSE(SynopsisDistance(sa, sb).ok());
  EXPECT_FALSE(SynopsisDistance(sb, sa).ok());
  // Equal counts still work.
  EXPECT_TRUE(SynopsisDistance(sa, BuildSynopsis(b, 8)).ok());
}

// Admissibility on adversarial inputs — the property the prune-before-score
// index cascade (src/index) depends on: for any input shape, the synopsis
// distance must never exceed the true Euclidean distance (modulo rounding).

std::vector<double> TieHeavySeries(std::size_t n, std::uint64_t seed) {
  prob::Rng rng(seed);
  std::vector<double> xs(n);
  for (double& v : xs) v = static_cast<double>(rng.Next() % 2);
  return xs;
}

TEST(SynopsisAdmissibility, HoldsOnPaddedLengths) {
  // Non-power-of-two lengths exercise the zero-padding path; the padding is
  // identical on both sides, so prefix distances still lower-bound.
  for (std::size_t n : {1u, 3u, 5u, 17u, 33u, 100u, 127u, 129u}) {
    for (std::size_t k : {1u, 2u, 8u, 64u}) {
      for (std::uint64_t seed = 0; seed < 4; ++seed) {
        const auto a = RandomSeries(n, 40 + seed);
        const auto b = RandomSeries(n, 140 + seed);
        const auto lb = SynopsisDistance(BuildSynopsis(a, k),
                                         BuildSynopsis(b, k));
        ASSERT_TRUE(lb.ok()) << lb.status();
        EXPECT_LE(lb.ValueOrDie(), distance::Euclidean(a, b) + 1e-9)
            << "n=" << n << " k=" << k << " seed=" << seed;
      }
    }
  }
}

TEST(SynopsisAdmissibility, HoldsOnConstantSeries) {
  // Constant series concentrate all energy in the average coefficient: the
  // k=1 synopsis is already exact, so the bound must be tight, not violated.
  for (double level : {0.0, 1.0, -3.5, 1e6}) {
    const std::vector<double> a(37, level);
    const std::vector<double> b(37, level + 2.0);
    for (std::size_t k : {1u, 4u, 32u}) {
      const auto lb =
          SynopsisDistance(BuildSynopsis(a, k), BuildSynopsis(b, k));
      ASSERT_TRUE(lb.ok());
      const double truth = distance::Euclidean(a, b);
      EXPECT_LE(lb.ValueOrDie(), truth + 1e-9 * (1.0 + truth))
          << "level=" << level << " k=" << k;
    }
  }
  // Identical constants: distance 0, bound must be ~0 too.
  const std::vector<double> c(64, 7.25);
  EXPECT_NEAR(SynopsisDistance(BuildSynopsis(c, 8), BuildSynopsis(c, 8))
                  .ValueOrDie(),
              0.0, 1e-12);
}

TEST(SynopsisAdmissibility, HoldsOnTieHeavyGrids) {
  // Values on a {0,1} grid make squared distances collide constantly —
  // the same adversarial shape the engine parity suites use.
  for (std::size_t n : {8u, 13u, 64u, 100u}) {
    for (std::size_t k : {1u, 4u, 16u}) {
      for (std::uint64_t seed = 0; seed < 6; ++seed) {
        const auto a = TieHeavySeries(n, 60 + seed);
        const auto b = TieHeavySeries(n, 160 + seed);
        const auto lb = SynopsisDistance(BuildSynopsis(a, k),
                                         BuildSynopsis(b, k));
        ASSERT_TRUE(lb.ok());
        EXPECT_LE(lb.ValueOrDie(), distance::Euclidean(a, b) + 1e-9)
            << "n=" << n << " k=" << k << " seed=" << seed;
      }
    }
  }
}

TEST(SynopsisAdmissibility, HoldsOnNearIdenticalLargeMagnitude) {
  // Large norms with tiny differences stress the absolute rounding of the
  // transform: the bound may only exceed the truth by O(eps * ||series||).
  const auto base = RandomSeries(100, 70);
  std::vector<double> a(base), b(base);
  for (double& v : a) v = v * 1e8;
  b = a;
  b[17] += 1.0;  // relative perturbation ~1e-8
  const double truth = distance::Euclidean(a, b);
  double norm_sq = 0.0;
  for (double v : a) norm_sq += v * v;
  const double slack = 1e-12 * 2.0 * std::sqrt(norm_sq);
  for (std::size_t k : {1u, 16u, 128u}) {
    const auto lb = SynopsisDistance(BuildSynopsis(a, k), BuildSynopsis(b, k));
    ASSERT_TRUE(lb.ok());
    EXPECT_LE(lb.ValueOrDie(), truth + slack) << "k=" << k;
  }
}

// ----------------------------------------------------- PROUD over synopsis

TEST(ProudSynopsisTest, NoFalseDismissalsVsExactProud) {
  // The filter-and-refine decision must equal the exact PROUD decision:
  // the prune is an upper bound on the probability (tau >= 0.5).
  ProudSynopsisOptions options;
  options.proud.tau = 0.8;
  options.proud.sigma = 0.5;
  options.synopsis_size = 8;
  const ProudSynopsisMatcher matcher(options);
  const measures::Proud exact(options.proud);

  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto x = RandomSeries(96, 300 + seed);
    const auto y = RandomSeries(96, 500 + seed);
    const HaarSynopsis sx = matcher.Synopsize(x);
    const HaarSynopsis sy = matcher.Synopsize(y);
    for (double eps : {4.0, 8.0, 12.0, 16.0, 20.0}) {
      auto fast = matcher.Matches(sx, sy, x, y, eps);
      ASSERT_TRUE(fast.ok());
      EXPECT_EQ(fast.ValueOrDie(), exact.Matches(x, y, eps))
          << "seed=" << seed << " eps=" << eps;
    }
  }
}

TEST(ProudSynopsisTest, OptimisticProbabilityUpperBoundsExact) {
  ProudSynopsisOptions options;
  options.proud.tau = 0.9;
  options.proud.sigma = 0.7;
  options.synopsis_size = 4;
  const ProudSynopsisMatcher matcher(options);
  const measures::Proud exact(options.proud);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto x = RandomSeries(64, 700 + seed);
    const auto y = RandomSeries(64, 900 + seed);
    const HaarSynopsis sx = matcher.Synopsize(x);
    const HaarSynopsis sy = matcher.Synopsize(y);
    for (double eps : {6.0, 10.0, 14.0}) {
      const double optimistic =
          matcher.OptimisticMatchProbability(sx, sy, x.size(), eps)
              .ValueOrDie();
      const double truth = exact.MatchProbability(x, y, eps);
      if (truth >= 0.5) {
        EXPECT_GE(optimistic, truth - 1e-9)
            << "seed=" << seed << " eps=" << eps;
      }
    }
  }
}

TEST(ProudSynopsisTest, PruningActuallyHappens) {
  ProudSynopsisOptions options;
  options.proud.tau = 0.9;
  options.proud.sigma = 0.3;
  options.synopsis_size = 16;
  const ProudSynopsisMatcher matcher(options);
  ProudSynopsisStats stats;
  // Distant series with a tight epsilon: the synopsis alone must reject
  // most of them.
  std::size_t decisions = 0;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    auto x = RandomSeries(64, 1000 + seed);
    auto y = RandomSeries(64, 2000 + seed);
    for (double& v : y) v += 3.0;  // push far away
    const HaarSynopsis sx = matcher.Synopsize(x);
    const HaarSynopsis sy = matcher.Synopsize(y);
    auto r = matcher.Matches(sx, sy, x, y, 2.0, &stats);
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r.ValueOrDie());
    ++decisions;
  }
  EXPECT_EQ(stats.pruned + stats.refined, decisions);
  EXPECT_GT(stats.pruned, decisions / 2);
}

}  // namespace
}  // namespace uts::wavelet
