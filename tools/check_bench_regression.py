#!/usr/bin/env python3
"""Bench-regression gate for the shared-engine hot paths and SIMD kernels.

Compares a fresh ``bench_micro_kernels --benchmark_format=json`` run against
the committed ``BENCH_uncertain_baseline.json`` and fails (exit 1) when:

* either JSON was produced by a debug build — ``bench_micro_kernels`` emits
  its own ``library_build_type`` via ``benchmark::AddCustomContext`` after
  the stock key describing the google-benchmark library's build, and
  ``json.load`` keeps the last duplicate key, so the value seen here is the
  benchmark binary's actual build type. Debug timings gate nothing and a
  baseline recorded from one would wave real regressions through;
* an engine path worsened more than ``--max-regression`` (default 25%)
  against the baseline's engine-vs-scalar cpu-time ratio. Ratios, not
  absolute times: CI runners and the baseline machine differ in absolute
  speed, but a genuine regression (say, an accidental per-sweep repack)
  moves the ratio on any machine;
* the AVX2 kernel's speedup over the scalar reference fell below the
  per-pair floor (the ISSUE 6 acceptance gate: >=3x on the blocked
  Euclidean 1-vs-all at length 1024, L2-resident candidate block). Skipped
  with a warning when the current run reports ``uts_simd_level`` other
  than ``avx2`` (hardware without AVX2+FMA cannot measure the pair);
* a kernel's ``peak_fraction`` bandwidth counter (achieved GB/s divided by
  the in-binary STREAM-triad peak, so machine-normalized) dropped more
  than ``--max-regression`` below the baseline's. Applied to every
  benchmark that carries the counter in both files;
* the index cascade's ``pruned_fraction`` counter on the walk 10-NN bench
  fell below its floor in the *current* run. The counter comes from the
  cascade's own cost accounting, so an index that silently stops being
  built (the engine falls back to full scans, charging every candidate as
  touched) reports 0.0 and fails loudly — a wall-time gate alone could
  miss that on a fast machine.

Usage:
  check_bench_regression.py BASELINE.json CURRENT.json [--max-regression 0.25]
"""

import argparse
import json
import sys

# (label, engine benchmark, scalar reference benchmark). The engine entries
# are the shared-engine hot paths guarded by the gate: the DUST closed-form
# and table-lookup sweeps (query::UncertainEngine) and the ground-truth
# 10-NN build (query::DistanceMatrixEngine at one thread).
PAIRS = [
    ("DUST closed-form sweep", "BM_DustScanEngineClosedForm",
     "BM_DustScanScalarClosedForm"),
    ("DUST table-lookup sweep", "BM_DustScanEngineLookup",
     "BM_DustScanScalarLookup"),
    ("ground-truth kNN build", "BM_GroundTruthKnnEngineThreads/1/real_time",
     "BM_GroundTruthKnnSeedPath"),
    ("indexed walk 10-NN vs scan", "BM_GroundTruthKnnEngineWalkIndexed",
     "BM_GroundTruthKnnEngineWalk"),
    ("paged 10-NN vs resident", "BM_GroundTruthKnnEnginePaged",
     "BM_GroundTruthKnnEngineThreads/1/real_time"),
]

# (label, benchmark, minimum faults_per_iter). Enforced on the *current*
# run: the paged twin's buffer pool must actually fault blocks back from
# the spill log every sweep. With a 64 KiB budget over a 256 KiB dataset
# the clock sweep re-faults most of the 8 blocks per pass; a value below
# the floor means the budget stopped being applied (store silently built
# resident) and the paged/resident ratio above is measuring nothing.
FAULT_FLOORS = [
    ("paged 10-NN actually pages", "BM_GroundTruthKnnEnginePaged", 4.0),
]

# (label, benchmark, minimum pruned_fraction). Enforced on the *current*
# run: the benchmark must exist and its pruned_fraction counter must be
# >= floor. The walk dataset concentrates energy in the low-frequency Haar
# coefficients, so a healthy 16-coefficient synopsis prunes ~94% of
# candidates; 0.70 leaves headroom for dataset/seed tweaks while still
# catching a disabled or de-tuned index (which reports 0.0).
PRUNED_FLOORS = [
    ("indexed walk 10-NN pruning", "BM_GroundTruthKnnEngineWalkIndexed",
     0.70),
]

# (label, scalar benchmark, AVX2 benchmark, minimum speedup). Enforced on
# the *current* run: cpu_time(scalar) / cpu_time(avx2) must be >= floor.
SIMD_SPEEDUPS = [
    ("blocked Euclidean 1-vs-all @1024 (L2-resident)",
     "BM_ScanEuclideanBatchSoA_Scalar/1024/128",
     "BM_ScanEuclideanBatchSoA_Avx2/1024/128",
     3.0),
]


def load_report(path):
    with open(path) as f:
        report = json.load(f)
    times = {}
    fractions = {}
    pruned = {}
    faults = {}
    for bench in report.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        if bench.get("error_occurred"):
            # e.g. the *_Avx2 kernels skipping on non-AVX2 hardware.
            continue
        times[bench["name"]] = float(bench["cpu_time"])
        if "peak_fraction" in bench:
            fractions[bench["name"]] = float(bench["peak_fraction"])
        if "pruned_fraction" in bench:
            pruned[bench["name"]] = float(bench["pruned_fraction"])
        if "faults_per_iter" in bench:
            faults[bench["name"]] = float(bench["faults_per_iter"])
    return report.get("context", {}), times, fractions, pruned, faults


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="allowed fractional worsening of the "
                             "engine/scalar time ratio and of peak_fraction "
                             "bandwidth counters (default 0.25)")
    args = parser.parse_args()

    base_ctx, baseline, base_frac, _, _ = load_report(args.baseline)
    cur_ctx, current, cur_frac, cur_pruned, cur_faults = load_report(
        args.current)

    failures = []

    # -- Build-type gate: debug timings gate nothing. ------------------------
    for which, ctx in (("baseline", base_ctx), ("current", cur_ctx)):
        build_type = ctx.get("library_build_type", "<missing>")
        print(f"{which} library_build_type: {build_type}")
        if build_type == "debug":
            failures.append(
                f"{which} JSON was recorded from a debug build "
                f"(library_build_type={build_type!r}); re-record on Release "
                f"(cmake -DCMAKE_BUILD_TYPE=Release)")

    # -- Engine-vs-scalar ratio gate. ----------------------------------------
    print(f"\n{'path':<28} {'base ratio':>10} {'now ratio':>10} {'change':>8}")
    for label, engine, scalar in PAIRS:
        missing = [n for n in (engine, scalar) if n not in current]
        if missing:
            failures.append(f"{label}: missing in current run: {missing}")
            continue
        if engine not in baseline or scalar not in baseline:
            # The committed baseline predates this benchmark; report, don't
            # silently pass it off as covered.
            print(f"{label:<28} {'—':>10} "
                  f"{current[engine] / current[scalar]:>10.4f}   (no baseline"
                  f" entry, skipped)")
            continue
        base_ratio = baseline[engine] / baseline[scalar]
        now_ratio = current[engine] / current[scalar]
        change = now_ratio / base_ratio - 1.0
        print(f"{label:<28} {base_ratio:>10.4f} {now_ratio:>10.4f} "
              f"{change:>+7.1%}")
        if now_ratio > base_ratio * (1.0 + args.max_regression):
            failures.append(
                f"{label}: engine/scalar ratio {now_ratio:.4f} worsened "
                f"{change:+.1%} vs baseline {base_ratio:.4f} "
                f"(limit +{args.max_regression:.0%})")

    # -- Index pruning floor (current run). ----------------------------------
    print()
    for label, bench, floor in PRUNED_FLOORS:
        if bench not in current:
            failures.append(f"{label}: missing in current run: ['{bench}']")
            continue
        if bench not in cur_pruned:
            failures.append(
                f"{label}: {bench} no longer reports a pruned_fraction "
                f"counter")
            continue
        fraction = cur_pruned[bench]
        verdict = "ok" if fraction >= floor else "FAIL"
        print(f"{label}: pruned_fraction {fraction:.3f} "
              f"(floor {floor:.2f}) {verdict}")
        if fraction < floor:
            failures.append(
                f"{label}: pruned_fraction {fraction:.3f} below the "
                f"{floor:.2f} floor — the synopsis index is disabled or no "
                f"longer pruning")

    # -- Paged-store fault floor (current run). ------------------------------
    for label, bench, floor in FAULT_FLOORS:
        if bench not in current:
            failures.append(f"{label}: missing in current run: ['{bench}']")
            continue
        if bench not in cur_faults:
            failures.append(
                f"{label}: {bench} no longer reports a faults_per_iter "
                f"counter")
            continue
        rate = cur_faults[bench]
        verdict = "ok" if rate >= floor else "FAIL"
        print(f"{label}: faults_per_iter {rate:.1f} "
              f"(floor {floor:.1f}) {verdict}")
        if rate < floor:
            failures.append(
                f"{label}: faults_per_iter {rate:.1f} below the {floor:.1f} "
                f"floor — the buffer pool stopped paging, so the "
                f"paged/resident ratio is not measuring the storage tier")

    # -- SIMD speedup floor (current run). -----------------------------------
    simd_level = cur_ctx.get("uts_simd_level", "<missing>")
    print(f"\ncurrent uts_simd_level: {simd_level}")
    if simd_level != "avx2":
        print("  AVX2 not active in the current run; speedup floors skipped")
    else:
        for label, scalar, avx2, floor in SIMD_SPEEDUPS:
            missing = [n for n in (scalar, avx2) if n not in current]
            if missing:
                failures.append(
                    f"{label}: missing in current run: {missing}")
                continue
            speedup = current[scalar] / current[avx2]
            verdict = "ok" if speedup >= floor else "FAIL"
            print(f"  {label}: {speedup:.2f}x (floor {floor:.1f}x) {verdict}")
            if speedup < floor:
                failures.append(
                    f"{label}: AVX2 speedup {speedup:.2f}x below the "
                    f"{floor:.1f}x floor")

    # -- Bandwidth gate: peak_fraction per kernel, baseline vs current. ------
    shared = sorted(set(base_frac) & set(cur_frac))
    if shared:
        print(f"\n{'kernel':<44} {'base peak%':>10} {'now peak%':>10}")
        for name in shared:
            base_pf = base_frac[name]
            now_pf = cur_frac[name]
            print(f"{name:<44} {base_pf:>10.3f} {now_pf:>10.3f}")
            if now_pf < base_pf * (1.0 - args.max_regression):
                failures.append(
                    f"{name}: peak_fraction {now_pf:.3f} dropped "
                    f"{1.0 - now_pf / base_pf:.1%} below baseline "
                    f"{base_pf:.3f} (limit -{args.max_regression:.0%})")

    if failures:
        print("\nFAIL: bench gate violations", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nOK: build type, engine ratios, pruning floor, SIMD floors and "
          "bandwidth within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
