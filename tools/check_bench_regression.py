#!/usr/bin/env python3
"""Bench-regression gate for the shared-engine hot paths.

Compares a fresh ``bench_micro_kernels --benchmark_format=json`` run against
the committed ``BENCH_uncertain_baseline.json`` and fails (exit 1) when an
engine path regressed more than ``--max-regression`` (default 25%).

CI runners and the machine the baseline was recorded on differ in absolute
speed, so absolute times are not comparable. The gate therefore checks the
*engine-vs-scalar ratio*: each guarded benchmark is paired with the scalar
reference path measured in the same process, and the engine path fails only
when cpu_time(engine) / cpu_time(scalar) worsened by more than the allowed
fraction relative to the baseline's ratio. A genuine engine regression (say,
an accidental per-sweep repack) moves the ratio on any machine; a uniformly
slower runner does not.

Usage:
  check_bench_regression.py BASELINE.json CURRENT.json [--max-regression 0.25]
"""

import argparse
import json
import sys

# (label, engine benchmark, scalar reference benchmark). The engine entries
# are the shared-engine hot paths guarded by the gate: the DUST closed-form
# and table-lookup sweeps (query::UncertainEngine) and the ground-truth
# 10-NN build (query::DistanceMatrixEngine at one thread).
PAIRS = [
    ("DUST closed-form sweep", "BM_DustScanEngineClosedForm",
     "BM_DustScanScalarClosedForm"),
    ("DUST table-lookup sweep", "BM_DustScanEngineLookup",
     "BM_DustScanScalarLookup"),
    ("ground-truth kNN build", "BM_GroundTruthKnnEngineThreads/1/real_time",
     "BM_GroundTruthKnnSeedPath"),
]


def load_times(path):
    with open(path) as f:
        report = json.load(f)
    times = {}
    for bench in report.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        times[bench["name"]] = float(bench["cpu_time"])
    return times


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="allowed fractional worsening of the "
                             "engine/scalar time ratio (default 0.25)")
    args = parser.parse_args()

    baseline = load_times(args.baseline)
    current = load_times(args.current)

    failures = []
    print(f"{'path':<28} {'base ratio':>10} {'now ratio':>10} {'change':>8}")
    for label, engine, scalar in PAIRS:
        missing = [n for n in (engine, scalar) if n not in current]
        if missing:
            failures.append(f"{label}: missing in current run: {missing}")
            continue
        if engine not in baseline or scalar not in baseline:
            # The committed baseline predates this benchmark; report, don't
            # silently pass it off as covered.
            print(f"{label:<28} {'—':>10} "
                  f"{current[engine] / current[scalar]:>10.4f}   (no baseline"
                  f" entry, skipped)")
            continue
        base_ratio = baseline[engine] / baseline[scalar]
        now_ratio = current[engine] / current[scalar]
        change = now_ratio / base_ratio - 1.0
        print(f"{label:<28} {base_ratio:>10.4f} {now_ratio:>10.4f} "
              f"{change:>+7.1%}")
        if now_ratio > base_ratio * (1.0 + args.max_regression):
            failures.append(
                f"{label}: engine/scalar ratio {now_ratio:.4f} worsened "
                f"{change:+.1%} vs baseline {base_ratio:.4f} "
                f"(limit +{args.max_regression:.0%})")

    if failures:
        print("\nFAIL: engine-path regression detected", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nOK: shared-engine paths within the regression budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
