/// \file uncertts_cli.cpp
/// \brief `uncertts` — command-line front end to the library.
///
/// Subcommands:
///
///   uncertts datasets
///       List the 17 built-in UCR-like generators with their sizes and
///       summary characteristics.
///
///   uncertts generate --name GunPoint --out gp.ucr [--series N] [--length N]
///                     [--seed S] [--znorm]
///       Write a synthetic dataset in UCR format.
///
///   uncertts perturb --in data.ucr --out noisy.ucr --error normal
///                    --sigma 0.5 [--mixed] [--seed S]
///       Perturb an exact UCR file with measurement error (observations
///       only; the error model is echoed on stderr for downstream use).
///
///   uncertts match --in data.ucr --query 0 --k 10
///                  [--measure euclid|dust|uma|uema|dtw] [--sigma 0.5]
///       Top-k similarity search inside a UCR file under a chosen measure;
///       `--sigma` supplies the reported per-point error std for the
///       uncertainty-aware measures.
///
///   uncertts motifs --in data.ucr --k 5
///       Top-k motif pairs under Euclidean distance.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "checked_parse.hpp"
#include "core/report.hpp"
#include "datagen/registry.hpp"
#include "distance/dtw.hpp"
#include "distance/lp.hpp"
#include "io/ucr_io.hpp"
#include "measures/dust.hpp"
#include "prob/distribution.hpp"
#include "query/engine.hpp"
#include "query/search.hpp"
#include "ts/buffer_pool.hpp"
#include "ts/filters.hpp"
#include "ts/normalize.hpp"
#include "uncertain/perturb.hpp"

using namespace uts;

namespace {

/// Minimal --flag value parser: collects `--key value` pairs and bare flags.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument '%s'\n", key.c_str());
        std::exit(2);
      }
      key = key.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";
      }
    }
  }

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  std::string Get(const std::string& key, const std::string& fallback = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  std::size_t GetSize(const std::string& key, std::size_t fallback) const {
    if (!Has(key)) return fallback;
    std::size_t value = 0;
    if (!tools::ParseSize(("--" + key).c_str(), Get(key).c_str(), &value)) {
      std::exit(2);
    }
    return value;
  }

  double GetDouble(const std::string& key, double fallback) const {
    if (!Has(key)) return fallback;
    double value = 0.0;
    if (!tools::ParseDouble(("--" + key).c_str(), Get(key).c_str(), &value)) {
      std::exit(2);
    }
    return value;
  }

  std::string Require(const std::string& key) const {
    if (!Has(key) || Get(key).empty()) {
      std::fprintf(stderr, "missing required --%s\n", key.c_str());
      std::exit(2);
    }
    return Get(key);
  }

 private:
  std::map<std::string, std::string> values_;
};

int CmdDatasets() {
  core::TextTable table({"name", "series", "length", "classes",
                         "avg pairwise dist (z-norm, sampled)"});
  for (const auto& spec : datagen::UcrLikeSpecs()) {
    const ts::Dataset sample =
        datagen::GenerateScaled(spec, 1, 48, 128).ZNormalizedCopy();
    const auto info = sample.Summarize(48);
    table.AddRow({spec.name, std::to_string(spec.num_series),
                  std::to_string(spec.length),
                  std::to_string(spec.shape.num_classes),
                  core::TextTable::Num(info.avg_pairwise_distance, 2)});
  }
  table.Print(std::cout);
  return 0;
}

int CmdGenerate(const Args& args) {
  const std::string name = args.Require("name");
  const std::string out = args.Require("out");
  auto spec = datagen::SpecByName(name);
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 1;
  }
  ts::Dataset dataset = datagen::GenerateScaled(
      spec.ValueOrDie(), args.GetSize("seed", 42), args.GetSize("series", 0),
      args.GetSize("length", 0));
  if (args.Has("znorm")) dataset = dataset.ZNormalizedCopy();
  const Status st = io::WriteUcrFile(dataset, out);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu series of length %zu to %s\n", dataset.size(),
              dataset.empty() ? 0 : dataset[0].size(), out.c_str());
  return 0;
}

Result<uncertain::ErrorSpec> SpecFromArgs(const Args& args) {
  const std::string kind_name = args.Get("error", "normal");
  prob::ErrorKind kind;
  if (kind_name == "normal") {
    kind = prob::ErrorKind::kNormal;
  } else if (kind_name == "uniform") {
    kind = prob::ErrorKind::kUniform;
  } else if (kind_name == "exponential") {
    kind = prob::ErrorKind::kExponential;
  } else {
    return Status::InvalidArgument("unknown --error '" + kind_name +
                                   "' (normal|uniform|exponential)");
  }
  const double sigma = args.GetDouble("sigma", 0.5);
  if (args.Has("mixed")) {
    return uncertain::ErrorSpec::MixedSigma(kind, 0.2, 1.0, 0.4);
  }
  return uncertain::ErrorSpec::Constant(kind, sigma);
}

int CmdPerturb(const Args& args) {
  auto dataset = io::ReadUcrFile(args.Require("in"), "input");
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  auto spec = SpecFromArgs(args);
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 1;
  }
  const auto perturbed = uncertain::PerturbDataset(
      dataset.ValueOrDie(), spec.ValueOrDie(), args.GetSize("seed", 42));
  ts::Dataset observed("noisy");
  for (const auto& series : perturbed.series) {
    observed.Add(series.AsTimeSeries());
  }
  const Status st = io::WriteUcrFile(observed, args.Require("out"));
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "error model: %s\n",
               spec.ValueOrDie().Describe().c_str());
  std::printf("wrote %zu perturbed series\n", observed.size());
  return 0;
}

int CmdMatch(const Args& args) {
  auto loaded = io::ReadUcrFile(args.Require("in"), "input");
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  const ts::Dataset& dataset = loaded.ValueOrDie();
  const std::size_t query = args.GetSize("query", 0);
  const std::size_t k = args.GetSize("k", 10);
  if (query >= dataset.size()) {
    std::fprintf(stderr, "--query %zu out of range (dataset has %zu series)\n",
                 query, dataset.size());
    return 1;
  }
  const std::string measure = args.Get("measure", "euclid");
  const double sigma = args.GetDouble("sigma", 0.5);

  // Build the reported-error view used by the uncertainty-aware measures.
  std::vector<uncertain::UncertainSeries> uncertain_view;
  if (measure == "dust" || measure == "uma" || measure == "uema") {
    auto err = prob::MakeNormalError(sigma);
    for (const auto& s : dataset) {
      uncertain_view.emplace_back(
          std::vector<double>(s.begin(), s.end()),
          std::vector<prob::ErrorDistributionPtr>(s.size(), err), s.label(),
          s.id());
    }
  }

  query::DistanceToFn distance_to;
  measures::Dust dust;
  std::vector<std::vector<double>> filtered;
  if (measure == "euclid") {
    distance_to = [&](std::size_t i) {
      return distance::Euclidean(dataset[query].values(),
                                 dataset[i].values());
    };
  } else if (measure == "dtw") {
    distance_to = [&](std::size_t i) {
      return distance::Dtw(dataset[query].values(), dataset[i].values());
    };
  } else if (measure == "dust") {
    distance_to = [&](std::size_t i) {
      return dust.Distance(uncertain_view[query], uncertain_view[i])
          .ValueOr(std::numeric_limits<double>::infinity());
    };
  } else if (measure == "uma" || measure == "uema") {
    ts::FilterOptions options;
    options.half_window = args.GetSize("window", 2);
    options.lambda = measure == "uema" ? args.GetDouble("lambda", 1.0) : 0.0;
    for (const auto& s : uncertain_view) {
      filtered.push_back(ts::UncertainMovingAverage(
                             s.observations(), s.Stddevs(), options)
                             .ValueOrDie());
      if (measure == "uema") {
        filtered.back() = ts::UncertainExponentialMovingAverage(
                              s.observations(), s.Stddevs(), options)
                              .ValueOrDie();
      }
    }
    distance_to = [&](std::size_t i) {
      return distance::Euclidean(filtered[query], filtered[i]);
    };
  } else {
    std::fprintf(stderr,
                 "unknown --measure '%s' (euclid|dtw|dust|uma|uema)\n",
                 measure.c_str());
    return 2;
  }

  std::vector<query::Neighbor> neighbors;
  bool report_cost = false;
  index::SearchCost cost;
  const std::size_t budget_mb = args.GetSize("memory-budget-mb", 0);
  if (measure == "euclid" && (args.Has("index") || budget_mb > 0)) {
    // Engine path: prune-before-score cascade and/or the paged storage
    // tier. Results are identical to the plain scan either way.
    query::EngineOptions eopts;
    eopts.index.enabled = args.Has("index");
    eopts.index.synopsis_coefficients = args.GetSize("coefficients", 16);
    if (budget_mb > 0) {
      ts::BufferPool::Options popts;
      popts.budget_bytes = budget_mb << 20;
      auto pool = ts::BufferPool::Create(popts);
      if (pool.ok()) {
        eopts.buffer_pool = std::move(pool).ValueOrDie();
      } else {
        std::fprintf(stderr, "--memory-budget-mb: %s; running resident\n",
                     pool.status().ToString().c_str());
      }
    }
    const query::DistanceMatrixEngine engine(dataset, eopts);
    if (args.Has("index") && !engine.index_enabled()) {
      std::fprintf(stderr,
                   "--index needs uniform-length series; running unindexed\n");
    }
    neighbors = engine.KNearestEuclidean(query, k, &cost);
    report_cost = args.Has("index");
  } else {
    if (args.Has("index")) {
      std::fprintf(stderr, "--index only applies to --measure euclid\n");
    }
    if (budget_mb > 0) {
      std::fprintf(stderr,
                   "--memory-budget-mb only applies to --measure euclid\n");
    }
    neighbors = query::KNearest(dataset.size(), query, k, distance_to);
  }
  core::TextTable table({"rank", "index", "id", "label", "distance"});
  for (std::size_t r = 0; r < neighbors.size(); ++r) {
    const auto& nb = neighbors[r];
    table.AddRow({std::to_string(r + 1), std::to_string(nb.index),
                  dataset[nb.index].id(),
                  std::to_string(dataset[nb.index].label()),
                  core::TextTable::Num(nb.distance, 4)});
  }
  std::printf("top-%zu of %s under %s (query %zu, label %d):\n", k,
              args.Get("in").c_str(), measure.c_str(), query,
              dataset[query].label());
  table.Print(std::cout);
  if (report_cost) {
    std::printf(
        "index cascade: touched %zu of %zu candidates "
        "(%zu pruned by synopsis bound, %zu abandoned early)\n",
        cost.candidates_touched, cost.candidates_total,
        cost.pruned_lower_bound, cost.abandoned_early);
  }
  return 0;
}

int CmdMotifs(const Args& args) {
  auto loaded = io::ReadUcrFile(args.Require("in"), "input");
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  const auto motifs =
      query::TopKMotifsEuclidean(loaded.ValueOrDie(), args.GetSize("k", 5));
  core::TextTable table({"rank", "a", "b", "distance"});
  for (std::size_t r = 0; r < motifs.size(); ++r) {
    table.AddRow({std::to_string(r + 1), std::to_string(motifs[r].a),
                  std::to_string(motifs[r].b),
                  core::TextTable::Num(motifs[r].distance, 4)});
  }
  table.Print(std::cout);
  return 0;
}

void PrintUsage() {
  std::printf(
      "uncertts — uncertain time-series similarity toolkit\n\n"
      "  uncertts datasets\n"
      "  uncertts generate --name GunPoint --out gp.ucr [--series N]"
      " [--length N] [--seed S] [--znorm]\n"
      "  uncertts perturb  --in data.ucr --out noisy.ucr"
      " [--error normal|uniform|exponential] [--sigma X] [--mixed] [--seed S]\n"
      "  uncertts match    --in data.ucr --query I --k N"
      " [--measure euclid|dtw|dust|uma|uema] [--sigma X]\n"
      "                    [--window N] [--lambda X]  (uma/uema smoothing)\n"
      "                    [--index [--coefficients K]]  (euclid only:\n"
      "                    prune-before-score cascade, identical results;\n"
      "                    reports candidates touched vs pruned)\n"
      "                    [--memory-budget-mb N]  (euclid only: page the\n"
      "                    SoA store through an N-MiB buffer pool; results\n"
      "                    are bitwise identical to the resident run)\n"
      "  uncertts motifs   --in data.ucr --k N\n"
      "  uncertts --help   this text\n\n"
      "Any command also accepts --force-scalar: pin the bit-exact scalar\n"
      "kernels instead of the runtime-dispatched SIMD level (equivalent to\n"
      "setting UNCERTTS_FORCE_SCALAR=1 in the environment).\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 2;
  }
  const std::string command = argv[1];
  const Args args(argc, argv);
  if (args.Has("force-scalar")) {
    // Engines read the override via distance::ResolveDispatch at
    // construction, so one env flip covers every engine the command builds.
    setenv("UNCERTTS_FORCE_SCALAR", "1", 1);
  }
  if (command == "datasets") return CmdDatasets();
  if (command == "generate") return CmdGenerate(args);
  if (command == "perturb") return CmdPerturb(args);
  if (command == "match") return CmdMatch(args);
  if (command == "motifs") return CmdMotifs(args);
  if (command == "--help" || command == "help") {
    PrintUsage();
    return 0;
  }
  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  PrintUsage();
  return 2;
}
