#!/usr/bin/env python3
"""Fence the storage tier: no raw SoaStore row access outside its owners.

``ts::SoaStore`` keeps three resident-only escape hatches —
``resident_row()``, ``resident_values()``, ``resident_data()`` — for the
two layers that legitimately sit below the paging tier:

* ``src/ts/``        — the store, the buffer pool and the view itself;
* ``src/distance/``  — the resident-only whole-store batch wrappers.

Every other consumer (engines, index, server, tools, benches) must go
through ``ts::StoreView`` pins so it works identically for paged stores.
This script greps the fenced trees for the escape-hatch tokens and fails
on any hit, so a new call site cannot silently reintroduce a
resident-only assumption. Tests are exempt: they pin the escape hatch's
own contract.

Usage:
    tools/check_store_raw_access.py [--root .]
"""

import argparse
import pathlib
import re
import sys

TOKENS = re.compile(r"\bresident_(?:row|values|data)\s*\(")

# Directories whose sources must stay on the pinned StoreView API.
FENCED = ["src/query", "src/index", "src/server", "src/io", "src/measures",
          "src/uncertain", "src/core", "src/datagen", "src/exec",
          "src/prob", "src/wavelet", "bench", "tools"]

SUFFIXES = {".cpp", ".hpp", ".cc", ".h"}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".", help="repository root")
    args = parser.parse_args()
    root = pathlib.Path(args.root)

    violations = []
    for fence in FENCED:
        base = root / fence
        if not base.exists():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in SUFFIXES:
                continue
            for lineno, line in enumerate(
                    path.read_text(errors="replace").splitlines(), 1):
                if TOKENS.search(line):
                    violations.append(
                        f"{path.relative_to(root)}:{lineno}: {line.strip()}")

    if violations:
        print("FAIL raw SoaStore access outside src/ts + src/distance "
              "(use ts::StoreView pins):")
        for v in violations:
            print(f"  {v}")
        return 1
    print("OK   no raw SoaStore row access outside the storage tier")
    return 0


if __name__ == "__main__":
    sys.exit(main())
