/// \file uncertts_client.cpp
/// \brief `uncertts_client` — command-line client for `uncertts_server`.
///
/// Subcommands (each takes the connection flags --socket or --host/--port,
/// plus --token to name the resumable session):
///
///   uncertts_client ping      [--delay-ms N] [--echo V] [--dataset NAME]
///   uncertts_client datasets
///   uncertts_client bind      --in data.ucr --name NAME [--error KIND]
///                             [--sigma X] [--mixed] [--seed S] [--samples N]
///   uncertts_client knn       --dataset NAME --query I --k N
///                             [--measure M] [--epsilon X]
///   uncertts_client range     --dataset NAME --query I --epsilon X
///                             [--measure M]
///   uncertts_client prq       --dataset NAME --query I --epsilon X --tau T
///                             [--measure M]
///   uncertts_client sweep     --dataset NAME --query I [--measure M]
///                             [--epsilon X]
///   uncertts_client knnsweep  --dataset NAME --query I --k N --num-queries N
///                             [--measure M] [--epsilon X]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "checked_parse.hpp"
#include "core/report.hpp"
#include "io/ucr_io.hpp"
#include "server/client.hpp"

using namespace uts;

namespace {

/// Minimal --flag value parser: collects `--key value` pairs and bare flags.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument '%s'\n", key.c_str());
        std::exit(2);
      }
      key = key.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";
      }
    }
  }

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  std::string Get(const std::string& key,
                  const std::string& fallback = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  std::size_t GetSize(const std::string& key, std::size_t fallback) const {
    if (!Has(key)) return fallback;
    std::size_t value = 0;
    if (!tools::ParseSize(("--" + key).c_str(), Get(key).c_str(), &value)) {
      std::exit(2);
    }
    return value;
  }

  double GetDouble(const std::string& key, double fallback) const {
    if (!Has(key)) return fallback;
    double value = 0.0;
    if (!tools::ParseDouble(("--" + key).c_str(), Get(key).c_str(), &value)) {
      std::exit(2);
    }
    return value;
  }

  std::uint16_t GetPort(const std::string& key, std::uint16_t fallback) const {
    if (!Has(key)) return fallback;
    std::uint16_t value = 0;
    if (!tools::ParsePort(("--" + key).c_str(), Get(key).c_str(), &value)) {
      std::exit(2);
    }
    return value;
  }

  std::string Require(const std::string& key) const {
    if (!Has(key) || Get(key).empty()) {
      std::fprintf(stderr, "missing required --%s\n", key.c_str());
      std::exit(2);
    }
    return Get(key);
  }

 private:
  std::map<std::string, std::string> values_;
};

void PrintUsage() {
  std::printf(
      "uncertts_client — client for the uncertts query daemon\n\n"
      "  uncertts_client ping      [--delay-ms N] [--echo V]"
      " [--dataset NAME]\n"
      "  uncertts_client datasets\n"
      "  uncertts_client bind      --in data.ucr --name NAME\n"
      "                            [--error normal|uniform|exponential]\n"
      "                            [--sigma X] [--mixed] [--seed S]"
      " [--samples N]\n"
      "  uncertts_client knn       --dataset NAME --query I --k N\n"
      "                            [--measure euclid|dust|proud|munich]"
      " [--epsilon X]\n"
      "  uncertts_client range     --dataset NAME --query I --epsilon X\n"
      "                            [--measure euclid|dust]\n"
      "  uncertts_client prq       --dataset NAME --query I --epsilon X"
      " --tau T\n"
      "                            [--measure proud|munich]\n"
      "  uncertts_client sweep     --dataset NAME --query I"
      " [--measure dust|proud|munich]\n"
      "                            [--epsilon X]\n"
      "  uncertts_client knnsweep  --dataset NAME --query I --k N"
      " --num-queries N\n"
      "                            [--measure euclid|dust|proud|munich]"
      " [--epsilon X]\n\n"
      "Connection flags accepted by every subcommand:\n"
      "  --socket PATH  Unix-domain socket of the server (default\n"
      "                 /tmp/uncertts.sock)\n"
      "  --host H       TCP host when --port is given (default 127.0.0.1)\n"
      "  --port N       TCP port of the server (overrides --socket)\n"
      "  --token T      stable session token; reconnecting with the same\n"
      "                 token resumes undelivered responses (default 1)\n"
      "  --help         this text\n");
}

server::WireMeasure ParseMeasure(const std::string& name) {
  if (name == "euclid") return server::WireMeasure::kEuclid;
  if (name == "dust") return server::WireMeasure::kDust;
  if (name == "proud") return server::WireMeasure::kProud;
  if (name == "munich") return server::WireMeasure::kMunich;
  std::fprintf(stderr, "unknown measure '%s'\n", name.c_str());
  std::exit(2);
}

server::WireErrorKind ParseErrorKind(const std::string& name) {
  if (name == "normal") return server::WireErrorKind::kNormal;
  if (name == "uniform") return server::WireErrorKind::kUniform;
  if (name == "exponential") return server::WireErrorKind::kExponential;
  std::fprintf(stderr, "unknown error kind '%s'\n", name.c_str());
  std::exit(2);
}

server::QueryRequest ParseQuery(const Args& args) {
  server::QueryRequest request;
  request.dataset = args.Require("dataset");
  request.measure = ParseMeasure(args.Get("measure", "euclid"));
  request.query = static_cast<std::uint32_t>(args.GetSize("query", 0));
  request.k = static_cast<std::uint32_t>(args.GetSize("k", 0));
  request.epsilon = args.GetDouble("epsilon", 0.0);
  request.tau = args.GetDouble("tau", 0.0);
  request.num_queries =
      static_cast<std::uint32_t>(args.GetSize("num-queries", 0));
  return request;
}

void PrintCost(const server::WireSearchCost& cost) {
  if (cost.candidates_total == 0) return;
  std::printf("cost: %llu candidates, %llu touched, %llu pruned, "
              "%llu abandoned\n",
              static_cast<unsigned long long>(cost.candidates_total),
              static_cast<unsigned long long>(cost.candidates_touched),
              static_cast<unsigned long long>(cost.pruned_lower_bound),
              static_cast<unsigned long long>(cost.abandoned_early));
}

void PrintNeighbors(const std::vector<query::Neighbor>& neighbors) {
  core::TextTable table({"rank", "index", "value"});
  for (std::size_t r = 0; r < neighbors.size(); ++r) {
    table.AddRow({std::to_string(r + 1), std::to_string(neighbors[r].index),
                  core::TextTable::Num(neighbors[r].distance, 6)});
  }
  table.Print(std::cout);
}

int Fail(const Status& status) {
  std::fprintf(stderr, "%s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 2;
  }
  const std::string command = argv[1];
  if (command == "--help" || command == "help") {
    PrintUsage();
    return 0;
  }
  const Args args(argc, argv);

  server::Client::Options options;
  if (args.Has("port")) {
    options.host = args.Get("host", "127.0.0.1");
    options.port = args.GetPort("port", 0);
  } else {
    options.unix_socket_path = args.Get("socket", "/tmp/uncertts.sock");
  }
  options.token = args.GetSize("token", 1);

  auto connected = server::Client::Connect(options);
  if (!connected.ok()) return Fail(connected.status());
  auto client = std::move(connected).ValueOrDie();

  if (command == "ping") {
    auto pong = client->Ping(
        static_cast<std::uint32_t>(args.GetSize("delay-ms", 0)),
        args.GetSize("echo", 0), args.Get("dataset", ""));
    if (!pong.ok()) return Fail(pong.status());
    std::printf("pong (echo=%llu)\n",
                static_cast<unsigned long long>(pong.ValueOrDie().echo));
    return 0;
  }

  if (command == "datasets") {
    auto list = client->ListDatasets();
    if (!list.ok()) return Fail(list.status());
    for (const std::string& name : list.ValueOrDie().names) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }

  if (command == "bind") {
    auto loaded = io::ReadUcrFile(args.Require("in"), "input");
    if (!loaded.ok()) return Fail(loaded.status());
    const ts::Dataset& dataset = loaded.ValueOrDie();
    server::BindDatasetRequest request;
    request.name = args.Require("name");
    request.kind = ParseErrorKind(args.Get("error", "normal"));
    request.sigma = args.GetDouble("sigma", 0.5);
    request.mixed_sigma = args.Has("mixed") ? 1 : 0;
    request.seed = args.GetSize("seed", 42);
    request.samples_per_point =
        static_cast<std::uint32_t>(args.GetSize("samples", 0));
    for (std::size_t i = 0; i < dataset.size(); ++i) {
      const auto values = dataset[i].values();
      request.series.emplace_back(values.begin(), values.end());
      request.labels.push_back(dataset[i].label());
    }
    auto bound = client->Bind(request);
    if (!bound.ok()) return Fail(bound.status());
    const auto& ok = bound.ValueOrDie();
    std::printf("bound '%s': %u series of length %u\n", ok.name.c_str(),
                ok.num_series, ok.length);
    return 0;
  }

  if (command == "knn") {
    auto response = client->Knn(ParseQuery(args));
    if (!response.ok()) return Fail(response.status());
    PrintNeighbors(response.ValueOrDie().neighbors);
    PrintCost(response.ValueOrDie().cost);
    return 0;
  }

  if (command == "range" || command == "prq") {
    const server::QueryRequest request = ParseQuery(args);
    auto response =
        command == "range" ? client->Range(request) : client->Prq(request);
    if (!response.ok()) return Fail(response.status());
    for (std::uint64_t index : response.ValueOrDie().indices) {
      std::printf("%llu\n", static_cast<unsigned long long>(index));
    }
    PrintCost(response.ValueOrDie().cost);
    return 0;
  }

  if (command == "sweep") {
    auto response = client->MeasureSweep(ParseQuery(args));
    if (!response.ok()) return Fail(response.status());
    const auto& values = response.ValueOrDie().values;
    for (std::size_t i = 0; i < values.size(); ++i) {
      std::printf("%zu %.17g\n", i, values[i]);
    }
    return 0;
  }

  if (command == "knnsweep") {
    server::QueryRequest request = ParseQuery(args);
    if (request.num_queries == 0) {
      std::fprintf(stderr, "missing required --num-queries\n");
      return 2;
    }
    if (Status s = client->StartKnnSweep(request); !s.ok()) return Fail(s);
    while (true) {
      bool done = false;
      auto item = client->NextSweepItem(&done);
      if (!item.ok()) return Fail(item.status());
      if (done) break;
      std::printf("query %u:\n", item.ValueOrDie().query);
      PrintNeighbors(item.ValueOrDie().neighbors);
    }
    return 0;
  }

  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  PrintUsage();
  return 2;
}
