/// \file checked_parse.hpp
/// \brief Range-validated numeric parsing shared by the command-line tools.
///
/// The tools parse every numeric flag through these helpers instead of raw
/// `std::atoi`/`std::strtoull`/`std::strtod`, which silently accept
/// garbage, overflow, and trailing junk (`--port 70000` used to wrap
/// through a uint16_t cast into port 4464). A failed parse prints a
/// diagnostic naming the flag and the accepted range to stderr and returns
/// false; callers then show usage and exit non-zero.
///
/// Header-only on purpose: every file under tools/ becomes its own
/// executable (CMake globs them), so a shared .cpp would need a library.

#ifndef UTS_TOOLS_CHECKED_PARSE_HPP_
#define UTS_TOOLS_CHECKED_PARSE_HPP_

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>

namespace uts::tools {

/// Parse `text` as an unsigned integer in [min, max]. The whole string must
/// parse (no trailing junk, no leading '-'); on failure a diagnostic naming
/// `flag` is printed to stderr and false is returned.
inline bool ParseU64(const char* flag, const char* text, std::uint64_t min,
                     std::uint64_t max, std::uint64_t* out) {
  if (text == nullptr || *text == '\0' || *text == '-') {
    std::fprintf(stderr, "%s: expected an unsigned integer, got '%s'\n", flag,
                 text == nullptr ? "" : text);
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (errno == ERANGE || end == text || *end != '\0') {
    std::fprintf(stderr, "%s: expected an unsigned integer, got '%s'\n", flag,
                 text);
    return false;
  }
  if (value < min || value > max) {
    std::fprintf(stderr, "%s: %llu is out of range [%llu, %llu]\n", flag,
                 value, static_cast<unsigned long long>(min),
                 static_cast<unsigned long long>(max));
    return false;
  }
  *out = static_cast<std::uint64_t>(value);
  return true;
}

/// ParseU64 into a size_t-typed destination.
inline bool ParseSize(const char* flag, const char* text, std::size_t* out) {
  std::uint64_t value = 0;
  if (!ParseU64(flag, text, 0, std::numeric_limits<std::size_t>::max(),
                &value)) {
    return false;
  }
  *out = static_cast<std::size_t>(value);
  return true;
}

/// ParseU64 into a u32-typed destination.
inline bool ParseU32(const char* flag, const char* text, std::uint32_t* out) {
  std::uint64_t value = 0;
  if (!ParseU64(flag, text, 0, std::numeric_limits<std::uint32_t>::max(),
                &value)) {
    return false;
  }
  *out = static_cast<std::uint32_t>(value);
  return true;
}

/// Parse a TCP port: an integer in [0, 65535] (0 = ephemeral). This is the
/// check `--port 70000` used to skip by wrapping through a uint16_t cast.
inline bool ParsePort(const char* flag, const char* text, std::uint16_t* out) {
  std::uint64_t value = 0;
  if (!ParseU64(flag, text, 0, 65535, &value)) {
    return false;
  }
  *out = static_cast<std::uint16_t>(value);
  return true;
}

/// Parse `text` as a finite double. The whole string must parse; overflow
/// (ERANGE) and trailing junk are rejected with a stderr diagnostic.
inline bool ParseDouble(const char* flag, const char* text, double* out) {
  if (text == nullptr || *text == '\0') {
    std::fprintf(stderr, "%s: expected a number, got ''\n", flag);
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (errno == ERANGE || end == text || *end != '\0') {
    std::fprintf(stderr, "%s: expected a finite number, got '%s'\n", flag,
                 text);
    return false;
  }
  *out = value;
  return true;
}

}  // namespace uts::tools

#endif  // UTS_TOOLS_CHECKED_PARSE_HPP_
