#!/usr/bin/env python3
"""Validate the README command-line reference against the binaries' --help.

The README documents each tool's flags inside a marked block:

    <!-- usage:uncertts_server -->
    ... flag table ...
    <!-- /usage:uncertts_server -->

For every such block this script runs ``<bin-dir>/<name> --help``, extracts
the set of ``--flag`` tokens from both the help output and the block, and
fails when the sets differ in either direction. That keeps the consolidated
flags reference honest: adding, removing or renaming a flag without updating
the README (or documenting a flag the binary does not actually accept) fails
CI.

Usage:
    tools/check_usage_docs.py --bin-dir build [--readme README.md]
"""

import argparse
import pathlib
import re
import subprocess
import sys

FLAG_RE = re.compile(r"--[a-zA-Z][a-zA-Z0-9-]*")
BLOCK_RE = re.compile(
    r"<!--\s*usage:([A-Za-z0-9_]+)\s*-->(.*?)<!--\s*/usage:\1\s*-->",
    re.DOTALL,
)


def flag_set(text: str) -> set:
    return set(FLAG_RE.findall(text))


def help_output(binary: pathlib.Path) -> str:
    proc = subprocess.run(
        [str(binary), "--help"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        timeout=30,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"{binary} --help exited with {proc.returncode}:\n{proc.stdout}"
        )
    return proc.stdout


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--bin-dir", required=True, help="directory holding the built binaries"
    )
    parser.add_argument("--readme", default="README.md")
    args = parser.parse_args()

    readme = pathlib.Path(args.readme).read_text(encoding="utf-8")
    blocks = BLOCK_RE.findall(readme)
    if not blocks:
        print(f"error: no <!-- usage:NAME --> blocks found in {args.readme}")
        return 1

    failures = 0
    for name, block in blocks:
        binary = pathlib.Path(args.bin_dir) / name
        if not binary.exists():
            print(f"FAIL {name}: binary not found at {binary}")
            failures += 1
            continue
        try:
            documented = flag_set(block)
            actual = flag_set(help_output(binary))
        except RuntimeError as err:
            print(f"FAIL {name}: {err}")
            failures += 1
            continue
        missing = sorted(actual - documented)
        stale = sorted(documented - actual)
        if missing or stale:
            print(f"FAIL {name}: README flag docs out of sync with --help")
            if missing:
                print(f"  in --help but not documented: {' '.join(missing)}")
            if stale:
                print(f"  documented but not in --help: {' '.join(stale)}")
            failures += 1
        else:
            print(f"OK   {name}: {len(actual)} flags in sync")

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
