/// \file uncertts_server.cpp
/// \brief `uncertts_server` — the long-running uncertain-similarity query
/// daemon.
///
/// Starts one server::Server (one EngineContext, one thread pool, one
/// dispatcher) on a Unix-domain socket or a loopback TCP port, then waits
/// for SIGINT/SIGTERM. Clients talk the length-prefixed frame protocol of
/// docs/PROTOCOL.md; `uncertts_client` is the reference client.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "server/server.hpp"

using namespace uts;

namespace {

void PrintUsage() {
  std::printf(
      "uncertts_server — uncertain time-series query daemon\n\n"
      "  uncertts_server [--socket PATH | --port N] [--threads N]\n"
      "                  [--queue-depth N] [--retry-after-ms N]\n"
      "                  [--max-backlog N] [--mc-samples N] [--force-scalar]\n\n"
      "  --socket PATH       listen on a Unix-domain socket (default)\n"
      "  --port N            listen on 127.0.0.1:N instead (0 = ephemeral;\n"
      "                      the bound port is printed on startup)\n"
      "  --threads N         worker threads of the shared engine pool\n"
      "                      (default 1; results are bit-identical at any\n"
      "                      width)\n"
      "  --queue-depth N     admission queue capacity; a full queue rejects\n"
      "                      with a saturation error (default 64)\n"
      "  --retry-after-ms N  backoff hint carried by saturation rejections\n"
      "                      (default 50)\n"
      "  --max-backlog N     per-session cap on buffered unacked response\n"
      "                      frames (default 4096)\n"
      "  --mc-samples N      MUNICH Monte Carlo sample count (default 20000)\n"
      "  --force-scalar      pin the bit-exact scalar kernels instead of the\n"
      "                      runtime-dispatched SIMD level\n"
      "  --help              this text\n");
}

}  // namespace

int main(int argc, char** argv) {
  server::ServerOptions options;
  options.unix_socket_path = "/tmp/uncertts.sock";
  bool tcp = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help") {
      PrintUsage();
      return 0;
    } else if (arg == "--socket") {
      options.unix_socket_path = next();
      tcp = false;
    } else if (arg == "--port") {
      options.tcp_port = static_cast<std::uint16_t>(std::atoi(next()));
      tcp = true;
    } else if (arg == "--threads") {
      options.service.threads = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--queue-depth") {
      options.queue_depth = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--retry-after-ms") {
      options.retry_after_ms =
          static_cast<std::uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--max-backlog") {
      options.max_backlog_frames = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--mc-samples") {
      options.service.munich.mc_samples = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--force-scalar") {
      setenv("UNCERTTS_FORCE_SCALAR", "1", 1);
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      PrintUsage();
      return 2;
    }
  }
  if (tcp) {
    options.unix_socket_path.clear();
  }

  // Block the shutdown signals before any thread starts so sigwait below is
  // the only consumer.
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGINT);
  sigaddset(&set, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &set, nullptr);

  auto started = server::Server::Start(options);
  if (!started.ok()) {
    std::fprintf(stderr, "%s\n", started.status().ToString().c_str());
    return 1;
  }
  auto server = std::move(started).ValueOrDie();
  if (tcp) {
    std::printf("uncertts_server listening on 127.0.0.1:%u\n",
                static_cast<unsigned>(server->tcp_port()));
  } else {
    std::printf("uncertts_server listening on %s\n",
                server->unix_socket_path().c_str());
  }
  std::fflush(stdout);

  int sig = 0;
  sigwait(&set, &sig);
  std::printf("received signal %d, shutting down\n", sig);
  server->Stop();
  const auto stats = server->stats();
  std::printf("served %llu connections, %llu admitted, %llu rejected\n",
              static_cast<unsigned long long>(stats.connections),
              static_cast<unsigned long long>(stats.admitted),
              static_cast<unsigned long long>(stats.rejected));
  return 0;
}
