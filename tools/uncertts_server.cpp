/// \file uncertts_server.cpp
/// \brief `uncertts_server` — the long-running uncertain-similarity query
/// daemon.
///
/// Starts one server::Server (one EngineContext + dispatcher per resident
/// dataset, see docs/ARCHITECTURE.md §5) on a Unix-domain socket or a
/// loopback TCP port, then waits for SIGINT/SIGTERM. Clients talk the
/// length-prefixed frame protocol of docs/PROTOCOL.md; `uncertts_client` is
/// the reference client.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "checked_parse.hpp"
#include "server/server.hpp"

using namespace uts;

namespace {

void PrintUsage() {
  std::printf(
      "uncertts_server — uncertain time-series query daemon\n\n"
      "  uncertts_server [--socket PATH | --port N] [--threads N]\n"
      "                  [--pool-policy per-shard|shared] [--queue-depth N]\n"
      "                  [--global-queue-depth N] [--retry-after-ms N]\n"
      "                  [--max-backlog N] [--send-timeout-ms N]\n"
      "                  [--mc-samples N] [--memory-budget-mb N]\n"
      "                  [--force-scalar]\n\n"
      "  --socket PATH       listen on a Unix-domain socket (default)\n"
      "  --port N            listen on 127.0.0.1:N instead (0 = ephemeral;\n"
      "                      the bound port is printed on startup)\n"
      "  --threads N         worker threads per engine pool (default 1;\n"
      "                      results are bit-identical at any width)\n"
      "  --pool-policy MODE  per-shard: every dataset shard owns a pool of\n"
      "                      --threads workers; shared: one pool of that\n"
      "                      width is lent to all shards (default per-shard;\n"
      "                      results are identical either way)\n"
      "  --queue-depth N     per-shard admission queue capacity; a full\n"
      "                      queue rejects with a saturation error\n"
      "                      (default 64)\n"
      "  --global-queue-depth N  cross-shard cap on total queued requests\n"
      "                      (default 256; 0 = no global cap)\n"
      "  --retry-after-ms N  backoff hint carried by saturation rejections\n"
      "                      (default 50)\n"
      "  --max-backlog N     per-session cap on buffered unacked response\n"
      "                      frames (default 4096)\n"
      "  --send-timeout-ms N bound on each socket write; a peer that stops\n"
      "                      reading stalls a dispatcher at most this long\n"
      "                      before its frames buffer in the session backlog\n"
      "                      (default 0 = blocking sends)\n"
      "  --mc-samples N      MUNICH Monte Carlo sample count (default 20000)\n"
      "  --memory-budget-mb N  per-shard storage-tier budget in MiB; bound\n"
      "                      datasets larger than it page through a spill\n"
      "                      log with responses bitwise identical to the\n"
      "                      resident run (default 0 = fully resident)\n"
      "  --force-scalar      pin the bit-exact scalar kernels instead of the\n"
      "                      runtime-dispatched SIMD level\n"
      "  --help              this text\n");
}

}  // namespace

int main(int argc, char** argv) {
  server::ServerOptions options;
  options.unix_socket_path = "/tmp/uncertts.sock";
  bool tcp = false;
  bool parse_ok = true;
  for (int i = 1; i < argc && parse_ok; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help") {
      PrintUsage();
      return 0;
    } else if (arg == "--socket") {
      options.unix_socket_path = next();
      tcp = false;
    } else if (arg == "--port") {
      parse_ok = tools::ParsePort("--port", next(), &options.tcp_port);
      tcp = true;
    } else if (arg == "--threads") {
      parse_ok =
          tools::ParseSize("--threads", next(), &options.service.threads);
    } else if (arg == "--pool-policy") {
      const std::string mode = next();
      if (mode == "per-shard") {
        options.pool_policy = server::PoolPolicy::kPerShard;
      } else if (mode == "shared") {
        options.pool_policy = server::PoolPolicy::kShared;
      } else {
        std::fprintf(stderr,
                     "--pool-policy: expected per-shard or shared, got '%s'\n",
                     mode.c_str());
        parse_ok = false;
      }
    } else if (arg == "--queue-depth") {
      parse_ok =
          tools::ParseSize("--queue-depth", next(), &options.queue_depth);
    } else if (arg == "--global-queue-depth") {
      parse_ok = tools::ParseSize("--global-queue-depth", next(),
                                  &options.global_queue_depth);
    } else if (arg == "--retry-after-ms") {
      parse_ok = tools::ParseU32("--retry-after-ms", next(),
                                 &options.retry_after_ms);
    } else if (arg == "--max-backlog") {
      parse_ok = tools::ParseSize("--max-backlog", next(),
                                  &options.max_backlog_frames);
    } else if (arg == "--send-timeout-ms") {
      parse_ok = tools::ParseU32("--send-timeout-ms", next(),
                                 &options.send_timeout_ms);
    } else if (arg == "--mc-samples") {
      parse_ok = tools::ParseSize("--mc-samples", next(),
                                  &options.service.munich.mc_samples);
    } else if (arg == "--memory-budget-mb") {
      std::size_t mb = 0;
      parse_ok = tools::ParseSize("--memory-budget-mb", next(), &mb);
      options.service.memory_budget_bytes = mb << 20;
    } else if (arg == "--force-scalar") {
      setenv("UNCERTTS_FORCE_SCALAR", "1", 1);
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      PrintUsage();
      return 2;
    }
  }
  if (!parse_ok) {
    PrintUsage();
    return 2;
  }
  if (tcp) {
    options.unix_socket_path.clear();
  }

  // Block the shutdown signals before any thread starts so sigwait below is
  // the only consumer.
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGINT);
  sigaddset(&set, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &set, nullptr);

  auto started = server::Server::Start(options);
  if (!started.ok()) {
    std::fprintf(stderr, "%s\n", started.status().ToString().c_str());
    return 1;
  }
  auto server = std::move(started).ValueOrDie();
  if (tcp) {
    std::printf("uncertts_server listening on 127.0.0.1:%u\n",
                static_cast<unsigned>(server->tcp_port()));
  } else {
    std::printf("uncertts_server listening on %s\n",
                server->unix_socket_path().c_str());
  }
  std::fflush(stdout);

  int sig = 0;
  sigwait(&set, &sig);
  std::printf("received signal %d, shutting down\n", sig);
  server->Stop();
  const auto stats = server->stats();
  std::printf("served %llu connections, %llu admitted, %llu rejected\n",
              static_cast<unsigned long long>(stats.connections),
              static_cast<unsigned long long>(stats.admitted),
              static_cast<unsigned long long>(stats.rejected));
  return 0;
}
