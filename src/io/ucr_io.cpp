#include "io/ucr_io.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace uts::io {

namespace {

/// Split a UCR line on commas and/or whitespace into numeric tokens.
Result<std::vector<double>> ParseLine(const std::string& line,
                                      std::size_t line_number) {
  std::vector<double> fields;
  std::string token;
  auto flush = [&]() -> Status {
    if (token.empty()) return Status::OK();
    std::size_t consumed = 0;
    double value = 0.0;
    try {
      value = std::stod(token, &consumed);
    } catch (const std::exception&) {
      return Status::Corruption("non-numeric field '" + token + "' on line " +
                                std::to_string(line_number));
    }
    if (consumed != token.size()) {
      return Status::Corruption("trailing garbage in field '" + token +
                                "' on line " + std::to_string(line_number));
    }
    fields.push_back(value);
    token.clear();
    return Status::OK();
  };

  for (char c : line) {
    if (c == ',' || c == ' ' || c == '\t' || c == '\r') {
      UTS_RETURN_NOT_OK(flush());
    } else {
      token.push_back(c);
    }
  }
  UTS_RETURN_NOT_OK(flush());
  return fields;
}

}  // namespace

Result<ts::Dataset> ReadUcrStream(std::istream& in, const std::string& name) {
  ts::Dataset dataset(name);
  std::string line;
  std::size_t line_number = 0;
  std::size_t expected_length = 0;
  while (std::getline(in, line)) {
    ++line_number;
    auto fields = ParseLine(line, line_number);
    if (!fields.ok()) return fields.status();
    std::vector<double>& values = fields.ValueOrDie();
    if (values.empty()) continue;  // blank line
    if (values.size() < 2) {
      return Status::Corruption("line " + std::to_string(line_number) +
                                " has a label but no values");
    }
    const double raw_label = values.front();
    const int label = static_cast<int>(std::llround(raw_label));
    values.erase(values.begin());
    if (expected_length == 0) {
      expected_length = values.size();
    } else if (values.size() != expected_length) {
      return Status::Corruption(
          "ragged series length on line " + std::to_string(line_number) +
          " (expected " + std::to_string(expected_length) + ", got " +
          std::to_string(values.size()) + ")");
    }
    dataset.Add(ts::TimeSeries(
        std::move(values), label,
        name + "/" + std::to_string(dataset.size())));
  }
  if (dataset.empty()) {
    return Status::Corruption("no series found in UCR input");
  }
  return dataset;
}

Result<ts::Dataset> ReadUcrFile(const std::string& path,
                                const std::string& name) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  return ReadUcrStream(in, name);
}

Result<ts::Dataset> ReadUcrPair(const std::string& train_path,
                                const std::string& test_path,
                                const std::string& name) {
  auto train = ReadUcrFile(train_path, name);
  if (!train.ok()) return train.status();
  auto test = ReadUcrFile(test_path, name);
  if (!test.ok()) return test.status();
  return ts::Dataset::Merge(name, train.ValueOrDie(), test.ValueOrDie());
}

Status WriteUcrStream(const ts::Dataset& dataset, std::ostream& out) {
  // Round-trip fidelity must not depend on the caller's stream state: 17
  // significant digits reproduce any double exactly, whereas the default 6
  // silently loses precision for direct WriteUcrStream callers. The caller's
  // precision is restored on exit.
  const std::streamsize saved_precision = out.precision(17);
  for (const auto& series : dataset) {
    out << series.label();
    for (double v : series) out << ',' << v;
    out << '\n';
  }
  out.precision(saved_precision);
  if (!out) return Status::IOError("write failure");
  return Status::OK();
}

Status WriteUcrFile(const ts::Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot create '" + path + "'");
  return WriteUcrStream(dataset, out);
}

}  // namespace uts::io
