/// \file csv.hpp
/// \brief Minimal CSV emission for benchmark harness outputs.
///
/// Every figure harness writes its series both as a human-readable table on
/// stdout and as a CSV file next to it, so the paper's plots can be
/// regenerated with any plotting tool.

#ifndef UTS_IO_CSV_HPP_
#define UTS_IO_CSV_HPP_

#include <string>
#include <vector>

#include "common/status.hpp"

namespace uts::io {

/// \brief Row-oriented CSV builder.
class CsvWriter {
 public:
  /// Set the header row.
  explicit CsvWriter(std::vector<std::string> header)
      : header_(std::move(header)) {}

  /// Append a row of already-formatted cells; must match the header width.
  void AddRow(std::vector<std::string> cells);

  /// Append a row of doubles, formatted with %.6g.
  void AddNumericRow(const std::vector<double>& values);

  /// Append a row beginning with a string key followed by doubles.
  void AddKeyedRow(const std::string& key, const std::vector<double>& values);

  /// Serialize to CSV text (quotes cells containing separators).
  std::string ToString() const;

  /// Write to a file.
  Status WriteFile(const std::string& path) const;

  /// Number of data rows.
  std::size_t size() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace uts::io

#endif  // UTS_IO_CSV_HPP_
