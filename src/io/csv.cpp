#include "io/csv.hpp"

#include <cassert>
#include <cstdio>
#include <fstream>

namespace uts::io {

namespace {

std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string EscapeCell(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

void CsvWriter::AddRow(std::vector<std::string> cells) {
  assert(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

void CsvWriter::AddNumericRow(const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(FormatDouble(v));
  AddRow(std::move(cells));
}

void CsvWriter::AddKeyedRow(const std::string& key,
                            const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(key);
  for (double v : values) cells.push_back(FormatDouble(v));
  AddRow(std::move(cells));
}

std::string CsvWriter::ToString() const {
  std::string out;
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += EscapeCell(header_[i]);
  }
  out.push_back('\n');
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(',');
      out += EscapeCell(row[i]);
    }
    out.push_back('\n');
  }
  return out;
}

Status CsvWriter::WriteFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot create '" + path + "'");
  out << ToString();
  if (!out) return Status::IOError("write failure on '" + path + "'");
  return Status::OK();
}

}  // namespace uts::io
