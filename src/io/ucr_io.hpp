/// \file ucr_io.hpp
/// \brief Reading and writing datasets in the UCR archive text format.
///
/// Each line is one series: a numeric class label followed by the values,
/// separated by commas or whitespace. With these routines the synthetic
/// generators can be swapped for the *real* UCR files with no other code
/// changes — the paper's exact datasets drop in when available.

#ifndef UTS_IO_UCR_IO_HPP_
#define UTS_IO_UCR_IO_HPP_

#include <iosfwd>
#include <string>

#include "common/result.hpp"
#include "ts/dataset.hpp"

namespace uts::io {

/// \brief Parse a UCR-format stream into a dataset named `name`.
///
/// Lines must agree on length; empty lines are skipped. Labels are rounded
/// to the nearest integer (UCR labels are integral but sometimes written as
/// floats). Fails with Corruption on non-numeric fields or ragged rows.
Result<ts::Dataset> ReadUcrStream(std::istream& in, const std::string& name);

/// \brief Load a UCR-format file.
Result<ts::Dataset> ReadUcrFile(const std::string& path,
                                const std::string& name);

/// \brief Load and join a UCR train/test pair ("The training and testing
/// sets were joined together", Section 4.1.1).
Result<ts::Dataset> ReadUcrPair(const std::string& train_path,
                                const std::string& test_path,
                                const std::string& name);

/// \brief Write a dataset in UCR format (comma-separated).
Status WriteUcrStream(const ts::Dataset& dataset, std::ostream& out);

/// \brief Write a dataset to a UCR-format file.
Status WriteUcrFile(const ts::Dataset& dataset, const std::string& path);

}  // namespace uts::io

#endif  // UTS_IO_UCR_IO_HPP_
