#include "exec/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace uts::exec {

std::atomic<std::size_t> ThreadPool::total_created_{0};

ThreadPool::ThreadPool(std::size_t num_threads) {
  total_created_.fetch_add(1, std::memory_order_relaxed);
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace uts::exec
