#include "exec/parallel_for.hpp"

#include <algorithm>
#include <cassert>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <vector>

namespace uts::exec {

std::size_t NumChunks(std::size_t n, std::size_t grain) {
  assert(grain > 0);
  return n == 0 ? 0 : (n + grain - 1) / grain;
}

void ParallelFor(ThreadPool* pool, std::size_t n, std::size_t grain,
                 const std::function<void(std::size_t, std::size_t)>& body) {
  assert(grain > 0);
  if (n == 0) return;
  const std::size_t chunks = NumChunks(n, grain);

  if (pool == nullptr || pool->size() <= 1 || chunks <= 1) {
    for (std::size_t c = 0; c < chunks; ++c) {
      body(c * grain, std::min(n, (c + 1) * grain));
    }
    return;
  }

  std::vector<std::exception_ptr> errors(chunks);
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::size_t remaining = chunks;

  for (std::size_t c = 0; c < chunks; ++c) {
    pool->Submit([&, c] {
      try {
        body(c * grain, std::min(n, (c + 1) * grain));
      } catch (...) {
        errors[c] = std::current_exception();
      }
      // Notify while holding the mutex: once the caller can observe
      // remaining == 0 it may return and destroy done_cv, so an unlocked
      // notify could touch a dead condition variable.
      std::lock_guard<std::mutex> lock(done_mutex);
      if (--remaining == 0) done_cv.notify_one();
    });
  }

  {
    std::unique_lock<std::mutex> lock(done_mutex);
    done_cv.wait(lock, [&] { return remaining == 0; });
  }

  // Re-throw the lowest-index failure so error propagation does not depend
  // on thread interleaving.
  for (std::size_t c = 0; c < chunks; ++c) {
    if (errors[c]) std::rethrow_exception(errors[c]);
  }
}

}  // namespace uts::exec
