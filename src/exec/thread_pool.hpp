/// \file thread_pool.hpp
/// \brief A small fixed-size thread pool for the parallel query engine.
///
/// Deliberately minimal: one FIFO task queue, no work stealing, no task
/// priorities. The engine's parallelism is coarse blocked ranges (see
/// parallel_for.hpp), so a simple queue is contention-free in practice and
/// keeps the execution order — and therefore the result — easy to reason
/// about. Tasks must not throw across the pool boundary; `ParallelFor`
/// captures and re-throws task exceptions deterministically on the caller.

#ifndef UTS_EXEC_THREAD_POOL_HPP_
#define UTS_EXEC_THREAD_POOL_HPP_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace uts::exec {

/// \brief Fixed set of worker threads draining one FIFO task queue.
class ThreadPool {
 public:
  /// Start `num_threads` workers; 0 means std::thread::hardware_concurrency
  /// (at least 1).
  explicit ThreadPool(std::size_t num_threads);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task. The task must not throw — wrap fallible work in a
  /// try/catch that records the failure (ParallelFor does this for you).
  void Submit(std::function<void()> task);

  /// Process-wide count of ThreadPool constructions. Diagnostic backing for
  /// the run-wide resource discipline (query::EngineContext): the
  /// context-lifecycle tests assert that a full multi-matcher evaluation
  /// raises this by exactly one (and by zero when threads == 1).
  static std::size_t TotalCreated() {
    return total_created_.load(std::memory_order_relaxed);
  }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;

  static std::atomic<std::size_t> total_created_;
};

}  // namespace uts::exec

#endif  // UTS_EXEC_THREAD_POOL_HPP_
