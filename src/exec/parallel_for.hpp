/// \file parallel_for.hpp
/// \brief Deterministic blocked parallel loops on a ThreadPool.
///
/// `ParallelFor` partitions [0, n) into fixed contiguous chunks that are a
/// pure function of (n, grain) — never of thread timing — and runs the body
/// once per chunk. Bodies write to disjoint, pre-allocated output slots, so
/// a parallel run produces bit-identical state to running the chunks
/// sequentially in order; this is the foundation of the query engine's
/// determinism guarantee. Chunk index = range_begin / grain, usable for
/// deterministic per-range seeding of stochastic bodies.

#ifndef UTS_EXEC_PARALLEL_FOR_HPP_
#define UTS_EXEC_PARALLEL_FOR_HPP_

#include <cstddef>
#include <functional>

#include "exec/thread_pool.hpp"

namespace uts::exec {

/// \brief Run `body(range_begin, range_end)` over the blocked partition of
/// [0, n) with chunks of `grain` indices (the last chunk may be short).
///
/// Runs inline on the caller when `pool` is null, has a single worker, or
/// there is only one chunk. Otherwise every chunk is submitted to the pool
/// and the call blocks until all chunks finish. The body must be
/// thread-safe and must only write caller-owned disjoint state per chunk.
///
/// Exceptions thrown by the body are captured per chunk; after all chunks
/// complete, the exception of the lowest-index failing chunk is re-thrown
/// on the caller — deterministic regardless of thread interleaving. An
/// empty range (n == 0) is a no-op.
void ParallelFor(ThreadPool* pool, std::size_t n, std::size_t grain,
                 const std::function<void(std::size_t, std::size_t)>& body);

/// \brief Chunk count of the blocked partition ParallelFor uses.
std::size_t NumChunks(std::size_t n, std::size_t grain);

}  // namespace uts::exec

#endif  // UTS_EXEC_PARALLEL_FOR_HPP_
