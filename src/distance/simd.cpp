#include "distance/simd.hpp"

#include <cstdlib>
#include <cstring>

namespace uts::distance {

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

const KernelDispatch& ScalarDispatch() {
  static const KernelDispatch table = {
      .level = SimdLevel::kScalar,
      .squared_euclidean_range = &SquaredEuclideanBatchRange,
      .squared_euclidean_multi_query = &SquaredEuclideanMultiQueryBatch,
      .squared_euclidean_early_abandon_range =
          &SquaredEuclideanEarlyAbandonBatchRange,
      .dust_range = &DustBatchRange,
      .dust_classed_range = &DustClassedBatchRange,
      .proud_moment_range = &ProudMomentBatchRange,
      .proud_general_moment_range = &ProudGeneralMomentBatchRange,
  };
  return table;
}

bool CpuSupportsAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  // FMA is probed alongside AVX2: the kernels contract into vfmadd, and a
  // (hypothetical) AVX2-without-FMA part must take the scalar path.
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool ForceScalarEnv() {
  const char* value = std::getenv("UNCERTTS_FORCE_SCALAR");
  if (value == nullptr) return false;
  if (value[0] == '\0') return false;
  return std::strcmp(value, "0") != 0;
}

const KernelDispatch& ResolveDispatch(SimdMode mode) {
  if (mode == SimdMode::kForceScalar) return ScalarDispatch();
  if (ForceScalarEnv()) return ScalarDispatch();
  if (!Avx2CompiledIn() || !CpuSupportsAvx2()) return ScalarDispatch();
  return Avx2Dispatch();
}

}  // namespace uts::distance
