#include "distance/lp.hpp"

#include <cassert>
#include <cmath>

namespace uts::distance {

double SquaredEuclidean(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

double Euclidean(std::span<const double> a, std::span<const double> b) {
  return std::sqrt(SquaredEuclidean(a, b));
}

double Manhattan(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += std::fabs(a[i] - b[i]);
  return sum;
}

double Chebyshev(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  double best = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    best = std::max(best, std::fabs(a[i] - b[i]));
  }
  return best;
}

double Minkowski(std::span<const double> a, std::span<const double> b,
                 double p) {
  assert(a.size() == b.size());
  assert(p >= 1.0);
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sum += std::pow(std::fabs(a[i] - b[i]), p);
  }
  return std::pow(sum, 1.0 / p);
}

Result<double> EuclideanChecked(std::span<const double> a,
                                std::span<const double> b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("sequences differ in length");
  }
  if (a.empty()) return Status::InvalidArgument("sequences are empty");
  return Euclidean(a, b);
}

Result<double> MinkowskiChecked(std::span<const double> a,
                                std::span<const double> b, double p) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("sequences differ in length");
  }
  if (a.empty()) return Status::InvalidArgument("sequences are empty");
  if (!(p >= 1.0)) return Status::InvalidArgument("p must be >= 1");
  return Minkowski(a, b, p);
}

double Euclidean(const ts::TimeSeries& a, const ts::TimeSeries& b) {
  return Euclidean(a.values(), b.values());
}

double SquaredEuclidean(const ts::TimeSeries& a, const ts::TimeSeries& b) {
  return SquaredEuclidean(a.values(), b.values());
}

double SquaredEuclideanEarlyAbandon(std::span<const double> a,
                                    std::span<const double> b,
                                    double threshold_sq) {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
    if (sum > threshold_sq) return sum;
  }
  return sum;
}

}  // namespace uts::distance
