#include "distance/batch.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "ts/store_view.hpp"

namespace uts::distance {

namespace {

/// Apply `row_kernel(row_pointer)` to block-local rows [row_begin, row_end),
/// streaming the block in row order. out[0] corresponds to row_begin.
template <typename RowKernel>
void ForEachRow(const ts::RowBlock& block, std::size_t row_begin,
                std::size_t row_end, std::span<double> out,
                const RowKernel& row_kernel) {
  assert(row_begin <= row_end && row_end <= block.rows());
  assert(out.size() == row_end - row_begin);
  const std::size_t stride = block.stride();
  const double* base = block.data();
  for (std::size_t r = row_begin; r < row_end; ++r) {
    out[r - row_begin] = row_kernel(base + r * stride);
  }
}

/// Run `body(block, local_begin, local_end, out_slice)` over every block of
/// a resident store (exactly one non-empty block, pinned for free).
template <typename Body>
void ForEachResidentBlock(const ts::SoaStore& store, std::span<double> out,
                          const Body& body) {
  assert(!store.paged());
  const ts::StoreView view(store);
  for (std::size_t b = 0; b < view.num_blocks(); ++b) {
    auto pinned = view.Pin(b);
    assert(pinned.ok());  // resident pins cannot fail
    const ts::StoreView::PinnedBlock& pin = pinned.ValueOrDie();
    const std::size_t first = pin.first_row();
    const std::size_t count = pin.block().rows();
    body(pin.block(), 0, count, out.subspan(first, count));
  }
}

}  // namespace

void SquaredEuclideanBatchRange(std::span<const double> query,
                                const ts::RowBlock& block,
                                std::size_t row_begin, std::size_t row_end,
                                std::span<double> out) {
  assert(query.size() == block.stride());
  const std::size_t n = query.size();
  const double* q = query.data();
  ForEachRow(block, row_begin, row_end, out, [q, n](const double* row) {
    double sum = 0.0;
    for (std::size_t t = 0; t < n; ++t) {
      const double d = q[t] - row[t];
      sum += d * d;
    }
    return sum;
  });
}

void EuclideanBatchRange(std::span<const double> query,
                         const ts::RowBlock& block, std::size_t row_begin,
                         std::size_t row_end, std::span<double> out) {
  SquaredEuclideanBatchRange(query, block, row_begin, row_end, out);
  for (double& v : out) v = std::sqrt(v);
}

void SquaredEuclideanMultiQueryBatch(const ts::RowBlock& queries,
                                     std::size_t query_begin,
                                     std::size_t query_end,
                                     const ts::RowBlock& candidates,
                                     std::size_t row_begin,
                                     std::size_t row_end,
                                     std::span<double> out,
                                     std::size_t out_stride) {
  assert(query_begin <= query_end && query_end <= queries.rows());
  assert(row_begin <= row_end && row_end <= candidates.rows());
  assert(queries.stride() == candidates.stride());
  const std::size_t rows = row_end - row_begin;
  assert(out_stride >= rows);
  assert(query_begin == query_end ||
         out.size() >= (query_end - query_begin - 1) * out_stride + rows);
  (void)rows;
  const std::size_t stride = candidates.stride();
  const double* qbase = queries.data();
  const double* base = candidates.data();

  // Candidate tiles outer, query blocks inner: one tile of rows is fetched
  // from memory once and replayed against every query block while it is
  // still cache-resident (see kCandidateTileBytes). Per (query, candidate)
  // pair nothing changes — one accumulator, ascending timestamp — so the
  // tiling is invisible in the results.
  const std::size_t tile_rows = CandidateTileRows(stride);
  for (std::size_t tile = row_begin; tile < row_end; tile += tile_rows) {
    const std::size_t tile_end = std::min(tile + tile_rows, row_end);
    std::size_t q = query_begin;
    for (; q + kQueryBlock <= query_end; q += kQueryBlock) {
      const double* q0 = qbase + q * stride;
      const double* q1 = q0 + stride;
      const double* q2 = q1 + stride;
      const double* q3 = q2 + stride;
      double* o0 = out.data() + (q - query_begin) * out_stride;
      double* o1 = o0 + out_stride;
      double* o2 = o1 + out_stride;
      double* o3 = o2 + out_stride;
      for (std::size_t r = tile; r < tile_end; ++r) {
        const double* row = base + r * stride;
        double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
        for (std::size_t t = 0; t < stride; ++t) {
          const double v = row[t];
          const double d0 = q0[t] - v;
          s0 += d0 * d0;
          const double d1 = q1[t] - v;
          s1 += d1 * d1;
          const double d2 = q2[t] - v;
          s2 += d2 * d2;
          const double d3 = q3[t] - v;
          s3 += d3 * d3;
        }
        o0[r - row_begin] = s0;
        o1[r - row_begin] = s1;
        o2[r - row_begin] = s2;
        o3[r - row_begin] = s3;
      }
    }
    for (; q < query_end; ++q) {
      SquaredEuclideanBatchRange(
          queries.row(q), candidates, tile, tile_end,
          out.subspan((q - query_begin) * out_stride + (tile - row_begin),
                      tile_end - tile));
    }
  }
}

void DustBatchRange(std::span<const double> query, const ts::RowBlock& block,
                    const DustLut& lut, std::size_t row_begin,
                    std::size_t row_end, std::span<double> out) {
  assert(query.size() == block.stride());
  const std::size_t n = query.size();
  const double* q = query.data();
  if (lut.values == nullptr) {
    // Normal-error closed form: dust(Δ) = |Δ| · scale, no table loads.
    const double scale = lut.scale;
    ForEachRow(block, row_begin, row_end, out, [q, n, scale](const double* row) {
      double sum = 0.0;
      for (std::size_t t = 0; t < n; ++t) {
        const double d = std::fabs(q[t] - row[t]) * scale;
        sum += d * d;
      }
      return std::sqrt(sum);
    });
    return;
  }
  ForEachRow(block, row_begin, row_end, out, [q, n, &lut](const double* row) {
    double sum = 0.0;
    for (std::size_t t = 0; t < n; ++t) {
      const double d = lut.Eval(q[t] - row[t]);
      sum += d * d;
    }
    return std::sqrt(sum);
  });
}

void DustClassedBatchRange(std::span<const double> query,
                           const ts::RowBlock& block,
                           std::span<const DustLut* const> query_luts,
                           std::span<const std::uint16_t> class_ids,
                           std::size_t row_begin, std::size_t row_end,
                           std::span<double> out) {
  assert(query.size() == block.stride());
  assert(query_luts.size() == block.stride());
  assert(class_ids.size() == block.rows() * block.stride());
  assert(row_begin <= row_end && row_end <= block.rows());
  assert(out.size() == row_end - row_begin);
  const std::size_t n = query.size();
  const double* q = query.data();
  const DustLut* const* luts = query_luts.data();
  for (std::size_t r = row_begin; r < row_end; ++r) {
    const double* row = block.data() + r * n;
    const std::uint16_t* ids = class_ids.data() + r * n;
    double sum = 0.0;
    for (std::size_t t = 0; t < n; ++t) {
      const double d = luts[t][ids[t]].Eval(q[t] - row[t]);
      sum += d * d;
    }
    out[r - row_begin] = std::sqrt(sum);
  }
}

void ProudMomentBatchRange(std::span<const double> query,
                           const ts::RowBlock& block, double v,
                           std::size_t row_begin, std::size_t row_end,
                           std::span<double> mean_out,
                           std::span<double> var_out) {
  assert(query.size() == block.stride());
  assert(row_begin <= row_end && row_end <= block.rows());
  assert(mean_out.size() == row_end - row_begin);
  assert(var_out.size() == row_end - row_begin);
  const std::size_t n = query.size();
  const double* q = query.data();
  const std::size_t stride = block.stride();
  const double* base = block.data();
  for (std::size_t r = row_begin; r < row_end; ++r) {
    const double* row = base + r * stride;
    double mean_sq = 0.0;
    double var_sq = 0.0;
    for (std::size_t t = 0; t < n; ++t) {
      const double mu = q[t] - row[t];
      const double mu2 = mu * mu;
      mean_sq += mu2 + v;
      var_sq += 2.0 * v * v + 4.0 * mu2 * v;
    }
    mean_out[r - row_begin] = mean_sq;
    var_out[r - row_begin] = var_sq;
  }
}

void ProudGeneralMomentBatchRange(
    std::span<const double> query_obs, std::span<const double> query_m2,
    std::span<const double> query_m3, std::span<const double> query_m4,
    const ts::RowBlock& block, const ts::RowBlock& m2_block,
    const ts::RowBlock& m3_block, const ts::RowBlock& m4_block,
    std::size_t row_begin, std::size_t row_end, std::span<double> mean_out,
    std::span<double> var_out) {
  const std::size_t n = query_obs.size();
  assert(n == block.stride() && n == m2_block.stride() &&
         n == m3_block.stride() && n == m4_block.stride());
  assert(query_m2.size() == n && query_m3.size() == n && query_m4.size() == n);
  assert(row_begin <= row_end && row_end <= block.rows());
  assert(row_end <= m2_block.rows() && row_end <= m3_block.rows() &&
         row_end <= m4_block.rows());
  assert(mean_out.size() == row_end - row_begin);
  assert(var_out.size() == row_end - row_begin);
  const double* qo = query_obs.data();
  const double* q2 = query_m2.data();
  const double* q3 = query_m3.data();
  const double* q4 = query_m4.data();
  for (std::size_t r = row_begin; r < row_end; ++r) {
    const double* ro = block.data() + r * n;
    const double* r2 = m2_block.data() + r * n;
    const double* r3 = m3_block.data() + r * n;
    const double* r4 = m4_block.data() + r * n;
    double mean_sq = 0.0;
    double var_sq = 0.0;
    // Mirrors Proud::DistanceStatsGeneral term by term (the query plays the
    // x role): m2 = m2x + m2y, m3 = m3x − m3y, m4 = m4x + 6 m2x m2y + m4y.
    for (std::size_t t = 0; t < n; ++t) {
      const double mu = qo[t] - ro[t];
      const double m2 = q2[t] + r2[t];
      const double m3 = q3[t] - r3[t];
      const double m4 = q4[t] + 6.0 * q2[t] * r2[t] + r4[t];
      const double mean_d2 = mu * mu + m2;
      const double mean_d4 =
          mu * mu * mu * mu + 6.0 * mu * mu * m2 + 4.0 * mu * m3 + m4;
      mean_sq += mean_d2;
      var_sq += mean_d4 - mean_d2 * mean_d2;
    }
    mean_out[r - row_begin] = mean_sq;
    var_out[r - row_begin] = var_sq;
  }
}

void SquaredEuclideanEarlyAbandonBatchRange(std::span<const double> query,
                                            const ts::RowBlock& block,
                                            double threshold_sq,
                                            std::size_t row_begin,
                                            std::size_t row_end,
                                            std::span<double> out) {
  assert(query.size() == block.stride());
  const std::size_t n = query.size();
  const double* q = query.data();
  ForEachRow(block, row_begin, row_end, out,
             [q, n, threshold_sq](const double* row) {
               double sum = 0.0;
               for (std::size_t t = 0; t < n; ++t) {
                 const double d = q[t] - row[t];
                 sum += d * d;
                 if (sum > threshold_sq) return sum;
               }
               return sum;
             });
}

void SquaredEuclideanBatch(std::span<const double> query,
                           const ts::SoaStore& store, std::span<double> out) {
  assert(out.size() == store.rows());
  ForEachResidentBlock(
      store, out,
      [&query](const ts::RowBlock& block, std::size_t begin, std::size_t end,
               std::span<double> slice) {
        SquaredEuclideanBatchRange(query, block, begin, end, slice);
      });
}

void EuclideanBatch(std::span<const double> query, const ts::SoaStore& store,
                    std::span<double> out) {
  assert(out.size() == store.rows());
  ForEachResidentBlock(
      store, out,
      [&query](const ts::RowBlock& block, std::size_t begin, std::size_t end,
               std::span<double> slice) {
        EuclideanBatchRange(query, block, begin, end, slice);
      });
}

void LpBatch(std::span<const double> query, const ts::SoaStore& store,
             double p, std::span<double> out) {
  assert(query.size() == store.stride());
  assert(out.size() == store.rows());
  assert(p >= 1.0);
  const std::size_t n = query.size();
  const double* q = query.data();
  if (p == 2.0) {
    EuclideanBatch(query, store, out);
    return;
  }
  if (p == 1.0) {
    ForEachResidentBlock(
        store, out,
        [q, n](const ts::RowBlock& block, std::size_t begin, std::size_t end,
               std::span<double> slice) {
          ForEachRow(block, begin, end, slice, [q, n](const double* row) {
            double sum = 0.0;
            for (std::size_t t = 0; t < n; ++t) sum += std::fabs(q[t] - row[t]);
            return sum;
          });
        });
    return;
  }
  ForEachResidentBlock(
      store, out,
      [q, n, p](const ts::RowBlock& block, std::size_t begin, std::size_t end,
                std::span<double> slice) {
        ForEachRow(block, begin, end, slice, [q, n, p](const double* row) {
          double sum = 0.0;
          for (std::size_t t = 0; t < n; ++t) {
            sum += std::pow(std::fabs(q[t] - row[t]), p);
          }
          return std::pow(sum, 1.0 / p);
        });
      });
}

void SquaredEuclideanEarlyAbandonBatch(std::span<const double> query,
                                       const ts::SoaStore& store,
                                       double threshold_sq,
                                       std::span<double> out) {
  assert(out.size() == store.rows());
  ForEachResidentBlock(
      store, out,
      [&query, threshold_sq](const ts::RowBlock& block, std::size_t begin,
                             std::size_t end, std::span<double> slice) {
        SquaredEuclideanEarlyAbandonBatchRange(query, block, threshold_sq,
                                               begin, end, slice);
      });
}

}  // namespace uts::distance
