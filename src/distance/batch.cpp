#include "distance/batch.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace uts::distance {

namespace {

/// Apply `row_kernel(row_pointer)` to rows [row_begin, row_end), streaming
/// the store in row order. out[0] corresponds to row_begin.
template <typename RowKernel>
void ForEachRow(const ts::SoaStore& store, std::size_t row_begin,
                std::size_t row_end, std::span<double> out,
                const RowKernel& row_kernel) {
  assert(row_begin <= row_end && row_end <= store.rows());
  assert(out.size() == row_end - row_begin);
  const std::size_t stride = store.stride();
  const double* base = store.data();
  for (std::size_t r = row_begin; r < row_end; ++r) {
    out[r - row_begin] = row_kernel(base + r * stride);
  }
}

}  // namespace

void SquaredEuclideanBatchRange(std::span<const double> query,
                                const ts::SoaStore& store,
                                std::size_t row_begin, std::size_t row_end,
                                std::span<double> out) {
  assert(query.size() == store.stride());
  const std::size_t n = query.size();
  const double* q = query.data();
  ForEachRow(store, row_begin, row_end, out, [q, n](const double* row) {
    double sum = 0.0;
    for (std::size_t t = 0; t < n; ++t) {
      const double d = q[t] - row[t];
      sum += d * d;
    }
    return sum;
  });
}

void SquaredEuclideanBatch(std::span<const double> query,
                           const ts::SoaStore& store, std::span<double> out) {
  SquaredEuclideanBatchRange(query, store, 0, store.rows(), out);
}

void EuclideanBatchRange(std::span<const double> query,
                         const ts::SoaStore& store, std::size_t row_begin,
                         std::size_t row_end, std::span<double> out) {
  SquaredEuclideanBatchRange(query, store, row_begin, row_end, out);
  for (double& v : out) v = std::sqrt(v);
}

void EuclideanBatch(std::span<const double> query, const ts::SoaStore& store,
                    std::span<double> out) {
  EuclideanBatchRange(query, store, 0, store.rows(), out);
}

void LpBatch(std::span<const double> query, const ts::SoaStore& store,
             double p, std::span<double> out) {
  assert(query.size() == store.stride());
  assert(out.size() == store.rows());
  assert(p >= 1.0);
  const std::size_t n = query.size();
  const double* q = query.data();
  if (p == 2.0) {
    EuclideanBatch(query, store, out);
    return;
  }
  if (p == 1.0) {
    ForEachRow(store, 0, store.rows(), out, [q, n](const double* row) {
      double sum = 0.0;
      for (std::size_t t = 0; t < n; ++t) sum += std::fabs(q[t] - row[t]);
      return sum;
    });
    return;
  }
  ForEachRow(store, 0, store.rows(), out, [q, n, p](const double* row) {
    double sum = 0.0;
    for (std::size_t t = 0; t < n; ++t) {
      sum += std::pow(std::fabs(q[t] - row[t]), p);
    }
    return std::pow(sum, 1.0 / p);
  });
}

void SquaredEuclideanMultiQueryBatch(const ts::SoaStore& store,
                                     std::size_t query_begin,
                                     std::size_t query_end,
                                     std::size_t row_begin,
                                     std::size_t row_end,
                                     std::span<double> out,
                                     std::size_t out_stride) {
  assert(query_begin <= query_end && query_end <= store.rows());
  assert(row_begin <= row_end && row_end <= store.rows());
  const std::size_t rows = row_end - row_begin;
  assert(out_stride >= rows);
  assert(query_begin == query_end ||
         out.size() >= (query_end - query_begin - 1) * out_stride + rows);
  const std::size_t stride = store.stride();
  const double* base = store.data();

  std::size_t q = query_begin;
  for (; q + kQueryBlock <= query_end; q += kQueryBlock) {
    const double* q0 = base + q * stride;
    const double* q1 = q0 + stride;
    const double* q2 = q1 + stride;
    const double* q3 = q2 + stride;
    double* o0 = out.data() + (q - query_begin) * out_stride;
    double* o1 = o0 + out_stride;
    double* o2 = o1 + out_stride;
    double* o3 = o2 + out_stride;
    for (std::size_t r = row_begin; r < row_end; ++r) {
      const double* row = base + r * stride;
      double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
      for (std::size_t t = 0; t < stride; ++t) {
        const double v = row[t];
        const double d0 = q0[t] - v;
        s0 += d0 * d0;
        const double d1 = q1[t] - v;
        s1 += d1 * d1;
        const double d2 = q2[t] - v;
        s2 += d2 * d2;
        const double d3 = q3[t] - v;
        s3 += d3 * d3;
      }
      o0[r - row_begin] = s0;
      o1[r - row_begin] = s1;
      o2[r - row_begin] = s2;
      o3[r - row_begin] = s3;
    }
  }
  for (; q < query_end; ++q) {
    SquaredEuclideanBatchRange(
        store.row(q), store, row_begin, row_end,
        out.subspan((q - query_begin) * out_stride, rows));
  }
}

void SquaredEuclideanEarlyAbandonBatch(std::span<const double> query,
                                       const ts::SoaStore& store,
                                       double threshold_sq,
                                       std::span<double> out) {
  assert(query.size() == store.stride());
  assert(out.size() == store.rows());
  const std::size_t n = query.size();
  const double* q = query.data();
  ForEachRow(store, 0, store.rows(), out,
             [q, n, threshold_sq](const double* row) {
               double sum = 0.0;
               for (std::size_t t = 0; t < n; ++t) {
                 const double d = q[t] - row[t];
                 sum += d * d;
                 if (sum > threshold_sq) return sum;
               }
               return sum;
             });
}

}  // namespace uts::distance
