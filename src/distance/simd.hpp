/// \file simd.hpp
/// \brief Runtime-dispatched SIMD distance kernels over pinned row blocks.
///
/// The evaluation sweeps (MUNICH/PROUD/DUST, k-NN ground truth) are dense
/// 1-vs-all passes through the kernels of batch.hpp. Those scalar kernels
/// stay exactly as they are — they are the bit-exact reference path every
/// determinism guarantee is pinned against — and this layer adds explicit
/// AVX2+FMA implementations of the hot three families behind a per-kernel
/// function-pointer table:
///
///  * blocked squared Euclidean (1-vs-all, the kQueryBlock multi-query
///    all-pairs kernel, and the early-abandoning variant),
///  * the DUST closed-form / lookup-table batch (single-lut and classed),
///  * the fused PROUD moment kernels (constant-σ and general-moment).
///
/// Selection is runtime CPU dispatch: `ResolveDispatch` probes the CPU once
/// (AVX2 *and* FMA must both be present), honors the `UNCERTTS_FORCE_SCALAR`
/// environment override, and falls back to the scalar table when the AVX2
/// translation unit was compiled out (`-DUNCERTTS_DISABLE_AVX2=ON`). The
/// engines (query::DistanceMatrixEngine, query::UncertainEngine) resolve a
/// table at construction from `EngineOptions::simd` /
/// `UncertainEngineOptions::simd`, so which path ran is an explicit,
/// inspectable property of the engine — never a silent global.
///
/// ## Numeric policy, per kernel
///
/// | kernel                         | AVX2 vs scalar reference            |
/// |--------------------------------|-------------------------------------|
/// | squared Euclidean (all forms)  | pinned tolerance (reassociation)    |
/// | early-abandon squared Euclid   | pinned tolerance + per-tile checks  |
/// | PROUD moments (both forms)     | pinned tolerance (reassociation)    |
/// | DUST closed-form               | **bitwise**                         |
/// | DUST lookup-table (gather)     | **bitwise**                         |
/// | DUST classed (per-point luts)  | **bitwise**                         |
///
/// *Tolerance kernels.* The scalar kernels accumulate each pair in one
/// strictly ordered chain; the AVX2 kernels split that sum across vector
/// lanes and independent accumulators and contract multiply-add pairs into
/// FMAs. Both reassociations change the rounding of the result, so these
/// kernels are pinned to a relative tolerance of 1e-12 against the scalar
/// reference (simd_parity_test; the bound for n ≤ 4096 IEEE-double terms of
/// the magnitudes the evaluation produces is orders of magnitude below
/// that). The SIMD results are still fully deterministic: the lane split is
/// a pure function of the series length, so the same inputs give the same
/// outputs at every thread count and chunking.
///
/// *Bitwise kernels.* The DUST kernels feed parity tests that pin engine
/// results bit-identical to the scalar measure (measures::Dust), so their
/// AVX2 forms never reassociate the per-pair sum: each point's
/// dust(Δ)² is computed elementwise in vector lanes — |Δ| (sign mask),
/// the table position Δ/step (IEEE division), the two gathered cells and
/// the lerp mul/add are all lane-exact matches of DustLut::Eval — and the
/// per-pair accumulation then runs in the scalar's ascending-timestamp
/// order over the lane results. SIMD buys the gather/interpolation
/// arithmetic, not the sum. The classed kernel additionally splits each row
/// into maximal constant-(lut) runs, so the per-series-constant error
/// models of the paper's mixed experiments vectorize like the single-lut
/// path while per-point-varying models degrade gracefully to scalar
/// evaluation — bitwise either way.
///
/// *Early abandon.* The scalar reference checks the running sum against the
/// threshold after every element; the AVX2 kernel checks once per
/// kAbandonTile elements (checking per element would serialize the lanes).
/// Both paths satisfy the same contract — out[i] is the exact (within the
/// Euclidean tolerance) squared distance when it is <= threshold_sq, and
/// otherwise *some* partial sum exceeding threshold_sq — because partial
/// sums of squares are nondecreasing, so a tile-boundary check abandons
/// exactly the candidates whose full sum exceeds the threshold; only the
/// reported overshoot value differs. Decisions of the form out[i] <= t with
/// t <= threshold_sq therefore agree between the paths (up to the pinned
/// tolerance for sums landing within it of the threshold).

#ifndef UTS_DISTANCE_SIMD_HPP_
#define UTS_DISTANCE_SIMD_HPP_

#include <cstddef>
#include <cstdint>
#include <span>

#include "distance/batch.hpp"
#include "ts/row_block.hpp"

namespace uts::distance {

/// \brief Instruction-set level of a kernel table.
enum class SimdLevel {
  kScalar,  ///< The bit-exact reference kernels of batch.cpp.
  kAvx2,    ///< Explicit AVX2+FMA intrinsics (x86-64, runtime-probed).
};

/// Human-readable name ("scalar" / "avx2").
const char* SimdLevelName(SimdLevel level);

/// \brief How an engine selects its kernel table.
enum class SimdMode {
  /// Probe the CPU at resolve time and take the widest compiled-in level;
  /// the UNCERTTS_FORCE_SCALAR environment variable (set and not "0")
  /// overrides the probe and pins the scalar table.
  kAuto,
  /// Always the scalar reference table, regardless of CPU and environment.
  kForceScalar,
};

/// \brief Per-kernel function-pointer table. All entries are non-null and
/// callable with exactly the contracts of the batch.hpp functions they
/// mirror (pinned `ts::RowBlock`s, block-local row ranges); `level` records
/// which implementation family filled them.
struct KernelDispatch {
  SimdLevel level = SimdLevel::kScalar;

  void (*squared_euclidean_range)(std::span<const double> query,
                                  const ts::RowBlock& block,
                                  std::size_t row_begin, std::size_t row_end,
                                  std::span<double> out) = nullptr;

  void (*squared_euclidean_multi_query)(const ts::RowBlock& queries,
                                        std::size_t query_begin,
                                        std::size_t query_end,
                                        const ts::RowBlock& candidates,
                                        std::size_t row_begin,
                                        std::size_t row_end,
                                        std::span<double> out,
                                        std::size_t out_stride) = nullptr;

  void (*squared_euclidean_early_abandon_range)(
      std::span<const double> query, const ts::RowBlock& block,
      double threshold_sq, std::size_t row_begin, std::size_t row_end,
      std::span<double> out) = nullptr;

  void (*dust_range)(std::span<const double> query, const ts::RowBlock& block,
                     const DustLut& lut, std::size_t row_begin,
                     std::size_t row_end, std::span<double> out) = nullptr;

  void (*dust_classed_range)(std::span<const double> query,
                             const ts::RowBlock& block,
                             std::span<const DustLut* const> query_luts,
                             std::span<const std::uint16_t> class_ids,
                             std::size_t row_begin, std::size_t row_end,
                             std::span<double> out) = nullptr;

  void (*proud_moment_range)(std::span<const double> query,
                             const ts::RowBlock& block, double v,
                             std::size_t row_begin, std::size_t row_end,
                             std::span<double> mean_out,
                             std::span<double> var_out) = nullptr;

  void (*proud_general_moment_range)(
      std::span<const double> query_obs, std::span<const double> query_m2,
      std::span<const double> query_m3, std::span<const double> query_m4,
      const ts::RowBlock& block, const ts::RowBlock& m2_block,
      const ts::RowBlock& m3_block, const ts::RowBlock& m4_block,
      std::size_t row_begin, std::size_t row_end, std::span<double> mean_out,
      std::span<double> var_out) = nullptr;
};

/// Elements between the early-abandon AVX2 kernel's threshold checks (see
/// the numeric-policy table above). Exposed so the parity tests can place
/// adversarial thresholds exactly at tile boundaries.
inline constexpr std::size_t kAbandonTile = 64;

/// True iff this binary contains the AVX2 kernels (UNCERTTS_DISABLE_AVX2
/// was OFF and the compiler accepted -mavx2 -mfma).
bool Avx2CompiledIn();

/// Runtime cpuid probe: true iff the executing CPU reports AVX2 *and* FMA.
/// Pure hardware capability — independent of Avx2CompiledIn() and the
/// environment override.
bool CpuSupportsAvx2();

/// True iff UNCERTTS_FORCE_SCALAR is set in the environment to anything but
/// "0" or the empty string. Read at every call (not cached) so tests can
/// flip the override between engine constructions.
bool ForceScalarEnv();

/// The scalar reference table (always available).
const KernelDispatch& ScalarDispatch();

/// The AVX2 table; identical to ScalarDispatch() when Avx2CompiledIn() is
/// false. Callers must check CpuSupportsAvx2() before executing its entries
/// on unknown hardware — ResolveDispatch does.
const KernelDispatch& Avx2Dispatch();

/// Select the table for `mode`: kForceScalar pins the scalar table;
/// kAuto returns the AVX2 table iff it is compiled in, the CPU supports it,
/// and UNCERTTS_FORCE_SCALAR does not override.
const KernelDispatch& ResolveDispatch(SimdMode mode);

}  // namespace uts::distance

#endif  // UTS_DISTANCE_SIMD_HPP_
