/// \file batch.hpp
/// \brief Blocked batch distance kernels over a contiguous SoA store.
///
/// One query is compared against every row of a `ts::SoaStore` in a single
/// streaming pass. Per pair, values are accumulated in exactly the same
/// order as the scalar kernels in lp.hpp (one accumulator, ascending
/// timestamp), so each batch result is bit-identical to calling the
/// corresponding scalar kernel row by row (see the per-kernel docs) — that
/// identity is what the parallel query engine's determinism guarantee
/// rests on. The speedup
/// comes purely from the layout (no per-series pointer chasing, no
/// per-candidate `std::function` dispatch) and from deferring the `sqrt`
/// until a caller actually needs a metric value.

#ifndef UTS_DISTANCE_BATCH_HPP_
#define UTS_DISTANCE_BATCH_HPP_

#include <cstddef>
#include <span>

#include "ts/soa_store.hpp"

namespace uts::distance {

/// \brief out[i] = squared Euclidean distance from `query` to row i.
/// Preconditions: query.size() == store.stride(), out.size() == store.rows().
void SquaredEuclideanBatch(std::span<const double> query,
                           const ts::SoaStore& store, std::span<double> out);

/// \brief Row-range variant: out[i - row_begin] covers rows
/// [row_begin, row_end). This is the unit the parallel engine hands to one
/// worker chunk. Precondition: out.size() == row_end - row_begin.
void SquaredEuclideanBatchRange(std::span<const double> query,
                                const ts::SoaStore& store,
                                std::size_t row_begin, std::size_t row_end,
                                std::span<double> out);

/// \brief out[i] = Euclidean distance from `query` to row i (sqrt applied).
void EuclideanBatch(std::span<const double> query, const ts::SoaStore& store,
                    std::span<double> out);

/// \brief Row-range variant of EuclideanBatch.
void EuclideanBatchRange(std::span<const double> query,
                         const ts::SoaStore& store, std::size_t row_begin,
                         std::size_t row_end, std::span<double> out);

/// \brief out[i] = Minkowski distance with exponent p >= 1 from `query` to
/// row i. p = 1 and p = 2 take the Manhattan / Euclidean fast paths and
/// are bit-identical to those scalar kernels (not to `Minkowski(a, b, p)`,
/// whose pow-based accumulation may differ in the last ulp); other p match
/// `Minkowski` exactly.
void LpBatch(std::span<const double> query, const ts::SoaStore& store,
             double p, std::span<double> out);

/// \brief Queries per block of the multi-query kernel: independent
/// accumulator chains that overlap the FP-add latency a single strictly
/// ordered per-pair sum cannot hide.
inline constexpr std::size_t kQueryBlock = 4;

/// \brief All-pairs building block: squared Euclidean distances from
/// queries [query_begin, query_end) (rows of the same store) to candidate
/// rows [row_begin, row_end).
/// out[(q - query_begin) * out_stride + (r - row_begin)] is the distance of
/// pair (q, r); `out_stride` is the pitch between consecutive query rows of
/// `out` (pass row_end - row_begin for a dense block, or a full matrix
/// pitch to scatter a triangle into it). Each candidate row is loaded once
/// per kQueryBlock queries, and every pair's sum still accumulates in
/// ascending timestamp order with one accumulator — bit-identical to
/// SquaredEuclidean(row(q), row(r)).
void SquaredEuclideanMultiQueryBatch(const ts::SoaStore& store,
                                     std::size_t query_begin,
                                     std::size_t query_end,
                                     std::size_t row_begin,
                                     std::size_t row_end,
                                     std::span<double> out,
                                     std::size_t out_stride);

/// \brief Early-abandoning batch: out[i] is the exact squared distance when
/// it is <= threshold_sq, otherwise the first running sum that exceeded
/// threshold_sq (a value > threshold_sq). Because partial sums of squares
/// are nondecreasing, any decision of the form `out[i] <= t` with
/// t <= threshold_sq is exact. Not yet wired into the engine's query paths
/// (they report metric values, which an abandoned sum cannot provide);
/// available for squared-threshold pruning and tracked by the
/// microbenchmarks.
void SquaredEuclideanEarlyAbandonBatch(std::span<const double> query,
                                       const ts::SoaStore& store,
                                       double threshold_sq,
                                       std::span<double> out);

}  // namespace uts::distance

#endif  // UTS_DISTANCE_BATCH_HPP_
