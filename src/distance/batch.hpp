/// \file batch.hpp
/// \brief Blocked batch distance kernels over a contiguous SoA store.
///
/// One query is compared against every row of a `ts::SoaStore` in a single
/// streaming pass. Per pair, values are accumulated in exactly the same
/// order as the scalar kernels in lp.hpp (one accumulator, ascending
/// timestamp), so each batch result is bit-identical to calling the
/// corresponding scalar kernel row by row (see the per-kernel docs) — that
/// identity is what the parallel query engine's determinism guarantee
/// rests on. The speedup
/// comes purely from the layout (no per-series pointer chasing, no
/// per-candidate `std::function` dispatch) and from deferring the `sqrt`
/// until a caller actually needs a metric value.

#ifndef UTS_DISTANCE_BATCH_HPP_
#define UTS_DISTANCE_BATCH_HPP_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>

#include "ts/soa_store.hpp"

namespace uts::distance {

/// \brief out[i] = squared Euclidean distance from `query` to row i.
/// Preconditions: query.size() == store.stride(), out.size() == store.rows().
void SquaredEuclideanBatch(std::span<const double> query,
                           const ts::SoaStore& store, std::span<double> out);

/// \brief Row-range variant: out[i - row_begin] covers rows
/// [row_begin, row_end). This is the unit the parallel engine hands to one
/// worker chunk. Precondition: out.size() == row_end - row_begin.
void SquaredEuclideanBatchRange(std::span<const double> query,
                                const ts::SoaStore& store,
                                std::size_t row_begin, std::size_t row_end,
                                std::span<double> out);

/// \brief out[i] = Euclidean distance from `query` to row i (sqrt applied).
void EuclideanBatch(std::span<const double> query, const ts::SoaStore& store,
                    std::span<double> out);

/// \brief Row-range variant of EuclideanBatch.
void EuclideanBatchRange(std::span<const double> query,
                         const ts::SoaStore& store, std::size_t row_begin,
                         std::size_t row_end, std::span<double> out);

/// \brief out[i] = Minkowski distance with exponent p >= 1 from `query` to
/// row i. p = 1 and p = 2 take the Manhattan / Euclidean fast paths and
/// are bit-identical to those scalar kernels (not to `Minkowski(a, b, p)`,
/// whose pow-based accumulation may differ in the last ulp); other p match
/// `Minkowski` exactly.
void LpBatch(std::span<const double> query, const ts::SoaStore& store,
             double p, std::span<double> out);

/// \brief Queries per block of the multi-query kernel: independent
/// accumulator chains that overlap the FP-add latency a single strictly
/// ordered per-pair sum cannot hide.
inline constexpr std::size_t kQueryBlock = 4;

/// \brief Cache-block size of the multi-query kernels' candidate tiling, in
/// bytes. The kernels walk candidate rows in tiles of
/// `kCandidateTileBytes / (stride * sizeof(double))` rows and replay every
/// query block against one resident tile before streaming the next, so each
/// candidate row is fetched from memory once per *tile pass* instead of once
/// per query block. Sized to half the 2 MiB L2 recorded in the benchmark
/// context (BENCH_uncertain_baseline.json): the tile plus the query block
/// and output slices stay L2-resident with room for prefetch streams.
/// Tiling only reorders which (query, candidate) pair is evaluated when —
/// each pair's accumulation is still one pass in ascending timestamp order,
/// so results are unchanged bit for bit.
inline constexpr std::size_t kCandidateTileBytes = std::size_t{1} << 20;

/// \brief Candidate rows per tile for a given row stride (>= kQueryBlock so
/// a tile is never smaller than one query block's worth of work).
inline constexpr std::size_t CandidateTileRows(std::size_t stride) {
  const std::size_t bytes_per_row = stride * sizeof(double);
  if (bytes_per_row == 0) return kQueryBlock;
  const std::size_t rows = kCandidateTileBytes / bytes_per_row;
  return rows < kQueryBlock ? kQueryBlock : rows;
}

/// \brief All-pairs building block: squared Euclidean distances from
/// queries [query_begin, query_end) (rows of the same store) to candidate
/// rows [row_begin, row_end).
/// out[(q - query_begin) * out_stride + (r - row_begin)] is the distance of
/// pair (q, r); `out_stride` is the pitch between consecutive query rows of
/// `out` (pass row_end - row_begin for a dense block, or a full matrix
/// pitch to scatter a triangle into it). Each candidate row is loaded once
/// per kQueryBlock queries, and every pair's sum still accumulates in
/// ascending timestamp order with one accumulator — bit-identical to
/// SquaredEuclidean(row(q), row(r)).
void SquaredEuclideanMultiQueryBatch(const ts::SoaStore& store,
                                     std::size_t query_begin,
                                     std::size_t query_end,
                                     std::size_t row_begin,
                                     std::size_t row_end,
                                     std::span<double> out,
                                     std::size_t out_stride);

/// \brief Immutable view of one DUST per-point dissimilarity table: either a
/// piecewise-linear lookup over |Δ| (the numeric-integration path) or the
/// normal-error closed form dust(Δ) = |Δ| · scale with
/// scale = 1 / sqrt(2 (σx² + σy²)).
///
/// `Eval` is the single evaluation routine shared by the scalar measure
/// (measures::DustTable::Dust delegates here) and the batch kernels below,
/// so the two paths are bit-identical by construction. Views borrow the
/// table storage; the owner must outlive them. A view is trivially shareable
/// across threads once built.
struct DustLut {
  const double* values = nullptr;  ///< Table cells; nullptr => closed form.
  std::size_t size = 0;            ///< Number of cells.
  double step = 0.0;               ///< Δ between consecutive cells.
  double delta_max = 0.0;          ///< Δ of the last cell (clamp beyond).
  double scale = 0.0;              ///< Closed-form Gaussian scale.

  /// dust(Δ); linear interpolation between cells, clamped at delta_max.
  double Eval(double delta) const {
    delta = std::fabs(delta);
    if (values == nullptr) return delta * scale;
    if (delta >= delta_max) return values[size - 1];
    const double pos = delta / step;
    const auto idx = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(idx);
    if (idx + 1 >= size) return values[size - 1];
    return values[idx] * (1.0 - frac) + values[idx + 1] * frac;
  }
};

/// \brief DUST 1-vs-all sweep, single shared error pair: out[r - row_begin] =
/// sqrt( Σ_t dust(q[t] - row[t])² ) with every point evaluated through `lut`.
/// The accumulation order (one sum, ascending timestamp) matches
/// measures::Dust::Distance exactly, so results are bit-identical to the
/// scalar path. The closed-form case needs no table loads at all — this is
/// the hot path for the paper's constant-σ normal-error experiments.
void DustBatchRange(std::span<const double> query, const ts::SoaStore& store,
                    const DustLut& lut, std::size_t row_begin,
                    std::size_t row_end, std::span<double> out);

/// \brief DUST 1-vs-all sweep with per-point error classes. Candidate r's
/// error class at timestamp t is `class_ids[r * store.stride() + t]`;
/// `query_luts[t]` points at the K-entry row of the pair-table matrix
/// selected by the query's own class at t, so the table of the point pair is
/// `query_luts[t][class_ids[...]]`. Same accumulation order as the scalar
/// measure (bit-identical results).
void DustClassedBatchRange(std::span<const double> query,
                           const ts::SoaStore& store,
                           std::span<const DustLut* const> query_luts,
                           std::span<const std::uint16_t> class_ids,
                           std::size_t row_begin, std::size_t row_end,
                           std::span<double> out);

/// \brief PROUD constant-σ moment sweep (v = 2σ²): for each candidate row,
/// one contiguous pass accumulating — in exactly the order of
/// measures::Proud::DistanceStats —
///   mean_out[r - row_begin] = Σ_t ((q[t] - row[t])² + v)
///   var_out[r - row_begin]  = Σ_t (2v² + 4 (q[t] - row[t])² v)
/// Results are bit-identical to calling the scalar DistanceStats per pair.
void ProudMomentBatchRange(std::span<const double> query,
                           const ts::SoaStore& store, double v,
                           std::size_t row_begin, std::size_t row_end,
                           std::span<double> mean_out,
                           std::span<double> var_out);

/// \brief PROUD general moment sweep over precomputed per-series central
/// moment columns (the "moment prefixes": m2/m3/m4 share the layout of
/// `store`). Accumulates exactly like measures::Proud::DistanceStatsGeneral
/// — bit-identical — but reads the precomputed columns instead of paying
/// six virtual CentralMoment calls per point pair.
void ProudGeneralMomentBatchRange(
    std::span<const double> query_obs, std::span<const double> query_m2,
    std::span<const double> query_m3, std::span<const double> query_m4,
    const ts::SoaStore& store, const ts::SoaStore& m2_store,
    const ts::SoaStore& m3_store, const ts::SoaStore& m4_store,
    std::size_t row_begin, std::size_t row_end, std::span<double> mean_out,
    std::span<double> var_out);

/// \brief Early-abandoning batch: out[i] is the exact squared distance when
/// it is <= threshold_sq, otherwise the first running sum that exceeded
/// threshold_sq (a value > threshold_sq). Because partial sums of squares
/// are nondecreasing, any decision of the form `out[i] <= t` with
/// t <= threshold_sq is exact. Not yet wired into the engine's query paths
/// (they report metric values, which an abandoned sum cannot provide);
/// available for squared-threshold pruning and tracked by the
/// microbenchmarks.
void SquaredEuclideanEarlyAbandonBatch(std::span<const double> query,
                                       const ts::SoaStore& store,
                                       double threshold_sq,
                                       std::span<double> out);

/// \brief Row-range variant of SquaredEuclideanEarlyAbandonBatch (the unit
/// the dispatch layer and the parallel engine hand to one worker chunk).
/// Precondition: out.size() == row_end - row_begin.
void SquaredEuclideanEarlyAbandonBatchRange(std::span<const double> query,
                                            const ts::SoaStore& store,
                                            double threshold_sq,
                                            std::size_t row_begin,
                                            std::size_t row_end,
                                            std::span<double> out);

}  // namespace uts::distance

#endif  // UTS_DISTANCE_BATCH_HPP_
