/// \file batch.hpp
/// \brief Blocked batch distance kernels over pinned SoA row blocks.
///
/// One query is compared against a contiguous run of candidate rows in a
/// single streaming pass. The kernels never see a store: they take a
/// `ts::RowBlock` — one pinned block handed out by `ts::StoreView` — with
/// *block-local* row ranges, so the same code serves fully-resident stores
/// (one block covering every row) and pool-paged larger-than-RAM stores.
/// Per pair, values are accumulated in exactly the same order as the scalar
/// kernels in lp.hpp (one accumulator, ascending timestamp), so each batch
/// result is bit-identical to calling the corresponding scalar kernel row
/// by row (see the per-kernel docs) — that identity is what the parallel
/// query engine's determinism guarantee rests on. The speedup comes purely
/// from the layout (no per-series pointer chasing, no per-candidate
/// `std::function` dispatch) and from deferring the `sqrt` until a caller
/// actually needs a metric value.
///
/// The whole-store convenience wrappers at the bottom keep the historical
/// `ts::SoaStore` signatures for tests and benchmarks; they pin each block
/// through a StoreView and require a resident store.

#ifndef UTS_DISTANCE_BATCH_HPP_
#define UTS_DISTANCE_BATCH_HPP_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>

#include "ts/row_block.hpp"
#include "ts/soa_store.hpp"

namespace uts::distance {

/// \brief Queries per block of the multi-query kernel; re-exported from the
/// storage tier's geometry (ts/row_block.hpp), which blocks stores so query
/// blocks never straddle a storage block.
inline constexpr std::size_t kQueryBlock = ts::kQueryBlock;

/// \brief Cache-block size of the multi-query kernels' candidate tiling, in
/// bytes; re-exported from ts/row_block.hpp (see there for the sizing
/// rationale and the bitwise-invariance argument).
inline constexpr std::size_t kCandidateTileBytes = ts::kCandidateTileBytes;

/// \brief Candidate rows per tile for a given row stride; re-exported from
/// ts/row_block.hpp.
inline constexpr std::size_t CandidateTileRows(std::size_t stride) {
  return ts::CandidateTileRows(stride);
}

/// \brief out[i - row_begin] = squared Euclidean distance from `query` to
/// block row i, for block-local rows [row_begin, row_end). This is the unit
/// the parallel engine hands to one worker chunk. Preconditions:
/// query.size() == block.stride(), out.size() == row_end - row_begin.
void SquaredEuclideanBatchRange(std::span<const double> query,
                                const ts::RowBlock& block,
                                std::size_t row_begin, std::size_t row_end,
                                std::span<double> out);

/// \brief Row-range Euclidean variant (sqrt applied).
void EuclideanBatchRange(std::span<const double> query,
                         const ts::RowBlock& block, std::size_t row_begin,
                         std::size_t row_end, std::span<double> out);

/// \brief All-pairs building block: squared Euclidean distances from query
/// rows [query_begin, query_end) of the pinned block `queries` to candidate
/// rows [row_begin, row_end) of the pinned block `candidates` (both ranges
/// block-local; the blocks may be the same pin or pins of different blocks
/// of one store).
/// out[(q - query_begin) * out_stride + (r - row_begin)] is the distance of
/// pair (q, r); `out_stride` is the pitch between consecutive query rows of
/// `out` (pass row_end - row_begin for a dense block, or a full matrix
/// pitch to scatter a triangle into it). Each candidate row is loaded once
/// per kQueryBlock queries, and every pair's sum still accumulates in
/// ascending timestamp order with one accumulator — bit-identical to
/// SquaredEuclidean(row(q), row(r)).
void SquaredEuclideanMultiQueryBatch(const ts::RowBlock& queries,
                                     std::size_t query_begin,
                                     std::size_t query_end,
                                     const ts::RowBlock& candidates,
                                     std::size_t row_begin,
                                     std::size_t row_end,
                                     std::span<double> out,
                                     std::size_t out_stride);

/// \brief Immutable view of one DUST per-point dissimilarity table: either a
/// piecewise-linear lookup over |Δ| (the numeric-integration path) or the
/// normal-error closed form dust(Δ) = |Δ| · scale with
/// scale = 1 / sqrt(2 (σx² + σy²)).
///
/// `Eval` is the single evaluation routine shared by the scalar measure
/// (measures::DustTable::Dust delegates here) and the batch kernels below,
/// so the two paths are bit-identical by construction. Views borrow the
/// table storage; the owner must outlive them. A view is trivially shareable
/// across threads once built.
struct DustLut {
  const double* values = nullptr;  ///< Table cells; nullptr => closed form.
  std::size_t size = 0;            ///< Number of cells.
  double step = 0.0;               ///< Δ between consecutive cells.
  double delta_max = 0.0;          ///< Δ of the last cell (clamp beyond).
  double scale = 0.0;              ///< Closed-form Gaussian scale.

  /// dust(Δ); linear interpolation between cells, clamped at delta_max.
  double Eval(double delta) const {
    delta = std::fabs(delta);
    if (values == nullptr) return delta * scale;
    if (delta >= delta_max) return values[size - 1];
    const double pos = delta / step;
    const auto idx = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(idx);
    if (idx + 1 >= size) return values[size - 1];
    return values[idx] * (1.0 - frac) + values[idx + 1] * frac;
  }
};

/// \brief DUST 1-vs-all sweep, single shared error pair: out[r - row_begin] =
/// sqrt( Σ_t dust(q[t] - row[t])² ) with every point evaluated through `lut`.
/// The accumulation order (one sum, ascending timestamp) matches
/// measures::Dust::Distance exactly, so results are bit-identical to the
/// scalar path. The closed-form case needs no table loads at all — this is
/// the hot path for the paper's constant-σ normal-error experiments.
void DustBatchRange(std::span<const double> query, const ts::RowBlock& block,
                    const DustLut& lut, std::size_t row_begin,
                    std::size_t row_end, std::span<double> out);

/// \brief DUST 1-vs-all sweep with per-point error classes. `class_ids` is
/// the block-local slice of the class matrix: candidate r's error class at
/// timestamp t is `class_ids[r * block.stride() + t]` with r block-local
/// (the caller subspans the full matrix at the block's first row).
/// `query_luts[t]` points at the K-entry row of the pair-table matrix
/// selected by the query's own class at t, so the table of the point pair is
/// `query_luts[t][class_ids[...]]`. Same accumulation order as the scalar
/// measure (bit-identical results).
void DustClassedBatchRange(std::span<const double> query,
                           const ts::RowBlock& block,
                           std::span<const DustLut* const> query_luts,
                           std::span<const std::uint16_t> class_ids,
                           std::size_t row_begin, std::size_t row_end,
                           std::span<double> out);

/// \brief PROUD constant-σ moment sweep (v = 2σ²): for each candidate row,
/// one contiguous pass accumulating — in exactly the order of
/// measures::Proud::DistanceStats —
///   mean_out[r - row_begin] = Σ_t ((q[t] - row[t])² + v)
///   var_out[r - row_begin]  = Σ_t (2v² + 4 (q[t] - row[t])² v)
/// Results are bit-identical to calling the scalar DistanceStats per pair.
void ProudMomentBatchRange(std::span<const double> query,
                           const ts::RowBlock& block, double v,
                           std::size_t row_begin, std::size_t row_end,
                           std::span<double> mean_out,
                           std::span<double> var_out);

/// \brief PROUD general moment sweep over precomputed per-series central
/// moment columns (the "moment prefixes": the m2/m3/m4 blocks share the
/// observation block's geometry — same block index of stores with identical
/// blocking). Accumulates exactly like measures::Proud::DistanceStatsGeneral
/// — bit-identical — but reads the precomputed columns instead of paying
/// six virtual CentralMoment calls per point pair.
void ProudGeneralMomentBatchRange(
    std::span<const double> query_obs, std::span<const double> query_m2,
    std::span<const double> query_m3, std::span<const double> query_m4,
    const ts::RowBlock& block, const ts::RowBlock& m2_block,
    const ts::RowBlock& m3_block, const ts::RowBlock& m4_block,
    std::size_t row_begin, std::size_t row_end, std::span<double> mean_out,
    std::span<double> var_out);

/// \brief Early-abandoning range kernel: out[r - row_begin] is the exact
/// squared distance when it is <= threshold_sq, otherwise the first running
/// sum that exceeded threshold_sq (a value > threshold_sq). Because partial
/// sums of squares are nondecreasing, any decision of the form
/// `out[i] <= t` with t <= threshold_sq is exact. This is the cascade's
/// stage-2 filter and the unit the dispatch layer hands to one worker chunk.
void SquaredEuclideanEarlyAbandonBatchRange(std::span<const double> query,
                                            const ts::RowBlock& block,
                                            double threshold_sq,
                                            std::size_t row_begin,
                                            std::size_t row_end,
                                            std::span<double> out);

// ---------------------------------------------------------------------------
// Whole-store convenience wrappers (tests, benchmarks, scalar fallbacks).
// They pin blocks through a ts::StoreView internally and require a
// *resident* store — engine code paths use the RowBlock kernels above with
// pins they manage themselves.
// ---------------------------------------------------------------------------

/// \brief out[i] = squared Euclidean distance from `query` to row i.
/// Preconditions: resident store, query.size() == store.stride(),
/// out.size() == store.rows().
void SquaredEuclideanBatch(std::span<const double> query,
                           const ts::SoaStore& store, std::span<double> out);

/// \brief out[i] = Euclidean distance from `query` to row i (sqrt applied).
/// Precondition: resident store.
void EuclideanBatch(std::span<const double> query, const ts::SoaStore& store,
                    std::span<double> out);

/// \brief out[i] = Minkowski distance with exponent p >= 1 from `query` to
/// row i. p = 1 and p = 2 take the Manhattan / Euclidean fast paths and
/// are bit-identical to those scalar kernels (not to `Minkowski(a, b, p)`,
/// whose pow-based accumulation may differ in the last ulp); other p match
/// `Minkowski` exactly. Precondition: resident store.
void LpBatch(std::span<const double> query, const ts::SoaStore& store,
             double p, std::span<double> out);

/// \brief Whole-store early-abandoning sweep (see the range kernel for the
/// output contract). Precondition: resident store.
void SquaredEuclideanEarlyAbandonBatch(std::span<const double> query,
                                       const ts::SoaStore& store,
                                       double threshold_sq,
                                       std::span<double> out);

}  // namespace uts::distance

#endif  // UTS_DISTANCE_BATCH_HPP_
