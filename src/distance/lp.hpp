/// \file lp.hpp
/// \brief Minkowski (Lp) distances between certain sequences.
///
/// The Euclidean distance is both the paper's baseline technique ("we just
/// use a single value for every timestamp, and compute the traditional
/// Euclidean distance", Section 4.1.2) and the backbone of MUNICH, PROUD,
/// UMA and UEMA.

#ifndef UTS_DISTANCE_LP_HPP_
#define UTS_DISTANCE_LP_HPP_

#include <span>

#include "common/result.hpp"
#include "ts/time_series.hpp"

namespace uts::distance {

/// \brief Squared Euclidean distance Σ (a_i - b_i)²; preconditions sizes
/// equal (checked in debug builds). Hot path: no validation in release.
double SquaredEuclidean(std::span<const double> a, std::span<const double> b);

/// \brief Euclidean (L2) distance.
double Euclidean(std::span<const double> a, std::span<const double> b);

/// \brief Manhattan (L1) distance.
double Manhattan(std::span<const double> a, std::span<const double> b);

/// \brief Chebyshev (L∞) distance.
double Chebyshev(std::span<const double> a, std::span<const double> b);

/// \brief General Minkowski distance with exponent p >= 1.
double Minkowski(std::span<const double> a, std::span<const double> b,
                 double p);

/// \name Validated variants
/// Return InvalidArgument when the inputs differ in length or are empty.
/// \{
Result<double> EuclideanChecked(std::span<const double> a,
                                std::span<const double> b);
Result<double> MinkowskiChecked(std::span<const double> a,
                                std::span<const double> b, double p);
/// \}

/// \name TimeSeries conveniences
/// \{
double Euclidean(const ts::TimeSeries& a, const ts::TimeSeries& b);
double SquaredEuclidean(const ts::TimeSeries& a, const ts::TimeSeries& b);
/// \}

/// \brief Early-abandoning squared Euclidean: stops as soon as the running
/// sum exceeds `threshold_sq` and returns a value > threshold_sq. Used by
/// range queries to skip hopeless candidates.
double SquaredEuclideanEarlyAbandon(std::span<const double> a,
                                    std::span<const double> b,
                                    double threshold_sq);

}  // namespace uts::distance

#endif  // UTS_DISTANCE_LP_HPP_
