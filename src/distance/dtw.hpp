/// \file dtw.hpp
/// \brief Dynamic Time Warping with a pluggable local cost.
///
/// "MUNICH and DUST can be employed to compute the Dynamic Time Warping
/// distance, which is a more flexible distance measure" (Section 3.2). The
/// core DP is generic in the per-cell cost, so the same kernel serves:
///
///  * classic DTW over exact values (squared local differences),
///  * DUST-DTW (dust(x_i, y_j)² as the local cost),
///  * MUNICH's bounding DTW variants (interval-distance local costs).

#ifndef UTS_DISTANCE_DTW_HPP_
#define UTS_DISTANCE_DTW_HPP_

#include <algorithm>
#include <cstddef>
#include <functional>
#include <limits>
#include <span>
#include <vector>

#include "common/result.hpp"
#include "ts/time_series.hpp"

namespace uts::distance {

/// \brief Options for the DTW kernel.
struct DtwOptions {
  /// Sakoe–Chiba band radius; cells with |i - j| > radius are forbidden.
  /// `kNoBand` disables the constraint. The radius is silently widened to
  /// |n - m| when the inputs differ in length (otherwise no path exists).
  static constexpr std::size_t kNoBand = std::numeric_limits<std::size_t>::max();
  std::size_t band_radius = kNoBand;
};

/// \brief Generic DTW: returns the minimum accumulated `local(i, j)` cost
/// over all monotone warping paths. O(n·m) time, O(min(n,m)) memory.
///
/// \param n      length of the first sequence (row index domain)
/// \param m      length of the second sequence (column index domain)
/// \param local  local cost of aligning element i of the first sequence with
///               element j of the second
double DtwGeneric(std::size_t n, std::size_t m,
                  const std::function<double(std::size_t, std::size_t)>& local,
                  const DtwOptions& options = {});

/// \brief Classic DTW distance over raw values: sqrt of the accumulated
/// squared differences along the optimal path (L2-style DTW).
///
/// Two empty sequences are at distance 0; a non-empty sequence has no
/// warping path to an empty one, so the distance is +infinity.
double Dtw(std::span<const double> a, std::span<const double> b,
           const DtwOptions& options = {});

/// \brief DTW over TimeSeries.
double Dtw(const ts::TimeSeries& a, const ts::TimeSeries& b,
           const DtwOptions& options = {});

/// \brief Warping envelope of a sequence for LB_Keogh: per-position running
/// min/max over a window of the given radius.
struct Envelope {
  std::vector<double> lower;
  std::vector<double> upper;
};

/// \brief Build the LB_Keogh envelope of `values` with the given band radius.
Envelope BuildEnvelope(std::span<const double> values, std::size_t radius);

/// \brief LB_Keogh lower bound on the (L2-style) DTW distance between the
/// enveloped query and a candidate of the same length.
///
/// Guarantee: LbKeogh(env(q,r), c) <= Dtw(q, c, band r).
///
/// Returns InvalidArgument when the envelope and candidate lengths differ
/// (the bound is only defined for equal lengths; this used to be a
/// debug-only assert and read out of bounds in release builds).
Result<double> LbKeogh(const Envelope& query_envelope,
                       std::span<const double> candidate);

}  // namespace uts::distance

#endif  // UTS_DISTANCE_DTW_HPP_
