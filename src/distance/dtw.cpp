#include "distance/dtw.hpp"

#include <cassert>
#include <cmath>

namespace uts::distance {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

double DtwGeneric(std::size_t n, std::size_t m,
                  const std::function<double(std::size_t, std::size_t)>& local,
                  const DtwOptions& options) {
  assert(n > 0 && m > 0);

  // Widen the band so a path exists when lengths differ.
  std::size_t radius = options.band_radius;
  const std::size_t len_gap = n > m ? n - m : m - n;
  if (radius != DtwOptions::kNoBand) radius = std::max(radius, len_gap);

  // Two-row DP over the (n+1) x (m+1) grid of prefix costs.
  std::vector<double> prev(m + 1, kInf);
  std::vector<double> curr(m + 1, kInf);
  prev[0] = 0.0;

  for (std::size_t i = 1; i <= n; ++i) {
    std::size_t j_lo = 1;
    std::size_t j_hi = m;
    if (radius != DtwOptions::kNoBand) {
      j_lo = i > radius ? i - radius : 1;
      j_hi = std::min(m, i + radius);
    }
    std::fill(curr.begin(), curr.end(), kInf);
    for (std::size_t j = j_lo; j <= j_hi; ++j) {
      const double cost = local(i - 1, j - 1);
      const double best =
          std::min({prev[j], curr[j - 1], prev[j - 1]});
      curr[j] = cost + best;
    }
    std::swap(prev, curr);
  }
  return prev[m];
}

double Dtw(std::span<const double> a, std::span<const double> b,
           const DtwOptions& options) {
  if (a.empty() && b.empty()) return 0.0;
  // No warping path aligns a non-empty sequence with an empty one; returning
  // 0.0 here used to report a false perfect match.
  if (a.empty() || b.empty()) return kInf;
  const double total = DtwGeneric(
      a.size(), b.size(),
      [&](std::size_t i, std::size_t j) {
        const double d = a[i] - b[j];
        return d * d;
      },
      options);
  return std::sqrt(total);
}

double Dtw(const ts::TimeSeries& a, const ts::TimeSeries& b,
           const DtwOptions& options) {
  return Dtw(a.values(), b.values(), options);
}

Envelope BuildEnvelope(std::span<const double> values, std::size_t radius) {
  const std::size_t n = values.size();
  Envelope env;
  env.lower.resize(n);
  env.upper.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lo = i > radius ? i - radius : 0;
    const std::size_t hi = std::min(n == 0 ? 0 : n - 1, i + radius);
    double vmin = values[lo];
    double vmax = values[lo];
    for (std::size_t j = lo + 1; j <= hi; ++j) {
      vmin = std::min(vmin, values[j]);
      vmax = std::max(vmax, values[j]);
    }
    env.lower[i] = vmin;
    env.upper[i] = vmax;
  }
  return env;
}

Result<double> LbKeogh(const Envelope& query_envelope,
                       std::span<const double> candidate) {
  if (query_envelope.lower.size() != candidate.size() ||
      query_envelope.upper.size() != candidate.size()) {
    return Status::InvalidArgument(
        "LbKeogh: envelope length " +
        std::to_string(query_envelope.lower.size()) +
        " does not match candidate length " +
        std::to_string(candidate.size()));
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < candidate.size(); ++i) {
    const double v = candidate[i];
    if (v > query_envelope.upper[i]) {
      const double d = v - query_envelope.upper[i];
      sum += d * d;
    } else if (v < query_envelope.lower[i]) {
      const double d = query_envelope.lower[i] - v;
      sum += d * d;
    }
  }
  return std::sqrt(sum);
}

}  // namespace uts::distance
