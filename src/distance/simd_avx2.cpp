/// \file simd_avx2.cpp
/// \brief AVX2+FMA implementations of the hot kernel families, compiled with
/// -mavx2 -mfma for this translation unit only (the rest of the library
/// stays at the baseline ISA; ResolveDispatch gates execution on a runtime
/// cpuid probe). With UNCERTTS_DISABLE_AVX2=ON the file degrades to a stub
/// that aliases the scalar table, so scalar-only builds need no intrinsics
/// headers at all.
///
/// Numeric policy (documented in simd.hpp): the Euclidean and PROUD kernels
/// split per-pair sums across lanes and contract into FMAs — pinned
/// tolerance vs the scalar reference; the DUST kernels evaluate dust(Δ)²
/// elementwise in lanes with exactly DustLut::Eval's operations and then
/// accumulate in the scalar's ascending-timestamp order — bitwise.

#include "distance/simd.hpp"

#if defined(UNCERTTS_HAVE_AVX2)

#include <immintrin.h>

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

namespace uts::distance {

namespace {

/// Fixed-order horizontal sum: (lane0 + lane2) + (lane1 + lane3). The order
/// is arbitrary but constant, so SIMD results are a pure function of the
/// inputs (thread count and chunking can never change them).
inline double HSum(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d pair = _mm_add_pd(lo, hi);  // {l0+l2, l1+l3}
  return _mm_cvtsd_f64(pair) + _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
}

inline __m256d Abs(__m256d v) {
  return _mm256_andnot_pd(_mm256_set1_pd(-0.0), v);
}

// --- Squared Euclidean -------------------------------------------------------

/// One row's squared distance: 4 independent accumulator chains over 16
/// elements per step, contracted into FMAs.
inline double SquaredRowAvx2(const double* q, const double* row,
                             std::size_t n) {
  __m256d a0 = _mm256_setzero_pd();
  __m256d a1 = _mm256_setzero_pd();
  __m256d a2 = _mm256_setzero_pd();
  __m256d a3 = _mm256_setzero_pd();
  std::size_t t = 0;
  for (; t + 16 <= n; t += 16) {
    const __m256d d0 =
        _mm256_sub_pd(_mm256_loadu_pd(q + t), _mm256_loadu_pd(row + t));
    a0 = _mm256_fmadd_pd(d0, d0, a0);
    const __m256d d1 =
        _mm256_sub_pd(_mm256_loadu_pd(q + t + 4), _mm256_loadu_pd(row + t + 4));
    a1 = _mm256_fmadd_pd(d1, d1, a1);
    const __m256d d2 =
        _mm256_sub_pd(_mm256_loadu_pd(q + t + 8), _mm256_loadu_pd(row + t + 8));
    a2 = _mm256_fmadd_pd(d2, d2, a2);
    const __m256d d3 = _mm256_sub_pd(_mm256_loadu_pd(q + t + 12),
                                     _mm256_loadu_pd(row + t + 12));
    a3 = _mm256_fmadd_pd(d3, d3, a3);
  }
  for (; t + 4 <= n; t += 4) {
    const __m256d d =
        _mm256_sub_pd(_mm256_loadu_pd(q + t), _mm256_loadu_pd(row + t));
    a0 = _mm256_fmadd_pd(d, d, a0);
  }
  double sum = HSum(_mm256_add_pd(_mm256_add_pd(a0, a1),
                                  _mm256_add_pd(a2, a3)));
  for (; t < n; ++t) {
    const double d = q[t] - row[t];
    sum += d * d;
  }
  return sum;
}

void SquaredEuclideanRangeAvx2(std::span<const double> query,
                               const ts::RowBlock& block,
                               std::size_t row_begin, std::size_t row_end,
                               std::span<double> out) {
  assert(query.size() == block.stride());
  assert(row_begin <= row_end && row_end <= block.rows());
  assert(out.size() == row_end - row_begin);
  const std::size_t n = query.size();
  const std::size_t stride = block.stride();
  const double* q = query.data();
  const double* base = block.data();
  for (std::size_t r = row_begin; r < row_end; ++r) {
    out[r - row_begin] = SquaredRowAvx2(q, base + r * stride, n);
  }
}

void SquaredEuclideanMultiQueryAvx2(const ts::RowBlock& queries,
                                    std::size_t query_begin,
                                    std::size_t query_end,
                                    const ts::RowBlock& candidates,
                                    std::size_t row_begin,
                                    std::size_t row_end,
                                    std::span<double> out,
                                    std::size_t out_stride) {
  assert(query_begin <= query_end && query_end <= queries.rows());
  assert(row_begin <= row_end && row_end <= candidates.rows());
  assert(queries.stride() == candidates.stride());
  const std::size_t rows = row_end - row_begin;
  assert(out_stride >= rows);
  assert(query_begin == query_end ||
         out.size() >= (query_end - query_begin - 1) * out_stride + rows);
  (void)rows;
  const std::size_t stride = candidates.stride();
  const double* qbase = queries.data();
  const double* base = candidates.data();

  // Same cache-blocked tiling as the scalar kernel: candidate tiles outer,
  // query blocks inner, each tile streamed from memory once per tile pass.
  const std::size_t tile_rows = CandidateTileRows(stride);
  for (std::size_t tile = row_begin; tile < row_end; tile += tile_rows) {
    const std::size_t tile_end = std::min(tile + tile_rows, row_end);
    std::size_t q = query_begin;
    for (; q + kQueryBlock <= query_end; q += kQueryBlock) {
      const double* q0 = qbase + q * stride;
      const double* q1 = q0 + stride;
      const double* q2 = q1 + stride;
      const double* q3 = q2 + stride;
      double* o0 = out.data() + (q - query_begin) * out_stride;
      double* o1 = o0 + out_stride;
      double* o2 = o1 + out_stride;
      double* o3 = o2 + out_stride;
      for (std::size_t r = tile; r < tile_end; ++r) {
        const double* row = base + r * stride;
        // One shared candidate load feeds four FMA chains (one per query).
        __m256d s0 = _mm256_setzero_pd();
        __m256d s1 = _mm256_setzero_pd();
        __m256d s2 = _mm256_setzero_pd();
        __m256d s3 = _mm256_setzero_pd();
        std::size_t t = 0;
        for (; t + 4 <= stride; t += 4) {
          const __m256d v = _mm256_loadu_pd(row + t);
          const __m256d d0 = _mm256_sub_pd(_mm256_loadu_pd(q0 + t), v);
          s0 = _mm256_fmadd_pd(d0, d0, s0);
          const __m256d d1 = _mm256_sub_pd(_mm256_loadu_pd(q1 + t), v);
          s1 = _mm256_fmadd_pd(d1, d1, s1);
          const __m256d d2 = _mm256_sub_pd(_mm256_loadu_pd(q2 + t), v);
          s2 = _mm256_fmadd_pd(d2, d2, s2);
          const __m256d d3 = _mm256_sub_pd(_mm256_loadu_pd(q3 + t), v);
          s3 = _mm256_fmadd_pd(d3, d3, s3);
        }
        double r0 = HSum(s0), r1 = HSum(s1), r2 = HSum(s2), r3 = HSum(s3);
        for (; t < stride; ++t) {
          const double v = row[t];
          const double d0 = q0[t] - v;
          r0 += d0 * d0;
          const double d1 = q1[t] - v;
          r1 += d1 * d1;
          const double d2 = q2[t] - v;
          r2 += d2 * d2;
          const double d3 = q3[t] - v;
          r3 += d3 * d3;
        }
        o0[r - row_begin] = r0;
        o1[r - row_begin] = r1;
        o2[r - row_begin] = r2;
        o3[r - row_begin] = r3;
      }
    }
    for (; q < query_end; ++q) {
      SquaredEuclideanRangeAvx2(
          queries.row(q), candidates, tile, tile_end,
          out.subspan((q - query_begin) * out_stride + (tile - row_begin),
                      tile_end - tile));
    }
  }
}

void SquaredEuclideanEarlyAbandonRangeAvx2(std::span<const double> query,
                                           const ts::RowBlock& block,
                                           double threshold_sq,
                                           std::size_t row_begin,
                                           std::size_t row_end,
                                           std::span<double> out) {
  assert(query.size() == block.stride());
  assert(row_begin <= row_end && row_end <= block.rows());
  assert(out.size() == row_end - row_begin);
  const std::size_t n = query.size();
  const std::size_t stride = block.stride();
  const double* q = query.data();
  const double* base = block.data();
  for (std::size_t r = row_begin; r < row_end; ++r) {
    const double* row = base + r * stride;
    // The running sum is checked once per kAbandonTile elements: partial
    // sums of squares are nondecreasing, so a per-tile check abandons
    // exactly the candidates a per-element check would (only the reported
    // overshoot value differs) without serializing the vector lanes.
    double total = 0.0;
    std::size_t t = 0;
    while (t < n) {
      const std::size_t chunk_end = std::min(t + kAbandonTile, n);
      __m256d a0 = _mm256_setzero_pd();
      __m256d a1 = _mm256_setzero_pd();
      for (; t + 8 <= chunk_end; t += 8) {
        const __m256d d0 =
            _mm256_sub_pd(_mm256_loadu_pd(q + t), _mm256_loadu_pd(row + t));
        a0 = _mm256_fmadd_pd(d0, d0, a0);
        const __m256d d1 = _mm256_sub_pd(_mm256_loadu_pd(q + t + 4),
                                         _mm256_loadu_pd(row + t + 4));
        a1 = _mm256_fmadd_pd(d1, d1, a1);
      }
      double partial = HSum(_mm256_add_pd(a0, a1));
      for (; t < chunk_end; ++t) {
        const double d = q[t] - row[t];
        partial += d * d;
      }
      total += partial;
      if (total > threshold_sq) break;
    }
    out[r - row_begin] = total;
  }
}

// --- DUST (bitwise) ----------------------------------------------------------

/// Elements per evaluation chunk of the bitwise DUST kernels: lane results
/// are staged into a stack buffer of this size, then accumulated in scalar
/// ascending-timestamp order.
constexpr std::size_t kDustChunk = 256;

/// dust(Δ)² for `count` (<= kDustChunk) closed-form points into `d2`,
/// lane-exact with DustLut::Eval: |Δ| via sign mask, then two IEEE
/// multiplies — elementwise operations round identically in SIMD and
/// scalar.
inline void ClosedFormChunk(const double* q, const double* row,
                            std::size_t count, double scale, double* d2) {
  const __m256d vscale = _mm256_set1_pd(scale);
  std::size_t t = 0;
  for (; t + 4 <= count; t += 4) {
    const __m256d delta =
        Abs(_mm256_sub_pd(_mm256_loadu_pd(q + t), _mm256_loadu_pd(row + t)));
    const __m256d d = _mm256_mul_pd(delta, vscale);
    _mm256_storeu_pd(d2 + t, _mm256_mul_pd(d, d));
  }
  for (; t < count; ++t) {
    const double d = std::fabs(q[t] - row[t]) * scale;
    d2[t] = d * d;
  }
}

/// dust(Δ)² for `count` (<= kDustChunk) table-lookup points into `d2`.
/// Every lane operation mirrors DustLut::Eval exactly: |Δ|, the clamp at
/// delta_max, pos = Δ/step (IEEE division), idx = floor(pos) (== the
/// scalar's truncation for the non-negative pos), frac = pos − idx, two
/// gathered cells and the lerp v0·(1−frac) + v1·frac with plain mul/add
/// (no FMA — contraction would change the rounding) — so each lane result
/// is bitwise the scalar Eval.
inline void LutChunk(const double* q, const double* row, std::size_t count,
                     const DustLut& lut, double* d2) {
  const __m256d vstep = _mm256_set1_pd(lut.step);
  const __m256d vmax = _mm256_set1_pd(lut.delta_max);
  const __m256d vone = _mm256_set1_pd(1.0);
  const __m256d vlast = _mm256_set1_pd(lut.values[lut.size - 1]);
  const __m256d vlast_idx =
      _mm256_set1_pd(static_cast<double>(lut.size - 1));
  const __m128i imax = _mm_set1_epi32(static_cast<int>(lut.size - 1));
  const __m128i izero = _mm_setzero_si128();
  const __m128i ione = _mm_set1_epi32(1);
  std::size_t t = 0;
  for (; t + 4 <= count; t += 4) {
    const __m256d delta =
        Abs(_mm256_sub_pd(_mm256_loadu_pd(q + t), _mm256_loadu_pd(row + t)));
    const __m256d clamp = _mm256_cmp_pd(delta, vmax, _CMP_GE_OQ);
    const __m256d pos = _mm256_div_pd(delta, vstep);
    const __m256d idxd = _mm256_floor_pd(pos);
    const __m256d frac = _mm256_sub_pd(pos, idxd);
    // idx + 1 >= size ⟺ idx >= size − 1 (the scalar's second clamp).
    const __m256d last = _mm256_cmp_pd(idxd, vlast_idx, _CMP_GE_OQ);
    const __m256d clamped = _mm256_or_pd(clamp, last);
    // Gather indices for clamped lanes are irrelevant (blended away) but
    // must stay in bounds.
    __m128i idx = _mm256_cvttpd_epi32(idxd);
    idx = _mm_min_epi32(_mm_max_epi32(idx, izero), imax);
    const __m128i idx1 = _mm_min_epi32(_mm_add_epi32(idx, ione), imax);
    // Masked gather with an all-ones mask and a zeroed source: same loads as
    // the plain gather, but avoids _mm256_undefined_pd inside the intrinsic
    // (GCC flags it -Wmaybe-uninitialized).
    const __m256d all = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
    const __m256d v0 = _mm256_mask_i32gather_pd(_mm256_setzero_pd(),
                                                lut.values, idx, all, 8);
    const __m256d v1 = _mm256_mask_i32gather_pd(_mm256_setzero_pd(),
                                                lut.values, idx1, all, 8);
    const __m256d lerp = _mm256_add_pd(
        _mm256_mul_pd(v0, _mm256_sub_pd(vone, frac)), _mm256_mul_pd(v1, frac));
    const __m256d cell = _mm256_blendv_pd(lerp, vlast, clamped);
    _mm256_storeu_pd(d2 + t, _mm256_mul_pd(cell, cell));
  }
  for (; t < count; ++t) {
    const double d = lut.Eval(q[t] - row[t]);
    d2[t] = d * d;
  }
}

/// Accumulate one row's dust(Δ)² values through `lut` into `sum`, chunked
/// through the lane evaluators; the accumulation order is the scalar's.
inline double DustRowAvx2(const double* q, const double* row, std::size_t n,
                          const DustLut& lut) {
  double d2[kDustChunk];
  double sum = 0.0;
  for (std::size_t t = 0; t < n; t += kDustChunk) {
    const std::size_t count = std::min(kDustChunk, n - t);
    if (lut.values == nullptr) {
      ClosedFormChunk(q + t, row + t, count, lut.scale, d2);
    } else {
      LutChunk(q + t, row + t, count, lut, d2);
    }
    for (std::size_t i = 0; i < count; ++i) sum += d2[i];
  }
  return sum;
}

void DustRangeAvx2(std::span<const double> query, const ts::RowBlock& block,
                   const DustLut& lut, std::size_t row_begin,
                   std::size_t row_end, std::span<double> out) {
  // Closed form: dust(Δ) = |Δ|·scale is two cheap ops per element, so the
  // row cost is the scalar-order Σ d² addition chain that bitwise identity
  // pins — which is exactly the scalar kernel. The buffered lane pass only
  // adds overhead there (measured ~20% slower); delegating is both the
  // fastest bitwise-identical implementation and trivially exact. Table
  // lookups are expensive enough that the lane evaluator wins (~1.3x).
  if (lut.values == nullptr) {
    DustBatchRange(query, block, lut, row_begin, row_end, out);
    return;
  }
  assert(query.size() == block.stride());
  assert(row_begin <= row_end && row_end <= block.rows());
  assert(out.size() == row_end - row_begin);
  const std::size_t n = query.size();
  const std::size_t stride = block.stride();
  const double* q = query.data();
  const double* base = block.data();
  for (std::size_t r = row_begin; r < row_end; ++r) {
    out[r - row_begin] = std::sqrt(DustRowAvx2(q, base + r * stride, n, lut));
  }
}

void DustClassedRangeAvx2(std::span<const double> query,
                          const ts::RowBlock& block,
                          std::span<const DustLut* const> query_luts,
                          std::span<const std::uint16_t> class_ids,
                          std::size_t row_begin, std::size_t row_end,
                          std::span<double> out) {
  assert(query.size() == block.stride());
  assert(query_luts.size() == block.stride());
  assert(class_ids.size() == block.rows() * block.stride());
  assert(row_begin <= row_end && row_end <= block.rows());
  assert(out.size() == row_end - row_begin);
  const std::size_t n = query.size();
  const double* q = query.data();
  const DustLut* const* luts = query_luts.data();
  // Minimum run length worth the lane evaluators' setup; shorter runs (and
  // per-point-varying error models in general) evaluate scalar — bitwise
  // either way, since the accumulation order never changes.
  constexpr std::size_t kMinVectorRun = 8;
  double d2[kDustChunk];
  for (std::size_t r = row_begin; r < row_end; ++r) {
    const double* row = block.data() + r * n;
    const std::uint16_t* ids = class_ids.data() + r * n;
    double sum = 0.0;
    std::size_t t = 0;
    while (t < n) {
      // Maximal run sharing one (query class row, candidate class) pair —
      // the whole row, for the paper's per-series-constant error models.
      std::size_t run_end = t + 1;
      while (run_end < n && luts[run_end] == luts[t] &&
             ids[run_end] == ids[t]) {
        ++run_end;
      }
      const DustLut& lut = luts[t][ids[t]];
      if (run_end - t >= kMinVectorRun) {
        for (std::size_t c = t; c < run_end; c += kDustChunk) {
          const std::size_t count = std::min(kDustChunk, run_end - c);
          if (lut.values == nullptr) {
            ClosedFormChunk(q + c, row + c, count, lut.scale, d2);
          } else {
            LutChunk(q + c, row + c, count, lut, d2);
          }
          for (std::size_t i = 0; i < count; ++i) sum += d2[i];
        }
      } else {
        for (std::size_t c = t; c < run_end; ++c) {
          const double d = lut.Eval(q[c] - row[c]);
          sum += d * d;
        }
      }
      t = run_end;
    }
    out[r - row_begin] = std::sqrt(sum);
  }
}

// --- PROUD -------------------------------------------------------------------

void ProudMomentRangeAvx2(std::span<const double> query,
                          const ts::RowBlock& block, double v,
                          std::size_t row_begin, std::size_t row_end,
                          std::span<double> mean_out,
                          std::span<double> var_out) {
  assert(query.size() == block.stride());
  assert(row_begin <= row_end && row_end <= block.rows());
  assert(mean_out.size() == row_end - row_begin);
  assert(var_out.size() == row_end - row_begin);
  const std::size_t n = query.size();
  const std::size_t stride = block.stride();
  const double* q = query.data();
  const double* base = block.data();
  const __m256d vv = _mm256_set1_pd(v);
  const __m256d v4 = _mm256_set1_pd(4.0 * v);
  const __m256d v2sq = _mm256_set1_pd(2.0 * v * v);
  for (std::size_t r = row_begin; r < row_end; ++r) {
    const double* row = base + r * stride;
    __m256d mean0 = _mm256_setzero_pd();
    __m256d mean1 = _mm256_setzero_pd();
    __m256d var0 = _mm256_setzero_pd();
    __m256d var1 = _mm256_setzero_pd();
    std::size_t t = 0;
    for (; t + 8 <= n; t += 8) {
      const __m256d mu_a =
          _mm256_sub_pd(_mm256_loadu_pd(q + t), _mm256_loadu_pd(row + t));
      const __m256d mu2_a = _mm256_mul_pd(mu_a, mu_a);
      mean0 = _mm256_add_pd(mean0, _mm256_add_pd(mu2_a, vv));
      var0 = _mm256_add_pd(var0, _mm256_fmadd_pd(mu2_a, v4, v2sq));
      const __m256d mu_b = _mm256_sub_pd(_mm256_loadu_pd(q + t + 4),
                                         _mm256_loadu_pd(row + t + 4));
      const __m256d mu2_b = _mm256_mul_pd(mu_b, mu_b);
      mean1 = _mm256_add_pd(mean1, _mm256_add_pd(mu2_b, vv));
      var1 = _mm256_add_pd(var1, _mm256_fmadd_pd(mu2_b, v4, v2sq));
    }
    for (; t + 4 <= n; t += 4) {
      const __m256d mu =
          _mm256_sub_pd(_mm256_loadu_pd(q + t), _mm256_loadu_pd(row + t));
      const __m256d mu2 = _mm256_mul_pd(mu, mu);
      mean0 = _mm256_add_pd(mean0, _mm256_add_pd(mu2, vv));
      var0 = _mm256_add_pd(var0, _mm256_fmadd_pd(mu2, v4, v2sq));
    }
    double mean_sq = HSum(_mm256_add_pd(mean0, mean1));
    double var_sq = HSum(_mm256_add_pd(var0, var1));
    for (; t < n; ++t) {
      const double mu = q[t] - row[t];
      const double mu2 = mu * mu;
      mean_sq += mu2 + v;
      var_sq += 2.0 * v * v + 4.0 * mu2 * v;
    }
    mean_out[r - row_begin] = mean_sq;
    var_out[r - row_begin] = var_sq;
  }
}

void ProudGeneralMomentRangeAvx2(
    std::span<const double> query_obs, std::span<const double> query_m2,
    std::span<const double> query_m3, std::span<const double> query_m4,
    const ts::RowBlock& block, const ts::RowBlock& m2_block,
    const ts::RowBlock& m3_block, const ts::RowBlock& m4_block,
    std::size_t row_begin, std::size_t row_end, std::span<double> mean_out,
    std::span<double> var_out) {
  const std::size_t n = query_obs.size();
  assert(n == block.stride() && n == m2_block.stride() &&
         n == m3_block.stride() && n == m4_block.stride());
  assert(query_m2.size() == n && query_m3.size() == n && query_m4.size() == n);
  assert(row_begin <= row_end && row_end <= block.rows());
  assert(row_end <= m2_block.rows() && row_end <= m3_block.rows() &&
         row_end <= m4_block.rows());
  assert(mean_out.size() == row_end - row_begin);
  assert(var_out.size() == row_end - row_begin);
  const double* qo = query_obs.data();
  const double* q2 = query_m2.data();
  const double* q3 = query_m3.data();
  const double* q4 = query_m4.data();
  const __m256d six = _mm256_set1_pd(6.0);
  const __m256d four = _mm256_set1_pd(4.0);
  for (std::size_t r = row_begin; r < row_end; ++r) {
    const double* ro = block.data() + r * n;
    const double* r2 = m2_block.data() + r * n;
    const double* r3 = m3_block.data() + r * n;
    const double* r4 = m4_block.data() + r * n;
    __m256d mean_acc = _mm256_setzero_pd();
    __m256d var_acc = _mm256_setzero_pd();
    std::size_t t = 0;
    for (; t + 4 <= n; t += 4) {
      const __m256d mu =
          _mm256_sub_pd(_mm256_loadu_pd(qo + t), _mm256_loadu_pd(ro + t));
      const __m256d vq2 = _mm256_loadu_pd(q2 + t);
      const __m256d vr2 = _mm256_loadu_pd(r2 + t);
      const __m256d m2 = _mm256_add_pd(vq2, vr2);
      const __m256d m3 =
          _mm256_sub_pd(_mm256_loadu_pd(q3 + t), _mm256_loadu_pd(r3 + t));
      // m4 = m4x + 6·m2x·m2y + m4y
      const __m256d m4 = _mm256_fmadd_pd(
          six, _mm256_mul_pd(vq2, vr2),
          _mm256_add_pd(_mm256_loadu_pd(q4 + t), _mm256_loadu_pd(r4 + t)));
      const __m256d mu2 = _mm256_mul_pd(mu, mu);
      const __m256d mean_d2 = _mm256_add_pd(mu2, m2);
      // mean_d4 = mu⁴ + 6·mu²·m2 + 4·mu·m3 + m4
      const __m256d mean_d4 = _mm256_fmadd_pd(
          mu2, mu2,
          _mm256_fmadd_pd(_mm256_mul_pd(six, mu2), m2,
                          _mm256_fmadd_pd(_mm256_mul_pd(four, mu), m3, m4)));
      mean_acc = _mm256_add_pd(mean_acc, mean_d2);
      // var term = mean_d4 − mean_d2²
      var_acc = _mm256_add_pd(var_acc,
                              _mm256_fnmadd_pd(mean_d2, mean_d2, mean_d4));
    }
    double mean_sq = HSum(mean_acc);
    double var_sq = HSum(var_acc);
    for (; t < n; ++t) {
      const double mu = qo[t] - ro[t];
      const double m2 = q2[t] + r2[t];
      const double m3 = q3[t] - r3[t];
      const double m4 = q4[t] + 6.0 * q2[t] * r2[t] + r4[t];
      const double mean_d2 = mu * mu + m2;
      const double mean_d4 =
          mu * mu * mu * mu + 6.0 * mu * mu * m2 + 4.0 * mu * m3 + m4;
      mean_sq += mean_d2;
      var_sq += mean_d4 - mean_d2 * mean_d2;
    }
    mean_out[r - row_begin] = mean_sq;
    var_out[r - row_begin] = var_sq;
  }
}

}  // namespace

bool Avx2CompiledIn() { return true; }

const KernelDispatch& Avx2Dispatch() {
  static const KernelDispatch table = {
      .level = SimdLevel::kAvx2,
      .squared_euclidean_range = &SquaredEuclideanRangeAvx2,
      .squared_euclidean_multi_query = &SquaredEuclideanMultiQueryAvx2,
      .squared_euclidean_early_abandon_range =
          &SquaredEuclideanEarlyAbandonRangeAvx2,
      .dust_range = &DustRangeAvx2,
      .dust_classed_range = &DustClassedRangeAvx2,
      .proud_moment_range = &ProudMomentRangeAvx2,
      .proud_general_moment_range = &ProudGeneralMomentRangeAvx2,
  };
  return table;
}

}  // namespace uts::distance

#else  // !defined(UNCERTTS_HAVE_AVX2)

namespace uts::distance {

bool Avx2CompiledIn() { return false; }

// Scalar-only build (UNCERTTS_DISABLE_AVX2=ON or non-x86 target): the AVX2
// table aliases the scalar reference so ResolveDispatch never needs a
// special case.
const KernelDispatch& Avx2Dispatch() { return ScalarDispatch(); }

}  // namespace uts::distance

#endif  // UNCERTTS_HAVE_AVX2
