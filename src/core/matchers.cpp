#include "core/matchers.hpp"

#include <cassert>
#include <cstdio>
#include <cstring>

#include "distance/lp.hpp"
#include "prob/rng.hpp"
#include "query/engine_context.hpp"

namespace uts::core {

namespace {

Status RequirePdf(const EvalContext& context) {
  if (context.pdf == nullptr) {
    return Status::InvalidArgument("context has no pdf-model dataset");
  }
  return Status::OK();
}

/// Unbound-matcher guard: every public query method is UB-free by
/// returning a Status instead of dereferencing never-bound state.
Status RequireBound(const EvalContext* ctx, const char* name) {
  if (ctx == nullptr) {
    return Status::InvalidArgument(std::string(name) +
                                   " matcher is not bound; call Bind first");
  }
  return Status::OK();
}

Status RequireSamples(const EvalContext& context) {
  if (context.samples == nullptr) {
    return Status::InvalidArgument(
        "context has no repeated-observations dataset (required by MUNICH)");
  }
  return Status::OK();
}

/// Deterministic per-pair stream for Monte Carlo estimators (the shared
/// counter-based derivation — see prob::PairStreamSeed — so engine sweeps
/// and sequential loops draw identical materializations).
std::uint64_t PairSeed(const EvalContext& context, std::size_t qi,
                       std::size_t ci) {
  const std::size_t n = context.pdf != nullptr ? context.pdf->size()
                                               : context.samples->size();
  return prob::PairStreamSeed(context.seed, qi, ci, n);
}

}  // namespace

// ---------------------------------------------------------------- Euclidean

Status EuclideanMatcher::Bind(const EvalContext& context) {
  UTS_RETURN_NOT_OK(RequirePdf(context));
  ctx_ = &context;
  return Status::OK();
}

Result<double> EuclideanMatcher::CalibrationDistance(std::size_t qi,
                                                     std::size_t ci) {
  UTS_RETURN_NOT_OK(RequireBound(ctx_, "Euclidean"));
  return distance::Euclidean((*ctx_->pdf)[qi].observations(),
                             (*ctx_->pdf)[ci].observations());
}

Result<bool> EuclideanMatcher::Matches(std::size_t qi, std::size_t ci,
                                       double epsilon) {
  auto d = CalibrationDistance(qi, ci);
  if (!d.ok()) return d.status();
  return d.ValueOrDie() <= epsilon;
}

// -------------------------------------------------------------------- PROUD

Status ProudMatcher::Bind(const EvalContext& context) {
  UTS_RETURN_NOT_OK(RequirePdf(context));
  ctx_ = &context;
  measures::ProudOptions options;
  options.tau = tau_;
  options.sigma = sigma_override_.value_or(context.reported_sigma);
  proud_ = std::make_unique<measures::Proud>(options);
  // Borrow the run's shared engine; declined (e.g. a σ override differing
  // from the run-level σ, or a non-engine-shaped dataset) means the
  // sequential scalar path below — bit-identical either way.
  engine_ = context.engines != nullptr
                ? context.engines->AcquireProud(options.sigma)
                : nullptr;
  return Status::OK();
}

void ProudMatcher::set_tau(double tau) {
  tau_ = tau;
  if (proud_ != nullptr) {
    measures::ProudOptions options = proud_->options();
    options.tau = tau;
    proud_ = std::make_unique<measures::Proud>(options);
  }
}

Result<double> ProudMatcher::CalibrationDistance(std::size_t qi,
                                                 std::size_t ci) {
  UTS_RETURN_NOT_OK(RequireBound(ctx_, "PROUD"));
  // ε for PROUD is a Euclidean threshold (Section 4.1.2: "Since the
  // distances in MUNICH and PROUD are based on the Euclidean distance, we
  // will use the same threshold for both methods, ε_eucl").
  return distance::Euclidean((*ctx_->pdf)[qi].observations(),
                             (*ctx_->pdf)[ci].observations());
}

Result<bool> ProudMatcher::Matches(std::size_t qi, std::size_t ci,
                                   double epsilon) {
  UTS_RETURN_NOT_OK(RequireBound(ctx_, "PROUD"));
  return proud_->Matches((*ctx_->pdf)[qi].observations(),
                         (*ctx_->pdf)[ci].observations(), epsilon);
}

Result<std::vector<std::size_t>> ProudMatcher::Retrieve(std::size_t qi,
                                                        std::size_t n,
                                                        double epsilon) {
  UTS_RETURN_NOT_OK(RequireBound(ctx_, "PROUD"));
  if (engine_ == nullptr || n != engine_->size()) {
    return Matcher::Retrieve(qi, n, epsilon);
  }
  return engine_->ProbabilisticRangeSearchProud(qi, epsilon, tau_);
}

// ----------------------------------------------------------- PROUD-wavelet

Status ProudSynopsisMatcherAdapter::Rebuild() {
  wavelet::ProudSynopsisOptions options;
  options.proud.tau = tau_;
  options.proud.sigma = sigma_override_.value_or(ctx_->reported_sigma);
  options.synopsis_size = synopsis_size_;
  if (tau_ < 0.5) {
    return Status::InvalidArgument(
        "PROUD-wavelet pruning requires tau >= 0.5");
  }
  matcher_ = std::make_unique<wavelet::ProudSynopsisMatcher>(options);
  synopses_.clear();
  synopses_.reserve(ctx_->pdf->size());
  for (const auto& series : ctx_->pdf->series) {
    synopses_.push_back(matcher_->Synopsize(series.observations()));
  }
  stats_ = {};
  return Status::OK();
}

Status ProudSynopsisMatcherAdapter::Bind(const EvalContext& context) {
  UTS_RETURN_NOT_OK(RequirePdf(context));
  ctx_ = &context;
  return Rebuild();
}

void ProudSynopsisMatcherAdapter::set_tau(double tau) {
  tau_ = tau;
  if (ctx_ != nullptr) {
    const Status st = Rebuild();
    assert(st.ok());
    (void)st;
  }
}

Result<double> ProudSynopsisMatcherAdapter::CalibrationDistance(
    std::size_t qi, std::size_t ci) {
  UTS_RETURN_NOT_OK(RequireBound(ctx_, "PROUD-wavelet"));
  return distance::Euclidean((*ctx_->pdf)[qi].observations(),
                             (*ctx_->pdf)[ci].observations());
}

Result<bool> ProudSynopsisMatcherAdapter::Matches(std::size_t qi,
                                                  std::size_t ci,
                                                  double epsilon) {
  UTS_RETURN_NOT_OK(RequireBound(ctx_, "PROUD-wavelet"));
  return matcher_->Matches(synopses_[qi], synopses_[ci],
                           (*ctx_->pdf)[qi].observations(),
                           (*ctx_->pdf)[ci].observations(), epsilon, &stats_);
}

// --------------------------------------------------------------------- DUST

Status DustMatcher::Bind(const EvalContext& context) {
  UTS_RETURN_NOT_OK(RequirePdf(context));
  ctx_ = &context;
  // Borrow the run's shared engine with the lookup tables for every
  // distinct error pair built up front, so that query timing (Figures
  // 11/12) measures matching, not lazy table construction. The original
  // DUST builds its tables the same way. The tables live in the context's
  // persistent cache, so re-binding across datasets under one error spec
  // reuses them instead of re-running the numeric integration, and they
  // are immutable afterwards — thread-shared by the parallel sweeps.
  engine_ = context.engines != nullptr
                ? context.engines->AcquireDust(dust_.options())
                : nullptr;
  if (engine_ != nullptr) return Status::OK();
  // Engine-less fallback (non-uniform lengths): prewarm the scalar cache.
  std::map<std::string, prob::ErrorDistributionPtr> distinct;
  for (const auto& series : context.pdf->series) {
    for (std::size_t i = 0; i < series.size(); ++i) {
      const auto& err = series.error(i);
      distinct.emplace(err->Key(), err);
    }
  }
  for (const auto& [ka, ea] : distinct) {
    for (const auto& [kb, eb] : distinct) {
      if (ka > kb) continue;  // tables are canonicalized by key order
      UTS_RETURN_NOT_OK(dust_.Prewarm(ea, eb));
    }
  }
  return Status::OK();
}

Result<double> DustMatcher::CalibrationDistance(std::size_t qi,
                                                std::size_t ci) {
  UTS_RETURN_NOT_OK(RequireBound(ctx_, "DUST"));
  if (engine_ != nullptr) return engine_->DustDistance(qi, ci);
  return dust_.Distance((*ctx_->pdf)[qi], (*ctx_->pdf)[ci]);
}

Result<bool> DustMatcher::Matches(std::size_t qi, std::size_t ci,
                                  double epsilon) {
  auto d = CalibrationDistance(qi, ci);
  if (!d.ok()) return d.status();
  return d.ValueOrDie() <= epsilon;
}

Result<std::vector<std::size_t>> DustMatcher::Retrieve(std::size_t qi,
                                                       std::size_t n,
                                                       double epsilon) {
  UTS_RETURN_NOT_OK(RequireBound(ctx_, "DUST"));
  if (engine_ == nullptr || n != engine_->size()) {
    return Matcher::Retrieve(qi, n, epsilon);
  }
  return engine_->RangeSearchDust(qi, epsilon);
}

// ----------------------------------------------------------------- DUST-DTW

Status DustDtwMatcher::Bind(const EvalContext& context) {
  UTS_RETURN_NOT_OK(RequirePdf(context));
  ctx_ = &context;
  return Status::OK();
}

Result<double> DustDtwMatcher::CalibrationDistance(std::size_t qi,
                                                   std::size_t ci) {
  UTS_RETURN_NOT_OK(RequireBound(ctx_, "DUST-DTW"));
  return dust_.DtwDistance((*ctx_->pdf)[qi], (*ctx_->pdf)[ci], dtw_options_);
}

Result<bool> DustDtwMatcher::Matches(std::size_t qi, std::size_t ci,
                                     double epsilon) {
  auto d = CalibrationDistance(qi, ci);
  if (!d.ok()) return d.status();
  return d.ValueOrDie() <= epsilon;
}

// ------------------------------------------------------------------- MUNICH

namespace {

/// FNV-1a fingerprint of the sample-model data a MunichMatcher is bound to.
/// Used to keep the probability cache across re-binds to *identical* data
/// (a τ sweep re-runs the whole evaluation per grid point; probabilities
/// do not depend on τ).
std::uint64_t FingerprintSamples(const EvalContext& context) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  mix(context.seed);
  mix(context.samples->size());
  auto mix_series = [&](const uncertain::MultiSampleSeries& s) {
    mix(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
      for (double v : s.samples(i)) {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        mix(bits);
      }
    }
  };
  if (context.samples->size() > 0) {
    mix_series((*context.samples)[0]);
    mix_series((*context.samples)[context.samples->size() - 1]);
  }
  return h;
}

}  // namespace

Status MunichMatcher::Bind(const EvalContext& context) {
  UTS_RETURN_NOT_OK(RequireSamples(context));
  ctx_ = &context;
  // Borrow the run's shared engine with the sample dataset attached;
  // declined (pdf/sample shape mismatch, conflicting estimator config of
  // an earlier MUNICH matcher) means the sequential path — bit-identical.
  engine_ = context.engines != nullptr
                ? context.engines->AcquireMunich(munich_.options())
                : nullptr;
  const std::uint64_t fingerprint = FingerprintSamples(context);
  if (fingerprint != bound_fingerprint_) {
    prob_cache_.clear();
    bound_fingerprint_ = fingerprint;
  }
  return Status::OK();
}

void MunichMatcher::set_tau(double tau) {
  measures::MunichOptions options = munich_.options();
  options.tau = tau;
  munich_ = measures::Munich(options);
}

Result<double> MunichMatcher::CalibrationDistance(std::size_t qi,
                                                  std::size_t ci) {
  UTS_RETURN_NOT_OK(RequireBound(ctx_, "MUNICH"));
  // "We will use the same threshold for both methods, ε_eucl" (Section
  // 4.1.2): the threshold is the Euclidean distance on the single-value
  // observations, which matches the noise scale of the materialized
  // distances MUNICH thresholds against. Sample means would deflate ε by
  // ~sqrt(s) in the noise term and starve the matcher.
  if (ctx_->pdf != nullptr) {
    return distance::Euclidean((*ctx_->pdf)[qi].observations(),
                               (*ctx_->pdf)[ci].observations());
  }
  const auto q = (*ctx_->samples)[qi].SampleMeans();
  const auto c = (*ctx_->samples)[ci].SampleMeans();
  return distance::Euclidean(q.values(), c.values());
}

Result<double> MunichMatcher::ProbabilityFor(std::size_t qi, std::size_t ci,
                                             double epsilon) {
  UTS_RETURN_NOT_OK(RequireBound(ctx_, "MUNICH"));
  std::uint64_t eps_bits;
  static_assert(sizeof(eps_bits) == sizeof(epsilon));
  std::memcpy(&eps_bits, &epsilon, sizeof(eps_bits));
  const auto key = std::make_tuple(qi, ci, eps_bits);
  auto it = prob_cache_.find(key);
  if (it == prob_cache_.end()) {
    auto prob = munich_.MatchProbability((*ctx_->samples)[qi],
                                         (*ctx_->samples)[ci], epsilon,
                                         PairSeed(*ctx_, qi, ci));
    if (!prob.ok()) return prob.status();
    it = prob_cache_.emplace(key, prob.ValueOrDie()).first;
  }
  return it->second;
}

Result<bool> MunichMatcher::Matches(std::size_t qi, std::size_t ci,
                                    double epsilon) {
  auto prob = ProbabilityFor(qi, ci, epsilon);
  if (!prob.ok()) return prob.status();
  return prob.ValueOrDie() >= munich_.options().tau;
}

Result<std::vector<std::size_t>> MunichMatcher::Retrieve(std::size_t qi,
                                                         std::size_t n,
                                                         double epsilon) {
  UTS_RETURN_NOT_OK(RequireBound(ctx_, "MUNICH"));
  if (engine_ == nullptr || n != engine_->size()) {
    return Matcher::Retrieve(qi, n, epsilon);
  }
  std::uint64_t eps_bits;
  static_assert(sizeof(eps_bits) == sizeof(epsilon));
  std::memcpy(&eps_bits, &epsilon, sizeof(eps_bits));
  const double tau = munich_.options().tau;
  bool all_cached = true;
  for (std::size_t ci = 0; ci < n && all_cached; ++ci) {
    if (ci == qi) continue;
    all_cached = prob_cache_.count({qi, ci, eps_bits}) != 0;
  }
  std::vector<std::size_t> matches;
  if (!all_cached) {
    // One parallel estimator sweep fills the whole row of the τ-sweep
    // cache; per-pair counter seeds make it bit-identical to the
    // sequential Matches loop. Threshold the fresh row directly — cached
    // entries (emplace never overwrites) hold the same pure-function
    // values the sweep just recomputed.
    auto probs = engine_->MunichMatchProbabilities(qi, epsilon);
    if (!probs.ok()) return probs.status();
    const std::vector<double>& p = probs.ValueOrDie();
    for (std::size_t ci = 0; ci < n; ++ci) {
      if (ci == qi) continue;
      prob_cache_.emplace(std::make_tuple(qi, ci, eps_bits), p[ci]);
      if (p[ci] >= tau) matches.push_back(ci);
    }
    return matches;
  }
  for (std::size_t ci = 0; ci < n; ++ci) {
    if (ci == qi) continue;
    if (prob_cache_.at({qi, ci, eps_bits}) >= tau) matches.push_back(ci);
  }
  return matches;
}

// --------------------------------------------------------------- MUNICH-DTW

Status MunichDtwMatcher::Bind(const EvalContext& context) {
  UTS_RETURN_NOT_OK(RequireSamples(context));
  ctx_ = &context;
  return Status::OK();
}

Result<double> MunichDtwMatcher::CalibrationDistance(std::size_t qi,
                                                     std::size_t ci) {
  UTS_RETURN_NOT_OK(RequireBound(ctx_, "MUNICH-DTW"));
  // Single-observation view for ε, matching the materialization noise
  // scale (see MunichMatcher::CalibrationDistance).
  if (ctx_->pdf != nullptr) {
    return distance::Dtw((*ctx_->pdf)[qi].observations(),
                         (*ctx_->pdf)[ci].observations(), dtw_options_);
  }
  const auto q = (*ctx_->samples)[qi].SampleMeans();
  const auto c = (*ctx_->samples)[ci].SampleMeans();
  return distance::Dtw(q.values(), c.values(), dtw_options_);
}

Result<bool> MunichDtwMatcher::Matches(std::size_t qi, std::size_t ci,
                                       double epsilon) {
  UTS_RETURN_NOT_OK(RequireBound(ctx_, "MUNICH-DTW"));
  const auto& x = (*ctx_->samples)[qi];
  const auto& y = (*ctx_->samples)[ci];
  // Bounds filter first (certain accept / certain reject), then Monte Carlo.
  const measures::DistanceBounds bounds =
      measures::Munich::DtwBounds(x, y, dtw_options_);
  if (bounds.upper <= epsilon) return true;
  if (bounds.lower > epsilon) return false;
  const double p = measures::Munich::MonteCarloDtwMatchProbability(
      x, y, epsilon, options_.mc_samples, PairSeed(*ctx_, qi, ci),
      dtw_options_);
  return p >= options_.tau;
}

// ---------------------------------------------------------------------- DTW

std::string DtwMatcher::name() const {
  if (options_.band_radius == distance::DtwOptions::kNoBand) return "DTW";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "DTW(r=%zu)", options_.band_radius);
  return buf;
}

Status DtwMatcher::Bind(const EvalContext& context) {
  UTS_RETURN_NOT_OK(RequirePdf(context));
  ctx_ = &context;
  return Status::OK();
}

Result<double> DtwMatcher::CalibrationDistance(std::size_t qi,
                                               std::size_t ci) {
  UTS_RETURN_NOT_OK(RequireBound(ctx_, "DTW"));
  return distance::Dtw((*ctx_->pdf)[qi].observations(),
                       (*ctx_->pdf)[ci].observations(), options_);
}

Result<bool> DtwMatcher::Matches(std::size_t qi, std::size_t ci,
                                 double epsilon) {
  auto d = CalibrationDistance(qi, ci);
  if (!d.ok()) return d.status();
  return d.ValueOrDie() <= epsilon;
}

// ------------------------------------------------------------ AR1 smoother

std::string Ar1SmootherMatcher::name() const {
  if (options_.rho == 0.0) return "AR1-smoother";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "AR1-smoother(rho=%.2g)", options_.rho);
  return buf;
}

Status Ar1SmootherMatcher::Bind(const EvalContext& context) {
  UTS_RETURN_NOT_OK(RequirePdf(context));
  ctx_ = &context;
  smoothed_.clear();
  smoothed_.reserve(context.pdf->size());
  for (const auto& series : context.pdf->series) {
    auto result = ts::Ar1KalmanSmooth(series.observations(), series.Stddevs(),
                                      options_);
    if (!result.ok()) return result.status();
    smoothed_.push_back(std::move(result).ValueOrDie());
  }
  return Status::OK();
}

Result<double> Ar1SmootherMatcher::CalibrationDistance(std::size_t qi,
                                                       std::size_t ci) {
  UTS_RETURN_NOT_OK(RequireBound(ctx_, "AR1-smoother"));
  assert(qi < smoothed_.size() && ci < smoothed_.size());
  return distance::Euclidean(smoothed_[qi], smoothed_[ci]);
}

Result<bool> Ar1SmootherMatcher::Matches(std::size_t qi, std::size_t ci,
                                         double epsilon) {
  auto d = CalibrationDistance(qi, ci);
  if (!d.ok()) return d.status();
  return d.ValueOrDie() <= epsilon;
}

// ----------------------------------------------------------------- filtered

FilteredMatcher::FilteredMatcher(FilterKind kind, ts::FilterOptions options)
    : kind_(kind), options_(options) {}

std::string FilteredMatcher::name() const {
  char buf[64];
  switch (kind_) {
    case FilterKind::kMovingAverage:
      std::snprintf(buf, sizeof(buf), "MA(w=%zu)", options_.half_window);
      break;
    case FilterKind::kExponentialMovingAverage:
      std::snprintf(buf, sizeof(buf), "EMA(w=%zu,lambda=%.3g)",
                    options_.half_window, options_.lambda);
      break;
    case FilterKind::kUma:
      std::snprintf(buf, sizeof(buf), "UMA(w=%zu)", options_.half_window);
      break;
    case FilterKind::kUema:
      std::snprintf(buf, sizeof(buf), "UEMA(w=%zu,lambda=%.3g)",
                    options_.half_window, options_.lambda);
      break;
  }
  return buf;
}

Status FilteredMatcher::Bind(const EvalContext& context) {
  UTS_RETURN_NOT_OK(RequirePdf(context));
  ctx_ = &context;
  filtered_.clear();
  filtered_.reserve(context.pdf->size());
  for (const auto& series : context.pdf->series) {
    switch (kind_) {
      case FilterKind::kMovingAverage:
        filtered_.push_back(ts::MovingAverage(series.observations(), options_));
        break;
      case FilterKind::kExponentialMovingAverage:
        filtered_.push_back(
            ts::ExponentialMovingAverage(series.observations(), options_));
        break;
      case FilterKind::kUma: {
        auto f = ts::UncertainMovingAverage(series.observations(),
                                            series.Stddevs(), options_);
        if (!f.ok()) return f.status();
        filtered_.push_back(std::move(f).ValueOrDie());
        break;
      }
      case FilterKind::kUema: {
        auto f = ts::UncertainExponentialMovingAverage(
            series.observations(), series.Stddevs(), options_);
        if (!f.ok()) return f.status();
        filtered_.push_back(std::move(f).ValueOrDie());
        break;
      }
    }
  }
  return Status::OK();
}

Result<double> FilteredMatcher::CalibrationDistance(std::size_t qi,
                                                    std::size_t ci) {
  UTS_RETURN_NOT_OK(RequireBound(ctx_, "filtered"));
  assert(qi < filtered_.size() && ci < filtered_.size());
  return distance::Euclidean(filtered_[qi], filtered_[ci]);
}

Result<bool> FilteredMatcher::Matches(std::size_t qi, std::size_t ci,
                                      double epsilon) {
  auto d = CalibrationDistance(qi, ci);
  if (!d.ok()) return d.status();
  return d.ValueOrDie() <= epsilon;
}

std::unique_ptr<FilteredMatcher> MakeUmaMatcher(std::size_t half_window) {
  ts::FilterOptions options;
  options.half_window = half_window;
  return std::make_unique<FilteredMatcher>(FilterKind::kUma, options);
}

std::unique_ptr<FilteredMatcher> MakeUemaMatcher(std::size_t half_window,
                                                 double lambda) {
  ts::FilterOptions options;
  options.half_window = half_window;
  options.lambda = lambda;
  return std::make_unique<FilteredMatcher>(FilterKind::kUema, options);
}

std::unique_ptr<FilteredMatcher> MakeMovingAverageMatcher(
    std::size_t half_window) {
  ts::FilterOptions options;
  options.half_window = half_window;
  return std::make_unique<FilteredMatcher>(FilterKind::kMovingAverage,
                                           options);
}

std::unique_ptr<FilteredMatcher> MakeExponentialMovingAverageMatcher(
    std::size_t half_window, double lambda) {
  ts::FilterOptions options;
  options.half_window = half_window;
  options.lambda = lambda;
  return std::make_unique<FilteredMatcher>(
      FilterKind::kExponentialMovingAverage, options);
}

}  // namespace uts::core
