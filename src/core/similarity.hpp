/// \file similarity.hpp
/// \brief The unified similarity-matching interface of the evaluation.
///
/// The paper's methodology (Section 4.1.2) compares heterogeneous
/// techniques — exact distances (Euclidean, DUST, UMA, UEMA) and
/// probabilistic matchers (MUNICH, PROUD) — "on the same task", time-series
/// similarity matching. The common denominator is:
///
///  1. bind to a perturbed dataset (precompute anything per-series);
///  2. report a *calibration distance* between two bound series, used to
///     derive the technique-equivalent threshold ε from the 10th nearest
///     neighbor ("we define ε_eucl as the Euclidean distance on the
///     observations between q and c and ε_dust as the DUST distance between
///     q and c");
///  3. decide whether a candidate matches a query under that threshold —
///     a plain distance comparison for exact measures, a
///     Pr(distance ≤ ε) ≥ τ test for the probabilistic ones.

#ifndef UTS_CORE_SIMILARITY_HPP_
#define UTS_CORE_SIMILARITY_HPP_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "ts/dataset.hpp"
#include "uncertain/uncertain_series.hpp"

namespace uts::query {
class EngineContext;
}  // namespace uts::query

namespace uts::core {

/// \brief Everything a matcher may look at for one experiment run.
struct EvalContext {
  /// Exact (unperturbed, z-normalized) series — used ONLY for ground truth,
  /// never visible to matchers.
  const ts::Dataset* exact = nullptr;

  /// Perturbed series in the pdf model (observations + reported errors).
  const uncertain::UncertainDataset* pdf = nullptr;

  /// Perturbed series in the repeated-observations model (for MUNICH);
  /// may be null when no sample-based matcher participates.
  const uncertain::MultiSampleDataset* samples = nullptr;

  /// The constant σ PROUD is told (its "a priori knowledge").
  double reported_sigma = 1.0;

  /// Base seed of this run; matchers with stochastic estimators derive
  /// per-pair seeds from it.
  std::uint64_t seed = 0;

  /// Worker threads engine-aware matchers may use for their retrieval
  /// sweeps (query::UncertainEngine): 1 = sequential, 0 = hardware
  /// concurrency. Retrieval results are bit-identical at every setting.
  std::size_t threads = 1;

  /// The run-wide shared engine context (one thread pool, one SoA pack,
  /// one uncertain engine for every matcher of the run). Engine-aware
  /// matchers acquire borrowed engine views from it at Bind; when null
  /// they keep their sequential scalar paths, which are bit-identical.
  /// The runner (RunSimilarityMatching) always provides one.
  query::EngineContext* engines = nullptr;
};

/// \brief A similarity-matching technique under evaluation.
///
/// Matchers are stateful: `Bind` is called once per perturbed dataset and
/// may precompute per-series artifacts (filtered sequences, synopses, DUST
/// tables). They are not thread-safe.
class Matcher {
 public:
  virtual ~Matcher() = default;

  /// Display name, e.g. "PROUD" or "UEMA(w=2,lambda=1)".
  virtual std::string name() const = 0;

  /// Attach to a run; precompute caches. Must be called before the other
  /// methods. Re-binding to a new context is allowed.
  virtual Status Bind(const EvalContext& context) = 0;

  /// Distance between bound series `qi` and `ci` in the measure's own
  /// space, used for threshold calibration. For probabilistic matchers this
  /// is the Euclidean distance on the observations (ε is always a Euclidean
  /// threshold for MUNICH and PROUD, Section 4.1.2).
  virtual Result<double> CalibrationDistance(std::size_t qi,
                                             std::size_t ci) = 0;

  /// Match decision for candidate `ci` against query `qi` with threshold
  /// `epsilon` (in the same space as `CalibrationDistance`).
  virtual Result<bool> Matches(std::size_t qi, std::size_t ci,
                               double epsilon) = 0;

  /// Retrieve every matching candidate of query `qi` among indices [0, n)
  /// (self excluded, ascending) under threshold `epsilon` — the retrieval
  /// step of the evaluation loop. The default is the sequential reference:
  /// one `Matches` call per candidate. Engine-aware matchers (DUST, PROUD,
  /// MUNICH) override it with parallel batched sweeps whose results are
  /// bit-identical to the default at every `EvalContext::threads` setting.
  virtual Result<std::vector<std::size_t>> Retrieve(std::size_t qi,
                                                    std::size_t n,
                                                    double epsilon);

  /// Whether this matcher has a probabilistic threshold τ (MUNICH, PROUD).
  virtual bool has_tau() const { return false; }

  /// Current τ; only meaningful when `has_tau()`.
  virtual double tau() const { return 0.0; }

  /// Update τ; only meaningful when `has_tau()`. Used by the optimal-τ
  /// sweep ("we are using the optimal probabilistic threshold τ, determined
  /// after repeated experiments", Section 4.2.1).
  virtual void set_tau(double tau) { (void)tau; }
};

}  // namespace uts::core

#endif  // UTS_CORE_SIMILARITY_HPP_
