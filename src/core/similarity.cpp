#include "core/similarity.hpp"

namespace uts::core {

Result<std::vector<std::size_t>> Matcher::Retrieve(std::size_t qi,
                                                   std::size_t n,
                                                   double epsilon) {
  std::vector<std::size_t> retrieved;
  for (std::size_t ci = 0; ci < n; ++ci) {
    if (ci == qi) continue;
    auto matched = Matches(qi, ci, epsilon);
    if (!matched.ok()) return matched.status();
    if (matched.ValueOrDie()) retrieved.push_back(ci);
  }
  return retrieved;
}

}  // namespace uts::core
