/// \file report.hpp
/// \brief Fixed-width console tables for the benchmark harnesses.

#ifndef UTS_CORE_REPORT_HPP_
#define UTS_CORE_REPORT_HPP_

#include <iosfwd>
#include <string>
#include <vector>

namespace uts::core {

/// \brief Simple fixed-width table: header + string rows, auto-sized columns.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  /// Append a row; width must match the header.
  void AddRow(std::vector<std::string> cells);

  /// Format a double with the given precision.
  static std::string Num(double v, int precision = 3);

  /// Format "mean ± half_width".
  static std::string NumWithCi(double mean, double half_width,
                               int precision = 3);

  /// Render with column padding and a separator under the header.
  std::string ToString() const;

  /// Print to a stream.
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace uts::core

#endif  // UTS_CORE_REPORT_HPP_
