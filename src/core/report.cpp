#include "core/report.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <ostream>

namespace uts::core {

void TextTable::AddRow(std::vector<std::string> cells) {
  assert(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::Num(double v, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::NumWithCi(double mean, double half_width,
                                 int precision) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.*f +/-%.*f", precision, mean, precision,
                half_width);
  return buf;
}

std::string TextTable::ToString() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += "  ";
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
    }
    // Trim trailing padding.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line.push_back('\n');
    return line;
  };

  std::string out = render_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c > 0 ? 2 : 0);
  }
  out.append(total, '-');
  out.push_back('\n');
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TextTable::Print(std::ostream& os) const { os << ToString(); }

}  // namespace uts::core
