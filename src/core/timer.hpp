/// \file timer.hpp
/// \brief Wall-clock stopwatch for the CPU-time-per-query experiments
/// (Figures 11 and 12).

#ifndef UTS_CORE_TIMER_HPP_
#define UTS_CORE_TIMER_HPP_

#include <chrono>

namespace uts::core {

/// \brief Steady-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restart timing.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed microseconds since construction/Reset.
  double ElapsedMicros() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_)
        .count();
  }

  /// Elapsed milliseconds since construction/Reset.
  double ElapsedMillis() const { return ElapsedMicros() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace uts::core

#endif  // UTS_CORE_TIMER_HPP_
