/// \file matchers.hpp
/// \brief The concrete matchers evaluated in the paper.
///
/// | Matcher                | Paper section | Space of ε            |
/// |------------------------|---------------|-----------------------|
/// | EuclideanMatcher       | 4.1.2         | Euclidean on obs      |
/// | ProudMatcher           | 2.2           | Euclidean on obs (+τ) |
/// | ProudSynopsisMatcherA  | 4.3           | Euclidean on obs (+τ) |
/// | DustMatcher            | 2.3           | DUST                  |
/// | DustDtwMatcher         | 3.2           | DUST-DTW              |
/// | MunichMatcher          | 2.1           | Euclidean on obs (+τ) |
/// | MunichDtwMatcher       | 2.1/3.2       | DTW on obs (+τ)       |
/// | MovingAverageMatcher   | 5 (MA/EMA)    | Euclidean on filtered |
/// | UmaMatcher             | 5 (Eq. 17)    | Euclidean on filtered |
/// | UemaMatcher            | 5 (Eq. 18)    | Euclidean on filtered |

#ifndef UTS_CORE_MATCHERS_HPP_
#define UTS_CORE_MATCHERS_HPP_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <tuple>
#include <vector>

#include "core/similarity.hpp"
#include "distance/dtw.hpp"
#include "measures/dust.hpp"
#include "measures/munich.hpp"
#include "measures/proud.hpp"
#include "query/uncertain_engine.hpp"
#include "ts/filters.hpp"
#include "ts/smoother.hpp"
#include "wavelet/proud_synopsis.hpp"

namespace uts::core {

/// \brief Baseline: Euclidean distance on the raw observations.
class EuclideanMatcher final : public Matcher {
 public:
  std::string name() const override { return "Euclidean"; }
  Status Bind(const EvalContext& context) override;
  Result<double> CalibrationDistance(std::size_t qi, std::size_t ci) override;
  Result<bool> Matches(std::size_t qi, std::size_t ci,
                       double epsilon) override;

 private:
  const EvalContext* ctx_ = nullptr;
};

/// \brief PROUD with the paper's constant-σ model.
class ProudMatcher final : public Matcher {
 public:
  /// \param tau            probability threshold τ
  /// \param sigma_override σ told to PROUD; when unset, the context's
  ///                       `reported_sigma` is used at Bind time
  explicit ProudMatcher(double tau = 0.9,
                        std::optional<double> sigma_override = std::nullopt)
      : tau_(tau), sigma_override_(sigma_override) {}

  std::string name() const override { return "PROUD"; }
  Status Bind(const EvalContext& context) override;
  Result<double> CalibrationDistance(std::size_t qi, std::size_t ci) override;
  Result<bool> Matches(std::size_t qi, std::size_t ci,
                       double epsilon) override;
  /// Batched ε_norm sweep on the run's shared UncertainEngine
  /// (bit-identical to the sequential Matches loop at any thread count).
  Result<std::vector<std::size_t>> Retrieve(std::size_t qi, std::size_t n,
                                            double epsilon) override;
  bool has_tau() const override { return true; }
  double tau() const override { return tau_; }
  void set_tau(double tau) override;

 private:
  double tau_;
  std::optional<double> sigma_override_;
  std::unique_ptr<measures::Proud> proud_;
  /// Borrowed view of the context's shared engine (EvalContext::engines);
  /// null = sequential scalar path. Re-acquired at every Bind.
  query::UncertainEngine* engine_ = nullptr;
  const EvalContext* ctx_ = nullptr;
};

/// \brief PROUD accelerated by the Haar-synopsis filter (Section 4.3).
class ProudSynopsisMatcherAdapter final : public Matcher {
 public:
  explicit ProudSynopsisMatcherAdapter(
      double tau = 0.9, std::size_t synopsis_size = 16,
      std::optional<double> sigma_override = std::nullopt)
      : tau_(tau),
        synopsis_size_(synopsis_size),
        sigma_override_(sigma_override) {}

  std::string name() const override { return "PROUD-wavelet"; }
  Status Bind(const EvalContext& context) override;
  Result<double> CalibrationDistance(std::size_t qi, std::size_t ci) override;
  Result<bool> Matches(std::size_t qi, std::size_t ci,
                       double epsilon) override;
  bool has_tau() const override { return true; }
  double tau() const override { return tau_; }
  void set_tau(double tau) override;

  /// Filter effectiveness counters accumulated since the last Bind.
  const wavelet::ProudSynopsisStats& stats() const { return stats_; }

 private:
  Status Rebuild();

  double tau_;
  std::size_t synopsis_size_;
  std::optional<double> sigma_override_;
  std::unique_ptr<wavelet::ProudSynopsisMatcher> matcher_;
  std::vector<wavelet::HaarSynopsis> synopses_;
  wavelet::ProudSynopsisStats stats_;
  const EvalContext* ctx_ = nullptr;
};

/// \brief DUST distance matcher.
class DustMatcher final : public Matcher {
 public:
  explicit DustMatcher(measures::DustOptions options = {})
      : dust_(options) {}

  std::string name() const override { return "DUST"; }
  Status Bind(const EvalContext& context) override;
  Result<double> CalibrationDistance(std::size_t qi, std::size_t ci) override;
  Result<bool> Matches(std::size_t qi, std::size_t ci,
                       double epsilon) override;
  /// Batched DUST range sweep on the run's shared UncertainEngine
  /// (bit-identical to the sequential Matches loop at any thread count).
  Result<std::vector<std::size_t>> Retrieve(std::size_t qi, std::size_t n,
                                            double epsilon) override;

  /// The underlying scalar distance (the engine-less fallback path), for
  /// diagnostics.
  measures::Dust& dust() { return dust_; }

 private:
  measures::Dust dust_;
  /// Borrowed view of the context's shared engine (EvalContext::engines);
  /// null = sequential scalar path. Re-acquired at every Bind.
  query::UncertainEngine* engine_ = nullptr;
  const EvalContext* ctx_ = nullptr;
};

/// \brief DUST with DTW alignment (Section 3.2).
class DustDtwMatcher final : public Matcher {
 public:
  explicit DustDtwMatcher(measures::DustOptions options = {},
                          distance::DtwOptions dtw_options = {})
      : dust_(options), dtw_options_(dtw_options) {}

  std::string name() const override { return "DUST-DTW"; }
  Status Bind(const EvalContext& context) override;
  Result<double> CalibrationDistance(std::size_t qi, std::size_t ci) override;
  Result<bool> Matches(std::size_t qi, std::size_t ci,
                       double epsilon) override;

 private:
  measures::Dust dust_;
  distance::DtwOptions dtw_options_;
  const EvalContext* ctx_ = nullptr;
};

/// \brief MUNICH over the repeated-observations model (Euclidean flavor).
///
/// Match probabilities are cached per (query, candidate, ε): a τ sweep
/// (`SweepTau`) re-decides against the same probabilities instead of
/// re-running the exact/Monte-Carlo estimator. The cache resets at Bind.
class MunichMatcher final : public Matcher {
 public:
  explicit MunichMatcher(measures::MunichOptions options = {})
      : munich_(options) {}

  std::string name() const override { return "MUNICH"; }
  Status Bind(const EvalContext& context) override;
  Result<double> CalibrationDistance(std::size_t qi, std::size_t ci) override;
  Result<bool> Matches(std::size_t qi, std::size_t ci,
                       double epsilon) override;
  /// Batched estimator sweep on the run's shared UncertainEngine. Per-pair
  /// Monte Carlo streams are counter-seeded exactly like the sequential
  /// path, so results are bit-identical at any thread count; computed
  /// probabilities land in the same τ-sweep cache the sequential path uses.
  Result<std::vector<std::size_t>> Retrieve(std::size_t qi, std::size_t n,
                                            double epsilon) override;
  bool has_tau() const override { return true; }
  double tau() const override { return munich_.options().tau; }
  void set_tau(double tau) override;

 private:
  /// Cached probability of (qi, ci, ε), or the freshly computed one.
  Result<double> ProbabilityFor(std::size_t qi, std::size_t ci,
                                double epsilon);

  measures::Munich munich_;
  /// Borrowed view of the context's shared engine (EvalContext::engines);
  /// null = sequential scalar path. Re-acquired at every Bind.
  query::UncertainEngine* engine_ = nullptr;
  const EvalContext* ctx_ = nullptr;
  std::uint64_t bound_fingerprint_ = 0;
  std::map<std::tuple<std::size_t, std::size_t, std::uint64_t>, double>
      prob_cache_;
};

/// \brief MUNICH with DTW distances over materializations.
class MunichDtwMatcher final : public Matcher {
 public:
  explicit MunichDtwMatcher(measures::MunichOptions options = {},
                            distance::DtwOptions dtw_options = {})
      : options_(options), dtw_options_(dtw_options) {}

  std::string name() const override { return "MUNICH-DTW"; }
  Status Bind(const EvalContext& context) override;
  Result<double> CalibrationDistance(std::size_t qi, std::size_t ci) override;
  Result<bool> Matches(std::size_t qi, std::size_t ci,
                       double epsilon) override;
  bool has_tau() const override { return true; }
  double tau() const override { return options_.tau; }
  void set_tau(double tau) override { options_.tau = tau; }

 private:
  measures::MunichOptions options_;
  distance::DtwOptions dtw_options_;
  const EvalContext* ctx_ = nullptr;
};

/// \brief Which moving-average filter a filtered matcher applies.
enum class FilterKind {
  kMovingAverage,             ///< Eq. 15 (no uncertainty information)
  kExponentialMovingAverage,  ///< Eq. 16
  kUma,                       ///< Eq. 17
  kUema,                      ///< Eq. 18
};

/// \brief Euclidean distance over filtered observations — the UMA/UEMA
/// measures of Section 5 plus their non-uncertain MA/EMA ablations.
class FilteredMatcher final : public Matcher {
 public:
  FilteredMatcher(FilterKind kind, ts::FilterOptions options);

  std::string name() const override;
  Status Bind(const EvalContext& context) override;
  Result<double> CalibrationDistance(std::size_t qi, std::size_t ci) override;
  Result<bool> Matches(std::size_t qi, std::size_t ci,
                       double epsilon) override;

 private:
  FilterKind kind_;
  ts::FilterOptions options_;
  std::vector<std::vector<double>> filtered_;
  const EvalContext* ctx_ = nullptr;
};

/// \brief Plain DTW over the raw observations (the certain-series DTW that
/// MUNICH-DTW and DUST-DTW are compared against, Section 3.2).
class DtwMatcher final : public Matcher {
 public:
  explicit DtwMatcher(distance::DtwOptions options = {})
      : options_(options) {}

  std::string name() const override;
  Status Bind(const EvalContext& context) override;
  Result<double> CalibrationDistance(std::size_t qi, std::size_t ci) override;
  Result<bool> Matches(std::size_t qi, std::size_t ci,
                       double epsilon) override;

 private:
  distance::DtwOptions options_;
  const EvalContext* ctx_ = nullptr;
};

/// \brief Correlation-aware measure: Euclidean over AR(1) Kalman/RTS
/// smoothed observations — the library's instantiation of the paper's
/// future-work direction ("take into account the sequential correlations",
/// Section 7). Uses exactly the information UMA/UEMA use (observations +
/// reported per-point σ) plus a ρ estimated per series.
class Ar1SmootherMatcher final : public Matcher {
 public:
  explicit Ar1SmootherMatcher(ts::Ar1SmootherOptions options = {})
      : options_(options) {}

  std::string name() const override;
  Status Bind(const EvalContext& context) override;
  Result<double> CalibrationDistance(std::size_t qi, std::size_t ci) override;
  Result<bool> Matches(std::size_t qi, std::size_t ci,
                       double epsilon) override;

 private:
  ts::Ar1SmootherOptions options_;
  std::vector<std::vector<double>> smoothed_;
  const EvalContext* ctx_ = nullptr;
};

/// \name Factory helpers with the paper's default parameters
/// "we assume a decaying factor of λ = 1 for UEMA, and a moving average
/// window length W = 5 (i.e., w = 2) for both UMA and UEMA" (Section 5.2).
/// \{
std::unique_ptr<FilteredMatcher> MakeUmaMatcher(std::size_t half_window = 2);
std::unique_ptr<FilteredMatcher> MakeUemaMatcher(std::size_t half_window = 2,
                                                 double lambda = 1.0);
std::unique_ptr<FilteredMatcher> MakeMovingAverageMatcher(
    std::size_t half_window = 2);
std::unique_ptr<FilteredMatcher> MakeExponentialMovingAverageMatcher(
    std::size_t half_window = 2, double lambda = 1.0);
/// \}

}  // namespace uts::core

#endif  // UTS_CORE_MATCHERS_HPP_
