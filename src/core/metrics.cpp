#include "core/metrics.hpp"

#include <algorithm>
#include <vector>

namespace uts::core {

double F1Score(double precision, double recall) {
  const double denom = precision + recall;
  if (denom <= 0.0) return 0.0;
  return 2.0 * precision * recall / denom;
}

SetMetrics ComputeSetMetrics(std::span<const std::size_t> retrieved,
                             std::span<const std::size_t> relevant) {
  std::vector<std::size_t> r(retrieved.begin(), retrieved.end());
  std::vector<std::size_t> g(relevant.begin(), relevant.end());
  std::sort(r.begin(), r.end());
  std::sort(g.begin(), g.end());

  SetMetrics metrics;
  metrics.retrieved = r.size();
  metrics.relevant = g.size();

  std::size_t hits = 0;
  auto it_r = r.begin();
  auto it_g = g.begin();
  while (it_r != r.end() && it_g != g.end()) {
    if (*it_r < *it_g) {
      ++it_r;
    } else if (*it_g < *it_r) {
      ++it_g;
    } else {
      ++hits;
      ++it_r;
      ++it_g;
    }
  }
  metrics.hits = hits;

  metrics.precision =
      r.empty() ? (g.empty() ? 1.0 : 0.0)
                : static_cast<double>(hits) / static_cast<double>(r.size());
  metrics.recall =
      g.empty() ? 1.0
                : static_cast<double>(hits) / static_cast<double>(g.size());
  metrics.f1 = F1Score(metrics.precision, metrics.recall);
  return metrics;
}

}  // namespace uts::core
