#include "core/experiment.hpp"

#include <algorithm>
#include <cassert>
#include <optional>
#include <thread>

#include "core/timer.hpp"
#include "query/engine.hpp"
#include "query/engine_context.hpp"
#include "query/search.hpp"
#include "uncertain/perturb.hpp"

namespace uts::core {

namespace {

Status ValidateInput(const ts::Dataset& exact, const RunOptions& options) {
  if (exact.size() < 3) {
    return Status::InvalidArgument("dataset needs at least 3 series");
  }
  if (!exact.HasUniformLength()) {
    return Status::InvalidArgument("dataset series must share one length");
  }
  if (options.ground_truth_k == 0) {
    return Status::InvalidArgument("ground_truth_k must be >= 1");
  }
  if (options.ground_truth_k >= exact.size()) {
    return Status::InvalidArgument(
        "ground_truth_k must be smaller than the dataset");
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<MatcherResult>> RunSimilarityMatching(
    const ts::Dataset& exact, const uncertain::ErrorSpec& spec,
    std::span<Matcher* const> matchers, const RunOptions& options) {
  UTS_RETURN_NOT_OK(ValidateInput(exact, options));
  if (matchers.empty()) {
    return Status::InvalidArgument("no matchers supplied");
  }

  // --- Engine context ------------------------------------------------------
  // The single resource root of this evaluation: one shared thread pool,
  // one SoA pack per dataset, one uncertain engine for all matchers. An
  // externally supplied context (options.engine_context) persists those
  // resources across runs — τ sweeps re-perturb to bit-identical data and
  // therefore keep the packed engines.
  std::optional<query::EngineContext> local_engines;
  query::EngineContext* engines = options.engine_context;
  if (engines == nullptr) {
    query::EngineContextOptions engine_options;
    engine_options.threads = options.threads;
    if (options.force_scalar) {
      engine_options.simd = distance::SimdMode::kForceScalar;
    }
    local_engines.emplace(engine_options);
    engines = &*local_engines;
  } else {
    const std::size_t want =
        options.threads == 0
            ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
            : options.threads;
    if (engines->threads() != want) {
      return Status::InvalidArgument(
          "engine_context thread count does not match RunOptions::threads");
    }
  }

  // --- Perturb -------------------------------------------------------------
  uncertain::UncertainDataset pdf =
      uncertain::PerturbDataset(exact, spec, options.seed);
  std::optional<uncertain::MultiSampleDataset> samples;
  const bool want_samples = options.munich_samples_per_point > 0;
  if (want_samples) {
    // An independent seed stream: the sample-model observations are a
    // different set of measurements of the same underlying series.
    samples = uncertain::PerturbDatasetMultiSample(
        exact, spec, options.munich_samples_per_point,
        prob::DeriveSeed(options.seed, 0xface));
  }

  const double reported_sigma = options.proud_sigma > 0.0
                                    ? options.proud_sigma
                                    : spec.RepresentativeSigma();
  UTS_RETURN_NOT_OK(engines->BindData(std::move(pdf), std::move(samples),
                                      options.seed, reported_sigma));

  EvalContext context;
  context.exact = &exact;
  context.pdf = engines->pdf();
  context.samples = engines->samples();
  context.reported_sigma = reported_sigma;
  context.seed = options.seed;
  context.threads = options.threads;
  context.engines = engines;

  for (Matcher* matcher : matchers) {
    UTS_RETURN_NOT_OK(matcher->Bind(context));
  }

  // --- Evaluate ------------------------------------------------------------
  const std::size_t num_queries =
      options.max_queries == 0 ? exact.size()
                               : std::min(options.max_queries, exact.size());
  const std::size_t k = options.ground_truth_k;

  std::vector<MatcherResult> results(matchers.size());
  for (std::size_t m = 0; m < matchers.size(); ++m) {
    results[m].name = matchers[m]->name();
  }

  std::vector<double> total_micros(matchers.size(), 0.0);

  distance::DtwOptions gt_dtw_options;
  gt_dtw_options.band_radius = options.dtw_ground_truth_band;

  // Ground truth: the k nearest under the exact Euclidean distance (or
  // exact DTW when requested). "Distance thresholds are chosen such that
  // in the ground truth set they return exactly 10 time series." The
  // all-pairs sweep runs on the context's shared certain engine — Euclidean
  // over the SoA store (parallel over queries), DTW over the pure per-pair
  // callback (parallel over candidates; small grain since one DTW is
  // O(n²)). Repeated runs over the same exact dataset reuse the engine.
  const query::DistanceMatrixEngine& engine =
      engines->Certain(exact, options.dtw_ground_truth ? 16 : 0);

  std::vector<std::vector<query::Neighbor>> ground_truth;
  if (options.dtw_ground_truth) {
    ground_truth.resize(num_queries);
    for (std::size_t qi = 0; qi < num_queries; ++qi) {
      ground_truth[qi] =
          engine.KNearest(exact.size(), qi, k, [&](std::size_t i) {
            return distance::Dtw(exact[qi].values(), exact[i].values(),
                                 gt_dtw_options);
          });
    }
  } else {
    ground_truth = engine.AllKNearestEuclidean(k, num_queries);
  }

  for (std::size_t qi = 0; qi < num_queries; ++qi) {
    const auto& neighbors = ground_truth[qi];
    assert(neighbors.size() == k);
    std::vector<std::size_t> relevant;
    relevant.reserve(k);
    for (const auto& nb : neighbors) relevant.push_back(nb.index);
    const std::size_t calibration_index = neighbors.back().index;

    for (std::size_t m = 0; m < matchers.size(); ++m) {
      Matcher& matcher = *matchers[m];

      // Technique-equivalent threshold from the k-th nearest neighbor.
      auto eps = matcher.CalibrationDistance(qi, calibration_index);
      if (!eps.ok()) return eps.status();

      // Retrieval through the matcher's batched sweep (engine-aware
      // matchers run it on query::UncertainEngine with options.threads
      // workers; the default is the sequential Matches loop). Results are
      // bit-identical either way.
      Stopwatch watch;
      auto retrieved = matcher.Retrieve(qi, exact.size(), eps.ValueOrDie());
      if (!retrieved.ok()) return retrieved.status();
      total_micros[m] += watch.ElapsedMicros();

      const SetMetrics metrics =
          ComputeSetMetrics(retrieved.ValueOrDie(), relevant);
      results[m].per_query_f1.push_back(metrics.f1);
      results[m].per_query_precision.push_back(metrics.precision);
      results[m].per_query_recall.push_back(metrics.recall);
    }
  }

  // --- Aggregate -----------------------------------------------------------
  for (std::size_t m = 0; m < matchers.size(); ++m) {
    MatcherResult& r = results[m];
    r.queries = num_queries;
    r.f1 = prob::MeanConfidenceInterval(r.per_query_f1);
    r.precision = prob::MeanConfidenceInterval(r.per_query_precision);
    r.recall = prob::MeanConfidenceInterval(r.per_query_recall);
    r.avg_query_millis =
        num_queries == 0
            ? 0.0
            : total_micros[m] / (1000.0 * static_cast<double>(num_queries));
  }
  return results;
}

std::vector<double> DefaultTauGrid() {
  // The decision statistic shifts with n·σ² under the CLT approximation, so
  // the F1-optimal τ can sit deep in either tail (the paper only says it is
  // "determined after repeated experiments"); the grid must reach there —
  // e.g. with length-64 series and σ = 0.7 the optimum lands near τ = 1e-5.
  return {1e-6, 1e-5, 1e-4, 1e-3, 0.01, 0.05, 0.1,  0.2,   0.3,
          0.4,  0.5,  0.6,  0.7,  0.8,  0.9,  0.95, 0.99,  0.999,
          0.9999};
}

Result<TauSweepResult> SweepTau(const ts::Dataset& exact,
                                const uncertain::ErrorSpec& spec,
                                Matcher& matcher, const RunOptions& options,
                                std::span<const double> tau_grid) {
  if (!matcher.has_tau()) {
    return Status::InvalidArgument("matcher '" + matcher.name() +
                                   "' has no probabilistic threshold");
  }
  if (tau_grid.empty()) {
    return Status::InvalidArgument("empty tau grid");
  }

  TauSweepResult sweep;
  sweep.best_f1 = -1.0;
  Matcher* const matchers[] = {&matcher};
  for (double tau : tau_grid) {
    matcher.set_tau(tau);
    auto run = RunSimilarityMatching(exact, spec, matchers, options);
    if (!run.ok()) return run.status();
    const double f1 = run.ValueOrDie().front().f1.mean;
    sweep.taus.push_back(tau);
    sweep.f1s.push_back(f1);
    if (f1 > sweep.best_f1) {
      sweep.best_f1 = f1;
      sweep.best_tau = tau;
    }
  }
  matcher.set_tau(sweep.best_tau);
  return sweep;
}

MatcherResult CombineAcrossDatasets(const std::string& name,
                                    std::span<const MatcherResult> parts) {
  MatcherResult combined;
  combined.name = name;
  double weighted_millis = 0.0;
  for (const auto& part : parts) {
    combined.per_query_f1.insert(combined.per_query_f1.end(),
                                 part.per_query_f1.begin(),
                                 part.per_query_f1.end());
    combined.per_query_precision.insert(combined.per_query_precision.end(),
                                        part.per_query_precision.begin(),
                                        part.per_query_precision.end());
    combined.per_query_recall.insert(combined.per_query_recall.end(),
                                     part.per_query_recall.begin(),
                                     part.per_query_recall.end());
    combined.queries += part.queries;
    weighted_millis +=
        part.avg_query_millis * static_cast<double>(part.queries);
  }
  combined.f1 = prob::MeanConfidenceInterval(combined.per_query_f1);
  combined.precision =
      prob::MeanConfidenceInterval(combined.per_query_precision);
  combined.recall = prob::MeanConfidenceInterval(combined.per_query_recall);
  combined.avg_query_millis =
      combined.queries == 0
          ? 0.0
          : weighted_millis / static_cast<double>(combined.queries);
  return combined;
}

}  // namespace uts::core
