/// \file metrics.hpp
/// \brief Retrieval quality metrics (Section 4.2, Eq. 14).
///
/// "Recall is defined as the percentage of the truly similar uncertain time
/// series that are found by the algorithm. Precision is the percentage of
/// similar uncertain time series identified by the algorithm, which are
/// truly similar. Accuracy is measured in terms of F1 score."

#ifndef UTS_CORE_METRICS_HPP_
#define UTS_CORE_METRICS_HPP_

#include <cstddef>
#include <span>

namespace uts::core {

/// \brief Precision / recall / F1 of one retrieved set vs the ground truth.
struct SetMetrics {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  std::size_t retrieved = 0;  ///< |result set|
  std::size_t relevant = 0;   ///< |ground-truth set|
  std::size_t hits = 0;       ///< |intersection|
};

/// \brief Compute metrics from index sets.
///
/// Conventions for degenerate cases: an empty retrieved set has precision 0
/// when anything was relevant (and 1 when nothing was); recall is 1 when the
/// relevant set is empty; F1 is 0 whenever precision + recall is 0. These
/// make the F1 averages well defined across all queries.
///
/// \param retrieved indices returned by the technique (any order, no dups)
/// \param relevant  ground-truth indices (any order, no dups)
SetMetrics ComputeSetMetrics(std::span<const std::size_t> retrieved,
                             std::span<const std::size_t> relevant);

/// \brief F1 from precision and recall (Eq. 14), 0 when both are 0.
double F1Score(double precision, double recall);

}  // namespace uts::core

#endif  // UTS_CORE_METRICS_HPP_
