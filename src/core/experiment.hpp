/// \file experiment.hpp
/// \brief The paper's comparison methodology as a reusable runner.
///
/// Section 4.1.2, step by step:
///
///  1. an exact dataset is the ground truth; uncertainty is injected by a
///     perturbation spec;
///  2. "given a query q and a dataset C, we identify the 10th nearest
///     neighbor of q in C. Let that be time series c. We define ε_eucl as
///     the Euclidean distance on the observations between q and c and
///     ε_dust as the DUST distance between q and c. This procedure is
///     repeated for every query q" — generalized here to *every* measure
///     through `Matcher::CalibrationDistance`;
///  3. the ground-truth result set is the k nearest neighbors of q under
///     the exact (unperturbed) Euclidean distance ("distance thresholds are
///     chosen such that in the ground truth set they return exactly 10 time
///     series");
///  4. each technique retrieves its matches among the perturbed series and
///     is scored with precision / recall / F1 against the ground truth;
///  5. "we performed experiments for each dataset separately, using each
///     one of the time series as a query ... we report the averages of all
///     these results, as well as the 95% confidence intervals".

#ifndef UTS_CORE_EXPERIMENT_HPP_
#define UTS_CORE_EXPERIMENT_HPP_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "core/metrics.hpp"
#include "core/similarity.hpp"
#include "distance/dtw.hpp"
#include "prob/stats.hpp"
#include "ts/dataset.hpp"
#include "uncertain/error_spec.hpp"

namespace uts::query {
class EngineContext;
}  // namespace uts::query

namespace uts::core {

/// \brief Options of one similarity-matching run.
struct RunOptions {
  /// Ground-truth set size and calibration neighbor rank (the paper's 10).
  std::size_t ground_truth_k = 10;

  /// Evaluate at most this many queries (0 = every series, as in the
  /// paper). Queries are the first `max_queries` series — the generators
  /// interleave classes, so prefixes are class-balanced.
  std::size_t max_queries = 0;

  /// Perturbation / estimator base seed.
  std::uint64_t seed = 42;

  /// Worker threads for the ground-truth / calibration distance sweeps
  /// (query::DistanceMatrixEngine): 1 = sequential, 0 = hardware
  /// concurrency. Results are bit-identical at every setting.
  std::size_t threads = 1;

  /// Pin every engine of the run to the scalar reference kernels instead
  /// of the runtime-dispatched SIMD level (see distance/simd.hpp for the
  /// per-kernel numeric policy). Only consulted when the run creates a
  /// private engine context; an external `engine_context` carries its own
  /// EngineContextOptions::simd.
  bool force_scalar = false;

  /// Build the repeated-observations dataset too (required iff a MUNICH
  /// matcher participates) with this many samples per timestamp (the
  /// paper's Figure 4 uses 5). 0 disables.
  std::size_t munich_samples_per_point = 0;

  /// σ reported to PROUD; 0 = use the spec's RepresentativeSigma().
  double proud_sigma = 0.0;

  /// Collect per-query timing (Figures 11/12).
  bool measure_time = true;

  /// Define the ground-truth k-NN sets under exact DTW instead of exact
  /// Euclidean — for evaluating the DTW-flavored matchers (Section 3.2)
  /// against the alignment-aware notion of truth they target.
  bool dtw_ground_truth = false;

  /// Sakoe–Chiba band for the DTW ground truth (kNoBand = unconstrained).
  std::size_t dtw_ground_truth_band = distance::DtwOptions::kNoBand;

  /// Run-wide shared engine context (query::EngineContext): one thread
  /// pool, one SoA pack per dataset and one uncertain engine serve every
  /// matcher of the evaluation. Borrowed — it must outlive the run and be
  /// configured with the same thread count as `threads`. Passing one
  /// context across repeated runs (τ sweeps, per-dataset loops) reuses the
  /// pool and, when the perturbed data is bit-identical, the packed
  /// engines too. When null the run creates a private context internally;
  /// results are bit-identical either way.
  query::EngineContext* engine_context = nullptr;
};

/// \brief Aggregated outcome of one matcher on one run.
struct MatcherResult {
  std::string name;
  prob::ConfidenceInterval f1;         ///< Mean F1 with 95% CI.
  prob::ConfidenceInterval precision;  ///< Mean precision with 95% CI.
  prob::ConfidenceInterval recall;     ///< Mean recall with 95% CI.
  double avg_query_millis = 0.0;       ///< Mean per-query decision time.
  std::size_t queries = 0;             ///< Number of queries evaluated.

  /// Raw per-query scores (for cross-dataset aggregation).
  std::vector<double> per_query_f1;
  std::vector<double> per_query_precision;
  std::vector<double> per_query_recall;
};

/// \brief Run the paper's similarity-matching evaluation of `matchers` on
/// one exact dataset under one perturbation spec.
///
/// The exact dataset must be z-normalized and of uniform length; matchers
/// are bound to the perturbed context inside. Results preserve the matcher
/// order.
Result<std::vector<MatcherResult>> RunSimilarityMatching(
    const ts::Dataset& exact, const uncertain::ErrorSpec& spec,
    std::span<Matcher* const> matchers, const RunOptions& options);

/// \brief Result of an optimal-τ search.
struct TauSweepResult {
  double best_tau = 0.5;
  double best_f1 = 0.0;
  std::vector<double> taus;    ///< Grid evaluated.
  std::vector<double> f1s;     ///< Mean F1 at each grid point.
};

/// \brief Find the F1-optimal probabilistic threshold τ for one matcher —
/// the paper's "optimal probabilistic threshold, determined after repeated
/// experiments" (Section 4.2.1). Runs the full matching once per grid
/// point; the matcher must have `has_tau()`.
Result<TauSweepResult> SweepTau(const ts::Dataset& exact,
                                const uncertain::ErrorSpec& spec,
                                Matcher& matcher, const RunOptions& options,
                                std::span<const double> tau_grid);

/// \brief Default τ grid {0.1, 0.2, ..., 0.9}.
std::vector<double> DefaultTauGrid();

/// \brief Merge per-query scores of the same matcher across datasets and
/// recompute the confidence intervals ("we report the average results over
/// the full time series for all datasets", Section 4.2.1).
MatcherResult CombineAcrossDatasets(const std::string& name,
                                    std::span<const MatcherResult> parts);

}  // namespace uts::core

#endif  // UTS_CORE_EXPERIMENT_HPP_
