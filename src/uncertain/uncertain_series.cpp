#include "uncertain/uncertain_series.hpp"

#include <algorithm>

namespace uts::uncertain {

std::vector<double> UncertainSeries::Stddevs() const {
  std::vector<double> out;
  out.reserve(errors_.size());
  for (const auto& e : errors_) out.push_back(e->stddev());
  return out;
}

ts::TimeSeries MultiSampleSeries::SampleMeans() const {
  std::vector<double> means;
  means.reserve(samples_.size());
  for (const auto& s : samples_) {
    double sum = 0.0;
    for (double v : s) sum += v;
    means.push_back(s.empty() ? 0.0 : sum / static_cast<double>(s.size()));
  }
  return ts::TimeSeries(std::move(means), label_, id_);
}

std::pair<double, double> MultiSampleSeries::BoundingInterval(
    std::size_t i) const {
  const auto& s = samples(i);
  assert(!s.empty());
  const auto [lo, hi] = std::minmax_element(s.begin(), s.end());
  return {*lo, *hi};
}

}  // namespace uts::uncertain
