/// \file error_spec.hpp
/// \brief Declarative descriptions of how measurement error is injected.
///
/// The paper's experiments use four error regimes:
///
///  1. constant σ, one family (Figures 4–7, 11–12);
///  2. mixed σ within a series — "the error for 20% of the values has
///     standard deviation 1, and the rest 80% has standard deviation 0.4"
///     (Figure 8, and Figures 13–17);
///  3. mixed families — "a mixture of uniform, normal, and exponential
///     distributions" with the same 20/80 σ split (Figure 9);
///  4. misreported σ — values perturbed with the mixed-σ regime, but the
///     techniques are told σ = 0.7 everywhere (Figure 10).
///
/// An `ErrorSpec` turns into a per-timestamp `ErrorAssignment` with two
/// parallel distribution vectors: `actual` generates the observations,
/// `reported` is what the techniques are allowed to know.

#ifndef UTS_UNCERTAIN_ERROR_SPEC_HPP_
#define UTS_UNCERTAIN_ERROR_SPEC_HPP_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "prob/distribution.hpp"
#include "prob/rng.hpp"

namespace uts::uncertain {

/// \brief Per-timestamp error models for one series.
struct ErrorAssignment {
  /// Distribution that actually perturbs each point.
  std::vector<prob::ErrorDistributionPtr> actual;
  /// Distribution reported to the similarity techniques (usually == actual).
  std::vector<prob::ErrorDistributionPtr> reported;

  std::size_t size() const { return actual.size(); }
};

/// \brief Which error regime a spec describes.
enum class ErrorRegime {
  kConstant,    ///< Same distribution at every timestamp.
  kMixedSigma,  ///< One family; a fraction of points gets a larger σ.
  kMixedKind,   ///< Random family per point, plus the mixed-σ split.
};

/// \brief Declarative error-injection specification.
///
/// Build with the factory functions below; `Assign` instantiates it for a
/// series of a given length using a deterministic seed.
class ErrorSpec {
 public:
  /// Constant error: family `kind`, standard deviation `sigma` everywhere.
  static ErrorSpec Constant(prob::ErrorKind kind, double sigma);

  /// Mixed-σ error (paper's Figure 8 setting by default): family `kind`;
  /// fraction `frac_hi` of the points get `sigma_hi`, the rest `sigma_lo`.
  /// High-σ positions are chosen uniformly at random per series.
  static ErrorSpec MixedSigma(prob::ErrorKind kind, double frac_hi = 0.2,
                              double sigma_hi = 1.0, double sigma_lo = 0.4);

  /// Mixed-family error (Figure 9): each point draws its family uniformly
  /// from {uniform, normal, exponential} and its σ from the 20/80 split.
  static ErrorSpec MixedKind(double frac_hi = 0.2, double sigma_hi = 1.0,
                             double sigma_lo = 0.4);

  /// Wrap this spec so that the *reported* error becomes a constant
  /// `reported_kind`/`reported_sigma` regardless of the actual injection
  /// (Figure 10 uses normal σ = 0.7).
  ErrorSpec WithMisreported(prob::ErrorKind reported_kind,
                            double reported_sigma) const;

  /// For DUST's uniform-error pathology workaround: report the tailed
  /// uniform distribution wherever a (pure) uniform error is reported.
  ErrorSpec WithTailedUniformReporting(double tail_weight = 0.01) const;

  /// Instantiate per-timestamp distributions for a series of `length`
  /// points. Deterministic in `seed`.
  ErrorAssignment Assign(std::size_t length, std::uint64_t seed) const;

  /// The regime of this spec.
  ErrorRegime regime() const { return regime_; }

  /// Representative standard deviation: σ for constant specs, the weighted
  /// RMS σ for mixed specs. This is the single value handed to PROUD, which
  /// "assumes that the standard deviation of the uncertainty error remains
  /// constant across all timestamps" (Section 3.1).
  double RepresentativeSigma() const;

  /// Human-readable description, e.g. "normal(σ=0.6)" or
  /// "mixed-σ normal 20%@1.0/80%@0.4".
  std::string Describe() const;

 private:
  ErrorSpec() = default;

  ErrorRegime regime_ = ErrorRegime::kConstant;
  prob::ErrorKind kind_ = prob::ErrorKind::kNormal;
  double sigma_ = 1.0;       // constant regime
  double frac_hi_ = 0.2;     // mixed regimes
  double sigma_hi_ = 1.0;
  double sigma_lo_ = 0.4;
  bool misreport_ = false;
  prob::ErrorKind reported_kind_ = prob::ErrorKind::kNormal;
  double reported_sigma_ = 0.7;
  bool tailed_uniform_reporting_ = false;
  double tail_weight_ = 0.01;
};

}  // namespace uts::uncertain

#endif  // UTS_UNCERTAIN_ERROR_SPEC_HPP_
