/// \file uncertain_series.hpp
/// \brief The two uncertainty models evaluated in the paper (Section 2).
///
/// "Two main approaches have emerged for modeling uncertain time series. In
/// the first, a probability density function over the uncertain values is
/// estimated by using some a priori knowledge. In the second, the uncertain
/// data distribution is summarized by repeated measurements."
///
///  * `UncertainSeries`   — pdf model: one observation per timestamp plus a
///    per-timestamp error distribution (what PROUD, DUST, UMA and UEMA see).
///  * `MultiSampleSeries` — sample model: s repeated observations per
///    timestamp (what MUNICH sees).

#ifndef UTS_UNCERTAIN_UNCERTAIN_SERIES_HPP_
#define UTS_UNCERTAIN_UNCERTAIN_SERIES_HPP_

#include <cassert>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "prob/distribution.hpp"
#include "ts/time_series.hpp"

namespace uts::uncertain {

/// \brief PDF-modeled uncertain series: observation + error model per point.
///
/// The stored error distributions are the *reported* ones — the information
/// the similarity techniques are given. Under the paper's misreporting
/// experiments (Figure 10) these deliberately differ from the distributions
/// that actually generated the observations.
class UncertainSeries {
 public:
  UncertainSeries() = default;

  /// Construct from observations and matching per-point error models.
  UncertainSeries(std::vector<double> observations,
                  std::vector<prob::ErrorDistributionPtr> errors,
                  int label = ts::TimeSeries::kNoLabel, std::string id = {})
      : observations_(std::move(observations)),
        errors_(std::move(errors)),
        label_(label),
        id_(std::move(id)) {
    assert(observations_.size() == errors_.size());
  }

  /// Number of timestamps.
  std::size_t size() const { return observations_.size(); }

  /// True iff the series has no points.
  bool empty() const { return observations_.empty(); }

  /// Observed value at timestamp i.
  double observation(std::size_t i) const {
    assert(i < observations_.size());
    return observations_[i];
  }

  /// All observations, viewed as a certain series (the "just use a single
  /// value for every timestamp" Euclidean baseline of Section 4.1.2).
  const std::vector<double>& observations() const { return observations_; }

  /// Reported error model at timestamp i.
  const prob::ErrorDistributionPtr& error(std::size_t i) const {
    assert(i < errors_.size());
    return errors_[i];
  }

  /// Reported error standard deviation at timestamp i.
  double stddev(std::size_t i) const { return error(i)->stddev(); }

  /// Materialize all reported standard deviations (UMA/UEMA input).
  std::vector<double> Stddevs() const;

  /// The observations as a labeled TimeSeries.
  ts::TimeSeries AsTimeSeries() const {
    return ts::TimeSeries(observations_, label_, id_);
  }

  /// Class label.
  int label() const { return label_; }

  /// Identifier.
  const std::string& id() const { return id_; }

 private:
  std::vector<double> observations_;
  std::vector<prob::ErrorDistributionPtr> errors_;
  int label_ = ts::TimeSeries::kNoLabel;
  std::string id_;
};

/// \brief Sample-modeled uncertain series: repeated observations per point.
///
/// "In [MUNICH], uncertainty is modeled by means of repeated observations at
/// each timestamp" (Section 2.1).
class MultiSampleSeries {
 public:
  MultiSampleSeries() = default;

  /// Construct from per-timestamp sample sets.
  explicit MultiSampleSeries(std::vector<std::vector<double>> samples,
                             int label = ts::TimeSeries::kNoLabel,
                             std::string id = {})
      : samples_(std::move(samples)), label_(label), id_(std::move(id)) {}

  /// Number of timestamps.
  std::size_t size() const { return samples_.size(); }

  /// True iff the series has no points.
  bool empty() const { return samples_.empty(); }

  /// Samples observed at timestamp i.
  const std::vector<double>& samples(std::size_t i) const {
    assert(i < samples_.size());
    return samples_[i];
  }

  /// Number of samples at timestamp i.
  std::size_t num_samples(std::size_t i) const { return samples(i).size(); }

  /// Per-timestamp sample mean, as a certain series.
  ts::TimeSeries SampleMeans() const;

  /// Minimum bounding interval [min, max] of the samples at timestamp i —
  /// the summarization MUNICH uses for its distance bounds.
  std::pair<double, double> BoundingInterval(std::size_t i) const;

  /// Class label.
  int label() const { return label_; }

  /// Identifier.
  const std::string& id() const { return id_; }

 private:
  std::vector<std::vector<double>> samples_;
  int label_ = ts::TimeSeries::kNoLabel;
  std::string id_;
};

/// \brief A named collection of pdf-modeled uncertain series.
struct UncertainDataset {
  std::string name;
  std::vector<UncertainSeries> series;

  std::size_t size() const { return series.size(); }
  const UncertainSeries& operator[](std::size_t i) const {
    assert(i < series.size());
    return series[i];
  }
};

/// \brief A named collection of sample-modeled uncertain series.
struct MultiSampleDataset {
  std::string name;
  std::vector<MultiSampleSeries> series;

  std::size_t size() const { return series.size(); }
  const MultiSampleSeries& operator[](std::size_t i) const {
    assert(i < series.size());
    return series[i];
  }
};

}  // namespace uts::uncertain

#endif  // UTS_UNCERTAIN_UNCERTAIN_SERIES_HPP_
