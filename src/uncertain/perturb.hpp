/// \file perturb.hpp
/// \brief Turning exact series into uncertain series.
///
/// "Similarly to [5, 29, 23], we used existing time series datasets with
/// exact values as the ground truth, and subsequently introduced uncertainty
/// through perturbation" (Section 4.1.1). Perturbation is fully deterministic
/// given (series index, seed), so experiments are reproducible and every
/// technique sees exactly the same perturbed data.

#ifndef UTS_UNCERTAIN_PERTURB_HPP_
#define UTS_UNCERTAIN_PERTURB_HPP_

#include <cstdint>

#include "ts/dataset.hpp"
#include "uncertain/error_spec.hpp"
#include "uncertain/uncertain_series.hpp"

namespace uts::uncertain {

/// \brief Perturb one exact series into the pdf uncertainty model.
///
/// Each observation is `exact value + one draw from the actual error
/// distribution`; the attached error models are the *reported* ones.
UncertainSeries PerturbSeries(const ts::TimeSeries& exact,
                              const ErrorSpec& spec, std::uint64_t seed);

/// \brief Perturb one exact series into the repeated-observations model used
/// by MUNICH, drawing `samples_per_point` independent observations at every
/// timestamp.
MultiSampleSeries PerturbMultiSample(const ts::TimeSeries& exact,
                                     const ErrorSpec& spec,
                                     std::size_t samples_per_point,
                                     std::uint64_t seed);

/// \brief Perturb a whole dataset (pdf model). Series i uses the derived
/// seed DeriveSeed(seed, i).
UncertainDataset PerturbDataset(const ts::Dataset& exact,
                                const ErrorSpec& spec, std::uint64_t seed);

/// \brief Perturb a whole dataset (repeated-observations model).
MultiSampleDataset PerturbDatasetMultiSample(const ts::Dataset& exact,
                                             const ErrorSpec& spec,
                                             std::size_t samples_per_point,
                                             std::uint64_t seed);

}  // namespace uts::uncertain

#endif  // UTS_UNCERTAIN_PERTURB_HPP_
