#include "uncertain/perturb.hpp"

namespace uts::uncertain {

UncertainSeries PerturbSeries(const ts::TimeSeries& exact,
                              const ErrorSpec& spec, std::uint64_t seed) {
  const std::size_t n = exact.size();
  // Separate streams for assignment and sampling keep observation noise
  // independent of which positions drew the high σ.
  ErrorAssignment assignment = spec.Assign(n, prob::DeriveSeed(seed, 1));
  prob::Rng rng(prob::DeriveSeed(seed, 2));

  std::vector<double> observations(n);
  for (std::size_t i = 0; i < n; ++i) {
    observations[i] = exact[i] + assignment.actual[i]->Sample(rng);
  }
  return UncertainSeries(std::move(observations),
                         std::move(assignment.reported), exact.label(),
                         exact.id());
}

MultiSampleSeries PerturbMultiSample(const ts::TimeSeries& exact,
                                     const ErrorSpec& spec,
                                     std::size_t samples_per_point,
                                     std::uint64_t seed) {
  assert(samples_per_point >= 1);
  const std::size_t n = exact.size();
  ErrorAssignment assignment = spec.Assign(n, prob::DeriveSeed(seed, 1));
  prob::Rng rng(prob::DeriveSeed(seed, 2));

  std::vector<std::vector<double>> samples(n);
  for (std::size_t i = 0; i < n; ++i) {
    samples[i].reserve(samples_per_point);
    for (std::size_t s = 0; s < samples_per_point; ++s) {
      samples[i].push_back(exact[i] + assignment.actual[i]->Sample(rng));
    }
  }
  return MultiSampleSeries(std::move(samples), exact.label(), exact.id());
}

UncertainDataset PerturbDataset(const ts::Dataset& exact,
                                const ErrorSpec& spec, std::uint64_t seed) {
  UncertainDataset out;
  out.name = exact.name();
  out.series.reserve(exact.size());
  for (std::size_t i = 0; i < exact.size(); ++i) {
    out.series.push_back(
        PerturbSeries(exact[i], spec, prob::DeriveSeed(seed, i)));
  }
  return out;
}

MultiSampleDataset PerturbDatasetMultiSample(const ts::Dataset& exact,
                                             const ErrorSpec& spec,
                                             std::size_t samples_per_point,
                                             std::uint64_t seed) {
  MultiSampleDataset out;
  out.name = exact.name();
  out.series.reserve(exact.size());
  for (std::size_t i = 0; i < exact.size(); ++i) {
    out.series.push_back(PerturbMultiSample(exact[i], spec, samples_per_point,
                                            prob::DeriveSeed(seed, i)));
  }
  return out;
}

}  // namespace uts::uncertain
