#include "uncertain/error_spec.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace uts::uncertain {

using prob::ErrorDistributionPtr;
using prob::ErrorKind;

ErrorSpec ErrorSpec::Constant(ErrorKind kind, double sigma) {
  assert(sigma >= 0.0);
  ErrorSpec spec;
  spec.regime_ = ErrorRegime::kConstant;
  spec.kind_ = kind;
  spec.sigma_ = sigma;
  return spec;
}

ErrorSpec ErrorSpec::MixedSigma(ErrorKind kind, double frac_hi,
                                double sigma_hi, double sigma_lo) {
  assert(frac_hi >= 0.0 && frac_hi <= 1.0);
  assert(sigma_hi >= 0.0 && sigma_lo >= 0.0);
  ErrorSpec spec;
  spec.regime_ = ErrorRegime::kMixedSigma;
  spec.kind_ = kind;
  spec.frac_hi_ = frac_hi;
  spec.sigma_hi_ = sigma_hi;
  spec.sigma_lo_ = sigma_lo;
  return spec;
}

ErrorSpec ErrorSpec::MixedKind(double frac_hi, double sigma_hi,
                               double sigma_lo) {
  ErrorSpec spec = MixedSigma(ErrorKind::kNormal, frac_hi, sigma_hi, sigma_lo);
  spec.regime_ = ErrorRegime::kMixedKind;
  return spec;
}

ErrorSpec ErrorSpec::WithMisreported(ErrorKind reported_kind,
                                     double reported_sigma) const {
  ErrorSpec spec = *this;
  spec.misreport_ = true;
  spec.reported_kind_ = reported_kind;
  spec.reported_sigma_ = reported_sigma;
  return spec;
}

ErrorSpec ErrorSpec::WithTailedUniformReporting(double tail_weight) const {
  ErrorSpec spec = *this;
  spec.tailed_uniform_reporting_ = true;
  spec.tail_weight_ = tail_weight;
  return spec;
}

namespace {

/// The three families a mixed-kind point can draw from.
constexpr ErrorKind kMixKinds[] = {ErrorKind::kUniform, ErrorKind::kNormal,
                                   ErrorKind::kExponential};

}  // namespace

ErrorAssignment ErrorSpec::Assign(std::size_t length,
                                  std::uint64_t seed) const {
  prob::Rng rng(seed);
  ErrorAssignment out;
  out.actual.reserve(length);
  out.reported.reserve(length);

  // Choose which positions receive the high σ. Using exact counts (rather
  // than independent coin flips) matches the paper's "20% of the values"
  // phrasing and reduces variance across series.
  std::vector<bool> is_hi(length, false);
  if (regime_ != ErrorRegime::kConstant) {
    const auto num_hi = static_cast<std::size_t>(
        std::llround(frac_hi_ * static_cast<double>(length)));
    std::vector<std::size_t> order(length);
    for (std::size_t i = 0; i < length; ++i) order[i] = i;
    // Fisher–Yates prefix shuffle: the first num_hi entries become high-σ.
    for (std::size_t i = 0; i < std::min(num_hi, length); ++i) {
      const std::size_t j =
          i + static_cast<std::size_t>(rng.UniformInt(length - i));
      std::swap(order[i], order[j]);
      is_hi[order[i]] = true;
    }
  }

  // Cache distributions — most timestamps share one of a few models.
  auto make = [&](ErrorKind kind, double sigma) {
    return prob::MakeError(kind, sigma);
  };
  const ErrorDistributionPtr constant_dist = make(kind_, sigma_);
  const ErrorDistributionPtr hi_dist = make(kind_, sigma_hi_);
  const ErrorDistributionPtr lo_dist = make(kind_, sigma_lo_);
  ErrorDistributionPtr mixed_kind_cache[3][2];
  if (regime_ == ErrorRegime::kMixedKind) {
    for (int k = 0; k < 3; ++k) {
      mixed_kind_cache[k][0] = make(kMixKinds[k], sigma_lo_);
      mixed_kind_cache[k][1] = make(kMixKinds[k], sigma_hi_);
    }
  }
  const ErrorDistributionPtr reported_const =
      misreport_ ? make(reported_kind_, reported_sigma_) : nullptr;

  // Tailed-uniform substitutes, built lazily per σ actually used.
  auto report_of = [&](const ErrorDistributionPtr& actual)
      -> ErrorDistributionPtr {
    if (misreport_) return reported_const;
    if (tailed_uniform_reporting_ &&
        actual->kind() == ErrorKind::kUniform) {
      return prob::MakeTailedUniformError(actual->stddev(), tail_weight_);
    }
    return actual;
  };

  for (std::size_t i = 0; i < length; ++i) {
    ErrorDistributionPtr actual;
    switch (regime_) {
      case ErrorRegime::kConstant:
        actual = constant_dist;
        break;
      case ErrorRegime::kMixedSigma:
        actual = is_hi[i] ? hi_dist : lo_dist;
        break;
      case ErrorRegime::kMixedKind: {
        const auto k = static_cast<int>(rng.UniformInt(3));
        actual = mixed_kind_cache[k][is_hi[i] ? 1 : 0];
        break;
      }
    }
    out.reported.push_back(report_of(actual));
    out.actual.push_back(std::move(actual));
  }
  return out;
}

double ErrorSpec::RepresentativeSigma() const {
  if (misreport_) return reported_sigma_;
  if (regime_ == ErrorRegime::kConstant) return sigma_;
  // RMS combination of the two σ levels, weighted by their fractions; for
  // the paper's 20%@1.0 / 80%@0.4 split this evaluates to ~0.566. The
  // Figure 8 text states PROUD "was using a standard deviation setting of
  // 0.7", which the harness passes explicitly; this value is the neutral
  // default when no override is supplied.
  return std::sqrt(frac_hi_ * sigma_hi_ * sigma_hi_ +
                   (1.0 - frac_hi_) * sigma_lo_ * sigma_lo_);
}

std::string ErrorSpec::Describe() const {
  char buf[160];
  switch (regime_) {
    case ErrorRegime::kConstant:
      std::snprintf(buf, sizeof(buf), "%s(sigma=%.3g)",
                    prob::ErrorKindName(kind_).c_str(), sigma_);
      break;
    case ErrorRegime::kMixedSigma:
      std::snprintf(buf, sizeof(buf), "mixed-sigma %s %.0f%%@%.3g/%.0f%%@%.3g",
                    prob::ErrorKindName(kind_).c_str(), 100.0 * frac_hi_,
                    sigma_hi_, 100.0 * (1.0 - frac_hi_), sigma_lo_);
      break;
    case ErrorRegime::kMixedKind:
      std::snprintf(buf, sizeof(buf),
                    "mixed-kind {uniform,normal,exponential} %.0f%%@%.3g/%.0f%%@%.3g",
                    100.0 * frac_hi_, sigma_hi_, 100.0 * (1.0 - frac_hi_),
                    sigma_lo_);
      break;
  }
  std::string desc = buf;
  if (misreport_) {
    std::snprintf(buf, sizeof(buf), " [reported as %s(sigma=%.3g)]",
                  prob::ErrorKindName(reported_kind_).c_str(), reported_sigma_);
    desc += buf;
  }
  if (tailed_uniform_reporting_) desc += " [tailed-uniform reporting]";
  return desc;
}

}  // namespace uts::uncertain
