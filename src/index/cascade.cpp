#include "index/cascade.hpp"

#include <algorithm>
#include <limits>
#include <utility>

namespace uts::index {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// The engines' legacy (distance, index) total order.
bool NeighborLess(const query::Neighbor& a, const query::Neighbor& b) {
  if (a.distance != b.distance) return a.distance < b.distance;
  return a.index < b.index;
}

}  // namespace

std::vector<query::Neighbor> CascadeKNearest(
    std::span<const double> lower_bounds, std::size_t exclude, std::size_t k,
    const ExactScorer& score, SearchCost* cost) {
  const std::size_t n = lower_bounds.size();
  std::vector<std::pair<double, std::size_t>> order;
  order.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (i == exclude) continue;
    order.emplace_back(lower_bounds[i], i);
  }
  const std::size_t total = order.size();
  if (cost != nullptr) cost->candidates_total += total;
  const std::size_t take = std::min(k, total);
  if (take == 0) {
    if (cost != nullptr) cost->pruned_lower_bound += total;
    return {};
  }
  // Lazy ascending traversal: a min-heap over (bound, index) popped until
  // the stop condition, instead of fully sorting all n bounds — the sort
  // would dominate exactly when pruning works (few pops needed). The pairs
  // are distinct under the strict (bound, index) order, so each pop yields
  // the unique minimum: the pop sequence IS the sorted order.
  std::make_heap(order.begin(), order.end(), std::greater<>{});

  // Max-heap of the best `take` (distance, index) pairs under NeighborLess;
  // the root carries the current k-th distance τ.
  std::vector<query::Neighbor> heap;
  heap.reserve(take);
  std::size_t touched = 0;
  while (!order.empty()) {
    std::pop_heap(order.begin(), order.end(), std::greater<>{});
    const auto [bound, row] = order.back();
    order.pop_back();
    if (heap.size() == take && bound > heap.front().distance) {
      // Bounds ascend: this and every remaining candidate has
      // d >= bound > τ >= τ_final — none can enter the top-k.
      break;
    }
    const double tau = heap.size() == take ? heap.front().distance : kInf;
    ++touched;
    const query::Neighbor candidate{row, score(row, tau)};
    if (heap.size() < take) {
      heap.push_back(candidate);
      std::push_heap(heap.begin(), heap.end(), NeighborLess);
    } else if (NeighborLess(candidate, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), NeighborLess);
      heap.back() = candidate;
      std::push_heap(heap.begin(), heap.end(), NeighborLess);
    }
  }
  if (cost != nullptr) {
    cost->candidates_touched += touched;
    cost->pruned_lower_bound += total - touched;
  }
  std::sort(heap.begin(), heap.end(), NeighborLess);
  return heap;
}

std::vector<std::size_t> CascadeRangeSearch(
    std::span<const double> lower_bounds, std::size_t exclude, double epsilon,
    const ExactScorer& score, SearchCost* cost) {
  const std::size_t n = lower_bounds.size();
  std::vector<std::size_t> matches;
  std::size_t total = 0;
  std::size_t touched = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (i == exclude) continue;
    ++total;
    // Keep the boundary on the scored side: a pruned row has
    // d >= lb > ε, so the full scan's `d <= ε` excludes it too.
    if (lower_bounds[i] > epsilon) continue;
    ++touched;
    if (score(i, epsilon) <= epsilon) matches.push_back(i);
  }
  if (cost != nullptr) {
    cost->candidates_total += total;
    cost->candidates_touched += touched;
    cost->pruned_lower_bound += total - touched;
  }
  return matches;
}

}  // namespace uts::index
