/// \file cascade.hpp
/// \brief The prune-before-score candidate cascade: exact-result k-NN and
/// range search over an admissible lower-bound array plus an exact scorer.
///
/// Exactness argument (k-NN): candidates are visited in ascending
/// (lower bound, index) order while a bounded heap tracks the best k exact
/// (distance, index) pairs seen so far, ordered by the engines' legacy
/// comparator. Let τ be the heap's current k-th distance. When a visited
/// candidate's bound exceeds τ, every remaining candidate c satisfies
/// d(c) >= lb(c) > τ >= τ_final, so none can enter the final top-k under
/// the (distance, index) order — the traversal stops, and the heap equals
/// the top-k of a full scan. Ties are preserved: candidates with
/// lb == τ are still scored, and a scored candidate with d == τ displaces
/// the incumbent exactly when its index is smaller, as in the full scan's
/// partial_sort. Range search is the same argument with a fixed τ = ε and
/// the `<= ε` boundary kept on the scored side.
///
/// The scorer returns distances bitwise identical to the full scan's (the
/// engines score single rows through the same per-row-deterministic
/// dispatch kernels), so the selected set *and* the reported distances
/// match the unindexed path bit for bit.

#ifndef UTS_INDEX_CASCADE_HPP_
#define UTS_INDEX_CASCADE_HPP_

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "index/synopsis_index.hpp"
#include "query/search.hpp"

namespace uts::index {

/// \brief Exact scorer of one candidate row against the implicit query.
///
/// Contract: returns either the exact metric distance of `row` — bitwise
/// identical to the value the unindexed full scan would compute for the
/// same row — or +infinity after *proving* the distance exceeds `tau`
/// (e.g. via the early-abandon kernel with a rounding-inflated threshold).
/// `tau` is the caller's current pruning threshold and may be +infinity,
/// in which case the scorer must return the exact distance.
using ExactScorer = std::function<double(std::size_t row, double tau)>;

/// \brief k nearest candidates by exact distance, ascending (distance,
/// index) — bitwise identical to selecting over a full scan.
///
/// `lower_bounds` has one admissible bound per row (slot `exclude` is
/// ignored; pass exclude >= lower_bounds.size() to exclude nothing).
/// `cost`, when non-null, is incremented (not reset) with this query's
/// accounting.
std::vector<query::Neighbor> CascadeKNearest(
    std::span<const double> lower_bounds, std::size_t exclude, std::size_t k,
    const ExactScorer& score, SearchCost* cost);

/// \brief Indices with exact distance <= epsilon, ascending — bitwise
/// identical to filtering a full scan.
std::vector<std::size_t> CascadeRangeSearch(
    std::span<const double> lower_bounds, std::size_t exclude, double epsilon,
    const ExactScorer& score, SearchCost* cost);

}  // namespace uts::index

#endif  // UTS_INDEX_CASCADE_HPP_
