/// \file synopsis_index.hpp
/// \brief Per-row Haar-synopsis lower bounds and DUST distance-bound maps —
/// the candidate-generation tier of the prune-before-score index cascade.
///
/// The ROADMAP's sublinear-search item: every engine query path used to be
/// an O(n) exact sweep per query. The structures here let a query touch the
/// full values of only a fraction of the rows while preserving results
/// *bitwise* — stage 1 ranks candidates by an admissible lower bound, stage
/// 2 re-scores survivors with the exact dispatch kernels (see cascade.hpp
/// for the driver and the exactness argument).
///
/// Admissibility of the Euclidean bound: the orthonormal Haar transform
/// preserves distances exactly (Parseval), so the distance over any
/// k-coefficient prefix — dropping nonnegative squared terms — lower-bounds
/// the true Euclidean distance. Zero-padding both series to the shared
/// power-of-two length preserves this (the padding contributes identical
/// zeros on both sides). Floating point is the only gap: the transform's
/// rounding error is *absolute*, on the order of eps·||series||₂, so the
/// computed bound could exceed the exact kernel's computed distance for
/// near-identical large-magnitude rows. `EuclideanLowerBounds` therefore
/// subtracts a slack of kFpSlackScale · (||q||₂ + ||c||₂) — orders of
/// magnitude above any accumulated rounding, orders of magnitude below any
/// distance worth pruning — and clamps at zero, making the emitted bound
/// admissible with respect to the *computed* distance of every dispatch
/// level (tests/wavelet_test.cpp pins the property on adversarial inputs).

#ifndef UTS_INDEX_SYNOPSIS_INDEX_HPP_
#define UTS_INDEX_SYNOPSIS_INDEX_HPP_

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

#include "distance/batch.hpp"
#include "ts/soa_store.hpp"

namespace uts::index {

/// \brief Engine knob for the prune-before-score cascade. Default off: the
/// index adds build cost (one Haar transform per row) and only pays for
/// itself on repeated queries against structured data.
struct IndexOptions {
  /// Build the synopsis index at engine construction and route the
  /// index-eligible query paths (Euclidean and DUST k-NN / range) through
  /// the cascade. Results are bitwise identical either way.
  bool enabled = false;

  /// Haar coefficients retained per row (the synopsis prefix). More
  /// coefficients tighten the bound (better pruning) at higher per-row
  /// filter cost; clamped to the padded transform length.
  std::size_t synopsis_coefficients = 16;
};

/// \brief Work accounting of one query (or an accumulated batch of
/// queries). `candidates_touched` counts rows whose full values were read
/// by stage 2 — the cascade's figure of merit; a full scan touches every
/// eligible candidate. Counters are exact and deterministic at every
/// thread count.
struct SearchCost {
  std::size_t candidates_total = 0;    ///< Eligible rows (self excluded).
  std::size_t candidates_touched = 0;  ///< Rows handed to exact scoring.
  std::size_t pruned_lower_bound = 0;  ///< Rejected by the synopsis bound.
  std::size_t abandoned_early = 0;     ///< Touched rows cut short by the
                                       ///< early-abandon kernel.

  /// Fold another cost record into this one (per-query records of a batch).
  void Accumulate(const SearchCost& other) {
    candidates_total += other.candidates_total;
    candidates_touched += other.candidates_touched;
    pruned_lower_bound += other.pruned_lower_bound;
    abandoned_early += other.abandoned_early;
  }
};

/// \brief Immutable per-row synopsis pack over one SoA store snapshot:
/// the first k orthonormal-Haar coefficients of every (zero-padded) row
/// plus the row's L2 norm (for the floating-point slack). Build is O(n·L);
/// a query's bound pass is O(n·k) flops over contiguous memory.
class SynopsisIndex {
 public:
  /// Absolute-error slack scale of the emitted bounds (see file comment):
  /// multiplied by ||q||₂ + ||c||₂ and subtracted from the prefix
  /// distance. ~1e5 times the worst accumulated rounding of the transform
  /// and kernels, yet negligible against any real distance.
  static constexpr double kFpSlackScale = 1e-10;

  SynopsisIndex(const ts::SoaStore& store, std::size_t coefficients);

  std::size_t rows() const { return rows_; }
  std::size_t coefficients() const { return k_; }

  /// A query prepared for bound evaluation: its own synopsis prefix + norm.
  struct QuerySynopsis {
    std::vector<double> coefficients;
    double norm = 0.0;
  };

  /// Synopsize a query of the indexed length (typically a row of the same
  /// store; any equal-length span works).
  QuerySynopsis Synopsize(std::span<const double> query) const;

  /// out[i] = admissible lower bound (metric domain, >= 0) on the computed
  /// Euclidean distance between the query and row i.
  /// Precondition: out.size() == rows().
  void EuclideanLowerBounds(const QuerySynopsis& query,
                            std::span<double> out) const;

 private:
  std::size_t rows_ = 0;
  std::size_t k_ = 0;
  std::vector<double> coefficients_;  ///< rows_ × k_, row-major.
  std::vector<double> norms_;         ///< Per-row L2 norm.
};

/// \brief Monotone minorant of a set of DUST per-point dissimilarity
/// tables: g(|Δ|) = min(slope·|Δ|, cap) with g(δ) <= dust(δ) for every δ
/// and every table it was built from.
///
/// Turns a Euclidean metric lower bound L into a DUST metric lower bound:
/// if Σ_t δ_t² >= L², then Σ_t dust(δ_t)² >= Σ_t g(δ_t)² >= min(slope·L,
/// cap)² — either some δ_t exceeds cap/slope (that term alone contributes
/// cap²), or every term equals slope²·δ_t² and the sum is >= slope²·L².
/// So dust_distance >= min(slope·L, cap). `slope` is the infimum of
/// dust(δ)/δ over the tables — for the piecewise-linear lookup tables the
/// infimum over each segment is attained at a cell endpoint, so scanning
/// cells is exact; the closed form dust(δ) = scale·δ contributes its
/// scale. `cap` is the clamped tail value min_tables dust(delta_max)
/// (+inf for closed-form tables, which are unbounded).
struct DustLowerBoundMap {
  double slope = 0.0;
  double cap = std::numeric_limits<double>::infinity();
  /// False when no table admits a positive bound (slope == 0 and no finite
  /// cap helps) — callers then skip the DUST cascade.
  bool valid = false;

  /// Build from the K×K lut matrix of an engine (all class pairs). Slopes
  /// are deflated by a relative 1e-12 against rounding in the cell scan.
  static DustLowerBoundMap FromLuts(std::span<const distance::DustLut> luts);

  /// Map a Euclidean metric lower bound to a DUST metric lower bound,
  /// deflated by a relative 1e-9 against the DUST kernels' accumulation
  /// rounding; >= 0.
  double operator()(double euclidean_lb) const {
    if (!valid || euclidean_lb <= 0.0) return 0.0;
    const double bound =
        cap < slope * euclidean_lb ? cap : slope * euclidean_lb;
    const double deflated = bound * (1.0 - 1e-9);
    return deflated > 0.0 ? deflated : 0.0;
  }
};

}  // namespace uts::index

#endif  // UTS_INDEX_SYNOPSIS_INDEX_HPP_
