#include "index/synopsis_index.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "ts/store_view.hpp"
#include "wavelet/haar.hpp"

namespace uts::index {

SynopsisIndex::SynopsisIndex(const ts::SoaStore& store,
                             std::size_t coefficients)
    : rows_(store.rows()) {
  const std::size_t stride = store.stride();
  const std::size_t padded =
      wavelet::NextPowerOfTwo(std::max<std::size_t>(stride, 1));
  k_ = std::clamp<std::size_t>(coefficients, 1, padded);
  coefficients_.resize(rows_ * k_);
  norms_.resize(rows_);
  // One pinned block at a time: the synopsis pack itself stays resident
  // (rows_·k_ doubles, tiny next to the data) but the source rows stream
  // through the paging tier like every other consumer.
  const ts::StoreView view(store);
  for (std::size_t b = 0; b < view.num_blocks(); ++b) {
    const auto pin = ts::PinOrAbort(view, b);
    const std::size_t first = pin.first_row();
    for (std::size_t i = 0; i < pin.block().rows(); ++i) {
      const std::size_t r = first + i;
      const std::span<const double> row = pin.block().row(i);
      const std::vector<double> coeffs = wavelet::HaarTransformPadded(row);
      std::copy(coeffs.begin(), coeffs.begin() + static_cast<long>(k_),
                coefficients_.begin() + static_cast<long>(r * k_));
      double sum_sq = 0.0;
      for (double v : row) sum_sq += v * v;
      norms_[r] = std::sqrt(sum_sq);
    }
  }
}

SynopsisIndex::QuerySynopsis SynopsisIndex::Synopsize(
    std::span<const double> query) const {
  QuerySynopsis synopsis;
  std::vector<double> coeffs = wavelet::HaarTransformPadded(query);
  assert(coeffs.size() >= k_);
  coeffs.resize(k_);
  synopsis.coefficients = std::move(coeffs);
  double sum_sq = 0.0;
  for (double v : query) sum_sq += v * v;
  synopsis.norm = std::sqrt(sum_sq);
  return synopsis;
}

void SynopsisIndex::EuclideanLowerBounds(const QuerySynopsis& query,
                                         std::span<double> out) const {
  assert(query.coefficients.size() == k_);
  assert(out.size() == rows_);
  const double* qc = query.coefficients.data();
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* rc = coefficients_.data() + r * k_;
    double sum = 0.0;
    for (std::size_t j = 0; j < k_; ++j) {
      const double d = qc[j] - rc[j];
      sum += d * d;
    }
    const double slack = kFpSlackScale * (query.norm + norms_[r]);
    const double bound = std::sqrt(sum) - slack;
    out[r] = bound > 0.0 ? bound : 0.0;
  }
}

DustLowerBoundMap DustLowerBoundMap::FromLuts(
    std::span<const distance::DustLut> luts) {
  DustLowerBoundMap map;
  if (luts.empty()) return map;
  double slope = std::numeric_limits<double>::infinity();
  double cap = std::numeric_limits<double>::infinity();
  for (const distance::DustLut& lut : luts) {
    if (lut.values == nullptr) {
      // Closed form dust(Δ) = scale·Δ: exact slope, unbounded tail.
      slope = std::min(slope, lut.scale);
      continue;
    }
    if (lut.size == 0 || lut.step <= 0.0) return map;  // not usable
    // Piecewise-linear table: dust(δ)/δ over a linear segment attains its
    // minimum at a segment endpoint, so the cell scan is exact. Cell 0 sits
    // at δ = 0 and does not constrain the slope (g(0) = 0 <= dust(0)).
    double table_slope = std::numeric_limits<double>::infinity();
    for (std::size_t i = 1; i < lut.size; ++i) {
      const double x = static_cast<double>(i) * lut.step;
      table_slope = std::min(table_slope, lut.values[i] / x);
    }
    if (lut.size == 1) table_slope = 0.0;  // single cell: flat clamp only
    slope = std::min(slope, table_slope);
    // Beyond delta_max the table clamps to its last cell.
    cap = std::min(cap, lut.values[lut.size - 1]);
  }
  if (!std::isfinite(slope) || slope < 0.0) return map;
  map.slope = slope * (1.0 - 1e-12);  // deflate against cell-scan rounding
  map.cap = cap;
  // With slope == 0 the minorant min(slope·L, cap) is identically 0 — a
  // finite cap alone cannot rescue it.
  map.valid = map.slope > 0.0;
  return map;
}

}  // namespace uts::index
