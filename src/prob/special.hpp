/// \file special.hpp
/// \brief Special functions backing the statistical machinery.
///
/// The paper's techniques need the standard normal cdf and its inverse
/// (PROUD's ε_limit lookup, Eq. 8), and the regularized incomplete gamma
/// function (chi-square p-values for the Section 4.1.1 uniformity test).
/// Everything here is deterministic, allocation-free, and accurate to at
/// least 1e-10 over the tested domains.

#ifndef UTS_PROB_SPECIAL_HPP_
#define UTS_PROB_SPECIAL_HPP_

namespace uts::prob {

/// \brief Standard normal probability density φ(x).
double NormalPdf(double x);

/// \brief Normal density with mean mu and standard deviation sigma > 0.
double NormalPdf(double x, double mu, double sigma);

/// \brief Standard normal cumulative distribution Φ(x).
double NormalCdf(double x);

/// \brief Normal cdf with mean mu and standard deviation sigma > 0.
double NormalCdf(double x, double mu, double sigma);

/// \brief Inverse of the standard normal cdf: Φ⁻¹(p) for p in (0, 1).
///
/// Acklam's rational approximation refined with one Halley step; absolute
/// error below 1e-12 across (1e-300, 1 - 1e-16). Returns ±infinity at the
/// boundary values 0 and 1.
double NormalQuantile(double p);

/// \brief Natural log of the gamma function (Lanczos approximation), x > 0.
double LogGamma(double x);

/// \brief Regularized lower incomplete gamma P(a, x) = γ(a, x) / Γ(a).
///
/// a > 0, x >= 0. Series expansion for x < a + 1, continued fraction
/// otherwise (Numerical Recipes style with modern convergence bounds).
double RegularizedGammaP(double a, double x);

/// \brief Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double RegularizedGammaQ(double a, double x);

/// \brief Chi-square cdf with k degrees of freedom, x >= 0.
double ChiSquareCdf(double x, double k);

/// \brief Upper-tail chi-square probability Pr(X >= x) for k dof.
double ChiSquareSurvival(double x, double k);

/// \brief Error function erf(x) — thin wrapper over std::erf for symmetry
/// with the rest of this header.
double Erf(double x);

/// \brief Complementary error function erfc(x).
double Erfc(double x);

}  // namespace uts::prob

#endif  // UTS_PROB_SPECIAL_HPP_
