#include "prob/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "prob/special.hpp"

namespace uts::prob {

void RunningStats::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::VariancePopulation() const {
  if (count_ < 1) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::VarianceSample() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::StdDevPopulation() const {
  return std::sqrt(VariancePopulation());
}

double RunningStats::StdDevSample() const {
  return std::sqrt(VarianceSample());
}

double RunningStats::StandardError() const {
  if (count_ < 2) return 0.0;
  return StdDevSample() / std::sqrt(static_cast<double>(count_));
}

ConfidenceInterval MeanConfidenceInterval(std::span<const double> values,
                                          double level) {
  assert(level > 0.0 && level < 1.0);
  RunningStats stats;
  for (double v : values) stats.Add(v);
  ConfidenceInterval ci;
  ci.mean = stats.Mean();
  ci.level = level;
  if (stats.count() >= 2) {
    const double z = NormalQuantile(0.5 + 0.5 * level);
    ci.half_width = z * stats.StandardError();
  }
  return ci;
}

Result<ChiSquareResult> ChiSquareTest(std::span<const std::size_t> observed,
                                      std::span<const double> expected_p) {
  if (observed.size() != expected_p.size()) {
    return Status::InvalidArgument(
        "observed and expected bin vectors differ in length");
  }
  if (observed.size() < 2) {
    return Status::InvalidArgument("chi-square test needs at least 2 bins");
  }
  std::size_t n = 0;
  for (std::size_t c : observed) n += c;
  if (n == 0) return Status::InvalidArgument("no observations");
  double p_total = 0.0;
  for (double p : expected_p) {
    if (p < 0.0) return Status::InvalidArgument("negative expected probability");
    p_total += p;
  }
  if (std::fabs(p_total - 1.0) > 1e-6) {
    return Status::InvalidArgument("expected probabilities must sum to 1");
  }

  double statistic = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    const double expected = expected_p[i] * static_cast<double>(n);
    if (expected <= 0.0) {
      if (observed[i] > 0) {
        return Status::NumericError(
            "observed count in a zero-probability bin");
      }
      continue;
    }
    const double diff = static_cast<double>(observed[i]) - expected;
    statistic += diff * diff / expected;
  }

  ChiSquareResult result;
  result.statistic = statistic;
  result.dof = static_cast<double>(observed.size() - 1);
  result.p_value = ChiSquareSurvival(statistic, result.dof);
  result.bins = observed.size();
  result.samples = n;
  return result;
}

Result<ChiSquareResult> ChiSquareUniformityTest(std::span<const double> values,
                                                std::size_t bins) {
  if (values.size() < 10) {
    return Status::InvalidArgument(
        "chi-square uniformity test needs at least 10 observations");
  }
  const auto [min_it, max_it] = std::minmax_element(values.begin(), values.end());
  const double lo = *min_it;
  const double hi = *max_it;
  if (!(hi > lo)) {
    return Status::InvalidArgument("all observations identical");
  }

  if (bins == 0) {
    // ceil(sqrt(n)), capped so that the expected count per bin stays >= 5.
    const auto n = static_cast<double>(values.size());
    bins = static_cast<std::size_t>(std::ceil(std::sqrt(n)));
    const auto max_bins = static_cast<std::size_t>(n / 5.0);
    bins = std::clamp<std::size_t>(bins, 2, std::max<std::size_t>(2, max_bins));
  }

  std::vector<std::size_t> counts(bins, 0);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (double v : values) {
    auto idx = static_cast<std::size_t>((v - lo) / width);
    if (idx >= bins) idx = bins - 1;  // v == hi lands in the last bin.
    ++counts[idx];
  }
  std::vector<double> expected_p(bins, 1.0 / static_cast<double>(bins));
  return ChiSquareTest(counts, expected_p);
}

Result<double> PearsonCorrelation(std::span<const double> x,
                                  std::span<const double> y) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("correlation inputs differ in length");
  }
  if (x.size() < 2) {
    return Status::InvalidArgument("correlation needs at least 2 points");
  }
  RunningStats sx, sy;
  for (double v : x) sx.Add(v);
  for (double v : y) sy.Add(v);
  const double mx = sx.Mean();
  const double my = sy.Mean();
  double cov = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    cov += (x[i] - mx) * (y[i] - my);
  }
  const double denom = std::sqrt(sx.VariancePopulation() *
                                 sy.VariancePopulation()) *
                       static_cast<double>(x.size());
  if (denom == 0.0) {
    return Status::NumericError("zero variance input to correlation");
  }
  return cov / denom;
}

Result<double> Autocorrelation(std::span<const double> x, std::size_t lag) {
  if (lag == 0) return Status::InvalidArgument("lag must be >= 1");
  if (x.size() <= lag + 1) {
    return Status::InvalidArgument("sequence too short for requested lag");
  }
  return PearsonCorrelation(x.subspan(0, x.size() - lag), x.subspan(lag));
}

}  // namespace uts::prob
