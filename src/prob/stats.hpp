/// \file stats.hpp
/// \brief Descriptive statistics, confidence intervals, and the chi-square
/// goodness-of-fit test used in Section 4.1.1 of the paper.

#ifndef UTS_PROB_STATS_HPP_
#define UTS_PROB_STATS_HPP_

#include <cstddef>
#include <span>
#include <vector>

#include "common/result.hpp"
#include "common/status.hpp"

namespace uts::prob {

/// \brief Streaming mean/variance accumulator (Welford's algorithm).
///
/// Numerically stable for long streams; used by normalization, dataset
/// characterization, and experiment aggregation.
class RunningStats {
 public:
  /// Feed one observation.
  void Add(double x);

  /// Merge another accumulator (parallel-combine, Chan et al.).
  void Merge(const RunningStats& other);

  /// Number of observations so far.
  std::size_t count() const { return count_; }

  /// Sample mean (0 when empty).
  double Mean() const { return count_ == 0 ? 0.0 : mean_; }

  /// Population variance (divide by n); 0 when fewer than 1 observation.
  double VariancePopulation() const;

  /// Sample variance (divide by n-1); 0 when fewer than 2 observations.
  double VarianceSample() const;

  /// Population standard deviation.
  double StdDevPopulation() const;

  /// Sample standard deviation.
  double StdDevSample() const;

  /// Standard error of the mean, s / sqrt(n).
  double StandardError() const;

  /// Smallest observation seen (+inf when empty).
  double Min() const { return min_; }

  /// Largest observation seen (-inf when empty).
  double Max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 1e308 * 10;   // +inf without <limits> in the header.
  double max_ = -1e308 * 10;  // -inf.
};

/// \brief A symmetric confidence interval around a mean.
struct ConfidenceInterval {
  double mean = 0.0;       ///< Point estimate.
  double half_width = 0.0; ///< Interval is [mean - half_width, mean + half_width].
  double level = 0.95;     ///< Confidence level used.

  double lo() const { return mean - half_width; }
  double hi() const { return mean + half_width; }
};

/// \brief Normal-approximation confidence interval for the mean of `values`.
///
/// The paper reports "the averages of all these results, as well as the 95%
/// confidence intervals" (Section 4.1.2); this reproduces that aggregation.
/// For n < 2 the half-width is zero.
ConfidenceInterval MeanConfidenceInterval(std::span<const double> values,
                                          double level = 0.95);

/// \brief Result of a chi-square goodness-of-fit test.
struct ChiSquareResult {
  double statistic = 0.0;     ///< Sum of (observed-expected)²/expected.
  double dof = 0.0;           ///< Degrees of freedom (bins - 1).
  double p_value = 1.0;       ///< Upper-tail probability.
  std::size_t bins = 0;       ///< Number of bins actually used.
  std::size_t samples = 0;    ///< Number of observations tested.

  /// True iff the null hypothesis is rejected at significance `alpha`.
  bool RejectAt(double alpha) const { return p_value < alpha; }
};

/// \brief Chi-square test of the hypothesis that `values` are uniformly
/// distributed over [min(values), max(values)].
///
/// Reproduces the Section 4.1.1 check: "According to the Chi-square test, the
/// hypothesis that the datasets follow the uniform distribution was rejected
/// (for all datasets) with confidence level α = 0.01."
///
/// \param values observations (at least 5 per bin are recommended)
/// \param bins   number of equal-width bins; 0 picks ceil(sqrt(n)) capped to
///               keep expected counts >= 5
Result<ChiSquareResult> ChiSquareUniformityTest(std::span<const double> values,
                                                std::size_t bins = 0);

/// \brief Chi-square test against arbitrary expected bin probabilities.
///
/// \param observed   per-bin observed counts
/// \param expected_p per-bin expected probabilities (must sum to ~1)
Result<ChiSquareResult> ChiSquareTest(std::span<const std::size_t> observed,
                                      std::span<const double> expected_p);

/// \brief Sample Pearson correlation of two equal-length vectors.
///
/// Used to quantify the temporal correlation of neighboring points — the
/// property the paper identifies as the key to UMA/UEMA's advantage.
Result<double> PearsonCorrelation(std::span<const double> x,
                                  std::span<const double> y);

/// \brief Lag-k autocorrelation of a sequence (k >= 1).
Result<double> Autocorrelation(std::span<const double> x, std::size_t lag);

}  // namespace uts::prob

#endif  // UTS_PROB_STATS_HPP_
