#include "prob/distribution.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <limits>
#include <utility>

#include "prob/special.hpp"

namespace uts::prob {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::string FormatKey(const char* name, double sigma) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s(%.9g)", name, sigma);
  return buf;
}

/// Always-zero error; σ = 0.
class NoError final : public ErrorDistribution {
 public:
  ErrorKind kind() const override { return ErrorKind::kNone; }
  double stddev() const override { return 0.0; }
  double Pdf(double x) const override { return x == 0.0 ? kInf : 0.0; }
  double Cdf(double x) const override { return x >= 0.0 ? 1.0 : 0.0; }
  double Sample(Rng&) const override { return 0.0; }
  double CentralMoment(int k) const override {
    assert(k >= 1 && k <= 4);
    (void)k;
    return 0.0;
  }
  double SupportLo() const override { return 0.0; }
  double SupportHi() const override { return 0.0; }
  std::string Key() const override { return "none(0)"; }
};

class NormalError final : public ErrorDistribution {
 public:
  explicit NormalError(double sigma) : sigma_(sigma) { assert(sigma > 0.0); }

  ErrorKind kind() const override { return ErrorKind::kNormal; }
  double stddev() const override { return sigma_; }
  double Pdf(double x) const override { return NormalPdf(x, 0.0, sigma_); }
  double Cdf(double x) const override { return NormalCdf(x, 0.0, sigma_); }
  double Sample(Rng& rng) const override { return rng.Gaussian(0.0, sigma_); }
  double CentralMoment(int k) const override {
    assert(k >= 1 && k <= 4);
    switch (k) {
      case 1: return 0.0;
      case 2: return sigma_ * sigma_;
      case 3: return 0.0;
      default: return 3.0 * sigma_ * sigma_ * sigma_ * sigma_;
    }
  }
  double SupportLo() const override { return -kInf; }
  double SupportHi() const override { return kInf; }
  std::string Key() const override { return FormatKey("normal", sigma_); }

 private:
  double sigma_;
};

class UniformError final : public ErrorDistribution {
 public:
  explicit UniformError(double sigma)
      : sigma_(sigma), half_width_(sigma * std::sqrt(3.0)) {
    assert(sigma > 0.0);
  }

  ErrorKind kind() const override { return ErrorKind::kUniform; }
  double stddev() const override { return sigma_; }
  double Pdf(double x) const override {
    return std::fabs(x) <= half_width_ ? 0.5 / half_width_ : 0.0;
  }
  double Cdf(double x) const override {
    if (x <= -half_width_) return 0.0;
    if (x >= half_width_) return 1.0;
    return (x + half_width_) / (2.0 * half_width_);
  }
  double Sample(Rng& rng) const override {
    return rng.Uniform(-half_width_, half_width_);
  }
  double CentralMoment(int k) const override {
    assert(k >= 1 && k <= 4);
    const double a2 = half_width_ * half_width_;
    switch (k) {
      case 1: return 0.0;
      case 2: return a2 / 3.0;  // == σ².
      case 3: return 0.0;
      default: return a2 * a2 / 5.0;  // == 1.8 σ⁴.
    }
  }
  double SupportLo() const override { return -half_width_; }
  double SupportHi() const override { return half_width_; }
  std::vector<double> Breakpoints() const override {
    return {-half_width_, half_width_};
  }
  std::string Key() const override { return FormatKey("uniform", sigma_); }

 private:
  double sigma_;
  double half_width_;
};

/// Exp(rate 1/σ) shifted left by σ: mean 0, stddev σ, support [-σ, ∞).
class ExponentialError final : public ErrorDistribution {
 public:
  explicit ExponentialError(double sigma) : sigma_(sigma) {
    assert(sigma > 0.0);
  }

  ErrorKind kind() const override { return ErrorKind::kExponential; }
  double stddev() const override { return sigma_; }
  double Pdf(double x) const override {
    if (x < -sigma_) return 0.0;
    return std::exp(-(x + sigma_) / sigma_) / sigma_;
  }
  double Cdf(double x) const override {
    if (x < -sigma_) return 0.0;
    return 1.0 - std::exp(-(x + sigma_) / sigma_);
  }
  double Sample(Rng& rng) const override {
    return sigma_ * (rng.Exponential() - 1.0);
  }
  double CentralMoment(int k) const override {
    assert(k >= 1 && k <= 4);
    const double s2 = sigma_ * sigma_;
    switch (k) {
      case 1: return 0.0;
      case 2: return s2;
      case 3: return 2.0 * s2 * sigma_;   // skewness 2.
      default: return 9.0 * s2 * s2;      // kurtosis 9.
    }
  }
  double SupportLo() const override { return -sigma_; }
  double SupportHi() const override { return kInf; }
  std::vector<double> Breakpoints() const override { return {-sigma_}; }
  std::string Key() const override { return FormatKey("exponential", sigma_); }

 private:
  double sigma_;
};

class MixtureError final : public ErrorDistribution {
 public:
  MixtureError(std::vector<ErrorDistributionPtr> components,
               std::vector<double> weights, ErrorKind reported_kind)
      : components_(std::move(components)),
        weights_(std::move(weights)),
        kind_(reported_kind) {
    assert(!components_.empty());
    assert(components_.size() == weights_.size());
    double total = 0.0;
    for (double w : weights_) {
      assert(w > 0.0);
      total += w;
    }
    for (double& w : weights_) w /= total;
    cumulative_.reserve(weights_.size());
    double acc = 0.0;
    for (double w : weights_) {
      acc += w;
      cumulative_.push_back(acc);
    }
    cumulative_.back() = 1.0;  // guard against rounding.
    stddev_ = std::sqrt(CentralMoment(2));
  }

  ErrorKind kind() const override { return kind_; }
  double stddev() const override { return stddev_; }
  double Pdf(double x) const override {
    double p = 0.0;
    for (std::size_t i = 0; i < components_.size(); ++i)
      p += weights_[i] * components_[i]->Pdf(x);
    return p;
  }
  double Cdf(double x) const override {
    double p = 0.0;
    for (std::size_t i = 0; i < components_.size(); ++i)
      p += weights_[i] * components_[i]->Cdf(x);
    return p;
  }
  double Sample(Rng& rng) const override {
    const double u = rng.Uniform01();
    for (std::size_t i = 0; i < components_.size(); ++i)
      if (u < cumulative_[i]) return components_[i]->Sample(rng);
    return components_.back()->Sample(rng);
  }
  double CentralMoment(int k) const override {
    // All components are zero-mean, so mixture central moments are the
    // weighted component moments.
    double m = 0.0;
    for (std::size_t i = 0; i < components_.size(); ++i)
      m += weights_[i] * components_[i]->CentralMoment(k);
    return m;
  }
  double SupportLo() const override {
    double lo = kInf;
    for (const auto& c : components_) lo = std::min(lo, c->SupportLo());
    return lo;
  }
  double SupportHi() const override {
    double hi = -kInf;
    for (const auto& c : components_) hi = std::max(hi, c->SupportHi());
    return hi;
  }
  std::vector<double> Breakpoints() const override {
    std::vector<double> points;
    for (const auto& c : components_) {
      const auto sub = c->Breakpoints();
      points.insert(points.end(), sub.begin(), sub.end());
    }
    std::sort(points.begin(), points.end());
    points.erase(std::unique(points.begin(), points.end()), points.end());
    return points;
  }
  std::string Key() const override {
    std::string key = "mixture[";
    for (std::size_t i = 0; i < components_.size(); ++i) {
      if (i > 0) key += ',';
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%.6g*", weights_[i]);
      key += buf;
      key += components_[i]->Key();
    }
    key += ']';
    return key;
  }

 private:
  std::vector<ErrorDistributionPtr> components_;
  std::vector<double> weights_;
  std::vector<double> cumulative_;
  ErrorKind kind_;
  double stddev_;
};

}  // namespace

std::string ErrorKindName(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kNone: return "none";
    case ErrorKind::kNormal: return "normal";
    case ErrorKind::kUniform: return "uniform";
    case ErrorKind::kExponential: return "exponential";
    case ErrorKind::kTailedUniform: return "tailed_uniform";
    case ErrorKind::kMixture: return "mixture";
  }
  return "unknown";
}

ErrorDistributionPtr MakeNoError() { return std::make_shared<NoError>(); }

ErrorDistributionPtr MakeNormalError(double sigma) {
  assert(sigma >= 0.0);
  if (sigma == 0.0) return MakeNoError();
  return std::make_shared<NormalError>(sigma);
}

ErrorDistributionPtr MakeUniformError(double sigma) {
  assert(sigma >= 0.0);
  if (sigma == 0.0) return MakeNoError();
  return std::make_shared<UniformError>(sigma);
}

ErrorDistributionPtr MakeExponentialError(double sigma) {
  assert(sigma >= 0.0);
  if (sigma == 0.0) return MakeNoError();
  return std::make_shared<ExponentialError>(sigma);
}

ErrorDistributionPtr MakeTailedUniformError(double sigma, double tail_weight) {
  assert(sigma > 0.0);
  assert(tail_weight > 0.0 && tail_weight <= 0.2);
  // Tail component: wide Gaussian at 2σ. Pick the uniform component's σ_u so
  // the mixture variance is exactly σ²:
  //   (1-w) σ_u² + w (2σ)² = σ²  =>  σ_u² = σ² (1 - 4w) / (1 - w).
  const double w = tail_weight;
  const double su2 = sigma * sigma * (1.0 - 4.0 * w) / (1.0 - w);
  assert(su2 > 0.0 && "tail_weight too large to preserve the variance");
  auto uniform = MakeUniformError(std::sqrt(su2));
  auto tail = MakeNormalError(2.0 * sigma);
  return std::make_shared<MixtureError>(
      std::vector<ErrorDistributionPtr>{std::move(uniform), std::move(tail)},
      std::vector<double>{1.0 - w, w}, ErrorKind::kTailedUniform);
}

ErrorDistributionPtr MakeMixtureError(
    std::vector<ErrorDistributionPtr> components,
    std::vector<double> weights) {
  return std::make_shared<MixtureError>(std::move(components),
                                        std::move(weights),
                                        ErrorKind::kMixture);
}

ErrorDistributionPtr MakeError(ErrorKind kind, double sigma) {
  switch (kind) {
    case ErrorKind::kNone: return MakeNoError();
    case ErrorKind::kNormal: return MakeNormalError(sigma);
    case ErrorKind::kUniform: return MakeUniformError(sigma);
    case ErrorKind::kExponential: return MakeExponentialError(sigma);
    case ErrorKind::kTailedUniform: return MakeTailedUniformError(sigma);
    case ErrorKind::kMixture:
      assert(false && "use MakeMixtureError for mixtures");
      return MakeNoError();
  }
  return MakeNoError();
}

}  // namespace uts::prob
