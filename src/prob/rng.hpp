/// \file rng.hpp
/// \brief Deterministic pseudo-random number generation.
///
/// Every stochastic component of the library draws from an explicitly seeded
/// `Rng`, making all experiments reproducible bit-for-bit. The generator is
/// xoshiro256++ (Blackman & Vigna), seeded through SplitMix64 so that nearby
/// integer seeds produce uncorrelated streams.

#ifndef UTS_PROB_RNG_HPP_
#define UTS_PROB_RNG_HPP_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>

namespace uts::prob {

/// \brief SplitMix64 step; used for seeding and cheap hashing of seeds.
inline std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// \brief Derive a child seed from a parent seed and a stream index.
///
/// Used to give independent deterministic streams to e.g. each time series in
/// a dataset, or each query of an experiment, without sharing generator state.
inline std::uint64_t DeriveSeed(std::uint64_t parent, std::uint64_t stream) {
  std::uint64_t s = parent ^ (0x9e3779b97f4a7c15ULL + stream * 0xd1342543de82ef95ULL);
  (void)SplitMix64(s);
  return SplitMix64(s);
}

/// \brief Counter-based Monte Carlo stream seed of the (query, candidate)
/// pair (qi, ci) in a collection of n series.
///
/// A pure function of the pair counter qi·n + ci, so sequential loops and
/// parallel sweeps (query::UncertainEngine) draw identical streams in any
/// evaluation order. The single definition shared by the engine and the
/// evaluation matchers — the two may never diverge.
inline std::uint64_t PairStreamSeed(std::uint64_t base, std::uint64_t qi,
                                    std::uint64_t ci, std::uint64_t n) {
  return DeriveSeed(base, qi * n + ci + 0x9a1);
}

/// \brief xoshiro256++ generator with convenience samplers.
///
/// Satisfies the `UniformRandomBitGenerator` concept, so it can also feed
/// `<random>` distributions if ever needed; the built-in samplers below are
/// what the library uses (they are deterministic across standard libraries,
/// unlike `std::normal_distribution`).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator; two `Rng`s with equal seeds produce equal streams.
  explicit Rng(std::uint64_t seed = 0xdefa017u) { Seed(seed); }

  /// Re-seed in place.
  void Seed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(sm);
    has_cached_gaussian_ = false;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Next raw 64-bit word.
  std::uint64_t operator()() { return Next(); }

  /// Next raw 64-bit word (xoshiro256++ step).
  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 random mantissa bits.
  double Uniform01() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    assert(lo <= hi);
    return lo + (hi - lo) * Uniform01();
  }

  /// Uniform integer in [0, n); precondition n > 0. Uses Lemire rejection to
  /// avoid modulo bias.
  std::uint64_t UniformInt(std::uint64_t n) {
    assert(n > 0);
    std::uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = -n % n;
      while (lo < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal deviate (Marsaglia polar method, cached pair).
  double Gaussian() {
    if (has_cached_gaussian_) {
      has_cached_gaussian_ = false;
      return cached_gaussian_;
    }
    double u, v, s;
    do {
      u = Uniform(-1.0, 1.0);
      v = Uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    cached_gaussian_ = v * factor;
    has_cached_gaussian_ = true;
    return u * factor;
  }

  /// Normal deviate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    assert(stddev >= 0.0);
    return mean + stddev * Gaussian();
  }

  /// Standard exponential deviate (rate 1, mean 1).
  double Exponential() {
    // 1 - Uniform01() is in (0, 1]; the log is finite.
    return -std::log(1.0 - Uniform01());
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return Uniform01() < p; }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace uts::prob

#endif  // UTS_PROB_RNG_HPP_
