/// \file distribution.hpp
/// \brief Zero-mean error distributions used to model measurement uncertainty.
///
/// The paper perturbs exact time series with additive errors drawn from
/// uniform, normal and exponential distributions "with zero mean and varying
/// standard deviation within [0.2, 2.0]" (Section 4.1.1). Each distribution
/// here is parameterized directly by its standard deviation so the three
/// families are directly comparable, and exposes exactly the quantities the
/// techniques need:
///
///  * `Sample`       — perturbation (all techniques),
///  * `Pdf` / `Cdf`  — DUST's φ integration,
///  * `CentralMoment`— PROUD's exact propagation of E[D²], Var[D²],
///  * support bounds — integration limits and table sizing.

#ifndef UTS_PROB_DISTRIBUTION_HPP_
#define UTS_PROB_DISTRIBUTION_HPP_

#include <memory>
#include <string>
#include <vector>

#include "prob/rng.hpp"

namespace uts::prob {

/// \brief Families of error distributions evaluated in the paper.
enum class ErrorKind {
  kNone,          ///< Degenerate: no error (σ = 0).
  kNormal,        ///< N(0, σ²).
  kUniform,       ///< U[-a, a] with a = σ√3.
  kExponential,   ///< Exp(1/σ) − σ: zero-mean, right-skewed, support [-σ, ∞).
  kTailedUniform, ///< Uniform with light normal tails (DUST's log(0) fix).
  kMixture,       ///< Weighted mixture of other error distributions.
};

/// \brief Name of an error kind ("normal", "uniform", ...).
std::string ErrorKindName(ErrorKind kind);

/// \brief A zero-mean distribution of additive measurement error.
///
/// Implementations are immutable and cheap to share; pass them around as
/// `ErrorDistributionPtr`. Equality of behaviour is keyed by `Key()`, which
/// DUST uses to share lookup tables across timestamps with identical error.
class ErrorDistribution {
 public:
  virtual ~ErrorDistribution() = default;

  /// Which family this distribution belongs to.
  virtual ErrorKind kind() const = 0;

  /// Standard deviation σ (the single user-facing parameter).
  virtual double stddev() const = 0;

  /// Probability density at x.
  virtual double Pdf(double x) const = 0;

  /// Cumulative distribution Pr(E <= x).
  virtual double Cdf(double x) const = 0;

  /// Draw one error value.
  virtual double Sample(Rng& rng) const = 0;

  /// k-th central moment, k in {1,..,4}; the mean is zero so these equal the
  /// raw moments. Needed by PROUD's variance propagation.
  virtual double CentralMoment(int k) const = 0;

  /// Lower edge of the support (may be -infinity).
  virtual double SupportLo() const = 0;

  /// Upper edge of the support (may be +infinity).
  virtual double SupportHi() const = 0;

  /// Points where the density is discontinuous or kinked (finite support
  /// edges, mixture component edges). Numerical integrators split their
  /// domain here to retain full-order accuracy on piecewise densities.
  virtual std::vector<double> Breakpoints() const { return {}; }

  /// Stable identity string, e.g. "normal(1.000000)"; equal keys imply
  /// identical distributions.
  virtual std::string Key() const = 0;
};

using ErrorDistributionPtr = std::shared_ptr<const ErrorDistribution>;

/// \brief Degenerate error: always zero. Useful as a ground-truth control.
ErrorDistributionPtr MakeNoError();

/// \brief Gaussian error N(0, σ²); σ >= 0 (σ = 0 degrades to no error).
ErrorDistributionPtr MakeNormalError(double sigma);

/// \brief Uniform error on [-σ√3, σ√3] (zero mean, standard deviation σ).
ErrorDistributionPtr MakeUniformError(double sigma);

/// \brief Zero-mean exponential error: E ~ Exp(rate 1/σ) shifted by -σ.
///
/// Right-skewed with support [-σ, ∞); matches the paper's "exponential error
/// distribution with zero mean" reading, and exercises the techniques on an
/// asymmetric error.
ErrorDistributionPtr MakeExponentialError(double sigma);

/// \brief Uniform error with light Gaussian tails.
///
/// The paper reports that DUST degenerates under pure uniform error because
/// φ(|x-y|) can be exactly zero ("we tried to solve this technical problem by
/// adding two tails to the uniform error", Section 4.2.1). This factory
/// builds that workaround: a mixture (1-w)·U + w·N with the uniform width
/// chosen so the overall standard deviation is exactly σ.
///
/// \param sigma       overall standard deviation (> 0)
/// \param tail_weight mixture weight w of the Gaussian tail, in (0, 0.2]
ErrorDistributionPtr MakeTailedUniformError(double sigma,
                                            double tail_weight = 0.01);

/// \brief Weighted mixture of zero-mean error distributions.
///
/// Weights must be positive; they are normalized internally.
ErrorDistributionPtr MakeMixtureError(
    std::vector<ErrorDistributionPtr> components, std::vector<double> weights);

/// \brief Convenience factory by kind, for the three families the paper
/// sweeps (normal / uniform / exponential) plus the tailed-uniform fix.
ErrorDistributionPtr MakeError(ErrorKind kind, double sigma);

}  // namespace uts::prob

#endif  // UTS_PROB_DISTRIBUTION_HPP_
