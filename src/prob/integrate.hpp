/// \file integrate.hpp
/// \brief One-dimensional numerical integration.
///
/// DUST's φ function (Section 2.3) is a cross-correlation integral of two
/// posterior densities; except for the Gaussian case it has no closed form
/// and is evaluated numerically when the lookup tables are built.

#ifndef UTS_PROB_INTEGRATE_HPP_
#define UTS_PROB_INTEGRATE_HPP_

#include <functional>

#include "common/result.hpp"

namespace uts::prob {

/// \brief Options for adaptive integration.
struct IntegrateOptions {
  double abs_tolerance = 1e-10;  ///< Target absolute error.
  double rel_tolerance = 1e-9;   ///< Target relative error.
  int max_depth = 48;            ///< Recursion limit for adaptive Simpson.
};

/// \brief Adaptive Simpson quadrature of f over [a, b].
///
/// Handles integrands with localized features (the uniform-error posteriors
/// are piecewise constant). Jump discontinuities are tolerated: a
/// subinterval that still disagrees at the recursion limit spans at most
/// (b-a)/2^max_depth, so its error contribution is below machine noise and
/// the estimate is accepted. Caveat: like every sampling rule, features
/// entirely between the initial sample points of a *much* wider interval
/// can be missed — integrate over support-aware bounds (as the DUST φ
/// builder does) rather than arbitrarily wide ones.
///
/// Fails only on invalid bounds (b < a).
Result<double> IntegrateAdaptiveSimpson(
    const std::function<double(double)>& f, double a, double b,
    const IntegrateOptions& options = {});

/// \brief Composite Simpson rule with n (even, >= 2) subdivisions.
///
/// Deterministic cost version used for table construction where the
/// integrand is known to be smooth after splitting at its breakpoints.
double IntegrateSimpson(const std::function<double(double)>& f, double a,
                        double b, int n);

/// \brief Gauss–Legendre quadrature with `points` nodes (2..64) over [a, b].
///
/// Nodes/weights are computed on first use by Newton iteration on the
/// Legendre polynomials and cached per point count.
double IntegrateGaussLegendre(const std::function<double(double)>& f, double a,
                              double b, int points);

}  // namespace uts::prob

#endif  // UTS_PROB_INTEGRATE_HPP_
