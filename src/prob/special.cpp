#include "prob/special.hpp"

#include <cassert>
#include <cmath>
#include <limits>

namespace uts::prob {

namespace {

constexpr double kPi = 3.141592653589793238462643383279502884;
constexpr double kSqrt2 = 1.414213562373095048801688724209698079;
constexpr double kInvSqrt2Pi = 0.398942280401432677939946059934381868;

}  // namespace

double Erf(double x) { return std::erf(x); }

double Erfc(double x) { return std::erfc(x); }

double NormalPdf(double x) { return kInvSqrt2Pi * std::exp(-0.5 * x * x); }

double NormalPdf(double x, double mu, double sigma) {
  assert(sigma > 0.0);
  const double z = (x - mu) / sigma;
  return kInvSqrt2Pi / sigma * std::exp(-0.5 * z * z);
}

double NormalCdf(double x) { return 0.5 * std::erfc(-x / kSqrt2); }

double NormalCdf(double x, double mu, double sigma) {
  assert(sigma > 0.0);
  return NormalCdf((x - mu) / sigma);
}

double NormalQuantile(double p) {
  if (p <= 0.0) return -std::numeric_limits<double>::infinity();
  if (p >= 1.0) return std::numeric_limits<double>::infinity();

  // Acklam's rational approximation.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;

  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }

  // One step of Halley's method drives the residual below 1e-13.
  const double e = NormalCdf(x) - p;
  const double u = e / NormalPdf(x);
  x -= u / (1.0 + 0.5 * x * u);
  return x;
}

double LogGamma(double x) {
  assert(x > 0.0);
  // Lanczos approximation, g = 7, n = 9 coefficients.
  static const double coeffs[] = {
      0.99999999999980993,  676.5203681218851,    -1259.1392167224028,
      771.32342877765313,   -176.61502916214059,  12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection formula keeps accuracy for small x.
    return std::log(kPi / std::sin(kPi * x)) - LogGamma(1.0 - x);
  }
  const double z = x - 1.0;
  double sum = coeffs[0];
  for (int i = 1; i < 9; ++i) sum += coeffs[i] / (z + i);
  const double t = z + 7.5;
  return 0.5 * std::log(2.0 * kPi) + (z + 0.5) * std::log(t) - t +
         std::log(sum);
}

namespace {

/// Series representation of P(a, x), converges fast for x < a + 1.
double GammaPSeries(double a, double x) {
  const double gln = LogGamma(a);
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int n = 0; n < 500; ++n) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * 1e-16) break;
  }
  return sum * std::exp(-x + a * std::log(x) - gln);
}

/// Continued-fraction representation of Q(a, x), converges for x >= a + 1.
double GammaQContinuedFraction(double a, double x) {
  constexpr double kTiny = 1e-300;
  const double gln = LogGamma(a);
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 1e-16) break;
  }
  return std::exp(-x + a * std::log(x) - gln) * h;
}

}  // namespace

double RegularizedGammaP(double a, double x) {
  assert(a > 0.0);
  assert(x >= 0.0);
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return GammaPSeries(a, x);
  return 1.0 - GammaQContinuedFraction(a, x);
}

double RegularizedGammaQ(double a, double x) {
  assert(a > 0.0);
  assert(x >= 0.0);
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - GammaPSeries(a, x);
  return GammaQContinuedFraction(a, x);
}

double ChiSquareCdf(double x, double k) {
  assert(k > 0.0);
  if (x <= 0.0) return 0.0;
  return RegularizedGammaP(0.5 * k, 0.5 * x);
}

double ChiSquareSurvival(double x, double k) {
  assert(k > 0.0);
  if (x <= 0.0) return 1.0;
  return RegularizedGammaQ(0.5 * k, 0.5 * x);
}

}  // namespace uts::prob
