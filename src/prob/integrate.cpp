#include "prob/integrate.hpp"

#include <array>
#include <cassert>
#include <cmath>
#include <map>
#include <mutex>
#include <vector>

namespace uts::prob {

namespace {

struct SimpsonFrame {
  double a, b;
  double fa, fm, fb;
  double whole;
  int depth;
};

double SimpsonRule(double fa, double fm, double fb, double h) {
  return h / 6.0 * (fa + 4.0 * fm + fb);
}

}  // namespace

Result<double> IntegrateAdaptiveSimpson(const std::function<double(double)>& f,
                                        double a, double b,
                                        const IntegrateOptions& options) {
  if (!(b >= a)) {
    return Status::InvalidArgument("integration bounds must satisfy a <= b");
  }
  if (a == b) return 0.0;

  const double fa0 = f(a);
  const double fb0 = f(b);
  const double m0 = 0.5 * (a + b);
  const double fm0 = f(m0);
  const double whole0 = SimpsonRule(fa0, fm0, fb0, b - a);

  // Explicit stack avoids deep recursion on spiky integrands.
  std::vector<SimpsonFrame> stack;
  stack.push_back({a, b, fa0, fm0, fb0, whole0, 0});
  double total = 0.0;

  while (!stack.empty()) {
    const SimpsonFrame fr = stack.back();
    stack.pop_back();

    const double m = 0.5 * (fr.a + fr.b);
    const double lm = 0.5 * (fr.a + m);
    const double rm = 0.5 * (m + fr.b);
    const double flm = f(lm);
    const double frm = f(rm);
    const double left = SimpsonRule(fr.fa, flm, fr.fm, m - fr.a);
    const double right = SimpsonRule(fr.fm, frm, fr.fb, fr.b - m);
    const double delta = left + right - fr.whole;

    const double tol = std::max(options.abs_tolerance * (fr.b - fr.a) / (b - a),
                                options.rel_tolerance * std::fabs(left + right));
    if (std::fabs(delta) <= 15.0 * tol || fr.depth >= options.max_depth) {
      // At the depth limit the subinterval spans at most (b-a)/2^max_depth;
      // even across a jump discontinuity its absolute error contribution is
      // below machine noise for the whole integral, so the Richardson-
      // corrected estimate is accepted rather than failing the integral.
      total += left + right + delta / 15.0;
    } else {
      stack.push_back({fr.a, m, fr.fa, flm, fr.fm, left, fr.depth + 1});
      stack.push_back({m, fr.b, fr.fm, frm, fr.fb, right, fr.depth + 1});
    }
  }
  return total;
}

double IntegrateSimpson(const std::function<double(double)>& f, double a,
                        double b, int n) {
  assert(n >= 2 && n % 2 == 0);
  if (a == b) return 0.0;
  const double h = (b - a) / n;
  double sum = f(a) + f(b);
  for (int i = 1; i < n; ++i) {
    const double x = a + i * h;
    sum += f(x) * (i % 2 == 0 ? 2.0 : 4.0);
  }
  return sum * h / 3.0;
}

namespace {

struct GaussNodes {
  std::vector<double> x;  // nodes on [-1, 1]
  std::vector<double> w;  // weights
};

/// Newton iteration on Legendre polynomials; standard Golub-free approach.
GaussNodes ComputeGaussLegendre(int n) {
  GaussNodes nodes;
  nodes.x.resize(n);
  nodes.w.resize(n);
  const int m = (n + 1) / 2;
  for (int i = 0; i < m; ++i) {
    // Chebyshev-based initial guess.
    double z = std::cos(M_PI * (i + 0.75) / (n + 0.5));
    double pp = 0.0;
    for (int iter = 0; iter < 100; ++iter) {
      double p0 = 1.0, p1 = 0.0;
      for (int j = 0; j < n; ++j) {
        const double p2 = p1;
        p1 = p0;
        p0 = ((2.0 * j + 1.0) * z * p1 - j * p2) / (j + 1.0);
      }
      pp = n * (z * p0 - p1) / (z * z - 1.0);
      const double z_old = z;
      z = z_old - p0 / pp;
      if (std::fabs(z - z_old) < 1e-15) break;
    }
    nodes.x[i] = -z;
    nodes.x[n - 1 - i] = z;
    const double w = 2.0 / ((1.0 - z * z) * pp * pp);
    nodes.w[i] = w;
    nodes.w[n - 1 - i] = w;
  }
  return nodes;
}

const GaussNodes& CachedGaussNodes(int n) {
  static std::mutex mu;
  static std::map<int, GaussNodes> cache;
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache.find(n);
  if (it == cache.end()) it = cache.emplace(n, ComputeGaussLegendre(n)).first;
  return it->second;
}

}  // namespace

double IntegrateGaussLegendre(const std::function<double(double)>& f, double a,
                              double b, int points) {
  assert(points >= 2 && points <= 64);
  if (a == b) return 0.0;
  const GaussNodes& nodes = CachedGaussNodes(points);
  const double half = 0.5 * (b - a);
  const double mid = 0.5 * (a + b);
  double sum = 0.0;
  for (int i = 0; i < points; ++i) {
    sum += nodes.w[i] * f(mid + half * nodes.x[i]);
  }
  return sum * half;
}

}  // namespace uts::prob
