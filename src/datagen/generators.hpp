/// \file generators.hpp
/// \brief Synthetic generators standing in for the 17 UCR datasets.
///
/// The paper evaluates on 17 real datasets from the UCR classification
/// archive (Section 4.1.1). The archive is not redistributable with this
/// repository, so we substitute seeded synthetic generators (see DESIGN.md
/// §1 for the substitution argument):
///
///  * `GenerateCbf`              — Cylinder–Bell–Funnel (Saito, 1994). This
///    *is* the generative process behind the real UCR "CBF" dataset.
///  * `GenerateSyntheticControl` — the six control-chart classes of Alcock &
///    Manolopoulos (1999); likewise the real process behind UCR
///    "synthetic_control".
///  * `GenerateShapeGrammar`     — a class-structured generator for the
///    remaining 15 named datasets: each class owns a smooth template (random
///    Gaussian bumps + low-order harmonics); instances are time-warped,
///    amplitude-jittered copies with AR(1)-correlated observation noise.
///    Per-dataset parameters control the number of classes, the separation
///    between class templates and the within-class variation, reproducing
///    the property the paper's discussion keys on — the spread of average
///    inter-series distances across datasets.
///
/// All generators are deterministic functions of their seed.

#ifndef UTS_DATAGEN_GENERATORS_HPP_
#define UTS_DATAGEN_GENERATORS_HPP_

#include <cstdint>

#include "ts/dataset.hpp"

namespace uts::datagen {

/// \brief Cylinder–Bell–Funnel: 3 classes.
///
/// c(t) = (6+η)·χ[a,b](t) + ε(t)                       (cylinder)
/// b(t) = (6+η)·χ[a,b](t)·(t−a)/(b−a) + ε(t)           (bell)
/// f(t) = (6+η)·χ[a,b](t)·(b−t)/(b−a) + ε(t)           (funnel)
///
/// with a ~ U[n/8, n/4], b−a ~ U[n/4, 3n/4], η, ε(t) ~ N(0,1).
ts::Dataset GenerateCbf(std::size_t num_series, std::size_t length,
                        std::uint64_t seed);

/// \brief Synthetic control charts: 6 classes (normal, cyclic, increasing
/// trend, decreasing trend, upward shift, downward shift), Alcock &
/// Manolopoulos parameterization with m = 30, s = 2.
ts::Dataset GenerateSyntheticControl(std::size_t num_series,
                                     std::size_t length, std::uint64_t seed);

/// \brief Parameters of the class-template shape generator.
struct ShapeGrammarConfig {
  std::size_t num_classes = 2;
  std::size_t length = 128;

  /// Template complexity.
  std::size_t num_bumps = 4;      ///< Gaussian bumps per class component.
  std::size_t num_harmonics = 3;  ///< Sinusoids per class component.

  /// Scale of the per-class template component relative to the shared base
  /// shape. Low values give visually similar classes and a low average
  /// inter-series distance (Adiac-like); high values the opposite
  /// (Trace-like).
  double class_separation = 1.0;

  /// Maximum smooth time-warp displacement as a fraction of the length.
  double warp_strength = 0.04;

  /// Multiplicative amplitude jitter (std of the (1+jitter·η) factor).
  double amplitude_jitter = 0.08;

  /// Std of the additive AR(1) observation noise (relative to the ~unit
  /// template amplitude).
  double noise_level = 0.05;

  /// AR(1) coefficient of the noise; high values keep neighboring points
  /// correlated, as in real sensor series.
  double noise_rho = 0.8;
};

/// \brief Generate `num_series` instances spread round-robin over the
/// classes of the configured shape grammar.
ts::Dataset GenerateShapeGrammar(const ShapeGrammarConfig& config,
                                 std::size_t num_series, std::uint64_t seed,
                                 const std::string& name = "shape");

}  // namespace uts::datagen

#endif  // UTS_DATAGEN_GENERATORS_HPP_
