#include "datagen/generators.hpp"

#include <cassert>
#include <cmath>
#include <string>
#include <vector>

#include "prob/rng.hpp"

namespace uts::datagen {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

std::string SeriesId(const std::string& dataset, std::size_t index) {
  return dataset + "/" + std::to_string(index);
}

}  // namespace

ts::Dataset GenerateCbf(std::size_t num_series, std::size_t length,
                        std::uint64_t seed) {
  assert(length >= 8);
  ts::Dataset dataset("CBF");
  for (std::size_t idx = 0; idx < num_series; ++idx) {
    prob::Rng rng(prob::DeriveSeed(seed, idx));
    const int label = static_cast<int>(idx % 3);  // 0=cylinder 1=bell 2=funnel
    const double n = static_cast<double>(length);
    const double a = rng.Uniform(n / 8.0, n / 4.0);
    const double b = a + rng.Uniform(n / 4.0, 3.0 * n / 4.0);
    const double eta = rng.Gaussian();
    const double amplitude = 6.0 + eta;

    std::vector<double> values(length);
    for (std::size_t t = 0; t < length; ++t) {
      const double x = static_cast<double>(t);
      double shape = 0.0;
      if (x >= a && x <= b) {
        switch (label) {
          case 0: shape = 1.0; break;                       // cylinder
          case 1: shape = (x - a) / (b - a); break;          // bell
          default: shape = (b - x) / (b - a); break;         // funnel
        }
      }
      values[t] = amplitude * shape + rng.Gaussian();
    }
    dataset.Add(ts::TimeSeries(std::move(values), label,
                               SeriesId("CBF", idx)));
  }
  return dataset;
}

ts::Dataset GenerateSyntheticControl(std::size_t num_series,
                                     std::size_t length, std::uint64_t seed) {
  assert(length >= 8);
  ts::Dataset dataset("syntheticControl");
  constexpr double kMean = 30.0;
  constexpr double kSpread = 2.0;
  for (std::size_t idx = 0; idx < num_series; ++idx) {
    prob::Rng rng(prob::DeriveSeed(seed, idx));
    const int label = static_cast<int>(idx % 6);
    const double n = static_cast<double>(length);

    // Class-level parameters (Alcock & Manolopoulos ranges).
    const double cycle_amp = rng.Uniform(10.0, 15.0);
    const double cycle_period = rng.Uniform(10.0, 15.0);
    const double gradient = rng.Uniform(0.2, 0.5);
    const double shift_magnitude = rng.Uniform(7.5, 20.0);
    const double shift_time = rng.Uniform(n / 3.0, 2.0 * n / 3.0);

    std::vector<double> values(length);
    for (std::size_t t = 0; t < length; ++t) {
      const double x = static_cast<double>(t);
      const double r = rng.Uniform(-3.0, 3.0);
      double v = kMean + r * kSpread;
      switch (label) {
        case 0: break;                                           // normal
        case 1: v += cycle_amp * std::sin(kTwoPi * x / cycle_period); break;
        case 2: v += gradient * x; break;                        // inc trend
        case 3: v -= gradient * x; break;                        // dec trend
        case 4: v += (x >= shift_time ? shift_magnitude : 0.0); break;
        default: v -= (x >= shift_time ? shift_magnitude : 0.0); break;
      }
      values[t] = v;
    }
    dataset.Add(ts::TimeSeries(std::move(values), label,
                               SeriesId("syntheticControl", idx)));
  }
  return dataset;
}

namespace {

/// One Gaussian bump feature of a class template.
struct Bump {
  double center;     // in [0, 1] of the time axis
  double width;      // in fractions of the time axis
  double amplitude;  // signed
};

/// One harmonic feature of a class template.
struct Harmonic {
  double frequency;  // cycles over the series
  double phase;
  double amplitude;
};

/// Analytic class template: shared base + separation-scaled class part.
struct ClassTemplate {
  std::vector<Bump> bumps;
  std::vector<Harmonic> harmonics;

  double Eval(double u) const {  // u in [0, 1]
    double v = 0.0;
    for (const Bump& b : bumps) {
      const double z = (u - b.center) / b.width;
      v += b.amplitude * std::exp(-0.5 * z * z);
    }
    for (const Harmonic& h : harmonics) {
      v += h.amplitude * std::sin(kTwoPi * h.frequency * u + h.phase);
    }
    return v;
  }
};

ClassTemplate BuildBase(prob::Rng& rng) {
  // Shared low-frequency structure so all classes of a dataset look related.
  ClassTemplate base;
  for (int h = 0; h < 2; ++h) {
    base.harmonics.push_back({rng.Uniform(0.5, 2.0), rng.Uniform(0.0, kTwoPi),
                              rng.Uniform(0.6, 1.0)});
  }
  base.bumps.push_back({rng.Uniform(0.3, 0.7), rng.Uniform(0.1, 0.25),
                        rng.Uniform(-1.0, 1.0)});
  return base;
}

ClassTemplate BuildClassPart(prob::Rng& rng, const ShapeGrammarConfig& cfg) {
  ClassTemplate part;
  for (std::size_t b = 0; b < cfg.num_bumps; ++b) {
    const double sign = rng.Bernoulli(0.5) ? 1.0 : -1.0;
    part.bumps.push_back({rng.Uniform(0.08, 0.92), rng.Uniform(0.02, 0.10),
                          sign * rng.Uniform(0.5, 1.5)});
  }
  for (std::size_t h = 0; h < cfg.num_harmonics; ++h) {
    part.harmonics.push_back({rng.Uniform(1.0, 6.0), rng.Uniform(0.0, kTwoPi),
                              rng.Uniform(0.2, 0.6)});
  }
  return part;
}

}  // namespace

ts::Dataset GenerateShapeGrammar(const ShapeGrammarConfig& config,
                                 std::size_t num_series, std::uint64_t seed,
                                 const std::string& name) {
  assert(config.num_classes >= 1);
  assert(config.length >= 8);

  // Templates are a function of the dataset seed only, so that every
  // instance of a class (and every scaled-down subset) shares them.
  prob::Rng template_rng(prob::DeriveSeed(seed, 0xba5e));
  const ClassTemplate base = BuildBase(template_rng);
  std::vector<ClassTemplate> class_parts;
  class_parts.reserve(config.num_classes);
  for (std::size_t k = 0; k < config.num_classes; ++k) {
    prob::Rng class_rng(prob::DeriveSeed(seed, 0xc1a5500 + k));
    class_parts.push_back(BuildClassPart(class_rng, config));
  }

  ts::Dataset dataset(name);
  const double n = static_cast<double>(config.length);
  for (std::size_t idx = 0; idx < num_series; ++idx) {
    prob::Rng rng(prob::DeriveSeed(seed, 0x5e71e5 + idx));
    const auto label_index = idx % config.num_classes;
    const ClassTemplate& part = class_parts[label_index];

    // Instance-level variation.
    const double warp_amp = config.warp_strength * rng.Uniform(0.3, 1.0);
    const double warp_freq = rng.Uniform(0.5, 1.5);
    const double warp_phase = rng.Uniform(0.0, kTwoPi);
    const double amp_factor = 1.0 + config.amplitude_jitter * rng.Gaussian();
    const double offset = 0.05 * rng.Gaussian();

    std::vector<double> values(config.length);
    double noise = 0.0;
    const double innovation =
        config.noise_level * std::sqrt(1.0 - config.noise_rho * config.noise_rho);
    for (std::size_t t = 0; t < config.length; ++t) {
      const double u = static_cast<double>(t) / (n - 1.0);
      const double warped =
          u + warp_amp * std::sin(kTwoPi * warp_freq * u + warp_phase);
      const double signal =
          base.Eval(warped) + config.class_separation * part.Eval(warped);
      noise = config.noise_rho * noise + innovation * rng.Gaussian();
      values[t] = amp_factor * signal + offset + noise;
    }
    dataset.Add(ts::TimeSeries(std::move(values),
                               static_cast<int>(label_index),
                               SeriesId(name, idx)));
  }
  return dataset;
}

}  // namespace uts::datagen
