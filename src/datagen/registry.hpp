/// \file registry.hpp
/// \brief The 17 named dataset generators used throughout the evaluation.
///
/// One spec per dataset named in Section 4.1.1: "50words, Adiac, Beef, CBF,
/// Coffee, ECG200, FISH, FaceAll, FaceFour, Gun Point, Lighting2, Lighting7,
/// OSULeaf, OliveOil, SwedishLeaf, Trace, and synthetic control". Sizes
/// (series count, length, classes) follow the real UCR archive so that the
/// joined train+test collections average ~502 series of length ~290 as in
/// the paper. Shape parameters are tuned so that the per-dataset average
/// inter-series distance ordering matches the paper's qualitative findings
/// (Section 6: FaceFour/OSULeaf easy, Adiac/SwedishLeaf hard).

#ifndef UTS_DATAGEN_REGISTRY_HPP_
#define UTS_DATAGEN_REGISTRY_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "datagen/generators.hpp"
#include "ts/dataset.hpp"

namespace uts::datagen {

/// \brief Which generative process a dataset uses.
enum class GeneratorKind {
  kCbf,              ///< The published CBF process.
  kSyntheticControl, ///< The published control-chart process.
  kShapeGrammar,     ///< Class-template shape grammar.
};

/// \brief Full description of one named dataset.
struct DatasetSpec {
  std::string name;
  GeneratorKind kind = GeneratorKind::kShapeGrammar;
  std::size_t num_series = 0;  ///< Paper-scale size (UCR train+test joined).
  std::size_t length = 0;      ///< Paper-scale series length.
  ShapeGrammarConfig shape;    ///< Used by kShapeGrammar (classes, tuning).
};

/// \brief Specs for all 17 datasets, in the paper's listing order.
const std::vector<DatasetSpec>& UcrLikeSpecs();

/// \brief Names of all 17 datasets, in the paper's listing order.
std::vector<std::string> UcrLikeNames();

/// \brief Spec lookup by name (case-sensitive, as listed in the paper).
Result<DatasetSpec> SpecByName(const std::string& name);

/// \brief Generate a dataset at its paper-scale size.
ts::Dataset Generate(const DatasetSpec& spec, std::uint64_t seed);

/// \brief Generate a scaled-down dataset: at most `max_series` series of at
/// most `max_length` points (0 = no cap). Scaling only reduces counts; the
/// class templates stay identical, so the scaled dataset is a subset-like
/// view of the full one.
ts::Dataset GenerateScaled(const DatasetSpec& spec, std::uint64_t seed,
                           std::size_t max_series, std::size_t max_length);

/// \brief Convenience: generate by name at paper scale.
Result<ts::Dataset> GenerateByName(const std::string& name,
                                   std::uint64_t seed);

}  // namespace uts::datagen

#endif  // UTS_DATAGEN_REGISTRY_HPP_
