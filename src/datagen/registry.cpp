#include "datagen/registry.hpp"

#include <algorithm>

namespace uts::datagen {

namespace {

/// Helper to assemble a shape-grammar spec in one expression.
DatasetSpec ShapeSpec(std::string name, std::size_t num_series,
                      std::size_t length, std::size_t classes,
                      double separation, double warp, double noise,
                      std::size_t bumps = 4, std::size_t harmonics = 3) {
  DatasetSpec spec;
  spec.name = std::move(name);
  spec.kind = GeneratorKind::kShapeGrammar;
  spec.num_series = num_series;
  spec.length = length;
  spec.shape.num_classes = classes;
  spec.shape.length = length;
  spec.shape.class_separation = separation;
  spec.shape.warp_strength = warp;
  spec.shape.noise_level = noise;
  spec.shape.num_bumps = bumps;
  spec.shape.num_harmonics = harmonics;
  return spec;
}

std::vector<DatasetSpec> BuildSpecs() {
  std::vector<DatasetSpec> specs;

  // Sizes are the real UCR train+test totals. `separation` is tuned so
  // that the mean pairwise distance ordering reproduces the paper's
  // easy/hard dataset split (checked by tests/datagen_test).
  specs.push_back(ShapeSpec("50words", 905, 270, 50, 0.9, 0.05, 0.05, 5, 4));
  specs.push_back(ShapeSpec("Adiac", 781, 176, 37, 0.25, 0.02, 0.03, 3, 4));
  specs.push_back(ShapeSpec("Beef", 60, 470, 5, 0.5, 0.02, 0.04, 4, 5));

  DatasetSpec cbf;
  cbf.name = "CBF";
  cbf.kind = GeneratorKind::kCbf;
  cbf.num_series = 930;
  cbf.length = 128;
  cbf.shape.num_classes = 3;
  specs.push_back(cbf);

  specs.push_back(ShapeSpec("Coffee", 56, 286, 2, 0.6, 0.02, 0.03, 4, 4));
  specs.push_back(ShapeSpec("ECG200", 200, 96, 2, 0.8, 0.05, 0.08, 4, 3));
  specs.push_back(ShapeSpec("FISH", 350, 463, 7, 0.7, 0.03, 0.03, 5, 4));
  specs.push_back(ShapeSpec("FaceAll", 2250, 131, 14, 1.1, 0.06, 0.06, 5, 4));
  specs.push_back(ShapeSpec("FaceFour", 112, 350, 4, 2.0, 0.06, 0.06, 5, 4));
  specs.push_back(ShapeSpec("GunPoint", 200, 150, 2, 1.0, 0.04, 0.04, 3, 2));
  specs.push_back(ShapeSpec("Lighting2", 121, 637, 2, 1.2, 0.08, 0.10, 6, 5));
  specs.push_back(ShapeSpec("Lighting7", 143, 319, 7, 1.1, 0.08, 0.10, 6, 5));
  specs.push_back(ShapeSpec("OSULeaf", 442, 427, 6, 1.7, 0.05, 0.05, 5, 4));
  specs.push_back(ShapeSpec("OliveOil", 60, 570, 4, 0.45, 0.01, 0.02, 3, 3));
  specs.push_back(ShapeSpec("SwedishLeaf", 1125, 128, 15, 0.3, 0.03, 0.04, 4, 3));
  specs.push_back(ShapeSpec("Trace", 200, 275, 4, 2.5, 0.03, 0.03, 4, 2));

  DatasetSpec control;
  control.name = "syntheticControl";
  control.kind = GeneratorKind::kSyntheticControl;
  control.num_series = 600;
  control.length = 60;
  control.shape.num_classes = 6;
  specs.push_back(control);

  return specs;
}

}  // namespace

const std::vector<DatasetSpec>& UcrLikeSpecs() {
  static const std::vector<DatasetSpec> specs = BuildSpecs();
  return specs;
}

std::vector<std::string> UcrLikeNames() {
  std::vector<std::string> names;
  names.reserve(UcrLikeSpecs().size());
  for (const auto& spec : UcrLikeSpecs()) names.push_back(spec.name);
  return names;
}

Result<DatasetSpec> SpecByName(const std::string& name) {
  for (const auto& spec : UcrLikeSpecs()) {
    if (spec.name == name) return spec;
  }
  return Status::NotFound("no dataset named '" + name + "'");
}

ts::Dataset Generate(const DatasetSpec& spec, std::uint64_t seed) {
  return GenerateScaled(spec, seed, 0, 0);
}

ts::Dataset GenerateScaled(const DatasetSpec& spec, std::uint64_t seed,
                           std::size_t max_series, std::size_t max_length) {
  const std::size_t num_series =
      max_series == 0 ? spec.num_series : std::min(spec.num_series, max_series);
  const std::size_t length =
      max_length == 0 ? spec.length : std::min(spec.length, max_length);

  switch (spec.kind) {
    case GeneratorKind::kCbf:
      return GenerateCbf(num_series, length, seed);
    case GeneratorKind::kSyntheticControl:
      return GenerateSyntheticControl(num_series, length, seed);
    case GeneratorKind::kShapeGrammar: {
      ShapeGrammarConfig config = spec.shape;
      config.length = length;
      return GenerateShapeGrammar(config, num_series, seed, spec.name);
    }
  }
  return ts::Dataset(spec.name);
}

Result<ts::Dataset> GenerateByName(const std::string& name,
                                   std::uint64_t seed) {
  auto spec = SpecByName(name);
  if (!spec.ok()) return spec.status();
  return Generate(spec.ValueOrDie(), seed);
}

}  // namespace uts::datagen
