/// \file server.hpp
/// \brief The uncertain-similarity query daemon: listeners, sessions,
/// admission control, and the per-dataset shard dispatchers.
///
/// Thread model — three kinds of threads, one engine context *per shard*:
///
///   - The **accept thread** blocks on the listening socket (Unix-domain or
///     loopback TCP) and spawns one reader thread per connection.
///   - A **reader thread** performs the Hello handshake (resolving the
///     client token to a Session, replaying unacked responses), then loops
///     decoding request frames. Each request is routed by the dataset name
///     its payload leads with (see ShardKeyOf) and pushed onto that shard's
///     bounded admission queue; when the shard queue — or the cross-shard
///     global budget — is full, the reader immediately sends an unsequenced
///     `Error{kSaturated, retry_after_ms}` instead of blocking —
///     backpressure is explicit, never implicit.
///   - One **shard dispatcher thread per resident dataset** drains its
///     shard's queue one request at a time into the shard's private
///     `Service` (its own `query::EngineContext`). Serializing per shard is
///     what preserves each context's single-threaded setup rules, while
///     requests against *different* datasets now execute concurrently.
///     Parallelism inside a query still comes from the engines'
///     deterministic `ParallelFor` partitions, so responses stay bitwise
///     identical to direct in-process engine calls at every pool width —
///     and identical across both pool policies.
///
/// A distinguished **control shard** (key "") exists from startup: it
/// answers pings, ListDatasets, and any request whose dataset cannot be
/// resolved to a shard — its empty Service produces the authoritative
/// NotFound/InvalidArgument for unknown datasets.
///
/// Pool policy: with `kPerShard` every shard's context lazily owns a pool;
/// with `kShared` the server constructs one `exec::ThreadPool` and lends it
/// to every shard (EngineContextOptions::shared_pool), bounding worker
/// threads at `service.threads` regardless of how many datasets are
/// resident.
///
/// Responses are delivered through the client's Session, which numbers and
/// buffers them (see session.hpp) so a reconnecting client resumes an
/// in-flight sweep without the server recomputing finished items. Session
/// sequences are per client, not per shard: two shards answering one
/// client serialize briefly on its session mutex when numbering frames.

#ifndef UTS_SERVER_SERVER_HPP_
#define UTS_SERVER_SERVER_HPP_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/result.hpp"
#include "exec/thread_pool.hpp"
#include "server/service.hpp"
#include "server/session.hpp"
#include "server/wire.hpp"

namespace uts::server {

/// \brief How shard engine contexts obtain their worker threads.
enum class PoolPolicy {
  /// Every shard's context lazily creates its own `exec::ThreadPool` of
  /// `service.threads` workers — full isolation, worker count grows with
  /// the number of resident datasets.
  kPerShard,

  /// The server constructs one `exec::ThreadPool` of `service.threads`
  /// workers and lends it to every shard's context — a fixed worker budget
  /// shared by all datasets. Results are bitwise identical to kPerShard:
  /// partitioning depends on the configured width, not on pool ownership.
  kShared,
};

/// \brief Transport and admission configuration of a Server.
struct ServerOptions {
  /// When non-empty, listen on this Unix-domain socket path (an existing
  /// socket file is replaced). Takes precedence over TCP.
  std::string unix_socket_path;

  /// TCP port on 127.0.0.1 when no Unix socket path is given; 0 picks an
  /// ephemeral port (read it back with tcp_port()).
  std::uint16_t tcp_port = 0;

  /// Per-shard admission queue capacity: requests admitted but not yet
  /// dispatched on one shard. A full queue rejects with Error{kSaturated}
  /// instead of blocking.
  std::size_t queue_depth = 64;

  /// Cross-shard admission budget: total queued requests across every
  /// shard. A busy shard can therefore starve admission server-wide, which
  /// bounds memory no matter how many datasets are resident. 0 = no global
  /// cap (per-shard caps still apply).
  std::size_t global_queue_depth = 256;

  /// Retry hint (milliseconds) carried by saturation rejections.
  std::uint32_t retry_after_ms = 50;

  /// Per-session cap on buffered unacked response frames; overflow poisons
  /// the session (see Session).
  std::size_t max_backlog_frames = 4096;

  /// Bound on every per-session socket write (SO_SNDTIMEO): a peer that
  /// stops reading stalls a shard dispatcher for at most this long before
  /// the connection is marked dead and frames buffer in the session
  /// backlog. 0 = blocking sends.
  std::uint32_t send_timeout_ms = 0;

  /// Worker-thread ownership across shards (see PoolPolicy).
  PoolPolicy pool_policy = PoolPolicy::kPerShard;

  /// Engine-side configuration handed to every shard's Service.
  ServiceOptions service;
};

/// \brief A running uncertain-similarity query daemon.
class Server {
 public:
  /// Server-wide admission counters; snapshot via stats().
  struct Stats {
    std::uint64_t connections = 0;  ///< Sockets accepted.
    std::uint64_t admitted = 0;     ///< Requests enqueued for dispatch.
    std::uint64_t rejected = 0;     ///< Requests refused with kSaturated.
  };

  /// Per-shard work counters; snapshot via shard_stats(). The multi-tenant
  /// test pins `dispatched` vs `completed` to prove one shard's stalled
  /// dispatcher does not block another's progress.
  struct ShardStats {
    std::uint64_t admitted = 0;    ///< Requests enqueued on this shard.
    std::uint64_t rejected = 0;    ///< Requests this shard refused.
    std::uint64_t dispatched = 0;  ///< Requests its dispatcher picked up.
    std::uint64_t completed = 0;   ///< Requests fully executed.
  };

  /// Bind the listener, start the accept thread and the control shard.
  static Result<std::unique_ptr<Server>> Start(ServerOptions options);

  /// Calls Stop().
  ~Server();

  Server(const Server&) = delete;  ///< Not copyable.
  Server& operator=(const Server&) = delete;  ///< Not copyable.

  /// Stop accepting, shut down live connections, drain nothing further,
  /// and join every thread (accept, readers, all shard dispatchers).
  /// Idempotent.
  void Stop();

  /// The bound TCP port (meaningful for TCP listeners; resolves port 0).
  std::uint16_t tcp_port() const { return tcp_port_; }

  /// The bound Unix socket path ("" for TCP listeners).
  const std::string& unix_socket_path() const {
    return options_.unix_socket_path;
  }

  /// The request executor of the shard owning `dataset` ("" = the control
  /// shard), or null when no such shard exists yet. Tests read its counters
  /// and compare against a directly driven Service.
  Service* shard_service(const std::string& dataset);

  /// Work counters of the shard owning `dataset` (thread-safe); zeros when
  /// no such shard exists.
  ShardStats shard_stats(const std::string& dataset) const;

  /// Number of shards (including the control shard).
  std::size_t shard_count() const;

  /// Server-wide admission counter snapshot (thread-safe).
  Stats stats() const;

 private:
  /// One admitted request, bound to the session that gets its responses.
  struct WorkItem {
    std::shared_ptr<Session> session;
    MessageType type = MessageType::kPing;
    std::uint64_t request_seq = 0;
    std::vector<std::uint8_t> payload;
  };

  /// One per-dataset dispatch unit: a private Service (own EngineContext),
  /// a bounded queue, and the dispatcher thread that drains it.
  struct Shard {
    std::string key;                   ///< Dataset name; "" = control.
    std::unique_ptr<Service> service;  ///< Executor; one context per shard.
    std::thread dispatcher;            ///< Drains queue into service.

    mutable std::mutex queue_mutex;
    std::condition_variable queue_cv;
    std::deque<WorkItem> queue;

    mutable std::mutex stats_mutex;
    ShardStats stats;
  };

  explicit Server(ServerOptions options);

  /// Create and bind the listening socket per options_.
  Status Listen();

  /// Accept-loop body (accept thread).
  void AcceptLoop();

  /// Connection body (reader thread): handshake, then request admission.
  void HandleConnection(int fd);

  /// Resolve `token` to its session, replacing a poisoned one, and attach.
  std::shared_ptr<Session> AttachSession(int fd, const HelloMessage& hello,
                                         Session::AttachResult* result);

  /// The shard a request with this routing key executes on. Binds create
  /// their dataset's shard on demand; every other request runs on an
  /// existing shard or falls back to the control shard, whose empty Service
  /// produces the authoritative NotFound.
  Shard& RouteShard(MessageType type, const std::string& key);

  /// The existing shard for `key`, or the one created for it. Caller must
  /// not hold shards_mutex_.
  Shard& ShardFor(const std::string& key);

  /// Push onto the shard's admission queue, honoring both the per-shard
  /// and the cross-shard caps; false when full (caller rejects).
  bool TryEnqueue(Shard& shard, WorkItem item);

  /// Dispatcher-loop body of one shard: drain its queue into Execute.
  void DispatchLoop(Shard& shard);

  /// Decode and run one admitted request on `shard`, delivering sequenced
  /// responses (or a sequenced error) through the session.
  void Execute(Shard& shard, WorkItem& item);

  /// Deliver `status` as a sequenced Error response for `request_seq`.
  void DeliverError(Session& session, std::uint64_t request_seq,
                    const Status& status);

  ServerOptions options_;

  /// The lent pool of PoolPolicy::kShared (null for kPerShard or
  /// threads <= 1). Declared before shards_ so it outlives every shard's
  /// context on destruction.
  std::unique_ptr<exec::ThreadPool> shared_pool_;

  /// Listening socket; atomic because Stop() shuts it down and resets it
  /// while the accept thread is still blocked on (and re-reading) it.
  std::atomic<int> listen_fd_{-1};
  std::uint16_t tcp_port_ = 0;

  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  mutable std::mutex connections_mutex_;
  std::vector<std::thread> connection_threads_;
  std::set<int> live_fds_;  ///< Open connection sockets, for Stop().

  mutable std::mutex sessions_mutex_;
  std::map<std::uint64_t, std::shared_ptr<Session>> sessions_;

  mutable std::mutex shards_mutex_;
  std::map<std::string, std::unique_ptr<Shard>> shards_;

  /// Requests queued across every shard (cross-shard admission budget).
  std::atomic<std::size_t> queued_total_{0};

  /// Datasets bound successfully on any shard, for ListDatasets — the
  /// shard map itself also holds shards whose bind failed.
  mutable std::mutex bound_names_mutex_;
  std::set<std::string> bound_names_;

  mutable std::mutex stats_mutex_;
  Stats stats_;
};

}  // namespace uts::server

#endif  // UTS_SERVER_SERVER_HPP_
