/// \file server.hpp
/// \brief The uncertain-similarity query daemon: listeners, sessions,
/// admission control, and the single dispatcher thread.
///
/// Thread model — three kinds of threads, one shared engine:
///
///   - The **accept thread** blocks on the listening socket (Unix-domain or
///     loopback TCP) and spawns one reader thread per connection.
///   - A **reader thread** performs the Hello handshake (resolving the
///     client token to a Session, replaying unacked responses), then loops
///     decoding request frames. Each request is pushed onto a bounded
///     admission queue; when the queue is full the reader immediately sends
///     an unsequenced `Error{kSaturated, retry_after_ms}` instead of
///     blocking — backpressure is explicit, never implicit.
///   - The **dispatcher thread** drains the admission queue one request at
///     a time into the `Service`. Serializing here is what preserves the
///     EngineContext's single-threaded setup rules; parallelism still comes
///     from *inside* each query, which fans out over the context's shared
///     `exec::ThreadPool`. Responses therefore stay bitwise identical to
///     direct in-process engine calls at every pool width.
///
/// Responses are delivered through the client's Session, which numbers and
/// buffers them (see session.hpp) so a reconnecting client resumes an
/// in-flight sweep without the server recomputing finished items.

#ifndef UTS_SERVER_SERVER_HPP_
#define UTS_SERVER_SERVER_HPP_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/result.hpp"
#include "server/service.hpp"
#include "server/session.hpp"
#include "server/wire.hpp"

namespace uts::server {

/// \brief Transport and admission configuration of a Server.
struct ServerOptions {
  /// When non-empty, listen on this Unix-domain socket path (an existing
  /// socket file is replaced). Takes precedence over TCP.
  std::string unix_socket_path;

  /// TCP port on 127.0.0.1 when no Unix socket path is given; 0 picks an
  /// ephemeral port (read it back with tcp_port()).
  std::uint16_t tcp_port = 0;

  /// Admission queue capacity: requests admitted but not yet dispatched.
  /// A full queue rejects with Error{kSaturated} instead of blocking.
  std::size_t queue_depth = 64;

  /// Retry hint (milliseconds) carried by saturation rejections.
  std::uint32_t retry_after_ms = 50;

  /// Per-session cap on buffered unacked response frames; overflow poisons
  /// the session (see Session).
  std::size_t max_backlog_frames = 4096;

  /// Engine-side configuration handed to the Service.
  ServiceOptions service;
};

/// \brief A running uncertain-similarity query daemon.
class Server {
 public:
  /// Admission counters; snapshot via stats().
  struct Stats {
    std::uint64_t connections = 0;  ///< Sockets accepted.
    std::uint64_t admitted = 0;     ///< Requests enqueued for dispatch.
    std::uint64_t rejected = 0;     ///< Requests refused with kSaturated.
  };

  /// Bind the listener, then start the accept and dispatcher threads.
  static Result<std::unique_ptr<Server>> Start(ServerOptions options);

  /// Calls Stop().
  ~Server();

  Server(const Server&) = delete;  ///< Not copyable.
  Server& operator=(const Server&) = delete;  ///< Not copyable.

  /// Stop accepting, shut down live connections, drain nothing further,
  /// and join every thread. Idempotent.
  void Stop();

  /// The bound TCP port (meaningful for TCP listeners; resolves port 0).
  std::uint16_t tcp_port() const { return tcp_port_; }

  /// The bound Unix socket path ("" for TCP listeners).
  const std::string& unix_socket_path() const {
    return options_.unix_socket_path;
  }

  /// The request executor (tests read its counters and compare against a
  /// directly driven EngineContext).
  Service& service() { return service_; }

  /// Admission counter snapshot (thread-safe).
  Stats stats() const;

 private:
  /// One admitted request, bound to the session that gets its responses.
  struct WorkItem {
    std::shared_ptr<Session> session;
    MessageType type = MessageType::kPing;
    std::uint64_t request_seq = 0;
    std::vector<std::uint8_t> payload;
  };

  explicit Server(ServerOptions options);

  /// Create and bind the listening socket per options_.
  Status Listen();

  /// Accept-loop body (accept thread).
  void AcceptLoop();

  /// Connection body (reader thread): handshake, then request admission.
  void HandleConnection(int fd);

  /// Resolve `token` to its session, replacing a poisoned one, and attach.
  std::shared_ptr<Session> AttachSession(int fd, const HelloMessage& hello,
                                         Session::AttachResult* result);

  /// Push onto the admission queue; false when full (caller rejects).
  bool TryEnqueue(WorkItem item);

  /// Dispatcher-loop body: drain the queue into Execute.
  void DispatchLoop();

  /// Decode and run one admitted request, delivering sequenced responses
  /// (or a sequenced error) through the session.
  void Execute(WorkItem& item);

  /// Deliver `status` as a sequenced Error response for `request_seq`.
  void DeliverError(Session& session, std::uint64_t request_seq,
                    const Status& status);

  ServerOptions options_;
  Service service_;

  int listen_fd_ = -1;
  std::uint16_t tcp_port_ = 0;

  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::thread dispatch_thread_;

  mutable std::mutex connections_mutex_;
  std::vector<std::thread> connection_threads_;
  std::set<int> live_fds_;  ///< Open connection sockets, for Stop().

  mutable std::mutex sessions_mutex_;
  std::map<std::uint64_t, std::shared_ptr<Session>> sessions_;

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<WorkItem> queue_;

  mutable std::mutex stats_mutex_;
  Stats stats_;
};

}  // namespace uts::server

#endif  // UTS_SERVER_SERVER_HPP_
