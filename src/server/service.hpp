/// \file service.hpp
/// \brief Request execution over the shared query::EngineContext.
///
/// `Service` is the single-threaded heart of the server: the dispatcher
/// thread (see server.hpp) feeds it one admitted request at a time, and it
/// translates each into engine calls on one `EngineContext` — one thread
/// pool, one SoA pack per resident dataset, cached engines. Serializing
/// engine access here is what keeps the context's setup-time mutation rules
/// intact while still extracting full parallelism: each individual query
/// fans out over the context's shared `exec::ThreadPool` through the
/// engines' deterministic `ParallelFor` partitions, so responses are
/// bitwise identical to in-process engine calls at every pool width.
///
/// Thread-safety: all methods must be called from one thread at a time
/// (the dispatcher). `stats()` is the exception — it snapshots under a lock
/// so tests and monitoring can read concurrently.

#ifndef UTS_SERVER_SERVICE_HPP_
#define UTS_SERVER_SERVICE_HPP_

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <string>

#include "common/result.hpp"
#include "measures/dust.hpp"
#include "measures/munich.hpp"
#include "query/engine_context.hpp"
#include "server/wire.hpp"

namespace uts::server {

/// \brief Engine-side configuration of a Service.
struct ServiceOptions {
  /// Worker threads of the shared pool (EngineContextOptions::threads);
  /// 1 = queries run inline on the dispatcher.
  std::size_t threads = 1;

  /// Kernel selection shared by every engine (EngineContextOptions::simd).
  distance::SimdMode simd = distance::SimdMode::kAuto;

  /// Prune-before-score index cascade shared by every engine.
  index::IndexOptions index;

  /// DUST table construction parameters used for every resident.
  measures::DustOptions dust;

  /// MUNICH estimator configuration used for every resident.
  measures::MunichOptions munich;

  /// Borrowed executor handed through to the context
  /// (EngineContextOptions::shared_pool): the server's `shared` pool policy
  /// lends one pool to every shard's service. Must be at least `threads`
  /// wide and outlive the service. Null = the context owns its pool.
  exec::ThreadPool* shared_pool = nullptr;

  /// Storage-tier budget handed through to the context
  /// (EngineContextOptions::memory_budget_bytes). 0 = fully-resident
  /// stores; non-zero pages every bound dataset's stores through a
  /// per-shard ts::BufferPool with responses bitwise identical either way.
  std::size_t memory_budget_bytes = 0;

  /// Spill directory of the shard's buffer pool
  /// (EngineContextOptions::spill_dir); empty = $TMPDIR, else /tmp.
  std::string spill_dir;
};

/// \brief The dataset a request payload addresses, used to route it to the
/// per-dataset shard whose dispatcher owns that dataset's EngineContext.
///
/// Every dataset-carrying request schema leads with its dataset name
/// (`BindDatasetRequest::name`, `QueryRequest::dataset`), so routing decodes
/// only the leading string — not the full payload. Pings route by
/// `PingRequest::dataset`. Everything else — and any payload too malformed
/// to yield its leading string — returns "" (the control shard), whose full
/// decode produces the authoritative error response.
std::string ShardKeyOf(MessageType type, std::span<const std::uint8_t> payload);

/// \brief Executes wire requests against the shared engine context.
class Service {
 public:
  /// Execution counters; snapshot via stats().
  struct Stats {
    std::uint64_t binds = 0;        ///< BindDataset requests served.
    std::uint64_t queries = 0;      ///< Knn/Range/Prq/MeasureSweep served.
    std::uint64_t sweep_items = 0;  ///< Per-query k-NN lists computed by
                                    ///< KnnSweep requests. The reconnect
                                    ///< test pins this to prove completed
                                    ///< work is never re-run.
  };

  /// Create the service and its private EngineContext.
  explicit Service(ServiceOptions options);

  /// The underlying context (tests compare server responses against direct
  /// calls on an identically configured private context).
  query::EngineContext& context() { return context_; }

  /// Perturb the uploaded exact dataset deterministically and make it
  /// resident under `request.name` (pdf model, optional sample model, and
  /// the observations as a certain dataset).
  Result<BindOkResponse> Bind(const BindDatasetRequest& request,
                              std::uint64_t request_seq);

  /// Names of the resident datasets.
  DatasetListResponse List(std::uint64_t request_seq);

  /// k-NN under the requested measure. For the probability measures the
  /// neighbor `distance` field carries the match probability at ε.
  Result<KnnResponse> Knn(const QueryRequest& request,
                          std::uint64_t request_seq);

  /// Range query: Euclidean or DUST distance <= ε.
  Result<IndexListResponse> Range(const QueryRequest& request,
                                  std::uint64_t request_seq);

  /// Probabilistic range query: PROUD or MUNICH Pr(dist <= ε) >= τ.
  Result<IndexListResponse> Prq(const QueryRequest& request,
                                std::uint64_t request_seq);

  /// Dense per-candidate sweep: DUST distances or PROUD/MUNICH match
  /// probabilities at ε.
  Result<SweepResponse> MeasureSweep(const QueryRequest& request,
                                     std::uint64_t request_seq);

  /// Record one completed per-query k-NN list of a KnnSweep (called by the
  /// dispatcher as it streams sweep items).
  void NoteSweepItem();

  /// Counter snapshot (thread-safe).
  Stats stats() const;

 private:
  /// Per-resident parameters the wire layer needs again at query time.
  struct ResidentMeta {
    double proud_sigma = 1.0;  ///< σ reported to PROUD at bind time.
  };

  /// Activate `name` and fail with NotFound/InvalidArgument when absent or
  /// the query index is out of range.
  Status Activate(const std::string& name, std::uint32_t query);

  /// The shared uncertain engine for `measure`, or a Status explaining why
  /// the dataset cannot serve it.
  Result<query::UncertainEngine*> AcquireFor(WireMeasure measure,
                                             const std::string& dataset);

  ServiceOptions options_;
  query::EngineContext context_;
  std::map<std::string, ResidentMeta> meta_;

  mutable std::mutex stats_mutex_;
  Stats stats_;
};

}  // namespace uts::server

#endif  // UTS_SERVER_SERVICE_HPP_
