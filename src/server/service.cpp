#include "server/service.hpp"

#include <utility>
#include <vector>

#include "ts/time_series.hpp"
#include "uncertain/error_spec.hpp"
#include "uncertain/perturb.hpp"

namespace uts::server {

namespace {

prob::ErrorKind ToErrorKind(WireErrorKind kind) {
  switch (kind) {
    case WireErrorKind::kUniform:
      return prob::ErrorKind::kUniform;
    case WireErrorKind::kExponential:
      return prob::ErrorKind::kExponential;
    case WireErrorKind::kNormal:
    default:
      return prob::ErrorKind::kNormal;
  }
}

}  // namespace

std::string ShardKeyOf(MessageType type,
                       std::span<const std::uint8_t> payload) {
  switch (type) {
    case MessageType::kBindDataset:
    case MessageType::kKnn:
    case MessageType::kRange:
    case MessageType::kPrq:
    case MessageType::kMeasureSweep:
    case MessageType::kKnnSweep: {
      // Both request schemas lead with the dataset name; peek it without
      // decoding the rest (bind payloads carry whole datasets).
      PayloadReader reader(payload);
      Result<std::string> name = reader.Str();
      return name.ok() ? name.ValueOrDie() : std::string();
    }
    case MessageType::kPing: {
      Result<PingRequest> ping = PingRequest::Decode(payload);
      return ping.ok() ? ping.ValueOrDie().dataset : std::string();
    }
    default:
      return std::string();
  }
}

Service::Service(ServiceOptions options)
    : options_(options), context_([&options] {
        query::EngineContextOptions context_options;
        context_options.threads = options.threads;
        context_options.simd = options.simd;
        context_options.index = options.index;
        context_options.shared_pool = options.shared_pool;
        context_options.memory_budget_bytes = options.memory_budget_bytes;
        context_options.spill_dir = options.spill_dir;
        return context_options;
      }()) {}

Result<BindOkResponse> Service::Bind(const BindDatasetRequest& request,
                                     std::uint64_t request_seq) {
  if (request.name.empty()) {
    return Status::InvalidArgument("bind: dataset name must be non-empty");
  }
  if (request.series.empty()) {
    return Status::InvalidArgument("bind: dataset must be non-empty");
  }
  const std::size_t length = request.series.front().size();
  if (length == 0) {
    return Status::InvalidArgument("bind: series must be non-empty");
  }
  ts::Dataset exact(request.name);
  for (std::size_t i = 0; i < request.series.size(); ++i) {
    if (request.series[i].size() != length) {
      return Status::InvalidArgument(
          "bind: the engines require uniform series lengths");
    }
    const int label = i < request.labels.size()
                          ? static_cast<int>(request.labels[i])
                          : ts::TimeSeries::kNoLabel;
    exact.Add(ts::TimeSeries(request.series[i], label));
  }

  const prob::ErrorKind kind = ToErrorKind(request.kind);
  const uncertain::ErrorSpec spec =
      request.mixed_sigma != 0 ? uncertain::ErrorSpec::MixedSigma(kind)
                               : uncertain::ErrorSpec::Constant(kind,
                                                                request.sigma);
  // Deterministic perturbation: the same exact values + spec + seed yield
  // bit-identical uncertain datasets here and in any in-process reference.
  uncertain::UncertainDataset pdf =
      uncertain::PerturbDataset(exact, spec, request.seed);
  std::optional<uncertain::MultiSampleDataset> samples;
  if (request.samples_per_point > 0) {
    samples = uncertain::PerturbDatasetMultiSample(
        exact, spec, request.samples_per_point, request.seed);
  }
  const double proud_sigma = spec.RepresentativeSigma();
  UTS_RETURN_NOT_OK(context_.AddResident(request.name, std::move(pdf),
                                         std::move(samples), request.seed,
                                         proud_sigma));
  meta_[request.name] = ResidentMeta{proud_sigma};

  BindOkResponse response;
  response.request_seq = request_seq;
  response.name = request.name;
  response.num_series = static_cast<std::uint32_t>(request.series.size());
  response.length = static_cast<std::uint32_t>(length);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.binds;
  }
  return response;
}

DatasetListResponse Service::List(std::uint64_t request_seq) {
  DatasetListResponse response;
  response.request_seq = request_seq;
  response.names = context_.ResidentNames();
  return response;
}

Status Service::Activate(const std::string& name, std::uint32_t query) {
  UTS_RETURN_NOT_OK(context_.ActivateResident(name));
  const auto* pdf = context_.ResidentPdf(name);
  if (pdf != nullptr && query >= pdf->size()) {
    return Status::NotFound("query index " + std::to_string(query) +
                            " out of range (dataset has " +
                            std::to_string(pdf->size()) + " series)");
  }
  return Status::OK();
}

Result<query::UncertainEngine*> Service::AcquireFor(
    WireMeasure measure, const std::string& dataset) {
  query::UncertainEngine* engine = nullptr;
  switch (measure) {
    case WireMeasure::kDust:
      engine = context_.AcquireDust(options_.dust);
      break;
    case WireMeasure::kProud: {
      auto it = meta_.find(dataset);
      if (it == meta_.end()) {
        return Status::NotFound("no resident dataset named '" + dataset + "'");
      }
      engine = context_.AcquireProud(it->second.proud_sigma);
      break;
    }
    case WireMeasure::kMunich:
      engine = context_.AcquireMunich(options_.munich);
      break;
    case WireMeasure::kEuclid:
    default:
      return Status::InvalidArgument("measure has no uncertain engine");
  }
  if (engine == nullptr) {
    return Status::NotSupported(
        "dataset '" + dataset +
        "' cannot serve this measure with the shared engine (missing "
        "sample model, non-uniform shape, or conflicting configuration)");
  }
  return engine;
}

Result<KnnResponse> Service::Knn(const QueryRequest& request,
                                 std::uint64_t request_seq) {
  UTS_RETURN_NOT_OK(Activate(request.dataset, request.query));
  KnnResponse response;
  response.request_seq = request_seq;
  response.query = request.query;
  index::SearchCost cost;
  if (request.measure == WireMeasure::kEuclid) {
    const ts::Dataset* observed = context_.ResidentObserved(request.dataset);
    const auto& engine = context_.Certain(*observed);
    response.neighbors =
        engine.KNearestEuclidean(request.query, request.k, &cost);
  } else {
    UTS_ASSIGN_OR_RETURN(query::UncertainEngine * engine,
                         AcquireFor(request.measure, request.dataset));
    switch (request.measure) {
      case WireMeasure::kDust: {
        UTS_ASSIGN_OR_RETURN(
            response.neighbors,
            engine->KNearestDust(request.query, request.k, &cost));
        break;
      }
      case WireMeasure::kProud:
        response.neighbors =
            engine->KNearestProud(request.query, request.epsilon, request.k);
        break;
      case WireMeasure::kMunich: {
        UTS_ASSIGN_OR_RETURN(response.neighbors,
                             engine->KNearestMunich(request.query,
                                                    request.epsilon,
                                                    request.k));
        break;
      }
      default:
        return Status::InvalidArgument("knn: unsupported measure");
    }
  }
  response.cost = WireSearchCost::From(cost);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.queries;
  }
  return response;
}

Result<IndexListResponse> Service::Range(const QueryRequest& request,
                                         std::uint64_t request_seq) {
  UTS_RETURN_NOT_OK(Activate(request.dataset, request.query));
  IndexListResponse response;
  response.request_seq = request_seq;
  index::SearchCost cost;
  std::vector<std::size_t> matches;
  if (request.measure == WireMeasure::kEuclid) {
    const ts::Dataset* observed = context_.ResidentObserved(request.dataset);
    const auto& engine = context_.Certain(*observed);
    matches =
        engine.RangeSearchEuclidean(request.query, request.epsilon, &cost);
  } else if (request.measure == WireMeasure::kDust) {
    UTS_ASSIGN_OR_RETURN(query::UncertainEngine * engine,
                         AcquireFor(request.measure, request.dataset));
    UTS_ASSIGN_OR_RETURN(
        matches, engine->RangeSearchDust(request.query, request.epsilon,
                                         &cost));
  } else {
    return Status::InvalidArgument(
        "range: PROUD/MUNICH are probabilistic — use PRQ");
  }
  response.indices.assign(matches.begin(), matches.end());
  response.cost = WireSearchCost::From(cost);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.queries;
  }
  return response;
}

Result<IndexListResponse> Service::Prq(const QueryRequest& request,
                                       std::uint64_t request_seq) {
  if (request.measure != WireMeasure::kProud &&
      request.measure != WireMeasure::kMunich) {
    return Status::InvalidArgument(
        "prq: only the probabilistic measures (PROUD, MUNICH) answer PRQ");
  }
  UTS_RETURN_NOT_OK(Activate(request.dataset, request.query));
  UTS_ASSIGN_OR_RETURN(query::UncertainEngine * engine,
                       AcquireFor(request.measure, request.dataset));
  IndexListResponse response;
  response.request_seq = request_seq;
  std::vector<std::size_t> matches;
  if (request.measure == WireMeasure::kProud) {
    matches = engine->ProbabilisticRangeSearchProud(
        request.query, request.epsilon, request.tau);
  } else {
    UTS_ASSIGN_OR_RETURN(matches, engine->ProbabilisticRangeSearchMunich(
                                      request.query, request.epsilon,
                                      request.tau));
  }
  response.indices.assign(matches.begin(), matches.end());
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.queries;
  }
  return response;
}

Result<SweepResponse> Service::MeasureSweep(const QueryRequest& request,
                                            std::uint64_t request_seq) {
  if (request.measure == WireMeasure::kEuclid) {
    return Status::InvalidArgument(
        "sweep: dense sweeps serve the uncertain measures (dust|proud|"
        "munich)");
  }
  UTS_RETURN_NOT_OK(Activate(request.dataset, request.query));
  UTS_ASSIGN_OR_RETURN(query::UncertainEngine * engine,
                       AcquireFor(request.measure, request.dataset));
  SweepResponse response;
  response.request_seq = request_seq;
  switch (request.measure) {
    case WireMeasure::kDust: {
      UTS_ASSIGN_OR_RETURN(response.values,
                           engine->DustDistances(request.query));
      break;
    }
    case WireMeasure::kProud:
      response.values =
          engine->ProudMatchProbabilities(request.query, request.epsilon);
      break;
    case WireMeasure::kMunich: {
      UTS_ASSIGN_OR_RETURN(response.values,
                           engine->MunichMatchProbabilities(request.query,
                                                            request.epsilon));
      break;
    }
    default:
      return Status::InvalidArgument("sweep: unsupported measure");
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.queries;
  }
  return response;
}

void Service::NoteSweepItem() {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.sweep_items;
}

Service::Stats Service::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

}  // namespace uts::server
