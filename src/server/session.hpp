/// \file session.hpp
/// \brief Per-client server session: sequence numbering, the unacked
/// response backlog, and reconnect-replay.
///
/// A `Session` is the server half of the resumable channel (the
/// `BackedWriter` of EternalTerminal's connection model): every response
/// frame produced for a client is numbered by the session's monotone
/// counter and retained in a backlog until the client acknowledges it.
/// Delivery is decoupled from connectivity — `Deliver` appends to the
/// backlog and *attempts* a socket write, but a dead connection just leaves
/// the frame buffered. When the client reconnects and presents the highest
/// sequence it has seen, `Attach` trims everything at or below it and
/// replays the rest in order, so an in-flight sweep resumes mid-stream
/// without the server recomputing anything.
///
/// Thread-safety: all public methods are safe to call concurrently — the
/// dispatcher thread delivers responses while a connection thread attaches,
/// acks, or detaches. A bounded backlog (`max_backlog_frames`) prevents a
/// never-acking client from holding unbounded memory; overflow poisons the
/// session (subsequent Deliver calls drop frames and the next Attach is
/// refused), which the server surfaces as a fresh-session handshake.

#ifndef UTS_SERVER_SESSION_HPP_
#define UTS_SERVER_SESSION_HPP_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "common/status.hpp"
#include "server/frame.hpp"

namespace uts::server {

/// \brief Server-side session state for one client token.
class Session {
 public:
  /// Create a session for `token`; the backlog keeps at most
  /// `max_backlog_frames` unacked frames before the session poisons.
  /// `send_timeout_ms` bounds every socket write (SO_SNDTIMEO, set at
  /// Attach): a peer that stops reading makes the write time out, the
  /// connection is marked dead and frames keep accumulating in the backlog
  /// instead of blocking the delivering dispatcher. 0 = no timeout
  /// (blocking sends, the pre-hardening behavior).
  Session(std::uint64_t token, std::size_t max_backlog_frames,
          std::uint32_t send_timeout_ms = 0);

  /// The client token this session belongs to.
  std::uint64_t token() const { return token_; }

  /// Outcome of an Attach: what the HelloAck reported.
  struct AttachResult {
    std::uint64_t replayed = 0;    ///< Backlog frames replayed on reconnect.
    std::uint64_t server_seq = 0;  ///< Highest sequence produced so far.
    bool poisoned = false;         ///< Session overflowed; caller must
                                   ///< discard it and start a fresh one.
  };

  /// Bind a (re)connected socket: trim the backlog through `last_seq_seen`
  /// (the client's receipt doubles as a cumulative ack), write the HelloAck
  /// control frame, replay every retained frame after the trim point, and
  /// make `fd` the live write side — all atomically, so a response
  /// delivered concurrently can never overtake the replayed tail. The fd is
  /// borrowed; the connection thread owns its lifetime. `resumed` is echoed
  /// in the HelloAck so the client knows whether its sequence state is
  /// still meaningful.
  AttachResult Attach(int fd, std::uint64_t last_seq_seen, bool resumed);

  /// Drop the live write side (connection closed); buffered and future
  /// frames accumulate until the next Attach.
  void Detach(int fd);

  /// Number a response frame, append it to the backlog and attempt to send
  /// it. Returns the assigned sequence (0 when the session is poisoned and
  /// the frame was dropped). A payload beyond the frame-size cap is
  /// replaced by a sequenced `Error{kInternal}` for `request_seq` — the
  /// client gets a well-formed answer instead of a desynchronized stream.
  std::uint64_t Deliver(std::uint8_t type, std::vector<std::uint8_t> payload,
                        std::uint64_t request_seq = 0);

  /// Send an unsequenced control frame (HelloAck, backpressure errors) on
  /// the live connection, bypassing the backlog. No-op when detached.
  void SendControl(std::uint8_t type, std::vector<std::uint8_t> payload);

  /// Cumulative ack: drop every backlog frame with sequence <= acked_seq.
  void HandleAck(std::uint64_t acked_seq);

  /// Frames currently buffered (diagnostics / tests).
  std::size_t BacklogSize() const;

  /// True once the backlog overflowed; the server replaces the session.
  bool poisoned() const;

 private:
  /// Write `frame` to the live fd; on failure mark the connection dead
  /// (frame stays in the backlog for the next Attach). Caller holds mutex_.
  void TryWriteLocked(const Frame& frame);

  const std::uint64_t token_;
  const std::size_t max_backlog_frames_;
  const std::uint32_t send_timeout_ms_;

  mutable std::mutex mutex_;
  int fd_ = -1;                 ///< Live write side; -1 when detached.
  bool write_ok_ = false;       ///< False after a failed write until Attach.
  bool poisoned_ = false;       ///< Backlog overflowed.
  std::uint64_t next_seq_ = 1;  ///< Next response sequence to assign.
  std::deque<Frame> backlog_;   ///< Unacked sequenced frames, ascending.
};

}  // namespace uts::server

#endif  // UTS_SERVER_SESSION_HPP_
