/// \file frame.hpp
/// \brief The length-prefixed, sequence-numbered framing layer of the
/// uncertts query server.
///
/// Every byte on a server connection belongs to a *frame*: a fixed 24-byte
/// header followed by `payload_size` payload bytes. The header carries a
/// magic/version pair (so a stray client talking another protocol fails
/// immediately instead of desynchronizing), the message type, a monotone
/// per-direction *sequence number* and an FNV-1a checksum of the payload.
///
/// Sequence numbers are what make responses resumable (the
/// `BackedReader`/`BackedWriter` idea from EternalTerminal): the server
/// numbers every response frame 1, 2, 3, … per session and keeps the unacked
/// tail buffered; a client that reconnects presents the highest sequence it
/// has seen and receives exactly the frames after it — an in-flight sweep
/// continues instead of re-running. Frames with sequence 0 are *unsequenced*
/// (handshake, acks, backpressure rejections) and are never replayed.
///
/// Byte order is little-endian on the wire; doubles travel as their IEEE-754
/// bit patterns, so values survive the round trip bit-exactly — the server
/// integration suite pins responses bitwise against in-process engine calls.

#ifndef UTS_SERVER_FRAME_HPP_
#define UTS_SERVER_FRAME_HPP_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/result.hpp"

/// \namespace uts::server
/// \brief The uncertain-similarity query daemon: framing, wire schemas,
/// resumable sessions, admission control, and the synchronous client.

namespace uts::server {

/// \brief Frame header constants and field layout.
///
/// Wire layout (offsets in bytes, little-endian):
///
/// | offset | size | field            |
/// |-------:|-----:|------------------|
/// |      0 |    4 | magic `"UTSF"`   |
/// |      4 |    1 | version (1)      |
/// |      5 |    1 | type             |
/// |      6 |    2 | flags (reserved) |
/// |      8 |    8 | sequence         |
/// |     16 |    4 | payload_size     |
/// |     20 |    4 | payload_checksum |
struct FrameHeader {
  /// `"UTSF"` interpreted as a little-endian u32.
  static constexpr std::uint32_t kMagic = 0x46535455u;

  /// Protocol version this build speaks.
  static constexpr std::uint8_t kVersion = 1;

  /// Hard ceiling on payload bytes; a decoded header beyond it is rejected
  /// as corruption before any allocation.
  static constexpr std::uint32_t kMaxPayloadSize = 64u << 20;

  /// Message type (a server::MessageType value; kept raw here so the
  /// framing layer has no dependency on the schema layer).
  std::uint8_t type = 0;

  /// Reserved; must be zero in version 1.
  std::uint16_t flags = 0;

  /// Per-direction monotone counter starting at 1; 0 = unsequenced frame
  /// (control traffic, excluded from resume/replay).
  std::uint64_t sequence = 0;

  /// Number of payload bytes following the header.
  std::uint32_t payload_size = 0;

  /// FNV-1a checksum of the payload bytes (Checksum()).
  std::uint32_t payload_checksum = 0;
};

/// \brief Serialized size of a FrameHeader on the wire.
inline constexpr std::size_t kFrameHeaderSize = 24;

/// \brief One parsed frame: header plus owned payload bytes.
struct Frame {
  /// Decoded (or to-be-encoded) header; `payload_size` and
  /// `payload_checksum` are derived from `payload` when encoding.
  FrameHeader header;

  /// Payload bytes, already checksum-verified on the read path.
  std::vector<std::uint8_t> payload;
};

/// \brief FNV-1a over the payload bytes, folded to 32 bits.
std::uint32_t Checksum(std::span<const std::uint8_t> payload);

/// \brief Encode `header` into `out` (exactly kFrameHeaderSize bytes).
/// `payload_size`/`payload_checksum` must already be set.
void EncodeFrameHeader(const FrameHeader& header, std::uint8_t* out);

/// \brief Decode and validate a header from `in` (exactly kFrameHeaderSize
/// bytes). Fails with Corruption on magic/version mismatch or an oversized
/// payload declaration.
Result<FrameHeader> DecodeFrameHeader(const std::uint8_t* in);

/// \brief Build a frame: fills in the derived header fields from `payload`.
/// InvalidArgument when the payload exceeds `FrameHeader::kMaxPayloadSize` —
/// an oversize payload must never reach the wire, where the 32-bit size
/// field would truncate while the checksum covers the full buffer,
/// desynchronizing the stream.
Result<Frame> MakeFrame(std::uint8_t type, std::uint64_t sequence,
                        std::vector<std::uint8_t> payload);

/// \brief Write one frame to a socket, looping over partial writes (EINTR
/// safe, SIGPIPE suppressed). IOError when the peer is gone or a configured
/// send timeout expires. InvalidArgument — before any byte is sent — when
/// the frame's payload exceeds the protocol cap or disagrees with its
/// header's `payload_size` (defense in depth for hand-built frames).
Status WriteFrame(int fd, const Frame& frame);

/// \brief Read one frame from a socket (blocking), verifying the checksum.
/// IOError on EOF or socket failure, Corruption on a bad header/checksum.
Result<Frame> ReadFrame(int fd);

}  // namespace uts::server

#endif  // UTS_SERVER_FRAME_HPP_
