#include "server/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <utility>

namespace uts::server {

namespace {

Status ErrorToStatus(const ErrorResponse& error) {
  switch (error.code) {
    case WireError::kBadRequest:
      return Status::InvalidArgument("server: " + error.message);
    case WireError::kNotFound:
      return Status::NotFound("server: " + error.message);
    case WireError::kSaturated:
      return Status::NotSupported(
          "server saturated; retry after " +
          std::to_string(error.retry_after_ms) + "ms");
    case WireError::kUnavailable:
      return Status::NotSupported("server: " + error.message);
    case WireError::kInternal:
    default:
      return Status::IOError("server: " + error.message);
  }
}

}  // namespace

Client::Client(Options options) : options_(std::move(options)) {}

Client::~Client() { CloseAbruptly(); }

Result<std::unique_ptr<Client>> Client::Connect(Options options) {
  if (options.token == 0) {
    return Status::InvalidArgument("client token must be nonzero");
  }
  std::unique_ptr<Client> client(new Client(std::move(options)));
  UTS_RETURN_NOT_OK(client->Dial());
  UTS_RETURN_NOT_OK(client->Handshake());
  return client;
}

Status Client::Dial() {
  if (!options_.unix_socket_path.empty()) {
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (options_.unix_socket_path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("unix socket path too long: " +
                                     options_.unix_socket_path);
    }
    std::strncpy(addr.sun_path, options_.unix_socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
      return Status::IOError("socket(AF_UNIX) failed");
    }
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
      return Status::IOError("connect failed for " +
                             options_.unix_socket_path);
    }
    return Status::OK();
  }
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::IOError("socket(AF_INET) failed");
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    return Status::InvalidArgument("bad host address: " + options_.host);
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd_);
    fd_ = -1;
    return Status::IOError("connect failed for " + options_.host + ":" +
                           std::to_string(options_.port));
  }
  return Status::OK();
}

Status Client::Handshake() {
  HelloMessage hello;
  hello.client_token = options_.token;
  hello.last_seq_seen = last_seq_seen_;
  UTS_ASSIGN_OR_RETURN(
      Frame hello_frame,
      MakeFrame(static_cast<std::uint8_t>(MessageType::kHello), 0,
                hello.Encode()));
  UTS_RETURN_NOT_OK(WriteFrame(fd_, hello_frame));
  UTS_ASSIGN_OR_RETURN(Frame frame, ReadFrame(fd_));
  if (static_cast<MessageType>(frame.header.type) != MessageType::kHelloAck) {
    return Status::Corruption("handshake: expected HelloAck");
  }
  UTS_ASSIGN_OR_RETURN(hello_, HelloAckMessage::Decode(frame.payload));
  if (hello_.resumed == 0) {
    // Fresh server-side session: our sequence state is meaningless now.
    last_seq_seen_ = 0;
    sweep_request_seq_ = 0;
  }
  return Status::OK();
}

Status Client::Reconnect() {
  CloseAbruptly();
  UTS_RETURN_NOT_OK(Dial());
  return Handshake();
}

void Client::CloseAbruptly() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Client::SendRequest(MessageType type, std::vector<std::uint8_t> payload,
                           std::uint64_t* seq_out) {
  if (fd_ < 0) {
    return Status::IOError("client is not connected");
  }
  // Oversize requests (e.g. a dataset upload past the 64 MiB frame cap)
  // fail here with InvalidArgument before consuming a request sequence or
  // desynchronizing the stream.
  UTS_ASSIGN_OR_RETURN(Frame frame,
                       MakeFrame(static_cast<std::uint8_t>(type),
                                 next_request_seq_, std::move(payload)));
  UTS_RETURN_NOT_OK(WriteFrame(fd_, frame));
  *seq_out = next_request_seq_++;
  return Status::OK();
}

void Client::SendAck(std::uint64_t seq) {
  AckMessage ack;
  ack.acked_seq = seq;
  // Best effort: a lost ack only means the server buffers a little longer.
  Result<Frame> frame = MakeFrame(
      static_cast<std::uint8_t>(MessageType::kAck), 0, ack.Encode());
  if (frame.ok()) WriteFrame(fd_, frame.ValueOrDie()).ok();
}

Result<Frame> Client::AwaitResponse(std::uint64_t request_seq) {
  while (true) {
    UTS_ASSIGN_OR_RETURN(Frame frame, ReadFrame(fd_));
    const auto type = static_cast<MessageType>(frame.header.type);
    if (frame.header.sequence != 0) {
      if (frame.header.sequence <= last_seq_seen_) {
        continue;  // Replay overlap: already processed.
      }
      last_seq_seen_ = frame.header.sequence;
      SendAck(frame.header.sequence);
    } else if (type == MessageType::kHelloAck) {
      continue;  // Stale handshake traffic.
    }
    // Every response payload leads with the echoed request sequence.
    PayloadReader reader(frame.payload);
    Result<std::uint64_t> echoed = reader.U64();
    if (!echoed.ok()) {
      return echoed.status();
    }
    if (echoed.ValueOrDie() != request_seq) {
      continue;  // Response to an older request (e.g. abandoned sweep).
    }
    if (type == MessageType::kError) {
      UTS_ASSIGN_OR_RETURN(last_error_, ErrorResponse::Decode(frame.payload));
      return ErrorToStatus(last_error_);
    }
    return frame;
  }
}

Result<BindOkResponse> Client::Bind(const BindDatasetRequest& request) {
  std::uint64_t seq = 0;
  UTS_RETURN_NOT_OK(
      SendRequest(MessageType::kBindDataset, request.Encode(), &seq));
  UTS_ASSIGN_OR_RETURN(Frame frame, AwaitResponse(seq));
  return BindOkResponse::Decode(frame.payload);
}

Result<DatasetListResponse> Client::ListDatasets() {
  std::uint64_t seq = 0;
  UTS_RETURN_NOT_OK(SendRequest(MessageType::kListDatasets, {}, &seq));
  UTS_ASSIGN_OR_RETURN(Frame frame, AwaitResponse(seq));
  return DatasetListResponse::Decode(frame.payload);
}

Result<KnnResponse> Client::Knn(const QueryRequest& request) {
  std::uint64_t seq = 0;
  UTS_RETURN_NOT_OK(SendRequest(MessageType::kKnn, request.Encode(), &seq));
  UTS_ASSIGN_OR_RETURN(Frame frame, AwaitResponse(seq));
  return KnnResponse::Decode(frame.payload);
}

Result<IndexListResponse> Client::Range(const QueryRequest& request) {
  std::uint64_t seq = 0;
  UTS_RETURN_NOT_OK(SendRequest(MessageType::kRange, request.Encode(), &seq));
  UTS_ASSIGN_OR_RETURN(Frame frame, AwaitResponse(seq));
  return IndexListResponse::Decode(frame.payload);
}

Result<IndexListResponse> Client::Prq(const QueryRequest& request) {
  std::uint64_t seq = 0;
  UTS_RETURN_NOT_OK(SendRequest(MessageType::kPrq, request.Encode(), &seq));
  UTS_ASSIGN_OR_RETURN(Frame frame, AwaitResponse(seq));
  return IndexListResponse::Decode(frame.payload);
}

Result<SweepResponse> Client::MeasureSweep(const QueryRequest& request) {
  std::uint64_t seq = 0;
  UTS_RETURN_NOT_OK(
      SendRequest(MessageType::kMeasureSweep, request.Encode(), &seq));
  UTS_ASSIGN_OR_RETURN(Frame frame, AwaitResponse(seq));
  return SweepResponse::Decode(frame.payload);
}

Result<PongResponse> Client::Ping(std::uint32_t delay_ms, std::uint64_t echo,
                                  const std::string& dataset) {
  PingRequest request;
  request.delay_ms = delay_ms;
  request.echo = echo;
  request.dataset = dataset;
  std::uint64_t seq = 0;
  UTS_RETURN_NOT_OK(SendRequest(MessageType::kPing, request.Encode(), &seq));
  UTS_ASSIGN_OR_RETURN(Frame frame, AwaitResponse(seq));
  return PongResponse::Decode(frame.payload);
}

Status Client::StartKnnSweep(const QueryRequest& request) {
  std::uint64_t seq = 0;
  UTS_RETURN_NOT_OK(
      SendRequest(MessageType::kKnnSweep, request.Encode(), &seq));
  sweep_request_seq_ = seq;
  return Status::OK();
}

Result<KnnResponse> Client::NextSweepItem(bool* done) {
  *done = false;
  if (sweep_request_seq_ == 0) {
    return Status::InvalidArgument("no k-NN sweep in flight");
  }
  UTS_ASSIGN_OR_RETURN(Frame frame, AwaitResponse(sweep_request_seq_));
  const auto type = static_cast<MessageType>(frame.header.type);
  if (type == MessageType::kKnnSweepDone) {
    sweep_request_seq_ = 0;
    *done = true;
    return KnnResponse{};
  }
  if (type != MessageType::kKnnResult) {
    return Status::Corruption("sweep: unexpected response type");
  }
  return KnnResponse::Decode(frame.payload);
}

}  // namespace uts::server
