/// \file wire.hpp
/// \brief Request/response schemas of the uncertts query server.
///
/// One schema struct per message type, each with `Encode`/`Decode` against
/// the flat payload codec (`PayloadWriter`/`PayloadReader`). The framing
/// layer (frame.hpp) carries these payloads; docs/PROTOCOL.md is the
/// normative field-by-field reference and every change here must update it.
///
/// Conventions:
///
///  * requests carry no sequence of their own beyond the frame header's —
///    the client numbers its request frames and the server echoes that
///    number back as `request_seq` in every response it produces for it,
///    so a client can correlate out-of-order traffic;
///  * doubles travel as IEEE-754 bit patterns (bit-exact round trip);
///  * responses that answer a query carry the index-cascade work accounting
///    (`WireSearchCost`) so clients see candidates touched vs pruned
///    per request.

#ifndef UTS_SERVER_WIRE_HPP_
#define UTS_SERVER_WIRE_HPP_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "index/synopsis_index.hpp"
#include "query/search.hpp"
#include "ts/dataset.hpp"

namespace uts::server {

/// \brief Every message type of protocol version 1, grouped by direction.
enum class MessageType : std::uint8_t {
  // Control (unsequenced, both directions).
  kHello = 0x01,     ///< Client opens/resumes a session.
  kHelloAck = 0x02,  ///< Server confirms the session state.
  kAck = 0x03,       ///< Client acknowledges received response sequences.

  // Requests (client → server, sequenced by the client).
  kPing = 0x10,          ///< Liveness probe with optional dispatcher delay.
  kListDatasets = 0x11,  ///< Names of the resident datasets.
  kBindDataset = 0x12,   ///< Upload + perturb + make a dataset resident.
  kKnn = 0x13,           ///< k-nearest-neighbors query.
  kRange = 0x14,         ///< Range query RQ(Q, C, ε).
  kPrq = 0x15,           ///< Probabilistic range query PRQ(Q, C, ε, τ).
  kMeasureSweep = 0x16,  ///< Dense distance/probability sweep of one query.
  kKnnSweep = 0x17,      ///< Streaming k-NN over a block of queries.

  // Responses (server → client, sequenced by the server per session).
  kPong = 0x20,          ///< Ping reply.
  kDatasetList = 0x21,   ///< ListDatasets reply.
  kBindOk = 0x22,        ///< BindDataset reply.
  kKnnResult = 0x23,     ///< Knn reply (also each KnnSweep item).
  kRangeResult = 0x24,   ///< Range reply.
  kPrqResult = 0x25,     ///< Prq reply.
  kSweepResult = 0x26,   ///< MeasureSweep reply.
  kKnnSweepDone = 0x27,  ///< KnnSweep terminator.
  kError = 0x3f,         ///< Any request failing (also backpressure).
};

/// \brief Error codes carried by kError responses.
enum class WireError : std::uint32_t {
  kBadRequest = 1,   ///< Malformed payload or invalid parameters.
  kNotFound = 2,     ///< Unknown dataset / query index out of range.
  kSaturated = 3,    ///< Admission queue full — retry after the hint.
  kUnavailable = 4,  ///< Dataset not servable by the shared engine.
  kInternal = 5,     ///< Engine-side failure; message has the Status.
};

/// \brief Measures a query request can name.
enum class WireMeasure : std::uint8_t {
  kEuclid = 0,  ///< Certain Euclidean over the observations.
  kDust = 1,    ///< DUST distance (pdf model).
  kProud = 2,   ///< PROUD match probability at ε (constant-σ model).
  kMunich = 3,  ///< MUNICH match probability at ε (sample model).
};

/// \brief Error-model families a BindDataset request can name (matches
/// prob::ErrorKind).
enum class WireErrorKind : std::uint8_t {
  kNormal = 0,       ///< Gaussian error.
  kUniform = 1,      ///< Uniform error.
  kExponential = 2,  ///< (Shifted) exponential error.
};

// ---------------------------------------------------------------------------
// Payload codec
// ---------------------------------------------------------------------------

/// \brief Append-only little-endian payload builder.
class PayloadWriter {
 public:
  /// Append one byte.
  void U8(std::uint8_t v) { buf_.push_back(v); }

  /// Append a 32-bit word.
  void U32(std::uint32_t v);

  /// Append a 64-bit word.
  void U64(std::uint64_t v);

  /// Append a double as its IEEE-754 bit pattern (bit-exact).
  void F64(double v);

  /// Append a length-prefixed UTF-8 string.
  void Str(const std::string& s);

  /// Append a length-prefixed vector of doubles.
  void F64Vec(const std::vector<double>& v);

  /// Move the built payload out.
  std::vector<std::uint8_t> Take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// \brief Bounds-checked reader over a received payload.
///
/// Every getter returns Corruption once the payload runs short; decoding is
/// total — no getter reads past the span.
class PayloadReader {
 public:
  /// Read from `payload` (borrowed; must outlive the reader).
  explicit PayloadReader(std::span<const std::uint8_t> payload)
      : data_(payload) {}

  /// Read one byte.
  Result<std::uint8_t> U8();

  /// Read a 32-bit word.
  Result<std::uint32_t> U32();

  /// Read a 64-bit word.
  Result<std::uint64_t> U64();

  /// Read a double from its bit pattern.
  Result<double> F64();

  /// Read a length-prefixed string.
  Result<std::string> Str();

  /// Read a length-prefixed vector of doubles.
  Result<std::vector<double>> F64Vec();

  /// True iff every byte has been consumed.
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Control messages (unsequenced)
// ---------------------------------------------------------------------------

/// \brief Client → server session open/resume.
struct HelloMessage {
  /// Client-chosen stable session token; reconnecting with the same token
  /// resumes the server-side session.
  std::uint64_t client_token = 0;

  /// Highest response sequence the client has seen (0 on a fresh session);
  /// the server replays everything after it.
  std::uint64_t last_seq_seen = 0;

  /// Serialize into a payload.
  std::vector<std::uint8_t> Encode() const;

  /// Parse from a payload.
  static Result<HelloMessage> Decode(std::span<const std::uint8_t> payload);
};

/// \brief Server → client handshake confirmation.
struct HelloAckMessage {
  /// 1 when an existing session was resumed, 0 when freshly created.
  std::uint8_t resumed = 0;

  /// Number of buffered response frames replayed right after this ack.
  std::uint64_t replayed = 0;

  /// Highest response sequence the server has produced for this session.
  std::uint64_t server_seq = 0;

  /// Serialize into a payload.
  std::vector<std::uint8_t> Encode() const;

  /// Parse from a payload.
  static Result<HelloAckMessage> Decode(std::span<const std::uint8_t> payload);
};

/// \brief Client → server cumulative acknowledgment.
struct AckMessage {
  /// Every response frame with sequence <= acked_seq may be dropped from
  /// the server's replay backlog.
  std::uint64_t acked_seq = 0;

  /// Serialize into a payload.
  std::vector<std::uint8_t> Encode() const;

  /// Parse from a payload.
  static Result<AckMessage> Decode(std::span<const std::uint8_t> payload);
};

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// \brief Liveness probe; `delay_ms` stalls the dispatcher (testing /
/// drain-measurement aid).
struct PingRequest {
  /// Milliseconds the dispatcher sleeps before answering.
  std::uint32_t delay_ms = 0;

  /// Opaque value echoed back in the pong.
  std::uint64_t echo = 0;

  /// Dataset whose shard dispatcher should answer (and, with `delay_ms`,
  /// stall). Empty targets the control shard, preserving the pre-sharding
  /// behavior.
  std::string dataset;

  /// Serialize into a payload.
  std::vector<std::uint8_t> Encode() const;

  /// Parse from a payload.
  static Result<PingRequest> Decode(std::span<const std::uint8_t> payload);
};

/// \brief Upload an exact dataset; the server perturbs it deterministically
/// (uncertain::PerturbDataset semantics) and keeps the result resident.
struct BindDatasetRequest {
  /// Residency name; re-binding an existing name replaces it.
  std::string name;

  /// Error family of the injected measurement error.
  WireErrorKind kind = WireErrorKind::kNormal;

  /// Error std for the constant regime; ignored when `mixed_sigma`.
  double sigma = 0.5;

  /// 1 = the paper's mixed-σ regime (20% at σ=1.0, 80% at σ=0.4).
  std::uint8_t mixed_sigma = 0;

  /// Perturbation seed (series i draws with DeriveSeed(seed, i)).
  std::uint64_t seed = 42;

  /// Repeated observations per timestamp for the MUNICH sample model;
  /// 0 = no sample-model dataset (MUNICH queries then fail kUnavailable).
  std::uint32_t samples_per_point = 0;

  /// The exact series values; uniform length required.
  std::vector<std::vector<double>> series;

  /// Per-series integer labels, parallel to `series`.
  std::vector<std::int32_t> labels;

  /// Serialize into a payload.
  std::vector<std::uint8_t> Encode() const;

  /// Parse from a payload.
  static Result<BindDatasetRequest> Decode(
      std::span<const std::uint8_t> payload);
};

/// \brief One query against a resident dataset; shared by Knn/Range/Prq/
/// MeasureSweep/KnnSweep, which use the subset of fields they need.
struct QueryRequest {
  /// Resident dataset name.
  std::string dataset;

  /// Measure the query runs under.
  WireMeasure measure = WireMeasure::kEuclid;

  /// Query series index (for KnnSweep: the first query of the block).
  std::uint32_t query = 0;

  /// Neighbors requested (kNN paths).
  std::uint32_t k = 0;

  /// ε of RQ / PRQ / probability measures.
  double epsilon = 0.0;

  /// τ of PRQ.
  double tau = 0.0;

  /// KnnSweep only: number of consecutive queries in the block.
  std::uint32_t num_queries = 0;

  /// Serialize into a payload.
  std::vector<std::uint8_t> Encode() const;

  /// Parse from a payload.
  static Result<QueryRequest> Decode(std::span<const std::uint8_t> payload);
};

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// \brief Work accounting of one answered query (index::SearchCost on the
/// wire). All zero when the engine did not export cost for the path.
struct WireSearchCost {
  std::uint64_t candidates_total = 0;    ///< Eligible rows (self excluded).
  std::uint64_t candidates_touched = 0;  ///< Rows handed to exact scoring.
  std::uint64_t pruned_lower_bound = 0;  ///< Rejected by the synopsis bound.
  std::uint64_t abandoned_early = 0;     ///< Rows cut short by early abandon.

  /// Convert from the engine's accounting struct.
  static WireSearchCost From(const index::SearchCost& cost);

  /// Append to a payload.
  void EncodeTo(PayloadWriter& writer) const;

  /// Read from a payload.
  static Result<WireSearchCost> DecodeFrom(PayloadReader& reader);
};

/// \brief Ping reply.
struct PongResponse {
  std::uint64_t request_seq = 0;  ///< Sequence of the answered request.
  std::uint64_t echo = 0;         ///< Echoed PingRequest::echo.

  /// Serialize into a payload.
  std::vector<std::uint8_t> Encode() const;

  /// Parse from a payload.
  static Result<PongResponse> Decode(std::span<const std::uint8_t> payload);
};

/// \brief ListDatasets reply.
struct DatasetListResponse {
  std::uint64_t request_seq = 0;        ///< Sequence of the answered request.
  std::vector<std::string> names;       ///< Resident dataset names, sorted.

  /// Serialize into a payload.
  std::vector<std::uint8_t> Encode() const;

  /// Parse from a payload.
  static Result<DatasetListResponse> Decode(
      std::span<const std::uint8_t> payload);
};

/// \brief BindDataset reply.
struct BindOkResponse {
  std::uint64_t request_seq = 0;  ///< Sequence of the answered request.
  std::string name;               ///< Residency name bound.
  std::uint32_t num_series = 0;   ///< Series made resident.
  std::uint32_t length = 0;       ///< Shared series length.

  /// Serialize into a payload.
  std::vector<std::uint8_t> Encode() const;

  /// Parse from a payload.
  static Result<BindOkResponse> Decode(std::span<const std::uint8_t> payload);
};

/// \brief Knn reply, and the per-query item of a KnnSweep stream.
struct KnnResponse {
  std::uint64_t request_seq = 0;  ///< Sequence of the answered request.
  std::uint32_t query = 0;        ///< Query index this list answers.
  /// Neighbor lists ordered exactly as the engine returned them (ascending
  /// distance / descending probability, ties by index); `distance` carries
  /// the probability for the probability measures.
  std::vector<query::Neighbor> neighbors;
  WireSearchCost cost;            ///< Work accounting of this query.

  /// Serialize into a payload.
  std::vector<std::uint8_t> Encode() const;

  /// Parse from a payload.
  static Result<KnnResponse> Decode(std::span<const std::uint8_t> payload);
};

/// \brief Range / Prq reply (indices ascending, self excluded).
struct IndexListResponse {
  std::uint64_t request_seq = 0;      ///< Sequence of the answered request.
  std::vector<std::uint64_t> indices; ///< Matching series indices.
  WireSearchCost cost;                ///< Work accounting of this query.

  /// Serialize into a payload.
  std::vector<std::uint8_t> Encode() const;

  /// Parse from a payload.
  static Result<IndexListResponse> Decode(
      std::span<const std::uint8_t> payload);
};

/// \brief MeasureSweep reply: the dense per-candidate vector.
struct SweepResponse {
  std::uint64_t request_seq = 0;  ///< Sequence of the answered request.
  /// Distance (DUST) or match probability (PROUD/MUNICH) per series index;
  /// the self slot holds the engine's documented self value.
  std::vector<double> values;

  /// Serialize into a payload.
  std::vector<std::uint8_t> Encode() const;

  /// Parse from a payload.
  static Result<SweepResponse> Decode(std::span<const std::uint8_t> payload);
};

/// \brief KnnSweep terminator.
struct KnnSweepDoneResponse {
  std::uint64_t request_seq = 0;  ///< Sequence of the answered request.
  std::uint32_t num_items = 0;    ///< KnnResult frames the sweep produced.

  /// Serialize into a payload.
  std::vector<std::uint8_t> Encode() const;

  /// Parse from a payload.
  static Result<KnnSweepDoneResponse> Decode(
      std::span<const std::uint8_t> payload);
};

/// \brief Failure reply for any request, including backpressure rejections.
struct ErrorResponse {
  std::uint64_t request_seq = 0;  ///< Sequence of the failed request.
  WireError code = WireError::kInternal;  ///< Machine-readable error class.
  /// kSaturated only: suggested client backoff before retrying.
  std::uint32_t retry_after_ms = 0;
  std::string message;            ///< Human-readable diagnostic.

  /// Serialize into a payload.
  std::vector<std::uint8_t> Encode() const;

  /// Parse from a payload.
  static Result<ErrorResponse> Decode(std::span<const std::uint8_t> payload);
};

}  // namespace uts::server

#endif  // UTS_SERVER_WIRE_HPP_
