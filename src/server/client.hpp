/// \file client.hpp
/// \brief Synchronous client for the uncertts query server.
///
/// `Client` is the client half of the resumable channel: it numbers its
/// request frames, tracks the highest response sequence it has processed,
/// and acknowledges responses as it consumes them. After a crash or a
/// dropped connection, `Reconnect()` dials again and presents
/// `{client_token, last_seq_seen}` — the server trims its backlog to that
/// point and replays only the responses the client never saw, so an
/// interrupted streaming sweep resumes mid-flight without recomputation.
///
/// The API is synchronous: each call sends one request and blocks for its
/// response (responses are matched on the echoed `request_seq`). The one
/// streaming shape is the k-NN sweep: `StartKnnSweep` fires the request and
/// `NextSweepItem` pulls per-query results until the terminator.
///
/// Thread-safety: none — one thread per Client.

#ifndef UTS_SERVER_CLIENT_HPP_
#define UTS_SERVER_CLIENT_HPP_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "server/frame.hpp"
#include "server/wire.hpp"

namespace uts::server {

/// \brief Synchronous connection to a running uncertts server.
class Client {
 public:
  /// Where and how to connect.
  struct Options {
    /// Unix-domain socket path; takes precedence over TCP when non-empty.
    std::string unix_socket_path;

    /// TCP host when no Unix socket path is given.
    std::string host = "127.0.0.1";

    /// TCP port when no Unix socket path is given.
    std::uint16_t port = 0;

    /// Stable session token; reconnecting with the same token resumes the
    /// server-side session. Must be nonzero and unique per logical client.
    std::uint64_t token = 1;
  };

  /// Dial the server and complete the Hello handshake.
  static Result<std::unique_ptr<Client>> Connect(Options options);

  /// Closes the socket.
  ~Client();

  Client(const Client&) = delete;  ///< Not copyable.
  Client& operator=(const Client&) = delete;  ///< Not copyable.

  /// Dial again and resume the session: the server replays every response
  /// after last_seq_seen(). Replayed frames are consumed by the next
  /// read (e.g. NextSweepItem continues an interrupted sweep).
  Status Reconnect();

  /// Close the socket without protocol goodbye — simulates a client crash
  /// for the resume tests. The session and its backlog survive server-side.
  void CloseAbruptly();

  /// Upload a dataset and make it resident.
  Result<BindOkResponse> Bind(const BindDatasetRequest& request);

  /// Names of the server's resident datasets.
  Result<DatasetListResponse> ListDatasets();

  /// k-NN under the requested measure.
  Result<KnnResponse> Knn(const QueryRequest& request);

  /// Range query RQ(Q, C, ε).
  Result<IndexListResponse> Range(const QueryRequest& request);

  /// Probabilistic range query PRQ(Q, C, ε, τ).
  Result<IndexListResponse> Prq(const QueryRequest& request);

  /// Dense distance/probability sweep for one query.
  Result<SweepResponse> MeasureSweep(const QueryRequest& request);

  /// Liveness probe; delay_ms > 0 stalls the targeted shard's dispatcher
  /// (test aid). `dataset` names the shard to probe; empty = the control
  /// shard.
  Result<PongResponse> Ping(std::uint32_t delay_ms = 0,
                            std::uint64_t echo = 0,
                            const std::string& dataset = std::string());

  /// Fire a streaming k-NN sweep request (one KnnResult per query follows;
  /// pull them with NextSweepItem).
  Status StartKnnSweep(const QueryRequest& request);

  /// Pull the next sweep item. Sets *done (and returns an empty response)
  /// when the terminator arrives. Acknowledges each item as it is consumed.
  Result<KnnResponse> NextSweepItem(bool* done);

  /// Highest response sequence processed so far (what a Reconnect offers).
  std::uint64_t last_seq_seen() const { return last_seq_seen_; }

  /// The handshake result of the most recent Connect/Reconnect.
  const HelloAckMessage& hello() const { return hello_; }

  /// The most recent kError response (valid after a call failed with a
  /// server-reported error; the saturation test reads code/retry_after_ms).
  const ErrorResponse& last_error() const { return last_error_; }

 private:
  explicit Client(Options options);

  /// Create the socket and connect (no handshake).
  Status Dial();

  /// Send Hello and read the HelloAck.
  Status Handshake();

  /// Send a request frame numbered with the next request sequence; the
  /// assigned sequence is stored in *seq_out.
  Status SendRequest(MessageType type, std::vector<std::uint8_t> payload,
                     std::uint64_t* seq_out);

  /// Read frames until a response for `request_seq` arrives; sequenced
  /// frames are deduplicated and acked. A kError response for this request
  /// is stored in last_error_ and surfaced as a Status.
  Result<Frame> AwaitResponse(std::uint64_t request_seq);

  /// Ack `seq` to let the server drop its backlog up to it.
  void SendAck(std::uint64_t seq);

  Options options_;
  int fd_ = -1;
  std::uint64_t next_request_seq_ = 1;
  std::uint64_t last_seq_seen_ = 0;
  std::uint64_t sweep_request_seq_ = 0;  ///< Nonzero while a sweep streams.
  HelloAckMessage hello_;
  ErrorResponse last_error_;
};

}  // namespace uts::server

#endif  // UTS_SERVER_CLIENT_HPP_
