#include "server/server.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

namespace uts::server {

namespace {

WireError ToWireError(const Status& status) {
  switch (status.code()) {
    case StatusCode::kInvalidArgument:
      return WireError::kBadRequest;
    case StatusCode::kNotFound:
      return WireError::kNotFound;
    case StatusCode::kNotSupported:
      return WireError::kUnavailable;
    default:
      return WireError::kInternal;
  }
}

bool IsRequestType(MessageType type) {
  switch (type) {
    case MessageType::kPing:
    case MessageType::kListDatasets:
    case MessageType::kBindDataset:
    case MessageType::kKnn:
    case MessageType::kRange:
    case MessageType::kPrq:
    case MessageType::kMeasureSweep:
    case MessageType::kKnnSweep:
      return true;
    default:
      return false;
  }
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)), service_(options_.service) {}

Result<std::unique_ptr<Server>> Server::Start(ServerOptions options) {
  std::unique_ptr<Server> server(new Server(std::move(options)));
  UTS_RETURN_NOT_OK(server->Listen());
  server->accept_thread_ = std::thread([raw = server.get()] {
    raw->AcceptLoop();
  });
  server->dispatch_thread_ = std::thread([raw = server.get()] {
    raw->DispatchLoop();
  });
  return server;
}

Server::~Server() { Stop(); }

Status Server::Listen() {
  if (!options_.unix_socket_path.empty()) {
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (options_.unix_socket_path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("unix socket path too long: " +
                                     options_.unix_socket_path);
    }
    std::strncpy(addr.sun_path, options_.unix_socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(options_.unix_socket_path.c_str());
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return Status::IOError("socket(AF_UNIX) failed");
    }
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return Status::IOError("bind failed for " + options_.unix_socket_path);
    }
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return Status::IOError("socket(AF_INET) failed");
    }
    int reuse = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(options_.tcp_port);
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return Status::IOError("bind failed for 127.0.0.1:" +
                             std::to_string(options_.tcp_port));
    }
    sockaddr_in bound;
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &bound_len) == 0) {
      tcp_port_ = ntohs(bound.sin_port);
    }
  }
  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("listen failed");
  }
  return Status::OK();
}

void Server::Stop() {
  if (stopping_.exchange(true)) {
    return;
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (int fd : live_fds_) {
      ::shutdown(fd, SHUT_RDWR);
    }
  }
  queue_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (dispatch_thread_.joinable()) dispatch_thread_.join();
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    readers.swap(connection_threads_);
  }
  for (std::thread& thread : readers) {
    if (thread.joinable()) thread.join();
  }
  if (!options_.unix_socket_path.empty()) {
    ::unlink(options_.unix_socket_path.c_str());
  }
}

Server::Stats Server::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void Server::AcceptLoop() {
  while (!stopping_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) break;
      if (errno == EINTR) continue;
      break;  // Listener is gone; nothing left to accept.
    }
    std::lock_guard<std::mutex> lock(connections_mutex_);
    if (stopping_.load()) {
      ::close(fd);
      break;
    }
    live_fds_.insert(fd);
    {
      std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      ++stats_.connections;
    }
    connection_threads_.emplace_back([this, fd] { HandleConnection(fd); });
  }
}

std::shared_ptr<Session> Server::AttachSession(int fd,
                                               const HelloMessage& hello,
                                               Session::AttachResult* result) {
  std::shared_ptr<Session> session;
  bool resumed = false;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    auto it = sessions_.find(hello.client_token);
    if (it != sessions_.end() && !it->second->poisoned()) {
      session = it->second;
      resumed = true;
    } else {
      session = std::make_shared<Session>(hello.client_token,
                                          options_.max_backlog_frames);
      sessions_[hello.client_token] = session;
    }
  }
  // A fresh session ignores the client's stale sequence state.
  *result = session->Attach(fd, resumed ? hello.last_seq_seen : 0, resumed);
  if (result->poisoned) {
    // Lost the race with a concurrent overflow: hand out a clean session.
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    session = std::make_shared<Session>(hello.client_token,
                                        options_.max_backlog_frames);
    sessions_[hello.client_token] = session;
    *result = session->Attach(fd, 0, false);
  }
  return session;
}

void Server::HandleConnection(int fd) {
  std::shared_ptr<Session> session;
  while (!stopping_.load()) {
    Result<Frame> frame_or = ReadFrame(fd);
    if (!frame_or.ok()) break;  // EOF, corrupt frame, or shutdown.
    Frame frame = std::move(frame_or).ValueOrDie();
    const auto type = static_cast<MessageType>(frame.header.type);

    if (session == nullptr) {
      // First frame must be the handshake.
      if (type != MessageType::kHello) break;
      Result<HelloMessage> hello = HelloMessage::Decode(frame.payload);
      if (!hello.ok()) break;
      Session::AttachResult attach;
      session = AttachSession(fd, hello.ValueOrDie(), &attach);
      continue;
    }

    if (type == MessageType::kAck) {
      Result<AckMessage> ack = AckMessage::Decode(frame.payload);
      if (ack.ok()) {
        session->HandleAck(ack.ValueOrDie().acked_seq);
      }
      continue;
    }

    if (!IsRequestType(type)) {
      continue;  // Unknown but well-framed traffic: ignore, stay compatible.
    }

    WorkItem item;
    item.session = session;
    item.type = type;
    item.request_seq = frame.header.sequence;
    item.payload = std::move(frame.payload);
    if (TryEnqueue(std::move(item))) {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.admitted;
    } else {
      // Admission control: reject now, unsequenced (the request never
      // entered the response stream, so it must not consume a sequence).
      ErrorResponse error;
      error.request_seq = frame.header.sequence;
      error.code = WireError::kSaturated;
      error.retry_after_ms = options_.retry_after_ms;
      error.message = "admission queue full";
      session->SendControl(static_cast<std::uint8_t>(MessageType::kError),
                           error.Encode());
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.rejected;
    }
  }
  if (session != nullptr) {
    session->Detach(fd);
  }
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    live_fds_.erase(fd);
  }
  ::close(fd);
}

bool Server::TryEnqueue(WorkItem item) {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  if (queue_.size() >= options_.queue_depth) {
    return false;
  }
  queue_.push_back(std::move(item));
  queue_cv_.notify_one();
  return true;
}

void Server::DispatchLoop() {
  while (true) {
    WorkItem item;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock,
                     [this] { return stopping_.load() || !queue_.empty(); });
      if (stopping_.load()) return;
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    Execute(item);
  }
}

void Server::DeliverError(Session& session, std::uint64_t request_seq,
                          const Status& status) {
  ErrorResponse error;
  error.request_seq = request_seq;
  error.code = ToWireError(status);
  error.message = status.message();
  session.Deliver(static_cast<std::uint8_t>(MessageType::kError),
                  error.Encode());
}

void Server::Execute(WorkItem& item) {
  Session& session = *item.session;
  const std::uint64_t seq = item.request_seq;
  switch (item.type) {
    case MessageType::kPing: {
      Result<PingRequest> request_or = PingRequest::Decode(item.payload);
      if (!request_or.ok()) {
        DeliverError(session, seq, request_or.status());
        return;
      }
      const PingRequest& request = request_or.ValueOrDie();
      if (request.delay_ms > 0) {
        // Test hook: stall the dispatcher to make saturation reproducible.
        std::this_thread::sleep_for(
            std::chrono::milliseconds(request.delay_ms));
      }
      PongResponse response;
      response.request_seq = seq;
      response.echo = request.echo;
      session.Deliver(static_cast<std::uint8_t>(MessageType::kPong),
                      response.Encode());
      return;
    }
    case MessageType::kListDatasets: {
      DatasetListResponse response = service_.List(seq);
      session.Deliver(static_cast<std::uint8_t>(MessageType::kDatasetList),
                      response.Encode());
      return;
    }
    case MessageType::kBindDataset: {
      Result<BindDatasetRequest> request_or =
          BindDatasetRequest::Decode(item.payload);
      if (!request_or.ok()) {
        DeliverError(session, seq, request_or.status());
        return;
      }
      Result<BindOkResponse> response = service_.Bind(request_or.ValueOrDie(), seq);
      if (!response.ok()) {
        DeliverError(session, seq, response.status());
        return;
      }
      session.Deliver(static_cast<std::uint8_t>(MessageType::kBindOk),
                      response.ValueOrDie().Encode());
      return;
    }
    case MessageType::kKnn: {
      Result<QueryRequest> request_or = QueryRequest::Decode(item.payload);
      if (!request_or.ok()) {
        DeliverError(session, seq, request_or.status());
        return;
      }
      Result<KnnResponse> response = service_.Knn(request_or.ValueOrDie(), seq);
      if (!response.ok()) {
        DeliverError(session, seq, response.status());
        return;
      }
      session.Deliver(static_cast<std::uint8_t>(MessageType::kKnnResult),
                      response.ValueOrDie().Encode());
      return;
    }
    case MessageType::kRange:
    case MessageType::kPrq: {
      Result<QueryRequest> request_or = QueryRequest::Decode(item.payload);
      if (!request_or.ok()) {
        DeliverError(session, seq, request_or.status());
        return;
      }
      Result<IndexListResponse> response =
          item.type == MessageType::kRange
              ? service_.Range(request_or.ValueOrDie(), seq)
              : service_.Prq(request_or.ValueOrDie(), seq);
      if (!response.ok()) {
        DeliverError(session, seq, response.status());
        return;
      }
      const auto type = item.type == MessageType::kRange
                            ? MessageType::kRangeResult
                            : MessageType::kPrqResult;
      session.Deliver(static_cast<std::uint8_t>(type),
                      response.ValueOrDie().Encode());
      return;
    }
    case MessageType::kMeasureSweep: {
      Result<QueryRequest> request_or = QueryRequest::Decode(item.payload);
      if (!request_or.ok()) {
        DeliverError(session, seq, request_or.status());
        return;
      }
      Result<SweepResponse> response =
          service_.MeasureSweep(request_or.ValueOrDie(), seq);
      if (!response.ok()) {
        DeliverError(session, seq, response.status());
        return;
      }
      session.Deliver(static_cast<std::uint8_t>(MessageType::kSweepResult),
                      response.ValueOrDie().Encode());
      return;
    }
    case MessageType::kKnnSweep: {
      Result<QueryRequest> request_or = QueryRequest::Decode(item.payload);
      if (!request_or.ok()) {
        DeliverError(session, seq, request_or.status());
        return;
      }
      const QueryRequest& request = request_or.ValueOrDie();
      // Stream one sequenced KnnResult per query so the sweep is resumable
      // mid-flight: finished items sit in the session backlog, and a
      // reconnecting client replays only what it has not acked.
      QueryRequest single = request;
      std::uint32_t completed = 0;
      for (std::uint32_t q = request.query;
           q < request.query + request.num_queries; ++q) {
        if (stopping_.load()) return;
        single.query = q;
        Result<KnnResponse> response = service_.Knn(single, seq);
        if (!response.ok()) {
          DeliverError(session, seq, response.status());
          return;
        }
        service_.NoteSweepItem();
        session.Deliver(static_cast<std::uint8_t>(MessageType::kKnnResult),
                        response.ValueOrDie().Encode());
        ++completed;
      }
      KnnSweepDoneResponse done;
      done.request_seq = seq;
      done.num_items = completed;
      session.Deliver(static_cast<std::uint8_t>(MessageType::kKnnSweepDone),
                      done.Encode());
      return;
    }
    default:
      DeliverError(session, seq,
                   Status::InvalidArgument("unhandled request type"));
      return;
  }
}

}  // namespace uts::server
