#include "server/server.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

namespace uts::server {

namespace {

WireError ToWireError(const Status& status) {
  switch (status.code()) {
    case StatusCode::kInvalidArgument:
      return WireError::kBadRequest;
    case StatusCode::kNotFound:
      return WireError::kNotFound;
    case StatusCode::kNotSupported:
      return WireError::kUnavailable;
    default:
      return WireError::kInternal;
  }
}

bool IsRequestType(MessageType type) {
  switch (type) {
    case MessageType::kPing:
    case MessageType::kListDatasets:
    case MessageType::kBindDataset:
    case MessageType::kKnn:
    case MessageType::kRange:
    case MessageType::kPrq:
    case MessageType::kMeasureSweep:
    case MessageType::kKnnSweep:
      return true;
    default:
      return false;
  }
}

}  // namespace

Server::Server(ServerOptions options) : options_(std::move(options)) {}

Result<std::unique_ptr<Server>> Server::Start(ServerOptions options) {
  std::unique_ptr<Server> server(new Server(std::move(options)));
  ServerOptions& resolved = server->options_;
  // Resolve the worker width once so a shared pool and every shard context
  // agree on it (EngineContext resolves 0 the same way).
  if (resolved.service.threads == 0) {
    resolved.service.threads =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  if (resolved.pool_policy == PoolPolicy::kShared &&
      resolved.service.threads > 1) {
    server->shared_pool_ =
        std::make_unique<exec::ThreadPool>(resolved.service.threads);
    resolved.service.shared_pool = server->shared_pool_.get();
  }
  UTS_RETURN_NOT_OK(server->Listen());
  server->ShardFor(std::string());  // The control shard exists from startup.
  server->accept_thread_ = std::thread([raw = server.get()] {
    raw->AcceptLoop();
  });
  return server;
}

Server::~Server() { Stop(); }

Status Server::Listen() {
  if (!options_.unix_socket_path.empty()) {
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (options_.unix_socket_path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("unix socket path too long: " +
                                     options_.unix_socket_path);
    }
    std::strncpy(addr.sun_path, options_.unix_socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(options_.unix_socket_path.c_str());
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return Status::IOError("socket(AF_UNIX) failed");
    }
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return Status::IOError("bind failed for " + options_.unix_socket_path);
    }
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return Status::IOError("socket(AF_INET) failed");
    }
    int reuse = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(options_.tcp_port);
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return Status::IOError("bind failed for 127.0.0.1:" +
                             std::to_string(options_.tcp_port));
    }
    sockaddr_in bound;
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &bound_len) == 0) {
      tcp_port_ = ntohs(bound.sin_port);
    }
  }
  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("listen failed");
  }
  return Status::OK();
}

void Server::Stop() {
  if (stopping_.exchange(true)) {
    return;
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (int fd : live_fds_) {
      ::shutdown(fd, SHUT_RDWR);
    }
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // Collect the shards under the lock: ShardFor refuses to create new ones
  // once stopping_ is set (checked under the same lock), so this snapshot
  // is complete and every dispatcher gets joined exactly once.
  std::vector<Shard*> shards;
  {
    std::lock_guard<std::mutex> lock(shards_mutex_);
    shards.reserve(shards_.size());
    for (auto& entry : shards_) shards.push_back(entry.second.get());
  }
  for (Shard* shard : shards) {
    {
      std::lock_guard<std::mutex> lock(shard->queue_mutex);
    }
    shard->queue_cv.notify_all();
  }
  for (Shard* shard : shards) {
    if (shard->dispatcher.joinable()) shard->dispatcher.join();
  }
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    readers.swap(connection_threads_);
  }
  for (std::thread& thread : readers) {
    if (thread.joinable()) thread.join();
  }
  if (!options_.unix_socket_path.empty()) {
    ::unlink(options_.unix_socket_path.c_str());
  }
}

Server::Stats Server::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

Service* Server::shard_service(const std::string& dataset) {
  std::lock_guard<std::mutex> lock(shards_mutex_);
  auto it = shards_.find(dataset);
  return it == shards_.end() ? nullptr : it->second->service.get();
}

Server::ShardStats Server::shard_stats(const std::string& dataset) const {
  std::lock_guard<std::mutex> lock(shards_mutex_);
  auto it = shards_.find(dataset);
  if (it == shards_.end()) return ShardStats{};
  std::lock_guard<std::mutex> stats_lock(it->second->stats_mutex);
  return it->second->stats;
}

std::size_t Server::shard_count() const {
  std::lock_guard<std::mutex> lock(shards_mutex_);
  return shards_.size();
}

void Server::AcceptLoop() {
  while (!stopping_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) break;
      if (errno == EINTR) continue;
      break;  // Listener is gone; nothing left to accept.
    }
    std::lock_guard<std::mutex> lock(connections_mutex_);
    if (stopping_.load()) {
      ::close(fd);
      break;
    }
    live_fds_.insert(fd);
    {
      std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      ++stats_.connections;
    }
    connection_threads_.emplace_back([this, fd] { HandleConnection(fd); });
  }
}

std::shared_ptr<Session> Server::AttachSession(int fd,
                                               const HelloMessage& hello,
                                               Session::AttachResult* result) {
  std::shared_ptr<Session> session;
  bool resumed = false;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    auto it = sessions_.find(hello.client_token);
    if (it != sessions_.end() && !it->second->poisoned()) {
      session = it->second;
      resumed = true;
    } else {
      session = std::make_shared<Session>(hello.client_token,
                                          options_.max_backlog_frames,
                                          options_.send_timeout_ms);
      sessions_[hello.client_token] = session;
    }
  }
  // A fresh session ignores the client's stale sequence state.
  *result = session->Attach(fd, resumed ? hello.last_seq_seen : 0, resumed);
  if (result->poisoned) {
    // Lost the race with a concurrent overflow: hand out a clean session.
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    session = std::make_shared<Session>(hello.client_token,
                                        options_.max_backlog_frames,
                                        options_.send_timeout_ms);
    sessions_[hello.client_token] = session;
    *result = session->Attach(fd, 0, false);
  }
  return session;
}

Server::Shard& Server::ShardFor(const std::string& key) {
  std::lock_guard<std::mutex> lock(shards_mutex_);
  auto it = shards_.find(key);
  if (it != shards_.end()) {
    return *it->second;
  }
  if (stopping_.load()) {
    // Too late to start a dispatcher Stop() would miss; the control shard
    // exists from startup and its (already finished) queue absorbs the
    // request harmlessly.
    return *shards_.at(std::string());
  }
  auto shard = std::make_unique<Shard>();
  shard->key = key;
  shard->service = std::make_unique<Service>(options_.service);
  Shard* raw = shard.get();
  shards_[key] = std::move(shard);
  raw->dispatcher = std::thread([this, raw] { DispatchLoop(*raw); });
  return *raw;
}

Server::Shard& Server::RouteShard(MessageType type, const std::string& key) {
  if (key.empty()) {
    return ShardFor(std::string());
  }
  if (type == MessageType::kBindDataset) {
    // Binds create their dataset's shard on demand.
    return ShardFor(key);
  }
  {
    std::lock_guard<std::mutex> lock(shards_mutex_);
    auto it = shards_.find(key);
    if (it != shards_.end()) {
      return *it->second;
    }
  }
  // Unknown dataset: the control shard's empty Service produces the
  // authoritative NotFound without minting a shard per typo.
  return ShardFor(std::string());
}

void Server::HandleConnection(int fd) {
  std::shared_ptr<Session> session;
  while (!stopping_.load()) {
    Result<Frame> frame_or = ReadFrame(fd);
    if (!frame_or.ok()) break;  // EOF, corrupt frame, or shutdown.
    Frame frame = std::move(frame_or).ValueOrDie();
    const auto type = static_cast<MessageType>(frame.header.type);

    if (session == nullptr) {
      // First frame must be the handshake.
      if (type != MessageType::kHello) break;
      Result<HelloMessage> hello = HelloMessage::Decode(frame.payload);
      if (!hello.ok()) break;
      Session::AttachResult attach;
      session = AttachSession(fd, hello.ValueOrDie(), &attach);
      continue;
    }

    if (type == MessageType::kAck) {
      Result<AckMessage> ack = AckMessage::Decode(frame.payload);
      if (ack.ok()) {
        session->HandleAck(ack.ValueOrDie().acked_seq);
      }
      continue;
    }

    if (!IsRequestType(type)) {
      continue;  // Unknown but well-framed traffic: ignore, stay compatible.
    }

    Shard& shard = RouteShard(type, ShardKeyOf(type, frame.payload));
    WorkItem item;
    item.session = session;
    item.type = type;
    item.request_seq = frame.header.sequence;
    item.payload = std::move(frame.payload);
    if (!TryEnqueue(shard, std::move(item))) {
      // Admission control: reject now, unsequenced (the request never
      // entered the response stream, so it must not consume a sequence).
      // Count before sending, so a client that observes the rejection can
      // never read a counter that has not seen it yet.
      {
        std::lock_guard<std::mutex> lock(shard.stats_mutex);
        ++shard.stats.rejected;
      }
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.rejected;
      }
      ErrorResponse error;
      error.request_seq = frame.header.sequence;
      error.code = WireError::kSaturated;
      error.retry_after_ms = options_.retry_after_ms;
      error.message = "admission queue full";
      session->SendControl(static_cast<std::uint8_t>(MessageType::kError),
                           error.Encode());
    }
  }
  if (session != nullptr) {
    session->Detach(fd);
  }
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    live_fds_.erase(fd);
  }
  ::close(fd);
}

bool Server::TryEnqueue(Shard& shard, WorkItem item) {
  std::lock_guard<std::mutex> lock(shard.queue_mutex);
  if (shard.queue.size() >= options_.queue_depth) {
    return false;
  }
  if (options_.global_queue_depth > 0) {
    // Cross-shard budget: claim a slot atomically; the shard dispatcher
    // releases it when the item leaves the queue.
    if (queued_total_.fetch_add(1) >= options_.global_queue_depth) {
      queued_total_.fetch_sub(1);
      return false;
    }
  }
  // Count before the push makes the item visible: a response can reach the
  // client the instant the dispatcher sees the queue, and the admission
  // counters must never lag a client-visible outcome.
  {
    std::lock_guard<std::mutex> stats_lock(shard.stats_mutex);
    ++shard.stats.admitted;
  }
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.admitted;
  }
  shard.queue.push_back(std::move(item));
  shard.queue_cv.notify_one();
  return true;
}

void Server::DispatchLoop(Shard& shard) {
  while (true) {
    WorkItem item;
    {
      std::unique_lock<std::mutex> lock(shard.queue_mutex);
      shard.queue_cv.wait(lock, [this, &shard] {
        return stopping_.load() || !shard.queue.empty();
      });
      if (stopping_.load()) return;
      item = std::move(shard.queue.front());
      shard.queue.pop_front();
    }
    if (options_.global_queue_depth > 0) {
      queued_total_.fetch_sub(1);
    }
    {
      std::lock_guard<std::mutex> lock(shard.stats_mutex);
      ++shard.stats.dispatched;
    }
    Execute(shard, item);
    std::lock_guard<std::mutex> lock(shard.stats_mutex);
    ++shard.stats.completed;
  }
}

void Server::DeliverError(Session& session, std::uint64_t request_seq,
                          const Status& status) {
  ErrorResponse error;
  error.request_seq = request_seq;
  error.code = ToWireError(status);
  error.message = status.message();
  session.Deliver(static_cast<std::uint8_t>(MessageType::kError),
                  error.Encode(), request_seq);
}

void Server::Execute(Shard& shard, WorkItem& item) {
  Session& session = *item.session;
  Service& service = *shard.service;
  const std::uint64_t seq = item.request_seq;
  switch (item.type) {
    case MessageType::kPing: {
      Result<PingRequest> request_or = PingRequest::Decode(item.payload);
      if (!request_or.ok()) {
        DeliverError(session, seq, request_or.status());
        return;
      }
      const PingRequest& request = request_or.ValueOrDie();
      if (request.delay_ms > 0) {
        // Test hook: stall this shard's dispatcher to make saturation and
        // cross-shard independence reproducible.
        std::this_thread::sleep_for(
            std::chrono::milliseconds(request.delay_ms));
      }
      PongResponse response;
      response.request_seq = seq;
      response.echo = request.echo;
      session.Deliver(static_cast<std::uint8_t>(MessageType::kPong),
                      response.Encode(), seq);
      return;
    }
    case MessageType::kListDatasets: {
      // Aggregated across shards, not asked of this shard's context: each
      // shard only knows its own residents.
      DatasetListResponse response;
      response.request_seq = seq;
      {
        std::lock_guard<std::mutex> lock(bound_names_mutex_);
        response.names.assign(bound_names_.begin(), bound_names_.end());
      }
      session.Deliver(static_cast<std::uint8_t>(MessageType::kDatasetList),
                      response.Encode(), seq);
      return;
    }
    case MessageType::kBindDataset: {
      Result<BindDatasetRequest> request_or =
          BindDatasetRequest::Decode(item.payload);
      if (!request_or.ok()) {
        DeliverError(session, seq, request_or.status());
        return;
      }
      Result<BindOkResponse> response = service.Bind(request_or.ValueOrDie(), seq);
      if (!response.ok()) {
        DeliverError(session, seq, response.status());
        return;
      }
      {
        std::lock_guard<std::mutex> lock(bound_names_mutex_);
        bound_names_.insert(response.ValueOrDie().name);
      }
      session.Deliver(static_cast<std::uint8_t>(MessageType::kBindOk),
                      response.ValueOrDie().Encode(), seq);
      return;
    }
    case MessageType::kKnn: {
      Result<QueryRequest> request_or = QueryRequest::Decode(item.payload);
      if (!request_or.ok()) {
        DeliverError(session, seq, request_or.status());
        return;
      }
      Result<KnnResponse> response = service.Knn(request_or.ValueOrDie(), seq);
      if (!response.ok()) {
        DeliverError(session, seq, response.status());
        return;
      }
      session.Deliver(static_cast<std::uint8_t>(MessageType::kKnnResult),
                      response.ValueOrDie().Encode(), seq);
      return;
    }
    case MessageType::kRange:
    case MessageType::kPrq: {
      Result<QueryRequest> request_or = QueryRequest::Decode(item.payload);
      if (!request_or.ok()) {
        DeliverError(session, seq, request_or.status());
        return;
      }
      Result<IndexListResponse> response =
          item.type == MessageType::kRange
              ? service.Range(request_or.ValueOrDie(), seq)
              : service.Prq(request_or.ValueOrDie(), seq);
      if (!response.ok()) {
        DeliverError(session, seq, response.status());
        return;
      }
      const auto type = item.type == MessageType::kRange
                            ? MessageType::kRangeResult
                            : MessageType::kPrqResult;
      session.Deliver(static_cast<std::uint8_t>(type),
                      response.ValueOrDie().Encode(), seq);
      return;
    }
    case MessageType::kMeasureSweep: {
      Result<QueryRequest> request_or = QueryRequest::Decode(item.payload);
      if (!request_or.ok()) {
        DeliverError(session, seq, request_or.status());
        return;
      }
      Result<SweepResponse> response =
          service.MeasureSweep(request_or.ValueOrDie(), seq);
      if (!response.ok()) {
        DeliverError(session, seq, response.status());
        return;
      }
      session.Deliver(static_cast<std::uint8_t>(MessageType::kSweepResult),
                      response.ValueOrDie().Encode(), seq);
      return;
    }
    case MessageType::kKnnSweep: {
      Result<QueryRequest> request_or = QueryRequest::Decode(item.payload);
      if (!request_or.ok()) {
        DeliverError(session, seq, request_or.status());
        return;
      }
      const QueryRequest& request = request_or.ValueOrDie();
      // Stream one sequenced KnnResult per query so the sweep is resumable
      // mid-flight: finished items sit in the session backlog, and a
      // reconnecting client replays only what it has not acked.
      QueryRequest single = request;
      std::uint32_t completed = 0;
      for (std::uint32_t q = request.query;
           q < request.query + request.num_queries; ++q) {
        if (stopping_.load()) return;
        single.query = q;
        Result<KnnResponse> response = service.Knn(single, seq);
        if (!response.ok()) {
          DeliverError(session, seq, response.status());
          return;
        }
        service.NoteSweepItem();
        session.Deliver(static_cast<std::uint8_t>(MessageType::kKnnResult),
                        response.ValueOrDie().Encode(), seq);
        ++completed;
      }
      KnnSweepDoneResponse done;
      done.request_seq = seq;
      done.num_items = completed;
      session.Deliver(static_cast<std::uint8_t>(MessageType::kKnnSweepDone),
                      done.Encode(), seq);
      return;
    }
    default:
      DeliverError(session, seq,
                   Status::InvalidArgument("unhandled request type"));
      return;
  }
}

}  // namespace uts::server
