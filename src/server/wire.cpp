#include "server/wire.hpp"

#include <cstring>

namespace uts::server {

// ---------------------------------------------------------------------------
// Payload codec
// ---------------------------------------------------------------------------

void PayloadWriter::U32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void PayloadWriter::U64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void PayloadWriter::F64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void PayloadWriter::Str(const std::string& s) {
  U32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void PayloadWriter::F64Vec(const std::vector<double>& v) {
  U32(static_cast<std::uint32_t>(v.size()));
  for (double x : v) F64(x);
}

Result<std::uint8_t> PayloadReader::U8() {
  if (pos_ + 1 > data_.size()) return Status::Corruption("payload truncated");
  return data_[pos_++];
}

Result<std::uint32_t> PayloadReader::U32() {
  if (pos_ + 4 > data_.size()) return Status::Corruption("payload truncated");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<std::uint64_t> PayloadReader::U64() {
  if (pos_ + 8 > data_.size()) return Status::Corruption("payload truncated");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<double> PayloadReader::F64() {
  UTS_ASSIGN_OR_RETURN(std::uint64_t bits, U64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> PayloadReader::Str() {
  UTS_ASSIGN_OR_RETURN(std::uint32_t size, U32());
  if (pos_ + size > data_.size()) return Status::Corruption("payload truncated");
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), size);
  pos_ += size;
  return s;
}

Result<std::vector<double>> PayloadReader::F64Vec() {
  UTS_ASSIGN_OR_RETURN(std::uint32_t size, U32());
  // 8 bytes per element must still fit in the remaining payload.
  if (pos_ + static_cast<std::size_t>(size) * 8 > data_.size()) {
    return Status::Corruption("payload truncated");
  }
  std::vector<double> v(size);
  for (std::uint32_t i = 0; i < size; ++i) {
    v[i] = F64().ValueOrDie();
  }
  return v;
}

// ---------------------------------------------------------------------------
// Control messages
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> HelloMessage::Encode() const {
  PayloadWriter w;
  w.U64(client_token);
  w.U64(last_seq_seen);
  return w.Take();
}

Result<HelloMessage> HelloMessage::Decode(
    std::span<const std::uint8_t> payload) {
  PayloadReader r(payload);
  HelloMessage m;
  UTS_ASSIGN_OR_RETURN(m.client_token, r.U64());
  UTS_ASSIGN_OR_RETURN(m.last_seq_seen, r.U64());
  return m;
}

std::vector<std::uint8_t> HelloAckMessage::Encode() const {
  PayloadWriter w;
  w.U8(resumed);
  w.U64(replayed);
  w.U64(server_seq);
  return w.Take();
}

Result<HelloAckMessage> HelloAckMessage::Decode(
    std::span<const std::uint8_t> payload) {
  PayloadReader r(payload);
  HelloAckMessage m;
  UTS_ASSIGN_OR_RETURN(m.resumed, r.U8());
  UTS_ASSIGN_OR_RETURN(m.replayed, r.U64());
  UTS_ASSIGN_OR_RETURN(m.server_seq, r.U64());
  return m;
}

std::vector<std::uint8_t> AckMessage::Encode() const {
  PayloadWriter w;
  w.U64(acked_seq);
  return w.Take();
}

Result<AckMessage> AckMessage::Decode(std::span<const std::uint8_t> payload) {
  PayloadReader r(payload);
  AckMessage m;
  UTS_ASSIGN_OR_RETURN(m.acked_seq, r.U64());
  return m;
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> PingRequest::Encode() const {
  PayloadWriter w;
  w.U32(delay_ms);
  w.U64(echo);
  w.Str(dataset);
  return w.Take();
}

Result<PingRequest> PingRequest::Decode(std::span<const std::uint8_t> payload) {
  PayloadReader r(payload);
  PingRequest m;
  UTS_ASSIGN_OR_RETURN(m.delay_ms, r.U32());
  UTS_ASSIGN_OR_RETURN(m.echo, r.U64());
  UTS_ASSIGN_OR_RETURN(m.dataset, r.Str());
  return m;
}

std::vector<std::uint8_t> BindDatasetRequest::Encode() const {
  PayloadWriter w;
  w.Str(name);
  w.U8(static_cast<std::uint8_t>(kind));
  w.F64(sigma);
  w.U8(mixed_sigma);
  w.U64(seed);
  w.U32(samples_per_point);
  w.U32(static_cast<std::uint32_t>(series.size()));
  for (std::size_t i = 0; i < series.size(); ++i) {
    w.U32(static_cast<std::uint32_t>(
        i < labels.size() ? labels[i] : -1));
    w.F64Vec(series[i]);
  }
  return w.Take();
}

Result<BindDatasetRequest> BindDatasetRequest::Decode(
    std::span<const std::uint8_t> payload) {
  PayloadReader r(payload);
  BindDatasetRequest m;
  UTS_ASSIGN_OR_RETURN(m.name, r.Str());
  UTS_ASSIGN_OR_RETURN(std::uint8_t kind, r.U8());
  if (kind > static_cast<std::uint8_t>(WireErrorKind::kExponential)) {
    return Status::Corruption("bind request: unknown error kind");
  }
  m.kind = static_cast<WireErrorKind>(kind);
  UTS_ASSIGN_OR_RETURN(m.sigma, r.F64());
  UTS_ASSIGN_OR_RETURN(m.mixed_sigma, r.U8());
  UTS_ASSIGN_OR_RETURN(m.seed, r.U64());
  UTS_ASSIGN_OR_RETURN(m.samples_per_point, r.U32());
  UTS_ASSIGN_OR_RETURN(std::uint32_t count, r.U32());
  m.series.reserve(count);
  m.labels.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    UTS_ASSIGN_OR_RETURN(std::uint32_t label, r.U32());
    m.labels.push_back(static_cast<std::int32_t>(label));
    UTS_ASSIGN_OR_RETURN(std::vector<double> values, r.F64Vec());
    m.series.push_back(std::move(values));
  }
  return m;
}

std::vector<std::uint8_t> QueryRequest::Encode() const {
  PayloadWriter w;
  w.Str(dataset);
  w.U8(static_cast<std::uint8_t>(measure));
  w.U32(query);
  w.U32(k);
  w.F64(epsilon);
  w.F64(tau);
  w.U32(num_queries);
  return w.Take();
}

Result<QueryRequest> QueryRequest::Decode(
    std::span<const std::uint8_t> payload) {
  PayloadReader r(payload);
  QueryRequest m;
  UTS_ASSIGN_OR_RETURN(m.dataset, r.Str());
  UTS_ASSIGN_OR_RETURN(std::uint8_t measure, r.U8());
  if (measure > static_cast<std::uint8_t>(WireMeasure::kMunich)) {
    return Status::Corruption("query request: unknown measure");
  }
  m.measure = static_cast<WireMeasure>(measure);
  UTS_ASSIGN_OR_RETURN(m.query, r.U32());
  UTS_ASSIGN_OR_RETURN(m.k, r.U32());
  UTS_ASSIGN_OR_RETURN(m.epsilon, r.F64());
  UTS_ASSIGN_OR_RETURN(m.tau, r.F64());
  UTS_ASSIGN_OR_RETURN(m.num_queries, r.U32());
  return m;
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

WireSearchCost WireSearchCost::From(const index::SearchCost& cost) {
  WireSearchCost wire;
  wire.candidates_total = cost.candidates_total;
  wire.candidates_touched = cost.candidates_touched;
  wire.pruned_lower_bound = cost.pruned_lower_bound;
  wire.abandoned_early = cost.abandoned_early;
  return wire;
}

void WireSearchCost::EncodeTo(PayloadWriter& writer) const {
  writer.U64(candidates_total);
  writer.U64(candidates_touched);
  writer.U64(pruned_lower_bound);
  writer.U64(abandoned_early);
}

Result<WireSearchCost> WireSearchCost::DecodeFrom(PayloadReader& reader) {
  WireSearchCost cost;
  UTS_ASSIGN_OR_RETURN(cost.candidates_total, reader.U64());
  UTS_ASSIGN_OR_RETURN(cost.candidates_touched, reader.U64());
  UTS_ASSIGN_OR_RETURN(cost.pruned_lower_bound, reader.U64());
  UTS_ASSIGN_OR_RETURN(cost.abandoned_early, reader.U64());
  return cost;
}

std::vector<std::uint8_t> PongResponse::Encode() const {
  PayloadWriter w;
  w.U64(request_seq);
  w.U64(echo);
  return w.Take();
}

Result<PongResponse> PongResponse::Decode(
    std::span<const std::uint8_t> payload) {
  PayloadReader r(payload);
  PongResponse m;
  UTS_ASSIGN_OR_RETURN(m.request_seq, r.U64());
  UTS_ASSIGN_OR_RETURN(m.echo, r.U64());
  return m;
}

std::vector<std::uint8_t> DatasetListResponse::Encode() const {
  PayloadWriter w;
  w.U64(request_seq);
  w.U32(static_cast<std::uint32_t>(names.size()));
  for (const std::string& name : names) w.Str(name);
  return w.Take();
}

Result<DatasetListResponse> DatasetListResponse::Decode(
    std::span<const std::uint8_t> payload) {
  PayloadReader r(payload);
  DatasetListResponse m;
  UTS_ASSIGN_OR_RETURN(m.request_seq, r.U64());
  UTS_ASSIGN_OR_RETURN(std::uint32_t count, r.U32());
  m.names.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    UTS_ASSIGN_OR_RETURN(std::string name, r.Str());
    m.names.push_back(std::move(name));
  }
  return m;
}

std::vector<std::uint8_t> BindOkResponse::Encode() const {
  PayloadWriter w;
  w.U64(request_seq);
  w.Str(name);
  w.U32(num_series);
  w.U32(length);
  return w.Take();
}

Result<BindOkResponse> BindOkResponse::Decode(
    std::span<const std::uint8_t> payload) {
  PayloadReader r(payload);
  BindOkResponse m;
  UTS_ASSIGN_OR_RETURN(m.request_seq, r.U64());
  UTS_ASSIGN_OR_RETURN(m.name, r.Str());
  UTS_ASSIGN_OR_RETURN(m.num_series, r.U32());
  UTS_ASSIGN_OR_RETURN(m.length, r.U32());
  return m;
}

std::vector<std::uint8_t> KnnResponse::Encode() const {
  PayloadWriter w;
  w.U64(request_seq);
  w.U32(query);
  w.U32(static_cast<std::uint32_t>(neighbors.size()));
  for (const auto& nb : neighbors) {
    w.U32(static_cast<std::uint32_t>(nb.index));
    w.F64(nb.distance);
  }
  cost.EncodeTo(w);
  return w.Take();
}

Result<KnnResponse> KnnResponse::Decode(
    std::span<const std::uint8_t> payload) {
  PayloadReader r(payload);
  KnnResponse m;
  UTS_ASSIGN_OR_RETURN(m.request_seq, r.U64());
  UTS_ASSIGN_OR_RETURN(m.query, r.U32());
  UTS_ASSIGN_OR_RETURN(std::uint32_t count, r.U32());
  m.neighbors.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    query::Neighbor nb;
    UTS_ASSIGN_OR_RETURN(std::uint32_t index, r.U32());
    nb.index = index;
    UTS_ASSIGN_OR_RETURN(nb.distance, r.F64());
    m.neighbors.push_back(nb);
  }
  UTS_ASSIGN_OR_RETURN(m.cost, WireSearchCost::DecodeFrom(r));
  return m;
}

std::vector<std::uint8_t> IndexListResponse::Encode() const {
  PayloadWriter w;
  w.U64(request_seq);
  w.U32(static_cast<std::uint32_t>(indices.size()));
  for (std::uint64_t index : indices) w.U64(index);
  cost.EncodeTo(w);
  return w.Take();
}

Result<IndexListResponse> IndexListResponse::Decode(
    std::span<const std::uint8_t> payload) {
  PayloadReader r(payload);
  IndexListResponse m;
  UTS_ASSIGN_OR_RETURN(m.request_seq, r.U64());
  UTS_ASSIGN_OR_RETURN(std::uint32_t count, r.U32());
  m.indices.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    UTS_ASSIGN_OR_RETURN(std::uint64_t index, r.U64());
    m.indices.push_back(index);
  }
  UTS_ASSIGN_OR_RETURN(m.cost, WireSearchCost::DecodeFrom(r));
  return m;
}

std::vector<std::uint8_t> SweepResponse::Encode() const {
  PayloadWriter w;
  w.U64(request_seq);
  w.F64Vec(values);
  return w.Take();
}

Result<SweepResponse> SweepResponse::Decode(
    std::span<const std::uint8_t> payload) {
  PayloadReader r(payload);
  SweepResponse m;
  UTS_ASSIGN_OR_RETURN(m.request_seq, r.U64());
  UTS_ASSIGN_OR_RETURN(m.values, r.F64Vec());
  return m;
}

std::vector<std::uint8_t> KnnSweepDoneResponse::Encode() const {
  PayloadWriter w;
  w.U64(request_seq);
  w.U32(num_items);
  return w.Take();
}

Result<KnnSweepDoneResponse> KnnSweepDoneResponse::Decode(
    std::span<const std::uint8_t> payload) {
  PayloadReader r(payload);
  KnnSweepDoneResponse m;
  UTS_ASSIGN_OR_RETURN(m.request_seq, r.U64());
  UTS_ASSIGN_OR_RETURN(m.num_items, r.U32());
  return m;
}

std::vector<std::uint8_t> ErrorResponse::Encode() const {
  PayloadWriter w;
  w.U64(request_seq);
  w.U32(static_cast<std::uint32_t>(code));
  w.U32(retry_after_ms);
  w.Str(message);
  return w.Take();
}

Result<ErrorResponse> ErrorResponse::Decode(
    std::span<const std::uint8_t> payload) {
  PayloadReader r(payload);
  ErrorResponse m;
  UTS_ASSIGN_OR_RETURN(m.request_seq, r.U64());
  UTS_ASSIGN_OR_RETURN(std::uint32_t code, r.U32());
  if (code < 1 || code > 5) {
    return Status::Corruption("error response: unknown code");
  }
  m.code = static_cast<WireError>(code);
  UTS_ASSIGN_OR_RETURN(m.retry_after_ms, r.U32());
  UTS_ASSIGN_OR_RETURN(m.message, r.Str());
  return m;
}

}  // namespace uts::server
