#include "server/frame.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

namespace uts::server {

namespace {

void PutU16(std::uint8_t* out, std::uint16_t v) {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
}

void PutU32(std::uint8_t* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void PutU64(std::uint8_t* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint16_t GetU16(const std::uint8_t* in) {
  return static_cast<std::uint16_t>(in[0] | (in[1] << 8));
}

std::uint32_t GetU32(const std::uint8_t* in) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(in[i]) << (8 * i);
  return v;
}

std::uint64_t GetU64(const std::uint8_t* in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  return v;
}

/// Blocking full-buffer send; MSG_NOSIGNAL so a dead peer surfaces as EPIPE
/// instead of killing the process.
Status SendAll(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_SNDTIMEO expired: the peer stopped reading. Callers treat the
        // connection as dead and keep the frame buffered for replay.
        return Status::IOError("send: timed out (peer not reading)");
      }
      return Status::IOError(std::string("send: ") + std::strerror(errno));
    }
    if (n == 0) return Status::IOError("send: connection closed");
    sent += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

/// Blocking full-buffer read; IOError with a distinguishable message on
/// clean EOF so connection loops can exit quietly.
Status RecvAll(int fd, std::uint8_t* data, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd, data + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) return Status::IOError("connection closed");
    got += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

}  // namespace

std::uint32_t Checksum(std::span<const std::uint8_t> payload) {
  // FNV-1a over the bytes, 64-bit state folded to 32 by xor of the halves.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint8_t byte : payload) {
    h ^= byte;
    h *= 0x100000001b3ULL;
  }
  return static_cast<std::uint32_t>(h ^ (h >> 32));
}

void EncodeFrameHeader(const FrameHeader& header, std::uint8_t* out) {
  PutU32(out + 0, FrameHeader::kMagic);
  out[4] = FrameHeader::kVersion;
  out[5] = header.type;
  PutU16(out + 6, header.flags);
  PutU64(out + 8, header.sequence);
  PutU32(out + 16, header.payload_size);
  PutU32(out + 20, header.payload_checksum);
}

Result<FrameHeader> DecodeFrameHeader(const std::uint8_t* in) {
  if (GetU32(in + 0) != FrameHeader::kMagic) {
    return Status::Corruption("frame header: bad magic");
  }
  if (in[4] != FrameHeader::kVersion) {
    return Status::Corruption("frame header: unsupported version " +
                              std::to_string(static_cast<int>(in[4])));
  }
  FrameHeader header;
  header.type = in[5];
  header.flags = GetU16(in + 6);
  header.sequence = GetU64(in + 8);
  header.payload_size = GetU32(in + 16);
  header.payload_checksum = GetU32(in + 20);
  if (header.payload_size > FrameHeader::kMaxPayloadSize) {
    return Status::Corruption("frame header: payload size " +
                              std::to_string(header.payload_size) +
                              " exceeds the protocol maximum");
  }
  return header;
}

Result<Frame> MakeFrame(std::uint8_t type, std::uint64_t sequence,
                        std::vector<std::uint8_t> payload) {
  if (payload.size() > FrameHeader::kMaxPayloadSize) {
    return Status::InvalidArgument(
        "frame payload of " + std::to_string(payload.size()) +
        " bytes exceeds the protocol maximum of " +
        std::to_string(FrameHeader::kMaxPayloadSize));
  }
  Frame frame;
  frame.header.type = type;
  frame.header.sequence = sequence;
  frame.header.payload_size = static_cast<std::uint32_t>(payload.size());
  frame.header.payload_checksum = Checksum(payload);
  frame.payload = std::move(payload);
  return frame;
}

Status WriteFrame(int fd, const Frame& frame) {
  // Refuse before any byte hits the socket: a header whose size field lies
  // about the payload (truncated cast, stale hand-built frame) would
  // desynchronize every later frame on the connection.
  if (frame.payload.size() > FrameHeader::kMaxPayloadSize ||
      frame.header.payload_size != frame.payload.size()) {
    return Status::InvalidArgument(
        "frame header declares " + std::to_string(frame.header.payload_size) +
        " payload bytes but the payload holds " +
        std::to_string(frame.payload.size()));
  }
  std::uint8_t header[kFrameHeaderSize];
  EncodeFrameHeader(frame.header, header);
  UTS_RETURN_NOT_OK(SendAll(fd, header, kFrameHeaderSize));
  if (!frame.payload.empty()) {
    UTS_RETURN_NOT_OK(SendAll(fd, frame.payload.data(), frame.payload.size()));
  }
  return Status::OK();
}

Result<Frame> ReadFrame(int fd) {
  std::uint8_t raw[kFrameHeaderSize];
  UTS_RETURN_NOT_OK(RecvAll(fd, raw, kFrameHeaderSize));
  UTS_ASSIGN_OR_RETURN(FrameHeader header, DecodeFrameHeader(raw));
  Frame frame;
  frame.header = header;
  frame.payload.resize(header.payload_size);
  if (header.payload_size > 0) {
    UTS_RETURN_NOT_OK(RecvAll(fd, frame.payload.data(), frame.payload.size()));
  }
  if (Checksum(frame.payload) != header.payload_checksum) {
    return Status::Corruption("frame payload: checksum mismatch");
  }
  return frame;
}

}  // namespace uts::server
