#include "server/session.hpp"

#include <sys/socket.h>
#include <sys/time.h>

#include <utility>

#include "server/wire.hpp"

namespace uts::server {

Session::Session(std::uint64_t token, std::size_t max_backlog_frames,
                 std::uint32_t send_timeout_ms)
    : token_(token),
      max_backlog_frames_(max_backlog_frames),
      send_timeout_ms_(send_timeout_ms) {}

Session::AttachResult Session::Attach(int fd, std::uint64_t last_seq_seen,
                                      bool resumed) {
  std::lock_guard<std::mutex> lock(mutex_);
  AttachResult result;
  result.server_seq = next_seq_ - 1;
  if (poisoned_) {
    result.poisoned = true;
    return result;
  }
  // Bound every write on this connection: a peer that stops draining its
  // receive buffer must stall at most one timeout, never the delivering
  // dispatcher forever (frames stay in the backlog for the next Attach).
  if (send_timeout_ms_ > 0) {
    timeval tv;
    tv.tv_sec = send_timeout_ms_ / 1000;
    tv.tv_usec = static_cast<suseconds_t>(send_timeout_ms_ % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  // The client's cumulative receipt doubles as an ack.
  while (!backlog_.empty() && backlog_.front().header.sequence <= last_seq_seen) {
    backlog_.pop_front();
  }
  fd_ = fd;
  write_ok_ = true;
  result.replayed = backlog_.size();
  // HelloAck first, then the retained tail, all under the lock: a response
  // delivered concurrently can never overtake a replayed frame.
  HelloAckMessage ack;
  ack.resumed = resumed ? 1 : 0;
  ack.replayed = result.replayed;
  ack.server_seq = result.server_seq;
  TryWriteLocked(
      MakeFrame(static_cast<std::uint8_t>(MessageType::kHelloAck), 0,
                ack.Encode())
          .ValueOrDie());
  for (const Frame& frame : backlog_) {
    if (!write_ok_) break;
    TryWriteLocked(frame);
  }
  return result;
}

void Session::Detach(int fd) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Only the connection that owns the live fd detaches it; a stale closer
  // racing a newer Attach must not tear down the new connection.
  if (fd_ == fd) {
    fd_ = -1;
    write_ok_ = false;
  }
}

std::uint64_t Session::Deliver(std::uint8_t type,
                               std::vector<std::uint8_t> payload,
                               std::uint64_t request_seq) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (poisoned_) return 0;
  if (backlog_.size() >= max_backlog_frames_) {
    // A client that stopped acking long ago: stop buffering on its behalf.
    poisoned_ = true;
    backlog_.clear();
    return 0;
  }
  if (payload.size() > FrameHeader::kMaxPayloadSize) {
    // The response cannot travel; answer with a sequenced error so the
    // client is not left waiting on a frame that can never be framed.
    ErrorResponse error;
    error.request_seq = request_seq;
    error.code = WireError::kInternal;
    error.message = "response payload of " + std::to_string(payload.size()) +
                    " bytes exceeds the frame-size cap";
    type = static_cast<std::uint8_t>(MessageType::kError);
    payload = error.Encode();
  }
  const std::uint64_t seq = next_seq_++;
  backlog_.push_back(MakeFrame(type, seq, std::move(payload)).ValueOrDie());
  TryWriteLocked(backlog_.back());
  return seq;
}

void Session::SendControl(std::uint8_t type, std::vector<std::uint8_t> payload) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0 || !write_ok_) return;
  Result<Frame> frame = MakeFrame(type, 0, std::move(payload));
  if (!frame.ok()) return;  // Control payloads are tiny; cannot happen.
  TryWriteLocked(frame.ValueOrDie());
}

void Session::HandleAck(std::uint64_t acked_seq) {
  std::lock_guard<std::mutex> lock(mutex_);
  while (!backlog_.empty() && backlog_.front().header.sequence <= acked_seq) {
    backlog_.pop_front();
  }
}

std::size_t Session::BacklogSize() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return backlog_.size();
}

bool Session::poisoned() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return poisoned_;
}

void Session::TryWriteLocked(const Frame& frame) {
  if (fd_ < 0 || !write_ok_) return;
  if (!WriteFrame(fd_, frame).ok()) {
    // Peer is gone or stopped reading (send timeout); keep the frame
    // buffered and wait for the reconnect.
    write_ok_ = false;
  }
}

}  // namespace uts::server
