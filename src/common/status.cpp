#include "common/status.hpp"

namespace uts {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNumericError:
      return "NumericError";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out{StatusCodeName(code_)};
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace uts
