/// \file result.hpp
/// \brief `Result<T>` — a value or a non-OK `Status` (pre-C++23 `expected`).

#ifndef UTS_COMMON_RESULT_HPP_
#define UTS_COMMON_RESULT_HPP_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.hpp"

namespace uts {

/// \brief Holds either a successfully produced `T` or the `Status` explaining
/// why none could be produced.
///
/// ```
/// Result<Dataset> r = LoadUcrFile(path);
/// if (!r.ok()) return r.status();
/// Dataset d = std::move(r).ValueOrDie();
/// ```
template <typename T>
class Result {
 public:
  /// Implicit success construction from a value.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}

  /// Implicit failure construction from a non-OK status.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "use Result(T) for the success case");
  }

  /// True iff a value is present.
  bool ok() const { return status_.ok(); }

  /// The status (OK when a value is present).
  const Status& status() const { return status_; }

  /// Borrow the value; precondition: ok().
  const T& ValueOrDie() const& {
    assert(ok());
    return *value_;
  }
  T& ValueOrDie() & {
    assert(ok());
    return *value_;
  }
  /// Move the value out; precondition: ok().
  T ValueOrDie() && {
    assert(ok());
    return std::move(*value_);
  }

  /// The value if present, otherwise `fallback`.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// \brief Propagate failure from a `Result<T>` expression, binding the value
/// into `lhs` on success.
#define UTS_ASSIGN_OR_RETURN(lhs, expr)            \
  auto UTS_CONCAT_(_res_, __LINE__) = (expr);      \
  if (!UTS_CONCAT_(_res_, __LINE__).ok())          \
    return UTS_CONCAT_(_res_, __LINE__).status();  \
  lhs = std::move(UTS_CONCAT_(_res_, __LINE__)).ValueOrDie()

#define UTS_CONCAT_INNER_(a, b) a##b
#define UTS_CONCAT_(a, b) UTS_CONCAT_INNER_(a, b)

}  // namespace uts

#endif  // UTS_COMMON_RESULT_HPP_
