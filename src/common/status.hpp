/// \file status.hpp
/// \brief RocksDB-style operation status for fallible library calls.
///
/// The library does not throw exceptions across its API boundary. Functions
/// that can fail for data-dependent reasons (bad input files, degenerate
/// configurations, numerical breakdown) return a `Status`, or a `Result<T>`
/// when they also produce a value. Programmer errors (out-of-range indices,
/// violated preconditions documented on the API) are guarded with `assert`.

#ifndef UTS_COMMON_STATUS_HPP_
#define UTS_COMMON_STATUS_HPP_

#include <cassert>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace uts {

/// \brief Coarse error taxonomy, modeled after RocksDB's Status codes.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,  ///< Caller-supplied parameter is unusable.
  kNotFound,         ///< Named entity (dataset, file, column) does not exist.
  kIOError,          ///< Filesystem or stream failure.
  kCorruption,       ///< Input data violates its advertised format.
  kNotSupported,     ///< Valid request outside the implemented feature set.
  kOutOfRange,       ///< Value outside the domain of a numeric routine.
  kNumericError,     ///< Floating-point breakdown (NaN, non-convergence).
};

/// \brief Human-readable name of a status code ("OK", "InvalidArgument", ...).
std::string_view StatusCodeName(StatusCode code);

/// \brief The outcome of a fallible operation: a code plus optional message.
///
/// `Status` is cheap to copy for the OK case (empty message) and carries a
/// diagnostic string otherwise. Use the static factories:
///
/// ```
/// if (n == 0) return Status::InvalidArgument("series must be non-empty");
/// ```
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// \name Factories
  /// \{
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NumericError(std::string msg) {
    return Status(StatusCode::kNumericError, std::move(msg));
  }
  /// \}

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The error class of this status.
  StatusCode code() const { return code_; }

  /// The diagnostic message (empty for OK).
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Two statuses compare equal when code and message match.
  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }
  friend bool operator!=(const Status& a, const Status& b) { return !(a == b); }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// \brief Propagate a non-OK status to the caller.
#define UTS_RETURN_NOT_OK(expr)                 \
  do {                                          \
    ::uts::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                  \
  } while (false)

}  // namespace uts

#endif  // UTS_COMMON_STATUS_HPP_
