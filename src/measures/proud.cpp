#include "measures/proud.hpp"

#include <cassert>
#include <cmath>

#include "prob/special.hpp"

namespace uts::measures {

ProudStats Proud::DistanceStats(std::span<const double> x_obs,
                                std::span<const double> y_obs) const {
  assert(x_obs.size() == y_obs.size());
  // D_i = μ_i + E_i with E_i = e_x − e_y ~ N(0, 2σ²) in the constant-σ,
  // normal-error model PROUD assumes. For normal E:
  //   E[D²]   = μ² + v
  //   Var[D²] = 2v² + 4μ²v,            v = 2σ².
  const double v = 2.0 * options_.sigma * options_.sigma;
  ProudStats stats;
  for (std::size_t i = 0; i < x_obs.size(); ++i) {
    const double mu = x_obs[i] - y_obs[i];
    const double mu2 = mu * mu;
    stats.mean_sq += mu2 + v;
    stats.var_sq += 2.0 * v * v + 4.0 * mu2 * v;
  }
  return stats;
}

double Proud::ProbabilityFromStats(const ProudStats& stats, double epsilon) {
  if (stats.var_sq <= 0.0) {
    // Degenerate (σ = 0): the distance is deterministic.
    return stats.mean_sq <= epsilon * epsilon ? 1.0 : 0.0;
  }
  const double eps_norm =
      (epsilon * epsilon - stats.mean_sq) / std::sqrt(stats.var_sq);
  return prob::NormalCdf(eps_norm);
}

bool Proud::DecideFromStats(const ProudStats& stats, double epsilon,
                            double tau) {
  if (stats.var_sq <= 0.0) return stats.mean_sq <= epsilon * epsilon;
  const double eps_norm =
      (epsilon * epsilon - stats.mean_sq) / std::sqrt(stats.var_sq);
  return eps_norm >= prob::NormalQuantile(tau);
}

double Proud::MatchProbability(std::span<const double> x_obs,
                               std::span<const double> y_obs,
                               double epsilon) const {
  return ProbabilityFromStats(DistanceStats(x_obs, y_obs), epsilon);
}

bool Proud::Matches(std::span<const double> x_obs,
                    std::span<const double> y_obs, double epsilon) const {
  return DecideFromStats(DistanceStats(x_obs, y_obs), epsilon, options_.tau);
}

double Proud::EpsilonLimit() const {
  return prob::NormalQuantile(options_.tau);
}

ProudStats Proud::DistanceStatsGeneral(const uncertain::UncertainSeries& x,
                                       const uncertain::UncertainSeries& y) {
  assert(x.size() == y.size());
  ProudStats stats;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const auto& ex = *x.error(i);
    const auto& ey = *y.error(i);
    const double mu = x.observation(i) - y.observation(i);
    // Central moments of E = e_x - e_y (independent, both zero-mean):
    //   m2 = m2x + m2y
    //   m3 = m3x - m3y
    //   m4 = m4x + 6 m2x m2y + m4y
    const double m2x = ex.CentralMoment(2), m2y = ey.CentralMoment(2);
    const double m3x = ex.CentralMoment(3), m3y = ey.CentralMoment(3);
    const double m4x = ex.CentralMoment(4), m4y = ey.CentralMoment(4);
    const double m2 = m2x + m2y;
    const double m3 = m3x - m3y;
    const double m4 = m4x + 6.0 * m2x * m2y + m4y;

    const double mean_d2 = mu * mu + m2;
    const double mean_d4 = mu * mu * mu * mu + 6.0 * mu * mu * m2 +
                           4.0 * mu * m3 + m4;
    stats.mean_sq += mean_d2;
    stats.var_sq += mean_d4 - mean_d2 * mean_d2;
  }
  return stats;
}

double Proud::MatchProbabilityGeneral(const uncertain::UncertainSeries& x,
                                      const uncertain::UncertainSeries& y,
                                      double epsilon) {
  return ProbabilityFromStats(DistanceStatsGeneral(x, y), epsilon);
}

}  // namespace uts::measures
