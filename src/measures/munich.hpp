/// \file munich.hpp
/// \brief MUNICH — probabilistic similarity over repeated observations.
///
/// Reimplementation of Aßfalg, Kriegel, Kröger and Renz (SSDBM 2009) as
/// described in Section 2.1 of the paper (the method "was not explicitly
/// named in the original paper"; the survey calls it MUNICH).
///
/// Model: every timestamp of a series carries s repeated observations. The
/// series materializes to all possible certain sequences, and
///
///     dists(X, Y) = { Lp(x, y) | x ∈ TS_X, y ∈ TS_Y }              (Eq. 3)
///     Pr(distance(X,Y) ≤ ε) = |{d ∈ dists | d ≤ ε}| / |dists|      (Eq. 4)
///
/// "The naive computation of the result set is infeasible, because of the
/// very large space that leads to an exponential computational cost" — the
/// original paper copes with upper/lower bounds over minimal bounding
/// intervals. This implementation provides three exchangeable estimators:
///
///  * `kExact` — an exact counting algorithm. Because per-timestamp sample
///    choices are independent, Pr(Σ_i c_i ≤ ε²) with c_i uniform over the
///    per-timestamp squared-difference multiset can be counted by a
///    meet-in-the-middle enumeration: O(S^{n/2} log S^{n/2}) instead of
///    O(S^n), which makes the paper's Figure 4 configuration (s = 5, n = 6)
///    exactly computable.
///  * `kMonteCarlo` — unbiased sampling of materializations; works for any
///    length, used where the paper reports MUNICH is "orders of magnitude"
///    slower and only feasible on small inputs.
///  * bounding intervals — the original paper's filter: certain-match /
///    certain-reject decisions from interval distance bounds, applied before
///    either estimator ("no false dismissals").
///
/// Both the Euclidean and the DTW variants of the framework are provided
/// (Section 2.1: "This framework has been applied to Euclidean and Dynamic
/// Time Warping distances").

#ifndef UTS_MEASURES_MUNICH_HPP_
#define UTS_MEASURES_MUNICH_HPP_

#include <cstdint>
#include <span>

#include "common/result.hpp"
#include "distance/dtw.hpp"
#include "uncertain/uncertain_series.hpp"

namespace uts::measures {

/// \brief Lower/upper bounds on every materialized distance.
struct DistanceBounds {
  double lower = 0.0;
  double upper = 0.0;
};

/// \brief Configuration of the MUNICH matcher.
struct MunichOptions {
  enum class Estimator {
    kAuto,        ///< Exact when the half-enumeration fits, else Monte Carlo.
    kExact,       ///< Fail with NotSupported when too large.
    kMonteCarlo,  ///< Always sample.
  };

  Estimator estimator = Estimator::kAuto;

  /// Monte Carlo sample count (materializations drawn per pair).
  std::size_t mc_samples = 20000;

  /// Maximum number of enumerated sums per half for the exact estimator;
  /// the default (2^22) keeps a pair evaluation under ~1 s.
  std::size_t exact_half_limit = 1u << 22;

  /// Probability threshold τ of the PRQ query.
  double tau = 0.5;

  /// Skip the bounding-interval fast path (for ablation benchmarks).
  bool use_bounds_filter = true;
};

/// \brief The MUNICH probabilistic matcher.
class Munich {
 public:
  explicit Munich(MunichOptions options = {}) : options_(options) {}

  const MunichOptions& options() const { return options_; }

  /// Bounding-interval distance bounds (Euclidean): every materialized
  /// distance d satisfies lower ≤ d ≤ upper.
  static DistanceBounds EuclideanBounds(
      const uncertain::MultiSampleSeries& x,
      const uncertain::MultiSampleSeries& y);

  /// The same bounds from already-materialized per-timestamp intervals
  /// [x_lo[i], x_hi[i]] and [y_lo[i], y_hi[i]] — the arithmetic behind
  /// EuclideanBounds, exposed so query::UncertainEngine's precomputed
  /// interval columns produce bit-identical bounds without rescanning the
  /// samples.
  static DistanceBounds EuclideanBoundsFromIntervals(
      std::span<const double> x_lo, std::span<const double> x_hi,
      std::span<const double> y_lo, std::span<const double> y_hi);

  /// Bounding-interval bounds on the DTW distance of every materialization.
  static DistanceBounds DtwBounds(const uncertain::MultiSampleSeries& x,
                                  const uncertain::MultiSampleSeries& y,
                                  const distance::DtwOptions& dtw_options = {});

  /// Exact Pr(distance ≤ ε) by meet-in-the-middle counting. Fails with
  /// NotSupported when either half would enumerate more than `half_limit`
  /// sums.
  static Result<double> ExactMatchProbability(
      const uncertain::MultiSampleSeries& x,
      const uncertain::MultiSampleSeries& y, double epsilon,
      std::size_t half_limit = 1u << 22);

  /// Unbiased Monte Carlo estimate of Pr(distance ≤ ε) from `samples`
  /// uniformly drawn materializations.
  static double MonteCarloMatchProbability(
      const uncertain::MultiSampleSeries& x,
      const uncertain::MultiSampleSeries& y, double epsilon,
      std::size_t samples, std::uint64_t seed);

  /// Monte Carlo estimate of Pr(DTW ≤ ε) over materializations.
  static double MonteCarloDtwMatchProbability(
      const uncertain::MultiSampleSeries& x,
      const uncertain::MultiSampleSeries& y, double epsilon,
      std::size_t samples, std::uint64_t seed,
      const distance::DtwOptions& dtw_options = {});

  /// Pr(distance ≤ ε) via the configured estimator, with the bounds filter
  /// applied first when enabled. `seed` feeds the Monte Carlo path.
  Result<double> MatchProbability(const uncertain::MultiSampleSeries& x,
                                  const uncertain::MultiSampleSeries& y,
                                  double epsilon,
                                  std::uint64_t seed = 0x5eed) const;

  /// PRQ decision: Pr(distance ≤ ε) ≥ τ.
  Result<bool> Matches(const uncertain::MultiSampleSeries& x,
                       const uncertain::MultiSampleSeries& y, double epsilon,
                       std::uint64_t seed = 0x5eed) const;

  /// Number of materializations |TS_X| · |TS_Y| as a double (it overflows
  /// 64-bit integers already for moderate inputs — the paper's
  /// infeasibility argument).
  static double MaterializationCount(const uncertain::MultiSampleSeries& x,
                                     const uncertain::MultiSampleSeries& y);

 private:
  MunichOptions options_;
};

}  // namespace uts::measures

#endif  // UTS_MEASURES_MUNICH_HPP_
