#include "measures/dust.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "prob/integrate.hpp"
#include "prob/special.hpp"

namespace uts::measures {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Integration interval of the posterior-overlap integrand for a given Δ.
/// Returns {lo, hi}; an empty interval (lo >= hi) means φ(Δ) = 0.
///
/// The v-support of f_x(v | 0)   is [-hi_x, -lo_x]   (p_ex(0 - v) > 0),
/// the v-support of f_y(v | Δ)   is [Δ-hi_y, Δ-lo_y] (p_ey(Δ - v) > 0);
/// infinite endpoints clamp to ±`sigmas`·σ around the respective centers.
std::pair<double, double> IntegrationBounds(const prob::ErrorDistribution& ex,
                                            const prob::ErrorDistribution& ey,
                                            double delta, double sigmas,
                                            double prior_half_range) {
  const double clamp_x = sigmas * std::max(ex.stddev(), 1e-6);
  const double clamp_y = sigmas * std::max(ey.stddev(), 1e-6);

  double lo_x = -ex.SupportHi();
  double hi_x = -ex.SupportLo();
  if (lo_x == -kInf) lo_x = -clamp_x;
  if (hi_x == kInf) hi_x = clamp_x;

  double lo_y = delta - ey.SupportHi();
  double hi_y = delta - ey.SupportLo();
  if (lo_y == -kInf) lo_y = delta - clamp_y;
  if (hi_y == kInf) hi_y = delta + clamp_y;

  double lo = std::max(lo_x, lo_y);
  double hi = std::min(hi_x, hi_y);
  if (prior_half_range > 0.0) {
    lo = std::max(lo, -prior_half_range);
    hi = std::min(hi, prior_half_range);
  }
  return {lo, hi};
}

/// Numeric φ(Δ) = ∫ p_ex(-v) · p_ey(Δ - v) dv over the overlap interval,
/// optionally normalized by a finite uniform value prior.
Result<double> PhiNumeric(const prob::ErrorDistribution& ex,
                          const prob::ErrorDistribution& ey, double delta,
                          const DustOptions& options) {
  // A point-mass error on one side collapses the integral to a pdf lookup.
  const bool x_degenerate = ex.kind() == prob::ErrorKind::kNone;
  const bool y_degenerate = ey.kind() == prob::ErrorKind::kNone;
  if (x_degenerate && y_degenerate) {
    return Status::InvalidArgument(
        "DUST is undefined when both points are error-free");
  }
  if (x_degenerate) return ey.Pdf(delta);
  if (y_degenerate) return ex.Pdf(-delta);

  const auto [lo, hi] = IntegrationBounds(ex, ey, delta,
                                          options.integration_sigmas,
                                          options.value_prior_half_range);
  if (!(hi > lo)) return 0.0;

  auto integrand = [&](double v) { return ex.Pdf(-v) * ey.Pdf(delta - v); };
  // Purely relative tolerance: deep in the Gaussian tails φ values reach
  // 1e-25 and below, and DUST takes their logarithm, so any fixed absolute
  // tolerance would let the integrator accept a crude first estimate there
  // and bias dust(Δ) at large Δ. The integrand is nonnegative, so relative
  // control cannot stall on cancellation.
  prob::IntegrateOptions iopts;
  iopts.abs_tolerance = 0.0;
  iopts.rel_tolerance = 1e-9;
  iopts.max_depth = 44;
  auto result = prob::IntegrateAdaptiveSimpson(integrand, lo, hi, iopts);
  double phi;
  if (result.ok()) {
    phi = result.ValueOrDie();
  } else {
    // Kinked integrands (mixtures) can exhaust the adaptive depth; the
    // fixed-cost composite rule is a reliable fallback at table precision.
    phi = prob::IntegrateSimpson(integrand, lo, hi, 4096);
  }

  if (options.value_prior_half_range > 0.0) {
    // Finite uniform prior: normalize each posterior over the prior range
    // (the table is built for points centered in the range; see header).
    const double r = options.value_prior_half_range;
    auto zx = prob::IntegrateAdaptiveSimpson(
        [&](double v) { return ex.Pdf(-v); }, -r, r, iopts);
    auto zy = prob::IntegrateAdaptiveSimpson(
        [&](double v) { return ey.Pdf(delta - v); }, -r, r, iopts);
    if (!zx.ok() || !zy.ok()) {
      return Status::NumericError("prior normalization failed to converge");
    }
    const double z = zx.ValueOrDie() * zy.ValueOrDie();
    if (z <= 0.0) return 0.0;
    phi /= z;
  }
  return std::max(phi, 0.0);
}

}  // namespace

Result<DustTable> DustTable::Build(const prob::ErrorDistribution& ex,
                                   const prob::ErrorDistribution& ey,
                                   const DustOptions& options) {
  if (options.table_size < 2) {
    return Status::InvalidArgument("dust table needs at least 2 cells");
  }
  if (!(options.table_delta_max > 0.0)) {
    return Status::InvalidArgument("table_delta_max must be positive");
  }
  if (!(options.phi_floor > 0.0)) {
    return Status::InvalidArgument("phi_floor must be positive");
  }

  DustTable table;
  table.delta_max_ = options.table_delta_max;
  table.step_ =
      options.table_delta_max / static_cast<double>(options.table_size - 1);

  if (options.use_closed_form_normal &&
      ex.kind() == prob::ErrorKind::kNormal &&
      ey.kind() == prob::ErrorKind::kNormal) {
    const double var_sum = ex.stddev() * ex.stddev() +
                           ey.stddev() * ey.stddev();
    table.closed_form_ = true;
    table.gaussian_scale_ = 1.0 / std::sqrt(2.0 * var_sum);
    table.phi0_ = prob::NormalPdf(0.0, 0.0, std::sqrt(var_sum));
    return table;
  }

  auto phi0 = PhiNumeric(ex, ey, 0.0, options);
  if (!phi0.ok()) return phi0.status();
  if (!(phi0.ValueOrDie() > 0.0)) {
    return Status::NumericError("phi(0) evaluated to zero; error models "
                                "have no posterior overlap at delta = 0");
  }
  table.phi0_ = phi0.ValueOrDie();
  const double log_phi0 = std::log(table.phi0_);

  table.dust_values_.resize(options.table_size);
  table.phi_values_.resize(options.table_size);
  for (std::size_t i = 0; i < options.table_size; ++i) {
    const double delta = static_cast<double>(i) * table.step_;
    auto phi = PhiNumeric(ex, ey, delta, options);
    if (!phi.ok()) return phi.status();
    const double phi_val = phi.ValueOrDie();
    table.phi_values_[i] = phi_val;
    const double floored = std::max(phi_val, options.phi_floor);
    // max(0, ...) guards the tiny-Δ case where integration noise could
    // produce φ(Δ) marginally above φ(0).
    table.dust_values_[i] =
        std::sqrt(std::max(0.0, log_phi0 - std::log(floored)));
  }
  return table;
}

double DustTable::Phi(double delta) const {
  delta = std::fabs(delta);
  if (closed_form_) {
    const double d = delta * gaussian_scale_;
    return phi0_ * std::exp(-d * d);
  }
  if (delta >= delta_max_) return phi_values_.back();
  const double pos = delta / step_;
  const auto idx = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(idx);
  if (idx + 1 >= phi_values_.size()) return phi_values_.back();
  return phi_values_[idx] * (1.0 - frac) + phi_values_[idx + 1] * frac;
}

Result<const DustTable*> Dust::TableFor(const prob::ErrorDistribution& ex,
                                        const prob::ErrorDistribution& ey) {
  // DUST evaluates φ at |x - y|, implicitly assuming a symmetric treatment
  // of the two points; we canonicalize the pair ordering so dust(x, y) and
  // dust(y, x) share one table even for asymmetric (exponential) errors.
  std::string kx = ex.Key();
  std::string ky = ey.Key();
  const bool swap = kx > ky;
  if (swap) std::swap(kx, ky);
  const auto key = std::make_pair(std::move(kx), std::move(ky));

  auto it = cache_.find(key);
  if (it == cache_.end()) {
    auto built = swap ? DustTable::Build(ey, ex, options_)
                      : DustTable::Build(ex, ey, options_);
    if (!built.ok()) return built.status();
    it = cache_
             .emplace(key, std::make_unique<DustTable>(
                               std::move(built).ValueOrDie()))
             .first;
  }
  return it->second.get();
}

Result<const DustTable*> Dust::TableForFast(
    const prob::ErrorDistributionPtr& ex,
    const prob::ErrorDistributionPtr& ey) {
  const auto key = std::make_pair(static_cast<const void*>(ex.get()),
                                  static_cast<const void*>(ey.get()));
  auto it = fast_cache_.find(key);
  if (it != fast_cache_.end()) return it->second;
  auto table = TableFor(*ex, *ey);
  if (!table.ok()) return table.status();
  pinned_.emplace(ex.get(), ex);
  pinned_.emplace(ey.get(), ey);
  fast_cache_.emplace(key, table.ValueOrDie());
  return table.ValueOrDie();
}

Result<double> Dust::PointDust(double x_obs,
                               const prob::ErrorDistribution& ex,
                               double y_obs,
                               const prob::ErrorDistribution& ey) {
  auto table = TableFor(ex, ey);
  if (!table.ok()) return table.status();
  return table.ValueOrDie()->Dust(x_obs - y_obs);
}

Result<double> Dust::Distance(const uncertain::UncertainSeries& x,
                              const uncertain::UncertainSeries& y) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("series differ in length");
  }
  // Hot loop: consecutive points usually share their error models, so the
  // previous table is memoized ahead of the pointer-pair cache.
  const prob::ErrorDistribution* last_x = nullptr;
  const prob::ErrorDistribution* last_y = nullptr;
  const DustTable* table = nullptr;
  double sum = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const auto& ex = x.error(i);
    const auto& ey = y.error(i);
    if (ex.get() != last_x || ey.get() != last_y) {
      auto resolved = TableForFast(ex, ey);
      if (!resolved.ok()) return resolved.status();
      table = resolved.ValueOrDie();
      last_x = ex.get();
      last_y = ey.get();
    }
    const double v = table->Dust(x.observation(i) - y.observation(i));
    sum += v * v;
  }
  return std::sqrt(sum);
}

Result<double> Dust::DtwDistance(const uncertain::UncertainSeries& x,
                                 const uncertain::UncertainSeries& y,
                                 const distance::DtwOptions& dtw_options) {
  if (x.empty() || y.empty()) {
    return Status::InvalidArgument("series must be non-empty");
  }
  // Pre-resolve per-pair tables so the DP inner loop cannot fail.
  const std::size_t n = x.size();
  const std::size_t m = y.size();
  std::vector<const DustTable*> row_tables(n * m);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      auto table = TableForFast(x.error(i), y.error(j));
      if (!table.ok()) return table.status();
      row_tables[i * m + j] = table.ValueOrDie();
    }
  }
  const double total = distance::DtwGeneric(
      n, m,
      [&](std::size_t i, std::size_t j) {
        const double d = row_tables[i * m + j]->Dust(x.observation(i) -
                                                     y.observation(j));
        return d * d;
      },
      dtw_options);
  return std::sqrt(total);
}

Status Dust::Prewarm(const prob::ErrorDistributionPtr& ex,
                     const prob::ErrorDistributionPtr& ey) {
  auto table = TableFor(*ex, *ey);
  return table.ok() ? Status::OK() : table.status();
}

}  // namespace uts::measures
