/// \file dust.hpp
/// \brief DUST — a Dissimilarity measure for Uncertain time Series.
///
/// Reimplementation of Sarangi & Murthy (KDD 2010) as described in Section
/// 2.3 of the paper. For two uncertain values whose observations differ by
/// Δ = |x − y|, DUST defines the similarity
///
///     φ(Δ) = Pr( r(x) − r(y) = 0 | observed difference Δ )     (Eq. 12)
///
/// i.e. the likelihood density that the true values coincide. With the error
/// posteriors f_x(v | x) ∝ p_err(x − v)·p_value(v), this is the overlap
/// integral of the two posteriors:
///
///     φ(Δ) = ∫ f_x(v | 0) · f_y(v | Δ) dv
///
/// The per-point dissimilarity is
///
///     dust(x, y) = sqrt( −log φ(|x−y|) − k ),   k = −log φ(0)
///                = sqrt( log φ(0) − log φ(Δ) )
///
/// and the sequence distance is DUST(X,Y) = sqrt( Σ_i dust(x_i, y_i)² )
/// (Eq. 13). DUST is a plain (non-probabilistic) distance, so it plugs into
/// any certain-series mining algorithm, including DTW (Section 3.2).
///
/// Properties reproduced here and checked in tests:
///  * normal error (both points, std σx, σy) has the closed form
///    dust(Δ) = Δ / sqrt(2 (σx² + σy²)) — proportional to Euclidean, exactly
///    as the paper observes ("DUST is equivalent to the Euclidean distance,
///    in the case where the error ... follows the normal distribution");
///  * pure uniform error makes φ(Δ) = 0 for Δ beyond the support overlap, so
///    dust degenerates (logarithm of zero). This pathology is *preserved*
///    (saturating at a large finite value controlled by `phi_floor`) because
///    the paper measures its accuracy impact (Figure 5(b)); the documented
///    workaround is to report a `TailedUniform` error instead
///    (`ErrorSpec::WithTailedUniformReporting`).
///
/// Evaluation of φ is numeric (adaptive Simpson over the posterior overlap)
/// with results cached in per-error-pair lookup tables, mirroring "how the
/// DUST lookup tables are determined" in the original code (Section 4.2.1).

#ifndef UTS_MEASURES_DUST_HPP_
#define UTS_MEASURES_DUST_HPP_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.hpp"
#include "distance/batch.hpp"
#include "distance/dtw.hpp"
#include "prob/distribution.hpp"
#include "uncertain/uncertain_series.hpp"

namespace uts::measures {

/// \brief Configuration of the DUST distance.
struct DustOptions {
  /// Maximum observed difference Δ covered by the lookup table. Differences
  /// beyond it clamp to the last table cell. Z-normalized series perturbed
  /// with σ ≤ 2 rarely exceed |Δ| ≈ 12.
  double table_delta_max = 16.0;

  /// Number of table cells; linear interpolation between them.
  std::size_t table_size = 2048;

  /// Floor applied to φ before taking logarithms. Pure uniform error makes
  /// φ exactly zero beyond the support overlap; the floor converts the
  /// resulting +∞ into a large, constant "saturated" dissimilarity so that
  /// sequence distances stay finite and comparable (see file comment).
  double phi_floor = 1e-30;

  /// Use the closed-form Gaussian expression when both error models are
  /// normal (bypasses integration; bit-exact proportionality to Euclidean).
  bool use_closed_form_normal = true;

  /// Half-range of the numeric integration domain for unbounded error
  /// supports, in units of the combined standard deviation.
  double integration_sigmas = 10.0;

  /// Uniform value prior half-range R: the DUST paper "makes the assumption
  /// that this [value] distribution is uniform" (Section 4.1.1). A flat
  /// (improper) prior — the R → ∞ limit — makes φ depend on Δ only, which
  /// is what the lookup table requires; this is the default (R = 0 means
  /// flat). A finite R is accepted for sensitivity analysis; the table is
  /// then built for points centered in the range (documented approximation).
  double value_prior_half_range = 0.0;
};

/// \brief Precomputed dust(Δ) for one ordered pair of error distributions.
class DustTable {
 public:
  /// Build the table for points with error models `ex` and `ey`.
  static Result<DustTable> Build(const prob::ErrorDistribution& ex,
                                 const prob::ErrorDistribution& ey,
                                 const DustOptions& options);

  /// Interpolated dust value at observed difference Δ >= 0. Evaluates
  /// through the same distance::DustLut::Eval the batch kernels use, so the
  /// scalar and batched paths are bit-identical by construction.
  double Dust(double delta) const { return Lut().Eval(delta); }

  /// Borrowed immutable view for the batch kernels; valid while this table
  /// lives at its current address (tables are heap-pinned in Dust's cache
  /// and in UncertainEngine, both immutable after build).
  distance::DustLut Lut() const {
    distance::DustLut lut;
    if (closed_form_) {
      lut.scale = gaussian_scale_;
      return lut;
    }
    lut.values = dust_values_.data();
    lut.size = dust_values_.size();
    lut.step = step_;
    lut.delta_max = delta_max_;
    return lut;
  }

  /// Interpolated φ(Δ) (before flooring), for diagnostics and tests.
  double Phi(double delta) const;

  /// φ(0), the self-similarity peak used for the reflexivity constant k.
  double phi0() const { return phi0_; }

  /// True when built through the closed-form Gaussian path.
  bool closed_form() const { return closed_form_; }

 private:
  DustTable() = default;

  double delta_max_ = 0.0;
  double step_ = 0.0;
  double phi0_ = 0.0;
  double gaussian_scale_ = 0.0;  // closed-form: dust = Δ * gaussian_scale_
  bool closed_form_ = false;
  std::vector<double> dust_values_;
  std::vector<double> phi_values_;
};

/// \brief The DUST distance with a per-error-pair table cache.
///
/// Not thread-safe: the cache mutates on first use of each error pair.
/// Create one instance per thread, or pre-warm with `Prewarm`.
class Dust {
 public:
  explicit Dust(DustOptions options = {}) : options_(options) {}

  const DustOptions& options() const { return options_; }

  /// dust(x, y) between two uncertain points.
  Result<double> PointDust(double x_obs, const prob::ErrorDistribution& ex,
                           double y_obs, const prob::ErrorDistribution& ey);

  /// DUST(X, Y) = sqrt( Σ_i dust(x_i, y_i)² )   (Eq. 13).
  Result<double> Distance(const uncertain::UncertainSeries& x,
                          const uncertain::UncertainSeries& y);

  /// DTW with dust² as the local cost ("DUST can be employed to compute the
  /// Dynamic Time Warping distance", Section 3.2). Returns the square root
  /// of the accumulated cost, mirroring the L2-style DTW convention.
  Result<double> DtwDistance(const uncertain::UncertainSeries& x,
                             const uncertain::UncertainSeries& y,
                             const distance::DtwOptions& dtw_options = {});

  /// Build (and cache) the table for an error pair ahead of time.
  Status Prewarm(const prob::ErrorDistributionPtr& ex,
                 const prob::ErrorDistributionPtr& ey);

  /// The cached table of an error pair (building it on first use). The
  /// returned pointer is heap-pinned and stays valid for this instance's
  /// lifetime — the cache only ever grows — which lets a
  /// query::UncertainEngine borrow tables from a persistent Dust instance
  /// instead of re-running the numeric integration on every rebuild.
  Result<const DustTable*> Table(const prob::ErrorDistributionPtr& ex,
                                 const prob::ErrorDistributionPtr& ey) {
    return TableForFast(ex, ey);
  }

  /// Number of distinct tables currently cached.
  std::size_t CacheSize() const { return cache_.size(); }

 private:
  Result<const DustTable*> TableFor(const prob::ErrorDistribution& ex,
                                    const prob::ErrorDistribution& ey);

  /// Pointer-identity fast path over `TableFor`: avoids re-deriving the
  /// string keys on every point pair (the hot loop of Distance). The
  /// referenced distributions are pinned in `pinned_` so the pointer keys
  /// cannot dangle or be recycled.
  Result<const DustTable*> TableForFast(const prob::ErrorDistributionPtr& ex,
                                        const prob::ErrorDistributionPtr& ey);

  DustOptions options_;
  std::map<std::pair<std::string, std::string>, std::unique_ptr<DustTable>>
      cache_;
  std::map<std::pair<const void*, const void*>, const DustTable*> fast_cache_;
  std::map<const void*, prob::ErrorDistributionPtr> pinned_;
};

}  // namespace uts::measures

#endif  // UTS_MEASURES_DUST_HPP_
