/// \file proud.hpp
/// \brief PROUD — PRObabilistic queries over Uncertain Data streams.
///
/// Reimplementation of the technique of Yeh, Wu, Yu and Chen (EDBT 2009) as
/// described in Section 2.2 of the paper. The distance between two uncertain
/// series X, Y is the random variable
///
///     distance(X, Y) = Σ_i D_i²,        D_i = x_i − y_i            (Eq. 5)
///
/// which, by the central limit theorem, approaches
///
///     N( Σ_i E[D_i²],  Σ_i Var[D_i²] )                              (Eq. 7)
///
/// A candidate matches the probabilistic range query PRQ(Q, C, ε, τ) iff
///
///     ε_norm(X,Y) = (ε² − E[distance]) / sqrt(Var[distance]) ≥ Φ⁻¹(τ)
///                                                        (Eq. 8–11)
///
/// PROUD "requires to know the standard deviation of the uncertainty error,
/// and a single observed value for each timestamp" and "assumes that the
/// standard deviation of the uncertainty error remains constant across all
/// timestamps" (Section 3.1). The constant-σ mode below is therefore the
/// paper-faithful configuration; an exact per-point moment propagation is
/// also provided for analysis and tests.

#ifndef UTS_MEASURES_PROUD_HPP_
#define UTS_MEASURES_PROUD_HPP_

#include <span>

#include "common/result.hpp"
#include "prob/distribution.hpp"
#include "uncertain/uncertain_series.hpp"

namespace uts::measures {

/// \brief First two moments of the PROUD squared-distance statistic.
struct ProudStats {
  double mean_sq = 0.0;  ///< E[Σ D_i²]
  double var_sq = 0.0;   ///< Var[Σ D_i²]
};

/// \brief Configuration of the PROUD matcher.
struct ProudOptions {
  /// Probability threshold τ of the PRQ query.
  double tau = 0.9;

  /// The constant per-point error standard deviation PROUD is told. This is
  /// the technique's central modeling assumption; under the paper's mixed
  /// experiments (Figures 8–10) it deliberately mismatches the data.
  double sigma = 1.0;
};

/// \brief The PROUD probabilistic matcher.
class Proud {
 public:
  explicit Proud(ProudOptions options) : options_(options) {
    assert(options.tau > 0.0 && options.tau < 1.0);
    assert(options.sigma >= 0.0);
  }

  const ProudOptions& options() const { return options_; }

  /// Moments of Σ D_i² in the paper-faithful constant-σ model: each D_i is
  /// normal with mean (x_i − y_i) and variance 2σ² (both series carry
  /// independent error of standard deviation σ).
  ProudStats DistanceStats(std::span<const double> x_obs,
                           std::span<const double> y_obs) const;

  /// Pr(distance(X, Y) ≤ ε²) under the CLT normal approximation (Eq. 7).
  /// ε is a Euclidean-distance threshold; the square happens internally.
  double MatchProbability(std::span<const double> x_obs,
                          std::span<const double> y_obs, double epsilon) const;

  /// PRQ decision via the ε_norm ≥ ε_limit test (Eq. 10).
  bool Matches(std::span<const double> x_obs, std::span<const double> y_obs,
               double epsilon) const;

  /// ε_limit = Φ⁻¹(τ) (Eq. 8: the paper's "statistics tables" lookup).
  double EpsilonLimit() const;

  /// Exact moment propagation through arbitrary per-point error models:
  /// with E_i = e_x,i − e_y,i (independent, zero-mean),
  ///   E[D_i²]   = μ_i² + m2_i
  ///   E[D_i⁴]   = μ_i⁴ + 6 μ_i² m2_i + 4 μ_i m3_i + m4_i
  ///   Var[D_i²] = E[D_i⁴] − E[D_i²]²
  /// where the mk_i combine both series' central moments. This is what
  /// PROUD *could* do with full distribution knowledge; the library exposes
  /// it for the analytical comparison and for validating the constant-σ
  /// approximation in tests.
  static ProudStats DistanceStatsGeneral(const uncertain::UncertainSeries& x,
                                         const uncertain::UncertainSeries& y);

  /// Match probability using the general per-point moments.
  static double MatchProbabilityGeneral(const uncertain::UncertainSeries& x,
                                        const uncertain::UncertainSeries& y,
                                        double epsilon);

  /// Pr(distance ≤ ε) from already-accumulated moments — the single
  /// expression behind MatchProbability and MatchProbabilityGeneral, shared
  /// with the batched query::UncertainEngine sweeps so batch decisions are
  /// bit-identical to the scalar matcher.
  static double ProbabilityFromStats(const ProudStats& stats, double epsilon);

  /// The ε_norm ≥ Φ⁻¹(τ) PRQ decision (Eq. 10) from accumulated moments.
  static bool DecideFromStats(const ProudStats& stats, double epsilon,
                              double tau);

 private:
  ProudOptions options_;
};

}  // namespace uts::measures

#endif  // UTS_MEASURES_PROUD_HPP_
