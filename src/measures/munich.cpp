#include "measures/munich.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "prob/rng.hpp"

namespace uts::measures {

using uncertain::MultiSampleSeries;

namespace {

/// Per-timestamp interval gap and farthest-endpoint distance.
///
/// With bounding intervals [lx, ux] and [ly, uy]:
///   min pairwise |a-b| = gap  (0 when the intervals overlap),
///   max pairwise |a-b| = max(|ux - ly|, |uy - lx|).
struct IntervalDistance {
  double min_abs;
  double max_abs;
};

/// The single definition of the interval arithmetic, shared by the
/// sample-scanning and precomputed-column bounds paths so they stay
/// bit-identical.
IntervalDistance IntervalMinMax(double lx, double ux, double ly, double uy) {
  IntervalDistance d;
  if (ux < ly) {
    d.min_abs = ly - ux;
  } else if (uy < lx) {
    d.min_abs = lx - uy;
  } else {
    d.min_abs = 0.0;
  }
  d.max_abs = std::max(std::fabs(ux - ly), std::fabs(uy - lx));
  return d;
}

IntervalDistance IntervalDistanceAt(const MultiSampleSeries& x,
                                    const MultiSampleSeries& y,
                                    std::size_t i, std::size_t j) {
  const auto [lx, ux] = x.BoundingInterval(i);
  const auto [ly, uy] = y.BoundingInterval(j);
  return IntervalMinMax(lx, ux, ly, uy);
}

/// Squared differences of every sample pair at one timestamp.
std::vector<double> PairwiseSquaredDiffs(const std::vector<double>& xs,
                                         const std::vector<double>& ys) {
  std::vector<double> out;
  out.reserve(xs.size() * ys.size());
  for (double a : xs) {
    for (double b : ys) {
      const double d = a - b;
      out.push_back(d * d);
    }
  }
  return out;
}

/// Cross-sum of per-timestamp contribution sets over timestamps [lo, hi);
/// fails when the result would exceed `limit` sums.
Result<std::vector<double>> EnumerateHalf(const MultiSampleSeries& x,
                                          const MultiSampleSeries& y,
                                          std::size_t lo, std::size_t hi,
                                          std::size_t limit) {
  std::vector<double> sums{0.0};
  for (std::size_t i = lo; i < hi; ++i) {
    const std::vector<double> contrib =
        PairwiseSquaredDiffs(x.samples(i), y.samples(i));
    if (sums.size() > limit / std::max<std::size_t>(contrib.size(), 1)) {
      return Status::NotSupported(
          "exact MUNICH enumeration exceeds the configured half limit");
    }
    std::vector<double> next;
    next.reserve(sums.size() * contrib.size());
    for (double s : sums) {
      for (double c : contrib) next.push_back(s + c);
    }
    sums = std::move(next);
  }
  return sums;
}

Status ValidatePair(const MultiSampleSeries& x, const MultiSampleSeries& y) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("series differ in length");
  }
  if (x.empty()) return Status::InvalidArgument("series are empty");
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x.num_samples(i) == 0 || y.num_samples(i) == 0) {
      return Status::InvalidArgument("timestamp without observations");
    }
  }
  return Status::OK();
}

}  // namespace

DistanceBounds Munich::EuclideanBounds(const MultiSampleSeries& x,
                                       const MultiSampleSeries& y) {
  assert(x.size() == y.size());
  double lower_sq = 0.0;
  double upper_sq = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const IntervalDistance d = IntervalDistanceAt(x, y, i, i);
    lower_sq += d.min_abs * d.min_abs;
    upper_sq += d.max_abs * d.max_abs;
  }
  return {std::sqrt(lower_sq), std::sqrt(upper_sq)};
}

DistanceBounds Munich::EuclideanBoundsFromIntervals(
    std::span<const double> x_lo, std::span<const double> x_hi,
    std::span<const double> y_lo, std::span<const double> y_hi) {
  assert(x_lo.size() == x_hi.size() && x_lo.size() == y_lo.size() &&
         x_lo.size() == y_hi.size());
  double lower_sq = 0.0;
  double upper_sq = 0.0;
  for (std::size_t i = 0; i < x_lo.size(); ++i) {
    const IntervalDistance d =
        IntervalMinMax(x_lo[i], x_hi[i], y_lo[i], y_hi[i]);
    lower_sq += d.min_abs * d.min_abs;
    upper_sq += d.max_abs * d.max_abs;
  }
  return {std::sqrt(lower_sq), std::sqrt(upper_sq)};
}

DistanceBounds Munich::DtwBounds(const MultiSampleSeries& x,
                                 const MultiSampleSeries& y,
                                 const distance::DtwOptions& dtw_options) {
  assert(!x.empty() && !y.empty());
  // Lower bound: DTW over per-cell minimum squared interval distances. For
  // any materialization, its optimal path costs at least the min-cost of
  // the same cells, hence at least the min-cost DTW optimum.
  const double lower_sq = distance::DtwGeneric(
      x.size(), y.size(),
      [&](std::size_t i, std::size_t j) {
        const double d = IntervalDistanceAt(x, y, i, j).min_abs;
        return d * d;
      },
      dtw_options);
  // Upper bound: the min-cost path over per-cell maxima dominates every
  // materialization's optimum (the materialization can always use this
  // path, at per-cell cost no larger than the maximum).
  const double upper_sq = distance::DtwGeneric(
      x.size(), y.size(),
      [&](std::size_t i, std::size_t j) {
        const double d = IntervalDistanceAt(x, y, i, j).max_abs;
        return d * d;
      },
      dtw_options);
  return {std::sqrt(lower_sq), std::sqrt(upper_sq)};
}

Result<double> Munich::ExactMatchProbability(const MultiSampleSeries& x,
                                             const MultiSampleSeries& y,
                                             double epsilon,
                                             std::size_t half_limit) {
  UTS_RETURN_NOT_OK(ValidatePair(x, y));
  const std::size_t n = x.size();
  const std::size_t mid = n / 2;
  auto first = EnumerateHalf(x, y, 0, mid, half_limit);
  if (!first.ok()) return first.status();
  auto second = EnumerateHalf(x, y, mid, n, half_limit);
  if (!second.ok()) return second.status();

  std::vector<double>& h1 = first.ValueOrDie();
  std::vector<double>& h2 = second.ValueOrDie();
  std::sort(h2.begin(), h2.end());

  const double eps_sq = epsilon * epsilon;
  // Count pairs (a, b) with a + b <= ε². Guard against negative budgets so
  // upper_bound's argument stays finite.
  std::uint64_t matched = 0;
  for (double a : h1) {
    const double budget = eps_sq - a;
    if (budget < 0.0) continue;
    matched += static_cast<std::uint64_t>(
        std::upper_bound(h2.begin(), h2.end(), budget) - h2.begin());
  }
  const double total =
      static_cast<double>(h1.size()) * static_cast<double>(h2.size());
  return static_cast<double>(matched) / total;
}

double Munich::MonteCarloMatchProbability(const MultiSampleSeries& x,
                                          const MultiSampleSeries& y,
                                          double epsilon, std::size_t samples,
                                          std::uint64_t seed) {
  assert(samples > 0);
  prob::Rng rng(seed);
  const double eps_sq = epsilon * epsilon;
  std::size_t hits = 0;
  for (std::size_t s = 0; s < samples; ++s) {
    double sum = 0.0;
    for (std::size_t i = 0; i < x.size() && sum <= eps_sq; ++i) {
      const auto& xs = x.samples(i);
      const auto& ys = y.samples(i);
      const double a = xs[rng.UniformInt(xs.size())];
      const double b = ys[rng.UniformInt(ys.size())];
      const double d = a - b;
      sum += d * d;
    }
    if (sum <= eps_sq) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(samples);
}

double Munich::MonteCarloDtwMatchProbability(
    const MultiSampleSeries& x, const MultiSampleSeries& y, double epsilon,
    std::size_t samples, std::uint64_t seed,
    const distance::DtwOptions& dtw_options) {
  assert(samples > 0);
  prob::Rng rng(seed);
  std::vector<double> xs(x.size());
  std::vector<double> ys(y.size());
  std::size_t hits = 0;
  for (std::size_t s = 0; s < samples; ++s) {
    for (std::size_t i = 0; i < x.size(); ++i) {
      const auto& sx = x.samples(i);
      xs[i] = sx[rng.UniformInt(sx.size())];
    }
    for (std::size_t j = 0; j < y.size(); ++j) {
      const auto& sy = y.samples(j);
      ys[j] = sy[rng.UniformInt(sy.size())];
    }
    if (distance::Dtw(xs, ys, dtw_options) <= epsilon) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(samples);
}

double Munich::MaterializationCount(const MultiSampleSeries& x,
                                    const MultiSampleSeries& y) {
  double count = 1.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    count *= static_cast<double>(x.num_samples(i));
  }
  for (std::size_t j = 0; j < y.size(); ++j) {
    count *= static_cast<double>(y.num_samples(j));
  }
  return count;
}

Result<double> Munich::MatchProbability(const MultiSampleSeries& x,
                                        const MultiSampleSeries& y,
                                        double epsilon,
                                        std::uint64_t seed) const {
  UTS_RETURN_NOT_OK(ValidatePair(x, y));

  if (options_.use_bounds_filter) {
    const DistanceBounds bounds = EuclideanBounds(x, y);
    if (bounds.upper <= epsilon) return 1.0;  // every materialization matches
    if (bounds.lower > epsilon) return 0.0;   // none can match
  }

  switch (options_.estimator) {
    case MunichOptions::Estimator::kExact:
      return ExactMatchProbability(x, y, epsilon, options_.exact_half_limit);
    case MunichOptions::Estimator::kMonteCarlo:
      return MonteCarloMatchProbability(x, y, epsilon, options_.mc_samples,
                                        seed);
    case MunichOptions::Estimator::kAuto: {
      auto exact =
          ExactMatchProbability(x, y, epsilon, options_.exact_half_limit);
      if (exact.ok()) return exact;
      if (exact.status().code() != StatusCode::kNotSupported) {
        return exact.status();
      }
      return MonteCarloMatchProbability(x, y, epsilon, options_.mc_samples,
                                        seed);
    }
  }
  return Status::InvalidArgument("unknown estimator");
}

Result<bool> Munich::Matches(const MultiSampleSeries& x,
                             const MultiSampleSeries& y, double epsilon,
                             std::uint64_t seed) const {
  auto prob = MatchProbability(x, y, epsilon, seed);
  if (!prob.ok()) return prob.status();
  return prob.ValueOrDie() >= options_.tau;
}

}  // namespace uts::measures
