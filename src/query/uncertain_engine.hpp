/// \file uncertain_engine.hpp
/// \brief The batched, multi-threaded query engine for the *uncertain*
/// measures — MUNICH, PROUD and DUST — the techniques every reported figure
/// of the paper (Fig. 4–17) is driven by.
///
/// `UncertainEngine` is the uncertain-measure sibling of
/// `DistanceMatrixEngine` (engine.hpp): it answers 1-vs-all sweeps — dense
/// distance/probability vectors, k-NN lists, range queries RQ and
/// probabilistic range queries PRQ(Q,C,ε,τ) (Eq. 2) — over parallel blocks
/// of candidates scheduled on an `exec::ThreadPool`, streaming contiguous
/// `ts::SoaStore` snapshots instead of per-series heap allocations.
///
/// Per measure, the engine precomputes at build time:
///
///  * **DUST** — a thread-shared lookup-table cache: one
///    `measures::DustTable` per distinct (error-class, error-class) pair,
///    built once by `BuildDustTables` and immutable afterwards, exposed to
///    the blocked batch kernels of distance/batch.hpp as borrowed
///    `distance::DustLut` views. The all-normal-error case takes the closed
///    form dust(Δ) = Δ / sqrt(2(σx² + σy²)) — no table loads at all.
///  * **PROUD** — per-series central-moment prefixes (m2/m3/m4 columns in
///    SoA layout), so the general-moment ε_norm sweep is one contiguous
///    pass per candidate with zero virtual dispatch; the paper-faithful
///    constant-σ sweep is a single fused pass over the observation rows.
///  * **MUNICH** — per-series bounding-interval columns (min/max per
///    timestamp) for the certain-accept / certain-reject filter, plus
///    deterministic *counter-based* RNG seeding: the Monte Carlo stream of
///    pair (q, c) is seeded by the pure function
///    `DeriveSeed(seed, q·n + c + 0x9a1)` of the pair counter alone, so
///    parallel and sequential runs draw identical materializations.
///
/// Determinism guarantee: results are bit-identical to the scalar measure
/// APIs (measures::Dust::Distance, measures::Proud::Matches,
/// measures::Munich::MatchProbability with the same per-pair seeds) at every
/// thread count. The ingredients are the same as DistanceMatrixEngine's —
/// pure blocked partitions (exec::ParallelFor), disjoint pre-allocated
/// output slots, ordered post-barrier reductions — plus two structural ones:
/// every batch kernel accumulates in exactly the scalar measure's operation
/// order (distance/batch.hpp documents each identity), and the scalar
/// measures themselves evaluate through the very code the kernels use
/// (DustTable::Dust == DustLut::Eval; Proud decisions go through
/// Proud::DecideFromStats; MUNICH bounds go through
/// Munich::EuclideanBoundsFromIntervals).

#ifndef UTS_QUERY_UNCERTAIN_ENGINE_HPP_
#define UTS_QUERY_UNCERTAIN_ENGINE_HPP_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.hpp"
#include "distance/batch.hpp"
#include "distance/simd.hpp"
#include "exec/thread_pool.hpp"
#include "index/cascade.hpp"
#include "measures/dust.hpp"
#include "measures/munich.hpp"
#include "measures/proud.hpp"
#include "query/exec_options.hpp"
#include "query/search.hpp"
#include "ts/soa_store.hpp"
#include "ts/store_view.hpp"
#include "uncertain/uncertain_series.hpp"

namespace uts::query {

/// \brief Execution + measure configuration of an UncertainEngine. The
/// shared execution fields (`threads`, `simd`, `shared_pool`, `index`,
/// `buffer_pool`, `block_rows`) live in the inherited query::ExecOptions —
/// their names and meanings are unchanged. Engine-specific notes: DUST
/// results are bitwise identical at every SIMD level, PROUD sweeps are
/// within the pinned tolerance of distance/simd.hpp, MUNICH never touches
/// the dispatch; the index cascade routes only the DUST k-NN / range paths
/// (PROUD/MUNICH match probabilities are not provably monotone in the
/// observation distance).
struct UncertainEngineOptions : ExecOptions {
  /// Candidate rows per parallel chunk of a single query's sweep. Smaller
  /// than DistanceMatrixEngine's default because MUNICH estimators cost
  /// orders of magnitude more per candidate than a Euclidean row.
  std::size_t grain = 64;

  /// DUST table construction parameters.
  measures::DustOptions dust;

  /// MUNICH estimator configuration (τ is *not* consulted by the engine;
  /// PRQ methods take τ explicitly so a τ sweep reuses one engine).
  measures::MunichOptions munich;

  /// The constant per-point σ PROUD is told (its "a priori knowledge").
  double proud_sigma = 1.0;

  /// Base seed of the MUNICH Monte Carlo pair streams; the same value used
  /// with the scalar API reproduces engine results bit-exactly.
  std::uint64_t seed = 0x5eed;
};

/// \brief Batched parallel MUNICH / PROUD / DUST query execution over one
/// pdf-model dataset (plus an optional sample-model dataset for MUNICH).
///
/// The engine borrows both datasets; they must outlive it and not be
/// mutated while it is in use. All query methods are const and safe to call
/// concurrently once construction (and `BuildDustTables`, if used) is done.
class UncertainEngine {
 public:
  /// Build the engine: packs the observations into a SoA store and assigns
  /// error-class ids. Requires a non-empty dataset of uniform length.
  /// Measure-specific precomputations are explicit setup steps so callers
  /// only pay for what they query: `BuildDustTables` before the DUST
  /// queries, `BuildProudMomentColumns` before the general-moment PROUD
  /// sweep (the constant-σ PROUD and MUNICH paths need neither).
  static Result<std::unique_ptr<UncertainEngine>> Create(
      const uncertain::UncertainDataset& pdf,
      UncertainEngineOptions options = {});

  /// Joins the owned pool, if any.
  ~UncertainEngine();

  UncertainEngine(const UncertainEngine&) = delete;  ///< Not copyable.
  UncertainEngine& operator=(const UncertainEngine&) =
      delete;  ///< Not copyable.

  /// Number of series.
  std::size_t size() const { return store_.rows(); }

  /// Shared series length.
  std::size_t length() const { return store_.stride(); }

  /// Resolved worker-thread count (>= 1).
  std::size_t threads() const;

  /// Number of distinct error classes across the dataset.
  std::size_t num_error_classes() const { return num_classes_; }

  /// The options the engine was created with (munich possibly replaced via
  /// set_munich_options).
  const UncertainEngineOptions& options() const { return options_; }

  /// Kernel level the DUST/PROUD sweeps execute at (resolved once from
  /// UncertainEngineOptions::simd at construction).
  distance::SimdLevel simd_level() const { return dispatch_->level; }

  /// Replace the MUNICH estimator configuration after construction (τ is
  /// still ignored — PRQ methods take it explicitly). Setup-time only: not
  /// thread-safe against concurrent queries. Lets a shared engine created
  /// for another measure adopt the first MUNICH user's configuration.
  void set_munich_options(const measures::MunichOptions& munich) {
    options_.munich = munich;
  }

  /// \name DUST
  /// \{

  /// Build the immutable lookup-table cache: one table per unordered pair
  /// of error classes, canonicalized exactly like measures::Dust's cache.
  /// Idempotent; must complete before the DUST queries below. Not
  /// thread-safe against concurrent queries (call during setup).
  Status BuildDustTables();

  /// Same, but borrow the tables from a persistent scalar cache instead of
  /// building privately: re-binding to new data with the same error models
  /// (e.g. one spec across many datasets) then reuses the already-built
  /// tables instead of re-running the numeric integration. `shared_cache`
  /// must outlive this engine and use the same DustOptions; its cache is
  /// append-only, so borrowed table addresses stay valid.
  Status BuildDustTables(measures::Dust& shared_cache);

  /// True once BuildDustTables has succeeded.
  bool dust_ready() const { return dust_ready_; }

  /// True iff the DUST k-NN / range paths will route through the cascade:
  /// the synopsis index was built (UncertainEngineOptions::index enabled)
  /// AND the built tables admit a positive distance minorant.
  bool dust_index_enabled() const {
    return synopsis_index_ != nullptr && dust_ready_ && dust_bound_.valid;
  }

  /// Dense DUST(query, ·) sweep over every series (self slot included).
  Result<std::vector<double>> DustDistances(std::size_t query) const;

  /// DUST distance of one pair, through the same tables/kernels.
  Result<double> DustDistance(std::size_t query, std::size_t candidate) const;

  /// k nearest neighbors under DUST, self excluded; ascending distance,
  /// ties by index (the legacy comparator). `cost`, when non-null, is
  /// incremented with the query's work accounting (an unindexed sweep
  /// reports every eligible candidate as touched).
  Result<std::vector<Neighbor>> KNearestDust(
      std::size_t query, std::size_t k,
      index::SearchCost* cost = nullptr) const;

  /// RQ(Q, C, ε) under DUST: indices with distance <= epsilon, self
  /// excluded, ascending.
  Result<std::vector<std::size_t>> RangeSearchDust(
      std::size_t query, double epsilon,
      index::SearchCost* cost = nullptr) const;
  /// \}

  /// \name PROUD (paper-faithful constant-σ model)
  /// \{

  /// Dense Pr(distance(query, ·) ≤ ε) sweep (self slot included).
  std::vector<double> ProudMatchProbabilities(std::size_t query,
                                              double epsilon) const;

  /// PRQ(Q, C, ε, τ) via the ε_norm ≥ Φ⁻¹(τ) test — bit-identical to
  /// measures::Proud::Matches per candidate. Self excluded, ascending.
  std::vector<std::size_t> ProbabilisticRangeSearchProud(std::size_t query,
                                                         double epsilon,
                                                         double tau) const;

  /// k candidates with the highest match probability at ε, self excluded;
  /// descending probability, ties by index. `Neighbor::distance` carries
  /// the probability.
  std::vector<Neighbor> KNearestProud(std::size_t query, double epsilon,
                                      std::size_t k) const;

  /// Precompute the per-series central-moment columns (the "moment
  /// prefixes") the general-moment sweep reads. Idempotent; immutable once
  /// built. Kept out of Create so the constant-σ/DUST/MUNICH callers do
  /// not pay 3·n·len doubles they never read.
  Status BuildProudMomentColumns();

  /// True once BuildProudMomentColumns has run.
  bool proud_moments_ready() const { return proud_moments_ready_; }

  /// Dense sweep through the exact per-point moment propagation
  /// (Proud::MatchProbabilityGeneral), reading the precomputed moment
  /// columns instead of per-point virtual dispatch.
  Result<std::vector<double>> ProudGeneralMatchProbabilities(
      std::size_t query, double epsilon) const;
  /// \}

  /// \name MUNICH (requires AttachSamples)
  /// \{

  /// Attach the repeated-observations dataset and precompute its
  /// bounding-interval columns. Series count and lengths must match the
  /// pdf dataset.
  Status AttachSamples(const uncertain::MultiSampleDataset& samples);

  /// True once a sample-model dataset is attached.
  bool has_samples() const { return samples_ != nullptr; }

  /// The deterministic Monte Carlo seed of pair (qi, ci): the pair counter
  /// qi·n + ci hashed with the engine seed. Pure function — independent of
  /// thread count, evaluation order, and which queries ran before.
  std::uint64_t MunichPairSeed(std::size_t qi, std::size_t ci) const;

  /// Dense Pr(distance(query, ·) ≤ ε) sweep via the configured estimator
  /// with the interval-bounds filter applied first (when enabled). The self
  /// slot is 0 (never evaluated). Bit-identical to
  /// measures::Munich::MatchProbability with MunichPairSeed per pair.
  Result<std::vector<double>> MunichMatchProbabilities(std::size_t query,
                                                       double epsilon) const;

  /// PRQ(Q, C, ε, τ): probability ≥ τ, self excluded, ascending.
  Result<std::vector<std::size_t>> ProbabilisticRangeSearchMunich(
      std::size_t query, double epsilon, double tau) const;

  /// k candidates with the highest MUNICH match probability at ε, self
  /// excluded; descending probability, ties by index.
  Result<std::vector<Neighbor>> KNearestMunich(std::size_t query,
                                               double epsilon,
                                               std::size_t k) const;
  /// \}

 private:
  explicit UncertainEngine(UncertainEngineOptions options);

  /// Class id of series `s` at timestamp `t`.
  std::uint16_t class_id(std::size_t s, std::size_t t) const {
    return class_ids_[s * store_.stride() + t];
  }

  /// The lut of class pair (a, b).
  const distance::DustLut& PairLut(std::size_t a, std::size_t b) const {
    return dust_luts_[a * num_classes_ + b];
  }

  /// MUNICH probability of one pair (bounds filter + estimator), reading
  /// the precomputed interval columns.
  Result<double> MunichPairProbability(std::size_t qi, std::size_t ci,
                                       double epsilon) const;

  /// Stage-1 bounds of the DUST cascade: per-row synopsis Euclidean bounds
  /// mapped through dust_bound_. Requires dust_index_enabled().
  std::vector<double> DustCascadeLowerBounds(std::size_t query) const;

  /// Exact single-row DUST scorer (same dispatch kernels as the full
  /// sweep). `qrow` must stay pinned by the caller for the scorer's
  /// lifetime; `qluts` must outlive the scorer and, for multi-class data,
  /// hold the query's per-timestamp lut rows; unused when single-class.
  index::ExactScorer DustCascadeScorer(
      std::span<const double> qrow,
      const std::vector<const distance::DustLut*>& qluts) const;

  UncertainEngineOptions options_;
  /// Kernel table resolved from options_.simd at construction; never null.
  const distance::KernelDispatch* dispatch_;

  ts::SoaStore store_;  ///< Packed observations.
  /// PROUD moment columns; empty until BuildProudMomentColumns.
  ts::SoaStore m2_store_, m3_store_, m4_store_;
  bool proud_moments_ready_ = false;
  double proud_v_ = 2.0;  ///< v = 2σ² of the constant-σ PROUD model.

  std::vector<std::uint16_t> class_ids_;  ///< rows×stride error-class ids.
  std::vector<prob::ErrorDistributionPtr> class_dists_;  ///< Representatives.
  std::size_t num_classes_ = 0;

  /// Table storage: the no-arg BuildDustTables owns a private scalar cache
  /// (so canonicalization lives in measures::Dust alone); the shared-cache
  /// overload borrows the caller's instead. The K×K lut matrix views
  /// whichever cache built the tables; immutable after BuildDustTables.
  std::unique_ptr<measures::Dust> owned_dust_cache_;
  std::vector<distance::DustLut> dust_luts_;
  bool dust_ready_ = false;

  /// Synopsis pack over the observation rows; null unless
  /// UncertainEngineOptions::index.enabled.
  std::unique_ptr<const index::SynopsisIndex> synopsis_index_;
  /// Euclidean-to-DUST bound map; rebuilt by BuildDustTables.
  index::DustLowerBoundMap dust_bound_;

  const uncertain::MultiSampleDataset* samples_ = nullptr;  ///< Borrowed.
  ts::SoaStore sample_lo_, sample_hi_;  ///< Bounding-interval columns.

  std::unique_ptr<exec::ThreadPool> owned_pool_;  ///< Null when borrowed/inline.
  exec::ThreadPool* pool_ = nullptr;  ///< Executor view; null = run inline.
};

}  // namespace uts::query

#endif  // UTS_QUERY_UNCERTAIN_ENGINE_HPP_
