/// \file engine.hpp
/// \brief The batched, multi-threaded query-execution engine.
///
/// `DistanceMatrixEngine` answers the query shapes the paper's evaluation
/// is built from — k-NN lists (10-NN ground truth, Section 4.1.2), range
/// queries RQ(Q,C,ε) (Eq. 1), probabilistic range queries PRQ(Q,C,ε,τ)
/// (Eq. 2) and top-k motif pairs (Section 3.3) — over parallel blocks of
/// candidates scheduled on an `exec::ThreadPool`.
///
/// Determinism guarantee: results are bit-identical to the sequential
/// reference path at every thread count. Three ingredients make that hold:
///
///  1. candidate ranges are a pure blocked partition of the index space
///     (exec::ParallelFor), never timing-dependent;
///  2. each worker writes only pre-allocated slots of the output buffer
///     owned by its range — there is no shared accumulator;
///  3. reductions (k-NN selection, motif top-k merge, match collection) run
///     over the completed buffers in ascending index order with the same
///     (distance, index) tie-break comparator as the legacy sequential
///     code.
///
/// Euclidean queries stream the dataset's contiguous SoA mirror
/// (ts::SoaStore) through the blocked kernels of distance/batch.hpp; the
/// callback overloads parallelize arbitrary thread-safe distances (e.g. the
/// exact-DTW ground truth).

#ifndef UTS_QUERY_ENGINE_HPP_
#define UTS_QUERY_ENGINE_HPP_

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "distance/simd.hpp"
#include "exec/thread_pool.hpp"
#include "index/cascade.hpp"
#include "query/exec_options.hpp"
#include "query/search.hpp"
#include "ts/dataset.hpp"
#include "ts/store_view.hpp"

namespace uts::query {

/// \brief Execution configuration of a DistanceMatrixEngine. The shared
/// execution fields (`threads`, `simd`, `shared_pool`, `index`,
/// `buffer_pool`, `block_rows`) live in the inherited query::ExecOptions —
/// their names and meanings are unchanged.
struct EngineOptions : ExecOptions {
  /// Candidate rows per parallel chunk of a single query's scan.
  std::size_t grain = 256;
};

/// \brief Batched parallel k-NN / RQ / PRQ / motif execution over one
/// dataset. The engine borrows the dataset; it must outlive the engine and
/// not be mutated while the engine is in use.
class DistanceMatrixEngine {
 public:
  /// Build the engine over `dataset`: packs the SoA snapshot, resolves the
  /// kernel dispatch and (when enabled) the synopsis index.
  explicit DistanceMatrixEngine(const ts::Dataset& dataset,
                                EngineOptions options = {});

  /// Joins the owned pool, if any.
  ~DistanceMatrixEngine();

  DistanceMatrixEngine(const DistanceMatrixEngine&) = delete;  ///< Not copyable.
  DistanceMatrixEngine& operator=(const DistanceMatrixEngine&) =
      delete;  ///< Not copyable.

  /// The dataset queries run against.
  const ts::Dataset& dataset() const { return *dataset_; }

  /// Resolved worker-thread count (>= 1).
  std::size_t threads() const;

  /// True iff the Euclidean paths run on the contiguous SoA store (uniform
  /// length); otherwise they fall back to per-series span callbacks.
  bool batched() const { return store_ != nullptr; }

  /// Kernel level the batched paths execute at (resolved once from
  /// EngineOptions::simd at construction).
  distance::SimdLevel simd_level() const { return dispatch_->level; }

  /// True iff the prune-before-score index was built (EngineOptions::index
  /// enabled and the dataset batched).
  bool index_enabled() const { return synopsis_index_ != nullptr; }

  /// \name Euclidean queries (batched SoA kernels)
  /// When `cost` is non-null it is *incremented* with the query's work
  /// accounting (candidates touched vs pruned); an unindexed scan reports
  /// every eligible candidate as touched.
  /// \{

  /// k nearest neighbors of series `query_index`, self-match excluded;
  /// sorted ascending by distance, ties by index.
  std::vector<Neighbor> KNearestEuclidean(
      std::size_t query_index, std::size_t k,
      index::SearchCost* cost = nullptr) const;

  /// k-NN lists of the first `num_queries` series (0 = every series) — the
  /// paper's ground-truth build, parallelized over queries.
  /// out[q] == KNearestEuclidean(q, k); candidates always span the whole
  /// dataset.
  std::vector<std::vector<Neighbor>> AllKNearestEuclidean(
      std::size_t k, std::size_t num_queries = 0,
      index::SearchCost* cost = nullptr) const;

  /// RQ(Q, C, ε): indices with distance <= epsilon, self-match excluded,
  /// ascending.
  std::vector<std::size_t> RangeSearchEuclidean(
      std::size_t query_index, double epsilon,
      index::SearchCost* cost = nullptr) const;

  /// Top-k closest pairs under Euclidean distance; bounded-memory (k-sized
  /// heap per worker chunk), sorted ascending with (a, b) tie-breaks.
  std::vector<MotifPair> TopKMotifsEuclidean(std::size_t k) const;
  /// \}

  /// \name Generic callback queries
  /// The callback must be thread-safe when threads() > 1; it is never
  /// invoked for the excluded index.
  /// \{

  /// k nearest under an arbitrary distance callback; same ordering contract
  /// as query::KNearest.
  std::vector<Neighbor> KNearest(std::size_t n, std::size_t exclude,
                                 std::size_t k,
                                 const DistanceToFn& distance_to) const;

  /// RQ(Q, C, ε) under an arbitrary distance callback; indices ascending.
  std::vector<std::size_t> RangeSearch(std::size_t n, std::size_t exclude,
                                       double epsilon,
                                       const DistanceToFn& distance_to) const;

  /// PRQ(Q, C, ε, τ) over an arbitrary match-probability callback (ε folded
  /// into the callback); indices ascending.
  std::vector<std::size_t> ProbabilisticRangeSearch(
      std::size_t n, std::size_t exclude, double tau,
      const MatchProbabilityFn& probability_of) const;

  /// Top-k closest pairs under an arbitrary pairwise distance; same
  /// ordering contract as query::TopKMotifs.
  std::vector<MotifPair> TopKMotifs(std::size_t n, std::size_t k,
                                    const PairwiseDistanceFn& distance) const;
  /// \}

 private:
  /// Chunk size of the triangular motif loops: contiguous a-chunks are
  /// front-heavy (~grain·n pairs in the first, ~grain²/2 in the last), so
  /// parallel runs shrink the grain until the largest chunk is a small
  /// fraction of the total and the pool's FIFO queue can balance the tail.
  std::size_t MotifGrain(std::size_t n) const;

  /// Evaluate fn(i) for every i in [0, n) except `exclude` into a dense
  /// buffer (slot `exclude` stays 0), in parallel chunks. The single fill
  /// loop behind every callback query path.
  std::vector<double> ComputeDense(std::size_t n, std::size_t exclude,
                                   const DistanceToFn& fn) const;

  /// Exact scorer over the SoA store for the cascade: early-abandon filter
  /// (threshold inflated against accumulation rounding) + exact per-row
  /// kernel, bitwise identical to the unindexed scan's per-row values.
  index::ExactScorer EuclideanCascadeScorer(std::span<const double> query,
                                            index::SearchCost* cost) const;

  /// Sequential single-query cascade (no nested parallelism): used by the
  /// indexed KNearestEuclidean and, per query, by AllKNearestEuclidean.
  std::vector<Neighbor> IndexedKNearestEuclidean(
      std::size_t query_index, std::size_t k, index::SearchCost* cost) const;

  const ts::Dataset* dataset_;
  EngineOptions options_;
  /// Kernel table resolved from options_.simd at construction; never null.
  const distance::KernelDispatch* dispatch_;
  /// Co-owned snapshot of the dataset's SoA mirror: stays valid even if
  /// the dataset is mutated (and re-packed) after engine construction.
  std::shared_ptr<const ts::SoaStore> store_;
  /// Prune-before-score synopsis pack over the same snapshot; null unless
  /// EngineOptions::index.enabled and the dataset is batched.
  std::unique_ptr<const index::SynopsisIndex> synopsis_index_;
  std::unique_ptr<exec::ThreadPool> owned_pool_;  ///< Null when borrowed/inline.
  exec::ThreadPool* pool_ = nullptr;  ///< Executor view; null = run inline.
};

/// \namespace uts::query::detail
/// \brief Engine internals exposed for the parity tests.
namespace detail {

/// \brief Bounded selector of the k smallest MotifPairs under the total
/// order (distance, a, b). Replaces the old materialize-all-pairs +
/// partial_sort motif search with O(k) memory.
class BoundedMotifHeap {
 public:
  /// Selector retaining the `k` smallest pairs pushed.
  explicit BoundedMotifHeap(std::size_t k) : k_(k) {}

  /// The total order (distance, a, b) — the sequential reference
  /// comparator, so parallel merges cannot reorder ties.
  static bool Less(const MotifPair& x, const MotifPair& y) {
    if (x.distance != y.distance) return x.distance < y.distance;
    if (x.a != y.a) return x.a < y.a;
    return x.b < y.b;
  }

  /// Offer one pair; kept only while among the k smallest seen so far.
  void Push(const MotifPair& pair);

  /// The retained pairs, sorted ascending; the heap is left empty.
  std::vector<MotifPair> TakeSorted();

 private:
  std::size_t k_;
  std::vector<MotifPair> heap_;  ///< Max-heap under Less.
};

/// \brief Select the k nearest from a dense distance buffer (one slot per
/// candidate index; slot `exclude` is ignored), with the legacy
/// (distance, index) comparator. Distances must be final metric values —
/// selecting on squared values would order sqrt-rounding collisions
/// (distinct squares whose roots round to the same double) differently
/// than the sequential reference.
std::vector<Neighbor> SelectKNearest(std::span<const double> distances,
                                     std::size_t exclude, std::size_t k);

}  // namespace detail

}  // namespace uts::query

#endif  // UTS_QUERY_ENGINE_HPP_
