#include "query/search.hpp"

#include <vector>

#include "query/engine.hpp"

namespace uts::query {

// The callback overloads are the sequential reference path. They share the
// engine's selection internals (detail::SelectKNearest, BoundedMotifHeap),
// so the parallel engine is bit-identical to them by construction; the
// callbacks themselves are invoked in ascending index order and need not be
// thread-safe here.

std::vector<Neighbor> KNearest(std::size_t n, std::size_t exclude,
                               std::size_t k,
                               const DistanceToFn& distance_to) {
  std::vector<double> distances(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    if (i == exclude) continue;
    distances[i] = distance_to(i);
  }
  return detail::SelectKNearest(distances, exclude, k);
}

std::vector<std::size_t> RangeSearch(std::size_t n, std::size_t exclude,
                                     double epsilon,
                                     const DistanceToFn& distance_to) {
  std::vector<std::size_t> matches;
  for (std::size_t i = 0; i < n; ++i) {
    if (i == exclude) continue;
    if (distance_to(i) <= epsilon) matches.push_back(i);
  }
  return matches;
}

std::vector<std::size_t> ProbabilisticRangeSearch(
    std::size_t n, std::size_t exclude, double tau,
    const MatchProbabilityFn& probability_of) {
  std::vector<std::size_t> matches;
  for (std::size_t i = 0; i < n; ++i) {
    if (i == exclude) continue;
    if (probability_of(i) >= tau) matches.push_back(i);
  }
  return matches;
}

std::vector<MotifPair> TopKMotifs(std::size_t n, std::size_t k,
                                  const PairwiseDistanceFn& distance) {
  // Bounded k-sized max-heap: O(k) memory instead of materializing all
  // n(n-1)/2 pairs before a partial_sort.
  detail::BoundedMotifHeap heap(k);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      heap.Push({a, b, distance(a, b)});
    }
  }
  return heap.TakeSorted();
}

// The Euclidean conveniences route through a sequential DistanceMatrixEngine
// so they use the same batched SoA kernels as the parallel path.

std::vector<Neighbor> KNearestEuclidean(const ts::Dataset& dataset,
                                        std::size_t query_index,
                                        std::size_t k) {
  return DistanceMatrixEngine(dataset).KNearestEuclidean(query_index, k);
}

std::vector<std::size_t> RangeSearchEuclidean(const ts::Dataset& dataset,
                                              std::size_t query_index,
                                              double epsilon) {
  return DistanceMatrixEngine(dataset).RangeSearchEuclidean(query_index,
                                                            epsilon);
}

std::vector<MotifPair> TopKMotifsEuclidean(const ts::Dataset& dataset,
                                           std::size_t k) {
  return DistanceMatrixEngine(dataset).TopKMotifsEuclidean(k);
}

}  // namespace uts::query
