#include "query/search.hpp"

#include <algorithm>

#include "distance/lp.hpp"

namespace uts::query {

std::vector<Neighbor> KNearest(std::size_t n, std::size_t exclude,
                               std::size_t k,
                               const DistanceToFn& distance_to) {
  std::vector<Neighbor> all;
  all.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (i == exclude) continue;
    all.push_back({i, distance_to(i)});
  }
  const std::size_t take = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<long>(take),
                    all.end(), [](const Neighbor& a, const Neighbor& b) {
                      if (a.distance != b.distance) {
                        return a.distance < b.distance;
                      }
                      return a.index < b.index;
                    });
  all.resize(take);
  return all;
}

std::vector<std::size_t> RangeSearch(std::size_t n, std::size_t exclude,
                                     double epsilon,
                                     const DistanceToFn& distance_to) {
  std::vector<std::size_t> matches;
  for (std::size_t i = 0; i < n; ++i) {
    if (i == exclude) continue;
    if (distance_to(i) <= epsilon) matches.push_back(i);
  }
  return matches;
}

std::vector<Neighbor> KNearestEuclidean(const ts::Dataset& dataset,
                                        std::size_t query_index,
                                        std::size_t k) {
  const auto& query = dataset[query_index];
  return KNearest(dataset.size(), query_index, k, [&](std::size_t i) {
    return distance::Euclidean(query.values(), dataset[i].values());
  });
}

std::vector<std::size_t> RangeSearchEuclidean(const ts::Dataset& dataset,
                                              std::size_t query_index,
                                              double epsilon) {
  const auto& query = dataset[query_index];
  return RangeSearch(dataset.size(), query_index, epsilon, [&](std::size_t i) {
    return distance::Euclidean(query.values(), dataset[i].values());
  });
}

std::vector<std::size_t> ProbabilisticRangeSearch(
    std::size_t n, std::size_t exclude, double tau,
    const MatchProbabilityFn& probability_of) {
  std::vector<std::size_t> matches;
  for (std::size_t i = 0; i < n; ++i) {
    if (i == exclude) continue;
    if (probability_of(i) >= tau) matches.push_back(i);
  }
  return matches;
}

std::vector<MotifPair> TopKMotifs(std::size_t n, std::size_t k,
                                  const PairwiseDistanceFn& distance) {
  std::vector<MotifPair> pairs;
  pairs.reserve(n * (n - 1) / 2);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      pairs.push_back({a, b, distance(a, b)});
    }
  }
  const std::size_t take = std::min(k, pairs.size());
  std::partial_sort(pairs.begin(), pairs.begin() + static_cast<long>(take),
                    pairs.end(), [](const MotifPair& x, const MotifPair& y) {
                      if (x.distance != y.distance) {
                        return x.distance < y.distance;
                      }
                      if (x.a != y.a) return x.a < y.a;
                      return x.b < y.b;
                    });
  pairs.resize(take);
  return pairs;
}

std::vector<MotifPair> TopKMotifsEuclidean(const ts::Dataset& dataset,
                                           std::size_t k) {
  return TopKMotifs(dataset.size(), k, [&](std::size_t a, std::size_t b) {
    return distance::Euclidean(dataset[a].values(), dataset[b].values());
  });
}

}  // namespace uts::query
