#include "query/engine_context.hpp"

#include <algorithm>
#include <cstring>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <utility>

namespace uts::query {

namespace {

/// FNV-1a mixing of one 64-bit word.
struct Fnv {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  void Mix(std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  }
  void MixDouble(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    Mix(bits);
  }
};

/// Content fingerprint of one run's engine-relevant state: the run
/// parameters baked into engines (seed, PROUD σ), every pdf observation and
/// its error model, and every sample-model value. Error models are hashed
/// by semantic Key() with a pointer memo, so the common constant-error
/// dataset pays one Key() call total.
std::uint64_t FingerprintRunData(
    const uncertain::UncertainDataset& pdf,
    const std::optional<uncertain::MultiSampleDataset>& samples,
    std::uint64_t seed, double proud_sigma) {
  Fnv f;
  f.Mix(seed);
  f.MixDouble(proud_sigma);
  f.Mix(pdf.size());
  std::map<const void*, std::uint64_t> key_hash_of;
  for (std::size_t s = 0; s < pdf.size(); ++s) {
    const uncertain::UncertainSeries& series = pdf[s];
    f.Mix(series.size());
    for (std::size_t t = 0; t < series.size(); ++t) {
      f.MixDouble(series.observation(t));
      const auto& err = series.error(t);
      auto it = key_hash_of.find(err.get());
      if (it == key_hash_of.end()) {
        it = key_hash_of
                 .emplace(err.get(), std::hash<std::string>{}(err->Key()))
                 .first;
      }
      f.Mix(it->second);
    }
  }
  if (samples.has_value()) {
    f.Mix(1);
    f.Mix(samples->size());
    for (std::size_t s = 0; s < samples->size(); ++s) {
      const uncertain::MultiSampleSeries& series = (*samples)[s];
      f.Mix(series.size());
      for (std::size_t t = 0; t < series.size(); ++t) {
        // Delimit each timestep's sample vector so differently shaped
        // layouts with identical flattened values cannot collide.
        f.Mix(series.samples(t).size());
        for (double v : series.samples(t)) f.MixDouble(v);
      }
    }
  } else {
    f.Mix(0);
  }
  return f.h;
}

/// Content fingerprint of the exact dataset a certain engine is built over.
std::uint64_t FingerprintDataset(const ts::Dataset& dataset) {
  Fnv f;
  f.Mix(dataset.size());
  for (std::size_t s = 0; s < dataset.size(); ++s) {
    const auto& values = dataset[s].values();
    f.Mix(values.size());
    for (double v : values) f.MixDouble(v);
  }
  return f.h;
}

bool SameDustConfig(const measures::DustOptions& a,
                    const measures::DustOptions& b) {
  return a.table_delta_max == b.table_delta_max &&
         a.table_size == b.table_size && a.phi_floor == b.phi_floor &&
         a.use_closed_form_normal == b.use_closed_form_normal &&
         a.integration_sigmas == b.integration_sigmas &&
         a.value_prior_half_range == b.value_prior_half_range;
}

/// τ excluded: the engine never reads it (PRQ methods take τ explicitly),
/// so matchers sweeping τ share one engine.
bool SameMunichConfig(const measures::MunichOptions& a,
                      const measures::MunichOptions& b) {
  return a.estimator == b.estimator && a.mc_samples == b.mc_samples &&
         a.exact_half_limit == b.exact_half_limit &&
         a.use_bounds_filter == b.use_bounds_filter;
}

}  // namespace

EngineContext::EngineContext(EngineContextOptions options)
    : options_(options) {
  threads_ = options_.threads;
  if (threads_ == 0) {
    threads_ = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
}

EngineContext::~EngineContext() = default;

exec::ThreadPool* EngineContext::pool() {
  if (threads_ <= 1) return nullptr;
  if (options_.shared_pool != nullptr) {
    // Borrowed executor: partitioning still follows threads_, so results
    // match an owned pool of the same width bit for bit.
    return options_.shared_pool;
  }
  if (pool_ == nullptr) {
    pool_ = std::make_unique<exec::ThreadPool>(threads_);
    ++stats_.pools_created;
  }
  return pool_.get();
}

std::shared_ptr<ts::BufferPool> EngineContext::buffer_pool() {
  if (options_.buffer_pool != nullptr) return options_.buffer_pool;
  if (options_.memory_budget_bytes == 0 || buffer_pool_failed_) {
    return owned_buffer_pool_;  // null unless already created
  }
  if (owned_buffer_pool_ == nullptr) {
    ts::BufferPool::Options pool_options;
    pool_options.budget_bytes = options_.memory_budget_bytes;
    pool_options.spill_dir = options_.spill_dir;
    auto pool = ts::BufferPool::Create(pool_options);
    if (!pool.ok()) {
      // Unwritable spill dir: remember, stay resident (results identical).
      buffer_pool_failed_ = true;
      return nullptr;
    }
    owned_buffer_pool_ = std::move(pool).ValueOrDie();
    ++stats_.buffer_pools_created;
  }
  return owned_buffer_pool_;
}

Status EngineContext::BindData(
    uncertain::UncertainDataset pdf,
    std::optional<uncertain::MultiSampleDataset> samples, std::uint64_t seed,
    double proud_sigma) {
  if (pdf.size() == 0) {
    return Status::InvalidArgument("engine context needs a non-empty "
                                   "pdf-model dataset");
  }
  const std::uint64_t fingerprint =
      FingerprintRunData(pdf, samples, seed, proud_sigma);
  if (bound_ && fingerprint == data_fingerprint_) {
    // Bit-identical rebind (the τ-sweep pattern): keep every engine and
    // cache; the freshly perturbed copies are discarded.
    ++stats_.data_rebind_hits;
    return Status::OK();
  }
  pdf_ = std::move(pdf);
  samples_ = std::move(samples);
  seed_ = seed;
  proud_sigma_ = proud_sigma;
  data_fingerprint_ = fingerprint;
  bound_ = true;
  // A direct bind is anonymous; ActivateResident re-labels it afterwards.
  active_resident_.clear();
  // Engine state is data-specific; drop it and rebuild lazily. The DUST
  // table cache survives on purpose — tables depend only on the error
  // models, not the observations.
  uncertain_.reset();
  uncertain_unusable_ = false;
  munich_configured_ = false;
  ++stats_.data_binds;
  return Status::OK();
}

Status EngineContext::AddResident(
    const std::string& name, uncertain::UncertainDataset pdf,
    std::optional<uncertain::MultiSampleDataset> samples, std::uint64_t seed,
    double proud_sigma) {
  if (pdf.size() == 0) {
    return Status::InvalidArgument("resident '" + name +
                                   "' needs a non-empty pdf-model dataset");
  }
  Resident resident;
  resident.observed = ts::Dataset(name);
  for (const auto& series : pdf.series) {
    resident.observed.Add(series.AsTimeSeries());
  }
  resident.pdf = std::move(pdf);
  resident.samples = std::move(samples);
  resident.seed = seed;
  resident.proud_sigma = proud_sigma;
  residents_[name] = std::move(resident);
  ++stats_.resident_adds;
  return Status::OK();
}

Status EngineContext::ActivateResident(const std::string& name) {
  auto it = residents_.find(name);
  if (it == residents_.end()) {
    return Status::NotFound("no resident dataset named '" + name + "'");
  }
  // BindData takes ownership, so hand it copies; re-activating the dataset
  // that is already bound fingerprints identically and keeps every engine.
  UTS_RETURN_NOT_OK(BindData(it->second.pdf, it->second.samples,
                             it->second.seed, it->second.proud_sigma));
  active_resident_ = name;
  ++stats_.resident_activations;
  return Status::OK();
}

std::vector<std::string> EngineContext::ResidentNames() const {
  std::vector<std::string> names;
  names.reserve(residents_.size());
  for (const auto& [name, resident] : residents_) names.push_back(name);
  return names;
}

Status EngineContext::DropResident(const std::string& name) {
  auto it = residents_.find(name);
  if (it == residents_.end()) {
    return Status::NotFound("no resident dataset named '" + name + "'");
  }
  // The active binding owns its copies, so dropping the entry never
  // invalidates bound engines; only the label goes away.
  if (active_resident_ == name) active_resident_.clear();
  residents_.erase(it);
  return Status::OK();
}

const ts::Dataset* EngineContext::ResidentObserved(
    const std::string& name) const {
  auto it = residents_.find(name);
  return it == residents_.end() ? nullptr : &it->second.observed;
}

const uncertain::UncertainDataset* EngineContext::ResidentPdf(
    const std::string& name) const {
  auto it = residents_.find(name);
  return it == residents_.end() ? nullptr : &it->second.pdf;
}

const DistanceMatrixEngine& EngineContext::Certain(const ts::Dataset& exact,
                                                   std::size_t grain) {
  const std::uint64_t fingerprint = FingerprintDataset(exact);
  // Compare the stored key address, never certain_->dataset(): the cached
  // engine borrows a dataset that may be gone by now (a driver rebuilding
  // per iteration), and the address alone is safe to compare.
  if (certain_ != nullptr && fingerprint == certain_fingerprint_ &&
      grain == certain_grain_ && certain_dataset_ == &exact) {
    ++stats_.certain_reuses;
    return *certain_;
  }
  EngineOptions options;
  options.threads = threads_;
  options.shared_pool = pool();
  options.simd = options_.simd;
  if (grain != 0) {
    options.grain = grain;
  } else if (options_.certain_grain != 0) {
    options.grain = options_.certain_grain;
  }
  options.index = options_.index;
  options.buffer_pool = buffer_pool();
  options.block_rows = options_.block_rows;
  certain_ = std::make_unique<DistanceMatrixEngine>(exact, options);
  certain_dataset_ = &exact;
  certain_fingerprint_ = fingerprint;
  certain_grain_ = grain;
  ++stats_.certain_packs;
  return *certain_;
}

UncertainEngine* EngineContext::EnsureUncertain() {
  if (!bound_ || uncertain_unusable_) return nullptr;
  if (uncertain_ != nullptr) return uncertain_.get();
  UncertainEngineOptions options;
  options.threads = threads_;
  options.shared_pool = pool();
  options.simd = options_.simd;
  if (options_.uncertain_grain != 0) options.grain = options_.uncertain_grain;
  options.index = options_.index;
  options.buffer_pool = buffer_pool();
  options.block_rows = options_.block_rows;
  options.seed = seed_;
  options.proud_sigma = proud_sigma_;
  if (dust_cache_ != nullptr) options.dust = dust_cache_->options();
  auto engine = UncertainEngine::Create(pdf_, std::move(options));
  if (!engine.ok()) {
    // Not engine-shaped (e.g. non-uniform lengths): remember, so matchers
    // keep their sequential scalar paths without re-trying every Bind.
    uncertain_unusable_ = true;
    return nullptr;
  }
  uncertain_ = std::move(engine).ValueOrDie();
  ++stats_.pdf_packs;
  return uncertain_.get();
}

UncertainEngine* EngineContext::AcquireDust(
    const measures::DustOptions& dust) {
  UncertainEngine* engine = EnsureUncertain();
  if (engine == nullptr) {
    ++stats_.acquires_declined;
    return nullptr;
  }
  if (dust_cache_ == nullptr) {
    dust_cache_ = std::make_unique<measures::Dust>(dust);
  } else if (!SameDustConfig(dust, dust_cache_->options())) {
    ++stats_.acquires_declined;
    return nullptr;
  }
  if (!engine->dust_ready()) {
    const std::size_t tables_before = dust_cache_->CacheSize();
    if (!engine->BuildDustTables(*dust_cache_).ok()) {
      ++stats_.acquires_declined;
      return nullptr;
    }
    if (dust_cache_->CacheSize() != tables_before) ++stats_.dust_table_builds;
  }
  ++stats_.acquires_served;
  return engine;
}

UncertainEngine* EngineContext::AcquireProud(double sigma) {
  UncertainEngine* engine = EnsureUncertain();
  if (engine == nullptr || sigma != proud_sigma_) {
    ++stats_.acquires_declined;
    return nullptr;
  }
  ++stats_.acquires_served;
  return engine;
}

UncertainEngine* EngineContext::AcquireMunich(
    const measures::MunichOptions& munich) {
  UncertainEngine* engine = EnsureUncertain();
  if (engine == nullptr || !samples_.has_value()) {
    ++stats_.acquires_declined;
    return nullptr;
  }
  if (!munich_configured_) {
    engine->set_munich_options(munich);
    munich_config_ = munich;
    munich_configured_ = true;
  } else if (!SameMunichConfig(munich, munich_config_)) {
    ++stats_.acquires_declined;
    return nullptr;
  }
  if (!engine->has_samples()) {
    if (!engine->AttachSamples(*samples_).ok()) {
      // Shape mismatch between the pdf and sample models: the sequential
      // path can still serve sample-only matchers.
      ++stats_.acquires_declined;
      return nullptr;
    }
    ++stats_.sample_attaches;
  }
  ++stats_.acquires_served;
  return engine;
}

Status EngineContext::EnsureProudMoments() {
  UncertainEngine* engine = EnsureUncertain();
  if (engine == nullptr) {
    return Status::InvalidArgument(
        "engine context has no usable uncertain engine");
  }
  if (engine->proud_moments_ready()) return Status::OK();
  UTS_RETURN_NOT_OK(engine->BuildProudMomentColumns());
  ++stats_.proud_moment_builds;
  return Status::OK();
}

}  // namespace uts::query
