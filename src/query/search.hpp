/// \file search.hpp
/// \brief k-NN and range-query primitives over arbitrary distance callbacks.
///
/// Implements the two query flavors of Section 2: the range query RQ(Q,C,ε)
/// (Eq. 1) over exact distances, and the generic machinery that the
/// evaluation methodology builds on — the 10-NN ground-truth sets and the
/// 10th-nearest-neighbor threshold calibration of Section 4.1.2.
///
/// These free functions are the sequential reference API. The Euclidean
/// conveniences route through a single-threaded query::DistanceMatrixEngine
/// (engine.hpp) and therefore use the same batched SoA kernels as the
/// parallel path; the callback overloads share the engine's selection
/// internals, so engine results are bit-identical to them at any thread
/// count.

#ifndef UTS_QUERY_SEARCH_HPP_
#define UTS_QUERY_SEARCH_HPP_

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "common/result.hpp"
#include "ts/dataset.hpp"

/// \namespace uts
/// \brief Root namespace of the uncertain time-series library.

/// \namespace uts::query
/// \brief Sequential search API, the parallel query engines and the shared
/// run-wide EngineContext.

namespace uts::query {

/// \brief Distance from an implicit query to collection item `i`.
using DistanceToFn = std::function<double(std::size_t)>;

/// \brief One nearest-neighbor hit.
struct Neighbor {
  std::size_t index = 0;    ///< Candidate series index.
  double distance = 0.0;    ///< Distance (or match probability) to the query.
};

/// \brief The k nearest items to the query among indices [0, n), excluding
/// `exclude` (pass n or larger to exclude nothing). Result is sorted by
/// ascending distance; ties break by index for determinism.
std::vector<Neighbor> KNearest(std::size_t n, std::size_t exclude,
                               std::size_t k, const DistanceToFn& distance_to);

/// \brief All items within distance ≤ epsilon of the query, excluding
/// `exclude`. Sorted by index.
std::vector<std::size_t> RangeSearch(std::size_t n, std::size_t exclude,
                                     double epsilon,
                                     const DistanceToFn& distance_to);

/// \brief Euclidean k-NN of series `query_index` inside `dataset`
/// (self-match excluded). Series must share the query's length.
std::vector<Neighbor> KNearestEuclidean(const ts::Dataset& dataset,
                                        std::size_t query_index,
                                        std::size_t k);

/// \brief Euclidean range query RQ(Q, C, ε) (Eq. 1), self-match excluded.
std::vector<std::size_t> RangeSearchEuclidean(const ts::Dataset& dataset,
                                              std::size_t query_index,
                                              double epsilon);

/// \brief Match probability of collection item `i` against an implicit
/// query (e.g. MUNICH's or PROUD's Pr(distance ≤ ε)).
using MatchProbabilityFn = std::function<double(std::size_t)>;

/// \brief Probabilistic range query PRQ(Q, C, ε, τ) (Eq. 2):
/// `{ T ∈ C | Pr(distance(Q, T) ≤ ε) ≥ τ }`, with ε folded into the
/// probability callback. Items are indices [0, n) except `exclude`.
std::vector<std::size_t> ProbabilisticRangeSearch(
    std::size_t n, std::size_t exclude, double tau,
    const MatchProbabilityFn& probability_of);

/// \brief One motif: the a-th and b-th series and their distance.
struct MotifPair {
  std::size_t a = 0;        ///< Lower series index of the pair.
  std::size_t b = 0;        ///< Higher series index of the pair.
  double distance = 0.0;    ///< Pairwise distance.
};

/// \brief Symmetric distance between collection items (a, b).
using PairwiseDistanceFn =
    std::function<double(std::size_t, std::size_t)>;

/// \brief Top-k motif search — "DUST ... can be used to answer top-k
/// nearest neighbor queries, or perform top-k motif search" (Section 3.3):
/// the k closest pairs in a collection under an arbitrary pairwise
/// distance. O(n²) distance evaluations but only O(k) memory (bounded
/// max-heap); result sorted by ascending distance, ties broken by (a, b)
/// for determinism.
std::vector<MotifPair> TopKMotifs(std::size_t n, std::size_t k,
                                  const PairwiseDistanceFn& distance);

/// \brief Euclidean top-k motifs of a dataset.
std::vector<MotifPair> TopKMotifsEuclidean(const ts::Dataset& dataset,
                                           std::size_t k);

}  // namespace uts::query

#endif  // UTS_QUERY_SEARCH_HPP_
