/// \file engine_context.hpp
/// \brief The run-wide shared engine context: one thread pool, one SoA pack
/// of each dataset, one engine per evaluation.
///
/// Every figure of the paper compares MUNICH / PROUD / DUST on the *same*
/// uncertain dataset, yet a naive binding builds one `UncertainEngine` per
/// matcher — packing the identical pdf observations into SoA three times
/// and holding three thread pools per run. `EngineContext` is the single
/// resource root the matchers of a run share instead:
///
///  * **one executor** — a lazily created `exec::ThreadPool` every engine
///    of the run borrows (`EngineOptions::shared_pool`), so a full
///    multi-matcher evaluation constructs at most one pool (none when
///    `threads <= 1`; everything runs inline on the caller);
///  * **one pdf pack** — `BindData` takes ownership of the perturbed
///    datasets of the evaluation; the shared `UncertainEngine` over them is
///    built lazily on the first matcher acquisition and reused by every
///    subsequent one;
///  * **lazy, cached measure state** — DUST lookup tables (built through a
///    context-persistent `measures::Dust` cache, so re-binding across
///    datasets under one error spec reuses already-integrated tables),
///    PROUD moment columns and the MUNICH sample attachment are each built
///    on first use and cached for the rest of the run;
///  * **one certain engine** — the `DistanceMatrixEngine` driving the
///    ground-truth / calibration sweeps is cached across runs keyed by the
///    exact dataset's content, so a τ sweep re-running the evaluation per
///    grid point packs the exact dataset once, not once per τ.
///
/// Re-binding with bit-identical data (the τ-sweep pattern: every grid
/// point re-perturbs deterministically to the same observations) is
/// detected by content fingerprint and keeps all engines and caches.
///
/// Determinism: the context only changes *where* resources live, never what
/// is computed — all engine results remain bit-identical to per-matcher
/// engines and to the sequential scalar paths at every thread count.
///
/// Thread-safety: the context is a setup-time object mutated by `Bind`
/// calls; it is not thread-safe itself. The engines it hands out follow
/// their own documented rules (const queries are concurrency-safe).

#ifndef UTS_QUERY_ENGINE_CONTEXT_HPP_
#define UTS_QUERY_ENGINE_CONTEXT_HPP_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "exec/thread_pool.hpp"
#include "measures/dust.hpp"
#include "measures/munich.hpp"
#include "query/engine.hpp"
#include "query/uncertain_engine.hpp"
#include "ts/dataset.hpp"
#include "uncertain/uncertain_series.hpp"

namespace uts::query {

/// \brief Execution configuration of an EngineContext. The shared
/// execution fields (`threads`, `simd`, `shared_pool`, `index`,
/// `buffer_pool`, `block_rows`) live in the inherited query::ExecOptions —
/// their names and meanings are unchanged; `shared_pool` here is the
/// server's `--pool-policy=shared` mode (many contexts, one pool;
/// `pools_created` stays 0, `threads` still controls partitioning so
/// results stay bit-identical to an owned pool of the same width).
struct EngineContextOptions : ExecOptions {
  /// Candidate rows per parallel chunk of the certain-distance sweeps
  /// (DistanceMatrixEngine); 0 = that engine's default.
  std::size_t certain_grain = 0;

  /// Candidate rows per parallel chunk of the uncertain-measure sweeps
  /// (UncertainEngine); 0 = that engine's default.
  std::size_t uncertain_grain = 0;

  /// Memory budget of the run's storage tier, in bytes. 0 (default) =
  /// fully-resident stores, exactly the classic behavior. Non-zero makes
  /// the context create a ts::BufferPool with this budget and build every
  /// engine store (values, PROUD moment columns, MUNICH interval columns)
  /// as paged blocks under it — datasets larger than the budget page
  /// through the pool's spill log with results bitwise identical to the
  /// resident run. Ignored when `buffer_pool` is set explicitly.
  std::size_t memory_budget_bytes = 0;

  /// Spill directory of the context-created buffer pool (empty = $TMPDIR,
  /// else /tmp). Only consulted when `memory_budget_bytes` > 0.
  std::string spill_dir;
};

/// \brief Owns the shared execution resources of one evaluation run: the
/// thread pool, the perturbed datasets, the packed engines and their lazy
/// measure-specific caches.
///
/// Matchers acquire borrowed engine views at Bind time (`AcquireDust`,
/// `AcquireProud`, `AcquireMunich`); an acquisition returns null when the
/// bound dataset is not engine-shaped or the requested measure
/// configuration is incompatible with what the shared engine was already
/// given — callers then keep their sequential scalar path, which is
/// bit-identical anyway. Views are invalidated by the next `BindData` that
/// actually replaces the data; matchers must re-acquire at every Bind.
class EngineContext {
 public:
  /// Resource-lifecycle counters, asserted by the context tests and useful
  /// for diagnosing accidental re-packs in new call sites.
  struct Stats {
    std::size_t pools_created = 0;     ///< Shared ThreadPool constructions.
    std::size_t pdf_packs = 0;         ///< UncertainEngine builds (SoA packs).
    std::size_t certain_packs = 0;     ///< DistanceMatrixEngine builds.
    std::size_t data_binds = 0;        ///< BindData calls that replaced data.
    std::size_t data_rebind_hits = 0;  ///< BindData calls that kept data.
    std::size_t certain_reuses = 0;    ///< Certain() calls served from cache.
    std::size_t dust_table_builds = 0;     ///< EnsureDustTables misses.
    std::size_t proud_moment_builds = 0;   ///< EnsureProudMoments misses.
    std::size_t sample_attaches = 0;       ///< EnsureSamples misses.
    std::size_t acquires_served = 0;   ///< Acquire* calls that returned the
                                       ///< shared engine.
    std::size_t acquires_declined = 0; ///< Acquire* calls that returned null.
    std::size_t resident_adds = 0;     ///< AddResident calls that stored or
                                       ///< replaced an entry.
    std::size_t resident_activations = 0;  ///< ActivateResident calls that
                                           ///< went through BindData.
    std::size_t buffer_pools_created = 0;  ///< Context-owned ts::BufferPool
                                           ///< constructions (at most 1).
  };

  /// Create a context; no pool or engine is built until first use.
  explicit EngineContext(EngineContextOptions options = {});

  /// Drops every owned engine, then joins the shared pool, if any.
  ~EngineContext();

  EngineContext(const EngineContext&) = delete;  ///< Not copyable.
  EngineContext& operator=(const EngineContext&) = delete;  ///< Not copyable.

  /// Resolved worker-thread count (>= 1).
  std::size_t threads() const { return threads_; }

  /// The shared executor, created lazily on first request; null when
  /// `threads() == 1` (all engines then run inline).
  exec::ThreadPool* pool();

  /// The storage-tier buffer pool every engine of this context pages its
  /// stores through: the explicit `ExecOptions::buffer_pool` when set, a
  /// lazily created pool when `memory_budget_bytes > 0`, null otherwise
  /// (fully-resident stores). When pool creation fails (unwritable spill
  /// dir) the context falls back to resident stores — results are identical
  /// either way.
  std::shared_ptr<ts::BufferPool> buffer_pool();

  /// \name Run data
  /// \{

  /// Take ownership of this evaluation's perturbed datasets plus the
  /// run-level parameters baked into engine state (`seed` feeds the MUNICH
  /// pair streams, `proud_sigma` the constant-σ PROUD kernels). When the
  /// incoming data and parameters fingerprint identically to what is
  /// already bound, the call is a no-op that keeps every engine and cache
  /// (the τ-sweep fast path); otherwise the uncertain engine and its
  /// measure state are dropped and rebuilt lazily against the new data.
  Status BindData(uncertain::UncertainDataset pdf,
                  std::optional<uncertain::MultiSampleDataset> samples,
                  std::uint64_t seed, double proud_sigma);

  /// The bound pdf-model dataset; null before the first BindData.
  const uncertain::UncertainDataset* pdf() const {
    return bound_ ? &pdf_ : nullptr;
  }

  /// The bound repeated-observations dataset; null when absent.
  const uncertain::MultiSampleDataset* samples() const {
    return bound_ && samples_.has_value() ? &*samples_ : nullptr;
  }
  /// \}

  /// \name Multi-dataset residency (the server front end)
  /// A long-running service keeps several evaluations' datasets alive in one
  /// context and switches between them per request. Residency stores each
  /// dataset (pdf model, optional sample model, run parameters, plus the
  /// observations viewed as a certain dataset) under a caller-chosen name;
  /// `ActivateResident` routes through `BindData`, so re-activating the
  /// dataset that is already bound is a fingerprint rebind hit that keeps
  /// every engine and cache, while switching to a different resident drops
  /// only the data-specific engine state (the DUST table cache survives by
  /// design). Like the rest of the context, residency is setup-time state:
  /// calls are not thread-safe against concurrent queries.
  /// \{

  /// Store (or replace) a resident dataset under `name`. The data is copied
  /// into the residency table — the context does not borrow — and the
  /// active binding is untouched until `ActivateResident(name)`.
  Status AddResident(const std::string& name, uncertain::UncertainDataset pdf,
                     std::optional<uncertain::MultiSampleDataset> samples,
                     std::uint64_t seed, double proud_sigma);

  /// Bind the named resident as the context's active dataset (see
  /// `BindData` for the rebind semantics). NotFound when absent.
  Status ActivateResident(const std::string& name);

  /// True iff a resident named `name` is stored.
  bool HasResident(const std::string& name) const {
    return residents_.count(name) > 0;
  }

  /// Names of every stored resident, sorted.
  std::vector<std::string> ResidentNames() const;

  /// The name of the resident currently bound via ActivateResident; null
  /// when the active binding did not come from the residency table.
  const std::string* active_resident() const {
    return active_resident_.empty() ? nullptr : &active_resident_;
  }

  /// Drop the named resident. The active binding (and its engines) stays
  /// usable even when it came from the dropped entry — the context owns the
  /// bound copies. NotFound when absent.
  Status DropResident(const std::string& name);

  /// The resident's observations viewed as a certain dataset (the input of
  /// the Euclidean / ground-truth paths, stable address for `Certain`);
  /// null when absent.
  const ts::Dataset* ResidentObserved(const std::string& name) const;

  /// The resident's pdf-model run parameters, exported for servers that
  /// need to echo them per request; null when absent.
  const uncertain::UncertainDataset* ResidentPdf(const std::string& name) const;
  /// \}

  /// \name Certain engine (ground truth / calibration sweeps)
  /// \{

  /// The shared DistanceMatrixEngine over `exact`, scheduled on the shared
  /// pool. Cached across calls keyed by the dataset's content and `grain`
  /// (0 = default), so repeated runs over the same exact dataset pack it
  /// once. `exact` is borrowed and must outlive the context (or the next
  /// Certain() call with different data).
  const DistanceMatrixEngine& Certain(const ts::Dataset& exact,
                                      std::size_t grain = 0);
  /// \}

  /// \name Uncertain engine acquisition (one per run, lazily built)
  /// All three return the same underlying engine — plus its
  /// measure-specific state built on first use — or null when the bound
  /// dataset is not engine-shaped (empty / non-uniform lengths) or the
  /// requested configuration conflicts with state already built for an
  /// earlier matcher of the run.
  /// \{

  /// DUST: engine + lookup tables for every distinct error-class pair.
  /// Tables are built through the context's persistent `measures::Dust`
  /// cache, so a later BindData under the same error models reuses them
  /// instead of re-running the numeric integration. Declined when `dust`
  /// differs from the options that cache was created with.
  UncertainEngine* AcquireDust(const measures::DustOptions& dust);

  /// PROUD (constant-σ model): declined when `sigma` differs from the
  /// bound run-level σ (a matcher overriding the run's reported σ keeps
  /// its scalar path).
  UncertainEngine* AcquireProud(double sigma);

  /// MUNICH: engine + attached sample dataset + estimator configuration.
  /// The first acquisition fixes the estimator config (τ excluded — the
  /// engine never reads it); later acquisitions with a conflicting config
  /// are declined.
  UncertainEngine* AcquireMunich(const measures::MunichOptions& munich);

  /// PROUD general-moment columns (m2/m3/m4 SoA prefixes) on the shared
  /// engine; built on first call, cached for the run.
  Status EnsureProudMoments();
  /// \}

  /// The lifecycle counters (see Stats).
  const Stats& stats() const { return stats_; }

 private:
  /// One stored resident: the datasets plus the run parameters BindData
  /// bakes into engine state.
  struct Resident {
    uncertain::UncertainDataset pdf;                     ///< PDF model.
    std::optional<uncertain::MultiSampleDataset> samples;  ///< Sample model.
    ts::Dataset observed;      ///< Observations as a certain dataset.
    std::uint64_t seed = 0;    ///< MUNICH pair-stream base seed.
    double proud_sigma = 1.0;  ///< Constant σ reported to PROUD.
  };

  /// Build the shared UncertainEngine over the bound pdf dataset if not
  /// done yet; returns null when unbound or not engine-shaped.
  UncertainEngine* EnsureUncertain();

  EngineContextOptions options_;
  std::size_t threads_ = 1;
  std::unique_ptr<exec::ThreadPool> pool_;

  /// Context-created storage-tier pool (memory_budget_bytes > 0). Engines
  /// and their stores hold it by shared_ptr, so destruction order is safe:
  /// a store drops its pages before releasing its pool reference.
  std::shared_ptr<ts::BufferPool> owned_buffer_pool_;
  bool buffer_pool_failed_ = false;  ///< Create failed; stay resident.

  // Bound run data (owned) + its content fingerprint.
  bool bound_ = false;
  uncertain::UncertainDataset pdf_;
  std::optional<uncertain::MultiSampleDataset> samples_;
  std::uint64_t seed_ = 0;
  double proud_sigma_ = 1.0;
  std::uint64_t data_fingerprint_ = 0;

  // The shared uncertain engine + its lazy measure state.
  std::unique_ptr<UncertainEngine> uncertain_;
  bool uncertain_unusable_ = false;  ///< Create failed for the bound data.
  /// Persistent DUST table cache (survives rebinds); created with the first
  /// acquirer's options.
  std::unique_ptr<measures::Dust> dust_cache_;
  bool munich_configured_ = false;
  measures::MunichOptions munich_config_;

  // Residency table of the server front end; map nodes give ResidentObserved
  // a stable address for the certain-engine cache.
  std::map<std::string, Resident> residents_;
  std::string active_resident_;  ///< Empty when the binding is not a resident.

  // The cached certain engine, keyed by dataset address + content + grain.
  // The address is kept separately because the borrowed dataset may no
  // longer be alive when the next Certain() call checks the key.
  std::unique_ptr<DistanceMatrixEngine> certain_;
  const ts::Dataset* certain_dataset_ = nullptr;
  std::uint64_t certain_fingerprint_ = 0;
  std::size_t certain_grain_ = 0;

  Stats stats_;
};

}  // namespace uts::query

#endif  // UTS_QUERY_ENGINE_CONTEXT_HPP_
