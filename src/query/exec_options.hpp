/// \file exec_options.hpp
/// \brief The execution fields every query engine shares.
///
/// `EngineOptions`, `UncertainEngineOptions` and `EngineContextOptions`
/// used to repeat the same four knobs (threads, SIMD mode, borrowed pool,
/// index cascade); they now all embed `ExecOptions` by public inheritance,
/// so the historical field names (`options.threads`, `.simd`,
/// `.shared_pool`, `.index`) keep working verbatim while there is exactly
/// one definition — and exactly one place to thread a new knob, which is
/// how the storage tier's `buffer_pool` reaches every engine.

#ifndef UTS_QUERY_EXEC_OPTIONS_HPP_
#define UTS_QUERY_EXEC_OPTIONS_HPP_

#include <cstddef>
#include <memory>

#include "distance/simd.hpp"
#include "exec/thread_pool.hpp"
#include "index/synopsis_index.hpp"
#include "ts/buffer_pool.hpp"

namespace uts::query {

/// \brief Execution knobs shared by every engine and by the context that
/// builds them. Engine- and context-specific options structs inherit this,
/// so the fields read exactly as they always have.
struct ExecOptions {
  /// Worker threads; 1 = run inline on the caller (sequential reference
  /// path), 0 = std::thread::hardware_concurrency().
  std::size_t threads = 1;

  /// Kernel selection for the batched sweeps: kAuto resolves the widest
  /// compiled-in SIMD level the CPU supports (subject to the
  /// UNCERTTS_FORCE_SCALAR environment override), kForceScalar pins the
  /// scalar reference kernels. See distance/simd.hpp for the per-kernel
  /// numeric policy.
  distance::SimdMode simd = distance::SimdMode::kAuto;

  /// Borrowed executor: when non-null the engine schedules on this pool
  /// instead of constructing a private one, and `threads` is ignored for
  /// pool sizing. The pool must outlive the engine. This is how
  /// query::EngineContext gives every engine of a run one shared pool.
  exec::ThreadPool* shared_pool = nullptr;

  /// Prune-before-score index cascade (default off). When enabled (and the
  /// dataset is batched), the index-eligible query paths route through a
  /// Haar-synopsis lower-bound filter + early-abandon stage + exact
  /// re-scoring; results are bitwise identical to the unindexed scan.
  index::IndexOptions index;

  /// Storage tier: when non-null, stores the engine packs are split into
  /// blocks paged through this pool (ts/buffer_pool.hpp), so datasets
  /// larger than the pool's budget still scan — bitwise identically to the
  /// resident path. Null = classic fully-resident stores.
  std::shared_ptr<ts::BufferPool> buffer_pool;

  /// Rows per storage block for paged stores; 0 = the stride-derived
  /// ts::DefaultBlockRows. A test hook — shrinking blocks forces paging on
  /// small datasets; results are unaffected by construction.
  std::size_t block_rows = 0;
};

}  // namespace uts::query

#endif  // UTS_QUERY_EXEC_OPTIONS_HPP_
